/// Reproduces Fig. 6: tail flow-completion-time slowdown vs flow size
/// under the web search workload at 20% and 60% ToR-uplink load, for
/// PowerTCP, θ-PowerTCP, HPCC, DCQCN, TIMELY and HOMA.
///
/// The default run is the same RunnerConfig that
/// `powertcp_run configs/fig6_quick.toml` loads — the two produce
/// identical tables (pinned by RunnerGolden.Fig6ConfigMatchesBench).
/// --fast / --full adjust the horizon and scale as before.
///
/// Scaling note (docs/architecture.md, "Bench scaling conventions"):
/// the default run uses the quick fat-tree
/// (64 hosts) with websearch sizes scaled by 0.1 so enough flows finish
/// to populate tail percentiles in minutes; size-bucket labels scale
/// accordingly and we report p99 (pass --full for paper-scale p99.9 on
/// the 256-host fabric; budget ~hours, mitigated by --threads=N).
///
/// Expected shape: PowerTCP lowest across sizes; θ-PowerTCP matches on
/// short flows but degrades on medium/long flows; HPCC close behind
/// PowerTCP; DCQCN/TIMELY far worse on short flows; HOMA worst at load.

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/runner.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig6_fct").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const harness::RunnerConfig rc =
      harness::fig6_runner_config(opts.fast, opts.full);
  harness::BenchReporter reporter("bench_fig6_fct", opts);
  for (auto& table : harness::run_config(rc, reporter.runner())) {
    reporter.add(std::move(table));
  }
  return reporter.finish();
}
