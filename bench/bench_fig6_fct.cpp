/// Reproduces Fig. 6: tail flow-completion-time slowdown vs flow size
/// under the web search workload at 20% and 60% ToR-uplink load, for
/// PowerTCP, θ-PowerTCP, HPCC, DCQCN, TIMELY and HOMA.
///
/// Scaling note (docs/architecture.md, "Bench scaling conventions"):
/// the default run uses the quick fat-tree
/// (64 hosts) with websearch sizes scaled by 0.1 so enough flows finish
/// to populate tail percentiles in minutes; size-bucket labels scale
/// accordingly and we report p99 (pass --full for paper-scale p99.9 on
/// the 256-host fabric; budget ~hours).
///
/// Expected shape: PowerTCP lowest across sizes; θ-PowerTCP matches on
/// short flows but degrades on medium/long flows; HPCC close behind
/// PowerTCP; DCQCN/TIMELY far worse on short flows; HOMA worst at load.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

using namespace powertcp;

namespace {

struct RunSpec {
  bool full = false;
  sim::TimePs duration = sim::milliseconds(20);
  double size_scale = 0.1;
  double pct = 99.0;
};

void run_load(double load, const RunSpec& spec,
              const std::vector<std::string>& algos) {
  std::printf("\n=== %.0f%% ToR-uplink load, websearch (x%.2f sizes), "
              "p%.1f slowdown per size bucket ===\n",
              load * 100, spec.size_scale, spec.pct);
  std::printf("%-16s", "algorithm");
  for (const auto& b : stats::paper_size_buckets()) {
    std::printf(" %8s", b.label.c_str());
  }
  std::printf(" %8s %7s\n", "allP50", "drops");

  for (const auto& algo : algos) {
    harness::FatTreeExperiment cfg;
    if (spec.full) cfg.topo = topo::FatTreeConfig();  // paper scale
    cfg.cc = algo;
    cfg.uplink_load = load;
    cfg.duration = spec.duration;
    cfg.size_scale = spec.size_scale;
    cfg.seed = 42;
    const auto result = harness::run_fat_tree_experiment(cfg);

    // Buckets are defined on unscaled sizes; rescale the edges.
    std::printf("%-16s", algo.c_str());
    std::int64_t lo = 0;
    for (const auto& b : stats::paper_size_buckets()) {
      const auto hi = static_cast<std::int64_t>(
          static_cast<double>(b.upper_bytes) * spec.size_scale);
      const auto s = result.fct.slowdowns_in_range(lo, hi);
      if (s.count() >= 5) {
        std::printf(" %8.2f", s.percentile(spec.pct));
      } else {
        std::printf(" %8s", "-");
      }
      lo = hi;
    }
    const auto all = result.fct.all_slowdowns();
    std::printf(" %8.2f %7llu   (%llu flows, %.1f%% done)\n",
                all.empty() ? -1.0 : all.percentile(50),
                static_cast<unsigned long long>(result.drops),
                static_cast<unsigned long long>(result.flows_started),
                result.completion_rate() * 100);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      spec.full = true;
      spec.duration = sim::milliseconds(100);
      spec.size_scale = 1.0;
      spec.pct = 99.9;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      spec.duration = sim::milliseconds(8);
    }
  }
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc",     "dcqcn",
                                          "timely",   "homa"};
  run_load(0.2, spec, algos);
  run_load(0.6, spec, algos);
  return 0;
}
