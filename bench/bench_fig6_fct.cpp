/// Reproduces Fig. 6: tail flow-completion-time slowdown vs flow size
/// under the web search workload at 20% and 60% ToR-uplink load, for
/// PowerTCP, θ-PowerTCP, HPCC, DCQCN, TIMELY and HOMA.
///
/// Scaling note (docs/architecture.md, "Bench scaling conventions"):
/// the default run uses the quick fat-tree
/// (64 hosts) with websearch sizes scaled by 0.1 so enough flows finish
/// to populate tail percentiles in minutes; size-bucket labels scale
/// accordingly and we report p99 (pass --full for paper-scale p99.9 on
/// the 256-host fabric; budget ~hours, mitigated by --threads=N).
///
/// Expected shape: PowerTCP lowest across sizes; θ-PowerTCP matches on
/// short flows but degrades on medium/long flows; HPCC close behind
/// PowerTCP; DCQCN/TIMELY far worse on short flows; HOMA worst at load.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_opts.hpp"
#include "harness/sweep.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

struct RunSpec {
  bool full = false;
  sim::TimePs duration = sim::milliseconds(20);
  double size_scale = 0.1;
  double pct = 99.0;
};

harness::SweepSpec load_sweep(double load, const RunSpec& spec,
                              const std::vector<std::string>& algos) {
  harness::SweepSpec sw;
  char title[128];
  std::snprintf(title, sizeof(title),
                "%.0f%% ToR-uplink load, websearch (x%.2f sizes), "
                "p%.1f slowdown per size bucket",
                load * 100, spec.size_scale, spec.pct);
  sw.title = title;
  char slug[32];
  std::snprintf(slug, sizeof(slug), "fig6_load%.0f", load * 100);
  sw.slug = slug;
  sw.key_columns = {"algorithm"};
  for (const auto& b : stats::paper_size_buckets()) {
    sw.value_columns.push_back(b.label);
  }
  sw.value_columns.insert(sw.value_columns.end(),
                          {"allP50", "drops", "flows", "done%"});
  for (const auto& algo : algos) {
    harness::SweepPoint p;
    p.keys = {Cell(algo)};
    if (spec.full) p.cfg.topo = topo::FatTreeConfig();  // paper scale
    p.cfg.cc = algo;
    p.cfg.uplink_load = load;
    p.cfg.duration = spec.duration;
    p.cfg.size_scale = spec.size_scale;
    p.cfg.seed = 42;
    sw.points.push_back(std::move(p));
  }
  sw.metrics = [spec](const harness::FatTreeExperiment&,
                      const harness::ExperimentResult& r) {
    std::vector<Cell> row;
    // Buckets are defined on unscaled sizes; rescale the edges.
    std::int64_t lo = 0;
    for (const auto& b : stats::paper_size_buckets()) {
      const auto hi = static_cast<std::int64_t>(
          static_cast<double>(b.upper_bytes) * spec.size_scale);
      const auto s = r.fct.slowdowns_in_range(lo, hi);
      row.push_back(s.count() >= 5 ? Cell(s.percentile(spec.pct), 2)
                                   : Cell());
      lo = hi;
    }
    const auto all = r.fct.all_slowdowns();
    row.push_back(all.empty() ? Cell() : Cell(all.percentile(50), 2));
    row.push_back(Cell::integer(static_cast<std::int64_t>(r.drops)));
    row.push_back(
        Cell::integer(static_cast<std::int64_t>(r.flows_started)));
    row.push_back(Cell(r.completion_rate() * 100, 1));
    return row;
  };
  return sw;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig6_fct").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  RunSpec spec;
  if (opts.fast) spec.duration = sim::milliseconds(8);
  if (opts.full) {
    spec.full = true;
    spec.duration = sim::milliseconds(100);
    spec.size_scale = 1.0;
    spec.pct = 99.9;
  }
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc",     "dcqcn",
                                          "timely",   "homa"};
  harness::BenchReporter reporter("bench_fig6_fct", opts);
  reporter.add(reporter.runner().run(load_sweep(0.2, spec, algos)));
  reporter.add(reporter.runner().run(load_sweep(0.6, spec, algos)));
  return reporter.finish();
}
