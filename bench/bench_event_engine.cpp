/// Event-engine microbenchmark: the raw cost of the simulator hot path
/// that paper-scale (--full) runs are bound by. Three workloads
/// (schedule+fire churn, schedule+cancel churn, and an end-to-end
/// dumbbell packet run) each measured on both EventQueue backends —
/// the default binary heap and the calendar queue — plus a
/// std::function baseline quantifying what the inline-callback /
/// packet-pool rewrite removed.
///
/// This bench is the calibrated perf gate: CI compares its JSON against
/// bench/baselines/perf.json via scripts/check_perf_baseline.py. The
/// events and allocs/event columns are deterministic and gated exactly
/// (the bench also aborts on cross-backend event-count divergence);
/// the Mev/s throughput columns are wall-clock dependent and gated
/// only loosely, with tolerance learned from repeat runs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "cc/factory.hpp"
#include "harness/bench_opts.hpp"
#include "harness/shard_setup.hpp"
#include "harness/sweep.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"
#include "topo/partition.hpp"

using namespace powertcp;
using harness::Cell;

// Counting replacements for the global allocator (one set per binary),
// the same technique as tests/sim/test_allocations.cpp: every heap
// allocation in the measured workloads shows up in the allocs/event
// columns, which the perf gate then pins exactly.
namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Self-scheduling timer wheels: `wheels` concurrent chains each
/// re-arming `spacing` ahead — the shape of pacing/RTO timers at scale.
std::uint64_t run_timer_churn(sim::QueueKind kind, int wheels,
                              std::uint64_t events) {
  sim::Simulator s(kind);
  std::uint64_t remaining = events;
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    --remaining;
    s.schedule_in(sim::nanoseconds(100 + remaining % 997), tick);
  };
  for (int w = 0; w < wheels; ++w) {
    s.schedule_at(sim::nanoseconds(w), tick);
  }
  s.run();
  return s.events_executed();
}

/// Schedule-then-cancel churn: the deduplicated-wakeup pattern of
/// egress ports (arm a retry, cancel it when work arrives).
std::uint64_t run_cancel_churn(sim::QueueKind kind, std::uint64_t rounds) {
  sim::Simulator s(kind);
  std::uint64_t remaining = rounds;
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    --remaining;
    const sim::EventId doomed =
        s.schedule_in(sim::microseconds(50), [] { std::abort(); });
    s.schedule_in(sim::nanoseconds(200), tick);
    s.cancel(doomed);
  };
  s.schedule_at(0, tick);
  s.run();
  return s.events_executed();
}

/// End-to-end packet events: two long PowerTCP flows over a dumbbell.
std::uint64_t run_packet_sim(sim::QueueKind kind, sim::TimePs horizon) {
  sim::Simulator simulator(kind);
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 2;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 2;
  const cc::CcFactory factory = cc::make_factory("powertcp");
  topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  topo.sender(1).start_flow(2, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  simulator.run_until(horizon);
  return simulator.events_executed();
}

// ---- burst-shaped workloads (sim_burst off vs on) ------------------
// Each runs the same logical event sequence twice: budget 1 (the
// per-event engine) and budget 64 (burst-granular). events_executed()
// counts LOGICAL events in both modes — the bench aborts if the modes
// disagree — so the Mev/s ratio is the real per-event win. Callbacks
// capture one 8-byte state pointer, keeping both modes allocation-free
// per event (pinned by the allocs/ev columns).

/// Ack-train shape: a receiver NIC's 64-packet ack train. Off pays 64
/// schedule/pop cycles per train; on pays one burst entry of count 64
/// (the EgressPort dequeue-N finish-event collapse, at engine level).
struct AckTrainState {
  sim::Simulator* s;
  std::uint64_t trains_left;
  std::uint64_t pending;  ///< logical acks outstanding in this train
  std::uint64_t acked;
  std::uint32_t train;
  bool burst;
};

void ack_train_next(AckTrainState* st);

void ack_train_on_ack(AckTrainState* st) {
  const std::uint32_t n = st->s->burst_count();
  st->acked += n;
  st->pending -= n;
  if (st->pending == 0) ack_train_next(st);
}

void ack_train_next(AckTrainState* st) {
  if (st->trains_left == 0) return;
  --st->trains_left;
  st->pending = st->train;
  const sim::TimePs t = st->s->now() + sim::nanoseconds(100);
  if (st->burst) {
    st->s->schedule_burst_at(t, st->train,
                             [st] { ack_train_on_ack(st); });
  } else {
    for (std::uint32_t i = 0; i < st->train; ++i) {
      st->s->schedule_at(t, [st] { ack_train_on_ack(st); });
    }
  }
}

std::uint64_t run_ack_train(sim::QueueKind kind, bool burst,
                            std::uint64_t events) {
  sim::Simulator s(kind);
  s.set_burst_budget(burst ? 64 : 1);
  constexpr std::uint32_t kTrain = 64;
  AckTrainState st{&s, events / kTrain, 0, 0, kTrain, burst};
  ack_train_next(&st);
  s.run();
  return s.events_executed();
}

/// Incast-drain shape: 32 same-time arrivals sharing a merge key. Off
/// pops and dispatches each; on pop-merges the wave into ONE callback
/// carrying count 32 (schedule cost is identical by construction, so
/// this row isolates the pop-side win).
struct IncastState {
  sim::Simulator* s;
  std::uint64_t waves_left;
  std::uint64_t pending;
  std::uint32_t fan;
};

void incast_next(IncastState* st);

void incast_on_pkt(IncastState* st) {
  st->pending -= st->s->burst_count();
  if (st->pending == 0) incast_next(st);
}

void incast_next(IncastState* st) {
  if (st->waves_left == 0) return;
  --st->waves_left;
  st->pending = st->fan;
  const sim::TimePs t = st->s->now() + sim::nanoseconds(100);
  for (std::uint32_t i = 0; i < st->fan; ++i) {
    st->s->schedule_burst_at(t, 1, [st] { incast_on_pkt(st); },
                             /*merge_key=*/1);
  }
}

std::uint64_t run_incast_drain(sim::QueueKind kind, bool burst,
                               std::uint64_t events) {
  sim::Simulator s(kind);
  s.set_burst_budget(burst ? 64 : 1);
  constexpr std::uint32_t kFan = 32;
  IncastState st{&s, events / kFan, 0, kFan};
  incast_next(&st);
  s.run();
  return s.events_executed();
}

/// Paced-stream shape: a sender releasing packets every 100 ns. Off
/// arms one timer per packet; on arms one timer per 8-packet quantum
/// (host::FlowSenderConfig::pacing_quantum, at engine level).
struct PacedState {
  sim::Simulator* s;
  std::uint64_t quanta_left;
  std::uint64_t pending;
  std::uint64_t sent;
  std::uint32_t quantum;
  bool burst;
};

void paced_next(PacedState* st);

void paced_on_tick(PacedState* st) {
  const std::uint32_t n = st->s->burst_count();
  st->sent += n;
  st->pending -= n;
  if (st->pending == 0) paced_next(st);
}

void paced_next(PacedState* st) {
  if (st->quanta_left == 0) return;
  --st->quanta_left;
  st->pending = st->quantum;
  const sim::TimePs tick = sim::nanoseconds(100);
  if (st->burst) {
    st->s->schedule_burst_at(st->s->now() + tick * st->quantum, st->quantum,
                             [st] { paced_on_tick(st); });
  } else {
    for (std::uint32_t i = 1; i <= st->quantum; ++i) {
      st->s->schedule_at(st->s->now() + tick * i,
                         [st] { paced_on_tick(st); });
    }
  }
}

std::uint64_t run_paced_stream(sim::QueueKind kind, bool burst,
                               std::uint64_t events) {
  sim::Simulator s(kind);
  s.set_burst_budget(burst ? 64 : 1);
  constexpr std::uint32_t kQuantum = 8;
  PacedState st{&s, events / kQuantum, 0, 0, kQuantum, burst};
  paced_next(&st);
  s.run();
  return s.events_executed();
}

/// Sharded engine workload: the paper's fat-tree (quick preset), cut
/// per pod, with POD-LOCAL long flows — every host streams to the
/// neighboring rack of its own pod, so no packet crosses the cut and
/// the partitions stay causally independent (zero boundary
/// ambiguities, asserted below). This is the speedup ceiling of the
/// conservative-lookahead engine: shards only meet at window barriers.
/// Workloads that do tie across the cut fall back to the sequential
/// engine instead (harness::run_with_exact_fallback), so a bench row
/// for them would measure the fallback, not the parallel engine.
struct ShardRun {
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t ambiguities = 0;
};

ShardRun run_shard_fat_tree(int sim_threads, sim::TimePs horizon) {
  const topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  harness::ShardedPoint point(topo::fat_tree_shard_plan(cfg, sim_threads),
                              sim::QueueKind::kBinaryHeap);
  topo::FatTree fabric(point.network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  const int pod_hosts = cfg.tors_per_pod * cfg.servers_per_tor;
  params.expected_flows = pod_hosts;
  const cc::CcFactory factory = cc::make_factory("powertcp");
  for (int h = 0; h < fabric.host_count(); ++h) {
    const int pod_start = h / pod_hosts * pod_hosts;
    const int partner =
        pod_start + (h - pod_start + cfg.servers_per_tor) % pod_hosts;
    fabric.host(h).start_flow(static_cast<net::FlowId>(h + 1),
                              fabric.host_node(partner), 1'000'000'000,
                              factory(params), params, 0);
  }
  point.engine.run_until(horizon);
  return {point.engine.events_executed(), point.engine.windows(),
          point.engine.boundary_ambiguities()};
}

/// std::function baseline for the churn shape, quantifying the removed
/// per-event allocation (a capture sized like the old Packet capture).
std::uint64_t run_std_function_baseline(std::uint64_t events) {
  struct FakePacketCapture {
    unsigned char bytes[352];
  };
  std::vector<std::function<void()>> queue;
  queue.reserve(64);
  std::uint64_t fired = 0;
  FakePacketCapture pkt{};
  for (std::uint64_t i = 0; i < events; ++i) {
    queue.emplace_back([pkt, &fired] {
      fired += pkt.bytes[0] + 1;
    });
    if (queue.size() == 64) {
      for (auto& f : queue) f();
      queue.clear();
    }
  }
  for (auto& f : queue) f();
  return fired;
}

struct Measurement {
  double mops = 0;
  std::uint64_t events = 0;
  double allocs_per_event = 0;
};

template <typename Fn>
Measurement measure(Fn&& fn) {
  const std::uint64_t allocs0 =
      g_allocations.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  Measurement m;
  m.events = fn();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs0;
  m.mops = secs > 0 ? static_cast<double>(m.events) / secs / 1e6 : 0;
  // Setup allocations (topology, vector growth) amortize to 0.00 at
  // precision 2; a real per-event allocation reads >= 1.00.
  m.allocs_per_event = m.events > 0 ? static_cast<double>(allocs) /
                                          static_cast<double>(m.events)
                                    : 0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_event_engine").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  std::uint64_t scale = 2'000'000;
  sim::TimePs horizon = sim::milliseconds(8);
  if (opts.fast) {
    scale = 200'000;
    horizon = sim::milliseconds(1);
  }
  if (opts.full) {
    scale = 20'000'000;
    horizon = sim::milliseconds(60);
  }

  std::printf("event-engine microbenchmark (%llu timer events, %s packet "
              "horizon)\n\n",
              static_cast<unsigned long long>(scale),
              sim::format_time(horizon).c_str());

  harness::BenchReporter reporter("bench_event_engine", opts);

  harness::ResultTable t;
  t.title = "event engine throughput (Mev/s gated loosely vs "
            "bench/baselines/perf.json; events and allocs/ev exactly)";
  t.slug = "event_engine";
  t.key_columns = {"workload"};
  t.value_columns = {"heap Mev/s", "calendar Mev/s", "events",
                     "heap allocs/ev", "calendar allocs/ev"};

  const struct {
    const char* name;
    std::uint64_t (*fn)(sim::QueueKind, std::uint64_t);
  } churns[] = {
      {"timer-churn x64",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_timer_churn(k, 64, n);
       }},
      {"timer-churn x4096",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_timer_churn(k, 4096, n);
       }},
      {"schedule+cancel",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_cancel_churn(k, n / 2);
       }},
  };
  for (const auto& c : churns) {
    const Measurement heap =
        measure([&] { return c.fn(sim::QueueKind::kBinaryHeap, scale); });
    const Measurement cal =
        measure([&] { return c.fn(sim::QueueKind::kCalendar, scale); });
    if (heap.events != cal.events) {
      std::fprintf(stderr, "FATAL: %s executed %llu (heap) vs %llu "
                   "(calendar) events — backends diverged\n",
                   c.name, static_cast<unsigned long long>(heap.events),
                   static_cast<unsigned long long>(cal.events));
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell(std::string(c.name))};
    row.values = {Cell(heap.mops, 2), Cell(cal.mops, 2),
                  Cell::integer(static_cast<std::int64_t>(heap.events)),
                  Cell(heap.allocs_per_event, 2),
                  Cell(cal.allocs_per_event, 2)};
    t.rows.push_back(std::move(row));
  }

  {
    const Measurement heap = measure(
        [&] { return run_packet_sim(sim::QueueKind::kBinaryHeap, horizon); });
    const Measurement cal = measure(
        [&] { return run_packet_sim(sim::QueueKind::kCalendar, horizon); });
    if (heap.events != cal.events) {
      std::fprintf(stderr, "FATAL: packet-sim event counts diverged\n");
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell(std::string("dumbbell packet sim"))};
    row.values = {Cell(heap.mops, 2), Cell(cal.mops, 2),
                  Cell::integer(static_cast<std::int64_t>(heap.events)),
                  Cell(heap.allocs_per_event, 2),
                  Cell(cal.allocs_per_event, 2)};
    t.rows.push_back(std::move(row));
  }
  reporter.add(std::move(t));

  // Burst-granular engine: the same logical event sequence with
  // sim_burst off (budget 1) vs on (budget 64), on the default heap
  // backend (bursting is backend-orthogonal). The ack-train speedup
  // carries a calibrated floor in bench/baselines/perf.json.
  harness::ResultTable bt;
  bt.title = "burst-granular event engine: sim_burst=off vs on (same "
             "logical events both modes; ack-train speedup floor-gated)";
  bt.slug = "event_engine_burst";
  bt.key_columns = {"workload"};
  bt.value_columns = {"off Mev/s", "on Mev/s", "speedup", "events",
                      "off allocs/ev", "on allocs/ev"};
  const struct {
    const char* name;
    std::uint64_t (*fn)(sim::QueueKind, bool, std::uint64_t);
  } burst_loads[] = {
      {"ack-train x64", run_ack_train},
      {"incast drain x32", run_incast_drain},
      {"paced stream q8", run_paced_stream},
  };
  for (const auto& b : burst_loads) {
    const Measurement off = measure(
        [&] { return b.fn(sim::QueueKind::kBinaryHeap, false, scale); });
    const Measurement on = measure(
        [&] { return b.fn(sim::QueueKind::kBinaryHeap, true, scale); });
    if (off.events != on.events) {
      std::fprintf(stderr, "FATAL: %s executed %llu (off) vs %llu (on) "
                   "logical events — burst modes diverged\n",
                   b.name, static_cast<unsigned long long>(off.events),
                   static_cast<unsigned long long>(on.events));
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell(std::string(b.name))};
    row.values = {Cell(off.mops, 2), Cell(on.mops, 2),
                  Cell(off.mops > 0 ? on.mops / off.mops : 0, 2),
                  Cell::integer(static_cast<std::int64_t>(off.events)),
                  Cell(off.allocs_per_event, 2),
                  Cell(on.allocs_per_event, 2)};
    bt.rows.push_back(std::move(row));
  }
  reporter.add(std::move(bt));

  // Sharded engine: the paper's fat-tree (quick preset) cut per pod,
  // pod-local traffic so the partitions stay causally independent.
  // Event counts must agree EXACTLY across thread counts (the byte-
  // identity bar at event granularity); speedup is wall-clock and
  // machine-dependent — >1x needs real cores, so it carries no floor.
  harness::ResultTable st;
  st.title = "sharded engine: fat-tree quick slice, pod-local flows "
             "(events exact-gated across sim_threads; speedup needs cores)";
  st.slug = "event_engine_shard";
  st.key_columns = {"sim_threads"};
  st.value_columns = {"Mev/s", "speedup", "events", "windows",
                      "shard_fallbacks"};
  double shard_base_mops = 0;
  std::uint64_t shard_base_events = 0;
  for (const int threads : {1, 2, 4}) {
    // Through the harness's exactness policy, so the row measures what
    // a scenario point actually gets: a fallback would rerun the point
    // sequentially and the shard_fallbacks column (exact-gated at 0 in
    // bench/baselines/perf.json) would expose it.
    std::uint64_t fallbacks = 0;
    ShardRun run;
    const Measurement m = measure([&] {
      run = harness::run_with_exact_fallback(
          threads,
          [&](int t) {
            ShardRun r = run_shard_fat_tree(t, horizon);
            return std::pair<ShardRun, std::uint64_t>{r, r.ambiguities};
          },
          &fallbacks);
      return run.events;
    });
    if (fallbacks != 0) {
      std::fprintf(stderr, "FATAL: pod-local shard workload fell back to "
                   "the sequential engine at sim_threads=%d — the cut "
                   "leaked causality\n", threads);
      return 1;
    }
    if (run.ambiguities != 0) {
      std::fprintf(stderr, "FATAL: pod-local shard workload reported %llu "
                   "boundary ambiguities at sim_threads=%d — the cut "
                   "leaked causality\n",
                   static_cast<unsigned long long>(run.ambiguities), threads);
      return 1;
    }
    if (threads == 1) {
      shard_base_mops = m.mops;
      shard_base_events = m.events;
    } else if (m.events != shard_base_events) {
      std::fprintf(stderr, "FATAL: sharded fat-tree executed %llu events at "
                   "sim_threads=%d vs %llu at sim_threads=1 — shards "
                   "diverged\n",
                   static_cast<unsigned long long>(m.events), threads,
                   static_cast<unsigned long long>(shard_base_events));
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell::integer(threads)};
    row.values = {Cell(m.mops, 2),
                  Cell(shard_base_mops > 0 ? m.mops / shard_base_mops : 0, 2),
                  Cell::integer(static_cast<std::int64_t>(m.events)),
                  Cell::integer(static_cast<std::int64_t>(run.windows)),
                  Cell::integer(static_cast<std::int64_t>(fallbacks))};
    st.rows.push_back(std::move(row));
  }
  reporter.add(std::move(st));

  // What the rewrite removed: a heap allocation per event for closures
  // that capture a Packet by value.
  harness::ResultTable base;
  base.title = "std::function alloc-per-event baseline (the old hot path)";
  base.slug = "event_engine_baseline";
  base.key_columns = {"workload"};
  base.value_columns = {"Mev/s", "allocs/ev"};
  const Measurement sf =
      measure([&] { return run_std_function_baseline(scale); });
  harness::ResultTable::Row row;
  row.keys = {Cell(std::string("std::function + 352B capture"))};
  row.values = {Cell(sf.mops, 2), Cell(sf.allocs_per_event, 2)};
  base.rows.push_back(std::move(row));
  reporter.add(std::move(base));

  return reporter.finish();
}
