/// Event-engine microbenchmark: the raw cost of the simulator hot path
/// that paper-scale (--full) runs are bound by. Three workloads
/// (schedule+fire churn, schedule+cancel churn, and an end-to-end
/// dumbbell packet run) each measured on both EventQueue backends —
/// the default binary heap and the calendar queue — plus a
/// std::function baseline quantifying what the inline-callback /
/// packet-pool rewrite removed.
///
/// Throughput numbers are wall-clock dependent: CI uploads this bench's
/// JSON as an informational artifact, not a regression gate. The
/// events-executed columns ARE deterministic and double as a
/// cross-backend identity check (the bench aborts if they disagree).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "harness/bench_opts.hpp"
#include "harness/sweep.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Self-scheduling timer wheels: `wheels` concurrent chains each
/// re-arming `spacing` ahead — the shape of pacing/RTO timers at scale.
std::uint64_t run_timer_churn(sim::QueueKind kind, int wheels,
                              std::uint64_t events) {
  sim::Simulator s(kind);
  std::uint64_t remaining = events;
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    --remaining;
    s.schedule_in(sim::nanoseconds(100 + remaining % 997), tick);
  };
  for (int w = 0; w < wheels; ++w) {
    s.schedule_at(sim::nanoseconds(w), tick);
  }
  s.run();
  return s.events_executed();
}

/// Schedule-then-cancel churn: the deduplicated-wakeup pattern of
/// egress ports (arm a retry, cancel it when work arrives).
std::uint64_t run_cancel_churn(sim::QueueKind kind, std::uint64_t rounds) {
  sim::Simulator s(kind);
  std::uint64_t remaining = rounds;
  std::function<void()> tick = [&] {
    if (remaining == 0) return;
    --remaining;
    const sim::EventId doomed =
        s.schedule_in(sim::microseconds(50), [] { std::abort(); });
    s.schedule_in(sim::nanoseconds(200), tick);
    s.cancel(doomed);
  };
  s.schedule_at(0, tick);
  s.run();
  return s.events_executed();
}

/// End-to-end packet events: two long PowerTCP flows over a dumbbell.
std::uint64_t run_packet_sim(sim::QueueKind kind, sim::TimePs horizon) {
  sim::Simulator simulator(kind);
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 2;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 2;
  const cc::CcFactory factory = cc::make_factory("powertcp");
  topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  topo.sender(1).start_flow(2, topo.receiver().id(), 1'000'000'000,
                            factory(params), params, 0);
  simulator.run_until(horizon);
  return simulator.events_executed();
}

/// std::function baseline for the churn shape, quantifying the removed
/// per-event allocation (a capture sized like the old Packet capture).
std::uint64_t run_std_function_baseline(std::uint64_t events) {
  struct FakePacketCapture {
    unsigned char bytes[352];
  };
  std::vector<std::function<void()>> queue;
  queue.reserve(64);
  std::uint64_t fired = 0;
  FakePacketCapture pkt{};
  for (std::uint64_t i = 0; i < events; ++i) {
    queue.emplace_back([pkt, &fired] {
      fired += pkt.bytes[0] + 1;
    });
    if (queue.size() == 64) {
      for (auto& f : queue) f();
      queue.clear();
    }
  }
  for (auto& f : queue) f();
  return fired;
}

struct Measurement {
  double mops = 0;
  std::uint64_t events = 0;
};

template <typename Fn>
Measurement measure(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  Measurement m;
  m.events = fn();
  const double secs = seconds_since(t0);
  m.mops = secs > 0 ? static_cast<double>(m.events) / secs / 1e6 : 0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_event_engine").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  std::uint64_t scale = 2'000'000;
  sim::TimePs horizon = sim::milliseconds(8);
  if (opts.fast) {
    scale = 200'000;
    horizon = sim::milliseconds(1);
  }
  if (opts.full) {
    scale = 20'000'000;
    horizon = sim::milliseconds(60);
  }

  std::printf("event-engine microbenchmark (%llu timer events, %s packet "
              "horizon)\n\n",
              static_cast<unsigned long long>(scale),
              sim::format_time(horizon).c_str());

  harness::BenchReporter reporter("bench_event_engine", opts);

  harness::ResultTable t;
  t.title = "event engine throughput (million events/sec, wall clock — "
            "informational, not gated)";
  t.slug = "event_engine";
  t.key_columns = {"workload"};
  t.value_columns = {"heap Mev/s", "calendar Mev/s", "events"};

  const struct {
    const char* name;
    std::uint64_t (*fn)(sim::QueueKind, std::uint64_t);
  } churns[] = {
      {"timer-churn x64",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_timer_churn(k, 64, n);
       }},
      {"timer-churn x4096",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_timer_churn(k, 4096, n);
       }},
      {"schedule+cancel",
       [](sim::QueueKind k, std::uint64_t n) {
         return run_cancel_churn(k, n / 2);
       }},
  };
  for (const auto& c : churns) {
    const Measurement heap =
        measure([&] { return c.fn(sim::QueueKind::kBinaryHeap, scale); });
    const Measurement cal =
        measure([&] { return c.fn(sim::QueueKind::kCalendar, scale); });
    if (heap.events != cal.events) {
      std::fprintf(stderr, "FATAL: %s executed %llu (heap) vs %llu "
                   "(calendar) events — backends diverged\n",
                   c.name, static_cast<unsigned long long>(heap.events),
                   static_cast<unsigned long long>(cal.events));
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell(std::string(c.name))};
    row.values = {Cell(heap.mops, 2), Cell(cal.mops, 2),
                  Cell::integer(static_cast<std::int64_t>(heap.events))};
    t.rows.push_back(std::move(row));
  }

  {
    const Measurement heap = measure(
        [&] { return run_packet_sim(sim::QueueKind::kBinaryHeap, horizon); });
    const Measurement cal = measure(
        [&] { return run_packet_sim(sim::QueueKind::kCalendar, horizon); });
    if (heap.events != cal.events) {
      std::fprintf(stderr, "FATAL: packet-sim event counts diverged\n");
      return 1;
    }
    harness::ResultTable::Row row;
    row.keys = {Cell(std::string("dumbbell packet sim"))};
    row.values = {Cell(heap.mops, 2), Cell(cal.mops, 2),
                  Cell::integer(static_cast<std::int64_t>(heap.events))};
    t.rows.push_back(std::move(row));
  }
  reporter.add(std::move(t));

  // What the rewrite removed: a heap allocation per event for closures
  // that capture a Packet by value.
  harness::ResultTable base;
  base.title = "std::function alloc-per-event baseline (the old hot path)";
  base.slug = "event_engine_baseline";
  base.key_columns = {"workload"};
  base.value_columns = {"Mev/s"};
  const Measurement sf =
      measure([&] { return run_std_function_baseline(scale); });
  harness::ResultTable::Row row;
  row.keys = {Cell(std::string("std::function + 352B capture"))};
  row.values = {Cell(sf.mops, 2)};
  base.rows.push_back(std::move(row));
  reporter.add(std::move(base));

  return reporter.finish();
}
