/// Microbenchmarks (google-benchmark): per-ack cost of each congestion
/// control law, INT header stamping, and core event-loop operations.
/// The paper's §3.6 argues PowerTCP adds no complexity over HPCC — the
/// per-ack numbers here quantify that claim for this implementation.

#include <benchmark/benchmark.h>

#include <memory>

#include "cc/dcqcn.hpp"
#include "cc/dctcp.hpp"
#include "cc/hpcc.hpp"
#include "cc/power_tcp.hpp"
#include "cc/swift.hpp"
#include "cc/theta_power_tcp.hpp"
#include "cc/timely.hpp"
#include "sim/simulator.hpp"

using namespace powertcp;

namespace {

cc::FlowParams bench_params() {
  cc::FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  return p;
}

/// Synthesizes a plausible ack stream: 3-hop INT with advancing
/// timestamps and txBytes, mild queue oscillation.
cc::AckContext make_ctx(net::IntHeader& hdr, std::int64_t i) {
  hdr.clear();
  for (int hop = 0; hop < 3; ++hop) {
    net::IntHopRecord rec;
    rec.ts = i * 1'000'000 + hop * 1000;
    rec.tx_bytes = i * 1048 * (hop + 1);
    rec.qlen_bytes = (i % 64) * 500;
    rec.bandwidth_bps = 25e9;
    hdr.push(rec);
  }
  cc::AckContext ctx;
  ctx.now = i * 1'000'000;
  ctx.rtt = sim::microseconds(20) + (i % 16) * 100'000;
  ctx.acked_bytes = 1000;
  ctx.ack_seq = i * 1000;
  ctx.snd_nxt = i * 1000 + 60'000;
  ctx.ecn_echo = (i % 32) == 0;
  ctx.int_hdr = &hdr;
  return ctx;
}

template <typename Algo>
void bench_on_ack(benchmark::State& state) {
  Algo algo(bench_params());
  net::IntHeader hdr;
  std::int64_t i = 1;
  for (auto _ : state) {
    const cc::AckContext ctx = make_ctx(hdr, i++);
    benchmark::DoNotOptimize(algo.on_ack(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PowerTcpOnAck(benchmark::State& s) { bench_on_ack<cc::PowerTcp>(s); }
void BM_ThetaPowerTcpOnAck(benchmark::State& s) {
  bench_on_ack<cc::ThetaPowerTcp>(s);
}
void BM_HpccOnAck(benchmark::State& s) { bench_on_ack<cc::Hpcc>(s); }
void BM_DcqcnOnAck(benchmark::State& s) { bench_on_ack<cc::Dcqcn>(s); }
void BM_TimelyOnAck(benchmark::State& s) { bench_on_ack<cc::Timely>(s); }
void BM_DctcpOnAck(benchmark::State& s) { bench_on_ack<cc::Dctcp>(s); }
void BM_SwiftOnAck(benchmark::State& s) { bench_on_ack<cc::Swift>(s); }

void BM_IntStamp(benchmark::State& state) {
  // The switch-side work of §3.6's Tofino component: append one hop
  // record to a packet in flight.
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  std::int64_t i = 0;
  for (auto _ : state) {
    pkt.int_hdr.clear();
    for (int hop = 0; hop < 5; ++hop) {
      net::IntHopRecord rec;
      rec.qlen_bytes = i;
      rec.tx_bytes = i * 2;
      rec.ts = i * 3;
      rec.bandwidth_bps = 1e11;
      pkt.int_hdr.push(rec);
    }
    benchmark::DoNotOptimize(pkt);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 5);
}

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 256; ++i) {
      simulator.schedule_at(i * 1000, [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}

BENCHMARK(BM_PowerTcpOnAck);
BENCHMARK(BM_ThetaPowerTcpOnAck);
BENCHMARK(BM_HpccOnAck);
BENCHMARK(BM_DcqcnOnAck);
BENCHMARK(BM_TimelyOnAck);
BENCHMARK(BM_DctcpOnAck);
BENCHMARK(BM_SwiftOnAck);
BENCHMARK(BM_IntStamp);
BENCHMARK(BM_EventLoopScheduleRun);

}  // namespace

BENCHMARK_MAIN();
