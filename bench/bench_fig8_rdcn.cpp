/// Reproduces Fig. 8: the reconfigurable-DCN case study (§5).
///   (a) throughput + VOQ-length time series for one ToR pair under
///       PowerTCP, reTCP and HPCC as the circuit comes and goes;
///   (b) tail (p99) queuing latency at the ToR vs packet-network
///       bandwidth for reTCP-600us, reTCP-1800us, HPCC and PowerTCP.
///
/// Expected shape: reTCP fills the circuit instantly but holds
/// prebuffered queues (high latency, worse for longer prebuffering);
/// HPCC keeps queues low but ramps too slowly to fill the day; PowerTCP
/// fills the circuit within ~1 RTT at near-zero queue.
///
/// The scenario lives in harness/scenarios.* (shared with
/// `powertcp_run configs/fig8_quick.toml`): every scheme — reTCP
/// included — is resolved through cc::Registry, whose SchemeTopology
/// injects the rotor CircuitSchedule. Per-point simulations run on the
/// --threads=N pool; output is identical for every N.

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/scenarios.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig8_rdcn").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  harness::RdcnScenario scenario;
  scenario.topo.n_tors = 8;  // week = 7 slots; keeps horizon manageable
  scenario.topo.servers_per_tor = 4;
  scenario.topo.packet_bw = sim::Bandwidth::gbps(25);

  // PowerTCP in its normal per-ack mode: the paper's §5 limits updates
  // to per-RTT for the Fig. 8a comparison, but per-ack reaction halves
  // the day->night VOQ dump and is what the tail-latency claim rests
  // on. HPCC gets the per-RTT mode of the published case study; both
  // INT schemes may open the circuit-rate (4-BDP) window.
  const harness::SchemeRun powertcp{
      "powertcp", "powertcp", {{"max_cwnd_bdp", "4"}}};
  const harness::SchemeRun hpcc{
      "hpcc", "hpcc", {{"per_rtt_update", "true"}, {"max_cwnd_bdp", "4"}}};
  const harness::SchemeRun retcp600{
      "reTCP-600us", "retcp", {{"prebuffering_us", "600"}}};
  const harness::SchemeRun retcp1800{
      "reTCP-1800us", "retcp", {{"prebuffering_us", "1800"}}};

  harness::BenchReporter reporter("bench_fig8_rdcn", opts);
  reporter.add(harness::rdcn_timeseries_table(
      reporter.runner(), scenario, {powertcp, retcp600, hpcc},
      "fig8_timeseries",
      "Fig. 8a: rack0 -> rack1 throughput / VOQ time series "
      "(25G packet plane, 100G circuit)"));
  reporter.add(harness::rdcn_latency_table(
      reporter.runner(), scenario, {retcp600, retcp1800, hpcc, powertcp},
      {25, 50}, "fig8_p99",
      "Fig. 8b: p99 ToR queuing latency (us) vs packet bandwidth"));
  return reporter.finish();
}
