/// Reproduces Fig. 8: the reconfigurable-DCN case study (§5).
///   (a) throughput + VOQ-length time series for one ToR pair under
///       PowerTCP, reTCP and HPCC as the circuit comes and goes;
///   (b) tail (p99) queuing latency at the ToR vs packet-network
///       bandwidth for reTCP-600us, reTCP-1800us, HPCC and PowerTCP.
///
/// Expected shape: reTCP fills the circuit instantly but holds
/// prebuffered queues (high latency, worse for longer prebuffering);
/// HPCC keeps queues low but ramps too slowly to fill the day; PowerTCP
/// fills the circuit within ~1 RTT at near-zero queue.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cc/hpcc.hpp"
#include "cc/power_tcp.hpp"
#include "cc/retcp.hpp"
#include "host/flow.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/percentiles.hpp"
#include "stats/timeseries.hpp"
#include "topo/rdcn.hpp"

using namespace powertcp;

namespace {

struct Result {
  std::vector<double> gbps;
  std::vector<double> voq_kb;
  double p99_sojourn_us = 0;
  double circuit_utilization = 0;  ///< day-time goodput / circuit rate
};

std::unique_ptr<cc::CcAlgorithm> make_algo(const std::string& name,
                                           const cc::FlowParams& params,
                                           const topo::Rdcn& rdcn,
                                           sim::TimePs prebuf) {
  if (name == "powertcp") {
    cc::PowerTcpConfig cfg;
    // Per-ack updates: PowerTCP's normal mode. (The paper's §5 limits
    // updates to per-RTT for the Fig. 8a comparison; per-ack reaction
    // halves the day->night VOQ dump and is what the tail-latency
    // claim rests on. EXPERIMENTS.md reports both.)
    cfg.per_rtt_update = false;
    cfg.max_cwnd_bdp = 4.0;  // allow the circuit-rate window
    return std::make_unique<cc::PowerTcp>(params, cfg);
  }
  if (name == "hpcc") {
    cc::HpccConfig cfg;
    cfg.per_rtt_update = true;
    cfg.max_cwnd_bdp = 4.0;
    return std::make_unique<cc::Hpcc>(params, cfg);
  }
  cc::ReTcpConfig cfg;
  cfg.prebuffering = prebuf;
  cfg.circuit_bw_bps = rdcn.config().circuit_bw.bps();
  cfg.packet_bw_bps = rdcn.config().packet_bw.bps();
  return std::make_unique<cc::ReTcp>(params, &rdcn.schedule(), 0, 1, cfg);
}

Result run(const std::string& algo, sim::Bandwidth packet_bw,
           sim::TimePs prebuf, sim::TimePs horizon, sim::TimePs bin) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::RdcnConfig cfg;
  cfg.n_tors = 8;  // week = 7 slots; keeps the horizon manageable
  cfg.servers_per_tor = 4;
  cfg.packet_bw = packet_bw;
  topo::Rdcn rdcn(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  params.expected_flows = 10;

  stats::ThroughputSeries goodput(0, bin);
  stats::QueueSeries voq;
  stats::Samples sojourns_us;
  rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).set_queue_monitor(&voq);
  const auto sojourn_cb = [&sojourns_us](sim::TimePs d) {
    sojourns_us.add(sim::to_microseconds(d));
  };
  rdcn.tor(0)
      .port(rdcn.tor(0).circuit_port_index())
      .set_sojourn_callback(sojourn_cb);
  rdcn.tor(0)
      .port(rdcn.tor(0).uplink_port_index())
      .set_sojourn_callback(sojourn_cb);

  for (int s = 0; s < cfg.servers_per_tor; ++s) {
    const int dst_host = cfg.servers_per_tor + s;  // rack 1
    rdcn.host(dst_host).set_data_callback(
        [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
          goodput.add_bytes(now, bytes);
        });
    rdcn.host(s).start_flow(static_cast<net::FlowId>(s + 1),
                            rdcn.host(dst_host).id(), 2'000'000'000,
                            make_algo(algo, params, rdcn, prebuf), params, 0);
  }

  simulator.run_until(horizon);

  Result out;
  double day_bytes = 0, day_secs = 0;
  const auto bins = static_cast<std::size_t>(horizon / bin);
  for (std::size_t b = 0; b < bins; ++b) {
    const sim::TimePs t = goodput.bin_start(b);
    out.gbps.push_back(goodput.gbps(b));
    out.voq_kb.push_back(static_cast<double>(voq.at(t + bin / 2)) / 1e3);
    if (rdcn.schedule().active_peer(0, t) == 1 &&
        rdcn.schedule().active_peer(0, t + bin) == 1) {
      day_bytes += goodput.gbps(b) * sim::to_seconds(bin) / 8.0 * 1e9;
      day_secs += sim::to_seconds(bin);
    }
  }
  if (day_secs > 0) {
    out.circuit_utilization =
        day_bytes * 8.0 / day_secs / cfg.circuit_bw.bps();
  }
  if (!sojourns_us.empty()) out.p99_sojourn_us = sojourns_us.percentile(99);
  return out;
}

}  // namespace

int main() {
  const sim::TimePs horizon = sim::milliseconds(4);
  const sim::TimePs bin = sim::microseconds(50);

  std::printf("=== Fig. 8a: rack0 -> rack1 throughput / VOQ time series "
              "(25G packet plane, 100G circuit) ===\n");
  std::vector<std::string> algos = {"powertcp", "retcp", "hpcc"};
  std::vector<Result> results;
  for (const auto& a : algos) {
    results.push_back(run(a, sim::Bandwidth::gbps(25),
                          sim::microseconds(600), horizon, bin));
  }
  std::printf("%10s", "time");
  for (const auto& a : algos) std::printf(" | %-8.8s gbps voqKB", a.c_str());
  std::printf("\n");
  for (std::size_t b = 0; b < results[0].gbps.size(); b += 2) {
    std::printf("%10s",
                sim::format_time(static_cast<sim::TimePs>(b) * bin).c_str());
    for (const auto& r : results) {
      std::printf(" | %8.1f %8.1f", r.gbps[b], r.voq_kb[b]);
    }
    std::printf("\n");
  }
  std::printf("\ncircuit utilization during days: ");
  for (std::size_t i = 0; i < algos.size(); ++i) {
    std::printf("%s %.0f%%  ", algos[i].c_str(),
                results[i].circuit_utilization * 100);
  }
  std::printf("\n");

  std::printf("\n=== Fig. 8b: p99 ToR queuing latency (us) vs packet "
              "bandwidth ===\n");
  std::printf("%-14s %12s %12s\n", "scheme", "25G", "50G");
  struct Scheme {
    const char* label;
    const char* algo;
    sim::TimePs prebuf;
  };
  const Scheme schemes[] = {
      {"reTCP-600us", "retcp", sim::microseconds(600)},
      {"reTCP-1800us", "retcp", sim::microseconds(1800)},
      {"HPCC", "hpcc", 0},
      {"PowerTCP", "powertcp", 0},
  };
  for (const Scheme& s : schemes) {
    const Result r25 =
        run(s.algo, sim::Bandwidth::gbps(25), s.prebuf, horizon, bin);
    const Result r50 =
        run(s.algo, sim::Bandwidth::gbps(50), s.prebuf, horizon, bin);
    std::printf("%-14s %12.1f %12.1f\n", s.label, r25.p99_sojourn_us,
                r50.p99_sojourn_us);
  }
  return 0;
}
