/// Reproduces Fig. 7 (a-h): the detailed PowerTCP / θ-PowerTCP / HPCC
/// comparison.
///   (a,b) short/long-flow tail slowdown across 20-80% load;
///   (c,d) tail slowdown vs incast request *rate* (websearch@80% +
///         2MB-request incast overlay);
///   (e,f) tail slowdown vs incast request *size* (rate 256/s);
///   (g)   fabric buffer-occupancy CDF at 80% load;
///   (h)   buffer-occupancy CDF under the bursty overlay.
/// Same scaling conventions as bench_fig6 (see docs/architecture.md,
/// "Bench scaling conventions").
///
/// Sweep points are independent simulations, executed on a thread pool
/// (--threads=N); tables are identical for every N. --csv/--json emit
/// machine-readable copies of every table.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_opts.hpp"
#include "harness/sweep.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

struct RunSpec {
  sim::TimePs duration = sim::milliseconds(8);
  double size_scale = 0.1;
  double pct = 99.0;
};

harness::FatTreeExperiment base_cfg(const std::string& algo,
                                    const RunSpec& spec) {
  harness::FatTreeExperiment cfg;
  cfg.cc = algo;
  cfg.duration = spec.duration;
  cfg.size_scale = spec.size_scale;
  cfg.seed = 7;
  return cfg;
}

Cell pct_cell(const stats::Samples& s, double pct) {
  return s.empty() ? Cell() : Cell(s.percentile(pct), 2);
}

/// Short/long-flow tail slowdown extractor shared by Figs. 7a-7f.
auto slowdown_metrics(const RunSpec& spec, bool with_drops) {
  return [spec, with_drops](const harness::FatTreeExperiment&,
                            const harness::ExperimentResult& r) {
    const auto s = r.fct.slowdowns_in_range(
        0, static_cast<std::int64_t>(10'000 * spec.size_scale));
    const auto l = r.fct.slowdowns_in_range(
        static_cast<std::int64_t>(1'000'000 * spec.size_scale), INT64_MAX);
    std::vector<Cell> row = {pct_cell(s, spec.pct), pct_cell(l, spec.pct)};
    if (with_drops) {
      row.push_back(Cell::integer(static_cast<std::int64_t>(r.drops)));
    }
    return row;
  };
}

harness::SweepSpec fig7ab(const RunSpec& spec,
                          const std::vector<std::string>& algos) {
  harness::SweepSpec sw;
  char title[96];
  std::snprintf(title, sizeof(title),
                "Fig. 7a/7b: p%.1f slowdown vs load", spec.pct);
  sw.title = title;
  sw.slug = "fig7ab";
  sw.key_columns = {"algorithm", "load%"};
  sw.value_columns = {"short(<10K)", "long(>=1M)", "drops"};
  for (const double load : {0.2, 0.4, 0.6, 0.8}) {
    for (const auto& algo : algos) {
      harness::SweepPoint p;
      p.keys = {Cell(algo), Cell(load * 100, 0)};
      p.cfg = base_cfg(algo, spec);
      p.cfg.uplink_load = load;
      sw.points.push_back(std::move(p));
    }
  }
  sw.metrics = slowdown_metrics(spec, /*with_drops=*/true);
  return sw;
}

harness::SweepSpec fig7cd(const RunSpec& spec,
                          const std::vector<std::string>& algos) {
  harness::SweepSpec sw;
  char title[128];
  std::snprintf(title, sizeof(title),
                "Fig. 7c/7d: p%.1f slowdown vs incast request rate "
                "(websearch@80%%, request size 2MB x%.2f)",
                spec.pct, spec.size_scale);
  sw.title = title;
  sw.slug = "fig7cd";
  sw.key_columns = {"algorithm", "rate/s"};
  sw.value_columns = {"short(<10K)", "long(>=1M)"};
  // Rates scaled up vs the paper's 1-16/s because the horizon is ms,
  // not seconds; the ratio of burst bytes to background is preserved.
  for (const double rate : {64.0, 256.0, 512.0, 1024.0}) {
    for (const auto& algo : algos) {
      harness::SweepPoint p;
      p.keys = {Cell(algo), Cell(rate, 0)};
      p.cfg = base_cfg(algo, spec);
      p.cfg.uplink_load = 0.8;
      p.cfg.incast = true;
      p.cfg.incast_requests_per_sec = rate;
      p.cfg.incast_request_bytes =
          static_cast<std::int64_t>(2'000'000 * spec.size_scale);
      sw.points.push_back(std::move(p));
    }
  }
  sw.metrics = slowdown_metrics(spec, /*with_drops=*/false);
  return sw;
}

harness::SweepSpec fig7ef(const RunSpec& spec,
                          const std::vector<std::string>& algos) {
  harness::SweepSpec sw;
  char title[96];
  std::snprintf(title, sizeof(title),
                "Fig. 7e/7f: p%.1f slowdown vs incast request size "
                "(rate 256/s)",
                spec.pct);
  sw.title = title;
  sw.slug = "fig7ef";
  sw.key_columns = {"algorithm", "sizeMB"};
  sw.value_columns = {"short(<10K)", "long(>=1M)"};
  for (const double mb : {1.0, 2.0, 4.0, 8.0}) {
    for (const auto& algo : algos) {
      harness::SweepPoint p;
      p.keys = {Cell(algo), Cell(mb, 0)};
      p.cfg = base_cfg(algo, spec);
      p.cfg.uplink_load = 0.8;
      p.cfg.incast = true;
      p.cfg.incast_requests_per_sec = 256.0;
      p.cfg.incast_request_bytes =
          static_cast<std::int64_t>(mb * 1e6 * spec.size_scale);
      sw.points.push_back(std::move(p));
    }
  }
  sw.metrics = slowdown_metrics(spec, /*with_drops=*/false);
  return sw;
}

harness::SweepSpec fig7gh(const RunSpec& spec,
                          const std::vector<std::string>& algos,
                          bool bursty) {
  harness::SweepSpec sw;
  sw.title = bursty ? "Fig. 7h: ToR-uplink buffer occupancy at 80% load, "
                      "with incast overlay (KB at CDF points)"
                    : "Fig. 7g: ToR-uplink buffer occupancy at 80% load "
                      "(KB at CDF points)";
  sw.slug = bursty ? "fig7h" : "fig7g";
  sw.key_columns = {"algorithm"};
  // Columns come from the serializable summary form, so table headers
  // and the metrics row below cannot drift apart.
  for (const auto& nv : stats::SampleSummary{}.named_values()) {
    sw.value_columns.push_back(nv.first);
  }
  for (const auto& algo : algos) {
    harness::SweepPoint p;
    p.keys = {Cell(algo)};
    p.cfg = base_cfg(algo, spec);
    p.cfg.uplink_load = 0.8;
    if (bursty) {
      p.cfg.incast = true;
      p.cfg.incast_requests_per_sec = 512.0;
      p.cfg.incast_request_bytes =
          static_cast<std::int64_t>(2'000'000 * spec.size_scale);
    }
    sw.points.push_back(std::move(p));
  }
  sw.metrics = [](const harness::FatTreeExperiment&,
                  const harness::ExperimentResult& r) {
    std::vector<Cell> row;
    for (const auto& nv : r.uplink_queue_bytes.summary().named_values()) {
      row.push_back(Cell(nv.second / 1e3, 1));
    }
    return row;
  };
  return sw;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig7_sweeps").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  RunSpec spec;
  if (opts.fast) spec.duration = sim::milliseconds(6);
  if (opts.full) {
    spec.duration = sim::milliseconds(100);
    spec.size_scale = 1.0;
    spec.pct = 99.9;
  }
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc"};

  harness::BenchReporter reporter("bench_fig7_sweeps", opts);
  reporter.add(reporter.runner().run(fig7ab(spec, algos)));
  reporter.add(reporter.runner().run(fig7cd(spec, algos)));
  reporter.add(reporter.runner().run(fig7ef(spec, algos)));
  reporter.add(reporter.runner().run(fig7gh(spec, algos, false)));
  reporter.add(reporter.runner().run(fig7gh(spec, algos, true)));
  return reporter.finish();
}
