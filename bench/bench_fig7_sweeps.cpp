/// Reproduces Fig. 7 (a-h): the detailed PowerTCP / θ-PowerTCP / HPCC
/// comparison.
///   (a,b) short/long-flow tail slowdown across 20-80% load;
///   (c,d) tail slowdown vs incast request *rate* (websearch@80% +
///         2MB-request incast overlay);
///   (e,f) tail slowdown vs incast request *size* (rate 4/s);
///   (g)   fabric buffer-occupancy CDF at 80% load;
///   (h)   buffer-occupancy CDF under the bursty overlay.
/// Same scaling conventions as bench_fig6 (see docs/architecture.md,
/// "Bench scaling conventions").

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

using namespace powertcp;

namespace {

struct RunSpec {
  sim::TimePs duration = sim::milliseconds(8);
  double size_scale = 0.1;
  double pct = 99.0;
};

harness::FatTreeExperiment base_cfg(const std::string& algo,
                                    const RunSpec& spec) {
  harness::FatTreeExperiment cfg;
  cfg.cc = algo;
  cfg.duration = spec.duration;
  cfg.size_scale = spec.size_scale;
  cfg.seed = 7;
  return cfg;
}

void fig7ab(const RunSpec& spec, const std::vector<std::string>& algos) {
  std::printf("=== Fig. 7a/7b: p%.1f slowdown vs load ===\n", spec.pct);
  std::printf("%-16s %6s %12s %12s %8s\n", "algorithm", "load",
              "short(<10K)", "long(>=1M)", "drops");
  for (const double load : {0.2, 0.4, 0.6, 0.8}) {
    for (const auto& algo : algos) {
      auto cfg = base_cfg(algo, spec);
      cfg.uplink_load = load;
      const auto r = harness::run_fat_tree_experiment(cfg);
      const auto s = r.fct.slowdowns_in_range(
          0, static_cast<std::int64_t>(10'000 * spec.size_scale));
      const auto l = r.fct.slowdowns_in_range(
          static_cast<std::int64_t>(1'000'000 * spec.size_scale), INT64_MAX);
      std::printf("%-16s %6.0f%% %12.2f %12.2f %8llu\n", algo.c_str(),
                  load * 100, s.empty() ? -1 : s.percentile(spec.pct),
                  l.empty() ? -1 : l.percentile(spec.pct),
                  static_cast<unsigned long long>(r.drops));
    }
  }
}

void fig7cdef(const RunSpec& spec, const std::vector<std::string>& algos) {
  std::printf("\n=== Fig. 7c/7d: p%.1f slowdown vs incast request rate "
              "(websearch@80%% + incast, request size 2MB x%.2f) ===\n",
              spec.pct, spec.size_scale);
  std::printf("%-16s %6s %12s %12s\n", "algorithm", "rate", "short", "long");
  for (const double rate : {64.0, 256.0, 512.0, 1024.0}) {
    // Rates scaled up vs the paper's 1-16/s because the horizon is ms,
    // not seconds; the ratio of burst bytes to background is preserved.
    for (const auto& algo : algos) {
      auto cfg = base_cfg(algo, spec);
      cfg.uplink_load = 0.8;
      cfg.incast = true;
      cfg.incast_requests_per_sec = rate;
      cfg.incast_request_bytes =
          static_cast<std::int64_t>(2'000'000 * spec.size_scale);
      const auto r = harness::run_fat_tree_experiment(cfg);
      const auto s = r.fct.slowdowns_in_range(
          0, static_cast<std::int64_t>(10'000 * spec.size_scale));
      const auto l = r.fct.slowdowns_in_range(
          static_cast<std::int64_t>(1'000'000 * spec.size_scale), INT64_MAX);
      std::printf("%-16s %6.0f %12.2f %12.2f\n", algo.c_str(), rate,
                  s.empty() ? -1 : s.percentile(spec.pct),
                  l.empty() ? -1 : l.percentile(spec.pct));
    }
  }

  std::printf("\n=== Fig. 7e/7f: p%.1f slowdown vs incast request size "
              "(rate 256/s) ===\n",
              spec.pct);
  std::printf("%-16s %7s %12s %12s\n", "algorithm", "sizeMB", "short",
              "long");
  for (const double mb : {1.0, 2.0, 4.0, 8.0}) {
    for (const auto& algo : algos) {
      auto cfg = base_cfg(algo, spec);
      cfg.uplink_load = 0.8;
      cfg.incast = true;
      cfg.incast_requests_per_sec = 256.0;
      cfg.incast_request_bytes =
          static_cast<std::int64_t>(mb * 1e6 * spec.size_scale);
      const auto r = harness::run_fat_tree_experiment(cfg);
      const auto s = r.fct.slowdowns_in_range(
          0, static_cast<std::int64_t>(10'000 * spec.size_scale));
      const auto l = r.fct.slowdowns_in_range(
          static_cast<std::int64_t>(1'000'000 * spec.size_scale), INT64_MAX);
      std::printf("%-16s %7.0f %12.2f %12.2f\n", algo.c_str(), mb,
                  s.empty() ? -1 : s.percentile(spec.pct),
                  l.empty() ? -1 : l.percentile(spec.pct));
    }
  }
}

void fig7gh(const RunSpec& spec, const std::vector<std::string>& algos) {
  std::printf("\n=== Fig. 7g: ToR-uplink buffer occupancy at 80%% load "
              "(KB at CDF points) ===\n");
  std::printf("%-16s %8s %8s %8s %8s %8s\n", "algorithm", "p50", "p90",
              "p99", "p99.9", "max");
  for (const bool bursty : {false, true}) {
    if (bursty) {
      std::printf("\n=== Fig. 7h: same, with incast overlay ===\n");
      std::printf("%-16s %8s %8s %8s %8s %8s\n", "algorithm", "p50", "p90",
                  "p99", "p99.9", "max");
    }
    for (const auto& algo : algos) {
      auto cfg = base_cfg(algo, spec);
      cfg.uplink_load = 0.8;
      if (bursty) {
        cfg.incast = true;
        cfg.incast_requests_per_sec = 512.0;
        cfg.incast_request_bytes =
            static_cast<std::int64_t>(2'000'000 * spec.size_scale);
      }
      const auto r = harness::run_fat_tree_experiment(cfg);
      const auto& q = r.uplink_queue_bytes;
      std::printf("%-16s %8.1f %8.1f %8.1f %8.1f %8.1f\n", algo.c_str(),
                  q.percentile(50) / 1e3, q.percentile(90) / 1e3,
                  q.percentile(99) / 1e3, q.percentile(99.9) / 1e3,
                  q.max() / 1e3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      spec.duration = sim::milliseconds(6);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      spec.duration = sim::milliseconds(100);
      spec.size_scale = 1.0;
      spec.pct = 99.9;
    }
  }
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc"};
  fig7ab(spec, algos);
  fig7cdef(spec, algos);
  fig7gh(spec, algos);
  return 0;
}
