/// Ablation of PowerTCP's two parameters (§3.3):
///   γ — the EWMA weight of window updates. The paper recommends 0.9
///       from a sweep: lower γ reacts sluggishly, γ = 1 maximizes
///       reaction speed but passes measurement noise straight through.
///   β — the additive increase HostBw·τ/N. The equilibrium queue is
///       Σβ (Appendix A), so oversized β (small N) buys convergence
///       speed with standing queues.
/// Each row runs the websearch fat-tree experiment at 60% load and the
/// 10:1 incast microbenchmark.

#include <cstdio>

#include "cc/power_tcp.hpp"
#include "harness/experiment.hpp"
#include "net/network.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;

namespace {

struct IncastStats {
  double peak_queue_kb = 0;
  double settle_us = -1;
  double mean_queue_after_kb = 0;  ///< time-weighted, post-settle
};

IncastStats incast_with(const cc::PowerTcpConfig& pcfg, int n_for_beta) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 11;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = n_for_beta;

  stats::QueueSeries queue;
  topo.bottleneck_port().set_queue_monitor(&queue);
  topo.sender(0).start_flow(
      1, topo.receiver().id(), 1'000'000'000,
      std::make_unique<cc::PowerTcp>(params, pcfg), params, 0);
  const sim::TimePs burst = sim::microseconds(300);
  for (int i = 1; i < 11; ++i) {
    topo.sender(i).start_flow(
        static_cast<net::FlowId>(i + 1), topo.receiver().id(), 500'000,
        std::make_unique<cc::PowerTcp>(params, pcfg), params, burst);
  }
  simulator.run_until(sim::milliseconds(4));

  IncastStats out;
  out.peak_queue_kb = static_cast<double>(queue.max_bytes()) / 1e3;
  const auto threshold = queue.max_bytes() / 10;
  for (const auto& p : queue.points()) {
    if (p.t > burst + sim::microseconds(20) && p.bytes <= threshold) {
      out.settle_us = sim::to_microseconds(p.t - burst);
      break;
    }
  }
  // Residual queueing once the burst is absorbed: γ too low leaves the
  // window misadjusted longer; γ = 1 tracks noise.
  out.mean_queue_after_kb =
      queue.time_weighted_mean(sim::milliseconds(1), sim::milliseconds(4)) /
      1e3;
  return out;
}

}  // namespace

int main() {
  std::printf("=== gamma ablation: 10:1 incast microbench (N = 64) ===\n");
  std::printf("%6s %14s %12s %18s\n", "gamma", "peakQ(KB)", "settle(us)",
              "residualQ(KB)");
  for (const double gamma : {0.1, 0.3, 0.6, 0.9, 1.0}) {
    cc::PowerTcpConfig pcfg;
    pcfg.gamma = gamma;
    const IncastStats inc = incast_with(pcfg, 64);
    std::printf("%6.2f %14.1f %12.1f %18.2f%s\n", gamma,
                inc.peak_queue_kb, inc.settle_us, inc.mean_queue_after_kb,
                gamma == 0.9 ? "   <- paper default" : "");
  }

  std::printf("\n=== beta ablation: N in beta = HostBw*tau/N "
              "(gamma = 0.9) ===\n");
  std::printf("%6s %12s %12s %14s %12s\n", "N", "short-p99", "all-p50",
              "uplinkQ-p99", "drops");
  for (const int n : {8, 16, 64, 256}) {
    harness::FatTreeExperiment cfg;
    cfg.cc = "powertcp";
    cfg.uplink_load = 0.6;
    cfg.duration = sim::milliseconds(8);
    cfg.size_scale = 0.1;
    cfg.seed = 42;
    cfg.expected_flows = n;
    const auto r = harness::run_fat_tree_experiment(cfg);
    const auto s = r.fct.slowdowns_in_range(0, 1'000);
    std::printf("%6d %12.2f %12.2f %12.1fKB %12llu\n", n,
                s.empty() ? -1.0 : s.percentile(99),
                r.fct.all_slowdowns().percentile(50),
                r.uplink_queue_bytes.percentile(99) / 1e3,
                static_cast<unsigned long long>(r.drops));
  }
  std::printf("\nlarger N (smaller beta) -> lower standing queues and\n"
              "better tail FCTs, at slower fairness convergence "
              "(Theorem 3 weights).\n");
  return 0;
}
