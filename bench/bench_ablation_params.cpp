/// Ablation of PowerTCP's two parameters (§3.3):
///   γ — the EWMA weight of window updates. The paper recommends 0.9
///       from a sweep: lower γ reacts sluggishly, γ = 1 maximizes
///       reaction speed but passes measurement noise straight through.
///   β — the additive increase HostBw·τ/N. The equilibrium queue is
///       Σβ (Appendix A), so oversized β (small N) buys convergence
///       speed with standing queues.
/// Each row runs the websearch fat-tree experiment at 60% load and the
/// 10:1 incast microbenchmark. Rows are independent simulations and run
/// on the --threads=N pool; output is identical for every N.

#include <cstdio>
#include <functional>
#include <vector>

#include "cc/power_tcp.hpp"
#include "harness/bench_opts.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "net/network.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

struct IncastStats {
  double peak_queue_kb = 0;
  double settle_us = -1;
  double mean_queue_after_kb = 0;  ///< time-weighted, post-settle
};

IncastStats incast_with(const cc::PowerTcpConfig& pcfg, int n_for_beta) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 11;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = n_for_beta;

  stats::QueueSeries queue;
  topo.bottleneck_port().set_queue_monitor(&queue);
  topo.sender(0).start_flow(
      1, topo.receiver().id(), 1'000'000'000,
      std::make_unique<cc::PowerTcp>(params, pcfg), params, 0);
  const sim::TimePs burst = sim::microseconds(300);
  for (int i = 1; i < 11; ++i) {
    topo.sender(i).start_flow(
        static_cast<net::FlowId>(i + 1), topo.receiver().id(), 500'000,
        std::make_unique<cc::PowerTcp>(params, pcfg), params, burst);
  }
  simulator.run_until(sim::milliseconds(4));

  IncastStats out;
  out.peak_queue_kb = static_cast<double>(queue.max_bytes()) / 1e3;
  const auto threshold = queue.max_bytes() / 10;
  for (const auto& p : queue.points()) {
    if (p.t > burst + sim::microseconds(20) && p.bytes <= threshold) {
      out.settle_us = sim::to_microseconds(p.t - burst);
      break;
    }
  }
  // Residual queueing once the burst is absorbed: γ too low leaves the
  // window misadjusted longer; γ = 1 tracks noise.
  out.mean_queue_after_kb =
      queue.time_weighted_mean(sim::milliseconds(1), sim::milliseconds(4)) /
      1e3;
  return out;
}

harness::ResultTable gamma_table(harness::SweepRunner& runner) {
  const std::vector<double> gammas = {0.1, 0.3, 0.6, 0.9, 1.0};
  std::vector<std::function<IncastStats()>> jobs;
  jobs.reserve(gammas.size());
  for (const double gamma : gammas) {
    jobs.push_back([gamma] {
      cc::PowerTcpConfig pcfg;
      pcfg.gamma = gamma;
      return incast_with(pcfg, 64);
    });
  }
  const std::vector<IncastStats> rows = runner.map(jobs);

  harness::ResultTable t;
  t.title = "gamma ablation: 10:1 incast microbench (N = 64)";
  t.slug = "ablation_gamma";
  t.key_columns = {"gamma"};
  t.value_columns = {"peakQ(KB)", "settle(us)", "residualQ(KB)", "note"};
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    harness::ResultTable::Row row;
    row.keys = {Cell(gammas[i], 2)};
    row.values = {Cell(rows[i].peak_queue_kb, 1),
                  Cell(rows[i].settle_us, 1),
                  Cell(rows[i].mean_queue_after_kb, 2),
                  gammas[i] == 0.9 ? Cell(std::string("<- paper default"))
                                   : Cell()};
    t.rows.push_back(std::move(row));
  }
  return t;
}

harness::SweepSpec beta_sweep() {
  harness::SweepSpec sw;
  sw.title = "beta ablation: N in beta = HostBw*tau/N (gamma = 0.9)";
  sw.slug = "ablation_beta";
  sw.key_columns = {"N"};
  sw.value_columns = {"short-p99", "all-p50", "uplinkQ-p99(KB)", "drops"};
  for (const int n : {8, 16, 64, 256}) {
    harness::SweepPoint p;
    p.keys = {Cell::integer(n)};
    p.cfg.cc = "powertcp";
    p.cfg.uplink_load = 0.6;
    p.cfg.duration = sim::milliseconds(8);
    p.cfg.size_scale = 0.1;
    p.cfg.seed = 42;
    p.cfg.expected_flows = n;
    sw.points.push_back(std::move(p));
  }
  sw.metrics = [](const harness::FatTreeExperiment&,
                  const harness::ExperimentResult& r) {
    const auto s = r.fct.slowdowns_in_range(0, 1'000);
    return std::vector<Cell>{
        s.empty() ? Cell() : Cell(s.percentile(99), 2),
        Cell(r.fct.all_slowdowns().percentile(50), 2),
        Cell(r.uplink_queue_bytes.percentile(99) / 1e3, 1),
        Cell::integer(static_cast<std::int64_t>(r.drops))};
  };
  return sw;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(
        harness::BenchOptions::usage("bench_ablation_params").c_str(),
        stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  harness::BenchReporter reporter("bench_ablation_params", opts);
  reporter.add(gamma_table(reporter.runner()));
  reporter.add(reporter.runner().run(beta_sweep()));
  std::printf("\nlarger N (smaller beta) -> lower standing queues and\n"
              "better tail FCTs, at slower fairness convergence "
              "(Theorem 3 weights).\n");
  return reporter.finish();
}
