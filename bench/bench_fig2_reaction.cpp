/// Reproduces Fig. 2 (a, b, c): the orthogonal reactions of voltage- and
/// current-based congestion control.
///
///  (a) multiplicative decrease vs queue *buildup rate* — voltage-based
///      laws are flat, gradient-based laws proportional;
///  (b) multiplicative decrease vs queue *length* — gradient-based laws
///      are flat, voltage-based laws proportional;
///  (c) the three-case disambiguation: voltage cannot tell case-2 from
///      case-3, current cannot tell case-1 from case-3; power can.

#include <cstdio>

#include "analysis/control_law.hpp"

using namespace powertcp::analysis;

namespace {

/// Fig. 2's illustrative setting: b·τ = 22.32 packets of 1 KB, so the
/// paper's printed decrease factors (3.24 / 2.12 / 9 / 1) come out
/// exactly.
FluidParams fig2_params() {
  FluidParams p;
  p.bandwidth_Bps = 25e9 / 8.0;        // 25 Gbps bottleneck
  p.base_rtt_s = 22.32 * 1000.0 / p.bandwidth_Bps;  // BDP = 22.32 pkts
  return p;
}

}  // namespace

int main() {
  const FluidParams p = fig2_params();
  const double pkt = 1000.0;

  std::printf("=== Fig. 2a: multiplicative decrease vs queue buildup rate "
              "(queue fixed at 25 pkts) ===\n");
  std::printf("%12s %14s %14s %14s\n", "rate (x bw)", "voltage-CC",
              "gradient-CC", "power-CC");
  for (double r = 0.0; r <= 8.01; r += 1.0) {
    const double q = 25 * pkt;
    const double q_dot = r * p.bandwidth_Bps;
    std::printf("%12.0f %14.2f %14.2f %14.2f\n", r,
                feedback_ratio(LawType::kQueueLength, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kRttGradient, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kPower, p, q, q_dot,
                               p.bandwidth_Bps));
  }

  std::printf("\n=== Fig. 2b: multiplicative decrease vs queue length "
              "(buildup rate fixed at 1x bw) ===\n");
  std::printf("%12s %14s %14s %14s\n", "queue (pkts)", "voltage-CC",
              "gradient-CC", "power-CC");
  for (double q_pkts = 0.0; q_pkts <= 60.01; q_pkts += 10.0) {
    const double q = q_pkts * pkt;
    const double q_dot = 1.0 * p.bandwidth_Bps;
    std::printf("%12.0f %14.2f %14.2f %14.2f\n", q_pkts,
                feedback_ratio(LawType::kQueueLength, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kRttGradient, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kPower, p, q, q_dot,
                               p.bandwidth_Bps));
  }

  std::printf("\n=== Fig. 2c: three scenarios ===\n");
  struct Case {
    const char* desc;
    double q_pkts;
    double rate_x;  ///< queue buildup in multiples of bandwidth
  };
  const Case cases[] = {
      {"case-1: q=50 pkts, increasing at 8x", 50, 8},
      {"case-2: q=25 pkts, draining at max rate", 25, 0},
      {"case-3: q=25 pkts, increasing at 8x", 25, 8},
  };
  std::printf("%-42s %10s %10s %10s\n", "scenario", "voltage", "current",
              "power");
  for (const Case& c : cases) {
    const double q = c.q_pkts * pkt;
    const double q_dot = c.rate_x * p.bandwidth_Bps;
    std::printf("%-42s %10.2f %10.2f %10.2f\n", c.desc,
                feedback_ratio(LawType::kQueueLength, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kRttGradient, p, q, q_dot,
                               p.bandwidth_Bps),
                feedback_ratio(LawType::kPower, p, q, q_dot,
                               p.bandwidth_Bps));
  }
  std::printf(
      "\npaper: voltage 3.24/2.12/2.12 cannot separate case-2 vs case-3;\n"
      "       current 9/1/9 cannot separate case-1 vs case-3;\n"
      "       power separates all three.\n");
  return 0;
}
