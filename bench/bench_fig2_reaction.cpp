/// Reproduces Fig. 2 (a, b, c): the orthogonal reactions of voltage- and
/// current-based congestion control.
///
///  (a) multiplicative decrease vs queue *buildup rate* — voltage-based
///      laws are flat, gradient-based laws proportional;
///  (b) multiplicative decrease vs queue *length* — gradient-based laws
///      are flat, voltage-based laws proportional;
///  (c) the three-case disambiguation: voltage (3.24/2.12/2.12) cannot
///      tell case-2 from case-3, current (9/1/9) cannot tell case-1
///      from case-3; power separates all three.
///
/// The curves live in harness/runner.* behind the `single_flow`
/// registry kind (shared with `powertcp_run configs/fig2_reaction.toml`,
/// which prints identical tables — pinned by
/// RunnerGolden.Fig2ConfigMatchesBench).

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/runner.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig2_reaction").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const harness::RunnerConfig rc = harness::fig2_runner_config();
  std::printf("Fig. 2: reaction curves of the voltage/current/power laws\n\n");
  harness::BenchReporter reporter("bench_fig2_reaction", opts);
  for (auto& table : harness::run_config(rc, reporter.runner())) {
    reporter.add(std::move(table));
  }
  return reporter.finish();
}
