/// Reproduces Fig. 4: reaction to incast. A long flow streams to one
/// receiver; at t=500us an N:1 incast slams the same downlink. Top row
/// of the paper is N=10, bottom row the all-to-one case (255:1 there;
/// all remote hosts here). For each algorithm we print the throughput /
/// bottleneck-queue time series around the burst.
///
/// Expected shape (paper §4.2): PowerTCP and θ-PowerTCP mitigate the
/// incast and return to near-zero queue without losing throughput; HPCC
/// reaches ~2x PowerTCP's buffer peak and loses throughput afterwards;
/// TIMELY controls neither; HOMA sustains throughput but holds queues.
///
/// The scenario lives in harness/scenarios.* (shared with
/// `powertcp_run configs/fig4_quick.toml`); per-algorithm simulations
/// are independent and run on the --threads=N pool with output
/// identical for every N.

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/runner.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig4_incast").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  std::vector<harness::SchemeRun> schemes;
  for (const char* name :
       {"powertcp", "theta-powertcp", "timely", "hpcc", "homa"}) {
    schemes.push_back(harness::SchemeRun{"", name, {}});
  }
  harness::IncastScenario scenario;  // quick fat-tree, 3ms horizon

  harness::BenchReporter reporter("bench_fig4_incast", opts);
  // Top row: 10:1 of long flows. Bottom row: additionally every remote
  // host answers a 2 MB query (the paper's 255:1 scaled to this fabric).
  reporter.add(harness::incast_figure_table(reporter.runner(), scenario,
                                            schemes, "fig4"));
  scenario.fan_in = 55;
  scenario.query_bytes = 2'000'000;
  reporter.add(harness::incast_figure_table(reporter.runner(), scenario,
                                            schemes, "fig4"));
  return reporter.finish();
}
