/// Reproduces Fig. 4: reaction to incast. A long flow streams to one
/// receiver; at t=500us an N:1 incast slams the same downlink. Top row
/// of the paper is N=10, bottom row the all-to-one case (255:1 there;
/// all remote hosts here). For each algorithm we print the throughput /
/// bottleneck-queue time series around the burst.
///
/// Expected shape (paper §4.2): PowerTCP and θ-PowerTCP mitigate the
/// incast and return to near-zero queue without losing throughput; HPCC
/// reaches ~2x PowerTCP's buffer peak and loses throughput afterwards;
/// TIMELY controls neither; HOMA sustains throughput but holds queues.
///
/// The per-algorithm simulations are independent and run on the
/// --threads=N pool; output is identical for every N.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "harness/bench_opts.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/fat_tree.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

struct Series {
  std::vector<double> gbps;
  std::vector<double> queue_kb;
};

Series run(const std::string& algo, int fan_in, std::int64_t query_bytes,
           sim::TimePs horizon, sim::TimePs bin) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  cfg.ecn = harness::ecn_profile_for(algo);
  cfg.priority_bands = algo == "homa" ? 8 : 0;
  topo::FatTree fabric(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  params.expected_flows = 8;

  const int receiver = 0;
  const int long_sender = fabric.host_count() - 1;
  stats::ThroughputSeries goodput(0, bin);
  fabric.host(receiver).set_data_callback(
      [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);

  // Paper setup: ten *long* flows join the long flow's receiver at
  // t=500us; the large-scale case additionally fans a query of
  // `query_bytes` total across every other server (each responder sends
  // query_bytes / fan_in, ~8 KB at the paper's 2MB/255).
  const sim::TimePs burst_at = sim::microseconds(500);
  const std::int64_t long_flow_bytes = 400'000'000;
  const std::int64_t burst_bytes =
      query_bytes > 0 ? std::max<std::int64_t>(1'000, query_bytes / fan_in)
                      : long_flow_bytes;

  if (algo == "homa") {
    host::HomaConfig hc;
    hc.rtt_bytes = static_cast<std::int64_t>(params.bdp_bytes());
    for (int h = 0; h < fabric.host_count(); ++h) {
      fabric.host(h).enable_homa(hc);
    }
    host::Host& ls = fabric.host(long_sender);
    simulator.schedule_at(0, [&ls, &fabric, receiver] {
      ls.homa()->send_message(1, fabric.host_node(receiver), 400'000'000);
    });
    // Ten long companions as in the paper's top row.
    for (int i = 0; i < 10; ++i) {
      const int s = 1 + i;
      host::Host& h = fabric.host(cfg.servers_per_tor + s);
      const net::FlowId fid = static_cast<net::FlowId>(10 + i);
      simulator.schedule_at(burst_at, [&h, fid, &fabric, receiver] {
        h.homa()->send_message(fid, fabric.host_node(receiver),
                               400'000'000);
      });
    }
    int id = 100;
    for (int i = 0; query_bytes > 0 && i < fan_in; ++i) {
      const int responder = cfg.servers_per_tor +
                            i % (fabric.host_count() - cfg.servers_per_tor -
                                 1);
      host::Host& h = fabric.host(responder);
      const net::FlowId fid = static_cast<net::FlowId>(id++);
      simulator.schedule_at(burst_at, [&h, fid, &fabric, receiver,
                                       burst_bytes] {
        h.homa()->send_message(fid, fabric.host_node(receiver), burst_bytes);
      });
    }
  } else {
    const cc::CcFactory factory = cc::make_factory(algo);
    fabric.host(long_sender)
        .start_flow(1, fabric.host_node(receiver), long_flow_bytes,
                    factory(params), params, 0);
    // Ten long companions (the 10:1 incast of the top row).
    for (int i = 0; i < 10; ++i) {
      const int responder = cfg.servers_per_tor + 1 + i;
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(10 + i), fabric.host_node(receiver),
          long_flow_bytes, factory(params), params, burst_at);
    }
    // The query fan-in of the bottom row.
    for (int i = 0; query_bytes > 0 && i < fan_in; ++i) {
      const int responder = cfg.servers_per_tor +
                            i % (fabric.host_count() - cfg.servers_per_tor -
                                 1);
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(100 + i), fabric.host_node(receiver),
          burst_bytes, factory(params), params, burst_at);
    }
  }

  simulator.run_until(horizon);

  Series out;
  const auto bins = static_cast<std::size_t>(horizon / bin);
  for (std::size_t b = 0; b < bins; ++b) {
    out.gbps.push_back(goodput.gbps(b));
    out.queue_kb.push_back(
        static_cast<double>(queue.at(goodput.bin_start(b) + bin / 2)) / 1e3);
  }
  return out;
}

harness::ResultTable table(harness::SweepRunner& runner,
                           const std::vector<std::string>& algos, int fan_in,
                           std::int64_t query_bytes, sim::TimePs horizon,
                           sim::TimePs bin) {
  std::vector<std::function<Series()>> jobs;
  jobs.reserve(algos.size());
  for (const auto& a : algos) {
    jobs.push_back([a, fan_in, query_bytes, horizon, bin] {
      return run(a, fan_in, query_bytes, horizon, bin);
    });
  }
  const std::vector<Series> rows = runner.map(jobs);

  harness::ResultTable t;
  if (query_bytes > 0) {
    char title[96];
    std::snprintf(title, sizeof(title),
                  "10 long flows + %d:1 query incast (%lld KB total) "
                  "at t=500us",
                  fan_in, static_cast<long long>(query_bytes / 1000));
    t.title = title;
    t.slug = "fig4_query";
  } else {
    t.title = "10:1 incast of long flows at t=500us";
    t.slug = "fig4_10to1";
  }
  t.key_columns = {"time"};
  for (const auto& a : algos) {
    t.value_columns.push_back(a + " gbps");
    t.value_columns.push_back(a + " qKB");
  }
  const auto bins = rows.front().gbps.size();
  for (std::size_t b = 0; b < bins; b += 2) {
    harness::ResultTable::Row row;
    row.keys = {
        Cell(sim::format_time(static_cast<sim::TimePs>(b) * bin))};
    for (const auto& r : rows) {
      row.values.push_back(Cell(r.gbps[b], 1));
      row.values.push_back(Cell(r.queue_kb[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig4_incast").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "timely", "hpcc", "homa"};
  harness::BenchReporter reporter("bench_fig4_incast", opts);
  // Top row: 10:1 of long flows. Bottom row: additionally every remote
  // host answers a 2 MB query (the paper's 255:1 scaled to this fabric).
  reporter.add(table(reporter.runner(), algos, 10, 0, sim::milliseconds(3),
                     sim::microseconds(50)));
  reporter.add(table(reporter.runner(), algos, 55, 2'000'000,
                     sim::milliseconds(3), sim::microseconds(50)));
  return reporter.finish();
}
