/// Reproduces Fig. 3 (a, b, c): phase-plot trajectories of the fluid
/// model (window vs inflight bytes) from a grid of initial states, for
/// voltage-based CC, current-based CC, and PowerTCP. The properties the
/// figure demonstrates are printed as checks:
///   (a) voltage-based: unique equilibrium, but trajectories dip below
///       the BDP line (throughput loss);
///   (b) current-based: different initial states settle at *different*
///       final queues — no unique equilibrium;
///   (c) power-based: unique equilibrium, no BDP undershoot, short
///       trajectories.
/// Setting mirrors the paper: 100 Gbps bottleneck, 20 us base RTT.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/theorems.hpp"

using namespace powertcp::analysis;

namespace {

FluidParams paper_params() {
  FluidParams p;
  p.bandwidth_Bps = 100e9 / 8.0;
  p.base_rtt_s = 20e-6;
  p.gamma = 0.9;
  p.update_interval_s = 20e-6;
  p.beta_bytes = 0.01 * p.bdp_bytes();  // small additive increase
  return p;
}

struct Summary {
  double min_inflight = 1e300;  ///< lowest inflight seen (undershoot)
  FluidState final_state;
};

Summary trace(const FluidModel& model, const FluidState& init) {
  Summary s;
  const auto traj = model.trajectory(init, /*duration=*/4e-3,
                                     /*step=*/2e-7, /*sample=*/2e-6);
  for (const auto& pt : traj) {
    // Undershoot only counts once the system is past the initial
    // transient toward the line (non-trivial windows).
    if (pt.t > 5 * model.params().base_rtt_s) {
      s.min_inflight = std::min(s.min_inflight, pt.inflight_bytes);
    }
  }
  s.final_state = traj.back().state;
  return s;
}

}  // namespace

int main() {
  const FluidParams p = paper_params();
  const double bdp = p.bdp_bytes();

  const std::vector<FluidState> grid = {
      {0.3 * bdp, 0.0},      {3.0 * bdp, 0.0},    {1.0 * bdp, 2.0 * bdp},
      {4.0 * bdp, 1.0 * bdp}, {0.5 * bdp, 3.0 * bdp}, {6.0 * bdp, 4.0 * bdp},
  };

  const LawType laws[] = {LawType::kQueueLength, LawType::kRttGradient,
                          LawType::kPower};
  std::printf("Fig. 3 phase portraits: b=100Gbps tau=20us BDP=%.0f KB "
              "beta=%.1f KB\n",
              bdp / 1e3, p.beta_bytes / 1e3);

  for (const LawType law : laws) {
    const FluidModel model(law, p);
    std::printf("\n=== %s ===\n", std::string(law_name(law)).c_str());
    std::printf("%24s %16s %16s %14s\n", "initial (w,q)/BDP",
                "final w/BDP", "final q/BDP", "min inflight/BDP");
    double min_final_q = 1e300;
    double max_final_q = -1e300;
    double worst_undershoot = 1e300;
    for (const FluidState& init : grid) {
      const Summary s = trace(model, init);
      min_final_q = std::min(min_final_q, s.final_state.q_bytes);
      max_final_q = std::max(max_final_q, s.final_state.q_bytes);
      worst_undershoot = std::min(worst_undershoot, s.min_inflight);
      std::printf("        (%5.2f, %5.2f) %16.3f %16.3f %14.3f\n",
                  init.w_bytes / bdp, init.q_bytes / bdp,
                  s.final_state.w_bytes / bdp, s.final_state.q_bytes / bdp,
                  s.min_inflight / bdp);
    }
    std::printf("  final-queue spread: %.3f BDP  |  worst inflight: %.3f "
                "BDP %s\n",
                (max_final_q - min_final_q) / bdp, worst_undershoot / bdp,
                worst_undershoot < 0.97 * bdp ? "(throughput loss)"
                                              : "(no loss)");
    if (model.has_unique_equilibrium()) {
      const FluidState eq = model.analytic_equilibrium();
      std::printf("  analytic equilibrium: w=%.3f BDP q=%.3f BDP\n",
                  eq.w_bytes / bdp, eq.q_bytes / bdp);
    } else {
      std::printf("  no unique equilibrium (Appendix C)\n");
    }
  }

  // Theorem summary for the power law.
  const auto eig = power_tcp_eigenvalues(p);
  std::printf("\nTheorem 1: PowerTCP linearization eigenvalues: %.0f, %.0f "
              "(both negative -> asymptotically stable)\n",
              eig[0], eig[1]);
  std::printf("Theorem 2: convergence time constant dt/gamma = %.2f us "
              "(99.3%% decay within 5 update intervals)\n",
              p.update_interval_s / p.gamma * 1e6);
  return 0;
}
