/// Reproduces Figs. 9-11 (Appendix D): HOMA's behaviour across
/// overcommitment levels 1-6.
///   Fig. 9: fairness — four staggered messages over one bottleneck;
///   Fig. 10/11: reaction to all-to-one and 10:1 incast (peak queue and
///   recovery under each overcommitment level).

#include <cstdio>
#include <vector>

#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"

using namespace powertcp;

namespace {

void fairness(int overcommit) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 4;
  cfg.priority_bands = 8;
  topo::Dumbbell topo(network, cfg);

  host::HomaConfig hc;
  hc.rtt_bytes = cfg.host_bw.bdp_bytes(topo.base_rtt());
  hc.overcommit = overcommit;
  for (int i = 0; i < 4; ++i) topo.sender(i).enable_homa(hc);
  topo.receiver().enable_homa(hc);

  const sim::TimePs bin = sim::microseconds(100);
  std::vector<stats::ThroughputSeries> series(
      4, stats::ThroughputSeries(0, bin));
  topo.receiver().set_data_callback(
      [&series](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        if (flow >= 1 && flow <= 4) {
          series[static_cast<std::size_t>(flow - 1)].add_bytes(now, bytes);
        }
      });

  const sim::TimePs epoch = sim::microseconds(800);
  const std::int64_t sizes[] = {14'000'000, 10'000'000, 6'000'000,
                                2'500'000};
  for (int i = 0; i < 4; ++i) {
    host::Host& s = topo.sender(i);
    const auto fid = static_cast<net::FlowId>(i + 1);
    const std::int64_t size = sizes[i];
    simulator.schedule_at(i * epoch, [&s, fid, size, &topo] {
      s.homa()->send_message(fid, topo.receiver().id(), size);
    });
  }
  simulator.run_until(sim::milliseconds(8));

  std::printf("\n--- Fig. 9, overcommitment %d ---\n", overcommit);
  std::printf("%10s %8s %8s %8s %8s\n", "time", "f1", "f2", "f3", "f4");
  for (std::size_t b = 0; b < series[0].bin_count(); b += 8) {
    std::printf("%10s", sim::format_time(series[0].bin_start(b)).c_str());
    for (const auto& s : series) std::printf(" %8.1f", s.gbps(b));
    std::printf("\n");
  }
}

void incast(int overcommit, int fan_in) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  cfg.priority_bands = 8;
  topo::FatTree fabric(network, cfg);

  host::HomaConfig hc;
  hc.rtt_bytes = cfg.host_bw.bdp_bytes(fabric.max_base_rtt());
  hc.overcommit = overcommit;
  for (int h = 0; h < fabric.host_count(); ++h) fabric.host(h).enable_homa(hc);

  const int receiver = 0;
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);
  stats::ThroughputSeries goodput(0, sim::microseconds(100));
  fabric.host(receiver).set_data_callback(
      [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });

  // Long message from the far pod plus the synchronized burst.
  host::Host& ls = fabric.host(fabric.host_count() - 1);
  simulator.schedule_at(0, [&ls, &fabric] {
    ls.homa()->send_message(1, fabric.host_node(0), 200'000'000);
  });
  const sim::TimePs burst_at = sim::microseconds(500);
  for (int i = 0; i < fan_in; ++i) {
    const int responder =
        cfg.servers_per_tor +
        i % (fabric.host_count() - cfg.servers_per_tor - 1);
    host::Host& h = fabric.host(responder);
    const auto fid = static_cast<net::FlowId>(100 + i);
    simulator.schedule_at(burst_at, [&h, fid, &fabric] {
      h.homa()->send_message(fid, fabric.host_node(0), 100'000);
    });
  }
  simulator.run_until(sim::milliseconds(3));

  std::printf("  oc=%d: peak queue %8.1f KB, drops %6llu, mean goodput "
              "%5.1f Gbps\n",
              overcommit, static_cast<double>(queue.max_bytes()) / 1e3,
              static_cast<unsigned long long>(fabric.total_drops()),
              goodput.mean_gbps(0, goodput.bin_count()));
}

}  // namespace

int main() {
  std::printf("=== Fig. 9: HOMA fairness across overcommitment levels ===\n");
  for (int oc = 1; oc <= 6; ++oc) fairness(oc);

  std::printf("\n=== Fig. 11: HOMA 10:1 incast across overcommitment ===\n");
  for (int oc = 1; oc <= 6; ++oc) incast(oc, 10);

  std::printf("\n=== Fig. 10: HOMA all-to-one incast across "
              "overcommitment ===\n");
  for (int oc = 1; oc <= 6; ++oc) incast(oc, 55);
  return 0;
}
