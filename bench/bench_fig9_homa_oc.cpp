/// Reproduces Figs. 9-11 (Appendix D): HOMA's behaviour across
/// overcommitment levels 1-6.
///   Fig. 9: fairness — four staggered messages over one bottleneck,
///   one time-series table per level;
///   Fig. 10/11: reaction to all-to-one (55:1) and 10:1 incast — peak
///   ToR queue, drops, and receiver goodput per level.
///
/// The scenario lives in harness/scenarios.* behind the `homa_oc`
/// registry kind (shared with `powertcp_run configs/fig9_oc.toml`,
/// which prints identical tables — pinned by
/// RunnerGolden.Fig9ConfigMatchesBench). Every (level, fan-in) point
/// is an independent simulation on the --threads=N pool; output is
/// identical for every N.

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/runner.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig9_homa_oc").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const harness::RunnerConfig rc = harness::fig9_runner_config();
  std::printf("Figs. 9-11: HOMA across overcommitment levels 1-6\n\n");
  harness::BenchReporter reporter("bench_fig9_homa_oc", opts);
  for (auto& table : harness::run_config(rc, reporter.runner())) {
    reporter.add(std::move(table));
  }
  return reporter.finish();
}
