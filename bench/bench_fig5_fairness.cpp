/// Reproduces Fig. 5: fairness and stability. Four flows share one
/// bottleneck; they arrive staggered and drain in reverse order. The
/// paper shows PowerTCP and θ-PowerTCP settling to the fair share at
/// every arrival/departure, TIMELY oscillating, and HOMA (receiver
/// SRPT) serving messages by remaining size rather than fairly.
///
/// The scenario lives in harness/scenarios.* behind the `dumbbell`
/// registry kind (shared with `powertcp_run configs/fig5_quick.toml`,
/// which prints identical tables — pinned by
/// RunnerGolden.Fig5ConfigMatchesBench). Per-algorithm simulations are
/// independent and run on the --threads=N pool; output is identical
/// for every N.

#include <cstdio>

#include "harness/bench_opts.hpp"
#include "harness/runner.hpp"

using namespace powertcp;

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig5_fairness").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const harness::RunnerConfig rc = harness::fig5_runner_config();
  std::printf("Fig. 5: four staggered flows over a 25G bottleneck\n\n");
  harness::BenchReporter reporter("bench_fig5_fairness", opts);
  for (auto& table : harness::run_config(rc, reporter.runner())) {
    reporter.add(std::move(table));
  }
  return reporter.finish();
}
