/// Reproduces Fig. 5: fairness and stability. Four flows share one
/// bottleneck; they arrive staggered and drain in reverse order. The
/// paper shows PowerTCP and θ-PowerTCP settling to the fair share at
/// every arrival/departure, TIMELY oscillating, and HOMA (receiver
/// SRPT) serving messages by remaining size rather than fairly.
///
/// The per-algorithm simulations are independent and run on the
/// --threads=N pool; output is identical for every N.

#include <array>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "harness/bench_opts.hpp"
#include "harness/sweep.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;
using harness::Cell;

namespace {

struct FlowSeries {
  std::vector<sim::TimePs> bin_start;
  std::array<std::vector<double>, 4> gbps;
};

FlowSeries run(const std::string& algo) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 4;
  cfg.priority_bands = algo == "homa" ? 8 : 0;
  topo::Dumbbell topo(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 4;

  const sim::TimePs bin = sim::microseconds(100);
  std::vector<stats::ThroughputSeries> series(
      4, stats::ThroughputSeries(0, bin));
  topo.receiver().set_data_callback(
      [&series](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        if (flow >= 1 && flow <= 4) {
          series[static_cast<std::size_t>(flow - 1)].add_bytes(now, bytes);
        }
      });

  const sim::TimePs epoch = sim::microseconds(800);
  const std::array<std::int64_t, 4> sizes = {14'000'000, 10'000'000,
                                             6'000'000, 2'500'000};
  if (algo == "homa") {
    host::HomaConfig hc;
    hc.rtt_bytes = static_cast<std::int64_t>(params.bdp_bytes());
    for (int i = 0; i < 4; ++i) topo.sender(i).enable_homa(hc);
    topo.receiver().enable_homa(hc);
    for (int i = 0; i < 4; ++i) {
      host::Host& s = topo.sender(i);
      const auto fid = static_cast<net::FlowId>(i + 1);
      const std::int64_t size = sizes.at(static_cast<std::size_t>(i));
      simulator.schedule_at(i * epoch, [&s, fid, size, &topo] {
        s.homa()->send_message(fid, topo.receiver().id(), size);
      });
    }
  } else {
    const cc::CcFactory factory = cc::make_factory(algo);
    for (int i = 0; i < 4; ++i) {
      topo.sender(i).start_flow(static_cast<net::FlowId>(i + 1),
                                topo.receiver().id(),
                                sizes.at(static_cast<std::size_t>(i)),
                                factory(params), params, i * epoch);
    }
  }

  simulator.run_until(sim::milliseconds(8));

  FlowSeries out;
  for (std::size_t b = 0; b < series[0].bin_count(); b += 4) {
    out.bin_start.push_back(series[0].bin_start(b));
    for (std::size_t f = 0; f < 4; ++f) {
      out.gbps[f].push_back(series[f].gbps(b));
    }
  }
  return out;
}

harness::ResultTable to_table(const std::string& algo,
                              const FlowSeries& fs) {
  harness::ResultTable t;
  t.title = algo + " (Gbps per flow)";
  t.slug = "fig5_" + algo;
  t.key_columns = {"time"};
  t.value_columns = {"f1", "f2", "f3", "f4"};
  for (std::size_t b = 0; b < fs.bin_start.size(); ++b) {
    harness::ResultTable::Row row;
    row.keys = {Cell(sim::format_time(fs.bin_start[b]))};
    for (std::size_t f = 0; f < 4; ++f) {
      row.values.push_back(Cell(fs.gbps[f][b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = harness::BenchOptions::parse(argc, argv);
  if (opts.help) {
    std::fputs(harness::BenchOptions::usage("bench_fig5_fairness").c_str(),
               stdout);
    return 0;
  }
  if (!opts.ok) return 2;

  const std::vector<std::string> algos = {"powertcp", "homa",
                                          "theta-powertcp", "timely"};
  std::printf("Fig. 5: four staggered flows over a 25G bottleneck\n\n");
  harness::BenchReporter reporter("bench_fig5_fairness", opts);
  std::vector<std::function<FlowSeries()>> jobs;
  jobs.reserve(algos.size());
  for (const auto& a : algos) {
    jobs.push_back([a] { return run(a); });
  }
  const std::vector<FlowSeries> results = reporter.runner().map(jobs);
  for (std::size_t i = 0; i < algos.size(); ++i) {
    reporter.add(to_table(algos[i], results[i]));
  }
  return reporter.finish();
}
