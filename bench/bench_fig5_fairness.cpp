/// Reproduces Fig. 5: fairness and stability. Four flows share one
/// bottleneck; they arrive staggered and drain in reverse order. The
/// paper shows PowerTCP and θ-PowerTCP settling to the fair share at
/// every arrival/departure, TIMELY oscillating, and HOMA (receiver
/// SRPT) serving messages by remaining size rather than fairly.

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;

namespace {

void run(const std::string& algo) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 4;
  cfg.priority_bands = algo == "homa" ? 8 : 0;
  topo::Dumbbell topo(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 4;

  const sim::TimePs bin = sim::microseconds(100);
  std::vector<stats::ThroughputSeries> series(
      4, stats::ThroughputSeries(0, bin));
  topo.receiver().set_data_callback(
      [&series](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        if (flow >= 1 && flow <= 4) {
          series[static_cast<std::size_t>(flow - 1)].add_bytes(now, bytes);
        }
      });

  const sim::TimePs epoch = sim::microseconds(800);
  const std::array<std::int64_t, 4> sizes = {14'000'000, 10'000'000,
                                             6'000'000, 2'500'000};
  if (algo == "homa") {
    host::HomaConfig hc;
    hc.rtt_bytes = static_cast<std::int64_t>(params.bdp_bytes());
    for (int i = 0; i < 4; ++i) topo.sender(i).enable_homa(hc);
    topo.receiver().enable_homa(hc);
    for (int i = 0; i < 4; ++i) {
      host::Host& s = topo.sender(i);
      const auto fid = static_cast<net::FlowId>(i + 1);
      const std::int64_t size = sizes.at(static_cast<std::size_t>(i));
      simulator.schedule_at(i * epoch, [&s, fid, size, &topo] {
        s.homa()->send_message(fid, topo.receiver().id(), size);
      });
    }
  } else {
    const cc::CcFactory factory = cc::make_factory(algo);
    for (int i = 0; i < 4; ++i) {
      topo.sender(i).start_flow(static_cast<net::FlowId>(i + 1),
                                topo.receiver().id(),
                                sizes.at(static_cast<std::size_t>(i)),
                                factory(params), params, i * epoch);
    }
  }

  simulator.run_until(sim::milliseconds(8));

  std::printf("\n=== %s ===\n", algo.c_str());
  std::printf("%10s %8s %8s %8s %8s   (Gbps per flow)\n", "time", "f1",
              "f2", "f3", "f4");
  for (std::size_t b = 0; b < series[0].bin_count(); b += 4) {
    std::printf("%10s", sim::format_time(series[0].bin_start(b)).c_str());
    for (const auto& s : series) std::printf(" %8.1f", s.gbps(b));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Fig. 5: four staggered flows over a 25G bottleneck\n");
  for (const std::string algo :
       {"powertcp", "homa", "theta-powertcp", "timely"}) {
    run(algo);
  }
  return 0;
}
