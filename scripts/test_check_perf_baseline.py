#!/usr/bin/env python3
"""Unit tests for check_perf_baseline.py, run as a ctest by the suite.

Each test synthesizes baseline/current JSON fixtures in a temp dir and
asserts the gate's exit code: planted allocs/event regressions and
changed event counts must fail (exit 1), wall-clock jitter inside the
calibrated noise band must pass (exit 0), and malformed documents must
be rejected with a usage/malformed code (exit 2), never reported as a
clean pass.
"""

import copy
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_perf_baseline", os.path.join(_HERE, "check_perf_baseline.py"))
checker = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(checker)


def document(heap_mops=10.0, events=2000064, heap_allocs=0.0,
             cal_allocs=0.01):
    return {
        "bench": "bench_event_engine",
        "tables": [{
            "title": "event engine throughput",
            "slug": "event_engine",
            "key_columns": ["workload"],
            "value_columns": ["heap Mev/s", "calendar Mev/s", "events",
                              "heap allocs/ev", "calendar allocs/ev"],
            "rows": [{
                "keys": {"workload": "dumbbell packet sim"},
                "values": {"heap Mev/s": heap_mops,
                           "calendar Mev/s": heap_mops * 1.1,
                           "events": events,
                           "heap allocs/ev": heap_allocs,
                           "calendar allocs/ev": cal_allocs},
            }],
        }],
    }


class GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        checker.failures.clear()

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_gate(self, baseline, *currents):
        argv = ["check_perf_baseline.py", baseline] + list(currents)
        # The gate prints its verdict; keep test output clean.
        out, err = io.StringIO(), io.StringIO()
        old = sys.stdout, sys.stderr
        sys.stdout, sys.stderr = out, err
        try:
            code = checker.main(argv)
        finally:
            sys.stdout, sys.stderr = old
        checker.failures.clear()
        return code, out.getvalue() + err.getvalue()

    def test_identical_runs_pass(self):
        base = self.write("base.json", document())
        cur = self.write("cur.json", document())
        code, _ = self.run_gate(base, cur)
        self.assertEqual(code, 0)

    def test_planted_alloc_regression_fails(self):
        base = self.write("base.json", document(heap_allocs=0.0))
        cur = [self.write(f"cur{i}.json", document(heap_allocs=1.0))
               for i in range(3)]
        code, text = self.run_gate(base, *cur)
        self.assertEqual(code, 1)
        self.assertIn("heap allocs/ev", text)

    def test_changed_event_count_fails(self):
        base = self.write("base.json", document(events=2000064))
        cur = self.write("cur.json", document(events=2000065))
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("events", text)

    def test_nonreproducible_deterministic_column_fails(self):
        base = self.write("base.json", document(cal_allocs=0.01))
        a = self.write("a.json", document(cal_allocs=0.01))
        b = self.write("b.json", document(cal_allocs=0.02))
        code, text = self.run_gate(base, a, b)
        self.assertEqual(code, 1)
        self.assertIn("not reproducible", text)

    def test_wall_clock_jitter_within_band_passes(self):
        base = self.write("base.json", document(heap_mops=10.0))
        cur = [self.write(f"cur{i}.json", document(heap_mops=m))
               for i, m in enumerate([8.0, 7.5, 9.0])]
        code, _ = self.run_gate(base, *cur)
        self.assertEqual(code, 0)

    def test_wall_clock_collapse_fails(self):
        base = self.write("base.json", document(heap_mops=10.0))
        cur = [self.write(f"cur{i}.json", document(heap_mops=m))
               for i, m in enumerate([2.0, 2.1, 2.05])]
        code, text = self.run_gate(base, *cur)
        self.assertEqual(code, 1)
        self.assertIn("regressed", text)

    def test_noisy_repeats_widen_the_band(self):
        # Best repeat 5.5 is below the 40% floor (6.0), but the 82%
        # spread across repeats calibrates a wider band — the gate
        # reads the machine as noisy rather than the code as slower.
        base = self.write("base.json", document(heap_mops=10.0))
        noisy = [self.write(f"n{i}.json", document(heap_mops=m))
                 for i, m in enumerate([5.5, 1.0])]
        code, _ = self.run_gate(base, *noisy)
        self.assertEqual(code, 0)
        # The same 5.5 alone (no spread evidence) is a regression.
        code, _ = self.run_gate(base, noisy[0])
        self.assertEqual(code, 1)

    def test_improvements_always_pass(self):
        base = self.write("base.json", document(heap_mops=10.0))
        cur = self.write("cur.json", document(heap_mops=50.0))
        code, _ = self.run_gate(base, cur)
        self.assertEqual(code, 0)

    def test_structure_change_fails(self):
        base = self.write("base.json", document())
        changed = document()
        changed["tables"][0]["rows"] = []
        cur = self.write("cur.json", changed)
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("row keys changed", text)

    def test_malformed_json_rejected(self):
        base = self.write("base.json", document())
        cur = self.write("cur.json", "{not json")
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("malformed", text)

    def test_missing_tables_key_rejected(self):
        base = self.write("base.json", {"bench": "x"})
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("tables", text)

    def test_non_numeric_metric_rejected(self):
        base = self.write("base.json", document())
        broken = document()
        broken["tables"][0]["rows"][0]["values"]["events"] = None
        cur = self.write("cur.json", broken)
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("events", text)

    def test_missing_row_values_rejected(self):
        base = self.write("base.json", document())
        broken = copy.deepcopy(document())
        del broken["tables"][0]["rows"][0]["values"]
        cur = self.write("cur.json", broken)
        code, _ = self.run_gate(base, cur)
        self.assertEqual(code, 2)

    def test_usage_error(self):
        code, _ = self.run_gate(os.path.join(self.tmp.name, "only.json"))
        self.assertEqual(code, 2)

    # ---- absolute per-workload floors ------------------------------

    @staticmethod
    def with_floor(doc, metric="heap Mev/s", minimum=3.0, table=None,
                   row=None):
        doc = copy.deepcopy(doc)
        doc["floors"] = [{
            "table": table or "event_engine",
            "row": row or {"workload": "dumbbell packet sim"},
            "metric": metric,
            "min": minimum,
        }]
        return doc

    def test_floor_above_minimum_passes(self):
        base = self.write("base.json",
                          self.with_floor(document(heap_mops=10.0)))
        cur = self.write("cur.json", document(heap_mops=9.0))
        code, _ = self.run_gate(base, cur)
        self.assertEqual(code, 0)

    def test_floor_violation_fails_even_inside_drift_band(self):
        # 8.0 is well inside the 40% loose band vs baseline 10.0, but
        # the absolute floor of 9.0 still fails it.
        base = self.write("base.json",
                          self.with_floor(document(heap_mops=10.0),
                                          minimum=9.0))
        cur = self.write("cur.json", document(heap_mops=8.0))
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("below floor", text)

    def test_floor_gates_best_of_repeats(self):
        base = self.write("base.json",
                          self.with_floor(document(heap_mops=10.0),
                                          minimum=9.0))
        cur = [self.write(f"cur{i}.json", document(heap_mops=m))
               for i, m in enumerate([8.0, 9.5])]
        code, _ = self.run_gate(base, *cur)
        self.assertEqual(code, 0)

    def test_floor_unknown_table_rejected(self):
        base = self.write("base.json",
                          self.with_floor(document(), table="no_such"))
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("unknown table", text)

    def test_floor_unknown_row_rejected(self):
        base = self.write("base.json",
                          self.with_floor(document(),
                                          row={"workload": "renamed"}))
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("matches 0 rows", text)

    def test_floor_unknown_metric_rejected(self):
        base = self.write("base.json",
                          self.with_floor(document(), metric="speedup"))
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("unknown metric", text)

    def test_floor_missing_field_rejected(self):
        doc = document()
        doc["floors"] = [{"table": "event_engine", "min": 1.0}]
        base = self.write("base.json", doc)
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("table/row/metric", text)

    def test_floor_with_both_min_and_max_rejected(self):
        doc = document()
        doc["floors"] = [{"table": "event_engine",
                          "row": {"workload": "dumbbell packet sim"},
                          "metric": "heap Mev/s", "min": 1.0, "max": 9.0}]
        base = self.write("base.json", doc)
        cur = self.write("cur.json", document())
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("exactly one of min/max", text)

    # ---- absolute per-workload ceilings (max floors) ---------------

    @staticmethod
    def with_ceiling(doc, metric="events", maximum=2000064.0):
        doc = copy.deepcopy(doc)
        doc["floors"] = [{
            "table": "event_engine",
            "row": {"workload": "dumbbell packet sim"},
            "metric": metric,
            "max": maximum,
        }]
        return doc

    def test_ceiling_below_maximum_passes(self):
        base = self.write("base.json",
                          self.with_ceiling(document(), metric="heap Mev/s",
                                            maximum=11.0))
        cur = self.write("cur.json", document(heap_mops=10.0))
        code, _ = self.run_gate(base, cur)
        self.assertEqual(code, 0)

    def test_ceiling_violation_fails(self):
        # A window-count-style ceiling: the deterministic column still
        # matching the baseline exactly does not save a value above the
        # absolute bar.
        base = self.write("base.json",
                          self.with_ceiling(document(events=2000064),
                                            metric="events",
                                            maximum=1999999.0))
        cur = self.write("cur.json", document(events=2000064))
        code, text = self.run_gate(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("above ceiling", text)

    def test_ceiling_gates_best_of_repeats(self):
        base = self.write("base.json",
                          self.with_ceiling(document(heap_mops=10.0),
                                            metric="heap Mev/s",
                                            maximum=9.0))
        cur = [self.write(f"cur{i}.json", document(heap_mops=m))
               for i, m in enumerate([9.5, 8.5])]
        code, _ = self.run_gate(base, *cur)
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
