#!/usr/bin/env python3
"""Regression gate for the quick-sweep bench JSON (CI `bench-sweep-data`).

Usage: check_sweep_baseline.py CURRENT.json BASELINE.json

Compares a freshly produced sweep document against the committed
baseline under bench/baselines/. The gate is deliberately generous —
it exists to catch structural breakage and large behavioural
regressions, not to pin every number:

  * structure must match exactly: same tables, columns, and row keys
    (a vanished scheme, metric, or sweep point is always a failure);
  * completion-style metrics (`done%`) may not drop more than
    COMPLETION_DROP percentage points below baseline;
  * `drops` may not explode past 10x baseline + DROPS_SLACK;
  * every other numeric metric is compared as a per-(table, metric)
    mean across rows with RELATIVE_TOL headroom (individual
    time-series bins legitimately shift when timing changes);
  * sanity invariants hold regardless of baseline: finite numbers,
    percentages in [0, 100], throughput within physical line rate.

Exit code 0 = gate passed, 1 = regression/structure failure,
2 = usage or unreadable input.
"""

import json
import math
import sys

COMPLETION_DROP = 10.0   # done% may drop this many points
DROPS_SLACK = 1000.0     # absolute headroom for drop counters
RELATIVE_TOL = 0.5       # +/-50% on per-metric means
MEAN_FLOOR = 1.0         # means below this compare against the floor
MAX_GBPS = 110.0         # no bench here runs a link faster than 100G

failures = []


def fail(msg):
    failures.append(msg)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_table(slug, cur, base):
    if cur["key_columns"] != base["key_columns"]:
        fail(f"{slug}: key columns changed {base['key_columns']} -> "
             f"{cur['key_columns']}")
        return
    if cur["value_columns"] != base["value_columns"]:
        fail(f"{slug}: value columns changed {base['value_columns']} -> "
             f"{cur['value_columns']}")
        return
    cur_keys = [r["keys"] for r in cur["rows"]]
    base_keys = [r["keys"] for r in base["rows"]]
    if cur_keys != base_keys:
        fail(f"{slug}: row keys changed (baseline {len(base_keys)} rows, "
             f"current {len(cur_keys)})")
        return

    sums = {}  # metric -> [cur_sum, base_sum, n]
    for cur_row, base_row in zip(cur["rows"], base["rows"]):
        for metric in cur["value_columns"]:
            cv = cur_row["values"].get(metric)
            bv = base_row["values"].get(metric)
            if is_number(cv) != is_number(bv):
                fail(f"{slug}: {metric} @ {cur_row['keys']} changed kind "
                     f"({bv!r} -> {cv!r})")
                continue
            if not is_number(cv):
                continue
            if not math.isfinite(cv):
                fail(f"{slug}: {metric} @ {cur_row['keys']} is not finite")
                continue
            if "done%" in metric and not 0.0 <= cv <= 100.0:
                fail(f"{slug}: {metric} @ {cur_row['keys']} = {cv} "
                     f"outside [0, 100]")
            if "gbps" in metric.lower() and not 0.0 <= cv <= MAX_GBPS:
                fail(f"{slug}: {metric} @ {cur_row['keys']} = {cv} "
                     f"outside [0, {MAX_GBPS}]")
            if metric in ("f1", "f2", "f3", "f4") and not 0.0 <= cv <= MAX_GBPS:
                fail(f"{slug}: per-flow gbps {metric} @ {cur_row['keys']} = "
                     f"{cv} outside [0, {MAX_GBPS}]")
            if "done%" in metric and cv < bv - COMPLETION_DROP:
                fail(f"{slug}: completion {metric} @ {cur_row['keys']} "
                     f"dropped {bv} -> {cv} (> {COMPLETION_DROP} points)")
            if metric == "drops" and cv > bv * 10 + DROPS_SLACK:
                fail(f"{slug}: {metric} @ {cur_row['keys']} exploded "
                     f"{bv} -> {cv}")
            s = sums.setdefault(metric, [0.0, 0.0, 0])
            s[0] += cv
            s[1] += bv
            s[2] += 1

    for metric, (cur_sum, base_sum, n) in sums.items():
        if n == 0 or "done%" in metric or metric == "drops":
            continue
        cur_mean, base_mean = cur_sum / n, base_sum / n
        scale = max(abs(base_mean), MEAN_FLOOR)
        if abs(cur_mean - base_mean) > RELATIVE_TOL * scale:
            fail(f"{slug}: mean {metric} moved {base_mean:.3f} -> "
                 f"{cur_mean:.3f} (> {RELATIVE_TOL:.0%} of {scale:.3f})")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        current = json.load(open(argv[1]))
        baseline = json.load(open(argv[2]))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_sweep_baseline: cannot read inputs: {e}",
              file=sys.stderr)
        return 2

    cur_tables = {t["slug"]: t for t in current.get("tables", [])}
    base_tables = {t["slug"]: t for t in baseline.get("tables", [])}
    if set(cur_tables) != set(base_tables):
        fail(f"table set changed: baseline {sorted(base_tables)} vs "
             f"current {sorted(cur_tables)}")
    else:
        for slug in sorted(base_tables):
            check_table(slug, cur_tables[slug], base_tables[slug])

    if failures:
        print(f"REGRESSION GATE FAILED ({argv[1]} vs {argv[2]}):")
        for f in failures:
            print(f"  - {f}")
        print("If the change is intentional, regenerate the baseline "
              "(see bench/baselines/README.md).")
        return 1
    n = sum(len(t["rows"]) for t in base_tables.values())
    print(f"regression gate passed: {argv[1]} matches {argv[2]} "
          f"({len(base_tables)} tables, {n} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
