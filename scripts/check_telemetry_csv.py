#!/usr/bin/env python3
"""Schema check for telemetry CSV output (CI `telemetry-smoke`).

Usage: check_telemetry_csv.py FILE.csv

Validates a long-format CSV produced by `powertcp_run --telemetry
--csv=FILE`: the canonical `table,point,metric,value` header, at least
one `*_flight*` table carrying the five flight-recorder channels
(qKB, power, cwndKB, paceGbps, ecn), numeric finite values, and
strictly increasing `time=` keys within each flight table.

Exit code 0 = valid, 1 = schema violation, 2 = usage/unreadable input.
"""

import csv
import math
import sys

CHANNELS = {"qKB", "power", "cwndKB", "paceGbps", "ecn"}
HEADER = ["table", "point", "metric", "value"]

# sim::format_time units, in picoseconds.
UNITS = {"ps": 1, "ns": 1e3, "us": 1e6, "ms": 1e9, "s": 1e12}


def parse_time_ps(point):
    """`time=12.500us` -> picoseconds; None if not a time key."""
    if not point.startswith("time="):
        return None
    text = point[len("time="):]
    for suffix, scale in sorted(UNITS.items(), key=lambda u: -len(u[0])):
        if text.endswith(suffix):
            try:
                return float(text[:-len(suffix)]) * scale
            except ValueError:
                return None
    return None


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        print(f"check_telemetry_csv: cannot read {argv[1]}: {e}",
              file=sys.stderr)
        return 2

    errors = []
    if not rows or rows[0] != HEADER:
        errors.append(f"header is {rows[0] if rows else 'missing'}, "
                      f"expected {HEADER}")
        rows = rows[1:] if rows else []
    else:
        rows = rows[1:]

    flights = {}  # slug -> {"channels": set, "times": [ps...]}
    for n, row in enumerate(rows, start=2):
        if len(row) != 4:
            errors.append(f"line {n}: {len(row)} fields, expected 4")
            continue
        table, point, metric, value = row
        if "_flight" not in table:
            continue
        entry = flights.setdefault(table, {"channels": set(), "times": []})
        entry["channels"].add(metric)
        if metric not in CHANNELS:
            errors.append(f"line {n}: {table}: unknown channel {metric!r}")
        try:
            v = float(value)
            if not math.isfinite(v):
                raise ValueError
        except ValueError:
            errors.append(f"line {n}: {table}: non-finite value {value!r}")
        t = parse_time_ps(point)
        if t is None:
            errors.append(f"line {n}: {table}: point {point!r} is not a "
                          f"time= key")
        elif metric == "qKB":  # one channel is enough to order the rows
            entry["times"].append(t)

    if not flights:
        errors.append("no *_flight* tables found — was --telemetry passed?")
    for slug, entry in sorted(flights.items()):
        missing = CHANNELS - entry["channels"]
        if missing:
            errors.append(f"{slug}: missing channels {sorted(missing)}")
        times = entry["times"]
        if not times:
            errors.append(f"{slug}: no samples")
        if any(b <= a for a, b in zip(times, times[1:])):
            errors.append(f"{slug}: time keys are not strictly increasing")

    if errors:
        print(f"TELEMETRY CSV CHECK FAILED ({argv[1]}):")
        for e in errors:
            print(f"  - {e}")
        return 1
    samples = sum(len(e["times"]) for e in flights.values())
    print(f"telemetry CSV ok: {argv[1]} ({len(flights)} flight tables, "
          f"{samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
