#!/usr/bin/env bash
# Produce a CPU flamegraph of the event-engine hot path for the CI
# artifact (and for local perf work).
#
# Usage: scripts/make_flamegraph.sh [BINARY [OUTDIR]]
#
#   BINARY  defaults to ./build/bench_event_engine
#   OUTDIR  defaults to bench-out
#
# Strategy, best first, falling through gracefully:
#   1. perf record -g + flamegraph.pl (or inferno-flamegraph) -> SVG
#   2. perf record -g + perf report --stdio              -> text profile
#   3. gprofng collect/gprofng display text              -> text profile
#
# CI runners frequently lack perf_event_paranoid access or the perf
# package for the running kernel, so *this script never fails the
# build*: if no profiler works it prints why and exits 0. The CI step
# uploads whatever landed in OUTDIR.
set -u

BIN="${1:-./build/bench_event_engine}"
OUT="${2:-bench-out}"
mkdir -p "$OUT"

if [ ! -x "$BIN" ]; then
  echo "make_flamegraph: $BIN not built; skipping" >&2
  exit 0
fi

have() { command -v "$1" > /dev/null 2>&1; }

flamegraph_tool=""
for cand in flamegraph.pl inferno-flamegraph; do
  if have "$cand"; then
    flamegraph_tool="$cand"
    break
  fi
done

if have perf; then
  # --fast keeps the profiled run a few seconds long.
  if perf record -g --output="$OUT/perf.data" -- \
    "$BIN" --fast > /dev/null 2> "$OUT/perf_record.log"; then
    if [ -n "$flamegraph_tool" ] && have stackcollapse-perf.pl; then
      perf script --input="$OUT/perf.data" \
        | stackcollapse-perf.pl \
        | "$flamegraph_tool" --title "bench_event_engine" \
          > "$OUT/event_engine_flame.svg" \
        && echo "make_flamegraph: wrote $OUT/event_engine_flame.svg" \
        && rm -f "$OUT/perf.data" \
        && exit 0
    fi
    if perf report --stdio --input="$OUT/perf.data" \
      > "$OUT/event_engine_profile.txt" 2>> "$OUT/perf_record.log"; then
      echo "make_flamegraph: no flamegraph.pl; wrote folded profile" \
        "$OUT/event_engine_profile.txt"
      rm -f "$OUT/perf.data"
      exit 0
    fi
  fi
  echo "make_flamegraph: perf present but recording failed" \
    "(perf_event_paranoid? see $OUT/perf_record.log); trying gprofng" >&2
fi

if have gprofng; then
  rm -rf "$OUT/gprofng.er"
  if gprofng collect app -o "$OUT/gprofng.er" \
    "$BIN" --fast > /dev/null 2> "$OUT/gprofng.log"; then
    gprofng display text -functions "$OUT/gprofng.er" \
      > "$OUT/event_engine_profile.txt" 2>> "$OUT/gprofng.log" \
      && echo "make_flamegraph: wrote $OUT/event_engine_profile.txt" \
        "(gprofng fallback)" \
      && rm -rf "$OUT/gprofng.er" \
      && exit 0
  fi
  echo "make_flamegraph: gprofng collection failed (see $OUT/gprofng.log)" >&2
fi

echo "make_flamegraph: no usable profiler (need perf or gprofng);" \
  "skipping without failing the build" >&2
exit 0
