#!/usr/bin/env python3
"""Calibrated perf gate for bench_event_engine (CI `perf-gate`).

Usage: check_perf_baseline.py BASELINE.json CURRENT1.json [CURRENT2.json ...]

Compares fresh bench_event_engine JSON documents against the committed
baseline (bench/baselines/perf.json). Two classes of metric, two rules:

  * deterministic columns — `events`, `windows`, `shard_fallbacks`,
    and every `allocs/ev` column — must match the baseline EXACTLY,
    and must agree across the repeat runs. A planted allocation on the
    hot path, a changed event count, a drifted lookahead-window count,
    or a shard point silently rerun sequentially is always a failure;
    there is no noise to tolerate.
  * wall-clock columns (`Mev/s`) are gated loosely: the BEST repeat
    must stay above baseline minus a tolerance learned from the
    repeats themselves — max(MIN_DROP, NOISE_FACTOR x the relative
    spread across repeats), capped at MAX_DROP. One noisy run never
    fails the gate; a machine-wide slowdown shows up in the spread and
    widens the band instead of flagging a phantom regression.
    Passing several repeat files is how the gate calibrates; with one
    file the floor MIN_DROP applies.

Structure (tables, columns, row keys) must match exactly, like
scripts/check_sweep_baseline.py.

The baseline may additionally carry a top-level `floors` list of
absolute per-workload bars, each carrying `min` or `max`:

    "floors": [{"table": "event_engine_burst",
                "row": {"workload": "ack-train x64"},
                "metric": "speedup", "min": 3.0},
               {"table": "event_engine_shard",
                "row": {"sim_threads": 4},
                "metric": "windows", "max": 1999}]

A `min` floor requires the BEST (largest) repeat of that cell to stay
>= the bar — an absolute minimum (e.g. "burst mode must keep ack
trains at least 3x faster"); a `max` floor requires the SMALLEST
repeat to stay <= the bar — an absolute ceiling (e.g. "batched
lookahead must keep barrier-window counts at least 2x below the
pre-batching engine"). Both are unlike the relative drift band above.
A floor that names an unknown table, row, or metric is malformed
input (exit 2), so a renamed workload cannot silently un-gate its
floor.

Exit code 0 = gate passed, 1 = regression/structure failure,
2 = usage error or malformed/unreadable input.
"""

import json
import math
import sys

MIN_DROP = 0.40      # wall-clock floor: always allow a 40% dip
NOISE_FACTOR = 3.0   # widen the band to 3x the observed repeat spread
MAX_DROP = 0.90      # never accept losing more than 90% of throughput

failures = []


def fail(msg):
    failures.append(msg)


class MalformedInput(Exception):
    pass


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_deterministic(metric):
    return metric in ("events", "windows", "shard_fallbacks") or \
        "allocs" in metric


def load_document(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise MalformedInput(f"{path}: cannot read: {e}")
    if not isinstance(doc, dict) or "tables" not in doc:
        raise MalformedInput(f"{path}: missing top-level 'tables' key")
    tables = {}
    for t in doc["tables"]:
        for key in ("slug", "key_columns", "value_columns", "rows"):
            if key not in t:
                raise MalformedInput(
                    f"{path}: table {t.get('slug', '<unnamed>')!r} missing "
                    f"'{key}'")
        for row in t["rows"]:
            if "keys" not in row or "values" not in row:
                raise MalformedInput(
                    f"{path}: table {t['slug']!r} has a row without "
                    f"keys/values")
        if t["slug"] in tables:
            raise MalformedInput(f"{path}: duplicate table slug {t['slug']!r}")
        tables[t["slug"]] = t
    return tables, doc.get("floors", [])


def check_structure(path, tables, base_path, base_tables):
    if set(tables) != set(base_tables):
        fail(f"{path}: table set {sorted(tables)} differs from "
             f"{base_path} {sorted(base_tables)}")
        return False
    ok = True
    for slug, base in base_tables.items():
        cur = tables[slug]
        if cur["key_columns"] != base["key_columns"] or \
                cur["value_columns"] != base["value_columns"]:
            fail(f"{path}: {slug}: columns changed "
                 f"({base['key_columns']}/{base['value_columns']} -> "
                 f"{cur['key_columns']}/{cur['value_columns']})")
            ok = False
            continue
        if [r["keys"] for r in cur["rows"]] != \
                [r["keys"] for r in base["rows"]]:
            fail(f"{path}: {slug}: row keys changed")
            ok = False
    return ok


def find_floor_row(base_path, table, keys):
    matches = [r for r in table["rows"] if r["keys"] == keys]
    if len(matches) != 1:
        raise MalformedInput(
            f"{base_path}: floor row {keys!r} matches {len(matches)} rows in "
            f"{table['slug']!r} (want exactly 1)")
    return table["rows"].index(matches[0])


def check_floors(base_path, base_tables, floors, cur_docs):
    if not isinstance(floors, list):
        raise MalformedInput(f"{base_path}: 'floors' must be a list")
    checked = 0
    for fl in floors:
        if not isinstance(fl, dict) or \
                not {"table", "row", "metric"} <= set(fl) or \
                len({"min", "max"} & set(fl)) != 1:
            raise MalformedInput(
                f"{base_path}: floor {fl!r} needs table/row/metric and "
                f"exactly one of min/max")
        slug, keys, metric = fl["table"], fl["row"], fl["metric"]
        if slug not in base_tables:
            raise MalformedInput(
                f"{base_path}: floor names unknown table {slug!r}")
        base = base_tables[slug]
        if metric not in base["value_columns"]:
            raise MalformedInput(
                f"{base_path}: floor names unknown metric {metric!r} in "
                f"{slug!r}")
        bar = fl.get("min", fl.get("max"))
        if not is_number(bar):
            raise MalformedInput(
                f"{base_path}: floor bar {bar!r} is not a number")
        i = find_floor_row(base_path, base, keys)
        cvs = [cell(p, slug, tables[slug]["rows"][i], metric)
               for p, tables in cur_docs]
        checked += 1
        if "min" in fl:
            best = max(cvs)
            if best < bar:
                fail(f"{slug}: {metric} @ {keys} below floor: best of "
                     f"{len(cvs)} repeat(s) {best:.2f} < required minimum "
                     f"{bar:.2f}")
        else:
            best = min(cvs)
            if best > bar:
                fail(f"{slug}: {metric} @ {keys} above ceiling: best of "
                     f"{len(cvs)} repeat(s) {best:.2f} > required maximum "
                     f"{bar:.2f}")
    return checked


def cell(path, table, row, metric):
    v = row["values"].get(metric)
    if not is_number(v) or not math.isfinite(v):
        raise MalformedInput(
            f"{path}: {table}: {metric} @ {row['keys']} is not a finite "
            f"number ({v!r})")
    return v


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    base_path, cur_paths = argv[1], argv[2:]
    try:
        base_tables, floors = load_document(base_path)
        cur_docs = [(p, load_document(p)[0]) for p in cur_paths]

        structure_ok = all(
            check_structure(p, tables, base_path, base_tables)
            for p, tables in cur_docs)
        if not structure_ok:
            raise SystemExit(report(base_path))

        checked = 0
        for slug, base in sorted(base_tables.items()):
            for i, base_row in enumerate(base["rows"]):
                for metric in base["value_columns"]:
                    bv = cell(base_path, slug, base_row, metric)
                    cvs = [cell(p, slug, tables[slug]["rows"][i], metric)
                           for p, tables in cur_docs]
                    checked += 1
                    if is_deterministic(metric):
                        if len(set(cvs)) != 1:
                            fail(f"{slug}: {metric} @ {base_row['keys']} is "
                                 f"not reproducible across repeats: {cvs} — "
                                 f"deterministic columns may not vary")
                        elif cvs[0] != bv:
                            fail(f"{slug}: {metric} @ {base_row['keys']} "
                                 f"changed exactly-gated value {bv} -> "
                                 f"{cvs[0]}")
                        continue
                    # Wall clock: gate the best repeat, with the band
                    # widened by the observed repeat spread.
                    best = max(cvs)
                    spread = (best - min(cvs)) / best if best > 0 else 0.0
                    allowed = min(max(MIN_DROP, NOISE_FACTOR * spread),
                                  MAX_DROP)
                    if best < bv * (1.0 - allowed):
                        fail(f"{slug}: {metric} @ {base_row['keys']} "
                             f"regressed: best of {len(cvs)} repeat(s) "
                             f"{best:.2f} < baseline {bv:.2f} - "
                             f"{allowed:.0%} (repeat spread {spread:.0%})")
        checked += check_floors(base_path, base_tables, floors, cur_docs)
    except MalformedInput as e:
        print(f"check_perf_baseline: malformed input: {e}", file=sys.stderr)
        return 2
    except SystemExit as e:
        return e.code

    if failures:
        return report(base_path)
    print(f"perf gate passed: {len(cur_paths)} run(s) vs {base_path} "
          f"({checked} cells)")
    return 0


def report(base_path):
    print(f"PERF GATE FAILED (vs {base_path}):")
    for f in failures:
        print(f"  - {f}")
    print("If the change is intentional, regenerate the baseline "
          "(see bench/baselines/README.md).")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
