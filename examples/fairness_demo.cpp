/// Fairness and stability demo (paper Fig. 5): four flows share one
/// bottleneck, arriving two RTT-epochs apart and leaving in reverse
/// order. Prints each flow's throughput over time — PowerTCP converges
/// to the fair share within a few RTTs at every arrival and departure.

#include <array>
#include <cstdio>

#include "cc/factory.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;

int main() {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 4;
  topo::Dumbbell topo(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 4;
  const cc::CcFactory factory = cc::make_factory("powertcp");

  const sim::TimePs epoch = sim::microseconds(500);
  std::array<stats::ThroughputSeries, 4> series{
      stats::ThroughputSeries(0, sim::microseconds(50)),
      stats::ThroughputSeries(0, sim::microseconds(50)),
      stats::ThroughputSeries(0, sim::microseconds(50)),
      stats::ThroughputSeries(0, sim::microseconds(50))};
  topo.receiver().set_data_callback(
      [&](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        series.at(flow - 1).add_bytes(now, bytes);
      });

  // Flow i joins at i*epoch. Sizes are chosen so flows drain in reverse
  // arrival order, exercising both ramp-down and ramp-up.
  const std::array<std::int64_t, 4> sizes = {9'000'000, 6'500'000, 4'000'000,
                                             1'800'000};
  for (int i = 0; i < 4; ++i) {
    topo.sender(i).start_flow(static_cast<net::FlowId>(i + 1),
                              topo.receiver().id(), sizes.at(i),
                              factory(params), params, i * epoch);
  }

  simulator.run_until(sim::milliseconds(5));

  std::printf("PowerTCP fairness: 4 flows on one 25G bottleneck\n");
  std::printf("%10s %8s %8s %8s %8s\n", "time", "f1", "f2", "f3", "f4");
  for (std::size_t bin = 0; bin < series[0].bin_count(); bin += 4) {
    std::printf("%10s", sim::format_time(series[0].bin_start(bin)).c_str());
    for (const auto& s : series) std::printf(" %8.1f", s.gbps(bin));
    std::printf("\n");
  }
  return 0;
}
