/// Reconfigurable-DCN scenario (paper §5): hosts in one rack stream to a
/// remote rack while an optical circuit switch cycles its matchings.
/// Shows PowerTCP ramping into the 100G circuit within an RTT and
/// draining back when the day ends, versus reTCP's prebuffered queues.

#include <cstdio>
#include <string>

#include "cc/registry.hpp"
#include "host/flow.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/rdcn.hpp"

using namespace powertcp;

namespace {

void run(const std::string& algo) {
  sim::Simulator simulator;
  net::Network network(simulator);

  topo::RdcnConfig cfg;
  cfg.n_tors = 8;
  cfg.servers_per_tor = 4;
  topo::Rdcn rdcn(network, cfg);

  const sim::TimePs tau = rdcn.max_base_rtt();
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = tau;
  params.expected_flows = 10;  // N in beta = HostBw*tau/N (small q_e)

  // Both schemes come out of the registry: the SchemeTopology hands
  // reTCP the rotor schedule and bandwidths it needs, and `key=value`
  // params select the §5 case-study configuration.
  cc::SchemeTopology scheme_topo;
  scheme_topo.circuit = &rdcn.schedule();
  scheme_topo.circuit_bw_bps = cfg.circuit_bw.bps();
  scheme_topo.packet_bw_bps = cfg.packet_bw.bps();
  const cc::ParamMap scheme_params =
      algo == "powertcp"
          // Per-RTT updates (§5's fair-comparison mode) and a window
          // clamp of 4 BDP (the circuit BDP is 4x the packet BDP).
          ? cc::ParamMap{{"per_rtt_update", "true"}, {"max_cwnd_bdp", "4"}}
          : cc::ParamMap{{"prebuffering_us", "600"}};
  const cc::FlowCcFactory factory =
      cc::Registry::instance().at(algo).make(scheme_params, scheme_topo);

  // All four hosts of rack 0 stream to distinct hosts of rack 1.
  stats::ThroughputSeries goodput(0, sim::microseconds(25));
  const int senders = cfg.servers_per_tor;
  for (int s = 0; s < senders; ++s) {
    const int dst_host = cfg.servers_per_tor + s;  // rack 1
    rdcn.host(dst_host).set_data_callback(
        [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
          goodput.add_bytes(now, bytes);
        });
    rdcn.host(s).start_flow(static_cast<net::FlowId>(s + 1),
                            rdcn.host(dst_host).id(),
                            /*size=*/1'000'000'000,
                            factory(params, cc::FlowEndpoints{0, 1}), params,
                            /*start=*/0);
  }

  stats::QueueSeries voq;
  // Monitor the rack-0 VOQ toward rack 1 via the circuit port monitor.
  rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).set_queue_monitor(&voq);

  simulator.run_until(sim::milliseconds(3));

  std::printf("\n%s: rack0 -> rack1, circuit day %s / night %s, tau %s\n",
              algo.c_str(), sim::format_time(cfg.day).c_str(),
              sim::format_time(cfg.night).c_str(),
              sim::format_time(tau).c_str());
  std::printf("%10s %10s %12s %14s\n", "time", "gbps", "voq(KB)",
              "circuit-up?");
  for (std::size_t bin = 0; bin < goodput.bin_count() && bin < 96;
       bin += 2) {
    const sim::TimePs t = goodput.bin_start(bin);
    const bool up = rdcn.schedule().active_peer(0, t) == 1;
    std::printf("%10s %10.1f %12.1f %14s\n", sim::format_time(t).c_str(),
                (goodput.gbps(bin) + goodput.gbps(bin + 1)) / 2.0,
                static_cast<double>(voq.at(t)) / 1e3, up ? "day" : "-");
  }
}

}  // namespace

int main() {
  run("powertcp");
  run("retcp");
  return 0;
}
