/// Quickstart: build a single-bottleneck network, run one PowerTCP flow
/// plus a burst of competitors, and print throughput / queue / FCT
/// figures — the smallest end-to-end tour of the public API.

#include <cstdio>

#include "cc/factory.hpp"
#include "host/flow.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

using namespace powertcp;

int main() {
  sim::Simulator simulator;
  net::Network network(simulator);

  // 10 senders and one receiver behind a 25 Gbps bottleneck.
  topo::DumbbellConfig topo_cfg;
  topo_cfg.n_senders = 10;
  topo::Dumbbell topo(network, topo_cfg);

  const sim::TimePs tau = topo.base_rtt();
  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = tau;

  // Monitor the bottleneck queue and the receiver's goodput.
  stats::QueueSeries queue;
  topo.bottleneck_port().set_queue_monitor(&queue);
  stats::ThroughputSeries goodput(0, sim::microseconds(50));
  topo.receiver().set_data_callback(
      [&](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });

  // One long flow from sender 0, then at t=200us nine short flows join.
  const cc::CcFactory make_cc = cc::make_factory("powertcp");
  std::printf("PowerTCP quickstart: 10 flows over one 25G bottleneck\n");
  std::printf("base RTT (tau) = %s, BDP = %.1f KB\n\n",
              sim::format_time(tau).c_str(), params.bdp_bytes() / 1e3);

  topo.sender(0).start_flow(/*flow=*/1, topo.receiver().id(),
                            /*size=*/20'000'000, make_cc(params), params,
                            /*start=*/0);
  for (int i = 1; i < 10; ++i) {
    topo.sender(i).start_flow(
        static_cast<net::FlowId>(i + 1), topo.receiver().id(),
        /*size=*/500'000, make_cc(params), params,
        /*start=*/sim::microseconds(200),
        [](const host::FlowCompletion& done) {
          std::printf("  flow %llu (%lld bytes) finished in %s\n",
                      static_cast<unsigned long long>(done.flow),
                      static_cast<long long>(done.size_bytes),
                      sim::format_time(done.finish - done.start).c_str());
        });
  }

  simulator.run_until(sim::milliseconds(4));

  std::printf("\nbottleneck over time (100us bins):\n");
  std::printf("%10s %12s %12s\n", "time", "gbps", "queue(KB)");
  for (std::size_t bin = 0; bin + 1 < goodput.bin_count(); bin += 2) {
    const sim::TimePs t = goodput.bin_start(bin);
    std::printf("%10s %12.1f %12.1f\n", sim::format_time(t).c_str(),
                (goodput.gbps(bin) + goodput.gbps(bin + 1)) / 2.0,
                static_cast<double>(queue.at(t)) / 1e3);
  }
  std::printf("\nmax queue: %.1f KB; drops: %llu\n",
              static_cast<double>(queue.max_bytes()) / 1e3,
              static_cast<unsigned long long>(
                  topo.bottleneck_switch().total_drops()));
  return 0;
}
