/// Incast scenario (paper Fig. 4): a long flow occupies a receiver's
/// downlink when a synchronized fan-in of responders slams the same
/// bottleneck. Compares how each congestion controller absorbs the
/// burst: peak queue, drops, time back to near-zero queueing, and the
/// long flow's throughput sacrifice.

#include <cstdio>
#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "harness/experiment.hpp"
#include "host/flow.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/percentiles.hpp"
#include "stats/timeseries.hpp"
#include "topo/fat_tree.hpp"

using namespace powertcp;

namespace {

struct Outcome {
  double peak_queue_kb = 0;
  double settle_us = -1;  ///< time from burst until queue < 10% of peak
  double long_flow_gbps = 0;
  std::uint64_t drops = 0;
  double burst_p99_fct_us = 0;
};

Outcome run(const std::string& cc_name, int fan_in) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  cfg.ecn = harness::ecn_profile_for(cc_name);
  topo::FatTree fabric(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  params.expected_flows = 8;
  const cc::CcFactory factory = cc::make_factory(cc_name);

  // Receiver: host 0. Long-flow sender: last host (different pod).
  const int receiver = 0;
  const int long_sender = fabric.host_count() - 1;
  stats::ThroughputSeries long_goodput(0, sim::microseconds(50));
  fabric.host(receiver).set_data_callback(
      [&](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        if (flow == 1) long_goodput.add_bytes(now, bytes);
      });
  fabric.host(long_sender)
      .start_flow(1, fabric.host_node(receiver), 1'000'000'000,
                  factory(params), params, 0);

  // The receiver's ToR downlink is the bottleneck; watch its queue.
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);

  // Burst at t = 300us: fan_in responders in other racks, 50KB each.
  const sim::TimePs burst_at = sim::microseconds(300);
  stats::Samples burst_fcts;
  for (int i = 0; i < fan_in; ++i) {
    const int responder =
        cfg.servers_per_tor + i % (fabric.host_count() - cfg.servers_per_tor);
    fabric.host(responder).start_flow(
        static_cast<net::FlowId>(100 + i), fabric.host_node(receiver),
        50'000, factory(params), params, burst_at,
        [&burst_fcts](const host::FlowCompletion& c) {
          burst_fcts.add(sim::to_microseconds(c.finish - c.start));
        });
  }

  simulator.run_until(sim::milliseconds(3));

  Outcome out;
  out.peak_queue_kb = static_cast<double>(queue.max_bytes()) / 1e3;
  out.drops = fabric.total_drops();
  out.long_flow_gbps =
      long_goodput.mean_gbps(40, long_goodput.bin_count());  // post-burst
  if (!burst_fcts.empty()) out.burst_p99_fct_us = burst_fcts.percentile(99);
  // Settle time: first time after the burst the queue dips below 10% of
  // its peak.
  const auto threshold =
      static_cast<std::int64_t>(queue.max_bytes() / 10);
  for (const auto& p : queue.points()) {
    if (p.t > burst_at + sim::microseconds(20) && p.bytes <= threshold) {
      out.settle_us = sim::to_microseconds(p.t - burst_at);
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc",     "timely",
                                          "dcqcn",    "dctcp"};
  std::printf("Incast fan-in against a long flow (quick fat-tree)\n\n");
  for (const int fan_in : {10, 40}) {
    std::printf("== %d:1 incast ==\n", fan_in);
    std::printf("%-16s %10s %10s %10s %8s %12s\n", "algorithm", "peakQ(KB)",
                "settle(us)", "longGbps", "drops", "burstP99(us)");
    for (const auto& a : algos) {
      const Outcome o = run(a, fan_in);
      std::printf("%-16s %10.1f %10.1f %10.1f %8llu %12.1f\n", a.c_str(),
                  o.peak_queue_kb, o.settle_us, o.long_flow_gbps,
                  static_cast<unsigned long long>(o.drops),
                  o.burst_p99_fct_us);
    }
    std::printf("\n");
  }
  return 0;
}
