/// Incast scenario (paper Fig. 4): a long flow occupies a receiver's
/// downlink when a synchronized fan-in of responders slams the same
/// bottleneck. Compares how each congestion controller absorbs the
/// burst: peak queue, drops, time back to near-zero queueing, and the
/// long flow's throughput sacrifice.
///
/// Every scheme — the receiver-driven HOMA transport included — is
/// resolved through cc::Registry: its entry supplies the fabric needs
/// (ECN profile, priority bands), the flow factory, or the
/// message-transport flag, so no algorithm is special-cased here.

#include <cstdio>
#include <string>
#include <vector>

#include "cc/registry.hpp"
#include "host/flow.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/percentiles.hpp"
#include "stats/timeseries.hpp"
#include "topo/fat_tree.hpp"

using namespace powertcp;

namespace {

struct Outcome {
  double peak_queue_kb = 0;
  double settle_us = -1;  ///< time from burst until queue < 10% of peak
  double long_flow_gbps = 0;
  std::uint64_t drops = 0;
  double burst_p99_fct_us = 0;
};

Outcome run(const std::string& cc_name, int fan_in) {
  const cc::Scheme& scheme = cc::Registry::instance().at(cc_name);

  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  cfg.ecn = scheme.needs.ecn;
  cfg.priority_bands = scheme.needs.priority_bands;
  topo::FatTree fabric(network, cfg);

  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  params.expected_flows = 8;

  // Receiver: host 0. Long-flow sender: last host (different pod).
  const int receiver = 0;
  const int long_sender = fabric.host_count() - 1;
  stats::ThroughputSeries long_goodput(0, sim::microseconds(50));
  fabric.host(receiver).set_data_callback(
      [&](net::FlowId flow, std::int64_t bytes, sim::TimePs now) {
        if (flow == 1) long_goodput.add_bytes(now, bytes);
      });

  // The receiver's ToR downlink is the bottleneck; watch its queue.
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);

  // Burst at t = 300us: fan_in responders in other racks, 50KB each.
  const sim::TimePs burst_at = sim::microseconds(300);
  const std::int64_t long_bytes = 1'000'000'000;
  const std::int64_t burst_bytes = 50'000;
  stats::Samples burst_fcts;
  // Responders rotate over hosts outside the receiver's rack,
  // excluding the long-flow sender (last host) so a huge fan-in never
  // contends with the long flow's own uplink.
  const auto responder_of = [&](int i) {
    return cfg.servers_per_tor +
           i % (fabric.host_count() - cfg.servers_per_tor - 1);
  };

  if (scheme.message_transport) {
    const host::HomaConfig hc =
        host::homa_config_from_params(cc::ParamMap{}, params);
    for (int h = 0; h < fabric.host_count(); ++h) {
      fabric.host(h).enable_homa(hc);
    }
    fabric.host(receiver).homa()->set_message_callback(
        [&burst_fcts](const host::MessageCompletion& c) {
          if (c.message >= 100) {
            burst_fcts.add(sim::to_microseconds(c.finish - c.start));
          }
        });
    host::Host& ls = fabric.host(long_sender);
    simulator.schedule_at(0, [&ls, &fabric, receiver, long_bytes] {
      ls.homa()->send_message(1, fabric.host_node(receiver), long_bytes);
    });
    for (int i = 0; i < fan_in; ++i) {
      host::Host& h = fabric.host(responder_of(i));
      const auto fid = static_cast<net::FlowId>(100 + i);
      simulator.schedule_at(burst_at, [&h, fid, &fabric, receiver,
                                       burst_bytes] {
        h.homa()->send_message(fid, fabric.host_node(receiver), burst_bytes);
      });
    }
  } else {
    const cc::FlowCcFactory factory =
        scheme.make(cc::ParamMap{}, cc::SchemeTopology{});
    const auto endpoints = [&](int src_host) {
      return cc::FlowEndpoints{fabric.tor_of_host(src_host),
                               fabric.tor_of_host(receiver)};
    };
    fabric.host(long_sender)
        .start_flow(1, fabric.host_node(receiver), long_bytes,
                    factory(params, endpoints(long_sender)), params, 0);
    for (int i = 0; i < fan_in; ++i) {
      const int responder = responder_of(i);
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(100 + i), fabric.host_node(receiver),
          burst_bytes, factory(params, endpoints(responder)), params,
          burst_at, [&burst_fcts](const host::FlowCompletion& c) {
            burst_fcts.add(sim::to_microseconds(c.finish - c.start));
          });
    }
  }

  simulator.run_until(sim::milliseconds(3));

  Outcome out;
  out.peak_queue_kb = static_cast<double>(queue.max_bytes()) / 1e3;
  out.drops = fabric.total_drops();
  out.long_flow_gbps =
      long_goodput.mean_gbps(40, long_goodput.bin_count());  // post-burst
  if (!burst_fcts.empty()) out.burst_p99_fct_us = burst_fcts.percentile(99);
  // Settle time: first time after the burst the queue dips below 10% of
  // its peak.
  const auto threshold =
      static_cast<std::int64_t>(queue.max_bytes() / 10);
  for (const auto& p : queue.points()) {
    if (p.t > burst_at + sim::microseconds(20) && p.bytes <= threshold) {
      out.settle_us = sim::to_microseconds(p.t - burst_at);
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::vector<std::string> algos = {"powertcp", "theta-powertcp",
                                          "hpcc",     "timely",
                                          "dcqcn",    "dctcp",
                                          "homa"};
  std::printf("Incast fan-in against a long flow (quick fat-tree)\n\n");
  for (const int fan_in : {10, 40}) {
    std::printf("== %d:1 incast ==\n", fan_in);
    std::printf("%-16s %10s %10s %10s %8s %12s\n", "algorithm", "peakQ(KB)",
                "settle(us)", "longGbps", "drops", "burstP99(us)");
    for (const auto& a : algos) {
      const Outcome o = run(a, fan_in);
      std::printf("%-16s %10.1f %10.1f %10.1f %8llu %12.1f\n", a.c_str(),
                  o.peak_queue_kb, o.settle_us, o.long_flow_gbps,
                  static_cast<unsigned long long>(o.drops),
                  o.burst_p99_fct_us);
    }
    std::printf("\n");
  }
  return 0;
}
