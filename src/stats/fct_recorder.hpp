#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/percentiles.hpp"

/// \file fct_recorder.hpp
/// Flow-completion-time bookkeeping in the paper's reporting format:
/// per-flow *slowdown* (measured FCT / ideal FCT at line rate with zero
/// queuing), bucketed by flow size exactly as the x-axis of Figs. 6a/6b.

namespace powertcp::stats {

struct FlowRecord {
  std::uint64_t flow_id = 0;
  std::int64_t size_bytes = 0;
  sim::TimePs start = 0;
  sim::TimePs finish = 0;
  sim::TimePs ideal = 0;  ///< size/line-rate + base RTT.
  double slowdown() const {
    return ideal > 0 ? static_cast<double>(finish - start) /
                           static_cast<double>(ideal)
                     : 0.0;
  }
};

/// Size-bucket boundaries used by the paper's FCT figures
/// (5K 20K 50K 100K 400K 800K 5M 30M).
struct SizeBucket {
  std::int64_t upper_bytes;  ///< inclusive upper edge
  std::string label;
};

const std::vector<SizeBucket>& paper_size_buckets();

class FctRecorder {
 public:
  void record(const FlowRecord& r);

  std::size_t flow_count() const { return flows_.size(); }
  const std::vector<FlowRecord>& flows() const { return flows_; }

  /// Slowdown samples for flows with size in (lo, hi].
  Samples slowdowns_in_range(std::int64_t lo_bytes,
                             std::int64_t hi_bytes) const;

  /// Slowdown samples for every flow.
  Samples all_slowdowns() const;

  /// Short flows, paper definition: < 10 KB.
  Samples short_flow_slowdowns() const {
    return slowdowns_in_range(0, 10'000);
  }
  /// Long flows, paper definition: >= 1 MB.
  Samples long_flow_slowdowns() const {
    return slowdowns_in_range(1'000'000, INT64_MAX);
  }

  /// Per-bucket percentile row matching the Fig. 6 x-axis. Buckets with
  /// no samples report -1.
  std::vector<double> bucket_percentiles(double p) const;

 private:
  std::vector<FlowRecord> flows_;
};

}  // namespace powertcp::stats
