#include "stats/percentiles.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace powertcp::stats {

void Samples::add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::min() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("Samples::min: no samples");
  return sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  if (sorted_.empty()) throw std::logic_error("Samples::max: no samples");
  return sorted_.back();
}

double Samples::mean() const {
  if (values_.empty()) throw std::logic_error("Samples::mean: no samples");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) {
    throw std::logic_error("Samples::percentile: no samples");
  }
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Samples::cdf_at(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<const char*, double>> SampleSummary::named_values()
    const {
  return {{"min", min}, {"max", max}, {"mean", mean}, {"p50", p50},
          {"p90", p90}, {"p99", p99}, {"p99.9", p999}};
}

SampleSummary Samples::summary() const {
  SampleSummary s;
  s.count = values_.size();
  if (values_.empty()) {
    const double nan = std::nan("");
    s.min = s.max = s.mean = s.p50 = s.p90 = s.p99 = s.p999 = nan;
    return s;
  }
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = percentile(50);
  s.p90 = percentile(90);
  s.p99 = percentile(99);
  s.p999 = percentile(99.9);
  return s;
}

std::vector<std::pair<double, double>> Samples::cdf_curve(
    std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        points == 1 ? 1.0
                    : static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(sorted_.size() - 1));
    out.emplace_back(sorted_[idx],
                     static_cast<double>(idx + 1) /
                         static_cast<double>(sorted_.size()));
  }
  return out;
}

}  // namespace powertcp::stats
