#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file percentiles.hpp
/// Order statistics over collected samples: percentiles and empirical CDFs.
/// Used to report the paper's p99.9 flow-completion-time slowdowns
/// (Figs. 6-7) and buffer-occupancy CDFs (Figs. 7g/7h).

namespace powertcp::stats {

/// Serializable five-number-plus summary of a sample set; the shape the
/// sweep runner's CSV/JSON emitters and the bench tables report. An
/// empty sample set yields count == 0 and NaN statistics (rendered as
/// missing cells / JSON null downstream).
struct SampleSummary {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;

  /// (name, value) view over the statistic fields, in reporting order —
  /// keeps column headers and serialized keys in one place.
  std::vector<std::pair<const char*, double>> named_values() const;
};

/// Accumulates double samples; computes exact percentiles by sorting on
/// demand (sort is cached until the next insertion).
class Samples {
 public:
  void add(double v);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Exact percentile with linear interpolation; p in [0, 100].
  /// Precondition: at least one sample.
  double percentile(double p) const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  double cdf_at(double x) const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced ranks,
  /// suitable for plotting the full CDF curve.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  /// Serializable summary (count/min/max/mean + p50/p90/p99/p99.9).
  /// Unlike the throwing accessors, safe on an empty set (NaN stats).
  SampleSummary summary() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace powertcp::stats
