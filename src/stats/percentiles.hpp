#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file percentiles.hpp
/// Order statistics over collected samples: percentiles and empirical CDFs.
/// Used to report the paper's p99.9 flow-completion-time slowdowns
/// (Figs. 6-7) and buffer-occupancy CDFs (Figs. 7g/7h).

namespace powertcp::stats {

/// Accumulates double samples; computes exact percentiles by sorting on
/// demand (sort is cached until the next insertion).
class Samples {
 public:
  void add(double v);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Exact percentile with linear interpolation; p in [0, 100].
  /// Precondition: at least one sample.
  double percentile(double p) const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  double cdf_at(double x) const;

  /// (value, cumulative fraction) pairs at `points` evenly spaced ranks,
  /// suitable for plotting the full CDF curve.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace powertcp::stats
