#include "stats/fct_recorder.hpp"

namespace powertcp::stats {

const std::vector<SizeBucket>& paper_size_buckets() {
  static const std::vector<SizeBucket> kBuckets = {
      {5'000, "5K"},      {20'000, "20K"},   {50'000, "50K"},
      {100'000, "100K"},  {400'000, "400K"}, {800'000, "800K"},
      {5'000'000, "5M"},  {30'000'000, "30M"},
  };
  return kBuckets;
}

void FctRecorder::record(const FlowRecord& r) { flows_.push_back(r); }

Samples FctRecorder::slowdowns_in_range(std::int64_t lo_bytes,
                                        std::int64_t hi_bytes) const {
  Samples s;
  for (const auto& f : flows_) {
    if (f.size_bytes > lo_bytes && f.size_bytes <= hi_bytes) {
      s.add(f.slowdown());
    }
  }
  return s;
}

Samples FctRecorder::all_slowdowns() const {
  Samples s;
  s.reserve(flows_.size());
  for (const auto& f : flows_) s.add(f.slowdown());
  return s;
}

std::vector<double> FctRecorder::bucket_percentiles(double p) const {
  const auto& buckets = paper_size_buckets();
  std::vector<double> out;
  out.reserve(buckets.size());
  std::int64_t lo = 0;
  for (const auto& b : buckets) {
    const Samples s = slowdowns_in_range(lo, b.upper_bytes);
    out.push_back(s.empty() ? -1.0 : s.percentile(p));
    lo = b.upper_bytes;
  }
  return out;
}

}  // namespace powertcp::stats
