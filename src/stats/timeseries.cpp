#include "stats/timeseries.hpp"

#include <algorithm>

namespace powertcp::stats {

void ThroughputSeries::add_bytes(sim::TimePs when, std::int64_t bytes) {
  if (when < origin_) return;
  const auto bin = static_cast<std::size_t>((when - origin_) / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += bytes;
}

double ThroughputSeries::gbps(std::size_t i) const {
  if (i >= bins_.size()) return 0.0;
  const double secs = sim::to_seconds(bin_width_);
  return static_cast<double>(bins_[i]) * 8.0 / secs / 1e9;
}

double ThroughputSeries::mean_gbps(std::size_t from_bin,
                                   std::size_t to_bin) const {
  if (from_bin >= to_bin) return 0.0;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = from_bin; i < to_bin && i < bins_.size(); ++i) {
    total += gbps(i);
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

std::int64_t QueueSeries::at(sim::TimePs t) const {
  // points_ is chronologically ordered because simulation time only
  // moves forward.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::TimePs v, const Point& p) { return v < p.t; });
  if (it == points_.begin()) return 0;
  return std::prev(it)->bytes;
}

double QueueSeries::time_weighted_mean(sim::TimePs from,
                                       sim::TimePs to) const {
  if (to <= from || points_.empty()) return 0.0;
  double area = 0.0;
  std::int64_t level = at(from);
  sim::TimePs cursor = from;
  for (const auto& p : points_) {
    if (p.t <= from) continue;
    if (p.t >= to) break;
    area += static_cast<double>(level) * sim::to_seconds(p.t - cursor);
    level = p.bytes;
    cursor = p.t;
  }
  area += static_cast<double>(level) * sim::to_seconds(to - cursor);
  return area / sim::to_seconds(to - from);
}

}  // namespace powertcp::stats
