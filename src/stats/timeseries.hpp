#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// \file timeseries.hpp
/// Windowed counters for the paper's time-series plots: throughput
/// (Figs. 4, 5, 8a) and queue length (Figs. 4, 8a).

namespace powertcp::stats {

/// Accumulates byte arrivals into fixed-width time bins and reports the
/// per-bin rate in Gbps. Bin 0 starts at `origin`.
class ThroughputSeries {
 public:
  ThroughputSeries(sim::TimePs origin, sim::TimePs bin_width)
      : origin_(origin), bin_width_(bin_width) {}

  void add_bytes(sim::TimePs when, std::int64_t bytes);

  std::size_t bin_count() const { return bins_.size(); }
  sim::TimePs bin_width() const { return bin_width_; }
  sim::TimePs bin_start(std::size_t i) const {
    return origin_ + static_cast<sim::TimePs>(i) * bin_width_;
  }

  /// Rate over bin i in Gbps.
  double gbps(std::size_t i) const;

  /// Mean rate over [from_bin, to_bin) in Gbps.
  double mean_gbps(std::size_t from_bin, std::size_t to_bin) const;

 private:
  sim::TimePs origin_;
  sim::TimePs bin_width_;
  std::vector<std::int64_t> bins_;
};

/// Point-in-time samples of a queue length (bytes). The monitored queue
/// calls `sample` on every enqueue/dequeue or on a periodic timer.
class QueueSeries {
 public:
  struct Point {
    sim::TimePs t;
    std::int64_t bytes;
  };

  void sample(sim::TimePs t, std::int64_t bytes) {
    points_.push_back({t, bytes});
    if (bytes > max_bytes_) max_bytes_ = bytes;
  }

  const std::vector<Point>& points() const { return points_; }
  std::int64_t max_bytes() const { return max_bytes_; }

  /// Value at time t (last sample at or before t; 0 before first sample).
  std::int64_t at(sim::TimePs t) const;

  /// Time-weighted average over [from, to].
  double time_weighted_mean(sim::TimePs from, sim::TimePs to) const;

 private:
  std::vector<Point> points_;
  std::int64_t max_bytes_ = 0;
};

}  // namespace powertcp::stats
