#include "harness/runner.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

#include "cc/registry.hpp"
#include "stats/fct_recorder.hpp"

namespace powertcp::harness {

namespace {

RunnerConfig::Kind parse_kind(const std::string& kind,
                              const ConfigFile& file) {
  if (kind == "fat_tree") return RunnerConfig::Kind::kFatTree;
  if (kind == "incast") return RunnerConfig::Kind::kIncast;
  if (kind == "rdcn") return RunnerConfig::Kind::kRdcn;
  throw ConfigError(file.origin() + ": [experiment] kind = '" + kind +
                    "' is not one of fat_tree, incast, rdcn");
}

/// Resolves one `schemes = ...` entry: its optional [cc.<label>]
/// section supplies params and may alias a registered scheme via
/// `scheme = <name>`. Every param key must be declared by the entry.
SchemeRun resolve_scheme(const ConfigFile& file, const std::string& label) {
  SchemeRun run;
  run.label = label;
  run.scheme = label;
  const ConfigFile::Section* sec = file.find("cc." + label);
  if (sec != nullptr) {
    for (const auto& e : sec->entries) {
      if (e.key == "scheme") {
        run.scheme = e.value;
      } else {
        run.params[e.key] = e.value;
      }
    }
  }
  const cc::Scheme* scheme = cc::Registry::instance().find(run.scheme);
  if (scheme == nullptr) {
    throw ConfigError(file.origin() + ": scheme '" + run.scheme + "' (" +
                      label + ") is not registered; known: " + [] {
                        std::string names;
                        for (const auto& s :
                             cc::Registry::instance().schemes()) {
                          if (!names.empty()) names += ", ";
                          names += s.name;
                        }
                        return names;
                      }());
  }
  for (const auto& [key, value] : run.params) {
    (void)value;
    bool declared = false;
    for (const auto& spec : scheme->params) {
      declared = declared || spec.key == key;
    }
    if (!declared) {
      throw ConfigError(file.origin() + ": [cc." + label + "] '" + key +
                        "' is not a declared parameter of scheme '" +
                        run.scheme + "'");
    }
  }
  return run;
}

void load_fat_tree_topology(SectionView& topo, topo::FatTreeConfig* cfg,
                            const ConfigFile& file) {
  const std::string preset = topo.get_string("preset", "quick");
  if (preset == "quick") {
    *cfg = topo::FatTreeConfig::quick();
  } else if (preset == "paper") {
    *cfg = topo::FatTreeConfig();
  } else {
    throw ConfigError(file.origin() + ": [topology] preset = '" + preset +
                      "' is not one of quick, paper");
  }
  cfg->pods = static_cast<int>(topo.get_int("pods", cfg->pods));
  cfg->tors_per_pod =
      static_cast<int>(topo.get_int("tors_per_pod", cfg->tors_per_pod));
  cfg->aggs_per_pod =
      static_cast<int>(topo.get_int("aggs_per_pod", cfg->aggs_per_pod));
  cfg->cores = static_cast<int>(topo.get_int("cores", cfg->cores));
  cfg->servers_per_tor =
      static_cast<int>(topo.get_int("servers_per_tor", cfg->servers_per_tor));
  if (topo.has("host_gbps")) {
    cfg->host_bw = sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
  }
  if (topo.has("fabric_gbps")) {
    cfg->fabric_bw = sim::Bandwidth::gbps(topo.get_double("fabric_gbps", 0));
  }
  cfg->buffer_bytes_per_gbps =
      topo.get_int("buffer_bytes_per_gbps", cfg->buffer_bytes_per_gbps);
  cfg->dt_alpha = topo.get_double("dt_alpha", cfg->dt_alpha);
}

sim::TimePs get_ms(SectionView& v, const std::string& key,
                   sim::TimePs fallback) {
  if (!v.has(key)) {
    v.get_double(key, 0);  // mark consumed even when absent
    return fallback;
  }
  return sim::from_seconds(v.get_double(key, 0) * 1e-3);
}

sim::TimePs get_us(SectionView& v, const std::string& key,
                   sim::TimePs fallback) {
  if (!v.has(key)) {
    v.get_double(key, 0);
    return fallback;
  }
  return sim::from_seconds(v.get_double(key, 0) * 1e-6);
}

}  // namespace

RunnerConfig load_runner_config(const ConfigFile& file) {
  const ConfigFile::Section* exp_sec = file.find("experiment");
  if (exp_sec == nullptr) {
    throw ConfigError(file.origin() + ": missing [experiment] section");
  }
  RunnerConfig rc;
  SectionView exp(file, exp_sec);
  rc.kind = parse_kind(exp.get_string("kind", "fat_tree"), file);
  rc.slug_prefix = exp.get_string("slug", rc.slug_prefix);
  const std::vector<std::string> scheme_names = exp.get_list("schemes");
  if (scheme_names.empty()) {
    throw ConfigError(file.origin() +
                      ": [experiment] needs a non-empty `schemes` list");
  }
  const auto seed = static_cast<std::uint64_t>(exp.get_int("seed", 1));
  rc.percentile = exp.get_double("percentile", rc.percentile);
  const std::string queue = exp.get_string("sim_queue", "heap");
  sim::QueueKind sim_queue;
  if (queue == "heap") {
    sim_queue = sim::QueueKind::kBinaryHeap;
  } else if (queue == "calendar") {
    sim_queue = sim::QueueKind::kCalendar;
  } else {
    throw ConfigError(file.origin() + ": [experiment] sim_queue = '" + queue +
                      "' is not one of heap, calendar");
  }
  rc.fat_tree.sim_queue = sim_queue;
  rc.incast.sim_queue = sim_queue;
  rc.rdcn.sim_queue = sim_queue;
  exp.finish();

  for (const auto& name : scheme_names) {
    rc.schemes.push_back(resolve_scheme(file, name));
  }

  SectionView topo(file, file.find("topology"));
  SectionView work(file, file.find("workload"));
  switch (rc.kind) {
    case RunnerConfig::Kind::kFatTree: {
      load_fat_tree_topology(topo, &rc.fat_tree.topo, file);
      rc.fat_tree.seed = seed;
      rc.loads = work.get_double_list("loads", rc.loads);
      rc.fat_tree.duration = get_ms(work, "duration_ms", rc.fat_tree.duration);
      rc.fat_tree.size_scale =
          work.get_double("size_scale", rc.fat_tree.size_scale);
      rc.fat_tree.expected_flows = static_cast<int>(
          work.get_int("expected_flows", rc.fat_tree.expected_flows));
      rc.fat_tree.incast = work.get_bool("incast", rc.fat_tree.incast);
      rc.fat_tree.incast_requests_per_sec = work.get_double(
          "incast_requests_per_sec", rc.fat_tree.incast_requests_per_sec);
      rc.fat_tree.incast_request_bytes = static_cast<std::int64_t>(
          work.get_double("incast_request_kb",
                          static_cast<double>(
                              rc.fat_tree.incast_request_bytes) /
                              1e3) *
          1e3);
      rc.fat_tree.incast_fan_in = static_cast<int>(
          work.get_int("incast_fan_in", rc.fat_tree.incast_fan_in));
      break;
    }
    case RunnerConfig::Kind::kIncast: {
      load_fat_tree_topology(topo, &rc.incast.topo, file);
      rc.query_kb = work.get_double_list("query_kb", rc.query_kb);
      rc.fan_in = work.get_double_list("fan_in", rc.fan_in);
      if (rc.fan_in.size() != rc.query_kb.size() && rc.fan_in.size() != 1) {
        throw ConfigError(file.origin() +
                          ": [workload] fan_in must list one value or one "
                          "per query_kb entry");
      }
      for (std::size_t i = 0; i < rc.query_kb.size(); ++i) {
        const double fan =
            rc.fan_in[rc.fan_in.size() == 1 ? 0 : i];
        if (rc.query_kb[i] > 0 && fan < 1) {
          throw ConfigError(file.origin() +
                            ": [workload] query_kb > 0 needs fan_in >= 1 "
                            "(the query is split across the fan-in)");
        }
      }
      rc.incast.long_flow_bytes = static_cast<std::int64_t>(
          work.get_double("long_flow_mb",
                          static_cast<double>(rc.incast.long_flow_bytes) /
                              1e6) *
          1e6);
      rc.incast.long_companions = static_cast<int>(
          work.get_int("long_companions", rc.incast.long_companions));
      rc.incast.burst_at = get_us(work, "burst_at_us", rc.incast.burst_at);
      rc.incast.horizon = get_ms(work, "horizon_ms", rc.incast.horizon);
      rc.incast.bin = get_us(work, "bin_us", rc.incast.bin);
      rc.incast.expected_flows = static_cast<int>(
          work.get_int("expected_flows", rc.incast.expected_flows));
      break;
    }
    case RunnerConfig::Kind::kRdcn: {
      const std::string preset = topo.get_string("preset", "paper");
      if (preset == "small") {
        rc.rdcn.topo = topo::RdcnConfig::small();
      } else if (preset == "paper") {
        rc.rdcn.topo = topo::RdcnConfig();
      } else {
        throw ConfigError(file.origin() + ": [topology] preset = '" + preset +
                          "' is not one of small, paper");
      }
      rc.rdcn.topo.n_tors =
          static_cast<int>(topo.get_int("n_tors", rc.rdcn.topo.n_tors));
      rc.rdcn.topo.servers_per_tor = static_cast<int>(
          topo.get_int("servers_per_tor", rc.rdcn.topo.servers_per_tor));
      if (topo.has("host_gbps")) {
        rc.rdcn.topo.host_bw =
            sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
      }
      if (topo.has("circuit_gbps")) {
        rc.rdcn.topo.circuit_bw =
            sim::Bandwidth::gbps(topo.get_double("circuit_gbps", 0));
      }
      rc.rdcn.topo.day = get_us(topo, "day_us", rc.rdcn.topo.day);
      rc.rdcn.topo.night = get_us(topo, "night_us", rc.rdcn.topo.night);
      rc.packet_gbps = work.get_double_list("packet_gbps", rc.packet_gbps);
      rc.rdcn.flow_bytes = static_cast<std::int64_t>(
          work.get_double("flow_mb",
                          static_cast<double>(rc.rdcn.flow_bytes) / 1e6) *
          1e6);
      rc.rdcn.horizon = get_ms(work, "horizon_ms", rc.rdcn.horizon);
      rc.rdcn.bin = get_us(work, "bin_us", rc.rdcn.bin);
      rc.rdcn.expected_flows = static_cast<int>(
          work.get_int("expected_flows", rc.rdcn.expected_flows));
      break;
    }
  }
  topo.finish();
  work.finish();
  if (rc.loads.empty() || rc.query_kb.empty() || rc.fan_in.empty() ||
      rc.packet_gbps.empty()) {
    throw ConfigError(file.origin() +
                      ": [workload] point lists must be non-empty");
  }

  // Reject sections the loader never looked at (typos, or [cc.X] for a
  // scheme the `schemes` list does not run).
  std::set<std::string> known = {"experiment", "topology", "workload"};
  for (const auto& name : scheme_names) known.insert("cc." + name);
  for (const auto& sec : file.sections()) {
    if (known.count(sec.name) == 0) {
      throw ConfigError(file.origin() + ":" + std::to_string(sec.line) +
                        ": unused section [" + sec.name + "]");
    }
  }
  return rc;
}

SweepSpec fct_sweep_spec(const FatTreeExperiment& base, double load,
                         double percentile,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug_prefix) {
  SweepSpec sw;
  char title[128];
  std::snprintf(title, sizeof(title),
                "%.0f%% ToR-uplink load, websearch (x%.2f sizes), "
                "p%.1f slowdown per size bucket",
                load * 100, base.size_scale, percentile);
  sw.title = title;
  char slug[64];
  std::snprintf(slug, sizeof(slug), "%s_load%.0f", slug_prefix.c_str(),
                load * 100);
  sw.slug = slug;
  sw.key_columns = {"algorithm"};
  for (const auto& b : stats::paper_size_buckets()) {
    sw.value_columns.push_back(b.label);
  }
  sw.value_columns.insert(sw.value_columns.end(),
                          {"allP50", "drops", "flows", "done%"});
  for (const auto& scheme : schemes) {
    SweepPoint p;
    p.keys = {Cell(scheme.display())};
    p.cfg = base;
    p.cfg.cc = scheme.scheme;
    p.cfg.cc_params = scheme.params;
    p.cfg.uplink_load = load;
    sw.points.push_back(std::move(p));
  }
  const double size_scale = base.size_scale;
  sw.metrics = [size_scale, percentile](const FatTreeExperiment&,
                                        const ExperimentResult& r) {
    std::vector<Cell> row;
    // Buckets are defined on unscaled sizes; rescale the edges.
    std::int64_t lo = 0;
    for (const auto& b : stats::paper_size_buckets()) {
      const auto hi = static_cast<std::int64_t>(
          static_cast<double>(b.upper_bytes) * size_scale);
      const auto s = r.fct.slowdowns_in_range(lo, hi);
      row.push_back(s.count() >= 5 ? Cell(s.percentile(percentile), 2)
                                   : Cell());
      lo = hi;
    }
    const auto all = r.fct.all_slowdowns();
    row.push_back(all.empty() ? Cell() : Cell(all.percentile(50), 2));
    row.push_back(Cell::integer(static_cast<std::int64_t>(r.drops)));
    row.push_back(Cell::integer(static_cast<std::int64_t>(r.flows_started)));
    row.push_back(Cell(r.completion_rate() * 100, 1));
    return row;
  };
  return sw;
}

ResultTable incast_figure_table(const SweepRunner& runner,
                                const IncastScenario& cfg,
                                const std::vector<SchemeRun>& schemes,
                                const std::string& slug_prefix) {
  char title[96];
  std::string slug;
  const auto burst_us =
      static_cast<long long>(cfg.burst_at / sim::kPsPerUs);
  if (cfg.query_bytes > 0) {
    std::snprintf(title, sizeof(title),
                  "%d long flows + %d:1 query incast (%lld KB total) "
                  "at t=%lldus",
                  cfg.long_companions, cfg.fan_in,
                  static_cast<long long>(cfg.query_bytes / 1000), burst_us);
    // The query size keeps slugs unique when a config sweeps several
    // query points (CSV rows and the regression gate key on the slug).
    slug = slug_prefix + "_query" +
           std::to_string(cfg.query_bytes / 1000) + "kb";
  } else {
    std::snprintf(title, sizeof(title),
                  "%d:1 incast of long flows at t=%lldus",
                  cfg.long_companions, burst_us);
    slug = slug_prefix + "_" + std::to_string(cfg.long_companions) + "to1";
  }
  return incast_table(runner, cfg, schemes, slug, title);
}

RunnerConfig fig6_runner_config(bool fast, bool full) {
  RunnerConfig rc;
  rc.kind = RunnerConfig::Kind::kFatTree;
  rc.slug_prefix = "fig6";
  rc.loads = {0.2, 0.6};
  rc.percentile = 99.0;
  rc.fat_tree.seed = 42;
  rc.fat_tree.duration = sim::milliseconds(20);
  rc.fat_tree.size_scale = 0.1;
  if (fast) rc.fat_tree.duration = sim::milliseconds(8);
  if (full) {
    rc.fat_tree.topo = topo::FatTreeConfig();  // paper scale
    rc.fat_tree.duration = sim::milliseconds(100);
    rc.fat_tree.size_scale = 1.0;
    rc.percentile = 99.9;
  }
  for (const char* name :
       {"powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa"}) {
    rc.schemes.push_back(SchemeRun{"", name, {}});
  }
  return rc;
}

std::vector<ResultTable> run_config(const RunnerConfig& cfg,
                                    const SweepRunner& runner) {
  std::vector<ResultTable> tables;
  switch (cfg.kind) {
    case RunnerConfig::Kind::kFatTree: {
      for (const double load : cfg.loads) {
        tables.push_back(runner.run(fct_sweep_spec(
            cfg.fat_tree, load, cfg.percentile, cfg.schemes,
            cfg.slug_prefix)));
      }
      break;
    }
    case RunnerConfig::Kind::kIncast: {
      for (std::size_t i = 0; i < cfg.query_kb.size(); ++i) {
        IncastScenario point = cfg.incast;
        point.query_bytes =
            static_cast<std::int64_t>(cfg.query_kb[i] * 1e3);
        point.fan_in = static_cast<int>(
            cfg.fan_in[cfg.fan_in.size() == 1 ? 0 : i]);
        tables.push_back(incast_figure_table(runner, point, cfg.schemes,
                                             cfg.slug_prefix));
      }
      break;
    }
    case RunnerConfig::Kind::kRdcn: {
      RdcnScenario series = cfg.rdcn;
      series.topo.packet_bw = sim::Bandwidth::gbps(cfg.packet_gbps.front());
      char title[128];
      std::snprintf(title, sizeof(title),
                    "rack0 -> rack1 throughput / VOQ time series "
                    "(%.0fG packet plane, %.0fG circuit)",
                    cfg.packet_gbps.front(),
                    series.topo.circuit_bw.gbps_value());
      tables.push_back(rdcn_timeseries_table(runner, series, cfg.schemes,
                                             cfg.slug_prefix + "_timeseries",
                                             title));
      std::snprintf(title, sizeof(title),
                    "p99 ToR queuing latency (us) vs packet bandwidth");
      tables.push_back(rdcn_latency_table(runner, cfg.rdcn, cfg.schemes,
                                          cfg.packet_gbps,
                                          cfg.slug_prefix + "_p99", title));
      break;
    }
  }
  return tables;
}

}  // namespace powertcp::harness
