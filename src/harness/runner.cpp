#include "harness/runner.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <stdexcept>

#include "analysis/control_law.hpp"
#include "analysis/fluid_model.hpp"
#include "analysis/theorems.hpp"
#include "cc/mix.hpp"
#include "cc/registry.hpp"
#include "net/aqm.hpp"
#include "stats/fct_recorder.hpp"

namespace powertcp::harness {

namespace {

/// Resolves one `schemes = ...` entry: its optional [cc.<label>]
/// section supplies params and may alias a registered scheme via
/// `scheme = <name>`. Every param key must be declared by the entry.
SchemeRun resolve_scheme(const ConfigFile& file, const std::string& label) {
  SchemeRun run;
  run.label = label;
  run.scheme = label;
  const ConfigFile::Section* sec = file.find("cc." + label);
  if (sec != nullptr) {
    for (const auto& e : sec->entries) {
      if (e.key == "scheme") {
        run.scheme = e.value;
      } else {
        run.params[e.key] = e.value;
      }
    }
  }
  const cc::Scheme* scheme = cc::Registry::instance().find(run.scheme);
  if (scheme == nullptr) {
    throw ConfigError(file.origin() + ": scheme '" + run.scheme + "' (" +
                      label + ") is not registered; known: " + [] {
                        std::string names;
                        for (const auto& s :
                             cc::Registry::instance().schemes()) {
                          if (!names.empty()) names += ", ";
                          names += s.name;
                        }
                        return names;
                      }());
  }
  for (const auto& [key, value] : run.params) {
    (void)value;
    bool declared = false;
    for (const auto& spec : scheme->params) {
      declared = declared || spec.key == key;
    }
    if (!declared) {
      throw ConfigError(file.origin() + ": [cc." + label + "] '" + key +
                        "' is not a declared parameter of scheme '" +
                        run.scheme + "'");
    }
  }
  return run;
}

void load_fat_tree_topology(SectionView& topo, topo::FatTreeConfig* cfg,
                            const ConfigFile& file) {
  const std::string preset = topo.get_string("preset", "quick");
  if (preset == "quick") {
    *cfg = topo::FatTreeConfig::quick();
  } else if (preset == "paper") {
    *cfg = topo::FatTreeConfig();
  } else {
    throw ConfigError(file.origin() + ": [topology] preset = '" + preset +
                      "' is not one of quick, paper");
  }
  cfg->pods = static_cast<int>(topo.get_int("pods", cfg->pods));
  cfg->tors_per_pod =
      static_cast<int>(topo.get_int("tors_per_pod", cfg->tors_per_pod));
  cfg->aggs_per_pod =
      static_cast<int>(topo.get_int("aggs_per_pod", cfg->aggs_per_pod));
  cfg->cores = static_cast<int>(topo.get_int("cores", cfg->cores));
  cfg->servers_per_tor =
      static_cast<int>(topo.get_int("servers_per_tor", cfg->servers_per_tor));
  if (topo.has("host_gbps")) {
    cfg->host_bw = sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
  }
  if (topo.has("fabric_gbps")) {
    cfg->fabric_bw = sim::Bandwidth::gbps(topo.get_double("fabric_gbps", 0));
  }
  cfg->buffer_bytes_per_gbps =
      topo.get_int("buffer_bytes_per_gbps", cfg->buffer_bytes_per_gbps);
  cfg->dt_alpha = topo.get_double("dt_alpha", cfg->dt_alpha);
}

sim::TimePs get_ms(SectionView& v, const std::string& key,
                   sim::TimePs fallback) {
  if (!v.has(key)) {
    v.get_double(key, 0);  // mark consumed even when absent
    return fallback;
  }
  return sim::from_seconds(v.get_double(key, 0) * 1e-3);
}

sim::TimePs get_us(SectionView& v, const std::string& key,
                   sim::TimePs fallback) {
  if (!v.has(key)) {
    v.get_double(key, 0);
    return fallback;
  }
  return sim::from_seconds(v.get_double(key, 0) * 1e-6);
}

/// A `key = v1, v2` list of small positive integers (overcommit
/// levels, fan-ins); absent keys keep `fallback`.
std::vector<int> get_int_list(SectionView& v, const std::string& key,
                              std::vector<int> fallback,
                              const ConfigFile& file) {
  const std::vector<double> raw = v.get_double_list(key, {});
  if (raw.empty()) return fallback;
  std::vector<int> out;
  out.reserve(raw.size());
  for (const double x : raw) {
    // Range-check before the cast: int-casting an unrepresentable
    // double is undefined behavior, not a detectable error.
    if (x < 1 || x > std::numeric_limits<int>::max() || std::floor(x) != x) {
      throw ConfigError(file.origin() + ": [workload] " + key +
                        " entries must be integers >= 1");
    }
    out.push_back(static_cast<int>(x));
  }
  return out;
}

// ---- per-kind loaders ---------------------------------------------
// Each owns its [topology]/[workload] schema; the shared SectionView
// consumption tracking turns any unread key into a file:line error.

std::unique_ptr<ScenarioConfig> load_fat_tree_kind(const ConfigFile& file,
                                                   SectionView& topo,
                                                   SectionView& work,
                                                   const ScenarioContext& ctx) {
  auto sc = std::make_unique<FatTreeKindConfig>();
  sc->schemes = ctx.schemes;
  sc->slug_prefix = ctx.slug_prefix;
  sc->percentile = ctx.percentile;
  sc->fat_tree.sim_queue = ctx.sim_queue;
  sc->fat_tree.sim_threads = ctx.sim_threads;
  sc->fat_tree.seed = ctx.seed;
  sc->fat_tree.telemetry = ctx.telemetry;
  sc->fat_tree.burst = ctx.burst;
  load_fat_tree_topology(topo, &sc->fat_tree.topo, file);
  sc->fat_tree.topo.aqm = ctx.aqm;
  sc->loads = work.get_double_list("loads", sc->loads);
  if (sc->loads.empty()) {
    throw ConfigError(file.origin() +
                      ": [workload] point lists must be non-empty");
  }
  sc->fat_tree.duration = get_ms(work, "duration_ms", sc->fat_tree.duration);
  sc->fat_tree.size_scale =
      work.get_double("size_scale", sc->fat_tree.size_scale);
  sc->fat_tree.expected_flows = static_cast<int>(
      work.get_int("expected_flows", sc->fat_tree.expected_flows));
  sc->fat_tree.incast = work.get_bool("incast", sc->fat_tree.incast);
  sc->fat_tree.incast_requests_per_sec = work.get_double(
      "incast_requests_per_sec", sc->fat_tree.incast_requests_per_sec);
  sc->fat_tree.incast_request_bytes = static_cast<std::int64_t>(
      work.get_double(
          "incast_request_kb",
          static_cast<double>(sc->fat_tree.incast_request_bytes) / 1e3) *
      1e3);
  sc->fat_tree.incast_fan_in = static_cast<int>(
      work.get_int("incast_fan_in", sc->fat_tree.incast_fan_in));
  return sc;
}

std::unique_ptr<ScenarioConfig> load_incast_kind(const ConfigFile& file,
                                                 SectionView& topo,
                                                 SectionView& work,
                                                 const ScenarioContext& ctx) {
  auto sc = std::make_unique<IncastKindConfig>();
  sc->schemes = ctx.schemes;
  sc->slug_prefix = ctx.slug_prefix;
  sc->incast.sim_queue = ctx.sim_queue;
  sc->incast.sim_threads = ctx.sim_threads;
  sc->incast.telemetry = ctx.telemetry;
  sc->incast.burst = ctx.burst;
  load_fat_tree_topology(topo, &sc->incast.topo, file);
  sc->incast.topo.aqm = ctx.aqm;
  sc->query_kb = work.get_double_list("query_kb", sc->query_kb);
  sc->fan_in = work.get_double_list("fan_in", sc->fan_in);
  if (sc->query_kb.empty() || sc->fan_in.empty()) {
    throw ConfigError(file.origin() +
                      ": [workload] point lists must be non-empty");
  }
  if (sc->fan_in.size() != sc->query_kb.size() && sc->fan_in.size() != 1) {
    throw ConfigError(file.origin() +
                      ": [workload] fan_in must list one value or one "
                      "per query_kb entry");
  }
  for (const double fan : sc->fan_in) {
    // 0 is legal (companions-only table), fractions are not: the run
    // would silently truncate to a point the config does not state.
    if (fan < 0 || fan > std::numeric_limits<int>::max() ||
        std::floor(fan) != fan) {
      throw ConfigError(file.origin() +
                        ": [workload] fan_in entries must be integers >= 0");
    }
  }
  for (std::size_t i = 0; i < sc->query_kb.size(); ++i) {
    const double fan = sc->fan_in[sc->fan_in.size() == 1 ? 0 : i];
    if (sc->query_kb[i] > 0 && fan < 1) {
      throw ConfigError(file.origin() +
                        ": [workload] query_kb > 0 needs fan_in >= 1 "
                        "(the query is split across the fan-in)");
    }
  }
  sc->incast.long_flow_bytes = static_cast<std::int64_t>(
      work.get_double("long_flow_mb",
                      static_cast<double>(sc->incast.long_flow_bytes) / 1e6) *
      1e6);
  sc->incast.long_companions = static_cast<int>(
      work.get_int("long_companions", sc->incast.long_companions));
  sc->incast.burst_at = get_us(work, "burst_at_us", sc->incast.burst_at);
  sc->incast.horizon = get_ms(work, "horizon_ms", sc->incast.horizon);
  sc->incast.bin = get_us(work, "bin_us", sc->incast.bin);
  sc->incast.expected_flows = static_cast<int>(
      work.get_int("expected_flows", sc->incast.expected_flows));
  return sc;
}

std::unique_ptr<ScenarioConfig> load_rdcn_kind(const ConfigFile& file,
                                               SectionView& topo,
                                               SectionView& work,
                                               const ScenarioContext& ctx) {
  auto sc = std::make_unique<RdcnKindConfig>();
  sc->schemes = ctx.schemes;
  sc->slug_prefix = ctx.slug_prefix;
  sc->rdcn.sim_queue = ctx.sim_queue;
  sc->rdcn.sim_threads = ctx.sim_threads;
  sc->rdcn.telemetry = ctx.telemetry;
  sc->rdcn.burst = ctx.burst;
  const std::string preset = topo.get_string("preset", "paper");
  if (preset == "small") {
    sc->rdcn.topo = topo::RdcnConfig::small();
  } else if (preset == "paper") {
    sc->rdcn.topo = topo::RdcnConfig();
  } else {
    throw ConfigError(file.origin() + ": [topology] preset = '" + preset +
                      "' is not one of small, paper");
  }
  sc->rdcn.topo.n_tors =
      static_cast<int>(topo.get_int("n_tors", sc->rdcn.topo.n_tors));
  sc->rdcn.topo.servers_per_tor = static_cast<int>(
      topo.get_int("servers_per_tor", sc->rdcn.topo.servers_per_tor));
  if (topo.has("host_gbps")) {
    sc->rdcn.topo.host_bw =
        sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
  }
  if (topo.has("circuit_gbps")) {
    sc->rdcn.topo.circuit_bw =
        sim::Bandwidth::gbps(topo.get_double("circuit_gbps", 0));
  }
  sc->rdcn.topo.day = get_us(topo, "day_us", sc->rdcn.topo.day);
  sc->rdcn.topo.night = get_us(topo, "night_us", sc->rdcn.topo.night);
  sc->packet_gbps = work.get_double_list("packet_gbps", sc->packet_gbps);
  if (sc->packet_gbps.empty()) {
    throw ConfigError(file.origin() +
                      ": [workload] point lists must be non-empty");
  }
  sc->rdcn.flow_bytes = static_cast<std::int64_t>(
      work.get_double("flow_mb",
                      static_cast<double>(sc->rdcn.flow_bytes) / 1e6) *
      1e6);
  sc->rdcn.horizon = get_ms(work, "horizon_ms", sc->rdcn.horizon);
  sc->rdcn.bin = get_us(work, "bin_us", sc->rdcn.bin);
  sc->rdcn.expected_flows = static_cast<int>(
      work.get_int("expected_flows", sc->rdcn.expected_flows));
  return sc;
}

/// Scales a size value (MB/KB key) to bytes. Rejects NaN/inf,
/// non-positive values, and sizes past int64 range — casting an
/// unrepresentable double is undefined behavior, not an error path.
std::int64_t size_to_bytes(double value, double scale,
                           const std::string& key, const ConfigFile& file) {
  constexpr double kMaxBytes = 9.0e18;  // just under int64 max
  if (!std::isfinite(value) || value <= 0 || value * scale > kMaxBytes) {
    throw ConfigError(file.origin() + ": [workload] " + key +
                      " must be a positive in-range size");
  }
  return static_cast<std::int64_t>(value * scale);
}

/// Reads a `flow_mb = 14, 10, 6, 2.5` list into per-flow byte sizes;
/// absent keys keep the scenario's defaults.
void load_flow_mb(SectionView& work, std::vector<std::int64_t>* flow_bytes,
                  const ConfigFile& file) {
  const std::vector<double> mb = work.get_double_list("flow_mb", {});
  if (mb.empty()) return;
  flow_bytes->clear();
  for (const double m : mb) {
    flow_bytes->push_back(size_to_bytes(m, 1e6, "flow_mb", file));
  }
}

std::unique_ptr<ScenarioConfig> load_dumbbell_kind(const ConfigFile& file,
                                                   SectionView& topo,
                                                   SectionView& work,
                                                   const ScenarioContext& ctx) {
  auto sc = std::make_unique<DumbbellKindConfig>();
  sc->schemes = ctx.schemes;
  sc->slug_prefix = ctx.slug_prefix;
  DumbbellScenario& d = sc->dumbbell;
  d.sim_queue = ctx.sim_queue;
  d.sim_threads = ctx.sim_threads;
  d.telemetry = ctx.telemetry;
  d.burst = ctx.burst;
  d.topo.aqm = ctx.aqm;
  if (topo.has("host_gbps")) {
    d.topo.host_bw = sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
  }
  if (topo.has("bottleneck_gbps")) {
    d.topo.bottleneck_bw =
        sim::Bandwidth::gbps(topo.get_double("bottleneck_gbps", 0));
  }
  d.topo.link_delay = get_us(topo, "link_delay_us", d.topo.link_delay);
  d.topo.dt_alpha = topo.get_double("dt_alpha", d.topo.dt_alpha);
  if (topo.has("buffer_kb")) {
    d.topo.buffer_bytes =
        static_cast<std::int64_t>(topo.get_double("buffer_kb", 0) * 1e3);
  }
  load_flow_mb(work, &d.flow_bytes, file);
  d.stagger = get_us(work, "stagger_us", d.stagger);
  d.horizon = get_ms(work, "horizon_ms", d.horizon);
  d.bin = get_us(work, "bin_us", d.bin);
  d.row_stride = static_cast<int>(work.get_int("row_every", d.row_stride));
  if (d.row_stride < 1) {
    throw ConfigError(file.origin() + ": [workload] row_every must be >= 1");
  }
  return sc;
}

std::unique_ptr<ScenarioConfig> load_homa_oc_kind(const ConfigFile& file,
                                                  SectionView& topo,
                                                  SectionView& work,
                                                  const ScenarioContext& ctx) {
  auto sc = std::make_unique<HomaOcKindConfig>();
  sc->schemes = ctx.schemes;
  sc->slug_prefix = ctx.slug_prefix;
  HomaOcScenario& h = sc->homa_oc;
  h.sim_queue = ctx.sim_queue;
  h.sim_threads = ctx.sim_threads;
  h.telemetry = ctx.telemetry;
  h.burst = ctx.burst;
  load_fat_tree_topology(topo, &h.incast_topo, file);
  h.incast_topo.aqm = ctx.aqm;
  h.fairness.topo.aqm = ctx.aqm;
  h.overcommit = get_int_list(work, "overcommit", h.overcommit, file);
  h.fan_in = get_int_list(work, "fan_in", h.fan_in, file);
  load_flow_mb(work, &h.fairness.flow_bytes, file);
  h.fairness.stagger = get_us(work, "stagger_us", h.fairness.stagger);
  h.fairness.horizon =
      get_ms(work, "fairness_horizon_ms", h.fairness.horizon);
  h.fairness.bin = get_us(work, "fairness_bin_us", h.fairness.bin);
  h.fairness.row_stride = static_cast<int>(
      work.get_int("fairness_row_every", h.fairness.row_stride));
  if (h.fairness.row_stride < 1) {
    throw ConfigError(file.origin() +
                      ": [workload] fairness_row_every must be >= 1");
  }
  h.long_message_bytes = size_to_bytes(
      work.get_double("long_message_mb",
                      static_cast<double>(h.long_message_bytes) / 1e6),
      1e6, "long_message_mb", file);
  h.burst_message_bytes = size_to_bytes(
      work.get_double("burst_kb",
                      static_cast<double>(h.burst_message_bytes) / 1e3),
      1e3, "burst_kb", file);
  h.burst_at = get_us(work, "burst_at_us", h.burst_at);
  h.incast_horizon = get_ms(work, "incast_horizon_ms", h.incast_horizon);
  h.incast_bin = get_us(work, "incast_bin_us", h.incast_bin);
  return sc;
}

std::unique_ptr<ScenarioConfig> load_single_flow_kind(
    const ConfigFile& file, SectionView& topo, SectionView& work,
    const ScenarioContext& ctx) {
  auto sc = std::make_unique<SingleFlowKindConfig>();
  sc->slug_prefix = ctx.slug_prefix;
  sc->bandwidth_gbps = topo.get_double("bandwidth_gbps", sc->bandwidth_gbps);
  sc->bdp_packets = topo.get_double("bdp_packets", sc->bdp_packets);
  sc->packet_kb = topo.get_double("packet_kb", sc->packet_kb);
  if (sc->bandwidth_gbps <= 0 || sc->bdp_packets <= 0 || sc->packet_kb <= 0) {
    throw ConfigError(file.origin() +
                      ": [topology] bandwidth_gbps, bdp_packets and "
                      "packet_kb must be > 0");
  }
  sc->hold_queue_pkts =
      work.get_double("hold_queue_pkts", sc->hold_queue_pkts);
  sc->hold_rate_x = work.get_double("hold_rate_x", sc->hold_rate_x);
  sc->rate_max_x = work.get_double("rate_max", sc->rate_max_x);
  sc->queue_max_pkts = work.get_double("queue_max_pkts", sc->queue_max_pkts);
  sc->queue_step_pkts =
      work.get_double("queue_step_pkts", sc->queue_step_pkts);
  if (sc->hold_queue_pkts < 0 || sc->hold_rate_x < 0 || sc->rate_max_x < 0 ||
      sc->queue_max_pkts < 0) {
    throw ConfigError(file.origin() + ": [workload] values must be >= 0");
  }
  if (sc->queue_step_pkts <= 0) {
    throw ConfigError(file.origin() +
                      ": [workload] queue_step_pkts must be > 0");
  }
  return sc;
}

std::unique_ptr<ScenarioConfig> load_mixed_cc_kind(const ConfigFile& file,
                                                   SectionView& topo,
                                                   SectionView& work,
                                                   const ScenarioContext& ctx) {
  auto sc = std::make_unique<MixedCcKindConfig>();
  sc->slug_prefix = ctx.slug_prefix;
  MixedCcScenario& m = sc->mixed;
  m.sim_queue = ctx.sim_queue;
  m.sim_threads = ctx.sim_threads;
  m.burst = ctx.burst;
  m.seed = ctx.seed;
  m.aqm = ctx.aqm;
  if (topo.has("host_gbps")) {
    m.topo.host_bw = sim::Bandwidth::gbps(topo.get_double("host_gbps", 0));
  }
  if (topo.has("bottleneck_gbps")) {
    m.topo.bottleneck_bw =
        sim::Bandwidth::gbps(topo.get_double("bottleneck_gbps", 0));
  }
  m.topo.dt_alpha = topo.get_double("dt_alpha", m.topo.dt_alpha);

  // `cc_mix = dctcp:0.5+powertcp:0.5, dctcp` — each comma-separated
  // entry is one mix cell; members reference [experiment] scheme
  // labels (so [cc.<label>] params apply per member).
  const std::vector<std::string> mix_specs = work.get_list("cc_mix", {});
  if (mix_specs.empty()) {
    throw ConfigError(file.origin() +
                      ": [workload] needs a non-empty `cc_mix` list");
  }
  // The entry's source line, for member-resolution errors.
  std::string at = file.origin();
  if (const ConfigFile::Section* wsec = file.find("workload")) {
    for (const auto& e : wsec->entries) {
      if (e.key == "cc_mix") {
        at += ":" + std::to_string(e.line);
        break;
      }
    }
  }
  for (const std::string& spec : mix_specs) {
    std::vector<cc::MixMember> members;
    try {
      members = cc::parse_cc_mix(spec);
    } catch (const std::exception& e) {
      throw ConfigError(at + ": [workload] cc_mix entry '" + spec +
                        "': " + e.what());
    }
    MixedCcMix mix;
    mix.display = cc::mix_display(members);
    for (const auto& mem : members) {
      const SchemeRun* run = nullptr;
      for (const auto& s : ctx.schemes) {
        if (s.display() == mem.label) {
          run = &s;
          break;
        }
      }
      if (run == nullptr) {
        throw ConfigError(at + ": [workload] cc_mix member '" + mem.label +
                          "' is not in the [experiment] schemes list");
      }
      const cc::Scheme& scheme = cc::Registry::instance().at(run->scheme);
      if (scheme.message_transport) {
        throw ConfigError(
            at + ": [workload] cc_mix member '" + mem.label + "' (scheme " +
            run->scheme +
            ") is a receiver-driven message transport; it reshapes the "
            "fabric and cannot share a bottleneck with sender CC "
            "algorithms");
      }
      if (scheme.needs.circuit_schedule) {
        throw ConfigError(at + ": [workload] cc_mix member '" + mem.label +
                          "' (scheme " + run->scheme +
                          ") needs a circuit schedule; the coexistence "
                          "dumbbell has none");
      }
      mix.members.push_back(*run);
      mix.weights.push_back(mem.weight);
    }
    m.mixes.push_back(std::move(mix));
  }

  m.aqm_kinds = work.get_list("aqm", m.aqm_kinds);
  for (const auto& kind : m.aqm_kinds) {
    if (net::AqmRegistry::instance().find(kind) == nullptr) {
      throw ConfigError(file.origin() + ": [workload] aqm = '" + kind +
                        "' is not one of " +
                        net::AqmRegistry::instance().joined_names());
    }
  }
  m.rtt_us = work.get_double_list("rtt_us", m.rtt_us);
  for (const double rtt : m.rtt_us) {
    if (!std::isfinite(rtt) || rtt <= 0) {
      throw ConfigError(file.origin() +
                        ": [workload] rtt_us entries must be > 0");
    }
  }
  // `buffer_kb = 0, 16, 250` — 0 keeps the topology's default (deep)
  // buffer; small values reach the Tiny-Buffer regime.
  for (const double kb : work.get_double_list("buffer_kb", {})) {
    m.buffer_bytes.push_back(
        kb == 0 ? 0 : size_to_bytes(kb, 1e3, "buffer_kb", file));
  }
  m.senders = static_cast<int>(work.get_int("senders", m.senders));
  if (m.senders < 1) {
    throw ConfigError(file.origin() + ": [workload] senders must be >= 1");
  }
  m.flow_bytes = size_to_bytes(
      work.get_double("flow_mb", static_cast<double>(m.flow_bytes) / 1e6),
      1e6, "flow_mb", file);
  m.horizon = get_ms(work, "horizon_ms", m.horizon);
  return sc;
}

std::unique_ptr<ScenarioConfig> load_fluid_phase_kind(
    const ConfigFile& file, SectionView& topo, SectionView& work,
    const ScenarioContext& ctx) {
  auto sc = std::make_unique<FluidPhaseKindConfig>();
  sc->slug_prefix = ctx.slug_prefix;
  sc->bandwidth_gbps = topo.get_double("bandwidth_gbps", sc->bandwidth_gbps);
  sc->base_rtt_us = topo.get_double("base_rtt_us", sc->base_rtt_us);
  sc->gamma = topo.get_double("gamma", sc->gamma);
  sc->update_interval_us =
      topo.get_double("update_interval_us", sc->update_interval_us);
  sc->beta_frac = topo.get_double("beta_frac", sc->beta_frac);
  if (sc->bandwidth_gbps <= 0 || sc->base_rtt_us <= 0 || sc->gamma <= 0 ||
      sc->update_interval_us <= 0 || sc->beta_frac <= 0) {
    throw ConfigError(file.origin() +
                      ": [topology] fluid-model parameters must be > 0");
  }
  sc->duration_ms = work.get_double("duration_ms", sc->duration_ms);
  sc->step_us = work.get_double("step_us", sc->step_us);
  sc->sample_us = work.get_double("sample_us", sc->sample_us);
  if (sc->duration_ms <= 0 || sc->step_us <= 0 || sc->sample_us <= 0) {
    throw ConfigError(
        file.origin() +
        ": [workload] duration_ms, step_us and sample_us must be > 0");
  }
  sc->grid_w_bdp = work.get_double_list("grid_w_bdp", sc->grid_w_bdp);
  sc->grid_q_bdp = work.get_double_list("grid_q_bdp", sc->grid_q_bdp);
  if (sc->grid_w_bdp.empty() ||
      sc->grid_w_bdp.size() != sc->grid_q_bdp.size()) {
    throw ConfigError(file.origin() +
                      ": [workload] grid_w_bdp and grid_q_bdp must be "
                      "non-empty lists of equal length");
  }
  for (std::size_t i = 0; i < sc->grid_w_bdp.size(); ++i) {
    if (!std::isfinite(sc->grid_w_bdp[i]) || sc->grid_w_bdp[i] <= 0 ||
        !std::isfinite(sc->grid_q_bdp[i]) || sc->grid_q_bdp[i] < 0) {
      throw ConfigError(file.origin() +
                        ": [workload] grid entries need w > 0 and q >= 0");
    }
  }
  return sc;
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.add(
      {"fat_tree",
       "Fig. 6/7 FCT sweep: websearch fat-tree, tail slowdown per size "
       "bucket, one table per load",
       "preset (quick|paper), pods, tors_per_pod, aggs_per_pod, cores, "
       "servers_per_tor, host_gbps, fabric_gbps, buffer_bytes_per_gbps, "
       "dt_alpha",
       "loads, duration_ms, size_scale, expected_flows, incast, "
       "incast_requests_per_sec, incast_request_kb, incast_fan_in",
       load_fat_tree_kind});
  registry.add(
      {"incast",
       "Fig. 4 reaction to incast: long flow + N:1 burst on one downlink, "
       "goodput/queue time series per scheme",
       "preset (quick|paper) + fat-tree overrides (see fat_tree)",
       "query_kb, fan_in, long_flow_mb, long_companions, burst_at_us, "
       "horizon_ms, bin_us, expected_flows",
       load_incast_kind});
  registry.add(
      {"rdcn",
       "Fig. 8 reconfigurable-DCN case study: rack-to-rack series over the "
       "rotor schedule plus p99 ToR latency vs packet bandwidth",
       "preset (small|paper), n_tors, servers_per_tor, host_gbps, "
       "circuit_gbps, day_us, night_us",
       "packet_gbps, flow_mb, horizon_ms, bin_us, expected_flows",
       load_rdcn_kind});
  registry.add(
      {"dumbbell",
       "Fig. 5 fairness/stability: staggered flows over one bottleneck, "
       "per-flow goodput series, one table per scheme",
       "host_gbps, bottleneck_gbps, link_delay_us, dt_alpha, buffer_kb",
       "flow_mb, stagger_us, horizon_ms, bin_us, row_every",
       load_dumbbell_kind});
  registry.add(
      {"homa_oc",
       "Figs. 9-11 overcommitment sweep: message-transport fairness per "
       "level plus N:1 incast reaction summaries",
       "preset (quick|paper) + fat-tree overrides for the incast panel",
       "overcommit, fan_in, flow_mb, stagger_us, fairness_horizon_ms, "
       "fairness_bin_us, fairness_row_every, long_message_mb, burst_kb, "
       "burst_at_us, incast_horizon_ms, incast_bin_us",
       load_homa_oc_kind});
  registry.add(
      {"single_flow",
       "Fig. 2 analytic reaction curves: multiplicative decrease of the "
       "voltage/current/power laws on one bottleneck (no simulation)",
       "bandwidth_gbps, bdp_packets, packet_kb",
       "hold_queue_pkts, hold_rate_x, rate_max, queue_max_pkts, "
       "queue_step_pkts",
       load_single_flow_kind});
  registry.add(
      {"mixed_cc",
       "brownfield coexistence: per-host CC mixes sharing one dumbbell, "
       "swept over (mix, aqm, rtt, buffer) cells into fairness/share/FCT "
       "tables",
       "host_gbps, bottleneck_gbps, dt_alpha",
       "cc_mix, aqm, rtt_us, buffer_kb, senders, flow_mb, horizon_ms",
       load_mixed_cc_kind});
  registry.add(
      {"fluid_phase",
       "Fig. 3 fluid-model phase portraits: per-law trajectories from a "
       "grid of initial states plus the Theorem 1/2 stability summary "
       "(no simulation)",
       "bandwidth_gbps, base_rtt_us, gamma, update_interval_us, beta_frac",
       "duration_ms, step_us, sample_us, grid_w_bdp, grid_q_bdp",
       load_fluid_phase_kind});
}

RunnerConfig load_runner_config(const ConfigFile& file,
                                const ScenarioRegistry& registry,
                                const RunnerLoadOptions& options) {
  const ConfigFile::Section* exp_sec = file.find("experiment");
  if (exp_sec == nullptr) {
    throw ConfigError(file.origin() + ": missing [experiment] section");
  }
  SectionView exp(file, exp_sec);
  const std::string kind = exp.get_string("kind", "fat_tree");
  const ScenarioEntry* entry = registry.find(kind);
  if (entry == nullptr) {
    throw ConfigError(file.origin() + ": [experiment] kind = '" + kind +
                      "' is not one of " + registry.joined_names());
  }

  ScenarioContext ctx;
  ctx.slug_prefix = exp.get_string("slug", ctx.slug_prefix);
  const std::vector<std::string> scheme_names = exp.get_list("schemes");
  if (scheme_names.empty()) {
    throw ConfigError(file.origin() +
                      ": [experiment] needs a non-empty `schemes` list");
  }
  ctx.seed = static_cast<std::uint64_t>(exp.get_int("seed", 1));
  ctx.percentile = exp.get_double("percentile", ctx.percentile);
  const std::string queue = exp.get_string("sim_queue", "heap");
  if (queue == "heap") {
    ctx.sim_queue = sim::QueueKind::kBinaryHeap;
  } else if (queue == "calendar") {
    ctx.sim_queue = sim::QueueKind::kCalendar;
  } else {
    throw ConfigError(file.origin() + ": [experiment] sim_queue = '" + queue +
                      "' is not one of heap, calendar");
  }
  // Burst-granular event processing. Off is byte-identical to the
  // per-packet engine (pinned by the golden tests); on is pinned
  // table-identical for every shipped config.
  const std::string burst_knob = exp.get_string("sim_burst", "off");
  bool burst_on = false;
  if (burst_knob == "on") {
    burst_on = true;
  } else if (burst_knob != "off") {
    throw ConfigError(file.origin() + ": [experiment] sim_burst = '" +
                      burst_knob + "' is not one of on, off");
  }
  // Partitioned event engine. Every value is byte-identical to
  // sim_threads = 1 (pinned by the sharded golden tests); 1 runs the
  // exact sequential engine with no threads spawned.
  const std::int64_t threads_knob =
      exp.get_int("sim_threads", options.force_sim_threads > 0
                                     ? options.force_sim_threads
                                     : ctx.sim_threads);
  if (threads_knob < 1 || threads_knob > 64) {
    throw ConfigError(file.origin() +
                      ": [experiment] sim_threads must be in [1, 64]");
  }
  ctx.sim_threads = static_cast<int>(threads_knob);
  if (options.force_sim_threads > 0) {
    ctx.sim_threads = options.force_sim_threads;
  }
  exp.finish();

  ctx.telemetry = load_telemetry_config(file);
  if (options.force_telemetry) ctx.telemetry.enabled = true;

  ctx.burst = load_burst_config(file);
  ctx.burst.enabled = burst_on;
  if (options.force_burst != 0) ctx.burst.enabled = options.force_burst > 0;

  // Optional [aqm] section: the switch marking/drop policy. The
  // default ("red") keeps every pre-AQM-layer config byte-identical
  // (pinned by the golden tests).
  SectionView aqm(file, file.find("aqm"));
  ctx.aqm.kind = aqm.get_string("kind", ctx.aqm.kind);
  if (net::AqmRegistry::instance().find(ctx.aqm.kind) == nullptr) {
    throw ConfigError(file.origin() + ": [aqm] kind = '" + ctx.aqm.kind +
                      "' is not one of " +
                      net::AqmRegistry::instance().joined_names());
  }
  ctx.aqm.target_us = aqm.get_double("target_us", ctx.aqm.target_us);
  ctx.aqm.tupdate_us = aqm.get_double("tupdate_us", ctx.aqm.tupdate_us);
  ctx.aqm.alpha = aqm.get_double("alpha", ctx.aqm.alpha);
  ctx.aqm.beta = aqm.get_double("beta", ctx.aqm.beta);
  ctx.aqm.ecn_threshold =
      aqm.get_double("ecn_threshold", ctx.aqm.ecn_threshold);
  ctx.aqm.interval_us = aqm.get_double("interval_us", ctx.aqm.interval_us);
  if (ctx.aqm.target_us <= 0 || ctx.aqm.tupdate_us <= 0 ||
      ctx.aqm.alpha <= 0 || ctx.aqm.beta <= 0 || ctx.aqm.interval_us <= 0) {
    throw ConfigError(file.origin() +
                      ": [aqm] target_us, tupdate_us, alpha, beta and "
                      "interval_us must be > 0");
  }
  if (ctx.aqm.ecn_threshold < 0 || ctx.aqm.ecn_threshold > 1) {
    throw ConfigError(file.origin() +
                      ": [aqm] ecn_threshold must be in [0, 1]");
  }
  aqm.finish();

  for (const auto& name : scheme_names) {
    ctx.schemes.push_back(resolve_scheme(file, name));
  }

  SectionView topo(file, file.find("topology"));
  SectionView work(file, file.find("workload"));
  RunnerConfig rc;
  rc.kind = kind;
  rc.scenario = entry->load(file, topo, work, ctx);
  topo.finish();
  work.finish();

  // Reject sections the loader never looked at (typos, or [cc.X] for a
  // scheme the `schemes` list does not run).
  std::set<std::string> known = {"experiment", "topology", "workload",
                                 "telemetry", "aqm", "burst"};
  for (const auto& name : scheme_names) known.insert("cc." + name);
  for (const auto& sec : file.sections()) {
    if (known.count(sec.name) == 0) {
      throw ConfigError(file.origin() + ":" + std::to_string(sec.line) +
                        ": unused section [" + sec.name + "]");
    }
  }
  return rc;
}

std::vector<ResultTable> run_config(const RunnerConfig& cfg,
                                    const SweepRunner& runner) {
  if (!cfg.scenario) {
    throw std::logic_error("run_config: RunnerConfig carries no scenario");
  }
  return cfg.scenario->run(runner);
}

// ---- built-in kind execution --------------------------------------

std::vector<ResultTable> FatTreeKindConfig::run(
    const SweepRunner& runner) const {
  std::vector<ResultTable> tables;
  for (const double load : loads) {
    SweepSpec spec =
        fct_sweep_spec(fat_tree, load, percentile, schemes, slug_prefix);
    if (!fat_tree.telemetry.enabled) {
      tables.push_back(runner.run(spec));
      continue;
    }
    // Collect per-point flight recordings by declaration index (the
    // observe hook runs on worker threads; slots don't alias).
    std::vector<TelemetrySeries> flights(spec.points.size());
    spec.observe = [&flights](std::size_t i, const FatTreeExperiment&,
                              const ExperimentResult& r) {
      flights[i] = r.flight;
    };
    tables.push_back(runner.run(spec));
    const std::string sweep_slug = tables.back().slug;
    for (std::size_t i = 0; i < flights.size(); ++i) {
      if (flights[i].empty()) continue;
      tables.push_back(flight_table(
          flights[i], sweep_slug + "_flight_" + schemes[i].display(),
          schemes[i].display() +
              " flight recorder (first ToR uplink + tapped flow)"));
    }
  }
  return tables;
}

std::vector<ResultTable> IncastKindConfig::run(
    const SweepRunner& runner) const {
  std::vector<ResultTable> tables;
  for (std::size_t i = 0; i < query_kb.size(); ++i) {
    IncastScenario point = incast;
    point.query_bytes = static_cast<std::int64_t>(query_kb[i] * 1e3);
    point.fan_in =
        static_cast<int>(fan_in[fan_in.size() == 1 ? 0 : i]);
    std::vector<ResultTable> flights;
    tables.push_back(
        incast_figure_table(runner, point, schemes, slug_prefix, &flights));
    for (auto& f : flights) tables.push_back(std::move(f));
  }
  return tables;
}

std::vector<ResultTable> RdcnKindConfig::run(const SweepRunner& runner) const {
  std::vector<ResultTable> tables;
  RdcnScenario series = rdcn;
  series.topo.packet_bw = sim::Bandwidth::gbps(packet_gbps.front());
  char title[128];
  std::snprintf(title, sizeof(title),
                "rack0 -> rack1 throughput / VOQ time series "
                "(%.0fG packet plane, %.0fG circuit)",
                packet_gbps.front(), series.topo.circuit_bw.gbps_value());
  std::vector<ResultTable> flights;
  tables.push_back(rdcn_timeseries_table(runner, series, schemes,
                                         slug_prefix + "_timeseries", title,
                                         &flights));
  for (auto& f : flights) tables.push_back(std::move(f));
  std::snprintf(title, sizeof(title),
                "p99 ToR queuing latency (us) vs packet bandwidth");
  tables.push_back(rdcn_latency_table(runner, rdcn, schemes, packet_gbps,
                                      slug_prefix + "_p99", title));
  return tables;
}

std::vector<ResultTable> DumbbellKindConfig::run(
    const SweepRunner& runner) const {
  return dumbbell_fairness_tables(runner, dumbbell, schemes, slug_prefix);
}

std::vector<ResultTable> HomaOcKindConfig::run(
    const SweepRunner& runner) const {
  return homa_oc_tables(runner, homa_oc, schemes, slug_prefix);
}

std::vector<ResultTable> MixedCcKindConfig::run(
    const SweepRunner& runner) const {
  return mixed_cc_tables(runner, mixed, slug_prefix);
}

std::vector<ResultTable> FluidPhaseKindConfig::run(
    const SweepRunner&) const {
  analysis::FluidParams p;
  p.bandwidth_Bps = bandwidth_gbps * 1e9 / 8.0;
  p.base_rtt_s = base_rtt_us * 1e-6;
  p.gamma = gamma;
  p.update_interval_s = update_interval_us * 1e-6;
  p.beta_bytes = beta_frac * p.bdp_bytes();
  const double bdp = p.bdp_bytes();

  // Fig. 3's three panels: (a) voltage dips below the BDP line, (b)
  // current settles at initial-state-dependent queues, (c) power is
  // unique and undershoot-free.
  const struct {
    analysis::LawType law;
    const char* slug;
  } laws[] = {{analysis::LawType::kQueueLength, "voltage"},
              {analysis::LawType::kRttGradient, "current"},
              {analysis::LawType::kPower, "power"}};

  std::vector<ResultTable> tables;
  ResultTable summary;
  summary.slug = slug_prefix + "_summary";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Fig. 3 summary: final-queue spread and worst inflight "
                "(b=%.0fG tau=%.0fus BDP=%.0f KB beta=%.1f KB)",
                bandwidth_gbps, base_rtt_us, bdp / 1e3,
                p.beta_bytes / 1e3);
  summary.title = buf;
  summary.key_columns = {"law"};
  summary.value_columns = {"spreadBDP", "minInflBDP", "verdict", "eqW_BDP",
                           "eqQ_BDP"};

  for (const auto& lr : laws) {
    const analysis::FluidModel model(lr.law, p);
    ResultTable t;
    std::snprintf(buf, sizeof(buf),
                  "Fig. 3 phase portrait: %s, %zu initial states",
                  std::string(analysis::law_name(lr.law)).c_str(),
                  grid_w_bdp.size());
    t.title = buf;
    t.slug = slug_prefix + "_" + lr.slug;
    t.key_columns = {"initW_BDP", "initQ_BDP"};
    t.value_columns = {"finalW_BDP", "finalQ_BDP", "minInflBDP"};
    double min_final_q = 1e300;
    double max_final_q = -1e300;
    double worst_undershoot = 1e300;
    for (std::size_t i = 0; i < grid_w_bdp.size(); ++i) {
      const analysis::FluidState init{grid_w_bdp[i] * bdp,
                                      grid_q_bdp[i] * bdp};
      const auto traj =
          model.trajectory(init, duration_ms * 1e-3, step_us * 1e-6,
                           sample_us * 1e-6);
      // Undershoot only counts once the system is past the initial
      // transient toward the line.
      double min_inflight = 1e300;
      for (const auto& pt : traj) {
        if (pt.t > 5 * p.base_rtt_s) {
          min_inflight = std::min(min_inflight, pt.inflight_bytes);
        }
      }
      const analysis::FluidState fin = traj.back().state;
      min_final_q = std::min(min_final_q, fin.q_bytes);
      max_final_q = std::max(max_final_q, fin.q_bytes);
      worst_undershoot = std::min(worst_undershoot, min_inflight);
      ResultTable::Row row;
      row.keys = {Cell(grid_w_bdp[i], 2), Cell(grid_q_bdp[i], 2)};
      row.values = {Cell(fin.w_bytes / bdp, 3), Cell(fin.q_bytes / bdp, 3),
                    Cell(min_inflight / bdp, 3)};
      t.rows.push_back(std::move(row));
    }
    ResultTable::Row srow;
    srow.keys = {Cell(std::string(lr.slug))};
    srow.values = {
        Cell((max_final_q - min_final_q) / bdp, 3),
        Cell(worst_undershoot / bdp, 3),
        Cell(std::string(worst_undershoot < 0.97 * bdp ? "loss"
                                                       : "no loss"))};
    if (model.has_unique_equilibrium()) {
      const analysis::FluidState eq = model.analytic_equilibrium();
      srow.values.push_back(Cell(eq.w_bytes / bdp, 3));
      srow.values.push_back(Cell(eq.q_bytes / bdp, 3));
    } else {
      // No unique equilibrium (Appendix C) — the current-law defect.
      srow.values.push_back(Cell());
      srow.values.push_back(Cell());
    }
    summary.rows.push_back(std::move(srow));
    tables.push_back(std::move(t));
  }
  tables.push_back(std::move(summary));

  {
    ResultTable t;
    t.title =
        "Theorems 1-2: PowerTCP linearization eigenvalues (negative -> "
        "stable) and convergence time constant";
    t.slug = slug_prefix + "_stability";
    t.key_columns = {"quantity"};
    t.value_columns = {"value"};
    const auto eig = analysis::power_tcp_eigenvalues(p);
    const auto add = [&t](const char* name, Cell value) {
      ResultTable::Row row;
      row.keys = {Cell(std::string(name))};
      row.values = {std::move(value)};
      t.rows.push_back(std::move(row));
    };
    add("T1 eigenvalue 1 (1/s)", Cell(eig[0], 0));
    add("T1 eigenvalue 2 (1/s)", Cell(eig[1], 0));
    add("T2 dt/gamma (us)", Cell(p.update_interval_s / p.gamma * 1e6, 2));
    tables.push_back(std::move(t));
  }
  return tables;
}

std::vector<ResultTable> SingleFlowKindConfig::run(
    const SweepRunner&) const {
  analysis::FluidParams p;
  p.bandwidth_Bps = bandwidth_gbps * 1e9 / 8.0;
  const double pkt = packet_kb * 1e3;
  p.base_rtt_s = bdp_packets * pkt / p.bandwidth_Bps;
  // One cell triple per bottleneck state (q, q̇): the decrease factor
  // of each law, µ fixed at line rate as in Fig. 2.
  const auto laws = [&](double q_bytes, double q_dot_Bps) {
    return std::vector<Cell>{
        Cell(analysis::feedback_ratio(analysis::LawType::kQueueLength, p,
                                      q_bytes, q_dot_Bps, p.bandwidth_Bps),
             2),
        Cell(analysis::feedback_ratio(analysis::LawType::kRttGradient, p,
                                      q_bytes, q_dot_Bps, p.bandwidth_Bps),
             2),
        Cell(analysis::feedback_ratio(analysis::LawType::kPower, p, q_bytes,
                                      q_dot_Bps, p.bandwidth_Bps),
             2)};
  };

  std::vector<ResultTable> tables;
  char buf[128];
  {
    ResultTable t;
    std::snprintf(buf, sizeof(buf),
                  "Fig. 2a: multiplicative decrease vs queue buildup rate "
                  "(queue fixed at %.0f pkts)",
                  hold_queue_pkts);
    t.title = buf;
    t.slug = slug_prefix + "_vs_rate";
    t.key_columns = {"rate (x bw)"};
    t.value_columns = {"voltage-CC", "gradient-CC", "power-CC"};
    for (double r = 0.0; r <= rate_max_x + 0.01; r += 1.0) {
      ResultTable::Row row;
      row.keys = {Cell(r, 0)};
      row.values = laws(hold_queue_pkts * pkt, r * p.bandwidth_Bps);
      t.rows.push_back(std::move(row));
    }
    tables.push_back(std::move(t));
  }
  {
    ResultTable t;
    std::snprintf(buf, sizeof(buf),
                  "Fig. 2b: multiplicative decrease vs queue length "
                  "(buildup rate fixed at %.0fx bw)",
                  hold_rate_x);
    t.title = buf;
    t.slug = slug_prefix + "_vs_queue";
    t.key_columns = {"queue (pkts)"};
    t.value_columns = {"voltage-CC", "gradient-CC", "power-CC"};
    for (double q = 0.0; q <= queue_max_pkts + 0.01; q += queue_step_pkts) {
      ResultTable::Row row;
      row.keys = {Cell(q, 0)};
      row.values = laws(q * pkt, hold_rate_x * p.bandwidth_Bps);
      t.rows.push_back(std::move(row));
    }
    tables.push_back(std::move(t));
  }
  {
    // Fig. 2c: voltage cannot tell case-2 from case-3, current cannot
    // tell case-1 from case-3; power separates all three.
    ResultTable t;
    t.title = "Fig. 2c: three scenarios (voltage 3.24/2.12/2.12, current "
              "9/1/9; only power separates all three)";
    t.slug = slug_prefix + "_three_cases";
    t.key_columns = {"scenario"};
    t.value_columns = {"voltage", "current", "power"};
    const struct {
      const char* desc;
      double q_pkts;
      double rate_x;  // queue buildup in multiples of bandwidth
    } cases[] = {
        {"case-1: q=50 pkts, increasing at 8x", 50, 8},
        {"case-2: q=25 pkts, draining at max rate", 25, 0},
        {"case-3: q=25 pkts, increasing at 8x", 25, 8},
    };
    for (const auto& c : cases) {
      ResultTable::Row row;
      row.keys = {Cell(std::string(c.desc))};
      row.values = laws(c.q_pkts * pkt, c.rate_x * p.bandwidth_Bps);
      t.rows.push_back(std::move(row));
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

// ---- shared table builders ----------------------------------------

SweepSpec fct_sweep_spec(const FatTreeExperiment& base, double load,
                         double percentile,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug_prefix) {
  SweepSpec sw;
  char title[128];
  std::snprintf(title, sizeof(title),
                "%.0f%% ToR-uplink load, websearch (x%.2f sizes), "
                "p%.1f slowdown per size bucket",
                load * 100, base.size_scale, percentile);
  sw.title = title;
  char slug[64];
  std::snprintf(slug, sizeof(slug), "%s_load%.0f", slug_prefix.c_str(),
                load * 100);
  sw.slug = slug;
  sw.key_columns = {"algorithm"};
  for (const auto& b : stats::paper_size_buckets()) {
    sw.value_columns.push_back(b.label);
  }
  sw.value_columns.insert(sw.value_columns.end(),
                          {"allP50", "drops", "flows", "done%"});
  for (const auto& scheme : schemes) {
    SweepPoint p;
    p.keys = {Cell(scheme.display())};
    p.cfg = base;
    p.cfg.cc = scheme.scheme;
    p.cfg.cc_params = scheme.params;
    p.cfg.uplink_load = load;
    sw.points.push_back(std::move(p));
  }
  const double size_scale = base.size_scale;
  sw.metrics = [size_scale, percentile](const FatTreeExperiment&,
                                        const ExperimentResult& r) {
    std::vector<Cell> row;
    // Buckets are defined on unscaled sizes; rescale the edges.
    std::int64_t lo = 0;
    for (const auto& b : stats::paper_size_buckets()) {
      const auto hi = static_cast<std::int64_t>(
          static_cast<double>(b.upper_bytes) * size_scale);
      const auto s = r.fct.slowdowns_in_range(lo, hi);
      row.push_back(s.count() >= 5 ? Cell(s.percentile(percentile), 2)
                                   : Cell());
      lo = hi;
    }
    const auto all = r.fct.all_slowdowns();
    row.push_back(all.empty() ? Cell() : Cell(all.percentile(50), 2));
    row.push_back(Cell::integer(static_cast<std::int64_t>(r.drops)));
    row.push_back(Cell::integer(static_cast<std::int64_t>(r.flows_started)));
    row.push_back(Cell(r.completion_rate() * 100, 1));
    return row;
  };
  return sw;
}

ResultTable incast_figure_table(const SweepRunner& runner,
                                const IncastScenario& cfg,
                                const std::vector<SchemeRun>& schemes,
                                const std::string& slug_prefix,
                                std::vector<ResultTable>* flight_out) {
  char title[96];
  std::string slug;
  const auto burst_us =
      static_cast<long long>(cfg.burst_at / sim::kPsPerUs);
  if (cfg.query_bytes > 0) {
    std::snprintf(title, sizeof(title),
                  "%d long flows + %d:1 query incast (%lld KB total) "
                  "at t=%lldus",
                  cfg.long_companions, cfg.fan_in,
                  static_cast<long long>(cfg.query_bytes / 1000), burst_us);
    // The query size keeps slugs unique when a config sweeps several
    // query points (CSV rows and the regression gate key on the slug).
    slug = slug_prefix + "_query" +
           std::to_string(cfg.query_bytes / 1000) + "kb";
  } else {
    std::snprintf(title, sizeof(title),
                  "%d:1 incast of long flows at t=%lldus",
                  cfg.long_companions, burst_us);
    slug = slug_prefix + "_" + std::to_string(cfg.long_companions) + "to1";
  }
  return incast_table(runner, cfg, schemes, slug, title, flight_out);
}

// ---- figure definitions shared by benches and configs -------------

RunnerConfig fig5_runner_config() {
  auto sc = std::make_shared<DumbbellKindConfig>();
  sc->slug_prefix = "fig5";
  for (const char* name : {"powertcp", "homa", "theta-powertcp", "timely"}) {
    sc->schemes.push_back(SchemeRun{"", name, {}});
  }
  // DumbbellScenario defaults are exactly the Fig. 5 quick shape.
  RunnerConfig rc;
  rc.kind = "dumbbell";
  rc.scenario = std::move(sc);
  return rc;
}

RunnerConfig fig6_runner_config(bool fast, bool full) {
  auto sc = std::make_shared<FatTreeKindConfig>();
  sc->slug_prefix = "fig6";
  sc->loads = {0.2, 0.6};
  sc->percentile = 99.0;
  sc->fat_tree.seed = 42;
  sc->fat_tree.duration = sim::milliseconds(20);
  sc->fat_tree.size_scale = 0.1;
  if (fast) sc->fat_tree.duration = sim::milliseconds(8);
  if (full) {
    sc->fat_tree.topo = topo::FatTreeConfig();  // paper scale
    sc->fat_tree.duration = sim::milliseconds(100);
    sc->fat_tree.size_scale = 1.0;
    sc->percentile = 99.9;
  }
  for (const char* name :
       {"powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa"}) {
    sc->schemes.push_back(SchemeRun{"", name, {}});
  }
  RunnerConfig rc;
  rc.kind = "fat_tree";
  rc.scenario = std::move(sc);
  return rc;
}

RunnerConfig fig2_runner_config() {
  auto sc = std::make_shared<SingleFlowKindConfig>();
  sc->slug_prefix = "fig2";
  // SingleFlowKindConfig defaults are exactly the Fig. 2 setting.
  RunnerConfig rc;
  rc.kind = "single_flow";
  rc.scenario = std::move(sc);
  return rc;
}

RunnerConfig fig9_runner_config() {
  auto sc = std::make_shared<HomaOcKindConfig>();
  sc->slug_prefix = "fig9";
  sc->schemes.push_back(SchemeRun{"", "homa", {}});
  // HomaOcScenario defaults are exactly the Figs. 9-11 quick shape.
  RunnerConfig rc;
  rc.kind = "homa_oc";
  rc.scenario = std::move(sc);
  return rc;
}

}  // namespace powertcp::harness
