#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"
#include "sim/event_queue.hpp"

/// \file scenario_registry.hpp
/// The scenario registry: one entry per experiment *shape* (topology +
/// workload + table emission), mirroring how cc::Registry owns one
/// entry per congestion control scheme. A `powertcp_run` config picks
/// a shape with `[experiment] kind = <name>`; the entry's loader owns
/// the kind-specific `[topology]`/`[workload]` schema (parsed through
/// the same SectionView machinery that rejects unknown keys with
/// file:line context) and returns a runnable ScenarioConfig. The
/// runner itself has no per-kind switch: adding a paper shape is a
/// registration, not a harness fork.
///
/// Built-in kinds (registered by the constructor, in this order):
///   fat_tree  — Fig. 6/7 FCT sweeps over the websearch fat-tree
///   incast    — Fig. 4 long-flow + N:1 incast time series
///   rdcn      — Fig. 8 reconfigurable-DCN case study
///   dumbbell  — Fig. 5 staggered-flow fairness/stability series
///   homa_oc   — Figs. 9-11 Homa overcommitment sweep
///   single_flow — Fig. 2 analytic reaction curves (no simulation)
///   mixed_cc  — brownfield coexistence: per-host CC mixes x AQM grid
///   fluid_phase — Fig. 3 fluid-model phase portraits (no simulation)

namespace powertcp::harness {

/// The kind-independent `[experiment]` context handed to every
/// scenario loader: resolved schemes, slug prefix, seed, percentile,
/// and the event-queue backend.
struct ScenarioContext {
  std::string slug_prefix = "run";
  std::vector<SchemeRun> schemes;
  std::uint64_t seed = 1;
  double percentile = 99.0;
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parsed `[experiment] sim_threads` (possibly overridden by the
  /// CLI): event-engine shards per simulation point. 1 is the exact
  /// sequential engine; N > 1 partitions the topology with
  /// conservative lookahead, byte-identical by construction.
  int sim_threads = 1;
  /// Parsed `[telemetry]` section (possibly forced on by the CLI);
  /// loaders copy it into their kind's scenario config.
  TelemetryConfig telemetry;
  /// Parsed `[experiment] sim_burst` + `[burst]` section (possibly
  /// forced by the CLI); loaders copy it into their kind's scenario
  /// config. Off is byte-identical to the per-packet engine.
  BurstConfig burst;
  /// Parsed `[aqm]` section (kind validated against net::AqmRegistry).
  /// Loaders with switches copy it into their topology config; the
  /// default ("red" + the scheme's ECN profile) is byte-identical to
  /// the pre-AQM-layer behavior.
  net::AqmSpec aqm;
};

/// A parsed, runnable experiment of one scenario kind. Implementations
/// are plain value holders (the concrete types in runner.hpp are also
/// built programmatically by the figure benches); run() executes every
/// simulation point on the runner's pool and returns the tables in
/// declaration order — output is a pure function of the config,
/// byte-identical for every thread count.
class ScenarioConfig {
 public:
  virtual ~ScenarioConfig() = default;
  virtual std::vector<ResultTable> run(const SweepRunner& runner) const = 0;
};

struct ScenarioEntry {
  std::string name;     ///< `[experiment] kind = <name>`
  std::string summary;  ///< one line for `powertcp_run --kinds`
  /// Key references rendered by `powertcp_run --kinds` (documentation
  /// only; the loader is authoritative).
  std::string topology_keys;
  std::string workload_keys;
  /// Parses the kind-specific `[topology]`/`[workload]` sections. The
  /// SectionViews are finished (unknown-key check) by the caller, so a
  /// loader only reads the keys it owns. Throws ConfigError on invalid
  /// values, with file:line context from the views.
  using Loader = std::function<std::unique_ptr<ScenarioConfig>(
      const ConfigFile& file, SectionView& topo, SectionView& work,
      const ScenarioContext& ctx)>;
  Loader load;
};

class ScenarioRegistry {
 public:
  /// A fresh registry pre-populated with the built-in kinds. Tests
  /// construct local instances to exercise registration; production
  /// code uses instance().
  ScenarioRegistry();

  /// The process-wide table (thread-safe magic static, immutable).
  static const ScenarioRegistry& instance();

  /// Registers a kind. Throws std::logic_error on an empty name, a
  /// missing loader, or a duplicate registration (naming the entry).
  void add(ScenarioEntry entry);

  /// nullptr when `name` is not registered.
  const ScenarioEntry* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the known kinds.
  const ScenarioEntry& at(const std::string& name) const;

  /// Registration order.
  const std::vector<ScenarioEntry>& entries() const { return entries_; }
  std::vector<std::string> names() const;
  /// "fat_tree, incast, ..." — for error messages and --kinds.
  std::string joined_names() const;

 private:
  std::vector<ScenarioEntry> entries_;
};

/// Registers the built-in kinds; defined in runner.cpp beside the
/// per-kind loaders so the registry core stays schema-free.
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace powertcp::harness
