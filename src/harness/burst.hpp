#pragma once

#include <cstdint>

#include "harness/config.hpp"
#include "sim/time.hpp"

/// \file burst.hpp
/// Burst-granular event processing for the scenario harness.
///
/// `[experiment] sim_burst = on|off` (or `powertcp_run --sim-burst=`)
/// switches the engine-level coalescing on: the Simulator's burst
/// budget rises above 1 so host NIC ports drain whole transmission
/// trains per event (net::EgressPort burst drain) and same-key events
/// pop-merge (sim::Simulator::schedule_burst_at). These mechanisms are
/// exactness-preserving — deliveries land at the same picosecond they
/// would per-packet — so every shipped config's tables are pinned
/// identical with the knob on and byte-identical with it off.
///
/// The optional `[burst]` section additionally tunes the budget and
/// exposes two *behavior-changing* batching knobs that apply whenever
/// explicitly set (independent of sim_burst): `ack_agg_us` (receiver
/// ack aggregation window, host::Host) and `pacing_quantum` (packets
/// per pacing-timer tick, host::FlowSenderConfig). Their defaults are
/// the legacy per-packet values. See docs/performance.md.

namespace powertcp::sim {
class Simulator;
class ShardedSimulator;
}
namespace powertcp::net {
class Network;
}

namespace powertcp::harness {

/// Parsed `[experiment] sim_burst` + `[burst]` section; defaults are
/// all off/legacy.
struct BurstConfig {
  /// `sim_burst = on`: engage the exactness-preserving coalescing
  /// (engine burst budget + NIC burst drain).
  bool enabled = false;
  /// Max logical events per burst callback / packets per NIC drain
  /// train. Only applied while `enabled`.
  std::uint32_t budget = 64;
  /// Receiver-side ack aggregation window (0 = ack every packet).
  /// Behavior-changing: applies whenever nonzero, pinned by its own
  /// tests rather than the byte-identity goldens.
  sim::TimePs ack_agg = 0;
  /// Packets released per pacing-timer wakeup (1 = legacy).
  /// Behavior-changing, like ack_agg.
  std::int32_t pacing_quantum = 1;
};

/// Parses the optional `[burst]` section (absent = all defaults; the
/// `enabled` flag comes from `[experiment] sim_burst`, not from here).
/// Throws ConfigError on out-of-range values or unknown keys, with
/// file:line context.
BurstConfig load_burst_config(const ConfigFile& file);

/// Applies the config to a freshly built simulation point: sets the
/// Simulator's burst budget (when enabled) and pushes ack_agg /
/// pacing_quantum to every host in the network (when non-default).
/// Call after the topology exists and before flows start.
void apply_burst(const BurstConfig& cfg, sim::Simulator& sim,
                 net::Network& network);

/// Partitioned-engine variant: the burst budget applies to every shard
/// (each drains its own queue); the host knobs are set once as above.
void apply_burst(const BurstConfig& cfg, sim::ShardedSimulator& engine,
                 net::Network& network);

}  // namespace powertcp::harness
