#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

/// \file bench_opts.hpp
/// Shared CLI for the sweep-shaped figure benches: every bench accepts
///   --threads=N    run sweep points on N pool threads (default 1)
///   --csv=FILE     append long-format CSV (table,point,metric,value);
///                  the header is written only when FILE is new/empty,
///                  so several benches can accumulate into one file
///   --json=FILE    write (overwrite) a structured JSON document
///   --fast / --full  the pre-existing scale presets (bench-interpreted)
/// plus a BenchReporter that prints each finished table as text and
/// flushes the machine-readable files at the end. Output is a pure
/// function of (flags, seed): tables are assembled in declaration order
/// no matter how many threads execute the sweep.

namespace powertcp::harness {

struct BenchOptions {
  int threads = 1;
  std::string csv_path;
  std::string json_path;
  bool fast = false;
  bool full = false;

  /// Parses argv. Unknown flags print usage to stderr and set `ok`
  /// false (benches exit 2). `--help` sets `help` (benches exit 0).
  static BenchOptions parse(int argc, char** argv);
  bool ok = true;
  bool help = false;

  static std::string usage(const std::string& bench_name);
};

/// Collects ResultTables from one bench run: prints each table as text
/// on add(), and on finish() writes the CSV/JSON files requested on the
/// command line.
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, const BenchOptions& opts);

  SweepRunner& runner() { return runner_; }
  const BenchOptions& options() const { return opts_; }

  /// Prints the table (stdout) and retains it for the file emitters.
  void add(ResultTable table);

  /// Opts the JSON document into a top-level "shard_fallbacks" field
  /// (the number of simulation points that fell back to the sequential
  /// engine — harness::shard_fallback_count()). Call before finish();
  /// reporters that never call this emit the pre-existing document.
  void set_shard_fallbacks(std::uint64_t count) {
    shard_fallbacks_ = count;
    have_shard_fallbacks_ = true;
  }

  /// Writes --csv/--json outputs if requested. Returns 0 on success,
  /// 1 if a file could not be written (after printing to stderr).
  int finish();

 private:
  std::string bench_name_;
  BenchOptions opts_;
  SweepRunner runner_;
  std::vector<ResultTable> tables_;
  std::uint64_t shard_fallbacks_ = 0;
  bool have_shard_fallbacks_ = false;
};

}  // namespace powertcp::harness
