#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "sim/flight_recorder.hpp"
#include "sim/time.hpp"

/// \file telemetry.hpp
/// Per-run flight-recorder telemetry for the scenario harness.
///
/// A `[telemetry]` config section (or `powertcp_run --telemetry`)
/// attaches one FlightTap to every simulation point: a
/// sim::FlightRecorder sampling the scenario's foreground bottleneck
/// port and foreground flow — queue depth, normalized power, cwnd,
/// pacing rate, and cumulative ECN marks — on a bounded buffer that
/// 2:1-downsamples as the run outgrows it. The resulting
/// TelemetrySeries renders as one extra `<slug>_flight*` ResultTable
/// per point through the established tidy-CSV/JSON writers, with a
/// `time` key column like every other time-series table.
///
/// Telemetry is OFF by default, and the off path is byte-identical to
/// a build without it (pinned by golden tests); the on path adds zero
/// heap allocations per sample to the steady-state packet path
/// (pinned by the allocation-counting tests).
///
/// This header is deliberately light (no sweep.hpp) so experiment.hpp
/// and scenarios.hpp can embed the config/series types; the
/// ResultTable builder `flight_table` is declared in scenarios.hpp.

namespace powertcp::net {
class EgressPort;
}
namespace powertcp::host {
class Host;
}

namespace powertcp::harness {

/// Parsed `[telemetry]` section; defaults are all off/neutral.
struct TelemetryConfig {
  bool enabled = false;
  /// Stored samples per channel before 2:1 downsampling kicks in.
  std::int64_t capacity = 512;
  /// Base sampling period (the effective period doubles on each wrap).
  sim::TimePs sample_every = sim::microseconds(10);
  /// Foreground flow for the cwnd/pacing channels, where the kind
  /// supports choosing one (dumbbell: flow i is sender i-1; rdcn:
  /// flow i is rack-0 server i-1; fat_tree: the i-th planned arrival).
  /// The incast kinds always tap their long foreground flow.
  std::int64_t flow = 1;
};

/// Parses the optional `[telemetry]` section (absent = all defaults,
/// i.e. disabled). Throws ConfigError on out-of-range values or
/// unknown keys, with file:line context.
TelemetryConfig load_telemetry_config(const ConfigFile& file);

/// One finalized flight recording, copied out of a simulation point.
/// Channel-major values share the time column.
struct TelemetrySeries {
  std::vector<sim::TimePs> time;
  std::vector<std::string> channels;
  std::vector<int> precision;  ///< table precision per channel
  std::vector<std::vector<double>> values;  ///< [channel][row]
  bool empty() const { return time.empty(); }
};

/// Wires the standard five channels to a scenario's foreground port
/// and (optionally) flow, and arms the recorder. Construct after the
/// topology and flows are set up, before Simulator::run; keep it
/// alive for the whole run (probes capture `this` and the port).
///
///   qKB       port backlog (KB)
///   power     normalized power at the port: λ·ν / (b²·τ), with
///             λ = Δq/Δt + Δtx/Δt and ν = q + b·τ between
///             consecutive ticks (1.0 = equilibrium, §3.1 semantics)
///   cwndKB    the tapped flow's window (0 when absent/finished or
///             for message transports, which have no sender window)
///   paceGbps  the tapped flow's pacing rate
///   ecn       cumulative ECN marks at the port
class FlightTap {
 public:
  FlightTap(const TelemetryConfig& cfg, sim::Simulator& sim,
            net::EgressPort& port, host::Host* flow_host,
            std::int64_t flow, sim::TimePs tau, sim::TimePs until);

  FlightTap(const FlightTap&) = delete;
  FlightTap& operator=(const FlightTap&) = delete;

  /// Finalizes the recording and copies it out (callable repeatedly).
  TelemetrySeries series();

 private:
  double power_probe();

  sim::Simulator& sim_;
  net::EgressPort& port_;
  host::Host* flow_host_;
  std::int64_t flow_;
  double bandwidth_Bps_;  ///< port line rate in bytes/sec
  double tau_s_;          ///< base RTT in seconds

  // Previous-tick state for the finite-difference power probe.
  bool have_prev_ = false;
  sim::TimePs prev_t_ = 0;
  std::int64_t prev_q_ = 0;
  std::int64_t prev_tx_ = 0;

  sim::FlightRecorder recorder_;
};

}  // namespace powertcp::harness
