#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

/// \file config.hpp
/// A small INI/TOML-subset config format for experiment definitions:
///
///   # comment (also ';'); inline '#' comments allowed after values
///   [section]           # or dotted names like [cc.powertcp]
///   key = value         # bare or "quoted" strings, numbers, booleans
///   list = a, b, c      # or TOML-style [a, b, c]
///
/// ConfigFile is the parsed syntax tree; SectionView layers typed
/// getters and unknown-key rejection on one section (every key a
/// harness does not consume is an error, so typos fail loudly instead
/// of silently running the default).

namespace powertcp::harness {

/// Parse/validation failure, prefixed "origin:line: " where known.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ConfigFile {
 public:
  struct Entry {
    std::string key;
    std::string value;
    int line = 0;
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
    int line = 0;

    /// nullptr when `key` is absent.
    const Entry* find(const std::string& key) const;
  };

  /// Throws ConfigError on I/O failure or syntax errors (duplicate
  /// sections/keys included).
  static ConfigFile parse_file(const std::string& path);
  static ConfigFile parse(const std::string& text,
                          const std::string& origin = "<config>");

  const std::string& origin() const { return origin_; }
  const std::vector<Section>& sections() const { return sections_; }
  /// nullptr when the section is absent.
  const Section* find(const std::string& name) const;
  /// Sections whose name starts with `prefix` ("cc."), declaration
  /// order.
  std::vector<const Section*> with_prefix(const std::string& prefix) const;

 private:
  std::string origin_;
  std::vector<Section> sections_;
};

/// Typed, consumption-tracked reads from one section. Call finish()
/// after the last get: any key never consumed throws ConfigError
/// naming it — the config-file analogue of cc::ParamReader.
class SectionView {
 public:
  /// `section` may be nullptr (a legitimately absent section): every
  /// getter then returns its fallback and finish() is a no-op.
  SectionView(const ConfigFile& file, const ConfigFile::Section* section);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  std::int64_t get_int(const std::string& key, std::int64_t fallback);
  bool get_bool(const std::string& key, bool fallback);
  /// Comma-separated (or bracketed) list of strings; empty fallback
  /// stays empty.
  std::vector<std::string> get_list(const std::string& key,
                                    std::vector<std::string> fallback = {});
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback = {});

  /// Throws ConfigError on the first key read by none of the getters.
  void finish();

 private:
  const ConfigFile::Entry* take(const std::string& key);
  [[noreturn]] void fail(const ConfigFile::Entry& e, const char* want) const;

  const ConfigFile& file_;
  const ConfigFile::Section* section_;
  std::set<std::string> consumed_;
};

/// Splits a raw list value ("a, b" or "[a, b]") into trimmed elements.
std::vector<std::string> split_config_list(const std::string& value);

}  // namespace powertcp::harness
