#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

/// \file sweep.hpp
/// Parallel sweep execution and machine-readable result tables.
///
/// The paper's headline figures (6-7) are sweeps over independent
/// fat-tree simulations: every point owns a private Simulator/Network,
/// so points are embarrassingly parallel. SweepRunner executes a
/// declared list of points on a thread pool and collects their metric
/// rows *by declaration index*, so the resulting table is byte-identical
/// regardless of thread count or completion order. ResultTable renders
/// as an aligned text table, long-format CSV rows, or JSON.
///
/// Thread-safety contract for jobs run on the pool: a job — including a
/// SweepSpec::metrics callback, which runs on a worker thread — must
/// only touch its own point's config and result. The library holds no
/// mutable global state (the only function-local statics —
/// paper_size_buckets(), cc::Registry::instance() and the per-scheme
/// param-spec tables, sender_cc_names() — are const and initialised
/// thread-safely), but stats::Samples is NOT shareable across points:
/// percentile()/summary() mutate its lazy sort cache, so a Samples
/// read by two workers concurrently would be a data race. The tsan
/// CMake preset runs these pool paths under ThreadSanitizer in CI.

namespace powertcp::harness {

/// One table cell: a fixed-precision number, a text label, or empty.
/// Empty cells render as "-" in text, an empty field in CSV, and null in
/// JSON; NaN numbers are treated as empty.
class Cell {
 public:
  Cell() = default;  ///< empty
  Cell(double value, int precision);
  explicit Cell(std::string text);
  static Cell integer(std::int64_t v) {
    return Cell(static_cast<double>(v), 0);
  }

  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_text() const { return kind_ == Kind::kText; }
  bool is_empty() const { return kind_ == Kind::kEmpty; }
  double number() const { return number_; }
  const std::string& text() const { return text_; }

  std::string render() const;  ///< text-table form ("3.10", label, "-")
  std::string csv() const;     ///< CSV field (quoted if needed, "" if empty)
  std::string json() const;    ///< JSON value (number, string, or null)

 private:
  enum class Kind { kEmpty, kNumber, kText };
  Kind kind_ = Kind::kEmpty;
  double number_ = 0;
  int precision_ = 2;
  std::string text_;
};

/// A completed sweep: named key columns identifying each row plus named
/// value columns of measured metrics.
struct ResultTable {
  std::string title;  ///< human heading, printed above the text table
  std::string slug;   ///< machine name used in CSV/JSON ("fig7ab")
  std::vector<std::string> key_columns;
  std::vector<std::string> value_columns;
  struct Row {
    std::vector<Cell> keys;
    std::vector<Cell> values;
  };
  std::vector<Row> rows;

  /// Throws std::logic_error if any row's cell counts disagree with the
  /// declared key/value columns (metrics callbacks and column lists are
  /// maintained separately and can drift). All renderers call this.
  void check_shape() const;

  /// Aligned text table including the "=== title ===" heading.
  std::string render_text() const;

  /// Appends long-format rows `slug,key1=...;key2=...,metric,value`.
  /// Callers emit csv_header() once per file.
  void append_csv(std::string& out) const;
  static const char* csv_header();  // "table,point,metric,value\n"

  /// Appends this table as a JSON object (no trailing comma/newline).
  void append_json(std::string& out, int indent) const;
};

/// A declarative fat-tree sweep: labelled experiment configs plus a
/// metric extractor mapping each finished experiment to a table row.
struct SweepPoint {
  std::vector<Cell> keys;
  FatTreeExperiment cfg;
};
struct SweepSpec {
  std::string title;
  std::string slug;
  std::vector<std::string> key_columns;
  std::vector<std::string> value_columns;
  std::vector<SweepPoint> points;
  std::function<std::vector<Cell>(const FatTreeExperiment&,
                                  const ExperimentResult&)>
      metrics;
  /// Optional per-point hook, called on the worker thread after
  /// `metrics` with the point's declaration index. Same thread-safety
  /// contract as metrics, except indices partition the work: writing
  /// slot i of a caller-owned vector is race-free. The telemetry path
  /// uses this to collect per-point flight recordings.
  std::function<void(std::size_t, const FatTreeExperiment&,
                     const ExperimentResult&)>
      observe;
};

class SweepRunner {
 public:
  /// `threads` <= 1 means run inline on the calling thread.
  explicit SweepRunner(int threads = 1);

  int threads() const { return threads_; }

  /// Runs `fn(0) .. fn(n-1)` across the pool. Each index is claimed by
  /// exactly one worker; the call returns after all indices finish. The
  /// first exception thrown by any job is rethrown on the caller.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

  /// Order-preserving parallel map: result i is jobs[i]'s return value,
  /// independent of thread count and completion order.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>>& jobs) const {
    std::vector<T> out(jobs.size());
    run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
    return out;
  }

  /// Executes every point's experiment (in parallel) and assembles the
  /// table in declaration order.
  ResultTable run(const SweepSpec& spec) const;

 private:
  int threads_;
};

}  // namespace powertcp::harness
