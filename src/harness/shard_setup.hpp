#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "net/network.hpp"
#include "sim/shard.hpp"
#include "topo/partition.hpp"

/// \file shard_setup.hpp
/// Glue between the scenario harness and the parallel engine: every
/// simulation-backed scenario kind builds one ShardedPoint from its
/// topology's shard plan and its `sim_threads` knob, then constructs
/// the topology against `point.network` exactly as before. With one
/// shard (sim_threads = 1, or a plan fallback) the point IS the
/// sequential engine, driven verbatim.

namespace powertcp::harness {

/// One partitioned simulation point: plan -> engine -> network, tied
/// together in member-initialization order.
struct ShardedPoint {
  topo::ShardPlan plan;
  sim::ShardedSimulator engine;
  net::Network network;

  ShardedPoint(topo::ShardPlan p, sim::QueueKind queue)
      : plan(std::move(p)),
        engine(plan.shards, queue),
        network(prepared_engine(), plan.node_shard) {}

  /// Shard 0's event queue — the "main" simulator every monitor and
  /// telemetry tap lives on.
  sim::Simulator& sim() { return engine.shard(0); }

 private:
  sim::ShardedSimulator& prepared_engine() {
    engine.set_lookahead(plan.lookahead);
    return engine;
  }
};

/// The thread count a scenario actually runs with: at least 1, and
/// forced to 1 when the flight recorder is on (its probes read nodes
/// across the cut from one shard's thread).
inline int effective_sim_threads(int requested, bool telemetry_enabled) {
  return telemetry_enabled ? 1 : std::max(1, requested);
}

/// Process-wide count of simulation points that fell back to the
/// sequential engine (run_with_exact_fallback below). Monotonically
/// increasing; `powertcp_run` snapshots it around a run to surface the
/// count in its JSON document and warn on stderr, and the shard bench
/// exact-gates it at zero. Atomic because sweep points run on a pool.
inline std::atomic<std::uint64_t>& shard_fallback_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Exactness policy of the sharded harness. `body(threads)` builds and
/// runs one complete simulation point and returns {result, boundary
/// ambiguity count} (ShardedSimulator::boundary_ambiguities() after the
/// run). Zero ambiguities PROVES the sharded run byte-identical to the
/// sequential engine (see docs/performance.md, "Parallel DES"), so the
/// result is returned as-is; otherwise the point is rerun with one
/// shard — the exact engine by construction — that result returned, and
/// the process-wide fallback counter bumped (plus `*fallbacks` when
/// given) so the silent rerun stays visible to the caller. Both
/// branches are pure functions of the scenario inputs, so output never
/// depends on the machine, only on the config; `sim_threads > 1` buys
/// speed exactly where the traffic pattern keeps the partitions
/// causally independent at event granularity. The tie-token event key
/// (sim/event_queue.hpp) makes cross-shard same-(time, sched) pairs
/// exactly ordered, so on the shipped configs this path never fires —
/// it remains as the safety net behind the detector.
template <typename Body>
auto run_with_exact_fallback(int requested, Body&& body,
                             std::uint64_t* fallbacks = nullptr)
    -> decltype(body(1).first) {
  auto attempt = body(requested);
  if (requested > 1 && attempt.second > 0) {
    shard_fallback_count().fetch_add(1, std::memory_order_relaxed);
    if (fallbacks != nullptr) ++*fallbacks;
    return body(1).first;
  }
  return std::move(attempt.first);
}

}  // namespace powertcp::harness
