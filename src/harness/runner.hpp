#pragma once

#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

/// \file runner.hpp
/// The config-file-driven experiment runner behind `powertcp_run`: a
/// RunnerConfig describes one experiment family (which topology kind,
/// which schemes with which `key=value` params, which workload points)
/// and run_config() executes it through SweepRunner into ResultTables.
/// The figure benches build the same RunnerConfig programmatically, so
/// a config file and its bench produce identical tables.
///
/// Config format (see docs/reproducing.md for the full key reference):
///
///   [experiment]
///   kind = fat_tree            # fat_tree | incast | rdcn
///   slug = fig6                # table slug prefix
///   schemes = powertcp, hpcc, homa
///   seed = 42
///   sim_queue = heap           # heap | calendar (backend-identical)
///
///   [topology]                 # kind-specific presets + overrides
///   preset = quick             # fat-tree: quick | paper
///
///   [workload]                 # kind-specific points
///   loads = 0.2, 0.6           # fat-tree: one table per load
///
///   [cc.powertcp]              # per-scheme tunables (optional)
///   gamma = 0.9
///
/// A `[cc.<label>]` section may carry `scheme = <registered name>` to
/// run one scheme several times under different labels/params (e.g.
/// reTCP-600us vs reTCP-1800us).

namespace powertcp::harness {

struct RunnerConfig {
  enum class Kind { kFatTree, kIncast, kRdcn };
  Kind kind = Kind::kFatTree;
  std::string slug_prefix = "run";
  std::vector<SchemeRun> schemes;

  // kind == kFatTree: the workhorse FCT experiment per (load, scheme).
  FatTreeExperiment fat_tree;
  std::vector<double> loads = {0.6};
  double percentile = 99.0;

  // kind == kIncast: one table per (query_kb, fan_in) pair.
  IncastScenario incast;
  std::vector<double> query_kb = {0};
  std::vector<double> fan_in = {10};

  // kind == kRdcn: a time series at packet_gbps.front() plus a p99
  // latency table across all of packet_gbps.
  RdcnScenario rdcn;
  std::vector<double> packet_gbps = {25};
};

/// Builds a RunnerConfig from a parsed file. Throws ConfigError on
/// unknown sections/keys/kinds, unregistered schemes, or scheme params
/// not declared by the registry entry.
RunnerConfig load_runner_config(const ConfigFile& file);

/// Executes every point and returns the tables in declaration order.
/// Output is a pure function of the config: tables are identical for
/// every runner thread count.
std::vector<ResultTable> run_config(const RunnerConfig& cfg,
                                    const SweepRunner& runner);

/// The Fig. 6/7-style FCT sweep: one row per scheme at `load`, tail
/// slowdown per paper size bucket plus allP50/drops/flows/done%.
/// Exposed so bench_fig6 and run_config build identical specs.
SweepSpec fct_sweep_spec(const FatTreeExperiment& base, double load,
                         double percentile,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug_prefix);

/// Fig. 4-style incast table with the canonical title/slug for the
/// (query, companions) shape; shared by bench_fig4 and run_config.
ResultTable incast_figure_table(const SweepRunner& runner,
                                const IncastScenario& cfg,
                                const std::vector<SchemeRun>& schemes,
                                const std::string& slug_prefix);

/// The Fig. 6 experiment definition. The default (fast = full = false)
/// equals what configs/fig6_quick.toml loads — bench_fig6_fct and
/// `powertcp_run configs/fig6_quick.toml` therefore print identical
/// tables; a test pins the equivalence.
RunnerConfig fig6_runner_config(bool fast, bool full);

}  // namespace powertcp::harness
