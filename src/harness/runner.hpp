#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario_registry.hpp"
#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"

/// \file runner.hpp
/// The config-file-driven experiment runner behind `powertcp_run`: a
/// RunnerConfig names one scenario kind (resolved through
/// harness::ScenarioRegistry) plus its parsed, runnable ScenarioConfig,
/// and run_config() executes it through SweepRunner into ResultTables.
/// The runner has no per-kind switch — each registry entry owns its
/// `[topology]`/`[workload]` schema and its table emission, so a new
/// paper shape is a registration, not a harness change. The figure
/// benches build the same concrete scenario types programmatically, so
/// a config file and its bench produce identical tables.
///
/// Config format (see docs/reproducing.md for the full key reference):
///
///   [experiment]
///   kind = fat_tree            # any registered scenario kind:
///                              # fat_tree | incast | rdcn | dumbbell
///                              # | homa_oc | single_flow | mixed_cc
///                              # | fluid_phase
///                              # (powertcp_run --kinds)
///   slug = fig6                # table slug prefix
///   schemes = powertcp, hpcc, homa
///   seed = 42                  # seed/percentile are part of the shared
///                              # ScenarioContext; kinds without random
///                              # workloads / percentile metrics (the
///                              # deterministic time-series shapes)
///                              # ignore them
///   sim_queue = heap           # heap | calendar (backend-identical)
///   sim_burst = off            # on | off; burst-granular event engine
///                              # (off is byte-identical to the
///                              # per-packet engine, on is pinned
///                              # table-identical for shipped configs)
///   sim_threads = 1            # event-engine shards per simulation
///                              # point (conservative-lookahead
///                              # partitioned DES; byte-identical to
///                              # sim_threads = 1 for every value)
///
///   [topology]                 # kind-specific presets + overrides
///   preset = quick             # fat-tree: quick | paper
///
///   [workload]                 # kind-specific points
///   loads = 0.2, 0.6           # fat-tree: one table per load
///
///   [cc.powertcp]              # per-scheme tunables (optional)
///   gamma = 0.9
///
///   [aqm]                      # optional; switch marking/drop policy
///   kind = red                 # red (default) | pie | pi2 | codel
///   target_us = 20             # PI/CoDel: target queue delay
///   tupdate_us = 20            # PI controllers: update period
///   interval_us = 100          # CoDel: above-target window / law base
///
///   [burst]                    # optional; burst tunables (burst.hpp)
///   budget = 64                # max events coalesced per callback
///   ack_agg_us = 0             # receiver ack aggregation window
///   pacing_quantum = 1         # packets per pacing-timer tick
///
/// A `[cc.<label>]` section may carry `scheme = <registered name>` to
/// run one scheme several times under different labels/params (e.g.
/// reTCP-600us vs reTCP-1800us).

namespace powertcp::harness {

/// A loaded experiment: the kind name plus the registry-parsed
/// scenario. Benches construct the concrete scenario types below
/// directly instead of going through a config file.
struct RunnerConfig {
  std::string kind = "fat_tree";
  std::shared_ptr<const ScenarioConfig> scenario;
};

// ---- the built-in scenario kinds ----------------------------------
// One concrete ScenarioConfig per registered kind. Each carries the
// resolved schemes and slug prefix itself (copied from the
// [experiment] section at load time), so run() is self-contained.

/// kind == "fat_tree": the workhorse FCT experiment per (load, scheme).
struct FatTreeKindConfig final : ScenarioConfig {
  FatTreeExperiment fat_tree;
  std::vector<double> loads = {0.6};
  double percentile = 99.0;
  std::vector<SchemeRun> schemes;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "incast": one Fig. 4-style table per (query_kb, fan_in).
struct IncastKindConfig final : ScenarioConfig {
  IncastScenario incast;
  std::vector<double> query_kb = {0};
  std::vector<double> fan_in = {10};
  std::vector<SchemeRun> schemes;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "rdcn": a time series at packet_gbps.front() plus a p99
/// latency table across all of packet_gbps.
struct RdcnKindConfig final : ScenarioConfig {
  RdcnScenario rdcn;
  std::vector<double> packet_gbps = {25};
  std::vector<SchemeRun> schemes;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "dumbbell": Fig. 5 per-flow goodput series, one table per
/// scheme.
struct DumbbellKindConfig final : ScenarioConfig {
  DumbbellScenario dumbbell;
  std::vector<SchemeRun> schemes;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "homa_oc": Figs. 9-11 overcommitment sweep (message
/// transports only).
struct HomaOcKindConfig final : ScenarioConfig {
  HomaOcScenario homa_oc;
  std::vector<SchemeRun> schemes;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "single_flow": Fig. 2's analytic single-flow reaction
/// curves — the multiplicative decrease of the voltage- (queue
/// length), current- (RTT gradient) and power-based laws on one
/// bottleneck, from analysis::feedback_ratio. Deterministic closed
/// forms: no simulation runs, so `[experiment] schemes/seed/
/// percentile/sim_queue` and `[telemetry]` are carried by the file
/// format but ignored (the documented pattern for deterministic
/// kinds). Defaults are exactly the paper's illustrative setting
/// (25G, BDP = 22.32 pkts of 1 KB) so the printed factors
/// (3.24 / 2.12 / 9 / 1) come out exactly.
struct SingleFlowKindConfig final : ScenarioConfig {
  double bandwidth_gbps = 25.0;  ///< bottleneck b
  double bdp_packets = 22.32;    ///< b·τ in packets (fixes τ)
  double packet_kb = 1.0;        ///< packet size (Fig. 2's unit)
  double hold_queue_pkts = 25;   ///< Fig. 2a's fixed queue length
  double hold_rate_x = 1;        ///< Fig. 2b's fixed buildup rate (x bw)
  double rate_max_x = 8;         ///< Fig. 2a sweeps 0..rate_max_x step 1
  double queue_max_pkts = 60;    ///< Fig. 2b sweeps 0..queue_max_pkts
  double queue_step_pkts = 10;   ///< ... in this step
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "mixed_cc": brownfield coexistence. Per-host CC mixes
/// (`cc_mix = "dctcp:0.5+powertcp:0.5"` entries over the resolved
/// scheme labels) share one dumbbell bottleneck, swept over the
/// (mix, aqm, rtt, buffer) grid down to the Tiny-Buffer regime.
/// Emits fairness / throughput-share / FCT tables, one row per cell
/// (x member for the per-member tables).
struct MixedCcKindConfig final : ScenarioConfig {
  MixedCcScenario mixed;
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// kind == "fluid_phase": Fig. 3's fluid-model phase portraits — the
/// four control laws integrated from a grid of initial (window, queue)
/// states, plus the Theorem 1/2 stability summary. Deterministic
/// closed-form integration: no simulation runs, so `[experiment]
/// schemes/seed/percentile/sim_queue` and `[telemetry]` are carried by
/// the file format but ignored (the documented pattern for
/// deterministic kinds). Defaults are the paper's setting (100G,
/// 20us RTT, beta = 0.01 BDP).
struct FluidPhaseKindConfig final : ScenarioConfig {
  double bandwidth_gbps = 100.0;     ///< bottleneck b
  double base_rtt_us = 20.0;         ///< base RTT tau
  double gamma = 0.9;                ///< EWMA gain
  double update_interval_us = 20.0;  ///< per-RTT update period
  double beta_frac = 0.01;           ///< additive term as a BDP fraction
  double duration_ms = 4.0;          ///< integration horizon
  double step_us = 0.2;              ///< Euler step
  double sample_us = 2.0;            ///< trajectory sampling period
  /// Initial states in BDP units, paired index-wise (w_bdp[i], q_bdp[i]).
  std::vector<double> grid_w_bdp = {0.3, 3, 1, 4, 0.5, 6};
  std::vector<double> grid_q_bdp = {0, 0, 2, 1, 3, 4};
  std::string slug_prefix = "run";
  std::vector<ResultTable> run(const SweepRunner& runner) const override;
};

/// CLI-level overrides applied on top of the parsed file.
struct RunnerLoadOptions {
  /// `powertcp_run --telemetry`: enable the flight recorder even when
  /// the file has no `[telemetry] enabled = true` (file-set capacity/
  /// period/flow keys still apply).
  bool force_telemetry = false;
  /// `powertcp_run --sim-burst=on|off`: override `[experiment]
  /// sim_burst` (0 = no override, 1 = force on, -1 = force off).
  /// File-set `[burst]` tunables still apply.
  int force_burst = 0;
  /// `powertcp_run --sim-threads=N`: override `[experiment]
  /// sim_threads` (0 = no override). Values > 1 shard each simulation
  /// point across cores with conservative lookahead.
  int force_sim_threads = 0;
};

/// Builds a RunnerConfig from a parsed file, resolving the kind
/// through `registry`. Throws ConfigError on unknown kinds (listing
/// the registered ones), unknown sections/keys, unregistered schemes,
/// or scheme params not declared by the registry entry.
RunnerConfig load_runner_config(
    const ConfigFile& file,
    const ScenarioRegistry& registry = ScenarioRegistry::instance(),
    const RunnerLoadOptions& options = {});

/// Executes every point and returns the tables in declaration order.
/// Output is a pure function of the config: tables are identical for
/// every runner thread count.
std::vector<ResultTable> run_config(const RunnerConfig& cfg,
                                    const SweepRunner& runner);

/// The Fig. 6/7-style FCT sweep: one row per scheme at `load`, tail
/// slowdown per paper size bucket plus allP50/drops/flows/done%.
/// Exposed so bench_fig6 and the fat_tree kind build identical specs.
SweepSpec fct_sweep_spec(const FatTreeExperiment& base, double load,
                         double percentile,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug_prefix);

/// Fig. 4-style incast table with the canonical title/slug for the
/// (query, companions) shape; shared by bench_fig4 and the incast kind.
/// With telemetry enabled, per-scheme flight tables land in
/// `flight_out` (untouched otherwise).
ResultTable incast_figure_table(const SweepRunner& runner,
                                const IncastScenario& cfg,
                                const std::vector<SchemeRun>& schemes,
                                const std::string& slug_prefix,
                                std::vector<ResultTable>* flight_out =
                                    nullptr);

/// The Fig. 5 experiment definition — what configs/fig5_quick.toml
/// loads, so bench_fig5_fairness and `powertcp_run
/// configs/fig5_quick.toml` print identical tables (pinned by test).
RunnerConfig fig5_runner_config();

/// The Fig. 6 experiment definition. The default (fast = full = false)
/// equals what configs/fig6_quick.toml loads — bench_fig6_fct and
/// `powertcp_run configs/fig6_quick.toml` therefore print identical
/// tables; a test pins the equivalence.
RunnerConfig fig6_runner_config(bool fast, bool full);

/// The Figs. 9-11 experiment definition — what configs/fig9_oc.toml
/// loads, so bench_fig9_homa_oc and `powertcp_run configs/fig9_oc.toml`
/// print identical tables (pinned by test).
RunnerConfig fig9_runner_config();

/// The Fig. 2 reaction-curve definition — what
/// configs/fig2_reaction.toml loads, so bench_fig2_reaction and
/// `powertcp_run configs/fig2_reaction.toml` print identical tables
/// (pinned by test).
RunnerConfig fig2_runner_config();

}  // namespace powertcp::harness
