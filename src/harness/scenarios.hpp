#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/params.hpp"
#include "harness/sweep.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "topo/fat_tree.hpp"
#include "topo/rdcn.hpp"

/// \file scenarios.hpp
/// The non-sweep workhorse scenarios behind Figs. 4 and 8, shared by
/// the figure benches and the `powertcp_run` config runner. Every
/// scenario resolves its scheme through cc::Registry — topology needs
/// (priority bands, CircuitSchedule) are applied from the registry
/// entry, and `key=value` params flow into the scheme's factory.
///
/// A SchemeRun names one table column/row: a registered scheme plus
/// its parameter overrides and a display label (so e.g. reTCP-600us
/// and reTCP-1800us are two runs of the same scheme).

namespace powertcp::harness {

struct SchemeRun {
  std::string label;   ///< table heading; defaults to `scheme`
  std::string scheme;  ///< cc::Registry entry name
  cc::ParamMap params;

  std::string display() const { return label.empty() ? scheme : label; }
};

/// Fig. 4: a long flow streams to one receiver; at `burst_at` ten long
/// companions plus an optional query fan-in slam the same downlink.
struct IncastScenario {
  topo::FatTreeConfig topo = topo::FatTreeConfig::quick();
  int expected_flows = 8;
  int fan_in = 0;                  ///< query responders (0 = none)
  std::int64_t query_bytes = 0;    ///< total query size across the fan-in
  std::int64_t long_flow_bytes = 400'000'000;
  int long_companions = 10;
  sim::TimePs burst_at = sim::microseconds(500);
  sim::TimePs horizon = sim::milliseconds(3);
  sim::TimePs bin = sim::microseconds(50);
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
};

/// Receiver goodput and bottleneck ToR-downlink queue, one bin each.
struct IncastSeries {
  std::vector<double> gbps;
  std::vector<double> queue_kb;
};

IncastSeries run_incast_scenario(const IncastScenario& cfg,
                                 const SchemeRun& scheme);

/// One table: time rows, per-scheme goodput/queue columns. Scenario
/// simulations run on the runner's pool; output is identical for every
/// thread count.
ResultTable incast_table(const SweepRunner& runner, const IncastScenario& cfg,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug, const std::string& title);

/// Fig. 8: rack0's servers stream to rack1 across the RDCN while the
/// rotor schedule connects and disconnects them.
struct RdcnScenario {
  topo::RdcnConfig topo;  ///< caller sizes n_tors/servers_per_tor/bws
  int expected_flows = 10;
  std::int64_t flow_bytes = 2'000'000'000;
  sim::TimePs horizon = sim::milliseconds(4);
  sim::TimePs bin = sim::microseconds(50);
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
};

struct RdcnResult {
  std::vector<double> gbps;    ///< rack0 -> rack1 goodput per bin
  std::vector<double> voq_kb;  ///< ToR-0 VOQ backlog per bin
  double p99_sojourn_us = 0;   ///< ToR-0 queuing latency tail
  double circuit_utilization = 0;  ///< day-time goodput / circuit rate
};

RdcnResult run_rdcn_scenario(const RdcnScenario& cfg,
                             const SchemeRun& scheme);

/// Fig. 8a-style table: time rows, per-scheme goodput/VOQ columns,
/// plus one trailing "util%" row of day-time circuit utilization.
ResultTable rdcn_timeseries_table(const SweepRunner& runner,
                                  const RdcnScenario& cfg,
                                  const std::vector<SchemeRun>& schemes,
                                  const std::string& slug,
                                  const std::string& title);

/// Fig. 8b-style table: one row per scheme, p99 ToR queuing latency at
/// each packet-plane bandwidth in `packet_gbps`.
ResultTable rdcn_latency_table(const SweepRunner& runner,
                               const RdcnScenario& cfg,
                               const std::vector<SchemeRun>& schemes,
                               const std::vector<double>& packet_gbps,
                               const std::string& slug,
                               const std::string& title);

}  // namespace powertcp::harness
