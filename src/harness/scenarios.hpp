#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/params.hpp"
#include "harness/sweep.hpp"
#include "harness/burst.hpp"
#include "harness/telemetry.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"
#include "topo/rdcn.hpp"

/// \file scenarios.hpp
/// The non-sweep workhorse scenarios behind Figs. 4, 5, 8 and 9-11,
/// shared by the figure benches and the `powertcp_run` config runner.
/// Every scenario resolves its scheme through cc::Registry — topology
/// needs (priority bands, ECN profile, CircuitSchedule) are applied
/// from the registry entry, `key=value` params flow into the scheme's
/// factory, and `message_transport` entries (Homa) run through
/// host::Host::enable_homa instead of a sender algorithm.
///
/// A SchemeRun names one table column/row: a registered scheme plus
/// its parameter overrides and a display label (so e.g. reTCP-600us
/// and reTCP-1800us are two runs of the same scheme).

namespace powertcp::harness {

struct SchemeRun {
  std::string label;   ///< table heading; defaults to `scheme`
  std::string scheme;  ///< cc::Registry entry name
  cc::ParamMap params;

  std::string display() const { return label.empty() ? scheme : label; }
};

/// Fig. 4: a long flow streams to one receiver; at `burst_at` ten long
/// companions plus an optional query fan-in slam the same downlink.
struct IncastScenario {
  topo::FatTreeConfig topo = topo::FatTreeConfig::quick();
  int expected_flows = 8;
  int fan_in = 0;                  ///< query responders (0 = none)
  std::int64_t query_bytes = 0;    ///< total query size across the fan-in
  std::int64_t long_flow_bytes = 400'000'000;
  int long_companions = 10;
  sim::TimePs burst_at = sim::microseconds(500);
  sim::TimePs horizon = sim::milliseconds(3);
  sim::TimePs bin = sim::microseconds(50);
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parallel-engine shards (1 = sequential verbatim); results are
  /// thread-count-independent. Telemetry forces 1.
  int sim_threads = 1;
  /// Optional flight recorder on the receiver's ToR downlink + the
  /// long foreground flow.
  TelemetryConfig telemetry;
  /// Burst-granular event processing (off = legacy per-packet engine).
  BurstConfig burst;
};

/// Receiver goodput and bottleneck ToR-downlink queue, one bin each.
struct IncastSeries {
  std::vector<double> gbps;
  std::vector<double> queue_kb;
  TelemetrySeries flight;  ///< empty unless telemetry.enabled
};

IncastSeries run_incast_scenario(const IncastScenario& cfg,
                                 const SchemeRun& scheme);

/// One table: time rows, per-scheme goodput/queue columns. Scenario
/// simulations run on the runner's pool; output is identical for every
/// thread count.
ResultTable incast_table(const SweepRunner& runner, const IncastScenario& cfg,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug, const std::string& title,
                         std::vector<ResultTable>* flight_out = nullptr);

/// Fig. 8: rack0's servers stream to rack1 across the RDCN while the
/// rotor schedule connects and disconnects them.
struct RdcnScenario {
  topo::RdcnConfig topo;  ///< caller sizes n_tors/servers_per_tor/bws
  int expected_flows = 10;
  std::int64_t flow_bytes = 2'000'000'000;
  sim::TimePs horizon = sim::milliseconds(4);
  sim::TimePs bin = sim::microseconds(50);
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parallel-engine shards (1 = sequential verbatim); results are
  /// thread-count-independent. Telemetry forces 1.
  int sim_threads = 1;
  /// Optional flight recorder on ToR-0's circuit port + the
  /// `telemetry.flow`-th rack-0 flow.
  TelemetryConfig telemetry;
  /// Burst-granular event processing (off = legacy per-packet engine).
  BurstConfig burst;
};

struct RdcnResult {
  std::vector<double> gbps;    ///< rack0 -> rack1 goodput per bin
  std::vector<double> voq_kb;  ///< ToR-0 VOQ backlog per bin
  double p99_sojourn_us = 0;   ///< ToR-0 queuing latency tail
  double circuit_utilization = 0;  ///< day-time goodput / circuit rate
  TelemetrySeries flight;  ///< empty unless telemetry.enabled
};

RdcnResult run_rdcn_scenario(const RdcnScenario& cfg,
                             const SchemeRun& scheme);

/// Fig. 8a-style table: time rows, per-scheme goodput/VOQ columns,
/// plus one trailing "util%" row of day-time circuit utilization.
ResultTable rdcn_timeseries_table(const SweepRunner& runner,
                                  const RdcnScenario& cfg,
                                  const std::vector<SchemeRun>& schemes,
                                  const std::string& slug,
                                  const std::string& title,
                                  std::vector<ResultTable>* flight_out =
                                      nullptr);

/// Fig. 8b-style table: one row per scheme, p99 ToR queuing latency at
/// each packet-plane bandwidth in `packet_gbps`.
ResultTable rdcn_latency_table(const SweepRunner& runner,
                               const RdcnScenario& cfg,
                               const std::vector<SchemeRun>& schemes,
                               const std::vector<double>& packet_gbps,
                               const std::string& slug,
                               const std::string& title);

/// Fig. 5: `flow_bytes.size()` flows share one dumbbell bottleneck,
/// arriving staggered by `stagger` and (with the descending default
/// sizes) departing in reverse order — the fairness/stability shape.
struct DumbbellScenario {
  /// n_senders is overwritten with the flow count at run time.
  topo::DumbbellConfig topo;
  std::vector<std::int64_t> flow_bytes = {14'000'000, 10'000'000, 6'000'000,
                                          2'500'000};
  sim::TimePs stagger = sim::microseconds(800);
  sim::TimePs horizon = sim::milliseconds(8);
  sim::TimePs bin = sim::microseconds(100);
  /// Table rows sample every `row_stride`-th bin.
  int row_stride = 4;
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parallel-engine shards (1 = sequential verbatim); results are
  /// thread-count-independent. Telemetry forces 1.
  int sim_threads = 1;
  /// Optional flight recorder on the bottleneck port + the
  /// `telemetry.flow`-th flow (sender flow-1).
  TelemetryConfig telemetry;
  /// Burst-granular event processing (off = legacy per-packet engine).
  BurstConfig burst;
};

/// Per-flow receiver goodput, one sampled row per table line.
struct DumbbellSeries {
  std::vector<sim::TimePs> bin_start;
  /// gbps[flow][row]; one entry per flow in DumbbellScenario order.
  std::vector<std::vector<double>> gbps;
  TelemetrySeries flight;  ///< empty unless telemetry.enabled
};

DumbbellSeries run_dumbbell_scenario(const DumbbellScenario& cfg,
                                     const SchemeRun& scheme);

/// Pure formatting: time rows, one f1..fN goodput column per flow.
ResultTable dumbbell_series_table(const DumbbellSeries& series,
                                  const std::string& slug,
                                  const std::string& title);

/// One "<scheme> (Gbps per flow)" table per scheme, slug
/// "<prefix>_<display>". Per-scheme simulations run on the runner's
/// pool; output is identical for every thread count.
std::vector<ResultTable> dumbbell_fairness_tables(
    const SweepRunner& runner, const DumbbellScenario& cfg,
    const std::vector<SchemeRun>& schemes, const std::string& slug_prefix);

/// Figs. 9-11 (Appendix D): a receiver-driven message transport swept
/// across overcommitment levels — the dumbbell fairness series per
/// level, plus N:1 incast reaction summaries on the fat-tree. Every
/// scheme in the list must be a registry `message_transport` entry;
/// the sweep injects `overcommit = <level>` into its params per point.
struct HomaOcScenario {
  /// Fig. 9's table density: every 8th fairness bin becomes a row.
  static DumbbellScenario default_fairness() {
    DumbbellScenario d;
    d.row_stride = 8;
    return d;
  }

  /// Fig. 9 panel (per-level fairness series).
  DumbbellScenario fairness = default_fairness();
  /// Figs. 10/11 panel (incast reaction summaries).
  topo::FatTreeConfig incast_topo = topo::FatTreeConfig::quick();
  std::vector<int> overcommit = {1, 2, 3, 4, 5, 6};
  std::vector<int> fan_in = {10, 55};
  std::int64_t long_message_bytes = 200'000'000;
  std::int64_t burst_message_bytes = 100'000;
  sim::TimePs burst_at = sim::microseconds(500);
  sim::TimePs incast_horizon = sim::milliseconds(3);
  sim::TimePs incast_bin = sim::microseconds(100);
  /// Event-queue backend, applied to both panels.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parallel-engine shards, applied to both panels (1 = sequential).
  int sim_threads = 1;
  /// Optional flight recorder, applied to both panels (the incast
  /// panel taps the receiver's ToR downlink; message transports have
  /// no sender window, so cwnd/pace read 0 there).
  TelemetryConfig telemetry;
  /// Burst-granular event processing, applied to both panels.
  BurstConfig burst;
};

/// One incast reaction at one (overcommit via scheme params, fan_in)
/// point: a long message holds the receiver's downlink when the
/// synchronized burst arrives.
struct HomaOcIncastResult {
  double peak_queue_kb = 0;
  std::uint64_t drops = 0;
  double mean_goodput_gbps = 0;
  TelemetrySeries flight;  ///< empty unless telemetry.enabled
};

HomaOcIncastResult run_homa_oc_incast(const HomaOcScenario& cfg,
                                      const SchemeRun& scheme, int fan_in);

/// Per scheme: one fairness table per overcommitment level, then one
/// summary table per fan-in with a row per level. Throws
/// std::invalid_argument for schemes that are not message transports.
std::vector<ResultTable> homa_oc_tables(const SweepRunner& runner,
                                        const HomaOcScenario& cfg,
                                        const std::vector<SchemeRun>& schemes,
                                        const std::string& slug_prefix);

/// One congestion-control mix: resolved scheme runs plus normalized
/// host weights, parallel vectors. `display` keys the mix's table rows
/// (cc::mix_display form, stable across input spellings).
struct MixedCcMix {
  std::string display;
  std::vector<SchemeRun> members;
  std::vector<double> weights;
};

/// Brownfield coexistence (the ROADMAP item this layer pays for): a
/// dumbbell whose senders are pinned per host to one mix member —
/// incumbent and candidate stacks sharing one bottleneck — swept over
/// (cc_mix, aqm, rtt, buffer) cells. The buffer axis reaches down to
/// the Tiny-Buffer regime (a few KB per port), where marking policy
/// dominates the outcome.
struct MixedCcScenario {
  /// Bandwidth/alpha template; n_senders, link_delay, buffer_bytes and
  /// aqm.kind are overridden per cell.
  topo::DumbbellConfig topo;
  int senders = 8;
  std::int64_t flow_bytes = 4'000'000;  ///< one flow per sender, all at t=0
  sim::TimePs horizon = sim::milliseconds(8);
  std::uint64_t seed = 1;  ///< pins the host->member assignment
  /// AQM tunables shared by every cell; the swept axis picks `kind`.
  net::AqmSpec aqm;
  /// Event-queue backend; results are backend-independent.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;
  /// Parallel-engine shards (1 = sequential verbatim); results are
  /// thread-count-independent.
  int sim_threads = 1;
  /// Burst-granular event processing (off = legacy per-packet engine).
  BurstConfig burst;

  // Cell axes (outer product, mix-major):
  std::vector<MixedCcMix> mixes;
  std::vector<std::string> aqm_kinds = {"red"};
  std::vector<double> rtt_us = {8.0};          ///< base RTT; link_delay = rtt/4
  std::vector<std::int64_t> buffer_bytes = {}; ///< 0 entry = topo default
};

/// One (mix, aqm, rtt, buffer) cell: fairness, aggregate, and
/// per-member share/FCT statistics from a single simulation.
struct MixedCcCellResult {
  double jain = 0;       ///< Jain's index over per-flow delivery rates
  double agg_gbps = 0;   ///< aggregate receiver goodput over the horizon
  double done_frac = 0;  ///< flows finished before the horizon
  std::uint64_t drops = 0;      ///< switch drops (admission + AQM)
  std::uint64_t ecn_marks = 0;  ///< bottleneck-port CE marks
  struct MemberStat {
    int hosts = 0;
    double share_pct = 0;  ///< member bytes / total delivered bytes
    double mean_gbps = 0;  ///< mean per-host delivery rate
    double p50_slowdown = 0, p99_slowdown = 0;  ///< 0 when none finished
    int done = 0;
  };
  std::vector<MemberStat> members;  ///< parallel to the mix's members
};

/// Runs one cell. Throws std::invalid_argument for message-transport
/// (Homa) or circuit-bound (reTCP) members and unknown AQM kinds.
MixedCcCellResult run_mixed_cc_cell(const MixedCcScenario& cfg,
                                    const MixedCcMix& mix,
                                    const std::string& aqm_kind,
                                    double rtt_us,
                                    std::int64_t buffer_bytes);

/// The three coexistence tables — `<prefix>_fairness` (one row per
/// cell), `<prefix>_share` and `<prefix>_fct` (one row per cell ×
/// member). Cell simulations run on the runner's pool; output is
/// identical for every thread count.
std::vector<ResultTable> mixed_cc_tables(const SweepRunner& runner,
                                         const MixedCcScenario& cfg,
                                         const std::string& slug_prefix);

/// Renders one finalized flight recording as a time-keyed table (the
/// shared q/power/cwnd/pace/ecn channel schema; see telemetry.hpp).
/// Returns an empty-rowed table for an empty series; callers skip
/// those. Defined in telemetry.cpp.
ResultTable flight_table(const TelemetrySeries& series,
                         const std::string& slug, const std::string& title);

}  // namespace powertcp::harness
