#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/mix.hpp"
#include "cc/params.hpp"
#include "harness/burst.hpp"
#include "harness/telemetry.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "stats/fct_recorder.hpp"
#include "stats/percentiles.hpp"
#include "topo/fat_tree.hpp"

/// \file experiment.hpp
/// The paper's workhorse experiment (§4.1): a fat-tree carrying the web
/// search workload at a target ToR-uplink load, optionally overlaid
/// with the synthetic incast/query workload, under a chosen congestion
/// control scheme. Returns per-flow FCT slowdowns and fabric buffer
/// occupancy samples — the raw material of Figs. 6 and 7.

namespace powertcp::harness {

struct FatTreeExperiment {
  topo::FatTreeConfig topo = topo::FatTreeConfig::quick();
  /// Any cc::Registry scheme runnable on a fat-tree — the window/rate
  /// algorithms or "homa" (whose registry entry switches the fabric to
  /// its priority bands and runs flows through the message transport).
  std::string cc = "powertcp";
  /// `key=value` overrides for the scheme's declared tunables
  /// (config-file `[cc.<scheme>]` sections end up here). Keys the map
  /// does not pin fall back to the scheme's experiment defaults (e.g.
  /// PowerTCP's HPCC-matched beta), then to its paper defaults.
  cc::ParamMap cc_params;
  /// Per-host CC mix (brownfield coexistence). When non-empty, `cc` /
  /// `cc_params` above are ignored: each host is pinned to one member
  /// by cc::mix_assignment, deterministic in `seed`. Members must be
  /// sender CC algorithms — message transports (Homa) reshape the
  /// fabric and cannot share it, so they are rejected. The fabric runs
  /// the ECN profile of the first member that needs marking.
  struct MixShare {
    std::string cc;          ///< cc::Registry entry name
    cc::ParamMap cc_params;  ///< per-member tunable overrides
    double weight = 1.0;     ///< normalized share of hosts
  };
  std::vector<MixShare> cc_mix;
  double uplink_load = 0.6;  ///< websearch load on the ToR uplinks
  sim::TimePs duration = sim::milliseconds(20);
  std::uint64_t seed = 1;
  /// Scale factor applied to websearch flow sizes; < 1 trades flow size
  /// for flow count so quick runs still populate tail percentiles.
  double size_scale = 1.0;
  /// Expected flows per host NIC (the N in β = HostBw·τ/N). Loaded
  /// fabrics run tens of concurrent flows per host; the standing queue
  /// of every β-driven law is Σβ, so N must reflect that concurrency
  /// (bench_ablation_params sweeps it).
  int expected_flows = 64;
  int homa_overcommit = 1;

  // Optional incast overlay (§4.1's distributed-file-system queries).
  bool incast = false;
  double incast_requests_per_sec = 4.0;
  std::int64_t incast_request_bytes = 2'000'000;
  int incast_fan_in = 16;

  /// Fabric queue sampling period for the occupancy CDF (Fig. 7g/7h).
  sim::TimePs queue_sample_every = sim::microseconds(20);

  /// Event-queue backend for the run. Results are backend-independent
  /// (pinned by tests); the calendar queue pays off on dense paper-scale
  /// timer workloads.
  sim::QueueKind sim_queue = sim::QueueKind::kBinaryHeap;

  /// Shards for the parallel engine (sim/shard.hpp): the fat-tree is
  /// cut per pod (topo::fat_tree_shard_plan) and run on this many
  /// threads. 1 = the sequential engine, verbatim; results are
  /// thread-count-independent (pinned by golden tests). Telemetry runs
  /// force 1 (the flight tap reads across the cut).
  int sim_threads = 1;

  /// Optional flight-recorder tap (off by default): samples the first
  /// ToR's first uplink port and the `telemetry.flow`-th planned
  /// arrival's sender. Read-only probes — enabling it never changes
  /// the simulation's results (pinned by golden tests).
  TelemetryConfig telemetry;
  /// Burst-granular event processing (off = legacy per-packet engine).
  BurstConfig burst;
};

struct ExperimentResult {
  stats::FctRecorder fct;
  stats::Samples uplink_queue_bytes;  ///< periodic ToR-uplink samples
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t drops = 0;
  sim::TimePs tau = 0;
  TelemetrySeries flight;  ///< empty unless cfg.telemetry.enabled

  // Populated only for cc_mix runs:
  /// mix-member index each host was pinned to (empty when homogeneous).
  std::vector<int> host_member;
  /// per-member FCT recorders, parallel to cfg.cc_mix; `fct` above
  /// still aggregates every flow.
  std::vector<stats::FctRecorder> member_fct;

  double completion_rate() const {
    return flows_started == 0
               ? 1.0
               : static_cast<double>(flows_completed) /
                     static_cast<double>(flows_started);
  }
};

/// Builds the fabric, generates the workload, runs to completion of the
/// time horizon, and collects results. Deterministic in `cfg.seed`.
ExperimentResult run_fat_tree_experiment(const FatTreeExperiment& cfg);

/// ECN profile used when `cc` needs marking (DCQCN: RED 1000/4000
/// bytes-per-Gbps with pmax 0.2; DCTCP: step at 700 bytes-per-Gbps).
/// Reads the scheme's registry entry; unknown names get the disabled
/// profile. Exposed for tests and non-fat-tree harnesses.
net::EcnConfig ecn_profile_for(const std::string& cc);

}  // namespace powertcp::harness
