#include "harness/config.hpp"

#include <fstream>
#include <sstream>

#include "cc/params.hpp"

namespace powertcp::harness {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strips an unquoted trailing comment, honouring "..." quoting.
std::string strip_inline_comment(const std::string& s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (!quoted && (s[i] == '#' || s[i] == ';')) return s.substr(0, i);
  }
  return s;
}

[[noreturn]] void fail_at(const std::string& origin, int line,
                          const std::string& message) {
  throw ConfigError(origin + ":" + std::to_string(line) + ": " + message);
}

std::string unquote(const std::string& v, const std::string& origin,
                    int line) {
  if (v.size() >= 2 && v.front() == '"') {
    if (v.back() != '"') fail_at(origin, line, "unterminated string: " + v);
    return v.substr(1, v.size() - 2);
  }
  return v;
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const ConfigFile::Entry* ConfigFile::Section::find(
    const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

ConfigFile ConfigFile::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), path);
}

ConfigFile ConfigFile::parse(const std::string& text,
                             const std::string& origin) {
  ConfigFile cfg;
  cfg.origin_ = origin;
  Section* current = nullptr;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(strip_inline_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail_at(origin, lineno, "expected ']': " + raw);
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (!valid_name(name)) {
        fail_at(origin, lineno, "bad section name: [" + name + "]");
      }
      if (cfg.find(name) != nullptr) {
        fail_at(origin, lineno, "duplicate section [" + name + "]");
      }
      cfg.sections_.push_back(Section{name, {}, lineno});
      current = &cfg.sections_.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail_at(origin, lineno, "expected 'key = value': " + trim(raw));
    }
    if (current == nullptr) {
      fail_at(origin, lineno, "key outside any [section]: " + trim(raw));
    }
    const std::string key = trim(line.substr(0, eq));
    if (!valid_name(key)) fail_at(origin, lineno, "bad key name: " + key);
    if (current->find(key) != nullptr) {
      fail_at(origin, lineno,
              "duplicate key '" + key + "' in [" + current->name + "]");
    }
    const std::string value =
        unquote(trim(line.substr(eq + 1)), origin, lineno);
    current->entries.push_back(Entry{key, value, lineno});
  }
  return cfg;
}

const ConfigFile::Section* ConfigFile::find(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ConfigFile::Section*> ConfigFile::with_prefix(
    const std::string& prefix) const {
  std::vector<const Section*> out;
  for (const auto& s : sections_) {
    if (s.name.rfind(prefix, 0) == 0) out.push_back(&s);
  }
  return out;
}

std::vector<std::string> split_config_list(const std::string& value) {
  std::string body = trim(value);
  if (body.size() >= 2 && body.front() == '[' && body.back() == ']') {
    body = body.substr(1, body.size() - 2);
  }
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t comma = body.find(',', start);
    const std::string piece =
        trim(comma == std::string::npos ? body.substr(start)
                                        : body.substr(start, comma - start));
    if (!piece.empty()) {
      std::string p = piece;
      if (p.size() >= 2 && p.front() == '"' && p.back() == '"') {
        p = p.substr(1, p.size() - 2);
      }
      out.push_back(p);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

SectionView::SectionView(const ConfigFile& file,
                         const ConfigFile::Section* section)
    : file_(file), section_(section) {}

bool SectionView::has(const std::string& key) const {
  return section_ != nullptr && section_->find(key) != nullptr;
}

const ConfigFile::Entry* SectionView::take(const std::string& key) {
  if (section_ == nullptr) return nullptr;
  consumed_.insert(key);
  return section_->find(key);
}

void SectionView::fail(const ConfigFile::Entry& e, const char* want) const {
  throw ConfigError(file_.origin() + ":" + std::to_string(e.line) + ": [" +
                    section_->name + "] " + e.key + " = '" + e.value +
                    "' is not a valid " + want);
}

std::string SectionView::get_string(const std::string& key,
                                    const std::string& fallback) {
  const auto* e = take(key);
  return e == nullptr ? fallback : e->value;
}

double SectionView::get_double(const std::string& key, double fallback) {
  const auto* e = take(key);
  if (e == nullptr) return fallback;
  const auto v = cc::parse_double_value(e->value);
  if (!v) fail(*e, "number");
  return *v;
}

std::int64_t SectionView::get_int(const std::string& key,
                                  std::int64_t fallback) {
  const auto* e = take(key);
  if (e == nullptr) return fallback;
  const auto v = cc::parse_int_value(e->value);
  if (!v) fail(*e, "integer");
  return *v;
}

bool SectionView::get_bool(const std::string& key, bool fallback) {
  const auto* e = take(key);
  if (e == nullptr) return fallback;
  const auto v = cc::parse_bool_value(e->value);
  if (!v) fail(*e, "boolean (true/false/on/off/1/0)");
  return *v;
}

std::vector<std::string> SectionView::get_list(
    const std::string& key, std::vector<std::string> fallback) {
  const auto* e = take(key);
  if (e == nullptr) return fallback;
  return split_config_list(e->value);
}

std::vector<double> SectionView::get_double_list(
    const std::string& key, std::vector<double> fallback) {
  const auto* e = take(key);
  if (e == nullptr) return fallback;
  std::vector<double> out;
  for (const auto& piece : split_config_list(e->value)) {
    const auto v = cc::parse_double_value(piece);
    if (!v) fail(*e, "number list");
    out.push_back(*v);
  }
  return out;
}

void SectionView::finish() {
  if (section_ == nullptr) return;
  for (const auto& e : section_->entries) {
    if (consumed_.count(e.key) == 0) {
      throw ConfigError(file_.origin() + ":" + std::to_string(e.line) +
                        ": unknown key '" + e.key + "' in [" +
                        section_->name + "]");
    }
  }
}

}  // namespace powertcp::harness
