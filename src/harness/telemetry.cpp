#include "harness/telemetry.hpp"

#include <cstddef>

#include "harness/scenarios.hpp"
#include "harness/sweep.hpp"
#include "host/flow.hpp"
#include "host/host.hpp"
#include "net/egress_port.hpp"

namespace powertcp::harness {

namespace {

// One shared channel schema so series from every kind line up in the
// CSV long format (table,point,metric,value with point = time).
constexpr const char* kChannelNames[] = {"qKB", "power", "cwndKB",
                                         "paceGbps", "ecn"};
constexpr int kChannelPrecision[] = {2, 3, 2, 2, 0};
constexpr std::size_t kChannels = 5;

}  // namespace

TelemetryConfig load_telemetry_config(const ConfigFile& file) {
  TelemetryConfig cfg;
  const ConfigFile::Section* sec = file.find("telemetry");
  if (sec == nullptr) return cfg;
  SectionView v(file, sec);
  cfg.enabled = v.get_bool("enabled", cfg.enabled);
  cfg.capacity = v.get_int("capacity", cfg.capacity);
  if (cfg.capacity < 2 || cfg.capacity > 1'000'000) {
    throw ConfigError(file.origin() +
                      ": [telemetry] capacity must be in [2, 1000000]");
  }
  if (v.has("sample_every_us")) {
    const double us = v.get_double("sample_every_us", 0);
    if (us <= 0) {
      throw ConfigError(file.origin() +
                        ": [telemetry] sample_every_us must be positive");
    }
    cfg.sample_every = sim::from_seconds(us * 1e-6);
  } else {
    v.get_double("sample_every_us", 0);  // mark consumed when absent
  }
  cfg.flow = v.get_int("flow", cfg.flow);
  if (cfg.flow < 1) {
    throw ConfigError(file.origin() + ": [telemetry] flow must be >= 1");
  }
  v.finish();
  return cfg;
}

FlightTap::FlightTap(const TelemetryConfig& cfg, sim::Simulator& sim,
                     net::EgressPort& port, host::Host* flow_host,
                     std::int64_t flow, sim::TimePs tau, sim::TimePs until)
    : sim_(sim),
      port_(port),
      flow_host_(flow_host),
      flow_(flow),
      bandwidth_Bps_(port.bandwidth().bps() / 8.0),
      tau_s_(sim::to_seconds(tau)),
      recorder_(static_cast<std::size_t>(cfg.capacity)) {
  recorder_.add_channel(kChannelNames[0], [this] {
    return static_cast<double>(port_.queue_bytes()) / 1e3;
  });
  recorder_.add_channel(kChannelNames[1], [this] { return power_probe(); });
  recorder_.add_channel(kChannelNames[2], [this] {
    const host::FlowSender* s =
        flow_host_ == nullptr
            ? nullptr
            : flow_host_->sender(static_cast<net::FlowId>(flow_));
    return s == nullptr ? 0.0 : s->cwnd_bytes() / 1e3;
  });
  recorder_.add_channel(kChannelNames[3], [this] {
    const host::FlowSender* s =
        flow_host_ == nullptr
            ? nullptr
            : flow_host_->sender(static_cast<net::FlowId>(flow_));
    return s == nullptr ? 0.0 : s->pacing_bps() / 1e9;
  });
  recorder_.add_channel(kChannelNames[4], [this] {
    return static_cast<double>(port_.ecn_marks());
  });
  recorder_.arm(sim, cfg.sample_every, until);
}

/// Normalized power between consecutive ticks: current λ is the
/// arrival rate seen by the queue (backlog growth plus what the port
/// transmitted), voltage ν = q + b·τ, and the normalizer e = b²·τ is
/// the equilibrium power at an empty queue — so 1.0 means "line rate,
/// no standing queue" (§3.1). The first tick has no rate window and
/// reports the true initial state, λ = 0.
double FlightTap::power_probe() {
  const sim::TimePs t = sim_.now();
  const std::int64_t q = port_.queue_bytes();
  const std::int64_t tx = port_.tx_bytes();
  double lambda_Bps = 0;
  if (have_prev_ && t > prev_t_) {
    const double dt = sim::to_seconds(t - prev_t_);
    lambda_Bps = (static_cast<double>(q - prev_q_) +
                  static_cast<double>(tx - prev_tx_)) /
                 dt;
  }
  have_prev_ = true;
  prev_t_ = t;
  prev_q_ = q;
  prev_tx_ = tx;
  const double voltage = static_cast<double>(q) + bandwidth_Bps_ * tau_s_;
  const double e = bandwidth_Bps_ * bandwidth_Bps_ * tau_s_;
  return e > 0 ? lambda_Bps * voltage / e : 0.0;
}

TelemetrySeries FlightTap::series() {
  recorder_.finalize();
  TelemetrySeries out;
  out.channels.assign(kChannelNames, kChannelNames + kChannels);
  out.precision.assign(kChannelPrecision, kChannelPrecision + kChannels);
  out.time.reserve(recorder_.size());
  for (std::size_t i = 0; i < recorder_.size(); ++i) {
    out.time.push_back(recorder_.time(i));
  }
  out.values.resize(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    out.values[c].reserve(recorder_.size());
    for (std::size_t i = 0; i < recorder_.size(); ++i) {
      out.values[c].push_back(recorder_.value(c, i));
    }
  }
  return out;
}

ResultTable flight_table(const TelemetrySeries& series,
                         const std::string& slug, const std::string& title) {
  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  t.value_columns = series.channels;
  for (std::size_t i = 0; i < series.time.size(); ++i) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(series.time[i]))};
    for (std::size_t c = 0; c < series.channels.size(); ++c) {
      row.values.push_back(Cell(series.values[c][i], series.precision[c]));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace powertcp::harness
