#include "harness/burst.hpp"

#include "host/host.hpp"
#include "net/network.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace powertcp::harness {

BurstConfig load_burst_config(const ConfigFile& file) {
  BurstConfig cfg;
  const ConfigFile::Section* sec = file.find("burst");
  if (sec == nullptr) return cfg;
  SectionView v(file, sec);
  cfg.budget = static_cast<std::uint32_t>(
      v.get_int("budget", static_cast<std::int64_t>(cfg.budget)));
  if (cfg.budget < 1 || cfg.budget > 1'000'000) {
    throw ConfigError(file.origin() +
                      ": [burst] budget must be in [1, 1000000]");
  }
  if (v.has("ack_agg_us")) {
    const double us = v.get_double("ack_agg_us", 0);
    if (us < 0) {
      throw ConfigError(file.origin() +
                        ": [burst] ack_agg_us must be >= 0");
    }
    cfg.ack_agg = sim::from_seconds(us * 1e-6);
  } else {
    v.get_double("ack_agg_us", 0);  // mark consumed when absent
  }
  cfg.pacing_quantum = static_cast<std::int32_t>(
      v.get_int("pacing_quantum", cfg.pacing_quantum));
  if (cfg.pacing_quantum < 1 || cfg.pacing_quantum > 1'000'000) {
    throw ConfigError(file.origin() +
                      ": [burst] pacing_quantum must be in [1, 1000000]");
  }
  v.finish();
  return cfg;
}

namespace {

void apply_burst_hosts(const BurstConfig& cfg, net::Network& network) {
  if (cfg.ack_agg <= 0 && cfg.pacing_quantum <= 1) return;
  for (net::NodeId id = 0; id < network.next_node_id(); ++id) {
    auto* h = dynamic_cast<host::Host*>(&network.node(id));
    if (h == nullptr) continue;
    if (cfg.ack_agg > 0) h->set_ack_agg_window(cfg.ack_agg);
    if (cfg.pacing_quantum > 1) {
      host::FlowSenderConfig scfg = h->sender_config();
      scfg.pacing_quantum = cfg.pacing_quantum;
      h->set_sender_config(scfg);
    }
  }
}

}  // namespace

void apply_burst(const BurstConfig& cfg, sim::Simulator& sim,
                 net::Network& network) {
  if (cfg.enabled) sim.set_burst_budget(cfg.budget);
  apply_burst_hosts(cfg, network);
}

void apply_burst(const BurstConfig& cfg, sim::ShardedSimulator& engine,
                 net::Network& network) {
  if (cfg.enabled) {
    for (int s = 0; s < engine.shard_count(); ++s) {
      engine.shard(s).set_burst_budget(cfg.budget);
    }
  }
  apply_burst_hosts(cfg, network);
}

}  // namespace powertcp::harness
