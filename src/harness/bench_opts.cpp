#include "harness/bench_opts.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace powertcp::harness {

namespace {

bool take_value(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

std::string BenchOptions::usage(const std::string& bench_name) {
  return "usage: " + bench_name +
         " [--threads=N] [--csv=FILE] [--json=FILE] [--fast] [--full]\n"
         "  --threads=N  run independent sweep points on N threads\n"
         "               (results are identical for every N)\n"
         "  --csv=FILE   append long-format CSV rows "
         "(table,point,metric,value)\n"
         "  --json=FILE  write all result tables as one JSON document\n"
         "  --fast       smaller/quicker preset (where supported)\n"
         "  --full       paper-scale preset (where supported)\n";
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (take_value(arg, "--threads", &value)) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 4096) {
        std::fprintf(stderr, "%s: bad --threads value '%s'\n", argv[0],
                     value.c_str());
        o.ok = false;
        return o;
      }
      o.threads = static_cast<int>(n);
    } else if (take_value(arg, "--csv", &value)) {
      o.csv_path = value;
    } else if (take_value(arg, "--json", &value)) {
      o.json_path = value;
    } else if (std::strcmp(arg, "--fast") == 0) {
      o.fast = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      o.full = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      o.help = true;
      return o;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n%s", argv[0], arg,
                   usage(argv[0]).c_str());
      o.ok = false;
      return o;
    }
  }
  return o;
}

BenchReporter::BenchReporter(std::string bench_name, const BenchOptions& opts)
    : bench_name_(std::move(bench_name)),
      opts_(opts),
      runner_(opts.threads) {}

void BenchReporter::add(ResultTable table) {
  if (!tables_.empty()) std::printf("\n");
  std::fputs(table.render_text().c_str(), stdout);
  std::fflush(stdout);
  tables_.push_back(std::move(table));
}

int BenchReporter::finish() {
  int rc = 0;
  const auto write_file = [&](const std::string& path,
                              const std::string& content, const char* mode) {
    std::FILE* f = std::fopen(path.c_str(), mode);
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", bench_name_.c_str(),
                   path.c_str());
      rc = 1;
      return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  };
  if (!opts_.csv_path.empty()) {
    // Appending lets several benches accumulate rows in one file (the
    // fixed long-format schema is shared); the header is only emitted
    // when the file is new or empty.
    bool fresh = true;
    if (std::FILE* probe = std::fopen(opts_.csv_path.c_str(), "r")) {
      fresh = std::fgetc(probe) == EOF;
      std::fclose(probe);
    }
    std::string csv = fresh ? ResultTable::csv_header() : "";
    for (const auto& t : tables_) t.append_csv(csv);
    write_file(opts_.csv_path, csv, "a");
    if (rc == 0) {
      std::fprintf(stderr, "appended CSV: %s\n", opts_.csv_path.c_str());
    }
  }
  if (!opts_.json_path.empty()) {
    // No run metadata beyond the bench name: the document must be
    // byte-identical for every --threads value.
    std::string json = "{\n  \"bench\": \"" + bench_name_ + "\",\n";
    if (have_shard_fallbacks_) {
      json += "  \"shard_fallbacks\": " + std::to_string(shard_fallbacks_) +
              ",\n";
    }
    json += "  \"tables\": [\n";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      tables_[i].append_json(json, 4);
      json += i + 1 < tables_.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    write_file(opts_.json_path, json, "w");
    if (rc == 0) {
      std::fprintf(stderr, "wrote JSON: %s\n", opts_.json_path.c_str());
    }
  }
  return rc;
}

}  // namespace powertcp::harness
