#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace powertcp::harness {

namespace {

std::string format_number(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

Cell::Cell(double value, int precision)
    : kind_(std::isnan(value) ? Kind::kEmpty : Kind::kNumber),
      number_(value),
      precision_(precision) {}

Cell::Cell(std::string text) : kind_(Kind::kText), text_(std::move(text)) {}

std::string Cell::render() const {
  switch (kind_) {
    case Kind::kNumber: return format_number(number_, precision_);
    case Kind::kText: return text_;
    case Kind::kEmpty: return "-";
  }
  return "-";
}

std::string Cell::csv() const {
  switch (kind_) {
    case Kind::kNumber: return format_number(number_, precision_);
    case Kind::kText: return csv_escape(text_);
    case Kind::kEmpty: return "";
  }
  return "";
}

std::string Cell::json() const {
  switch (kind_) {
    case Kind::kNumber: return format_number(number_, precision_);
    case Kind::kText: return json_escape(text_);
    case Kind::kEmpty: return "null";
  }
  return "null";
}

void ResultTable::check_shape() const {
  for (const auto& row : rows) {
    if (row.keys.size() != key_columns.size() ||
        row.values.size() != value_columns.size()) {
      throw std::logic_error(
          "ResultTable '" + slug + "': row has " +
          std::to_string(row.keys.size()) + "+" +
          std::to_string(row.values.size()) + " cells but " +
          std::to_string(key_columns.size()) + "+" +
          std::to_string(value_columns.size()) + " columns are declared");
    }
  }
}

std::string ResultTable::render_text() const {
  check_shape();
  const std::size_t n_keys = key_columns.size();
  const std::size_t n_cols = n_keys + value_columns.size();
  std::vector<std::size_t> width(n_cols);
  const auto header_at = [&](std::size_t c) -> const std::string& {
    return c < n_keys ? key_columns[c] : value_columns[c - n_keys];
  };
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> r;
    r.reserve(n_cols);
    for (const auto& cell : row.keys) r.push_back(cell.render());
    for (const auto& cell : row.values) r.push_back(cell.render());
    rendered.push_back(std::move(r));
  }
  for (std::size_t c = 0; c < n_cols; ++c) {
    width[c] = header_at(c).size();
    for (const auto& r : rendered) {
      if (c < r.size()) width[c] = std::max(width[c], r[c].size());
    }
  }

  std::string out;
  if (!title.empty()) out += "=== " + title + " ===\n";
  // The leading key column is left-aligned (labels); everything else is
  // right-aligned (numbers), matching the historical printf tables.
  const auto pad = [&](const std::string& s, std::size_t c) {
    std::string padded;
    const std::size_t w = width[c];
    if (c == 0) {
      padded = s + std::string(w > s.size() ? w - s.size() : 0, ' ');
    } else {
      padded = std::string(w > s.size() ? w - s.size() : 0, ' ') + s;
    }
    return padded;
  };
  for (std::size_t c = 0; c < n_cols; ++c) {
    if (c) out += "  ";
    out += pad(header_at(c), c);
  }
  out += '\n';
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out += "  ";
      out += pad(r[c], c);
    }
    out += '\n';
  }
  return out;
}

const char* ResultTable::csv_header() { return "table,point,metric,value\n"; }

void ResultTable::append_csv(std::string& out) const {
  check_shape();
  for (const auto& row : rows) {
    std::string point;
    for (std::size_t k = 0; k < row.keys.size(); ++k) {
      if (k) point += ';';
      point += key_columns[k] + '=' + row.keys[k].render();
    }
    for (std::size_t v = 0; v < row.values.size(); ++v) {
      out += csv_escape(slug);
      out += ',';
      out += csv_escape(point);
      out += ',';
      out += csv_escape(value_columns[v]);
      out += ',';
      out += row.values[v].csv();
      out += '\n';
    }
  }
}

void ResultTable::append_json(std::string& out, int indent) const {
  check_shape();
  const std::string ind(static_cast<std::size_t>(indent), ' ');
  const std::string ind2 = ind + "  ";
  const std::string ind3 = ind2 + "  ";
  out += ind + "{\n";
  out += ind2 + "\"title\": " + json_escape(title) + ",\n";
  out += ind2 + "\"slug\": " + json_escape(slug) + ",\n";
  const auto name_array = [&](const char* field,
                              const std::vector<std::string>& names) {
    out += ind2 + '"' + field + "\": [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) out += ", ";
      out += json_escape(names[i]);
    }
    out += "],\n";
  };
  name_array("key_columns", key_columns);
  name_array("value_columns", value_columns);
  out += ind2 + "\"rows\": [";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += r ? ",\n" : "\n";
    out += ind3 + "{\"keys\": {";
    for (std::size_t k = 0; k < rows[r].keys.size(); ++k) {
      if (k) out += ", ";
      out += json_escape(key_columns[k]) + ": " +
             json_escape(rows[r].keys[k].render());
    }
    out += "}, \"values\": {";
    for (std::size_t v = 0; v < rows[r].values.size(); ++v) {
      if (v) out += ", ";
      out += json_escape(value_columns[v]) + ": " + rows[r].values[v].json();
    }
    out += "}}";
  }
  out += rows.empty() ? "]\n" : "\n" + ind2 + "]\n";
  out += ind + "}";
}

SweepRunner::SweepRunner(int threads) : threads_(threads < 1 ? 1 : threads) {}

void SweepRunner::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&] {
    for (;;) {
      // Fail fast: once any job throws, stop claiming points instead of
      // grinding through the (possibly hours-long) remainder.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ResultTable SweepRunner::run(const SweepSpec& spec) const {
  ResultTable table;
  table.title = spec.title;
  table.slug = spec.slug;
  table.key_columns = spec.key_columns;
  table.value_columns = spec.value_columns;
  table.rows.resize(spec.points.size());
  run_indexed(spec.points.size(), [&](std::size_t i) {
    const SweepPoint& p = spec.points[i];
    const ExperimentResult result = run_fat_tree_experiment(p.cfg);
    table.rows[i] = ResultTable::Row{p.keys, spec.metrics(p.cfg, result)};
    if (spec.observe) spec.observe(i, p.cfg, result);
  });
  return table;
}

}  // namespace powertcp::harness
