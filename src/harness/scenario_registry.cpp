#include "harness/scenario_registry.hpp"

#include <stdexcept>

namespace powertcp::harness {

ScenarioRegistry::ScenarioRegistry() { register_builtin_scenarios(*this); }

const ScenarioRegistry& ScenarioRegistry::instance() {
  static const ScenarioRegistry kRegistry;
  return kRegistry;
}

void ScenarioRegistry::add(ScenarioEntry entry) {
  if (entry.name.empty()) {
    throw std::logic_error("ScenarioRegistry: entry needs a non-empty name");
  }
  if (!entry.load) {
    throw std::logic_error("ScenarioRegistry: kind '" + entry.name +
                           "' needs a loader");
  }
  if (find(entry.name) != nullptr) {
    throw std::logic_error("ScenarioRegistry: kind '" + entry.name +
                           "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const ScenarioEntry* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const ScenarioEntry& ScenarioRegistry::at(const std::string& name) const {
  const ScenarioEntry* e = find(name);
  if (e == nullptr) {
    throw std::invalid_argument("unknown scenario kind '" + name +
                                "'; known: " + joined_names());
  }
  return *e;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::string ScenarioRegistry::joined_names() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace powertcp::harness
