#include "harness/scenarios.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "cc/registry.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/percentiles.hpp"
#include "stats/timeseries.hpp"

namespace powertcp::harness {

namespace {

const cc::Scheme& resolve(const SchemeRun& run) {
  return cc::Registry::instance().at(run.scheme);
}

}  // namespace

IncastSeries run_incast_scenario(const IncastScenario& cfg,
                                 const SchemeRun& scheme_run) {
  const cc::Scheme& scheme = resolve(scheme_run);

  sim::Simulator simulator(cfg.sim_queue);
  net::Network network(simulator);
  topo::FatTreeConfig topo_cfg = cfg.topo;
  topo_cfg.ecn = scheme.needs.ecn;
  topo_cfg.priority_bands = scheme.needs.priority_bands;
  topo::FatTree fabric(network, topo_cfg);

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  params.expected_flows = cfg.expected_flows;

  const int receiver = 0;
  const int long_sender = fabric.host_count() - 1;
  stats::ThroughputSeries goodput(0, cfg.bin);
  fabric.host(receiver).set_data_callback(
      [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);

  if (cfg.query_bytes > 0 && cfg.fan_in < 1) {
    throw std::invalid_argument(
        "IncastScenario: query_bytes > 0 needs fan_in >= 1");
  }
  // Paper setup: `long_companions` long flows join the long flow's
  // receiver at `burst_at`; the large-scale case additionally fans a
  // query of `query_bytes` total across every other server (each
  // responder sends query_bytes / fan_in, ~8 KB at the paper's 2MB/255).
  const std::int64_t burst_bytes =
      cfg.query_bytes > 0
          ? std::max<std::int64_t>(1'000, cfg.query_bytes / cfg.fan_in)
          : cfg.long_flow_bytes;
  const auto responder_of = [&](int i) {
    return topo_cfg.servers_per_tor +
           i % (fabric.host_count() - topo_cfg.servers_per_tor - 1);
  };

  if (scheme.message_transport) {
    const host::HomaConfig hc =
        host::homa_config_from_params(scheme_run.params, params);
    for (int h = 0; h < fabric.host_count(); ++h) {
      fabric.host(h).enable_homa(hc);
    }
    host::Host& ls = fabric.host(long_sender);
    const std::int64_t long_bytes = cfg.long_flow_bytes;
    simulator.schedule_at(0, [&ls, &fabric, receiver, long_bytes] {
      ls.homa()->send_message(1, fabric.host_node(receiver), long_bytes);
    });
    for (int i = 0; i < cfg.long_companions; ++i) {
      host::Host& h = fabric.host(topo_cfg.servers_per_tor + 1 + i);
      const net::FlowId fid = static_cast<net::FlowId>(10 + i);
      simulator.schedule_at(cfg.burst_at,
                            [&h, fid, &fabric, receiver, long_bytes] {
                              h.homa()->send_message(
                                  fid, fabric.host_node(receiver), long_bytes);
                            });
    }
    for (int i = 0; cfg.query_bytes > 0 && i < cfg.fan_in; ++i) {
      host::Host& h = fabric.host(responder_of(i));
      const net::FlowId fid = static_cast<net::FlowId>(100 + i);
      simulator.schedule_at(cfg.burst_at, [&h, fid, &fabric, receiver,
                                           burst_bytes] {
        h.homa()->send_message(fid, fabric.host_node(receiver), burst_bytes);
      });
    }
  } else {
    const cc::FlowCcFactory factory =
        scheme.make(scheme_run.params, cc::SchemeTopology{});
    const auto endpoints = [&](int src_host) {
      return cc::FlowEndpoints{fabric.tor_of_host(src_host),
                               fabric.tor_of_host(receiver)};
    };
    fabric.host(long_sender)
        .start_flow(1, fabric.host_node(receiver), cfg.long_flow_bytes,
                    factory(params, endpoints(long_sender)), params, 0);
    for (int i = 0; i < cfg.long_companions; ++i) {
      const int responder = topo_cfg.servers_per_tor + 1 + i;
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(10 + i), fabric.host_node(receiver),
          cfg.long_flow_bytes, factory(params, endpoints(responder)), params,
          cfg.burst_at);
    }
    for (int i = 0; cfg.query_bytes > 0 && i < cfg.fan_in; ++i) {
      const int responder = responder_of(i);
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(100 + i), fabric.host_node(receiver),
          burst_bytes, factory(params, endpoints(responder)), params,
          cfg.burst_at);
    }
  }

  simulator.run_until(cfg.horizon);

  IncastSeries out;
  const auto bins = static_cast<std::size_t>(cfg.horizon / cfg.bin);
  for (std::size_t b = 0; b < bins; ++b) {
    out.gbps.push_back(goodput.gbps(b));
    out.queue_kb.push_back(
        static_cast<double>(queue.at(goodput.bin_start(b) + cfg.bin / 2)) /
        1e3);
  }
  return out;
}

ResultTable incast_table(const SweepRunner& runner, const IncastScenario& cfg,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug, const std::string& title) {
  std::vector<std::function<IncastSeries()>> jobs;
  jobs.reserve(schemes.size());
  for (const auto& s : schemes) {
    jobs.push_back([cfg, s] { return run_incast_scenario(cfg, s); });
  }
  const std::vector<IncastSeries> rows = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  for (const auto& s : schemes) {
    t.value_columns.push_back(s.display() + " gbps");
    t.value_columns.push_back(s.display() + " qKB");
  }
  const auto bins = rows.front().gbps.size();
  for (std::size_t b = 0; b < bins; b += 2) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(static_cast<sim::TimePs>(b) * cfg.bin))};
    for (const auto& r : rows) {
      row.values.push_back(Cell(r.gbps[b], 1));
      row.values.push_back(Cell(r.queue_kb[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

RdcnResult run_rdcn_scenario(const RdcnScenario& cfg,
                             const SchemeRun& scheme_run) {
  const cc::Scheme& scheme = resolve(scheme_run);
  if (scheme.message_transport) {
    throw std::invalid_argument("scheme '" + scheme_run.scheme +
                                "' is a message transport; the RDCN "
                                "scenario drives sender CC algorithms");
  }

  sim::Simulator simulator(cfg.sim_queue);
  net::Network network(simulator);
  topo::Rdcn rdcn(network, cfg.topo);

  cc::FlowParams params;
  params.host_bw = cfg.topo.host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  params.expected_flows = cfg.expected_flows;

  cc::SchemeTopology scheme_topo;
  scheme_topo.circuit = &rdcn.schedule();
  scheme_topo.circuit_bw_bps = cfg.topo.circuit_bw.bps();
  scheme_topo.packet_bw_bps = cfg.topo.packet_bw.bps();
  const cc::FlowCcFactory factory =
      scheme.make(scheme_run.params, scheme_topo);

  stats::ThroughputSeries goodput(0, cfg.bin);
  stats::QueueSeries voq;
  stats::Samples sojourns_us;
  rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).set_queue_monitor(&voq);
  const auto sojourn_cb = [&sojourns_us](sim::TimePs d) {
    sojourns_us.add(sim::to_microseconds(d));
  };
  rdcn.tor(0)
      .port(rdcn.tor(0).circuit_port_index())
      .set_sojourn_callback(sojourn_cb);
  rdcn.tor(0)
      .port(rdcn.tor(0).uplink_port_index())
      .set_sojourn_callback(sojourn_cb);

  for (int s = 0; s < cfg.topo.servers_per_tor; ++s) {
    const int dst_host = cfg.topo.servers_per_tor + s;  // rack 1
    rdcn.host(dst_host).set_data_callback(
        [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
          goodput.add_bytes(now, bytes);
        });
    rdcn.host(s).start_flow(static_cast<net::FlowId>(s + 1),
                            rdcn.host(dst_host).id(), cfg.flow_bytes,
                            factory(params, cc::FlowEndpoints{0, 1}), params,
                            0);
  }

  simulator.run_until(cfg.horizon);

  RdcnResult out;
  double day_bytes = 0, day_secs = 0;
  const auto bins = static_cast<std::size_t>(cfg.horizon / cfg.bin);
  for (std::size_t b = 0; b < bins; ++b) {
    const sim::TimePs t = goodput.bin_start(b);
    out.gbps.push_back(goodput.gbps(b));
    out.voq_kb.push_back(static_cast<double>(voq.at(t + cfg.bin / 2)) / 1e3);
    if (rdcn.schedule().active_peer(0, t) == 1 &&
        rdcn.schedule().active_peer(0, t + cfg.bin) == 1) {
      day_bytes += goodput.gbps(b) * sim::to_seconds(cfg.bin) / 8.0 * 1e9;
      day_secs += sim::to_seconds(cfg.bin);
    }
  }
  if (day_secs > 0) {
    out.circuit_utilization =
        day_bytes * 8.0 / day_secs / cfg.topo.circuit_bw.bps();
  }
  if (!sojourns_us.empty()) out.p99_sojourn_us = sojourns_us.percentile(99);
  return out;
}

ResultTable rdcn_timeseries_table(const SweepRunner& runner,
                                  const RdcnScenario& cfg,
                                  const std::vector<SchemeRun>& schemes,
                                  const std::string& slug,
                                  const std::string& title) {
  std::vector<std::function<RdcnResult()>> jobs;
  jobs.reserve(schemes.size());
  for (const auto& s : schemes) {
    jobs.push_back([cfg, s] { return run_rdcn_scenario(cfg, s); });
  }
  const std::vector<RdcnResult> results = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  for (const auto& s : schemes) {
    t.value_columns.push_back(s.display() + " gbps");
    t.value_columns.push_back(s.display() + " voqKB");
  }
  for (std::size_t b = 0; b < results.front().gbps.size(); b += 2) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(static_cast<sim::TimePs>(b) * cfg.bin))};
    for (const auto& r : results) {
      row.values.push_back(Cell(r.gbps[b], 1));
      row.values.push_back(Cell(r.voq_kb[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  // Day-time circuit utilization as a trailing summary row (the old
  // bench printed it as a footnote; a row keeps it in the CSV/JSON).
  ResultTable::Row util;
  util.keys = {Cell(std::string("util%"))};
  for (const auto& r : results) {
    util.values.push_back(Cell(r.circuit_utilization * 100, 0));
    util.values.push_back(Cell());
  }
  t.rows.push_back(std::move(util));
  return t;
}

ResultTable rdcn_latency_table(const SweepRunner& runner,
                               const RdcnScenario& cfg,
                               const std::vector<SchemeRun>& schemes,
                               const std::vector<double>& packet_gbps,
                               const std::string& slug,
                               const std::string& title) {
  // One independent simulation per (scheme, packet bandwidth) pair,
  // flattened onto the pool scheme-major so the table assembles in
  // declaration order.
  std::vector<std::function<RdcnResult()>> jobs;
  jobs.reserve(schemes.size() * packet_gbps.size());
  for (const auto& s : schemes) {
    for (const double gbps : packet_gbps) {
      RdcnScenario point = cfg;
      point.topo.packet_bw = sim::Bandwidth::gbps(gbps);
      jobs.push_back([point, s] { return run_rdcn_scenario(point, s); });
    }
  }
  const std::vector<RdcnResult> results = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"scheme"};
  for (const double gbps : packet_gbps) {
    t.value_columns.push_back(Cell(gbps, 0).render() + "G p99us");
  }
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    ResultTable::Row row;
    row.keys = {Cell(schemes[s].display())};
    for (std::size_t g = 0; g < packet_gbps.size(); ++g) {
      row.values.push_back(
          Cell(results[s * packet_gbps.size() + g].p99_sojourn_us, 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace powertcp::harness
