#include "harness/scenarios.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cc/mix.hpp"
#include "cc/registry.hpp"
#include "harness/shard_setup.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/percentiles.hpp"
#include "stats/timeseries.hpp"

namespace powertcp::harness {

namespace {

const cc::Scheme& resolve(const SchemeRun& run) {
  return cc::Registry::instance().at(run.scheme);
}

/// Hosts outside the receiver's rack (rack 0), excluding the long
/// sender — the round-robin pool both fan-in scenarios draw
/// responders from. Throws when the fabric has no such host: the
/// responder modulo would otherwise divide by zero.
int checked_remote_responders(const topo::FatTree& fabric,
                              int servers_per_tor, const char* scenario) {
  const int remote = fabric.host_count() - servers_per_tor - 1;
  if (remote < 1) {
    throw std::invalid_argument(
        std::string(scenario) +
        ": the fan-in needs at least one host outside the receiver's rack "
        "(grow pods/tors_per_pod)");
  }
  return remote;
}

/// Appends one flight table per scheme whose result carried a
/// recording (telemetry off leaves `flight_out` untouched).
template <typename Result>
void append_flight_tables(std::vector<ResultTable>* flight_out,
                          const std::vector<Result>& results,
                          const std::vector<SchemeRun>& schemes,
                          const std::string& slug_prefix,
                          const std::string& tap_desc) {
  if (flight_out == nullptr) return;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    if (results[i].flight.empty()) continue;
    flight_out->push_back(flight_table(
        results[i].flight, slug_prefix + "_flight_" + schemes[i].display(),
        schemes[i].display() + " flight recorder (" + tap_desc + ")"));
  }
}

}  // namespace

namespace {

std::pair<IncastSeries, std::uint64_t> run_incast_point(
    const IncastScenario& cfg, const SchemeRun& scheme_run, int threads) {
  const cc::Scheme& scheme = resolve(scheme_run);
  // Partitioned engine (per-pod cut); monitors live on pod 0 = shard 0.
  ShardedPoint point(topo::fat_tree_shard_plan(cfg.topo, threads),
                     cfg.sim_queue);
  sim::Simulator& simulator = point.sim();
  net::Network& network = point.network;
  topo::FatTreeConfig topo_cfg = cfg.topo;
  topo_cfg.ecn = scheme.needs.ecn;
  topo_cfg.priority_bands = scheme.needs.priority_bands;
  topo::FatTree fabric(network, topo_cfg);
  apply_burst(cfg.burst, point.engine, network);

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  params.expected_flows = cfg.expected_flows;

  const int receiver = 0;
  const int long_sender = fabric.host_count() - 1;
  stats::ThroughputSeries goodput(0, cfg.bin);
  fabric.host(receiver).set_data_callback(
      [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);

  if (cfg.query_bytes > 0 && cfg.fan_in < 1) {
    throw std::invalid_argument(
        "IncastScenario: query_bytes > 0 needs fan_in >= 1");
  }
  // Paper setup: `long_companions` long flows join the long flow's
  // receiver at `burst_at`; the large-scale case additionally fans a
  // query of `query_bytes` total across every other server (each
  // responder sends query_bytes / fan_in, ~8 KB at the paper's 2MB/255).
  const std::int64_t burst_bytes =
      cfg.query_bytes > 0
          ? std::max<std::int64_t>(1'000, cfg.query_bytes / cfg.fan_in)
          : cfg.long_flow_bytes;
  const int remote_responders =
      cfg.query_bytes > 0
          ? checked_remote_responders(fabric, topo_cfg.servers_per_tor,
                                      "IncastScenario")
          : 1;  // responder_of is never called without a query fan-in
  const auto responder_of = [&](int i) {
    return topo_cfg.servers_per_tor + i % remote_responders;
  };

  if (scheme.message_transport) {
    const host::HomaConfig hc =
        host::homa_config_from_params(scheme_run.params, params);
    for (int h = 0; h < fabric.host_count(); ++h) {
      fabric.host(h).enable_homa(hc);
    }
    host::Host& ls = fabric.host(long_sender);
    const std::int64_t long_bytes = cfg.long_flow_bytes;
    // Message starts are scheduled on each sender's own shard.
    ls.simulator().schedule_at(0, [&ls, &fabric, receiver, long_bytes] {
      ls.homa()->send_message(1, fabric.host_node(receiver), long_bytes);
    });
    for (int i = 0; i < cfg.long_companions; ++i) {
      host::Host& h = fabric.host(topo_cfg.servers_per_tor + 1 + i);
      const net::FlowId fid = static_cast<net::FlowId>(10 + i);
      h.simulator().schedule_at(cfg.burst_at,
                                [&h, fid, &fabric, receiver, long_bytes] {
                                  h.homa()->send_message(
                                      fid, fabric.host_node(receiver),
                                      long_bytes);
                                });
    }
    for (int i = 0; cfg.query_bytes > 0 && i < cfg.fan_in; ++i) {
      host::Host& h = fabric.host(responder_of(i));
      const net::FlowId fid = static_cast<net::FlowId>(100 + i);
      h.simulator().schedule_at(cfg.burst_at, [&h, fid, &fabric, receiver,
                                               burst_bytes] {
        h.homa()->send_message(fid, fabric.host_node(receiver), burst_bytes);
      });
    }
  } else {
    const cc::FlowCcFactory factory =
        scheme.make(scheme_run.params, cc::SchemeTopology{});
    const auto endpoints = [&](int src_host) {
      return cc::FlowEndpoints{fabric.tor_of_host(src_host),
                               fabric.tor_of_host(receiver)};
    };
    fabric.host(long_sender)
        .start_flow(1, fabric.host_node(receiver), cfg.long_flow_bytes,
                    factory(params, endpoints(long_sender)), params, 0);
    for (int i = 0; i < cfg.long_companions; ++i) {
      const int responder = topo_cfg.servers_per_tor + 1 + i;
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(10 + i), fabric.host_node(receiver),
          cfg.long_flow_bytes, factory(params, endpoints(responder)), params,
          cfg.burst_at);
    }
    for (int i = 0; cfg.query_bytes > 0 && i < cfg.fan_in; ++i) {
      const int responder = responder_of(i);
      fabric.host(responder).start_flow(
          static_cast<net::FlowId>(100 + i), fabric.host_node(receiver),
          burst_bytes, factory(params, endpoints(responder)), params,
          cfg.burst_at);
    }
  }

  // The flight tap watches the same bottleneck the queue monitor does,
  // plus the long foreground flow's sender (message transports have no
  // sender window; those channels read 0).
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled) {
    tap.emplace(cfg.telemetry, simulator,
                fabric.tor(0).port(fabric.tor_down_port(receiver)),
                scheme.message_transport ? nullptr : &fabric.host(long_sender),
                1, params.base_rtt, cfg.horizon);
  }

  point.engine.run_until(cfg.horizon);

  IncastSeries out;
  const auto bins = static_cast<std::size_t>(cfg.horizon / cfg.bin);
  for (std::size_t b = 0; b < bins; ++b) {
    out.gbps.push_back(goodput.gbps(b));
    out.queue_kb.push_back(
        static_cast<double>(queue.at(goodput.bin_start(b) + cfg.bin / 2)) /
        1e3);
  }
  if (tap) out.flight = tap->series();
  return {std::move(out), point.engine.boundary_ambiguities()};
}

}  // namespace

IncastSeries run_incast_scenario(const IncastScenario& cfg,
                                 const SchemeRun& scheme_run) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, cfg.telemetry.enabled),
      [&](int threads) { return run_incast_point(cfg, scheme_run, threads); });
}

ResultTable incast_table(const SweepRunner& runner, const IncastScenario& cfg,
                         const std::vector<SchemeRun>& schemes,
                         const std::string& slug, const std::string& title,
                         std::vector<ResultTable>* flight_out) {
  std::vector<std::function<IncastSeries()>> jobs;
  jobs.reserve(schemes.size());
  for (const auto& s : schemes) {
    jobs.push_back([cfg, s] { return run_incast_scenario(cfg, s); });
  }
  const std::vector<IncastSeries> rows = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  for (const auto& s : schemes) {
    t.value_columns.push_back(s.display() + " gbps");
    t.value_columns.push_back(s.display() + " qKB");
  }
  const auto bins = rows.front().gbps.size();
  for (std::size_t b = 0; b < bins; b += 2) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(static_cast<sim::TimePs>(b) * cfg.bin))};
    for (const auto& r : rows) {
      row.values.push_back(Cell(r.gbps[b], 1));
      row.values.push_back(Cell(r.queue_kb[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  append_flight_tables(flight_out, rows, schemes, slug,
                       "receiver ToR downlink + long flow");
  return t;
}

namespace {

std::pair<RdcnResult, std::uint64_t> run_rdcn_point(
    const RdcnScenario& cfg, const SchemeRun& scheme_run, int threads) {
  const cc::Scheme& scheme = resolve(scheme_run);
  if (scheme.message_transport) {
    throw std::invalid_argument("scheme '" + scheme_run.scheme +
                                "' is a message transport; the RDCN "
                                "scenario drives sender CC algorithms");
  }

  // Partitioned engine: switching stays on shard 0, hosts spread by
  // rack. Monitors tap ToR 0 (shard 0); the rack-1 goodput callback
  // fires only on rack 1's shard thread (single writer).
  ShardedPoint point(topo::rdcn_shard_plan(cfg.topo, threads), cfg.sim_queue);
  sim::Simulator& simulator = point.sim();
  net::Network& network = point.network;
  topo::Rdcn rdcn(network, cfg.topo);
  apply_burst(cfg.burst, point.engine, network);

  cc::FlowParams params;
  params.host_bw = cfg.topo.host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  params.expected_flows = cfg.expected_flows;

  cc::SchemeTopology scheme_topo;
  scheme_topo.circuit = &rdcn.schedule();
  scheme_topo.circuit_bw_bps = cfg.topo.circuit_bw.bps();
  scheme_topo.packet_bw_bps = cfg.topo.packet_bw.bps();
  const cc::FlowCcFactory factory =
      scheme.make(scheme_run.params, scheme_topo);

  stats::ThroughputSeries goodput(0, cfg.bin);
  stats::QueueSeries voq;
  stats::Samples sojourns_us;
  rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).set_queue_monitor(&voq);
  const auto sojourn_cb = [&sojourns_us](sim::TimePs d) {
    sojourns_us.add(sim::to_microseconds(d));
  };
  rdcn.tor(0)
      .port(rdcn.tor(0).circuit_port_index())
      .set_sojourn_callback(sojourn_cb);
  rdcn.tor(0)
      .port(rdcn.tor(0).uplink_port_index())
      .set_sojourn_callback(sojourn_cb);

  for (int s = 0; s < cfg.topo.servers_per_tor; ++s) {
    const int dst_host = cfg.topo.servers_per_tor + s;  // rack 1
    rdcn.host(dst_host).set_data_callback(
        [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
          goodput.add_bytes(now, bytes);
        });
    rdcn.host(s).start_flow(static_cast<net::FlowId>(s + 1),
                            rdcn.host(dst_host).id(), cfg.flow_bytes,
                            factory(params, cc::FlowEndpoints{0, 1}), params,
                            0);
  }

  // Flight tap: ToR-0's circuit port (the VOQ the paper plots) plus
  // the telemetry.flow-th rack-0 flow, clamped to the rack.
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled) {
    const auto idx = static_cast<int>(
        std::min<std::int64_t>(cfg.telemetry.flow, cfg.topo.servers_per_tor));
    tap.emplace(cfg.telemetry, simulator,
                rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()),
                &rdcn.host(idx - 1), idx, params.base_rtt, cfg.horizon);
  }

  point.engine.run_until(cfg.horizon);

  RdcnResult out;
  double day_bytes = 0, day_secs = 0;
  const auto bins = static_cast<std::size_t>(cfg.horizon / cfg.bin);
  for (std::size_t b = 0; b < bins; ++b) {
    const sim::TimePs t = goodput.bin_start(b);
    out.gbps.push_back(goodput.gbps(b));
    out.voq_kb.push_back(static_cast<double>(voq.at(t + cfg.bin / 2)) / 1e3);
    if (rdcn.schedule().active_peer(0, t) == 1 &&
        rdcn.schedule().active_peer(0, t + cfg.bin) == 1) {
      day_bytes += goodput.gbps(b) * sim::to_seconds(cfg.bin) / 8.0 * 1e9;
      day_secs += sim::to_seconds(cfg.bin);
    }
  }
  if (day_secs > 0) {
    out.circuit_utilization =
        day_bytes * 8.0 / day_secs / cfg.topo.circuit_bw.bps();
  }
  if (!sojourns_us.empty()) out.p99_sojourn_us = sojourns_us.percentile(99);
  if (tap) out.flight = tap->series();
  return {std::move(out), point.engine.boundary_ambiguities()};
}

}  // namespace

RdcnResult run_rdcn_scenario(const RdcnScenario& cfg,
                             const SchemeRun& scheme_run) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, cfg.telemetry.enabled),
      [&](int threads) { return run_rdcn_point(cfg, scheme_run, threads); });
}

ResultTable rdcn_timeseries_table(const SweepRunner& runner,
                                  const RdcnScenario& cfg,
                                  const std::vector<SchemeRun>& schemes,
                                  const std::string& slug,
                                  const std::string& title,
                                  std::vector<ResultTable>* flight_out) {
  std::vector<std::function<RdcnResult()>> jobs;
  jobs.reserve(schemes.size());
  for (const auto& s : schemes) {
    jobs.push_back([cfg, s] { return run_rdcn_scenario(cfg, s); });
  }
  const std::vector<RdcnResult> results = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  for (const auto& s : schemes) {
    t.value_columns.push_back(s.display() + " gbps");
    t.value_columns.push_back(s.display() + " voqKB");
  }
  for (std::size_t b = 0; b < results.front().gbps.size(); b += 2) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(static_cast<sim::TimePs>(b) * cfg.bin))};
    for (const auto& r : results) {
      row.values.push_back(Cell(r.gbps[b], 1));
      row.values.push_back(Cell(r.voq_kb[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  // Day-time circuit utilization as a trailing summary row (the old
  // bench printed it as a footnote; a row keeps it in the CSV/JSON).
  ResultTable::Row util;
  util.keys = {Cell(std::string("util%"))};
  for (const auto& r : results) {
    util.values.push_back(Cell(r.circuit_utilization * 100, 0));
    util.values.push_back(Cell());
  }
  t.rows.push_back(std::move(util));
  append_flight_tables(flight_out, results, schemes, slug,
                       "ToR-0 circuit port + tapped rack-0 flow");
  return t;
}

namespace {

std::pair<DumbbellSeries, std::uint64_t> run_dumbbell_point(
    const DumbbellScenario& cfg, const SchemeRun& scheme_run, int threads) {
  const cc::Scheme& scheme = resolve(scheme_run);
  const int n_flows = static_cast<int>(cfg.flow_bytes.size());
  if (n_flows < 1) {
    throw std::invalid_argument("DumbbellScenario: needs at least one flow");
  }

  topo::DumbbellConfig topo_cfg = cfg.topo;
  topo_cfg.n_senders = n_flows;
  topo_cfg.ecn = scheme.needs.ecn;
  topo_cfg.priority_bands = scheme.needs.priority_bands;
  // Partitioned engine: senders spread across shards, switch and
  // receiver (every monitor) on shard 0.
  ShardedPoint point(topo::dumbbell_shard_plan(topo_cfg, threads),
                     cfg.sim_queue);
  sim::Simulator& simulator = point.sim();
  net::Network& network = point.network;
  topo::Dumbbell topo(network, topo_cfg);
  apply_burst(cfg.burst, point.engine, network);

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = n_flows;

  std::vector<stats::ThroughputSeries> series(
      static_cast<std::size_t>(n_flows), stats::ThroughputSeries(0, cfg.bin));
  const auto max_flow = static_cast<net::FlowId>(n_flows);
  topo.receiver().set_data_callback(
      [&series, max_flow](net::FlowId flow, std::int64_t bytes,
                          sim::TimePs now) {
        if (flow >= 1 && flow <= max_flow) {
          series[static_cast<std::size_t>(flow - 1)].add_bytes(now, bytes);
        }
      });

  if (scheme.message_transport) {
    const host::HomaConfig hc =
        host::homa_config_from_params(scheme_run.params, params);
    for (int i = 0; i < n_flows; ++i) topo.sender(i).enable_homa(hc);
    topo.receiver().enable_homa(hc);
    for (int i = 0; i < n_flows; ++i) {
      host::Host& s = topo.sender(i);
      const auto fid = static_cast<net::FlowId>(i + 1);
      const std::int64_t size = cfg.flow_bytes[static_cast<std::size_t>(i)];
      const net::NodeId dst = topo.receiver_node();
      s.simulator().schedule_at(i * cfg.stagger, [&s, fid, size, dst] {
        s.homa()->send_message(fid, dst, size);
      });
    }
  } else {
    const cc::FlowCcFactory factory =
        scheme.make(scheme_run.params, cc::SchemeTopology{});
    for (int i = 0; i < n_flows; ++i) {
      topo.sender(i).start_flow(static_cast<net::FlowId>(i + 1),
                                topo.receiver_node(),
                                cfg.flow_bytes[static_cast<std::size_t>(i)],
                                factory(params, cc::FlowEndpoints{}), params,
                                i * cfg.stagger);
    }
  }

  // Flight tap: the shared bottleneck plus the telemetry.flow-th flow
  // (sender flow-1), clamped to the flow count.
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled) {
    const auto idx = static_cast<int>(
        std::min<std::int64_t>(cfg.telemetry.flow, n_flows));
    tap.emplace(cfg.telemetry, simulator, topo.bottleneck_port(),
                scheme.message_transport ? nullptr : &topo.sender(idx - 1),
                idx, params.base_rtt, cfg.horizon);
  }

  point.engine.run_until(cfg.horizon);

  DumbbellSeries out;
  out.gbps.resize(static_cast<std::size_t>(n_flows));
  const auto stride = static_cast<std::size_t>(std::max(cfg.row_stride, 1));
  // Rows span the longest-lived flow, not flow 0: arrival order and
  // size order are both config-controlled (gbps() past a series' end
  // is 0).
  std::size_t bins = 0;
  for (const auto& s : series) bins = std::max(bins, s.bin_count());
  for (std::size_t b = 0; b < bins; b += stride) {
    out.bin_start.push_back(series[0].bin_start(b));
    for (std::size_t f = 0; f < static_cast<std::size_t>(n_flows); ++f) {
      out.gbps[f].push_back(series[f].gbps(b));
    }
  }
  if (tap) out.flight = tap->series();
  return {std::move(out), point.engine.boundary_ambiguities()};
}

}  // namespace

DumbbellSeries run_dumbbell_scenario(const DumbbellScenario& cfg,
                                     const SchemeRun& scheme_run) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, cfg.telemetry.enabled),
      [&](int threads) {
        return run_dumbbell_point(cfg, scheme_run, threads);
      });
}

ResultTable dumbbell_series_table(const DumbbellSeries& series,
                                  const std::string& slug,
                                  const std::string& title) {
  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"time"};
  for (std::size_t f = 0; f < series.gbps.size(); ++f) {
    t.value_columns.push_back("f" + std::to_string(f + 1));
  }
  for (std::size_t b = 0; b < series.bin_start.size(); ++b) {
    ResultTable::Row row;
    row.keys = {Cell(sim::format_time(series.bin_start[b]))};
    for (const auto& flow : series.gbps) {
      row.values.push_back(Cell(flow[b], 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

std::vector<ResultTable> dumbbell_fairness_tables(
    const SweepRunner& runner, const DumbbellScenario& cfg,
    const std::vector<SchemeRun>& schemes, const std::string& slug_prefix) {
  std::vector<std::function<DumbbellSeries()>> jobs;
  jobs.reserve(schemes.size());
  for (const auto& s : schemes) {
    jobs.push_back([cfg, s] { return run_dumbbell_scenario(cfg, s); });
  }
  const std::vector<DumbbellSeries> results = runner.map(jobs);

  std::vector<ResultTable> tables;
  tables.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const std::string name = schemes[i].display();
    tables.push_back(dumbbell_series_table(results[i], slug_prefix + "_" + name,
                                           name + " (Gbps per flow)"));
    if (!results[i].flight.empty()) {
      tables.push_back(flight_table(
          results[i].flight, slug_prefix + "_" + name + "_flight",
          name + " flight recorder (bottleneck port + tapped flow)"));
    }
  }
  return tables;
}

namespace {

std::pair<HomaOcIncastResult, std::uint64_t> run_homa_oc_incast_point(
    const HomaOcScenario& cfg, const SchemeRun& scheme_run, int fan_in,
    int threads) {
  const cc::Scheme& scheme = resolve(scheme_run);

  // Partitioned engine (per-pod cut); monitors live on pod 0 = shard 0.
  ShardedPoint point(topo::fat_tree_shard_plan(cfg.incast_topo, threads),
                     cfg.sim_queue);
  sim::Simulator& simulator = point.sim();
  net::Network& network = point.network;
  topo::FatTreeConfig topo_cfg = cfg.incast_topo;
  topo_cfg.ecn = scheme.needs.ecn;
  topo_cfg.priority_bands = scheme.needs.priority_bands;
  topo::FatTree fabric(network, topo_cfg);
  apply_burst(cfg.burst, point.engine, network);

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();
  const host::HomaConfig hc =
      host::homa_config_from_params(scheme_run.params, params);
  for (int h = 0; h < fabric.host_count(); ++h) fabric.host(h).enable_homa(hc);

  const int receiver = 0;
  stats::QueueSeries queue;
  fabric.tor(0).port(fabric.tor_down_port(receiver)).set_queue_monitor(&queue);
  stats::ThroughputSeries goodput(0, cfg.incast_bin);
  fabric.host(receiver).set_data_callback(
      [&goodput](net::FlowId, std::int64_t bytes, sim::TimePs now) {
        goodput.add_bytes(now, bytes);
      });

  // Long message from the far pod plus the synchronized burst.
  host::Host& ls = fabric.host(fabric.host_count() - 1);
  const std::int64_t long_bytes = cfg.long_message_bytes;
  ls.simulator().schedule_at(0, [&ls, &fabric, receiver, long_bytes] {
    ls.homa()->send_message(1, fabric.host_node(receiver), long_bytes);
  });
  const int remote_responders =
      fan_in > 0 ? checked_remote_responders(fabric, topo_cfg.servers_per_tor,
                                             "HomaOcScenario")
                 : 1;
  const std::int64_t burst_bytes = cfg.burst_message_bytes;
  for (int i = 0; i < fan_in; ++i) {
    const int responder = topo_cfg.servers_per_tor + i % remote_responders;
    host::Host& h = fabric.host(responder);
    const auto fid = static_cast<net::FlowId>(100 + i);
    h.simulator().schedule_at(cfg.burst_at, [&h, fid, &fabric, receiver,
                                             burst_bytes] {
      h.homa()->send_message(fid, fabric.host_node(receiver), burst_bytes);
    });
  }
  // Flight tap on the contended downlink; Homa has no sender window,
  // so the flow channels read 0 (no flow host to tap).
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled) {
    tap.emplace(cfg.telemetry, simulator,
                fabric.tor(0).port(fabric.tor_down_port(receiver)), nullptr, 1,
                params.base_rtt, cfg.incast_horizon);
  }

  point.engine.run_until(cfg.incast_horizon);

  HomaOcIncastResult out;
  out.peak_queue_kb = static_cast<double>(queue.max_bytes()) / 1e3;
  out.drops = fabric.total_drops();
  out.mean_goodput_gbps = goodput.mean_gbps(0, goodput.bin_count());
  if (tap) out.flight = tap->series();
  return {std::move(out), point.engine.boundary_ambiguities()};
}

}  // namespace

HomaOcIncastResult run_homa_oc_incast(const HomaOcScenario& cfg,
                                      const SchemeRun& scheme_run,
                                      int fan_in) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, cfg.telemetry.enabled),
      [&](int threads) {
        return run_homa_oc_incast_point(cfg, scheme_run, fan_in, threads);
      });
}

std::vector<ResultTable> homa_oc_tables(const SweepRunner& runner,
                                        const HomaOcScenario& cfg,
                                        const std::vector<SchemeRun>& schemes,
                                        const std::string& slug_prefix) {
  for (const auto& s : schemes) {
    if (!resolve(s).message_transport) {
      throw std::invalid_argument(
          "scheme '" + s.scheme +
          "' is not a receiver-driven message transport; the overcommitment "
          "sweep (kind homa_oc) drives message transports only");
    }
  }
  if (cfg.overcommit.empty()) {
    throw std::invalid_argument("HomaOcScenario: needs overcommit levels");
  }

  // Every (scheme, level) point is one independent simulation; the
  // injected `overcommit` param rides the scheme's declared tunables.
  const auto at_level = [](const SchemeRun& s, int oc) {
    SchemeRun run = s;
    run.params["overcommit"] = std::to_string(oc);
    return run;
  };

  DumbbellScenario fairness = cfg.fairness;
  fairness.sim_queue = cfg.sim_queue;
  fairness.sim_threads = cfg.sim_threads;
  fairness.telemetry = cfg.telemetry;
  fairness.burst = cfg.burst;
  std::vector<std::function<DumbbellSeries()>> fairness_jobs;
  fairness_jobs.reserve(schemes.size() * cfg.overcommit.size());
  std::vector<std::function<HomaOcIncastResult()>> incast_jobs;
  incast_jobs.reserve(schemes.size() * cfg.fan_in.size() *
                      cfg.overcommit.size());
  for (const auto& s : schemes) {
    for (const int oc : cfg.overcommit) {
      const SchemeRun run = at_level(s, oc);
      fairness_jobs.push_back(
          [fairness, run] { return run_dumbbell_scenario(fairness, run); });
    }
    for (const int fan : cfg.fan_in) {
      for (const int oc : cfg.overcommit) {
        const SchemeRun run = at_level(s, oc);
        incast_jobs.push_back(
            [cfg, run, fan] { return run_homa_oc_incast(cfg, run, fan); });
      }
    }
  }
  // One pool batch for both panels: every point is independent, so
  // incast simulations start as soon as workers free up instead of
  // waiting behind the slowest fairness run. Results land by index,
  // keeping the tables deterministic.
  std::vector<DumbbellSeries> fairness_results(fairness_jobs.size());
  std::vector<HomaOcIncastResult> incast_results(incast_jobs.size());
  runner.run_indexed(
      fairness_jobs.size() + incast_jobs.size(), [&](std::size_t i) {
        if (i < fairness_jobs.size()) {
          fairness_results[i] = fairness_jobs[i]();
        } else {
          incast_results[i - fairness_jobs.size()] =
              incast_jobs[i - fairness_jobs.size()]();
        }
      });

  std::vector<ResultTable> tables;
  std::size_t fairness_at = 0, incast_at = 0;
  for (const auto& s : schemes) {
    const std::string name = s.display();
    for (const int oc : cfg.overcommit) {
      const DumbbellSeries& r = fairness_results[fairness_at++];
      const std::string point =
          slug_prefix + "_" + name + "_oc" + std::to_string(oc);
      tables.push_back(dumbbell_series_table(
          r, point,
          name + " fairness, overcommitment " + std::to_string(oc) +
              " (Gbps per flow)"));
      if (!r.flight.empty()) {
        tables.push_back(flight_table(
            r.flight, point + "_flight",
            name + " oc" + std::to_string(oc) +
                " flight recorder (bottleneck port)"));
      }
    }
    for (const int fan : cfg.fan_in) {
      ResultTable t;
      t.title = name + " " + std::to_string(fan) +
                ":1 incast vs overcommitment (peak ToR queue, drops, "
                "receiver goodput)";
      t.slug = slug_prefix + "_" + name + "_incast" + std::to_string(fan) +
               "to1";
      t.key_columns = {"oc"};
      t.value_columns = {"peakQ(KB)", "drops", "goodput(Gbps)"};
      std::vector<ResultTable> flights;
      for (const int oc : cfg.overcommit) {
        const HomaOcIncastResult& r = incast_results[incast_at++];
        ResultTable::Row row;
        row.keys = {Cell(std::to_string(oc))};
        row.values = {Cell(r.peak_queue_kb, 1),
                      Cell::integer(static_cast<std::int64_t>(r.drops)),
                      Cell(r.mean_goodput_gbps, 1)};
        t.rows.push_back(std::move(row));
        if (!r.flight.empty()) {
          flights.push_back(flight_table(
              r.flight, t.slug + "_oc" + std::to_string(oc) + "_flight",
              name + " " + std::to_string(fan) + ":1 oc" + std::to_string(oc) +
                  " flight recorder (receiver ToR downlink)"));
        }
      }
      tables.push_back(std::move(t));
      for (auto& f : flights) tables.push_back(std::move(f));
    }
  }
  return tables;
}

namespace {

std::pair<MixedCcCellResult, std::uint64_t> run_mixed_cc_point(
    const MixedCcScenario& cfg, const MixedCcMix& mix,
    const std::string& aqm_kind, double rtt_us, std::int64_t buffer_bytes,
    int threads) {
  if (mix.members.empty() || mix.members.size() != mix.weights.size()) {
    throw std::invalid_argument("mixed_cc: malformed mix '" + mix.display +
                                "'");
  }
  std::vector<const cc::Scheme*> schemes;
  for (const auto& run : mix.members) {
    const cc::Scheme& s = resolve(run);
    if (s.message_transport) {
      throw std::invalid_argument(
          "mixed_cc: mix member '" + run.display() +
          "' is a receiver-driven message transport; it reshapes the fabric "
          "(priority bands, receiver grants) and cannot share a bottleneck "
          "with sender CC algorithms");
    }
    if (s.needs.circuit_schedule) {
      throw std::invalid_argument(
          "mixed_cc: mix member '" + run.display() +
          "' needs a circuit schedule; the coexistence dumbbell has none");
    }
    schemes.push_back(&s);
  }

  topo::DumbbellConfig topo_cfg = cfg.topo;
  topo_cfg.n_senders = cfg.senders;
  topo_cfg.link_delay = sim::from_seconds(rtt_us * 1e-6 / 4.0);
  if (buffer_bytes > 0) topo_cfg.buffer_bytes = buffer_bytes;
  topo_cfg.priority_bands = 0;
  topo_cfg.aqm = cfg.aqm;
  topo_cfg.aqm.kind = aqm_kind;
  // Registry ECN profiles carry per-Gbps thresholds (FatTreeConfig
  // semantics); the dumbbell takes absolute bytes, so scale by the
  // bottleneck line rate. First marking-dependent member wins — one
  // fabric, one profile, exactly the brownfield constraint.
  topo_cfg.ecn = net::EcnConfig{};
  for (const cc::Scheme* s : schemes) {
    if (s->needs.ecn.enabled) {
      const double gbps = topo_cfg.bottleneck_bw.gbps_value();
      topo_cfg.ecn = s->needs.ecn;
      topo_cfg.ecn.kmin_bytes = static_cast<std::int64_t>(
          static_cast<double>(topo_cfg.ecn.kmin_bytes) * gbps);
      topo_cfg.ecn.kmax_bytes = static_cast<std::int64_t>(
          static_cast<double>(topo_cfg.ecn.kmax_bytes) * gbps);
      break;
    }
  }
  // Partitioned engine: senders spread across shards; the receiver's
  // byte counters and the per-sender finish slots are each written by
  // exactly one shard thread.
  ShardedPoint point(topo::dumbbell_shard_plan(topo_cfg, threads),
                     cfg.sim_queue);
  net::Network& network = point.network;
  topo::Dumbbell topo(network, topo_cfg);
  apply_burst(cfg.burst, point.engine, network);

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = cfg.senders;

  std::vector<cc::FlowCcFactory> factories;
  factories.reserve(mix.members.size());
  for (std::size_t i = 0; i < mix.members.size(); ++i) {
    factories.push_back(
        schemes[i]->make(mix.members[i].params, cc::SchemeTopology{}));
  }
  std::vector<cc::MixMember> mm;
  mm.reserve(mix.members.size());
  for (std::size_t i = 0; i < mix.members.size(); ++i) {
    mm.push_back({mix.members[i].display(), mix.weights[i]});
  }
  const std::vector<int> assign =
      cc::mix_assignment(mm, cfg.senders, cfg.seed);

  const auto n = static_cast<std::size_t>(cfg.senders);
  std::vector<std::int64_t> bytes(n, 0);
  std::vector<sim::TimePs> finish(n, 0);
  std::vector<char> done(n, 0);
  topo.receiver().set_data_callback(
      [&bytes, n](net::FlowId flow, std::int64_t b, sim::TimePs) {
        if (flow >= 1 && static_cast<std::size_t>(flow) <= n) {
          bytes[static_cast<std::size_t>(flow - 1)] += b;
        }
      });
  for (int i = 0; i < cfg.senders; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    topo.sender(i).start_flow(
        static_cast<net::FlowId>(i + 1), topo.receiver_node(), cfg.flow_bytes,
        factories[static_cast<std::size_t>(assign[idx])](params,
                                                         cc::FlowEndpoints{}),
        params, 0,
        [&finish, &done, idx](const host::FlowCompletion& c) {
          finish[idx] = c.finish;
          done[idx] = 1;
        });
  }

  point.engine.run_until(cfg.horizon);

  // Per-flow delivery rate over the flow's own active window, so a
  // stack that finishes early is credited its speed rather than
  // averaged down by its idle tail.
  const double horizon_s = sim::to_seconds(cfg.horizon);
  std::vector<double> rate_gbps(n, 0);
  double sum = 0, sum_sq = 0;
  std::int64_t total_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double active_s = done[i] ? sim::to_seconds(finish[i]) : horizon_s;
    rate_gbps[i] = active_s > 0
                       ? static_cast<double>(bytes[i]) * 8.0 / active_s / 1e9
                       : 0.0;
    sum += rate_gbps[i];
    sum_sq += rate_gbps[i] * rate_gbps[i];
    total_bytes += bytes[i];
  }

  MixedCcCellResult out;
  if (sum_sq > 0) {
    out.jain = sum * sum / (static_cast<double>(n) * sum_sq);
  }
  out.agg_gbps = static_cast<double>(total_bytes) * 8.0 / horizon_s / 1e9;
  out.drops = topo.bottleneck_switch().total_drops();
  out.ecn_marks = topo.bottleneck_port().ecn_marks();

  const double ideal_s = sim::to_seconds(
      params.base_rtt + topo_cfg.bottleneck_bw.tx_time(cfg.flow_bytes));
  out.members.resize(mix.members.size());
  int done_total = 0;
  for (std::size_t m = 0; m < mix.members.size(); ++m) {
    auto& stat = out.members[m];
    stats::Samples slowdowns;
    std::int64_t member_bytes = 0;
    double member_rate = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(assign[i]) != m) continue;
      ++stat.hosts;
      member_bytes += bytes[i];
      member_rate += rate_gbps[i];
      if (done[i]) {
        ++stat.done;
        ++done_total;
        slowdowns.add(sim::to_seconds(finish[i]) / ideal_s);
      }
    }
    if (total_bytes > 0) {
      stat.share_pct = static_cast<double>(member_bytes) /
                       static_cast<double>(total_bytes) * 100.0;
    }
    if (stat.hosts > 0) stat.mean_gbps = member_rate / stat.hosts;
    if (!slowdowns.empty()) {
      stat.p50_slowdown = slowdowns.percentile(50);
      stat.p99_slowdown = slowdowns.percentile(99);
    }
  }
  out.done_frac =
      static_cast<double>(done_total) / static_cast<double>(cfg.senders);
  return {std::move(out), point.engine.boundary_ambiguities()};
}

}  // namespace

MixedCcCellResult run_mixed_cc_cell(const MixedCcScenario& cfg,
                                    const MixedCcMix& mix,
                                    const std::string& aqm_kind,
                                    double rtt_us,
                                    std::int64_t buffer_bytes) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, false), [&](int threads) {
        return run_mixed_cc_point(cfg, mix, aqm_kind, rtt_us, buffer_bytes,
                                  threads);
      });
}

std::vector<ResultTable> mixed_cc_tables(const SweepRunner& runner,
                                         const MixedCcScenario& cfg,
                                         const std::string& slug_prefix) {
  if (cfg.mixes.empty()) {
    throw std::invalid_argument("mixed_cc: needs at least one cc_mix");
  }
  struct CellKey {
    std::size_t mix;
    std::string aqm;
    double rtt_us;
    std::int64_t buffer;
  };
  std::vector<CellKey> cells;
  const std::vector<std::int64_t> buffers =
      cfg.buffer_bytes.empty() ? std::vector<std::int64_t>{0}
                               : cfg.buffer_bytes;
  for (std::size_t m = 0; m < cfg.mixes.size(); ++m) {
    for (const auto& aqm : cfg.aqm_kinds) {
      for (const double rtt : cfg.rtt_us) {
        for (const std::int64_t buf : buffers) {
          cells.push_back({m, aqm, rtt, buf});
        }
      }
    }
  }

  std::vector<std::function<MixedCcCellResult()>> jobs;
  jobs.reserve(cells.size());
  for (const auto& c : cells) {
    jobs.push_back([cfg, c] {
      return run_mixed_cc_cell(cfg, cfg.mixes[c.mix], c.aqm, c.rtt_us,
                               c.buffer);
    });
  }
  const std::vector<MixedCcCellResult> results = runner.map(jobs);

  const auto cell_keys = [&](const CellKey& c) {
    std::vector<Cell> keys;
    keys.push_back(Cell(cfg.mixes[c.mix].display));
    keys.push_back(Cell(c.aqm));
    keys.push_back(Cell(c.rtt_us, 1));
    keys.push_back(c.buffer > 0 ? Cell(static_cast<double>(c.buffer) / 1e3, 0)
                                : Cell(std::string("default")));
    return keys;
  };

  ResultTable fairness;
  fairness.title =
      "Coexistence fairness per (mix, aqm, rtt, buffer) cell — Jain's "
      "index over per-flow delivery rates";
  fairness.slug = slug_prefix + "_fairness";
  fairness.key_columns = {"mix", "aqm", "rttus", "bufKB"};
  fairness.value_columns = {"jain", "aggGbps", "done%", "drops", "marks"};

  ResultTable share;
  share.title = "Per-member throughput share (member bytes / total bytes)";
  share.slug = slug_prefix + "_share";
  share.key_columns = {"mix", "aqm", "rttus", "bufKB", "member"};
  share.value_columns = {"hosts", "share%", "meanGbps"};

  ResultTable fct;
  fct.title = "Per-member FCT slowdown (completed flows only)";
  fct.slug = slug_prefix + "_fct";
  fct.key_columns = {"mix", "aqm", "rttus", "bufKB", "member"};
  fct.value_columns = {"p50slow", "p99slow", "done"};

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellKey& c = cells[i];
    const MixedCcCellResult& r = results[i];

    ResultTable::Row row;
    row.keys = cell_keys(c);
    row.values = {Cell(r.jain, 3), Cell(r.agg_gbps, 2),
                  Cell(r.done_frac * 100.0, 0),
                  Cell::integer(static_cast<std::int64_t>(r.drops)),
                  Cell::integer(static_cast<std::int64_t>(r.ecn_marks))};
    fairness.rows.push_back(std::move(row));

    const MixedCcMix& mix = cfg.mixes[c.mix];
    for (std::size_t m = 0; m < mix.members.size(); ++m) {
      const auto& stat = r.members[m];
      ResultTable::Row srow;
      srow.keys = cell_keys(c);
      srow.keys.push_back(Cell(mix.members[m].display()));
      srow.values = {Cell::integer(stat.hosts), Cell(stat.share_pct, 1),
                     Cell(stat.mean_gbps, 2)};
      share.rows.push_back(std::move(srow));

      ResultTable::Row frow;
      frow.keys = cell_keys(c);
      frow.keys.push_back(Cell(mix.members[m].display()));
      frow.values = {Cell(stat.p50_slowdown, 2), Cell(stat.p99_slowdown, 2),
                     Cell::integer(stat.done)};
      fct.rows.push_back(std::move(frow));
    }
  }

  std::vector<ResultTable> tables;
  tables.push_back(std::move(fairness));
  tables.push_back(std::move(share));
  tables.push_back(std::move(fct));
  return tables;
}

ResultTable rdcn_latency_table(const SweepRunner& runner,
                               const RdcnScenario& cfg,
                               const std::vector<SchemeRun>& schemes,
                               const std::vector<double>& packet_gbps,
                               const std::string& slug,
                               const std::string& title) {
  // One independent simulation per (scheme, packet bandwidth) pair,
  // flattened onto the pool scheme-major so the table assembles in
  // declaration order.
  std::vector<std::function<RdcnResult()>> jobs;
  jobs.reserve(schemes.size() * packet_gbps.size());
  for (const auto& s : schemes) {
    for (const double gbps : packet_gbps) {
      RdcnScenario point = cfg;
      point.topo.packet_bw = sim::Bandwidth::gbps(gbps);
      // Telemetry rides the timeseries panel only; this summary sweep
      // has nowhere to put per-point recordings.
      point.telemetry.enabled = false;
      jobs.push_back([point, s] { return run_rdcn_scenario(point, s); });
    }
  }
  const std::vector<RdcnResult> results = runner.map(jobs);

  ResultTable t;
  t.title = title;
  t.slug = slug;
  t.key_columns = {"scheme"};
  for (const double gbps : packet_gbps) {
    t.value_columns.push_back(Cell(gbps, 0).render() + "G p99us");
  }
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    ResultTable::Row row;
    row.keys = {Cell(schemes[s].display())};
    for (std::size_t g = 0; g < packet_gbps.size(); ++g) {
      row.values.push_back(
          Cell(results[s * packet_gbps.size() + g].p99_sojourn_us, 1));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

}  // namespace powertcp::harness
