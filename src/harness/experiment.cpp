#include "harness/experiment.hpp"

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cc/registry.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_gen.hpp"

namespace powertcp::harness {

net::EcnConfig ecn_profile_for(const std::string& cc) {
  const cc::Scheme* scheme = cc::Registry::instance().find(cc);
  return scheme == nullptr ? net::EcnConfig{} : scheme->needs.ecn;
}

namespace {

workload::FlowSizeDistribution scaled_websearch(double scale) {
  if (scale == 1.0) return workload::FlowSizeDistribution::websearch();
  auto points = workload::FlowSizeDistribution::websearch().points();
  std::int64_t prev = 0;
  for (auto& [bytes, cdf] : points) {
    bytes = static_cast<std::int64_t>(static_cast<double>(bytes) * scale);
    // Aggressive scales can collapse neighboring CDF points; keep the
    // support strictly increasing.
    bytes = std::max(bytes, prev + 1);
    prev = bytes;
  }
  return workload::FlowSizeDistribution(std::move(points), /*min_bytes=*/100);
}

}  // namespace

ExperimentResult run_fat_tree_experiment(const FatTreeExperiment& cfg) {
  // The registry entry carries everything scheme-specific: the fabric
  // features to configure, the tunable parameters, and the factory (or
  // the message-transport flag) — no scheme is special-cased by name.
  // A cc_mix run resolves one entry per member instead; the hosts then
  // share a fabric shaped by the first marking-dependent member.
  const bool mixed = !cfg.cc_mix.empty();
  const cc::Scheme* single =
      mixed ? nullptr : &cc::Registry::instance().at(cfg.cc);
  std::vector<const cc::Scheme*> members;
  for (const auto& m : cfg.cc_mix) {
    const cc::Scheme& s = cc::Registry::instance().at(m.cc);
    if (s.message_transport) {
      throw std::invalid_argument(
          "cc_mix member '" + m.cc +
          "' is a receiver-driven message transport; it reshapes the fabric "
          "(priority bands, receiver grants) and cannot share one with "
          "sender CC algorithms");
    }
    members.push_back(&s);
  }

  sim::Simulator simulator(cfg.sim_queue);
  net::Network network(simulator);

  topo::FatTreeConfig topo_cfg = cfg.topo;
  if (single != nullptr) {
    topo_cfg.ecn = single->needs.ecn;
    topo_cfg.priority_bands = single->needs.priority_bands;
  } else {
    topo_cfg.ecn = net::EcnConfig{};
    for (const cc::Scheme* s : members) {
      if (s->needs.ecn.enabled) {
        topo_cfg.ecn = s->needs.ecn;
        break;
      }
    }
    topo_cfg.priority_bands = 0;
  }
  topo_cfg.int_enabled = true;
  topo::FatTree fabric(network, topo_cfg);
  apply_burst(cfg.burst, simulator, network);

  ExperimentResult result;
  result.tau = fabric.max_base_rtt();

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = result.tau;
  params.expected_flows = cfg.expected_flows;

  // ---- workload plan ----
  sim::Rng rng(cfg.seed);
  const auto dist = scaled_websearch(cfg.size_scale);
  workload::PoissonConfig pc;
  pc.load_per_host = fabric.host_load_for_uplink_load(cfg.uplink_load);
  pc.host_bw = topo_cfg.host_bw;
  pc.start = 0;
  pc.stop = cfg.duration;
  pc.n_hosts = fabric.host_count();
  pc.hosts_per_group = 0;  // any remote host (paper: uniform)
  std::vector<workload::FlowArrival> plan =
      workload::generate_poisson(pc, dist, rng);

  if (cfg.incast) {
    workload::IncastConfig ic;
    ic.requests_per_sec = cfg.incast_requests_per_sec;
    ic.request_bytes = cfg.incast_request_bytes;
    ic.fan_in = cfg.incast_fan_in;
    ic.start = 0;
    ic.stop = cfg.duration;
    ic.n_hosts = fabric.host_count();
    ic.hosts_per_group = topo_cfg.servers_per_tor;  // other racks only
    auto bursts = workload::generate_incast(ic, rng);
    plan.insert(plan.end(), bursts.begin(), bursts.end());
  }
  result.flows_started = plan.size();

  // ---- ideal FCT model: line-rate transfer plus one base RTT ----
  const auto ideal_fct = [&](std::int64_t bytes) {
    return result.tau + topo_cfg.host_bw.tx_time(bytes);
  };

  // ---- flow setup ----
  cc::ParamMap scheme_params = cfg.cc_params;
  if (single != nullptr && single->experiment_defaults) {
    single->experiment_defaults(params, scheme_params);
  }
  if (single != nullptr && single->message_transport) {
    host::HomaConfig hc = host::homa_config_from_params(scheme_params, params);
    if (scheme_params.count("overcommit") == 0) {
      hc.overcommit = cfg.homa_overcommit;
    }
    for (int h = 0; h < fabric.host_count(); ++h) {
      fabric.host(h).enable_homa(hc).set_message_callback(
          [&result, &ideal_fct](const host::MessageCompletion& done) {
            stats::FlowRecord rec;
            rec.flow_id = done.message;
            rec.size_bytes = done.size_bytes;
            rec.start = done.start;
            rec.finish = done.finish;
            rec.ideal = ideal_fct(done.size_bytes);
            result.fct.record(rec);
            ++result.flows_completed;
          });
    }
    net::FlowId next_id = 1;
    for (const auto& arrival : plan) {
      const net::FlowId id = next_id++;
      host::Host& src = fabric.host(arrival.src_host);
      const net::NodeId dst = fabric.host_node(arrival.dst_host);
      const std::int64_t size = arrival.size_bytes;
      simulator.schedule_at(arrival.start, [&src, id, dst, size] {
        src.homa()->send_message(id, dst, size);
      });
    }
  } else {
    // One factory per mix member (or the single scheme as a one-member
    // "mix"); each host draws from the factory its assignment pins.
    std::vector<cc::FlowCcFactory> factories;
    if (mixed) {
      std::vector<cc::MixMember> mm;
      for (std::size_t i = 0; i < cfg.cc_mix.size(); ++i) {
        cc::ParamMap member_params = cfg.cc_mix[i].cc_params;
        if (members[i]->experiment_defaults) {
          members[i]->experiment_defaults(params, member_params);
        }
        factories.push_back(
            members[i]->make(member_params, cc::SchemeTopology{}));
        mm.push_back({cfg.cc_mix[i].cc, cfg.cc_mix[i].weight});
      }
      result.host_member =
          cc::mix_assignment(mm, fabric.host_count(), cfg.seed);
      result.member_fct.resize(cfg.cc_mix.size());
    } else {
      factories.push_back(single->make(scheme_params, cc::SchemeTopology{}));
    }
    net::FlowId next_id = 1;
    for (const auto& arrival : plan) {
      const net::FlowId id = next_id++;
      const cc::FlowEndpoints endpoints{fabric.tor_of_host(arrival.src_host),
                                        fabric.tor_of_host(arrival.dst_host)};
      const int member =
          mixed ? result.host_member[static_cast<std::size_t>(
                      arrival.src_host)]
                : 0;
      fabric.host(arrival.src_host)
          .start_flow(id, fabric.host_node(arrival.dst_host),
                      arrival.size_bytes,
                      factories[static_cast<std::size_t>(member)](params,
                                                                  endpoints),
                      params, arrival.start,
                      [&result, &ideal_fct,
                       member](const host::FlowCompletion& c) {
                        stats::FlowRecord rec;
                        rec.flow_id = c.flow;
                        rec.size_bytes = c.size_bytes;
                        rec.start = c.start;
                        rec.finish = c.finish;
                        rec.ideal = ideal_fct(c.size_bytes);
                        result.fct.record(rec);
                        if (!result.member_fct.empty()) {
                          result.member_fct[static_cast<std::size_t>(member)]
                              .record(rec);
                        }
                        ++result.flows_completed;
                      });
    }
  }

  // ---- fabric queue sampling (ToR uplinks, Fig. 7g style) ----
  std::vector<net::EgressPort*> uplinks;
  for (int t = 0; t < fabric.tor_count(); ++t) {
    for (const int p : fabric.tor_uplink_ports(t)) {
      uplinks.push_back(&fabric.tor(t).port(p));
    }
  }
  // Flight tap: the first ToR uplink (the load target of the sweep)
  // plus the telemetry.flow-th planned arrival's sender, when that
  // arrival exists and the scheme has a sender window.
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled && !uplinks.empty()) {
    host::Host* tap_host = nullptr;
    const bool message_transport =
        single != nullptr && single->message_transport;
    if (!message_transport && cfg.telemetry.flow >= 1 &&
        static_cast<std::size_t>(cfg.telemetry.flow) <= plan.size()) {
      tap_host = &fabric.host(
          plan[static_cast<std::size_t>(cfg.telemetry.flow - 1)].src_host);
    }
    tap.emplace(cfg.telemetry, simulator, *uplinks.front(), tap_host,
                cfg.telemetry.flow, result.tau, cfg.duration);
  }

  std::function<void()> sample = [&] {
    for (const auto* port : uplinks) {
      result.uplink_queue_bytes.add(
          static_cast<double>(port->queue_bytes()));
    }
    if (simulator.now() < cfg.duration) {
      simulator.schedule_in(cfg.queue_sample_every, sample);
    }
  };
  simulator.schedule_at(0, sample);

  // Run past the horizon so in-flight flows can finish.
  simulator.run_until(cfg.duration + sim::milliseconds(20));

  result.drops = fabric.total_drops();
  if (tap) result.flight = tap->series();
  return result;
}

}  // namespace powertcp::harness
