#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "cc/registry.hpp"
#include "host/homa.hpp"
#include "net/network.hpp"
#include "harness/shard_setup.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topo/partition.hpp"
#include "workload/traffic_gen.hpp"

namespace powertcp::harness {

net::EcnConfig ecn_profile_for(const std::string& cc) {
  const cc::Scheme* scheme = cc::Registry::instance().find(cc);
  return scheme == nullptr ? net::EcnConfig{} : scheme->needs.ecn;
}

namespace {

workload::FlowSizeDistribution scaled_websearch(double scale) {
  if (scale == 1.0) return workload::FlowSizeDistribution::websearch();
  auto points = workload::FlowSizeDistribution::websearch().points();
  std::int64_t prev = 0;
  for (auto& [bytes, cdf] : points) {
    bytes = static_cast<std::int64_t>(static_cast<double>(bytes) * scale);
    // Aggressive scales can collapse neighboring CDF points; keep the
    // support strictly increasing.
    bytes = std::max(bytes, prev + 1);
    prev = bytes;
  }
  return workload::FlowSizeDistribution(std::move(points), /*min_bytes=*/100);
}

std::pair<ExperimentResult, std::uint64_t> run_fat_tree_point(
    const FatTreeExperiment& cfg, int threads) {
  // The registry entry carries everything scheme-specific: the fabric
  // features to configure, the tunable parameters, and the factory (or
  // the message-transport flag) — no scheme is special-cased by name.
  // A cc_mix run resolves one entry per member instead; the hosts then
  // share a fabric shaped by the first marking-dependent member.
  const bool mixed = !cfg.cc_mix.empty();
  const cc::Scheme* single =
      mixed ? nullptr : &cc::Registry::instance().at(cfg.cc);
  std::vector<const cc::Scheme*> members;
  for (const auto& m : cfg.cc_mix) {
    const cc::Scheme& s = cc::Registry::instance().at(m.cc);
    if (s.message_transport) {
      throw std::invalid_argument(
          "cc_mix member '" + m.cc +
          "' is a receiver-driven message transport; it reshapes the fabric "
          "(priority bands, receiver grants) and cannot share one with "
          "sender CC algorithms");
    }
    members.push_back(&s);
  }

  // Partitioned engine: the fat-tree is cut per pod; one shard drives
  // the whole thing when sim_threads is 1 (or the plan falls back).
  ShardedPoint point(topo::fat_tree_shard_plan(cfg.topo, threads),
                     cfg.sim_queue);
  sim::Simulator& simulator = point.sim();
  net::Network& network = point.network;

  topo::FatTreeConfig topo_cfg = cfg.topo;
  if (single != nullptr) {
    topo_cfg.ecn = single->needs.ecn;
    topo_cfg.priority_bands = single->needs.priority_bands;
  } else {
    topo_cfg.ecn = net::EcnConfig{};
    for (const cc::Scheme* s : members) {
      if (s->needs.ecn.enabled) {
        topo_cfg.ecn = s->needs.ecn;
        break;
      }
    }
    topo_cfg.priority_bands = 0;
  }
  topo_cfg.int_enabled = true;
  topo::FatTree fabric(network, topo_cfg);
  apply_burst(cfg.burst, point.engine, network);

  ExperimentResult result;
  result.tau = fabric.max_base_rtt();

  cc::FlowParams params;
  params.host_bw = topo_cfg.host_bw;
  params.base_rtt = result.tau;
  params.expected_flows = cfg.expected_flows;

  // ---- workload plan ----
  sim::Rng rng(cfg.seed);
  const auto dist = scaled_websearch(cfg.size_scale);
  workload::PoissonConfig pc;
  pc.load_per_host = fabric.host_load_for_uplink_load(cfg.uplink_load);
  pc.host_bw = topo_cfg.host_bw;
  pc.start = 0;
  pc.stop = cfg.duration;
  pc.n_hosts = fabric.host_count();
  pc.hosts_per_group = 0;  // any remote host (paper: uniform)
  std::vector<workload::FlowArrival> plan =
      workload::generate_poisson(pc, dist, rng);

  if (cfg.incast) {
    workload::IncastConfig ic;
    ic.requests_per_sec = cfg.incast_requests_per_sec;
    ic.request_bytes = cfg.incast_request_bytes;
    ic.fan_in = cfg.incast_fan_in;
    ic.start = 0;
    ic.stop = cfg.duration;
    ic.n_hosts = fabric.host_count();
    ic.hosts_per_group = topo_cfg.servers_per_tor;  // other racks only
    auto bursts = workload::generate_incast(ic, rng);
    plan.insert(plan.end(), bursts.begin(), bursts.end());
  }
  result.flows_started = plan.size();

  // ---- ideal FCT model: line-rate transfer plus one base RTT ----
  const auto ideal_fct = [&](std::int64_t bytes) {
    return result.tau + topo_cfg.host_bw.tx_time(bytes);
  };

  // Completion callbacks fire on the shard of the host that detects
  // them, so each shard records into its own sink; the sinks merge
  // after the run (verbatim for one shard, ordered by (finish,
  // flow_id) otherwise — cross-shard same-picosecond finishes are the
  // only case where that could differ from the sequential record
  // order, and the golden tests pin that it doesn't).
  struct ShardSink {
    stats::FctRecorder fct;
    std::vector<stats::FctRecorder> member_fct;
    std::uint64_t completed = 0;
  };
  std::vector<ShardSink> sinks(static_cast<std::size_t>(point.plan.shards));
  if (mixed) {
    for (auto& s : sinks) s.member_fct.resize(cfg.cc_mix.size());
  }
  const auto sink_of = [&](int host_index) {
    return &sinks[static_cast<std::size_t>(
        network.shard_of(fabric.host_node(host_index)))];
  };

  // ---- flow setup ----
  cc::ParamMap scheme_params = cfg.cc_params;
  if (single != nullptr && single->experiment_defaults) {
    single->experiment_defaults(params, scheme_params);
  }
  if (single != nullptr && single->message_transport) {
    host::HomaConfig hc = host::homa_config_from_params(scheme_params, params);
    if (scheme_params.count("overcommit") == 0) {
      hc.overcommit = cfg.homa_overcommit;
    }
    for (int h = 0; h < fabric.host_count(); ++h) {
      ShardSink* sink = sink_of(h);
      fabric.host(h).enable_homa(hc).set_message_callback(
          [sink, &ideal_fct](const host::MessageCompletion& done) {
            stats::FlowRecord rec;
            rec.flow_id = done.message;
            rec.size_bytes = done.size_bytes;
            rec.start = done.start;
            rec.finish = done.finish;
            rec.ideal = ideal_fct(done.size_bytes);
            sink->fct.record(rec);
            ++sink->completed;
          });
    }
    net::FlowId next_id = 1;
    for (const auto& arrival : plan) {
      const net::FlowId id = next_id++;
      host::Host& src = fabric.host(arrival.src_host);
      const net::NodeId dst = fabric.host_node(arrival.dst_host);
      const std::int64_t size = arrival.size_bytes;
      // Scheduled on the sender's shard — the event belongs to it.
      src.simulator().schedule_at(arrival.start, [&src, id, dst, size] {
        src.homa()->send_message(id, dst, size);
      });
    }
  } else {
    // One factory per mix member (or the single scheme as a one-member
    // "mix"); each host draws from the factory its assignment pins.
    std::vector<cc::FlowCcFactory> factories;
    if (mixed) {
      std::vector<cc::MixMember> mm;
      for (std::size_t i = 0; i < cfg.cc_mix.size(); ++i) {
        cc::ParamMap member_params = cfg.cc_mix[i].cc_params;
        if (members[i]->experiment_defaults) {
          members[i]->experiment_defaults(params, member_params);
        }
        factories.push_back(
            members[i]->make(member_params, cc::SchemeTopology{}));
        mm.push_back({cfg.cc_mix[i].cc, cfg.cc_mix[i].weight});
      }
      result.host_member =
          cc::mix_assignment(mm, fabric.host_count(), cfg.seed);
      result.member_fct.resize(cfg.cc_mix.size());
    } else {
      factories.push_back(single->make(scheme_params, cc::SchemeTopology{}));
    }
    net::FlowId next_id = 1;
    for (const auto& arrival : plan) {
      const net::FlowId id = next_id++;
      const cc::FlowEndpoints endpoints{fabric.tor_of_host(arrival.src_host),
                                        fabric.tor_of_host(arrival.dst_host)};
      const int member =
          mixed ? result.host_member[static_cast<std::size_t>(
                      arrival.src_host)]
                : 0;
      // Completion is detected at the sender (final ack), so this
      // flow's record lands in the sender's shard sink.
      ShardSink* sink = sink_of(arrival.src_host);
      fabric.host(arrival.src_host)
          .start_flow(id, fabric.host_node(arrival.dst_host),
                      arrival.size_bytes,
                      factories[static_cast<std::size_t>(member)](params,
                                                                  endpoints),
                      params, arrival.start,
                      [sink, &ideal_fct,
                       member](const host::FlowCompletion& c) {
                        stats::FlowRecord rec;
                        rec.flow_id = c.flow;
                        rec.size_bytes = c.size_bytes;
                        rec.start = c.start;
                        rec.finish = c.finish;
                        rec.ideal = ideal_fct(c.size_bytes);
                        sink->fct.record(rec);
                        if (!sink->member_fct.empty()) {
                          sink->member_fct[static_cast<std::size_t>(member)]
                              .record(rec);
                        }
                        ++sink->completed;
                      });
    }
  }

  // ---- fabric queue sampling (ToR uplinks, Fig. 7g style) ----
  // Each shard samples its own ToRs' uplinks (one self-rescheduling
  // event per shard per tick); the per-shard streams carry (tick,
  // global port rank) so the merge reproduces the sequential append
  // order exactly. queue_sample_every = 0 disables sampling (the shard
  // bench uses it for exact event-count parity across thread counts).
  std::vector<net::EgressPort*> uplinks;
  for (int t = 0; t < fabric.tor_count(); ++t) {
    for (const int p : fabric.tor_uplink_ports(t)) {
      uplinks.push_back(&fabric.tor(t).port(p));
    }
  }
  struct RankedPort {
    int rank;
    net::EgressPort* port;
  };
  std::vector<std::vector<RankedPort>> shard_uplinks(
      static_cast<std::size_t>(point.plan.shards));
  {
    int rank = 0;
    for (int t = 0; t < fabric.tor_count(); ++t) {
      const auto s = static_cast<std::size_t>(
          network.shard_of(fabric.tor(t).id()));
      for (const int p : fabric.tor_uplink_ports(t)) {
        shard_uplinks[s].push_back({rank++, &fabric.tor(t).port(p)});
      }
    }
  }
  // Flight tap: the first ToR uplink (the load target of the sweep)
  // plus the telemetry.flow-th planned arrival's sender, when that
  // arrival exists and the scheme has a sender window.
  std::optional<FlightTap> tap;
  if (cfg.telemetry.enabled && !uplinks.empty()) {
    host::Host* tap_host = nullptr;
    const bool message_transport =
        single != nullptr && single->message_transport;
    if (!message_transport && cfg.telemetry.flow >= 1 &&
        static_cast<std::size_t>(cfg.telemetry.flow) <= plan.size()) {
      tap_host = &fabric.host(
          plan[static_cast<std::size_t>(cfg.telemetry.flow - 1)].src_host);
    }
    tap.emplace(cfg.telemetry, simulator, *uplinks.front(), tap_host,
                cfg.telemetry.flow, result.tau, cfg.duration);
  }

  struct UplinkSample {
    std::int64_t tick;
    int rank;
    double value;
  };
  struct ShardSampler {
    std::function<void()> fn;
    std::int64_t tick = 0;
    std::vector<UplinkSample> out;
  };
  std::vector<std::unique_ptr<ShardSampler>> samplers;
  if (cfg.queue_sample_every > 0) {
    for (int s = 0; s < point.plan.shards; ++s) {
      const auto& ports = shard_uplinks[static_cast<std::size_t>(s)];
      if (ports.empty()) continue;
      sim::Simulator* ssim = &point.engine.shard(s);
      auto sampler = std::make_unique<ShardSampler>();
      ShardSampler* self = sampler.get();
      self->fn = [self, ssim, &ports, &cfg] {
        for (const RankedPort& rp : ports) {
          self->out.push_back(
              {self->tick, rp.rank,
               static_cast<double>(rp.port->queue_bytes())});
        }
        ++self->tick;
        if (ssim->now() < cfg.duration) {
          ssim->schedule_in(cfg.queue_sample_every, self->fn);
        }
      };
      ssim->schedule_at(0, self->fn);
      samplers.push_back(std::move(sampler));
    }
  }

  // Run past the horizon so in-flight flows can finish.
  point.engine.run_until(cfg.duration + sim::milliseconds(20));

  // ---- merge per-shard sinks back into the sequential shapes ----
  if (point.plan.shards == 1) {
    result.fct = std::move(sinks[0].fct);
    if (mixed) result.member_fct = std::move(sinks[0].member_fct);
    result.flows_completed = sinks[0].completed;
  } else {
    const auto by_finish = [](const stats::FlowRecord& a,
                              const stats::FlowRecord& b) {
      return std::tie(a.finish, a.flow_id) < std::tie(b.finish, b.flow_id);
    };
    std::vector<stats::FlowRecord> all;
    for (auto& s : sinks) {
      result.flows_completed += s.completed;
      all.insert(all.end(), s.fct.flows().begin(), s.fct.flows().end());
    }
    std::stable_sort(all.begin(), all.end(), by_finish);
    for (const auto& r : all) result.fct.record(r);
    if (mixed) {
      result.member_fct.assign(cfg.cc_mix.size(), stats::FctRecorder{});
      for (std::size_t m = 0; m < cfg.cc_mix.size(); ++m) {
        std::vector<stats::FlowRecord> member_all;
        for (auto& s : sinks) {
          member_all.insert(member_all.end(), s.member_fct[m].flows().begin(),
                            s.member_fct[m].flows().end());
        }
        std::stable_sort(member_all.begin(), member_all.end(), by_finish);
        for (const auto& r : member_all) result.member_fct[m].record(r);
      }
    }
  }
  {
    std::vector<UplinkSample> merged;
    for (const auto& s : samplers) {
      merged.insert(merged.end(), s->out.begin(), s->out.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const UplinkSample& a, const UplinkSample& b) {
                       return std::tie(a.tick, a.rank) <
                              std::tie(b.tick, b.rank);
                     });
    for (const auto& s : merged) result.uplink_queue_bytes.add(s.value);
  }

  result.drops = fabric.total_drops();
  if (tap) result.flight = tap->series();
  return {std::move(result), point.engine.boundary_ambiguities()};
}

}  // namespace

ExperimentResult run_fat_tree_experiment(const FatTreeExperiment& cfg) {
  return run_with_exact_fallback(
      effective_sim_threads(cfg.sim_threads, cfg.telemetry.enabled),
      [&](int threads) { return run_fat_tree_point(cfg, threads); });
}

}  // namespace powertcp::harness
