#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file swift.hpp
/// Swift (Kumar et al., SIGCOMM 2020): TIMELY's production successor and
/// the voltage-based delay CC the paper contrasts with θ-PowerTCP (§6).
/// AIMD against a fixed target delay, with the multiplicative decrease
/// applied at most once per RTT and clamped by max_mdf.

namespace powertcp::cc {

struct SwiftConfig {
  /// Target delay as a multiple of the base RTT.
  double target_rtt_factor = 1.25;
  double ai_mss_per_rtt = 1.0;  ///< additive increase per RTT, in MSS
  double beta = 0.8;            ///< MD strength
  double max_mdf = 0.5;         ///< max multiplicative-decrease fraction
  double max_cwnd_bdp = 1.0;
  double min_cwnd_bytes = 100.0;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& swift_param_specs();
SwiftConfig swift_config_from_params(const ParamMap& overrides);

class Swift final : public CcAlgorithm {
 public:
  Swift(const FlowParams& params, const SwiftConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "Swift"; }

  double cwnd() const { return cwnd_; }
  sim::TimePs target_delay() const { return target_delay_; }

 private:
  FlowParams params_;
  SwiftConfig cfg_;
  sim::TimePs target_delay_;
  double max_cwnd_;

  double cwnd_;
  sim::TimePs last_decrease_ = -1;
};

}  // namespace powertcp::cc
