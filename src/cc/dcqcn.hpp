#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file dcqcn.hpp
/// DCQCN (Zhu et al., SIGCOMM 2015): the ECN-based rate control deployed
/// in large RDMA fabrics and one of the paper's baselines. Switches mark
/// with a RED profile; the receiver paces congestion notifications
/// (CNPs) at most once per `cnp_interval`; the sender cuts its rate by
/// α/2 on each CNP and recovers through fast-recovery /
/// additive-increase / hyper-increase stages.
///
/// This implementation folds the NIC timers into the ack path: CNP
/// pacing, α decay, and increase events are evaluated lazily from
/// elapsed time on each acknowledgment, which is equivalent between
/// acks because the rate only changes at those events.

namespace powertcp::cc {

struct DcqcnConfig {
  double g = 1.0 / 256.0;           ///< α EWMA gain
  sim::TimePs cnp_interval = sim::microseconds(50);
  sim::TimePs alpha_timer = sim::microseconds(55);
  sim::TimePs increase_timer = sim::microseconds(55);
  std::int64_t increase_bytes = 10 * 1000 * 1000;  ///< byte-counter stage
  int fast_recovery_stages = 5;
  /// Additive/hyper increase in bits/s; < 0 derives HostBw/640 and
  /// HostBw/64 (the 40 Mbps / 400 Mbps defaults scaled from 25G).
  double rate_ai_bps = -1.0;
  double rate_hai_bps = -1.0;
  double min_rate_fraction = 0.001;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& dcqcn_param_specs();
DcqcnConfig dcqcn_config_from_params(const ParamMap& overrides);

class Dcqcn final : public CcAlgorithm {
 public:
  Dcqcn(const FlowParams& params, const DcqcnConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "DCQCN"; }

  double rate_bps() const { return rate_bps_; }
  double alpha() const { return alpha_; }

 private:
  void on_cnp(sim::TimePs now);
  void run_timers(sim::TimePs now);
  void increase_event();
  CcDecision decision() const;

  FlowParams params_;
  DcqcnConfig cfg_;
  double rate_ai_;
  double rate_hai_;
  double min_rate_;

  double rate_bps_;         ///< current rate RC
  double target_rate_bps_;  ///< target rate RT
  double alpha_ = 1.0;
  sim::TimePs last_cnp_ = -1;
  sim::TimePs last_alpha_update_ = 0;
  sim::TimePs last_increase_ = 0;
  std::int64_t bytes_since_increase_ = 0;
  int timer_stage_ = 0;
  int byte_stage_ = 0;
};

}  // namespace powertcp::cc
