#include "cc/retcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace powertcp::cc {

const std::vector<ParamSpec>& re_tcp_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"prebuffering_us", "600", "window ramp-up lead before circuit days"},
      {"scale", "-1",
       "window multiplier; <0 derives circuit/packet bandwidth ratio"},
      {"ramp_reference_us", "600",
       "prebuffer duration that reaches exactly `scale`x"},
  };
  return kSpecs;
}

ReTcpConfig re_tcp_config_from_params(const ParamMap& overrides) {
  const ParamReader r("retcp", overrides, re_tcp_param_specs());
  ReTcpConfig cfg;
  cfg.prebuffering = r.get_microseconds("prebuffering_us", cfg.prebuffering);
  cfg.scale = r.get_double("scale", cfg.scale);
  cfg.ramp_reference =
      r.get_microseconds("ramp_reference_us", cfg.ramp_reference);
  return cfg;
}

ReTcp::ReTcp(const FlowParams& params, const net::CircuitSchedule* schedule,
             int src_tor, int dst_tor, const ReTcpConfig& cfg)
    : params_(params),
      schedule_(schedule),
      src_tor_(src_tor),
      dst_tor_(dst_tor),
      cfg_(cfg) {
  if (schedule_ == nullptr) {
    throw std::invalid_argument("ReTcp: schedule required");
  }
  if (cfg_.scale > 0) {
    scale_ = cfg_.scale;
  } else if (cfg_.circuit_bw_bps > 0 && cfg_.packet_bw_bps > 0) {
    scale_ = cfg_.circuit_bw_bps / cfg_.packet_bw_bps;
  } else {
    scale_ = 4.0;  // the paper's 100G / 25G default
  }
  base_cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes());
}

double ReTcp::scale_at(sim::TimePs t) const {
  const sim::TimePs day_start =
      schedule_->next_connection(src_tor_, dst_tor_, t);
  const sim::TimePs day_end = day_start + schedule_->day();
  const sim::TimePs prebuf_start = day_start - cfg_.prebuffering;
  if (t < prebuf_start || t >= day_end) return 1.0;
  // Growth stops once the day begins (the circuit drains the backlog).
  const sim::TimePs elapsed = std::min(t, day_start) - prebuf_start;
  const double progress = static_cast<double>(elapsed) /
                          static_cast<double>(cfg_.ramp_reference);
  return 1.0 + (scale_ - 1.0) * progress;
}

CcDecision ReTcp::initial() const {
  return CcDecision{base_cwnd_, params_.host_bw.bps()};
}

CcDecision ReTcp::on_ack(const AckContext& ctx) {
  return CcDecision{base_cwnd_ * scale_at(ctx.now), params_.host_bw.bps()};
}

}  // namespace powertcp::cc
