#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file dctcp.hpp
/// DCTCP (Alizadeh et al., SIGCOMM 2010): the canonical ECN
/// fraction-based window law — the paper's exemplar of a *voltage-based*
/// scheme that must keep a standing queue around the marking threshold
/// K (§2.2). Per RTT: α ← (1−g)·α + g·F where F is the fraction of
/// marked bytes; on a marked round w ← w·(1 − α/2), otherwise w += MSS.

namespace powertcp::cc {

struct DctcpConfig {
  double g = 1.0 / 16.0;
  double max_cwnd_bdp = 1.0;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& dctcp_param_specs();
DctcpConfig dctcp_config_from_params(const ParamMap& overrides);

class Dctcp final : public CcAlgorithm {
 public:
  Dctcp(const FlowParams& params, const DctcpConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "DCTCP"; }

  double alpha() const { return alpha_; }
  double cwnd() const { return cwnd_; }

 private:
  FlowParams params_;
  DctcpConfig cfg_;
  double max_cwnd_;

  double cwnd_;
  double alpha_ = 1.0;
  std::int64_t acked_bytes_ = 0;
  std::int64_t marked_bytes_ = 0;
  std::int64_t window_end_seq_ = 0;
};

}  // namespace powertcp::cc
