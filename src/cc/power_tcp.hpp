#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file power_tcp.hpp
/// PowerTCP (paper §3.3, Algorithm 1): window control driven by network
/// *power* — the product of current λ = q̇ + µ and voltage ν = q + b·τ —
/// measured per hop from INT and normalized by the base power e = b²·τ.
///
///   w ← γ · ( w(t−θ) / Γ_norm + β ) + (1−γ) · w
///
/// Reacting to the product of the absolute queue state and its rate of
/// change gives both the unique low-queue equilibrium of voltage-based
/// CC and the reaction speed of current-based CC (Theorems 1–3).

namespace powertcp::cc {

struct PowerTcpConfig {
  /// EWMA weight γ for window updates; the paper recommends 0.9.
  double gamma = 0.9;
  /// Additive increase β in bytes; < 0 derives HostBw·τ/N from FlowParams.
  double beta_bytes = -1.0;
  /// Update the window once per RTT instead of per ack (used for the
  /// RDCN case study's fair comparison with reTCP, §5).
  bool per_rtt_update = false;
  /// Window clamp as a multiple of HostBw·τ. The NIC cannot put more
  /// than one line-rate BDP in flight usefully; 1.0 matches cwnd_init.
  double max_cwnd_bdp = 1.0;
};

/// Declared tunables for the registry entries ("powertcp",
/// "powertcp-rtt") and the `key=value` parser building a config from
/// overrides; unknown keys or unparseable values throw
/// std::invalid_argument naming `scheme`.
const std::vector<ParamSpec>& power_tcp_param_specs();
PowerTcpConfig power_tcp_config_from_params(
    const ParamMap& overrides, const std::string& scheme = "powertcp");

class PowerTcp final : public CcAlgorithm {
 public:
  PowerTcp(const FlowParams& params, const PowerTcpConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "PowerTCP"; }

  /// Normalized, smoothed power from the latest feedback (diagnostics).
  double smoothed_power() const { return smoothed_power_; }
  double cwnd() const { return cwnd_; }

 private:
  /// Algorithm 1, NORMPOWER: per-hop Γ′/e, maximum over hops, smoothed
  /// over the base RTT with the observation interval Δt as weight.
  double norm_power(const net::IntHeader& hdr);
  void update_window(double norm_power);
  CcDecision decision() const;

  FlowParams params_;
  PowerTcpConfig cfg_;
  double beta_;       ///< additive increase (bytes)
  double tau_sec_;    ///< base RTT in seconds
  double max_cwnd_;   ///< clamp (bytes)

  double cwnd_;
  double cwnd_old_;   ///< window remembered once per RTT (GETCWND)
  double smoothed_power_ = 1.0;
  net::IntHeader prev_int_;
  bool have_prev_ = false;
  std::int64_t last_update_seq_ = 0;  ///< per-RTT boundary for UPDATEOLD
  std::int64_t last_window_seq_ = 0;  ///< per-RTT boundary for updates
};

}  // namespace powertcp::cc
