#include "cc/swift.hpp"

#include <algorithm>

namespace powertcp::cc {

const std::vector<ParamSpec>& swift_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"target_rtt_factor", "1.25", "target delay as a multiple of tau"},
      {"ai_mss_per_rtt", "1.0", "additive increase per RTT, in MSS"},
      {"beta", "0.8", "multiplicative-decrease strength"},
      {"max_mdf", "0.5", "max multiplicative-decrease fraction"},
      {"max_cwnd_bdp", "1.0", "window clamp as a multiple of HostBw*tau"},
      {"min_cwnd_bytes", "100", "window floor in bytes"},
  };
  return kSpecs;
}

SwiftConfig swift_config_from_params(const ParamMap& overrides) {
  const ParamReader r("swift", overrides, swift_param_specs());
  SwiftConfig cfg;
  cfg.target_rtt_factor =
      r.get_double("target_rtt_factor", cfg.target_rtt_factor);
  cfg.ai_mss_per_rtt = r.get_double("ai_mss_per_rtt", cfg.ai_mss_per_rtt);
  cfg.beta = r.get_double("beta", cfg.beta);
  cfg.max_mdf = r.get_double("max_mdf", cfg.max_mdf);
  cfg.max_cwnd_bdp = r.get_double("max_cwnd_bdp", cfg.max_cwnd_bdp);
  cfg.min_cwnd_bytes = r.get_double("min_cwnd_bytes", cfg.min_cwnd_bytes);
  return cfg;
}

Swift::Swift(const FlowParams& params, const SwiftConfig& cfg)
    : params_(params), cfg_(cfg) {
  target_delay_ = static_cast<sim::TimePs>(
      static_cast<double>(params_.base_rtt) * cfg_.target_rtt_factor);
  max_cwnd_ = cfg_.max_cwnd_bdp * params_.bdp_bytes();
  cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes());
}

CcDecision Swift::on_ack(const AckContext& ctx) {
  if (ctx.rtt <= 0) return CcDecision{cwnd_, params_.host_bw.bps()};
  if (ctx.rtt < target_delay_) {
    // Additive increase, spread across the acks of one window.
    const double per_ack = cfg_.ai_mss_per_rtt *
                           static_cast<double>(params_.mss) *
                           static_cast<double>(ctx.acked_bytes) /
                           std::max(cwnd_, 1.0);
    cwnd_ += per_ack;
  } else if (last_decrease_ < 0 ||
             ctx.now - last_decrease_ >= ctx.rtt) {
    const double overshoot =
        static_cast<double>(ctx.rtt - target_delay_) /
        static_cast<double>(ctx.rtt);
    const double factor =
        std::max(1.0 - cfg_.beta * overshoot, 1.0 - cfg_.max_mdf);
    cwnd_ *= factor;
    last_decrease_ = ctx.now;
  }
  cwnd_ = std::clamp(cwnd_, cfg_.min_cwnd_bytes, max_cwnd_);
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

void Swift::on_timeout() {
  cwnd_ = std::max(cfg_.min_cwnd_bytes, cwnd_ / 2.0);
}

}  // namespace powertcp::cc
