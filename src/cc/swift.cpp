#include "cc/swift.hpp"

#include <algorithm>

namespace powertcp::cc {

Swift::Swift(const FlowParams& params, const SwiftConfig& cfg)
    : params_(params), cfg_(cfg) {
  target_delay_ = static_cast<sim::TimePs>(
      static_cast<double>(params_.base_rtt) * cfg_.target_rtt_factor);
  max_cwnd_ = cfg_.max_cwnd_bdp * params_.bdp_bytes();
  cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes());
}

CcDecision Swift::on_ack(const AckContext& ctx) {
  if (ctx.rtt <= 0) return CcDecision{cwnd_, params_.host_bw.bps()};
  if (ctx.rtt < target_delay_) {
    // Additive increase, spread across the acks of one window.
    const double per_ack = cfg_.ai_mss_per_rtt *
                           static_cast<double>(params_.mss) *
                           static_cast<double>(ctx.acked_bytes) /
                           std::max(cwnd_, 1.0);
    cwnd_ += per_ack;
  } else if (last_decrease_ < 0 ||
             ctx.now - last_decrease_ >= ctx.rtt) {
    const double overshoot =
        static_cast<double>(ctx.rtt - target_delay_) /
        static_cast<double>(ctx.rtt);
    const double factor =
        std::max(1.0 - cfg_.beta * overshoot, 1.0 - cfg_.max_mdf);
    cwnd_ *= factor;
    last_decrease_ = ctx.now;
  }
  cwnd_ = std::clamp(cwnd_, cfg_.min_cwnd_bytes, max_cwnd_);
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

void Swift::on_timeout() {
  cwnd_ = std::max(cfg_.min_cwnd_bytes, cwnd_ / 2.0);
}

}  // namespace powertcp::cc
