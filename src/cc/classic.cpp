#include "cc/classic.hpp"

#include <algorithm>
#include <cmath>

namespace powertcp::cc {

const std::vector<ParamSpec>& new_reno_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"dupack_threshold", "3", "duplicate acks triggering fast recovery"},
      {"ssthresh_factor", "0.5", "window factor on loss"},
  };
  return kSpecs;
}

NewRenoConfig new_reno_config_from_params(const ParamMap& overrides) {
  const ParamReader r("newreno", overrides, new_reno_param_specs());
  NewRenoConfig cfg;
  cfg.dupack_threshold =
      static_cast<int>(r.get_int("dupack_threshold", cfg.dupack_threshold));
  cfg.ssthresh_factor = r.get_double("ssthresh_factor", cfg.ssthresh_factor);
  return cfg;
}

const std::vector<ParamSpec>& cubic_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"c", "0.4", "CUBIC aggressiveness constant"},
      {"beta", "0.7", "multiplicative decrease"},
      {"dupack_threshold", "3", "duplicate acks triggering fast recovery"},
  };
  return kSpecs;
}

CubicConfig cubic_config_from_params(const ParamMap& overrides) {
  const ParamReader r("cubic", overrides, cubic_param_specs());
  CubicConfig cfg;
  cfg.c = r.get_double("c", cfg.c);
  cfg.beta = r.get_double("beta", cfg.beta);
  cfg.dupack_threshold =
      static_cast<int>(r.get_int("dupack_threshold", cfg.dupack_threshold));
  return cfg;
}

NewReno::NewReno(const FlowParams& params, const NewRenoConfig& cfg)
    : params_(params), cfg_(cfg) {
  max_cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes() * 4.0);
  // Classic start: slow start from a small initial window.
  cwnd_ = 10.0 * params_.mss;
  ssthresh_ = max_cwnd_;
}

CcDecision NewReno::decision() const {
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

CcDecision NewReno::initial() const {
  return CcDecision{10.0 * params_.mss, params_.host_bw.bps()};
}

CcDecision NewReno::on_ack(const AckContext& ctx) {
  if (ctx.acked_bytes == 0 && ctx.ack_seq == last_ack_seq_) {
    // Duplicate cumulative ack: a later segment arrived out of order,
    // i.e. something in between was lost or delayed.
    if (++dupacks_ == cfg_.dupack_threshold &&
        ctx.ack_seq >= recover_until_) {
      ssthresh_ = std::max<double>(params_.mss * 2.0,
                                   cwnd_ * cfg_.ssthresh_factor);
      cwnd_ = ssthresh_;
      recover_until_ = ctx.snd_nxt;  // one reduction per window
    }
    return decision();
  }
  last_ack_seq_ = ctx.ack_seq;
  dupacks_ = 0;
  if (ctx.acked_bytes <= 0) return decision();

  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(ctx.acked_bytes);  // slow start
  } else {
    // Congestion avoidance: one MSS per window's worth of acks.
    cwnd_ += static_cast<double>(params_.mss) *
             static_cast<double>(ctx.acked_bytes) / cwnd_;
  }
  cwnd_ = std::clamp<double>(cwnd_, params_.mss, max_cwnd_);
  return decision();
}

void NewReno::on_timeout() {
  ssthresh_ = std::max<double>(params_.mss * 2.0, cwnd_ / 2.0);
  cwnd_ = params_.mss;
  dupacks_ = 0;
}

Cubic::Cubic(const FlowParams& params, const CubicConfig& cfg)
    : params_(params), cfg_(cfg) {
  max_cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes() * 4.0);
  cwnd_ = 10.0 * params_.mss;
  w_max_ = max_cwnd_;
}

CcDecision Cubic::decision() const {
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

CcDecision Cubic::initial() const {
  return CcDecision{10.0 * params_.mss, params_.host_bw.bps()};
}

void Cubic::enter_recovery(sim::TimePs now) {
  w_max_ = cwnd_;
  cwnd_ = std::max<double>(params_.mss, cwnd_ * cfg_.beta);
  epoch_start_ = now;
}

CcDecision Cubic::on_ack(const AckContext& ctx) {
  if (ctx.acked_bytes == 0 && ctx.ack_seq == last_ack_seq_) {
    if (++dupacks_ == cfg_.dupack_threshold &&
        ctx.ack_seq >= recover_until_) {
      enter_recovery(ctx.now);
      recover_until_ = ctx.snd_nxt;
    }
    return decision();
  }
  last_ack_seq_ = ctx.ack_seq;
  dupacks_ = 0;
  if (ctx.acked_bytes <= 0) return decision();

  if (epoch_start_ < 0) epoch_start_ = ctx.now;
  // W(t) = C·(t − K)³ + W_max with K = cbrt(W_max·(1−β)/C), windows in
  // MSS units and t in seconds, per the CUBIC paper.
  const double wmax_mss = w_max_ / params_.mss;
  const double k = std::cbrt(wmax_mss * (1.0 - cfg_.beta) / cfg_.c);
  const double t = sim::to_seconds(ctx.now - epoch_start_);
  const double target_mss = cfg_.c * std::pow(t - k, 3.0) + wmax_mss;
  const double target = target_mss * params_.mss;
  if (target > cwnd_) {
    // Approach the cubic target over roughly one RTT of acks.
    cwnd_ += (target - cwnd_) * static_cast<double>(ctx.acked_bytes) /
             std::max(cwnd_, 1.0);
  } else {
    // TCP-friendly floor: at least additive increase.
    cwnd_ += static_cast<double>(params_.mss) *
             static_cast<double>(ctx.acked_bytes) / cwnd_;
  }
  cwnd_ = std::clamp<double>(cwnd_, params_.mss, max_cwnd_);
  return decision();
}

void Cubic::on_timeout() {
  w_max_ = cwnd_;
  cwnd_ = params_.mss;
  epoch_start_ = -1;
  dupacks_ = 0;
}

}  // namespace powertcp::cc
