#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

/// \file cc_algorithm.hpp
/// Sender-side congestion control interface. A flow owns one
/// CcAlgorithm; the host transport calls on_ack for every acknowledgment
/// and enforces the returned window and pacing rate.
///
/// All algorithms express both a congestion window (bytes) and a pacing
/// rate (bits/s). Window-based laws (PowerTCP, HPCC, DCTCP, Swift) set
/// rate = cwnd / τ as the paper does (Alg. 1, line 6); rate-based laws
/// (DCQCN, TIMELY) return a generous window and let pacing govern.

namespace powertcp::cc {

/// Static per-flow parameters handed to the algorithm at creation.
struct FlowParams {
  sim::Bandwidth host_bw;      ///< sender NIC line rate (HostBw)
  sim::TimePs base_rtt = 0;    ///< τ, the maximum base RTT in the topology
  std::int32_t mss = net::kDefaultMss;
  /// N: expected number of flows sharing the host NIC; sizes the
  /// additive-increase term β = HostBw·τ/N (§3.3).
  int expected_flows = 10;

  double bdp_bytes() const { return host_bw.bytes_per_sec() * sim::to_seconds(base_rtt); }
};

/// Everything an algorithm may react to on one acknowledgment.
struct AckContext {
  sim::TimePs now = 0;
  sim::TimePs rtt = 0;              ///< measured via the echoed timestamp
  std::int64_t acked_bytes = 0;     ///< newly acknowledged payload
  std::int64_t ack_seq = 0;         ///< cumulative ack
  std::int64_t snd_nxt = 0;         ///< sender's next sequence to send
  bool ecn_echo = false;
  const net::IntHeader* int_hdr = nullptr;  ///< nullptr when INT disabled
  double inflight_bytes = 0.0;
};

struct CcDecision {
  double cwnd_bytes = 0.0;
  double pacing_bps = 0.0;
};

class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;

  /// Window/rate to use before any feedback arrives. The paper's
  /// convention for all compared schemes: start at line rate with
  /// cwnd_init = HostBw · τ.
  virtual CcDecision initial() const = 0;

  virtual CcDecision on_ack(const AckContext& ctx) = 0;

  /// Retransmission timeout fired; most laws halve or reset.
  virtual void on_timeout() {}

  virtual std::string_view name() const = 0;
};

using CcFactory =
    std::function<std::unique_ptr<CcAlgorithm>(const FlowParams&)>;

/// Line-rate start shared by every scheme (§3.3 "all flows transmit at
/// line rate in the first RTT").
inline CcDecision line_rate_start(const FlowParams& p) {
  return CcDecision{std::max<double>(p.mss, p.bdp_bytes()), p.host_bw.bps()};
}

}  // namespace powertcp::cc
