#include "cc/theta_power_tcp.hpp"

#include <algorithm>

namespace powertcp::cc {

namespace {
/// RTT can never fall below the base RTT, so θ/τ >= 1 and sustained
/// sub-unity power only appears through the (noisy) gradient term.
/// Flooring the divisor bounds the multiplicative increase at 4x per
/// update — the paper's "fill within one or two RTTs" — instead of
/// letting one clamped-to-zero gradient sample blow the window to max.
constexpr double kMinNormPower = 0.25;
}

const std::vector<ParamSpec>& theta_power_tcp_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"gamma", "0.9", "EWMA weight of window updates"},
      {"beta_bytes", "-1", "additive increase; <0 derives HostBw*tau/N"},
      {"max_cwnd_bdp", "1.0", "window clamp as a multiple of HostBw*tau"},
  };
  return kSpecs;
}

ThetaPowerTcpConfig theta_power_tcp_config_from_params(
    const ParamMap& overrides) {
  const ParamReader r("theta-powertcp", overrides,
                      theta_power_tcp_param_specs());
  ThetaPowerTcpConfig cfg;
  cfg.gamma = r.get_double("gamma", cfg.gamma);
  cfg.beta_bytes = r.get_double("beta_bytes", cfg.beta_bytes);
  cfg.max_cwnd_bdp = r.get_double("max_cwnd_bdp", cfg.max_cwnd_bdp);
  return cfg;
}

ThetaPowerTcp::ThetaPowerTcp(const FlowParams& params,
                             const ThetaPowerTcpConfig& cfg)
    : params_(params),
      cfg_(cfg),
      tau_sec_(sim::to_seconds(params.base_rtt)) {
  const double bdp = params_.bdp_bytes();
  beta_ = cfg_.beta_bytes >= 0.0
              ? cfg_.beta_bytes
              : bdp / static_cast<double>(params_.expected_flows);
  max_cwnd_ = cfg_.max_cwnd_bdp * bdp;
  cwnd_ = std::max<double>(params_.mss, bdp);
  cwnd_old_ = cwnd_;
}

CcDecision ThetaPowerTcp::decision() const {
  return CcDecision{cwnd_, cwnd_ / tau_sec_ * 8.0};
}

CcDecision ThetaPowerTcp::on_ack(const AckContext& ctx) {
  if (ctx.rtt <= 0) return decision();
  if (!have_prev_) {
    prev_rtt_ = ctx.rtt;
    prev_ack_time_ = ctx.now;
    have_prev_ = true;
    return decision();
  }
  const sim::TimePs dt = ctx.now - prev_ack_time_;
  if (dt <= 0) return decision();

  // Algorithm 2: θ̇ from consecutive ack arrivals, then
  // Γ_norm = (θ̇ + 1) · θ / τ, smoothed over the base RTT.
  const double theta_dot = static_cast<double>(ctx.rtt - prev_rtt_) /
                           static_cast<double>(dt);
  // Physically θ̇ >= -1 (a queue cannot drain faster than the link
  // serves, so λ = q̇ + µ >= 0); ack scheduling noise can report less,
  // which would make power negative. Clamp at the physical bound.
  const double theta_sec = sim::to_seconds(ctx.rtt);
  const double norm =
      std::max(0.0, theta_dot + 1.0) * theta_sec / tau_sec_;
  const sim::TimePs dt_capped = std::min(dt, params_.base_rtt);
  const double w = static_cast<double>(dt_capped) /
                   static_cast<double>(params_.base_rtt);
  smoothed_power_ = smoothed_power_ * (1.0 - w) + norm * w;

  prev_rtt_ = ctx.rtt;
  prev_ack_time_ = ctx.now;

  // Window (and remembered old window) move once per RTT.
  if (ctx.ack_seq > last_update_seq_) {
    const double p = std::max(smoothed_power_, kMinNormPower);
    cwnd_ =
        cfg_.gamma * (cwnd_old_ / p + beta_) + (1.0 - cfg_.gamma) * cwnd_;
    cwnd_ = std::clamp(cwnd_, 1.0, max_cwnd_);
    cwnd_old_ = cwnd_;
    last_update_seq_ = ctx.snd_nxt;
  }
  return decision();
}

void ThetaPowerTcp::on_timeout() {
  cwnd_ = std::max<double>(params_.mss, cwnd_ / 2.0);
  cwnd_old_ = cwnd_;
}

}  // namespace powertcp::cc
