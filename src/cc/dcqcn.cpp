#include "cc/dcqcn.hpp"

#include <algorithm>

namespace powertcp::cc {

const std::vector<ParamSpec>& dcqcn_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"g", "0.00390625", "alpha EWMA gain"},
      {"cnp_interval_us", "50", "min spacing of congestion notifications"},
      {"alpha_timer_us", "55", "alpha decay period"},
      {"increase_timer_us", "55", "rate-increase timer period"},
      {"increase_bytes", "10000000", "byte counter per increase stage"},
      {"fast_recovery_stages", "5", "stages before additive increase"},
      {"rate_ai_bps", "-1", "additive increase; <0 derives HostBw/640"},
      {"rate_hai_bps", "-1", "hyper increase; <0 derives HostBw/64"},
      {"min_rate_fraction", "0.001", "rate floor as a fraction of HostBw"},
  };
  return kSpecs;
}

DcqcnConfig dcqcn_config_from_params(const ParamMap& overrides) {
  const ParamReader r("dcqcn", overrides, dcqcn_param_specs());
  DcqcnConfig cfg;
  cfg.g = r.get_double("g", cfg.g);
  cfg.cnp_interval = r.get_microseconds("cnp_interval_us", cfg.cnp_interval);
  cfg.alpha_timer = r.get_microseconds("alpha_timer_us", cfg.alpha_timer);
  cfg.increase_timer =
      r.get_microseconds("increase_timer_us", cfg.increase_timer);
  cfg.increase_bytes = r.get_int("increase_bytes", cfg.increase_bytes);
  cfg.fast_recovery_stages = static_cast<int>(
      r.get_int("fast_recovery_stages", cfg.fast_recovery_stages));
  cfg.rate_ai_bps = r.get_double("rate_ai_bps", cfg.rate_ai_bps);
  cfg.rate_hai_bps = r.get_double("rate_hai_bps", cfg.rate_hai_bps);
  cfg.min_rate_fraction =
      r.get_double("min_rate_fraction", cfg.min_rate_fraction);
  return cfg;
}

Dcqcn::Dcqcn(const FlowParams& params, const DcqcnConfig& cfg)
    : params_(params), cfg_(cfg) {
  rate_ai_ =
      cfg_.rate_ai_bps >= 0 ? cfg_.rate_ai_bps : params_.host_bw.bps() / 640.0;
  rate_hai_ =
      cfg_.rate_hai_bps >= 0 ? cfg_.rate_hai_bps : params_.host_bw.bps() / 64.0;
  min_rate_ = params_.host_bw.bps() * cfg_.min_rate_fraction;
  rate_bps_ = params_.host_bw.bps();
  target_rate_bps_ = rate_bps_;
}

CcDecision Dcqcn::decision() const {
  const double cwnd =
      std::max<double>(params_.mss,
                       rate_bps_ / 8.0 * sim::to_seconds(params_.base_rtt) * 4.0);
  return CcDecision{cwnd, rate_bps_};
}

void Dcqcn::on_cnp(sim::TimePs now) {
  // Rate cut per the DCQCN reaction point.
  target_rate_bps_ = rate_bps_;
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  rate_bps_ = std::max(min_rate_, rate_bps_ * (1.0 - alpha_ / 2.0));
  last_alpha_update_ = now;
  last_increase_ = now;
  timer_stage_ = 0;
  byte_stage_ = 0;
  bytes_since_increase_ = 0;
}

void Dcqcn::increase_event() {
  const int stage = std::max(timer_stage_, byte_stage_);
  if (stage < cfg_.fast_recovery_stages) {
    // Fast recovery: halve the distance to the target rate.
  } else if (stage == cfg_.fast_recovery_stages) {
    target_rate_bps_ += rate_ai_;  // additive increase
  } else {
    target_rate_bps_ += rate_hai_;  // hyper increase
  }
  target_rate_bps_ = std::min(target_rate_bps_, params_.host_bw.bps());
  rate_bps_ = (target_rate_bps_ + rate_bps_) / 2.0;
}

void Dcqcn::run_timers(sim::TimePs now) {
  // α decays toward 0 while no CNPs arrive.
  while (now - last_alpha_update_ >= cfg_.alpha_timer) {
    alpha_ *= (1.0 - cfg_.g);
    last_alpha_update_ += cfg_.alpha_timer;
  }
  // Timer-driven increase events.
  while (now - last_increase_ >= cfg_.increase_timer) {
    ++timer_stage_;
    last_increase_ += cfg_.increase_timer;
    increase_event();
  }
  // Byte-counter-driven increase events.
  while (bytes_since_increase_ >= cfg_.increase_bytes) {
    ++byte_stage_;
    bytes_since_increase_ -= cfg_.increase_bytes;
    increase_event();
  }
}

CcDecision Dcqcn::on_ack(const AckContext& ctx) {
  bytes_since_increase_ += ctx.acked_bytes;
  if (ctx.ecn_echo &&
      (last_cnp_ < 0 || ctx.now - last_cnp_ >= cfg_.cnp_interval)) {
    last_cnp_ = ctx.now;
    on_cnp(ctx.now);
  } else {
    run_timers(ctx.now);
  }
  rate_bps_ = std::clamp(rate_bps_, min_rate_, params_.host_bw.bps());
  return decision();
}

void Dcqcn::on_timeout() {
  rate_bps_ = std::max(min_rate_, rate_bps_ / 2.0);
  target_rate_bps_ = rate_bps_;
}

}  // namespace powertcp::cc
