#include "cc/dcqcn.hpp"

#include <algorithm>

namespace powertcp::cc {

Dcqcn::Dcqcn(const FlowParams& params, const DcqcnConfig& cfg)
    : params_(params), cfg_(cfg) {
  rate_ai_ =
      cfg_.rate_ai_bps >= 0 ? cfg_.rate_ai_bps : params_.host_bw.bps() / 640.0;
  rate_hai_ =
      cfg_.rate_hai_bps >= 0 ? cfg_.rate_hai_bps : params_.host_bw.bps() / 64.0;
  min_rate_ = params_.host_bw.bps() * cfg_.min_rate_fraction;
  rate_bps_ = params_.host_bw.bps();
  target_rate_bps_ = rate_bps_;
}

CcDecision Dcqcn::decision() const {
  const double cwnd =
      std::max<double>(params_.mss,
                       rate_bps_ / 8.0 * sim::to_seconds(params_.base_rtt) * 4.0);
  return CcDecision{cwnd, rate_bps_};
}

void Dcqcn::on_cnp(sim::TimePs now) {
  // Rate cut per the DCQCN reaction point.
  target_rate_bps_ = rate_bps_;
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  rate_bps_ = std::max(min_rate_, rate_bps_ * (1.0 - alpha_ / 2.0));
  last_alpha_update_ = now;
  last_increase_ = now;
  timer_stage_ = 0;
  byte_stage_ = 0;
  bytes_since_increase_ = 0;
}

void Dcqcn::increase_event() {
  const int stage = std::max(timer_stage_, byte_stage_);
  if (stage < cfg_.fast_recovery_stages) {
    // Fast recovery: halve the distance to the target rate.
  } else if (stage == cfg_.fast_recovery_stages) {
    target_rate_bps_ += rate_ai_;  // additive increase
  } else {
    target_rate_bps_ += rate_hai_;  // hyper increase
  }
  target_rate_bps_ = std::min(target_rate_bps_, params_.host_bw.bps());
  rate_bps_ = (target_rate_bps_ + rate_bps_) / 2.0;
}

void Dcqcn::run_timers(sim::TimePs now) {
  // α decays toward 0 while no CNPs arrive.
  while (now - last_alpha_update_ >= cfg_.alpha_timer) {
    alpha_ *= (1.0 - cfg_.g);
    last_alpha_update_ += cfg_.alpha_timer;
  }
  // Timer-driven increase events.
  while (now - last_increase_ >= cfg_.increase_timer) {
    ++timer_stage_;
    last_increase_ += cfg_.increase_timer;
    increase_event();
  }
  // Byte-counter-driven increase events.
  while (bytes_since_increase_ >= cfg_.increase_bytes) {
    ++byte_stage_;
    bytes_since_increase_ -= cfg_.increase_bytes;
    increase_event();
  }
}

CcDecision Dcqcn::on_ack(const AckContext& ctx) {
  bytes_since_increase_ += ctx.acked_bytes;
  if (ctx.ecn_echo &&
      (last_cnp_ < 0 || ctx.now - last_cnp_ >= cfg_.cnp_interval)) {
    last_cnp_ = ctx.now;
    on_cnp(ctx.now);
  } else {
    run_timers(ctx.now);
  }
  rate_bps_ = std::clamp(rate_bps_, min_rate_, params_.host_bw.bps());
  return decision();
}

void Dcqcn::on_timeout() {
  rate_bps_ = std::max(min_rate_, rate_bps_ / 2.0);
  target_rate_bps_ = rate_bps_;
}

}  // namespace powertcp::cc
