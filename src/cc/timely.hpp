#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file timely.hpp
/// TIMELY (Mittal et al., SIGCOMM 2015) — the paper's representative
/// *current-based* CC: rate control from the RTT gradient, with low/high
/// RTT thresholds and hyperactive increase (HAI) after five consecutive
/// negative-gradient updates. As §2.2 analyses, the gradient signal has
/// no unique queue-length equilibrium.

namespace powertcp::cc {

struct TimelyConfig {
  /// EWMA weight for the RTT-difference filter.
  double alpha = 0.875;
  /// Multiplicative decrease factor β.
  double beta = 0.8;
  /// Additive step δ in bits/s; < 0 derives HostBw/100.
  double delta_bps = -1.0;
  /// Below t_low: pure additive increase. Above t_high: proportional
  /// decrease regardless of gradient. <0 derive 1.5·τ / 5·τ.
  sim::TimePs t_low = -1;
  sim::TimePs t_high = -1;
  int hai_threshold = 5;
  double min_rate_fraction = 0.001;  ///< floor as a fraction of HostBw
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& timely_param_specs();
TimelyConfig timely_config_from_params(const ParamMap& overrides);

class Timely final : public CcAlgorithm {
 public:
  Timely(const FlowParams& params, const TimelyConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "TIMELY"; }

  double rate_bps() const { return rate_bps_; }

 private:
  CcDecision decision() const;

  FlowParams params_;
  TimelyConfig cfg_;
  sim::TimePs t_low_;
  sim::TimePs t_high_;
  double delta_;
  double min_rate_;

  double rate_bps_;
  double rtt_diff_ = 0.0;  ///< filtered RTT difference (seconds)
  sim::TimePs prev_rtt_ = 0;
  bool have_prev_ = false;
  int negative_gradient_streak_ = 0;
};

}  // namespace powertcp::cc
