#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file mix.hpp
/// Per-host congestion-control mixes: the brownfield-coexistence axis.
///
/// A mix spec like `dctcp:0.5+powertcp:0.5` names registry schemes with
/// fractional host weights. The harness resolves each member through
/// cc::Registry into its own FlowCcFactory and assigns *hosts* (not
/// flows) to members deterministically from the experiment seed —
/// modelling a rollout where some machines run the incumbent stack and
/// some the new one, all sharing the same fabric and AQM.
///
/// Members are separated by `+` or `,`: config lists split on commas,
/// so a mix inside a swept list uses `+` (`cc_mix = "dctcp+powertcp,
/// powertcp"` sweeps a 50/50 mix against a homogeneous cell).

namespace powertcp::cc {

/// One scheme in a mix. `label` is a scheme-run label (a registry name,
/// or a config-defined `[cc.<label>]` alias carrying parameters);
/// `weight` is the normalized share of hosts, in (0, 1].
struct MixMember {
  std::string label;
  double weight = 1.0;
};

/// Parses `name[:weight]` members separated by `+` or `,`. Omitted
/// weights default to 1 before normalization, so `dctcp+powertcp` is a
/// 50/50 split. Throws std::invalid_argument on an empty spec, an
/// empty member name, a duplicate name, or a weight that is not a
/// finite positive number. Weights are normalized to sum to 1.
std::vector<MixMember> parse_cc_mix(const std::string& spec);

/// Canonical display form, `dctcp:0.50+powertcp:0.50` — stable across
/// equivalent input spellings, used as the table key for a mix cell.
std::string mix_display(const std::vector<MixMember>& mix);

/// Assigns `n_hosts` hosts to mix members: exact largest-remainder
/// quotas per member (every weight gets its fair floor, leftover hosts
/// go to the largest fractional remainders, ties broken by member
/// order), then a Fisher–Yates shuffle seeded by `seed` so member
/// blocks do not correlate with host index. Returns one member index
/// per host. Deterministic: a pure function of (mix, n_hosts, seed).
std::vector<int> mix_assignment(const std::vector<MixMember>& mix,
                                int n_hosts, std::uint64_t seed);

}  // namespace powertcp::cc
