#include "cc/factory.hpp"

#include <stdexcept>

#include "cc/registry.hpp"

namespace powertcp::cc {

CcFactory make_factory(const std::string& name) {
  const Scheme& scheme = Registry::instance().at(name);
  if (scheme.message_transport) {
    throw std::invalid_argument(
        "make_factory: '" + name +
        "' is a receiver-driven message transport, not a sender CC "
        "algorithm — enable it via host::Host::enable_homa");
  }
  // Default parameters and an empty topology; schemes with topology
  // needs (reTCP) throw here with a pointer at the registry.
  FlowCcFactory factory = scheme.make(ParamMap{}, SchemeTopology{});
  return [factory](const FlowParams& p) { return factory(p, FlowEndpoints{}); };
}

const std::vector<std::string>& sender_cc_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Scheme& s : Registry::instance().schemes()) {
      if (s.message_transport || s.rtt_variant || s.needs.circuit_schedule) {
        continue;
      }
      names.push_back(s.name);
    }
    return names;
  }();
  return kNames;
}

}  // namespace powertcp::cc
