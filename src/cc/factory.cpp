#include "cc/factory.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "cc/classic.hpp"
#include "cc/dcqcn.hpp"
#include "cc/dctcp.hpp"
#include "cc/hpcc.hpp"
#include "cc/power_tcp.hpp"
#include "cc/swift.hpp"
#include "cc/theta_power_tcp.hpp"
#include "cc/timely.hpp"

namespace powertcp::cc {

CcFactory make_factory(const std::string& name) {
  if (name == "powertcp") {
    return [](const FlowParams& p) { return std::make_unique<PowerTcp>(p); };
  }
  if (name == "powertcp-rtt") {
    return [](const FlowParams& p) {
      PowerTcpConfig cfg;
      cfg.per_rtt_update = true;
      return std::make_unique<PowerTcp>(p, cfg);
    };
  }
  if (name == "theta-powertcp") {
    return [](const FlowParams& p) {
      return std::make_unique<ThetaPowerTcp>(p);
    };
  }
  if (name == "hpcc") {
    return [](const FlowParams& p) { return std::make_unique<Hpcc>(p); };
  }
  if (name == "hpcc-rtt") {
    return [](const FlowParams& p) {
      HpccConfig cfg;
      cfg.per_rtt_update = true;
      return std::make_unique<Hpcc>(p, cfg);
    };
  }
  if (name == "dcqcn") {
    return [](const FlowParams& p) { return std::make_unique<Dcqcn>(p); };
  }
  if (name == "timely") {
    return [](const FlowParams& p) { return std::make_unique<Timely>(p); };
  }
  if (name == "dctcp") {
    return [](const FlowParams& p) { return std::make_unique<Dctcp>(p); };
  }
  if (name == "swift") {
    return [](const FlowParams& p) { return std::make_unique<Swift>(p); };
  }
  if (name == "newreno") {
    return [](const FlowParams& p) { return std::make_unique<NewReno>(p); };
  }
  if (name == "cubic") {
    return [](const FlowParams& p) { return std::make_unique<Cubic>(p); };
  }
  throw std::invalid_argument("make_factory: unknown CC algorithm '" + name +
                              "'");
}

const std::vector<std::string>& sender_cc_names() {
  static const std::vector<std::string> kNames = {
      "powertcp", "theta-powertcp", "hpcc",  "dcqcn", "timely",
      "dctcp",    "swift",          "newreno", "cubic"};
  return kNames;
}

}  // namespace powertcp::cc
