#include "cc/mix.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "sim/rng.hpp"

namespace powertcp::cc {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::vector<MixMember> parse_cc_mix(const std::string& spec) {
  std::vector<MixMember> mix;
  std::string member;
  const auto flush = [&mix](const std::string& raw) {
    const std::string item = trim(raw);
    if (item.empty()) {
      throw std::invalid_argument("cc_mix: empty member in '" + raw + "'");
    }
    MixMember m;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      m.label = item;
    } else {
      m.label = trim(item.substr(0, colon));
      const std::string wtext = trim(item.substr(colon + 1));
      if (m.label.empty() || wtext.empty()) {
        throw std::invalid_argument("cc_mix: malformed member '" + item +
                                    "' (want name or name:weight)");
      }
      std::size_t used = 0;
      try {
        m.weight = std::stod(wtext, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != wtext.size() || !std::isfinite(m.weight) || m.weight <= 0) {
        throw std::invalid_argument("cc_mix: weight of '" + m.label +
                                    "' must be a finite positive number, got '" +
                                    wtext + "'");
      }
    }
    for (const MixMember& prev : mix) {
      if (prev.label == m.label) {
        throw std::invalid_argument("cc_mix: duplicate member '" + m.label +
                                    "'");
      }
    }
    mix.push_back(std::move(m));
  };
  for (char c : spec) {
    if (c == '+' || c == ',') {
      flush(member);
      member.clear();
    } else {
      member.push_back(c);
    }
  }
  flush(member);

  double total = 0;
  for (const MixMember& m : mix) total += m.weight;
  for (MixMember& m : mix) m.weight /= total;
  return mix;
}

std::string mix_display(const std::vector<MixMember>& mix) {
  std::string out;
  char buf[32];
  for (const MixMember& m : mix) {
    if (!out.empty()) out += '+';
    std::snprintf(buf, sizeof(buf), "%.2f", m.weight);
    out += m.label;
    out += ':';
    out += buf;
  }
  return out;
}

std::vector<int> mix_assignment(const std::vector<MixMember>& mix,
                                int n_hosts, std::uint64_t seed) {
  if (mix.empty()) {
    throw std::invalid_argument("mix_assignment: empty mix");
  }
  if (n_hosts < 0) {
    throw std::invalid_argument("mix_assignment: negative host count");
  }
  // Largest-remainder quotas: floors first, leftovers to the biggest
  // fractional parts (member order breaks ties, so the first-listed
  // scheme wins the odd host of a 50/50 split).
  const std::size_t k = mix.size();
  std::vector<int> quota(k, 0);
  std::vector<std::pair<double, std::size_t>> rema;
  rema.reserve(k);
  int assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double ideal = mix[i].weight * static_cast<double>(n_hosts);
    quota[i] = static_cast<int>(std::floor(ideal));
    assigned += quota[i];
    rema.emplace_back(ideal - std::floor(ideal), i);
  }
  std::stable_sort(rema.begin(), rema.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  int left = n_hosts - assigned;
  for (std::size_t r = 0; left > 0; ++r, --left) ++quota[rema[r % k].second];

  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_hosts));
  for (std::size_t i = 0; i < k; ++i) {
    out.insert(out.end(), static_cast<std::size_t>(quota[i]),
               static_cast<int>(i));
  }
  // Fisher–Yates with the experiment RNG so placement is reproducible
  // from the seed but uncorrelated with host numbering.
  sim::Rng rng(seed);
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace powertcp::cc
