#include "cc/dctcp.hpp"

#include <algorithm>

namespace powertcp::cc {

const std::vector<ParamSpec>& dctcp_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"g", "0.0625", "EWMA gain of the marked-fraction estimate"},
      {"max_cwnd_bdp", "1.0", "window clamp as a multiple of HostBw*tau"},
  };
  return kSpecs;
}

DctcpConfig dctcp_config_from_params(const ParamMap& overrides) {
  const ParamReader r("dctcp", overrides, dctcp_param_specs());
  DctcpConfig cfg;
  cfg.g = r.get_double("g", cfg.g);
  cfg.max_cwnd_bdp = r.get_double("max_cwnd_bdp", cfg.max_cwnd_bdp);
  return cfg;
}

Dctcp::Dctcp(const FlowParams& params, const DctcpConfig& cfg)
    : params_(params), cfg_(cfg) {
  max_cwnd_ = cfg_.max_cwnd_bdp * params_.bdp_bytes();
  cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes());
}

CcDecision Dctcp::on_ack(const AckContext& ctx) {
  acked_bytes_ += ctx.acked_bytes;
  if (ctx.ecn_echo) marked_bytes_ += ctx.acked_bytes;

  if (ctx.ack_seq > window_end_seq_) {
    // One observation window (≈ RTT) has elapsed.
    const double f =
        acked_bytes_ > 0
            ? static_cast<double>(marked_bytes_) /
                  static_cast<double>(acked_bytes_)
            : 0.0;
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * f;
    if (marked_bytes_ > 0) {
      cwnd_ *= 1.0 - alpha_ / 2.0;
    } else {
      cwnd_ += params_.mss;  // additive increase per RTT
    }
    cwnd_ = std::clamp<double>(cwnd_, params_.mss, max_cwnd_);
    acked_bytes_ = 0;
    marked_bytes_ = 0;
    window_end_seq_ = ctx.snd_nxt;
  }
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

void Dctcp::on_timeout() {
  cwnd_ = std::max<double>(params_.mss, cwnd_ / 2.0);
}

}  // namespace powertcp::cc
