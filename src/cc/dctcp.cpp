#include "cc/dctcp.hpp"

#include <algorithm>

namespace powertcp::cc {

Dctcp::Dctcp(const FlowParams& params, const DctcpConfig& cfg)
    : params_(params), cfg_(cfg) {
  max_cwnd_ = cfg_.max_cwnd_bdp * params_.bdp_bytes();
  cwnd_ = std::max<double>(params_.mss, params_.bdp_bytes());
}

CcDecision Dctcp::on_ack(const AckContext& ctx) {
  acked_bytes_ += ctx.acked_bytes;
  if (ctx.ecn_echo) marked_bytes_ += ctx.acked_bytes;

  if (ctx.ack_seq > window_end_seq_) {
    // One observation window (≈ RTT) has elapsed.
    const double f =
        acked_bytes_ > 0
            ? static_cast<double>(marked_bytes_) /
                  static_cast<double>(acked_bytes_)
            : 0.0;
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * f;
    if (marked_bytes_ > 0) {
      cwnd_ *= 1.0 - alpha_ / 2.0;
    } else {
      cwnd_ += params_.mss;  // additive increase per RTT
    }
    cwnd_ = std::clamp<double>(cwnd_, params_.mss, max_cwnd_);
    acked_bytes_ = 0;
    marked_bytes_ = 0;
    window_end_seq_ = ctx.snd_nxt;
  }
  return CcDecision{cwnd_, params_.host_bw.bps()};
}

void Dctcp::on_timeout() {
  cwnd_ = std::max<double>(params_.mss, cwnd_ / 2.0);
}

}  // namespace powertcp::cc
