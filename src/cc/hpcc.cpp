#include "cc/hpcc.hpp"

#include <algorithm>

namespace powertcp::cc {

const std::vector<ParamSpec>& hpcc_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"eta", "0.95", "target utilization"},
      {"max_stage", "5", "max consecutive additive-increase rounds"},
      {"wai_bytes", "-1",
       "additive increase; <0 derives HostBw*tau*(1-eta)/N"},
      {"max_cwnd_bdp", "1.0", "window clamp as a multiple of HostBw*tau"},
      {"per_rtt_update", "false", "update once per RTT instead of per ack"},
  };
  return kSpecs;
}

HpccConfig hpcc_config_from_params(const ParamMap& overrides,
                                   const std::string& scheme) {
  const ParamReader r(scheme, overrides, hpcc_param_specs());
  HpccConfig cfg;
  cfg.eta = r.get_double("eta", cfg.eta);
  cfg.max_stage = static_cast<int>(r.get_int("max_stage", cfg.max_stage));
  cfg.wai_bytes = r.get_double("wai_bytes", cfg.wai_bytes);
  cfg.max_cwnd_bdp = r.get_double("max_cwnd_bdp", cfg.max_cwnd_bdp);
  cfg.per_rtt_update = r.get_bool("per_rtt_update", cfg.per_rtt_update);
  return cfg;
}

Hpcc::Hpcc(const FlowParams& params, const HpccConfig& cfg)
    : params_(params),
      cfg_(cfg),
      tau_sec_(sim::to_seconds(params.base_rtt)) {
  const double bdp = params_.bdp_bytes();
  wai_ = cfg_.wai_bytes >= 0.0
             ? cfg_.wai_bytes
             : bdp * (1.0 - cfg_.eta) /
                   static_cast<double>(params_.expected_flows);
  max_cwnd_ = cfg_.max_cwnd_bdp * bdp;
  cwnd_ = std::max<double>(params_.mss, bdp);
  wc_ = cwnd_;
}

double Hpcc::measure_inflight(const net::IntHeader& hdr) {
  double u_max = 0.0;
  sim::TimePs tau_obs = 0;
  for (int i = 0; i < hdr.size() && i < prev_int_.size(); ++i) {
    const net::IntHopRecord& cur = hdr.hop(i);
    const net::IntHopRecord& prev = prev_int_.hop(i);
    const sim::TimePs dt = cur.ts - prev.ts;
    if (dt <= 0) continue;
    const double dt_sec = sim::to_seconds(dt);
    const double tx_rate =
        static_cast<double>(cur.tx_bytes - prev.tx_bytes) / dt_sec;
    const double b_bytes = cur.bandwidth_bps / 8.0;
    // HPCC uses the smaller of the two queue samples to avoid counting
    // a queue that drained within the observation window.
    const double qlen = static_cast<double>(
        std::min(cur.qlen_bytes, prev.qlen_bytes));
    const double u = qlen / (b_bytes * tau_sec_) + tx_rate / b_bytes;
    if (u > u_max) {
      u_max = u;
      tau_obs = dt;
    }
  }
  if (tau_obs <= 0) return u_;
  const sim::TimePs dt = std::min(tau_obs, params_.base_rtt);
  const double w =
      static_cast<double>(dt) / static_cast<double>(params_.base_rtt);
  u_ = u_ * (1.0 - w) + u_max * w;
  return u_;
}

void Hpcc::compute_wind(double u, bool update_wc) {
  if (u >= cfg_.eta || inc_stage_ >= cfg_.max_stage) {
    cwnd_ = wc_ / (u / cfg_.eta) + wai_;
    if (update_wc) {
      inc_stage_ = 0;
      wc_ = std::clamp(cwnd_, wai_, max_cwnd_);
    }
  } else {
    cwnd_ = wc_ + wai_;
    if (update_wc) {
      ++inc_stage_;
      wc_ = std::clamp(cwnd_, wai_, max_cwnd_);
    }
  }
  cwnd_ = std::clamp(cwnd_, wai_, max_cwnd_);
}

CcDecision Hpcc::decision() const {
  return CcDecision{cwnd_, cwnd_ / tau_sec_ * 8.0};
}

CcDecision Hpcc::on_ack(const AckContext& ctx) {
  if (ctx.int_hdr == nullptr || ctx.int_hdr->empty()) return decision();
  if (!have_prev_ || prev_int_.size() != ctx.int_hdr->size()) {
    prev_int_ = *ctx.int_hdr;
    have_prev_ = true;
    return decision();
  }
  const double u = measure_inflight(*ctx.int_hdr);
  const bool rtt_boundary = ctx.ack_seq > last_update_seq_;
  if (rtt_boundary) {
    compute_wind(u, /*update_wc=*/true);
    last_update_seq_ = ctx.snd_nxt;
  } else if (!cfg_.per_rtt_update) {
    compute_wind(u, /*update_wc=*/false);
  }
  prev_int_ = *ctx.int_hdr;
  return decision();
}

void Hpcc::on_timeout() {
  cwnd_ = std::max<double>(params_.mss, cwnd_ / 2.0);
  wc_ = cwnd_;
}

}  // namespace powertcp::cc
