#pragma once

#include <string>
#include <vector>

#include "cc/cc_algorithm.hpp"

/// \file factory.hpp
/// Name-based construction of congestion control algorithms with their
/// default (paper §4.1) configurations — the registry benches and
/// examples select from.

namespace powertcp::cc {

/// Supported names: "powertcp", "powertcp-rtt" (per-RTT update mode),
/// "theta-powertcp", "hpcc", "hpcc-rtt", "dcqcn", "timely", "dctcp",
/// "swift". Throws std::invalid_argument for unknown names.
CcFactory make_factory(const std::string& name);

/// All algorithm names the sender-side factory supports.
const std::vector<std::string>& sender_cc_names();

}  // namespace powertcp::cc
