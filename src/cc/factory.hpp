#pragma once

#include <string>
#include <vector>

#include "cc/cc_algorithm.hpp"

/// \file factory.hpp
/// Name-based construction of congestion control algorithms with their
/// default (paper §4.1) configurations. A thin compatibility layer over
/// cc::Registry (registry.hpp), which additionally exposes per-scheme
/// tunables and topology needs.

namespace powertcp::cc {

/// Supported names: every non-message-transport registry entry —
/// "powertcp", "powertcp-rtt" (per-RTT update mode), "theta-powertcp",
/// "hpcc", "hpcc-rtt", "dcqcn", "timely", "dctcp", "swift", "newreno",
/// "cubic". Throws std::invalid_argument for unknown names, for
/// "retcp" (which needs the CircuitSchedule a SchemeTopology carries —
/// use Registry::at("retcp").make), and for "homa" (a receiver-driven
/// transport enabled via host::Host::enable_homa).
CcFactory make_factory(const std::string& name);

/// Canonical algorithm names, one per scheme — excludes the "-rtt"
/// update-mode variants, the message transport, and circuit-bound
/// schemes, so benches iterating this list compare each scheme once.
const std::vector<std::string>& sender_cc_names();

}  // namespace powertcp::cc
