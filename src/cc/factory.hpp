#pragma once

/// \file factory.hpp
/// Compatibility shim: `make_factory(name)` and `sender_cc_names()`
/// live in the scheme registry (registry.hpp) now — the registry
/// additionally exposes per-scheme tunables and topology needs.
/// Existing includes keep working; new code should include
/// "cc/registry.hpp" directly.

#include "cc/registry.hpp"
