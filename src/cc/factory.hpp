#pragma once

#include <string>
#include <vector>

#include "cc/cc_algorithm.hpp"

/// \file factory.hpp
/// Name-based construction of congestion control algorithms with their
/// default (paper §4.1) configurations — the registry benches and
/// examples select from.

namespace powertcp::cc {

/// Supported names: "powertcp", "powertcp-rtt" (per-RTT update mode),
/// "theta-powertcp", "hpcc", "hpcc-rtt", "dcqcn", "timely", "dctcp",
/// "swift", "newreno", "cubic". Throws std::invalid_argument for
/// unknown names. (reTCP needs a CircuitSchedule and is constructed
/// directly; the receiver-driven Homa transport lives in host/homa.)
CcFactory make_factory(const std::string& name);

/// Canonical algorithm names, one per scheme — excludes the "-rtt"
/// update-mode variants, so benches iterating this list compare each
/// scheme once.
const std::vector<std::string>& sender_cc_names();

}  // namespace powertcp::cc
