#include "cc/registry.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "cc/classic.hpp"
#include "cc/dcqcn.hpp"
#include "cc/dctcp.hpp"
#include "cc/hpcc.hpp"
#include "cc/power_tcp.hpp"
#include "cc/retcp.hpp"
#include "cc/swift.hpp"
#include "cc/theta_power_tcp.hpp"
#include "cc/timely.hpp"
// The registry is the one place allowed to look up the stack at the
// receiver-driven transport: homa's tunables are declared in src/host
// (the layer that owns the transport) and surfaced here so harnesses
// can treat every scheme uniformly.
#include "host/homa.hpp"

namespace powertcp::cc {

namespace {

/// Round-trippable rendering for derived defaults injected as strings
/// (17 significant digits reproduce the exact double through strtod).
std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The beta the workhorse experiment matches to HPCC's W_AI =
/// BDP·(1−η)/N so the β-driven standing queue (Σβ, Appendix A) is
/// comparable across the INT-based schemes — the paper derives β
/// "reflecting the intuition for additive increase in prior work
/// [HPCC]".
void hpcc_matched_beta(const FlowParams& p, ParamMap& overrides) {
  overrides.emplace(
      "beta_bytes",
      render_double(p.bdp_bytes() * 0.05 /
                    static_cast<double>(p.expected_flows)));
}

template <typename Config, typename Algo>
FlowCcFactory plain_factory(Config cfg) {
  return [cfg](const FlowParams& p, const FlowEndpoints&) {
    return std::make_unique<Algo>(p, cfg);
  };
}

net::EcnConfig dcqcn_ecn() {
  net::EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin_bytes = 1'000;  // per Gbps: 100 KB at 100 G (HPCC's setup)
  ecn.kmax_bytes = 4'000;
  ecn.pmax = 0.2;
  return ecn;
}

net::EcnConfig dctcp_ecn() {
  net::EcnConfig ecn;
  ecn.enabled = true;
  ecn.kmin_bytes = 700;  // per Gbps: step marking ~ BDP/7
  ecn.kmax_bytes = 700;
  ecn.pmax = 1.0;
  return ecn;
}

}  // namespace

Registry::Registry() {
  const auto add = [this](Scheme s) { schemes_.push_back(std::move(s)); };

  {
    Scheme s;
    s.name = "powertcp";
    s.summary = "PowerTCP (paper Alg. 1): INT-driven power control";
    s.params = power_tcp_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<PowerTcpConfig, PowerTcp>(
          power_tcp_config_from_params(o, "powertcp"));
    };
    s.experiment_defaults = hpcc_matched_beta;
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "powertcp-rtt";
    s.summary = "PowerTCP restricted to per-RTT updates (RDCN study mode)";
    s.params = power_tcp_param_specs();
    s.rtt_variant = true;
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      ParamMap merged = o;
      merged.emplace("per_rtt_update", "true");
      return plain_factory<PowerTcpConfig, PowerTcp>(
          power_tcp_config_from_params(merged, "powertcp-rtt"));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "theta-powertcp";
    s.summary = "theta-PowerTCP (paper Alg. 2): RTT-only power control";
    s.params = theta_power_tcp_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<ThetaPowerTcpConfig, ThetaPowerTcp>(
          theta_power_tcp_config_from_params(o));
    };
    s.experiment_defaults = hpcc_matched_beta;
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "hpcc";
    s.summary = "HPCC (SIGCOMM 2019): INT-driven inflight control";
    s.params = hpcc_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<HpccConfig, Hpcc>(hpcc_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "hpcc-rtt";
    s.summary = "HPCC restricted to per-RTT updates (RDCN study mode)";
    s.params = hpcc_param_specs();
    s.rtt_variant = true;
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      ParamMap merged = o;
      merged.emplace("per_rtt_update", "true");
      return plain_factory<HpccConfig, Hpcc>(
          hpcc_config_from_params(merged, "hpcc-rtt"));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "dcqcn";
    s.summary = "DCQCN (SIGCOMM 2015): ECN-driven RDMA rate control";
    s.params = dcqcn_param_specs();
    s.needs.ecn = dcqcn_ecn();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<DcqcnConfig, Dcqcn>(dcqcn_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "timely";
    s.summary = "TIMELY (SIGCOMM 2015): RTT-gradient rate control";
    s.params = timely_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<TimelyConfig, Timely>(timely_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "dctcp";
    s.summary = "DCTCP (SIGCOMM 2010): ECN-fraction window control";
    s.params = dctcp_param_specs();
    s.needs.ecn = dctcp_ecn();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<DctcpConfig, Dctcp>(dctcp_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "swift";
    s.summary = "Swift (SIGCOMM 2020): target-delay AIMD";
    s.params = swift_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<SwiftConfig, Swift>(swift_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "newreno";
    s.summary = "TCP NewReno: loss-based AIMD (WAN-heritage baseline)";
    s.params = new_reno_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<NewRenoConfig, NewReno>(
          new_reno_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "cubic";
    s.summary = "CUBIC: loss-based cubic growth (WAN-heritage baseline)";
    s.params = cubic_param_specs();
    s.make = [](const ParamMap& o, const SchemeTopology&) {
      return plain_factory<CubicConfig, Cubic>(cubic_config_from_params(o));
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "retcp";
    s.summary = "reTCP (NSDI 2020): circuit-aware prebuffering window";
    s.params = re_tcp_param_specs();
    s.needs.circuit_schedule = true;
    s.make = [](const ParamMap& o, const SchemeTopology& topo) {
      if (topo.circuit == nullptr) {
        throw std::invalid_argument(
            "scheme 'retcp' needs a CircuitSchedule: run it on a "
            "circuit/RDCN topology (the registry's SchemeTopology "
            "carries the schedule)");
      }
      ReTcpConfig cfg = re_tcp_config_from_params(o);
      cfg.circuit_bw_bps = topo.circuit_bw_bps;
      cfg.packet_bw_bps = topo.packet_bw_bps;
      const net::CircuitSchedule* schedule = topo.circuit;
      return FlowCcFactory(
          [cfg, schedule](const FlowParams& p, const FlowEndpoints& e) {
            return std::make_unique<ReTcp>(p, schedule, e.src_tor, e.dst_tor,
                                           cfg);
          });
    };
    add(std::move(s));
  }
  {
    Scheme s;
    s.name = "homa";
    s.summary =
        "HOMA-style receiver-driven message transport (SIGCOMM 2018)";
    s.params = host::homa_param_specs();
    s.needs.priority_bands = 8;
    s.message_transport = true;
    add(std::move(s));
  }
}

const Registry& Registry::instance() {
  static const Registry kRegistry;
  return kRegistry;
}

const Scheme* Registry::find(const std::string& name) const {
  for (const auto& s : schemes_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Scheme& Registry::at(const std::string& name) const {
  const Scheme* s = find(name);
  if (s == nullptr) {
    std::string known;
    for (const auto& scheme : schemes_) {
      if (!known.empty()) known += ", ";
      known += scheme.name;
    }
    throw std::invalid_argument("unknown scheme '" + name +
                                "'; registered: " + known);
  }
  return *s;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(schemes_.size());
  for (const auto& s : schemes_) out.push_back(s.name);
  return out;
}

CcFactory make_factory(const std::string& name) {
  const Scheme& scheme = Registry::instance().at(name);
  if (scheme.message_transport) {
    throw std::invalid_argument(
        "make_factory: '" + name +
        "' is a receiver-driven message transport, not a sender CC "
        "algorithm — enable it via host::Host::enable_homa");
  }
  // Default parameters and an empty topology; schemes with topology
  // needs (reTCP) throw here with a pointer at the registry.
  FlowCcFactory factory = scheme.make(ParamMap{}, SchemeTopology{});
  return [factory](const FlowParams& p) { return factory(p, FlowEndpoints{}); };
}

const std::vector<std::string>& sender_cc_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Scheme& s : Registry::instance().schemes()) {
      if (s.message_transport || s.rtt_variant || s.needs.circuit_schedule) {
        continue;
      }
      names.push_back(s.name);
    }
    return names;
  }();
  return kNames;
}

}  // namespace powertcp::cc
