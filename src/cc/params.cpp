#include "cc/params.hpp"

#include <cstdlib>
#include <stdexcept>

namespace powertcp::cc {

namespace {

[[noreturn]] void bad_value(const std::string& scheme, const std::string& key,
                            const std::string& value, const char* want) {
  throw std::invalid_argument("scheme '" + scheme + "': parameter '" + key +
                              "' = '" + value + "' is not a valid " + want);
}

}  // namespace

std::optional<double> parse_double_value(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int_value(const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> parse_bool_value(const std::string& text) {
  if (text == "true" || text == "on" || text == "1") return true;
  if (text == "false" || text == "off" || text == "0") return false;
  return std::nullopt;
}

ParamReader::ParamReader(const std::string& scheme, const ParamMap& overrides,
                         const std::vector<ParamSpec>& specs)
    : scheme_(scheme), overrides_(overrides) {
  for (const auto& [key, value] : overrides) {
    (void)value;
    bool declared = false;
    for (const auto& spec : specs) declared = declared || spec.key == key;
    if (!declared) {
      std::string known;
      for (const auto& spec : specs) {
        if (!known.empty()) known += ", ";
        known += spec.key;
      }
      throw std::invalid_argument("scheme '" + scheme +
                                  "': unknown parameter '" + key +
                                  "'; declared: " + known);
    }
  }
}

const std::string* ParamReader::raw(const std::string& key) const {
  const auto it = overrides_.find(key);
  return it == overrides_.end() ? nullptr : &it->second;
}

bool ParamReader::has(const std::string& key) const {
  return raw(key) != nullptr;
}

double ParamReader::get_double(const std::string& key, double fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const auto parsed = parse_double_value(*v);
  if (!parsed) bad_value(scheme_, key, *v, "number");
  return *parsed;
}

std::int64_t ParamReader::get_int(const std::string& key,
                                  std::int64_t fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const auto parsed = parse_int_value(*v);
  if (!parsed) bad_value(scheme_, key, *v, "integer");
  return *parsed;
}

bool ParamReader::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  const auto parsed = parse_bool_value(*v);
  if (!parsed) bad_value(scheme_, key, *v, "boolean (true/false/on/off/1/0)");
  return *parsed;
}

sim::TimePs ParamReader::get_microseconds(const std::string& key,
                                          sim::TimePs fallback) const {
  const std::string* v = raw(key);
  if (v == nullptr) return fallback;
  return sim::from_seconds(get_double(key, 0.0) * 1e-6);
}

}  // namespace powertcp::cc
