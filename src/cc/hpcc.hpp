#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file hpcc.hpp
/// HPCC (Li et al., SIGCOMM 2019) — the paper's strongest baseline and
/// the scheme PowerTCP shares its INT feedback with. Implements the
/// published Algorithm 1: per-hop normalized inflight
///
///   u_j = min(qlen, qlen_prev) / (B_j · T) + txRate_j / B_j
///
/// maximum over hops, EWMA-smoothed into U, then multiplicative
/// adjustment against the target utilization η with an additive term
/// W_AI, reference window W_c updated once per RTT and at most
/// `max_stage` consecutive additive-increase rounds.

namespace powertcp::cc {

struct HpccConfig {
  double eta = 0.95;
  int max_stage = 5;
  /// Additive increase in bytes; < 0 derives HostBw·τ·(1−η)/N.
  double wai_bytes = -1.0;
  double max_cwnd_bdp = 1.0;
  /// Update once per RTT only (RDCN case study mode, §5).
  bool per_rtt_update = false;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& hpcc_param_specs();
HpccConfig hpcc_config_from_params(const ParamMap& overrides,
                                   const std::string& scheme = "hpcc");

class Hpcc final : public CcAlgorithm {
 public:
  Hpcc(const FlowParams& params, const HpccConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "HPCC"; }

  double utilization() const { return u_; }
  double cwnd() const { return cwnd_; }

 private:
  double measure_inflight(const net::IntHeader& hdr);
  void compute_wind(double u, bool update_wc);
  CcDecision decision() const;

  FlowParams params_;
  HpccConfig cfg_;
  double wai_;
  double tau_sec_;
  double max_cwnd_;

  double cwnd_;
  double wc_;          ///< reference window
  double u_ = 1.0;     ///< smoothed utilization estimate
  int inc_stage_ = 0;
  net::IntHeader prev_int_;
  bool have_prev_ = false;
  std::int64_t last_update_seq_ = 0;
};

}  // namespace powertcp::cc
