#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file theta_power_tcp.hpp
/// θ-PowerTCP (paper §3.5, Algorithm 2): the standalone variant for
/// legacy switches. Rearranging e/f with q/b + τ = θ and q̇/b = θ̇ gives
///
///   Γ_norm = (θ̇ + 1) · θ / τ
///
/// so the same power control law runs from end-host RTT measurements
/// alone. It assumes the bottleneck transmits at full bandwidth
/// (µ = b), which costs it the multiplicative ramp into *unused*
/// bandwidth — the trade-off Figs. 6–7 show for long flows. Window
/// updates happen once per RTT.

namespace powertcp::cc {

struct ThetaPowerTcpConfig {
  double gamma = 0.9;
  /// Additive increase in bytes; < 0 derives HostBw·τ/N.
  double beta_bytes = -1.0;
  double max_cwnd_bdp = 1.0;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& theta_power_tcp_param_specs();
ThetaPowerTcpConfig theta_power_tcp_config_from_params(
    const ParamMap& overrides);

class ThetaPowerTcp final : public CcAlgorithm {
 public:
  ThetaPowerTcp(const FlowParams& params, const ThetaPowerTcpConfig& cfg = {});

  CcDecision initial() const override { return line_rate_start(params_); }
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "Theta-PowerTCP"; }

  double smoothed_power() const { return smoothed_power_; }
  double cwnd() const { return cwnd_; }

 private:
  CcDecision decision() const;

  FlowParams params_;
  ThetaPowerTcpConfig cfg_;
  double beta_;
  double tau_sec_;
  double max_cwnd_;

  double cwnd_;
  double cwnd_old_;
  double smoothed_power_ = 1.0;
  sim::TimePs prev_rtt_ = 0;
  sim::TimePs prev_ack_time_ = 0;
  bool have_prev_ = false;
  std::int64_t last_update_seq_ = 0;
};

}  // namespace powertcp::cc
