#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file params.hpp
/// String-typed tunable parameters for congestion control schemes.
///
/// Every scheme declares a table of ParamSpecs (name, rendered default,
/// one-line description) and accepts a ParamMap of `key=value` overrides
/// — the form config files ([cc.<scheme>] sections) and the registry
/// hand around. ParamReader does the typed parsing: an override for an
/// undeclared key, or a value that does not parse, throws
/// std::invalid_argument naming the scheme and key.

namespace powertcp::cc {

/// `key=value` overrides, e.g. parsed from a `[cc.powertcp]` section.
/// Ordered so diagnostics and --list-schemes output are stable.
using ParamMap = std::map<std::string, std::string>;

/// One declared tunable. `default_value` is documentation (the config
/// struct initializer is authoritative); it is rendered by
/// `powertcp_run --schemes`.
struct ParamSpec {
  std::string key;
  std::string default_value;
  std::string description;
};

/// Shared scalar parsers — the single definition of what counts as a
/// number/boolean everywhere strings carry config (ParamReader here,
/// harness::SectionView for config files). Empty optional means the
/// text does not parse; the caller owns error shaping.
std::optional<double> parse_double_value(const std::string& text);
std::optional<std::int64_t> parse_int_value(const std::string& text);
std::optional<bool> parse_bool_value(const std::string& text);

/// Typed access to a ParamMap against a scheme's declared specs.
/// Construction validates that every override names a declared key.
class ParamReader {
 public:
  /// Throws std::invalid_argument if `overrides` contains a key absent
  /// from `specs` ("scheme 'x': unknown parameter 'y'; declared: ...").
  ParamReader(const std::string& scheme, const ParamMap& overrides,
              const std::vector<ParamSpec>& specs);

  bool has(const std::string& key) const;

  /// Each getter returns `fallback` when the key is not overridden and
  /// throws std::invalid_argument when the override does not parse.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Value given in microseconds, returned as simulator time.
  sim::TimePs get_microseconds(const std::string& key,
                               sim::TimePs fallback) const;

 private:
  const std::string* raw(const std::string& key) const;

  std::string scheme_;
  const ParamMap& overrides_;
};

}  // namespace powertcp::cc
