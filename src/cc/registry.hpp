#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"
#include "net/egress_port.hpp"

/// \file registry.hpp
/// The scheme registry: one entry per congestion control scheme (plus
/// the receiver-driven HOMA transport), each carrying its factory, its
/// declared tunable parameters, and its *topology needs* — the fabric
/// features the scheme cannot run without (priority bands for HOMA, a
/// CircuitSchedule for reTCP, an ECN marking profile for DCQCN/DCTCP).
/// Harnesses and the `powertcp_run` config runner drive every scheme
/// through this table; no scheme is a string special-case anywhere
/// downstream.

namespace powertcp::net {
class CircuitSchedule;
}

namespace powertcp::cc {

/// Fabric features a scheme requires. The experiment harness applies
/// these to the topology before building it.
struct TopologyNeeds {
  /// Switch priority bands to configure (HOMA: 8; 0 = FIFO).
  int priority_bands = 0;
  /// Scheme receives explicit circuit-state feedback (reTCP): the
  /// factory throws unless SchemeTopology carries a CircuitSchedule.
  bool circuit_schedule = false;
  /// ECN marking profile (thresholds per Gbps, FatTreeConfig semantics);
  /// disabled for schemes that do not react to marks.
  net::EcnConfig ecn;
};

/// Topology-derived context handed to factories at construction time.
/// Plain window/rate schemes ignore it; reTCP needs all of it.
struct SchemeTopology {
  const net::CircuitSchedule* circuit = nullptr;
  double circuit_bw_bps = 0;
  double packet_bw_bps = 0;
};

/// Per-flow placement for factories whose algorithm is route-aware
/// (reTCP tracks its sender's (src ToR, dst ToR) circuit days).
struct FlowEndpoints {
  int src_tor = -1;
  int dst_tor = -1;
};

/// A per-flow algorithm factory bound to one (params, topology) pair.
using FlowCcFactory = std::function<std::unique_ptr<CcAlgorithm>(
    const FlowParams&, const FlowEndpoints&)>;

struct Scheme {
  std::string name;
  std::string summary;
  /// Declared `key=value` tunables (rendered by powertcp_run --schemes).
  std::vector<ParamSpec> params;
  TopologyNeeds needs;
  /// Receiver-driven message transport (HOMA): flows run through
  /// host::Host::enable_homa rather than a sender CcAlgorithm, so
  /// `make` is null.
  bool message_transport = false;
  /// True for the "-rtt" update-mode variants, which compare the same
  /// scheme twice and are therefore excluded from sender_cc_names().
  bool rtt_variant = false;
  /// Builds the flow factory. Throws std::invalid_argument on unknown
  /// parameter keys, unparseable values, or missing topology needs.
  std::function<FlowCcFactory(const ParamMap&, const SchemeTopology&)> make;
  /// Tuned defaults the workhorse fat-tree experiment injects for keys
  /// the config does not pin (e.g. PowerTCP's beta matched to HPCC's
  /// W_AI so the INT schemes hold comparable standing queues).
  std::function<void(const FlowParams&, ParamMap&)> experiment_defaults;
};

/// Name-based construction with default (paper §4.1) parameters and an
/// empty topology — the historical `factory.hpp` entry point, now a
/// thin wrapper over the registry. Throws std::invalid_argument for
/// unknown names, for message transports ("homa" is enabled via
/// host::Host::enable_homa), and for schemes with topology needs
/// ("retcp" needs the CircuitSchedule a SchemeTopology carries).
CcFactory make_factory(const std::string& name);

/// Canonical algorithm names, one per scheme — excludes the "-rtt"
/// update-mode variants, the message transport, and circuit-bound
/// schemes, so benches iterating this list compare each scheme once.
const std::vector<std::string>& sender_cc_names();

class Registry {
 public:
  /// The process-wide table, built once (thread-safe magic static).
  static const Registry& instance();

  /// nullptr when `name` is not registered.
  const Scheme* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names.
  const Scheme& at(const std::string& name) const;

  /// Registration order: the window/rate schemes of Fig. 1's taxonomy
  /// first, then reTCP, then the message transport.
  const std::vector<Scheme>& schemes() const { return schemes_; }
  std::vector<std::string> names() const;

 private:
  Registry();
  std::vector<Scheme> schemes_;
};

}  // namespace powertcp::cc
