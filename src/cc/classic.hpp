#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"

/// \file classic.hpp
/// The loss-based classics of the paper's Fig. 1 taxonomy ("CUBIC,
/// NewReno — loss/ECN-based, voltage"): included to make the
/// classification executable and as WAN-heritage baselines. Loss is
/// inferred at the sender from duplicate cumulative acks (three
/// dupacks = fast recovery) and retransmission timeouts.

namespace powertcp::cc {

struct NewRenoConfig {
  int dupack_threshold = 3;
  double ssthresh_factor = 0.5;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& new_reno_param_specs();
NewRenoConfig new_reno_config_from_params(const ParamMap& overrides);

/// TCP NewReno congestion avoidance: slow start to ssthresh, then one
/// MSS per RTT; halve on triple dupack; collapse to one MSS on RTO.
class NewReno final : public CcAlgorithm {
 public:
  NewReno(const FlowParams& params, const NewRenoConfig& cfg = {});

  CcDecision initial() const override;
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "NewReno"; }

  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  CcDecision decision() const;

  FlowParams params_;
  NewRenoConfig cfg_;
  double cwnd_;
  double ssthresh_;
  double max_cwnd_;
  std::int64_t last_ack_seq_ = -1;
  int dupacks_ = 0;
  std::int64_t recover_until_ = 0;  ///< fast-recovery exit sequence
};

struct CubicConfig {
  double c = 0.4;          ///< CUBIC aggressiveness constant
  double beta = 0.7;       ///< multiplicative decrease
  int dupack_threshold = 3;
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
const std::vector<ParamSpec>& cubic_param_specs();
CubicConfig cubic_config_from_params(const ParamMap& overrides);

/// CUBIC (Ha et al. 2008): window grows as a cubic of the time since
/// the last decrease, plateauing at the pre-loss window W_max.
class Cubic final : public CcAlgorithm {
 public:
  Cubic(const FlowParams& params, const CubicConfig& cfg = {});

  CcDecision initial() const override;
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override;
  std::string_view name() const override { return "CUBIC"; }

  double cwnd() const { return cwnd_; }
  double w_max() const { return w_max_; }

 private:
  void enter_recovery(sim::TimePs now);
  CcDecision decision() const;

  FlowParams params_;
  CubicConfig cfg_;
  double cwnd_;
  double w_max_;
  double max_cwnd_;
  sim::TimePs epoch_start_ = -1;
  std::int64_t last_ack_seq_ = -1;
  int dupacks_ = 0;
  std::int64_t recover_until_ = 0;
};

}  // namespace powertcp::cc
