#pragma once

#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"
#include "net/circuit.hpp"

/// \file retcp.hpp
/// reTCP (Mukerjee et al., NSDI 2020), the circuit-aware baseline of the
/// §5 case study. reTCP receives explicit circuit-state feedback and
/// scales its window by the circuit/packet bandwidth ratio, starting a
/// configurable *prebuffering* interval before the circuit day so the
/// standing queue can be blasted at circuit rate the moment the light
/// comes up. The prebuffered bytes are exactly the latency cost Fig. 8
/// charges it with.

namespace powertcp::cc {

struct ReTcpConfig {
  /// Ramp the window up this long before the sender's circuit day.
  sim::TimePs prebuffering = sim::microseconds(600);
  /// Window multiplier reached after `ramp_reference` of prebuffering;
  /// < 0 derives the circuit/packet bandwidth ratio.
  double scale = -1.0;
  double circuit_bw_bps = 0.0;  ///< used when scale < 0
  double packet_bw_bps = 0.0;   ///< used when scale < 0
  /// Prebuffer duration that grows the window to exactly `scale`x. The
  /// paper's sweep found 600us to be the minimum needed in its
  /// topology; longer prebuffering keeps growing the window (deeper
  /// standing queues, the latency cost Fig. 8b charges reTCP-1800us).
  sim::TimePs ramp_reference = sim::microseconds(600);
};

/// Registry param table and `key=value` parser (see power_tcp.hpp).
/// Bandwidths are not parameters: the registry factory fills
/// circuit_bw_bps / packet_bw_bps from its SchemeTopology.
const std::vector<ParamSpec>& re_tcp_param_specs();
ReTcpConfig re_tcp_config_from_params(const ParamMap& overrides);

class ReTcp final : public CcAlgorithm {
 public:
  ReTcp(const FlowParams& params, const net::CircuitSchedule* schedule,
        int src_tor, int dst_tor, const ReTcpConfig& cfg = {});

  CcDecision initial() const override;
  CcDecision on_ack(const AckContext& ctx) override;
  void on_timeout() override {}
  std::string_view name() const override { return "reTCP"; }

  /// Window multiplier at time t: 1 outside the prebuffer/day window,
  /// growing linearly with prebuffer progress inside it.
  double scale_at(sim::TimePs t) const;
  /// True when inside [day_start - prebuffering, day_end) for this
  /// sender's (src, dst) pair.
  bool scaled_at(sim::TimePs t) const { return scale_at(t) > 1.0; }

 private:
  FlowParams params_;
  const net::CircuitSchedule* schedule_;
  int src_tor_;
  int dst_tor_;
  ReTcpConfig cfg_;
  double scale_;
  double base_cwnd_;
};

}  // namespace powertcp::cc
