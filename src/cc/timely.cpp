#include "cc/timely.hpp"

#include <algorithm>

namespace powertcp::cc {

Timely::Timely(const FlowParams& params, const TimelyConfig& cfg)
    : params_(params), cfg_(cfg) {
  t_low_ = cfg_.t_low >= 0 ? cfg_.t_low : params_.base_rtt * 3 / 2;
  t_high_ = cfg_.t_high >= 0 ? cfg_.t_high : params_.base_rtt * 5;
  delta_ = cfg_.delta_bps >= 0 ? cfg_.delta_bps : params_.host_bw.bps() / 100.0;
  min_rate_ = params_.host_bw.bps() * cfg_.min_rate_fraction;
  rate_bps_ = params_.host_bw.bps();
}

CcDecision Timely::decision() const {
  // Rate-governed: window is a generous cap of four rate·τ products so
  // pacing, not the window, shapes transmission.
  const double cwnd =
      std::max<double>(params_.mss,
                       rate_bps_ / 8.0 * sim::to_seconds(params_.base_rtt) * 4.0);
  return CcDecision{cwnd, rate_bps_};
}

CcDecision Timely::on_ack(const AckContext& ctx) {
  if (ctx.rtt <= 0) return decision();
  if (!have_prev_) {
    prev_rtt_ = ctx.rtt;
    have_prev_ = true;
    return decision();
  }
  const double new_diff_sec = sim::to_seconds(ctx.rtt - prev_rtt_);
  prev_rtt_ = ctx.rtt;
  rtt_diff_ = (1.0 - cfg_.alpha) * rtt_diff_ + cfg_.alpha * new_diff_sec;
  const double normalized_gradient =
      rtt_diff_ / sim::to_seconds(params_.base_rtt);

  if (ctx.rtt < t_low_) {
    rate_bps_ += delta_;
    negative_gradient_streak_ = 0;
  } else if (ctx.rtt > t_high_) {
    // Proportional decrease toward the high threshold; gradient ignored
    // (the "oblivious to absolute queue" patch the paper discusses).
    rate_bps_ *= 1.0 - cfg_.beta * (1.0 - sim::to_seconds(t_high_) /
                                              sim::to_seconds(ctx.rtt));
    negative_gradient_streak_ = 0;
  } else if (normalized_gradient <= 0.0) {
    ++negative_gradient_streak_;
    const int n =
        negative_gradient_streak_ >= cfg_.hai_threshold ? 5 : 1;
    rate_bps_ += static_cast<double>(n) * delta_;
  } else {
    negative_gradient_streak_ = 0;
    rate_bps_ *= 1.0 - cfg_.beta * normalized_gradient;
  }
  rate_bps_ = std::clamp(rate_bps_, min_rate_, params_.host_bw.bps());
  return decision();
}

void Timely::on_timeout() {
  rate_bps_ = std::max(min_rate_, rate_bps_ / 2.0);
}

}  // namespace powertcp::cc
