#include "cc/timely.hpp"

#include <algorithm>

namespace powertcp::cc {

const std::vector<ParamSpec>& timely_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"alpha", "0.875", "EWMA weight of the RTT-difference filter"},
      {"beta", "0.8", "multiplicative decrease factor"},
      {"delta_bps", "-1", "additive step; <0 derives HostBw/100"},
      {"t_low_us", "-1", "pure-AI threshold; <0 derives 1.5*tau"},
      {"t_high_us", "-1", "forced-decrease threshold; <0 derives 5*tau"},
      {"hai_threshold", "5", "negative-gradient streak enabling HAI"},
      {"min_rate_fraction", "0.001", "rate floor as a fraction of HostBw"},
  };
  return kSpecs;
}

TimelyConfig timely_config_from_params(const ParamMap& overrides) {
  const ParamReader r("timely", overrides, timely_param_specs());
  TimelyConfig cfg;
  cfg.alpha = r.get_double("alpha", cfg.alpha);
  cfg.beta = r.get_double("beta", cfg.beta);
  cfg.delta_bps = r.get_double("delta_bps", cfg.delta_bps);
  cfg.t_low = r.get_microseconds("t_low_us", cfg.t_low);
  cfg.t_high = r.get_microseconds("t_high_us", cfg.t_high);
  cfg.hai_threshold =
      static_cast<int>(r.get_int("hai_threshold", cfg.hai_threshold));
  cfg.min_rate_fraction =
      r.get_double("min_rate_fraction", cfg.min_rate_fraction);
  return cfg;
}

Timely::Timely(const FlowParams& params, const TimelyConfig& cfg)
    : params_(params), cfg_(cfg) {
  t_low_ = cfg_.t_low >= 0 ? cfg_.t_low : params_.base_rtt * 3 / 2;
  t_high_ = cfg_.t_high >= 0 ? cfg_.t_high : params_.base_rtt * 5;
  delta_ = cfg_.delta_bps >= 0 ? cfg_.delta_bps : params_.host_bw.bps() / 100.0;
  min_rate_ = params_.host_bw.bps() * cfg_.min_rate_fraction;
  rate_bps_ = params_.host_bw.bps();
}

CcDecision Timely::decision() const {
  // Rate-governed: window is a generous cap of four rate·τ products so
  // pacing, not the window, shapes transmission.
  const double cwnd =
      std::max<double>(params_.mss,
                       rate_bps_ / 8.0 * sim::to_seconds(params_.base_rtt) * 4.0);
  return CcDecision{cwnd, rate_bps_};
}

CcDecision Timely::on_ack(const AckContext& ctx) {
  if (ctx.rtt <= 0) return decision();
  if (!have_prev_) {
    prev_rtt_ = ctx.rtt;
    have_prev_ = true;
    return decision();
  }
  const double new_diff_sec = sim::to_seconds(ctx.rtt - prev_rtt_);
  prev_rtt_ = ctx.rtt;
  rtt_diff_ = (1.0 - cfg_.alpha) * rtt_diff_ + cfg_.alpha * new_diff_sec;
  const double normalized_gradient =
      rtt_diff_ / sim::to_seconds(params_.base_rtt);

  if (ctx.rtt < t_low_) {
    rate_bps_ += delta_;
    negative_gradient_streak_ = 0;
  } else if (ctx.rtt > t_high_) {
    // Proportional decrease toward the high threshold; gradient ignored
    // (the "oblivious to absolute queue" patch the paper discusses).
    rate_bps_ *= 1.0 - cfg_.beta * (1.0 - sim::to_seconds(t_high_) /
                                              sim::to_seconds(ctx.rtt));
    negative_gradient_streak_ = 0;
  } else if (normalized_gradient <= 0.0) {
    ++negative_gradient_streak_;
    const int n =
        negative_gradient_streak_ >= cfg_.hai_threshold ? 5 : 1;
    rate_bps_ += static_cast<double>(n) * delta_;
  } else {
    negative_gradient_streak_ = 0;
    rate_bps_ *= 1.0 - cfg_.beta * normalized_gradient;
  }
  rate_bps_ = std::clamp(rate_bps_, min_rate_, params_.host_bw.bps());
  return decision();
}

void Timely::on_timeout() {
  rate_bps_ = std::max(min_rate_, rate_bps_ / 2.0);
}

}  // namespace powertcp::cc
