#include "cc/power_tcp.hpp"

#include <algorithm>

namespace powertcp::cc {

namespace {
/// Guards the division in the control law when feedback reports an
/// (almost) idle network.
constexpr double kMinNormPower = 1e-6;
}  // namespace

const std::vector<ParamSpec>& power_tcp_param_specs() {
  static const std::vector<ParamSpec> kSpecs = {
      {"gamma", "0.9", "EWMA weight of window updates"},
      {"beta_bytes", "-1", "additive increase; <0 derives HostBw*tau/N"},
      {"per_rtt_update", "false", "update once per RTT instead of per ack"},
      {"max_cwnd_bdp", "1.0", "window clamp as a multiple of HostBw*tau"},
  };
  return kSpecs;
}

PowerTcpConfig power_tcp_config_from_params(const ParamMap& overrides,
                                            const std::string& scheme) {
  const ParamReader r(scheme, overrides, power_tcp_param_specs());
  PowerTcpConfig cfg;
  cfg.gamma = r.get_double("gamma", cfg.gamma);
  cfg.beta_bytes = r.get_double("beta_bytes", cfg.beta_bytes);
  cfg.per_rtt_update = r.get_bool("per_rtt_update", cfg.per_rtt_update);
  cfg.max_cwnd_bdp = r.get_double("max_cwnd_bdp", cfg.max_cwnd_bdp);
  return cfg;
}

PowerTcp::PowerTcp(const FlowParams& params, const PowerTcpConfig& cfg)
    : params_(params),
      cfg_(cfg),
      tau_sec_(sim::to_seconds(params.base_rtt)) {
  const double bdp = params_.bdp_bytes();
  beta_ = cfg_.beta_bytes >= 0.0
              ? cfg_.beta_bytes
              : bdp / static_cast<double>(params_.expected_flows);
  max_cwnd_ = cfg_.max_cwnd_bdp * bdp;
  cwnd_ = std::max<double>(params_.mss, bdp);
  cwnd_old_ = cwnd_;
}

double PowerTcp::norm_power(const net::IntHeader& hdr) {
  double max_norm = 0.0;
  sim::TimePs dt_of_max = 0;
  for (int i = 0; i < hdr.size() && i < prev_int_.size(); ++i) {
    const net::IntHopRecord& cur = hdr.hop(i);
    const net::IntHopRecord& prev = prev_int_.hop(i);
    const sim::TimePs dt = cur.ts - prev.ts;
    if (dt <= 0) continue;  // same dequeue instant; no new information
    const double dt_sec = sim::to_seconds(dt);
    const double q_dot =
        static_cast<double>(cur.qlen_bytes - prev.qlen_bytes) / dt_sec;
    const double mu =
        static_cast<double>(cur.tx_bytes - prev.tx_bytes) / dt_sec;
    const double lambda = q_dot + mu;              // current (bytes/s)
    const double b_bytes = cur.bandwidth_bps / 8.0;
    const double bdp = b_bytes * tau_sec_;
    const double nu = static_cast<double>(cur.qlen_bytes) + bdp;  // voltage
    const double power = lambda * nu;              // Γ′ (bytes²/s)
    const double base_power = b_bytes * b_bytes * tau_sec_;       // e
    const double norm = power / base_power;
    if (norm > max_norm) {
      max_norm = norm;
      dt_of_max = dt;
    }
  }
  if (dt_of_max <= 0) return smoothed_power_;
  // Γ_smooth = (Γ_smooth·(τ−Δt) + Γ_norm·Δt) / τ, with Δt capped at τ.
  const sim::TimePs dt = std::min(dt_of_max, params_.base_rtt);
  const double w = static_cast<double>(dt) /
                   static_cast<double>(params_.base_rtt);
  smoothed_power_ = smoothed_power_ * (1.0 - w) + max_norm * w;
  return smoothed_power_;
}

void PowerTcp::update_window(double norm_power) {
  const double p = std::max(norm_power, kMinNormPower);
  cwnd_ = cfg_.gamma * (cwnd_old_ / p + beta_) + (1.0 - cfg_.gamma) * cwnd_;
  cwnd_ = std::clamp(cwnd_, 1.0, max_cwnd_);
}

CcDecision PowerTcp::decision() const {
  // Pacing spreads the window over one base RTT (Alg. 1 line 6).
  return CcDecision{cwnd_, cwnd_ / tau_sec_ * 8.0};
}

CcDecision PowerTcp::on_ack(const AckContext& ctx) {
  if (ctx.int_hdr == nullptr || ctx.int_hdr->empty()) return decision();
  if (!have_prev_ || prev_int_.size() != ctx.int_hdr->size()) {
    prev_int_ = *ctx.int_hdr;
    have_prev_ = true;
    return decision();
  }
  const double power = norm_power(*ctx.int_hdr);
  const bool may_update =
      !cfg_.per_rtt_update || ctx.ack_seq > last_window_seq_;
  if (may_update) {
    update_window(power);
    if (cfg_.per_rtt_update) last_window_seq_ = ctx.snd_nxt;
  }
  prev_int_ = *ctx.int_hdr;
  // UPDATEOLD: remember the current window once per RTT, keyed on acks
  // crossing the previous boundary.
  if (ctx.ack_seq > last_update_seq_) {
    cwnd_old_ = cwnd_;
    last_update_seq_ = ctx.snd_nxt;
  }
  return decision();
}

void PowerTcp::on_timeout() {
  cwnd_ = std::max<double>(params_.mss, cwnd_ / 2.0);
  cwnd_old_ = cwnd_;
}

}  // namespace powertcp::cc
