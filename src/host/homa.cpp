#include "host/homa.hpp"

#include <algorithm>

#include "host/host.hpp"

namespace powertcp::host {

const std::vector<cc::ParamSpec>& homa_param_specs() {
  static const std::vector<cc::ParamSpec> kSpecs = {
      {"rtt_bytes", "-1",
       "unscheduled window / per-grant cap; <0 derives HostBw*tau"},
      {"overcommit", "1", "messages holding active grants at once"},
      {"resend_interval_us", "300", "stalled-message resend probe period"},
      {"max_resends", "50", "resend probes before giving up"},
  };
  return kSpecs;
}

HomaConfig homa_config_from_params(const cc::ParamMap& overrides,
                                   const cc::FlowParams& flow) {
  const cc::ParamReader r("homa", overrides, homa_param_specs());
  HomaConfig cfg;
  cfg.rtt_bytes = r.get_int("rtt_bytes", -1);
  if (cfg.rtt_bytes < 0) {
    cfg.rtt_bytes = static_cast<std::int64_t>(flow.bdp_bytes());
  }
  cfg.overcommit = static_cast<int>(r.get_int("overcommit", cfg.overcommit));
  cfg.resend_interval =
      r.get_microseconds("resend_interval_us", cfg.resend_interval);
  cfg.max_resends = static_cast<int>(r.get_int("max_resends", cfg.max_resends));
  cfg.mss = flow.mss;
  return cfg;
}

HomaTransport::HomaTransport(Host& host, const HomaConfig& cfg)
    : host_(host), cfg_(cfg) {}

HomaTransport::~HomaTransport() {
  // The resend probe captures `this`; cancel it so tearing a host down
  // with incomplete messages cannot leave a dangling callback.
  if (resend_timer_armed_) host_.simulator().cancel(resend_timer_);
}

std::uint8_t HomaTransport::unscheduled_priority(
    std::int64_t message_bytes) const {
  // Band 0 is reserved for grants; small messages get the next bands.
  std::uint8_t band = 1;
  for (const std::int64_t cutoff : cfg_.unscheduled_cutoffs) {
    if (message_bytes <= cutoff) return band;
    ++band;
  }
  return band;
}

// Grant edges are kept on the MSS grid (except a final partial chunk)
// so every data packet maps to exactly one chunk of the receiver's
// arrival bitmap.
std::int64_t HomaTransport::aligned_grant(std::int64_t want,
                                          std::int64_t size) const {
  if (want >= size) return size;
  return want / cfg_.mss * cfg_.mss;
}

void HomaTransport::send_message(net::FlowId message, net::NodeId dst,
                                 std::int64_t size_bytes) {
  OutMessage m;
  m.dst = dst;
  m.size = size_bytes;
  m.granted = aligned_grant(cfg_.rtt_bytes, size_bytes);
  m.start = host_.simulator().now();
  auto [it, inserted] = outgoing_.emplace(message, m);
  if (!inserted) return;  // duplicate id: ignore
  pump_out(message, it->second);
}

void HomaTransport::pump_out(net::FlowId id, OutMessage& m) {
  // Transmit everything currently granted. The NIC FIFO serializes at
  // line rate — HOMA sends without pacing.
  while (m.sent < m.granted) {
    const auto payload = static_cast<std::int32_t>(
        std::min<std::int64_t>(cfg_.mss, m.granted - m.sent));
    net::Packet pkt;
    pkt.flow = id;
    pkt.dst = m.dst;
    pkt.type = net::PacketType::kHomaData;
    pkt.seq = m.sent;
    pkt.payload_bytes = payload;
    pkt.message_bytes = m.size;
    pkt.grant_offset = m.start;  // echo the message start for FCT
    pkt.priority = m.sent < cfg_.rtt_bytes
                       ? unscheduled_priority(m.size)
                       : m.sched_priority;
    m.sent += payload;
    host_.send_packet(std::move(pkt));
  }
}

void HomaTransport::on_packet(const net::Packet& pkt) {
  if (pkt.type == net::PacketType::kHomaData) {
    handle_data(pkt);
  } else {
    handle_grant(pkt);
  }
}

void HomaTransport::handle_data(const net::Packet& pkt) {
  const sim::TimePs now = host_.simulator().now();
  auto it = incoming_.find(pkt.flow);
  if (it == incoming_.end()) {
    InMessage m;
    m.src = pkt.src;
    m.size = pkt.message_bytes;
    m.start = pkt.grant_offset;  // sender stamped its start time here
    m.granted = aligned_grant(cfg_.rtt_bytes, m.size);
    const auto chunks = static_cast<std::size_t>(
        (m.size + cfg_.mss - 1) / cfg_.mss);
    m.got.assign(std::max<std::size_t>(chunks, 1), false);
    it = incoming_.emplace(pkt.flow, std::move(m)).first;
  }
  InMessage& m = it->second;
  m.last_activity = now;
  const auto chunk = static_cast<std::size_t>(pkt.seq / cfg_.mss);
  if (chunk < m.got.size() && !m.got[chunk]) {
    m.got[chunk] = true;
    m.received += pkt.payload_bytes;
    host_.notify_payload(pkt.flow, pkt.payload_bytes);
  }
  if (m.received >= m.size) {
    if (on_complete_) {
      on_complete_(MessageCompletion{pkt.flow, m.size, m.start, now});
    }
    // Final grant tells the sender to drop its state.
    InMessage done = m;
    incoming_.erase(it);
    done.granted = done.size;
    send_grant(pkt.flow, done, /*resend_from=*/-1);
    update_grants();
    return;
  }
  update_grants();
  arm_resend_timer();
}

void HomaTransport::handle_grant(const net::Packet& pkt) {
  const auto it = outgoing_.find(pkt.flow);
  if (it == outgoing_.end()) return;
  OutMessage& m = it->second;
  m.granted = std::max(m.granted, std::min(pkt.grant_offset, m.size));
  m.sched_priority = pkt.priority;
  if (pkt.seq >= 0 && pkt.seq < m.sent) {
    m.sent = pkt.seq;  // resend request: rewind to first missing byte
  }
  if (m.granted >= m.size && m.sent >= m.size &&
      pkt.grant_offset >= m.size) {
    // Completion grant.
    outgoing_.erase(it);
    return;
  }
  pump_out(pkt.flow, m);
}

void HomaTransport::update_grants() {
  // SRPT: order incomplete messages by remaining bytes, grant the first
  // `overcommit` of them up to received + rtt_bytes.
  std::vector<std::pair<std::int64_t, net::FlowId>> order;
  order.reserve(incoming_.size());
  for (auto& [id, m] : incoming_) {
    if (m.size <= cfg_.rtt_bytes) continue;  // fully unscheduled
    order.emplace_back(m.size - m.received, id);
    m.grant_active = false;
  }
  std::sort(order.begin(), order.end());
  const int n = std::min<int>(cfg_.overcommit, static_cast<int>(order.size()));
  for (int rank = 0; rank < n; ++rank) {
    InMessage& m = incoming_.at(order[static_cast<std::size_t>(rank)].second);
    m.grant_active = true;
    const std::int64_t new_grant =
        aligned_grant(m.received + cfg_.rtt_bytes, m.size);
    // Scheduled priority: below all unscheduled bands, better rank =
    // higher priority.
    const int sched_base =
        1 + static_cast<int>(cfg_.unscheduled_cutoffs.size()) + 1;
    const int prio =
        std::min(cfg_.total_priorities - 1, sched_base + rank);
    const bool prio_changed =
        static_cast<std::uint8_t>(prio) != m.sched_prio_cache;
    if (new_grant > m.granted || prio_changed) {
      m.granted = std::max(m.granted, new_grant);
      m.sched_prio_cache = static_cast<std::uint8_t>(prio);
      send_grant(order[static_cast<std::size_t>(rank)].second, m, -1);
    }
  }
}

void HomaTransport::send_grant(net::FlowId id, InMessage& m,
                               std::int64_t resend_from) {
  net::Packet g;
  g.flow = id;
  g.dst = m.src;
  g.type = net::PacketType::kHomaGrant;
  g.payload_bytes = 0;
  g.grant_offset = m.granted;
  g.seq = resend_from;
  g.priority = m.sched_prio_cache;
  host_.send_packet(std::move(g));
}

void HomaTransport::arm_resend_timer() {
  if (resend_timer_armed_ || incoming_.empty()) return;
  resend_timer_armed_ = true;
  resend_timer_ = host_.simulator().schedule_in(cfg_.resend_interval, [this] {
    resend_timer_armed_ = false;
    check_stalled();
  });
}

void HomaTransport::check_stalled() {
  const sim::TimePs now = host_.simulator().now();
  for (auto& [id, m] : incoming_) {
    if (now - m.last_activity < cfg_.resend_interval) continue;
    if (m.resends >= cfg_.max_resends) continue;
    ++m.resends;
    // First missing chunk -> resend request.
    std::int64_t missing = m.size;
    for (std::size_t c = 0; c < m.got.size(); ++c) {
      if (!m.got[c]) {
        missing = static_cast<std::int64_t>(c) * cfg_.mss;
        break;
      }
    }
    m.granted = std::max(
        m.granted, aligned_grant(m.received + cfg_.rtt_bytes, m.size));
    send_grant(id, m, missing);
  }
  arm_resend_timer();
}

}  // namespace powertcp::host
