#include "host/flow.hpp"

#include <algorithm>

#include "host/host.hpp"

namespace powertcp::host {

FlowSender::FlowSender(Host& host, net::FlowId flow, net::NodeId dst,
                       std::int64_t size_bytes,
                       std::unique_ptr<cc::CcAlgorithm> algorithm,
                       const cc::FlowParams& params,
                       const FlowSenderConfig& cfg)
    : host_(host),
      flow_(flow),
      dst_(dst),
      size_(size_bytes),
      cc_(std::move(algorithm)),
      params_(params),
      cfg_(cfg) {
  const cc::CcDecision d = cc_->initial();
  cwnd_ = d.cwnd_bytes;
  pacing_bps_ = d.pacing_bps;
  current_rto_ = std::max(
      cfg_.min_rto, static_cast<sim::TimePs>(
                        static_cast<double>(params_.base_rtt) *
                        cfg_.rto_base_rtt_factor));
}

FlowSender::~FlowSender() {
  // Armed timers capture `this`. Senders are destroyed mid-run (the
  // Host sweeps completed flows; topologies can be torn down early), so
  // leaving one armed would dangle. Cancelling fired/stale ids is free.
  sim::Simulator& sim = host_.simulator();
  if (pacing_timer_armed_) sim.cancel(pacing_timer_);
  if (rto_armed_) sim.cancel(rto_timer_);
  if (!started_) sim.cancel(start_event_);
}

void FlowSender::start() {
  started_ = true;
  start_time_ = host_.simulator().now();
  next_send_allowed_ = start_time_;
  try_send();
}

std::int32_t FlowSender::next_payload() const {
  return static_cast<std::int32_t>(
      std::min<std::int64_t>(params_.mss, size_ - snd_nxt_));
}

void FlowSender::try_send() {
  sim::Simulator& sim = host_.simulator();
  while (snd_nxt_ < size_) {
    const std::int32_t payload = next_payload();
    // Window gate: admit the packet if it fits in cwnd, or if nothing
    // is in flight (sub-MSS windows still make progress; pacing governs
    // the actual rate).
    const bool window_ok =
        static_cast<double>(inflight_bytes() + payload) <= cwnd_ ||
        inflight_bytes() == 0;
    if (!window_ok) return;  // an ack will reopen the window
    if (sim.now() < next_send_allowed_) {
      // Ahead of the pacing edge: spend quantum credit if any remains,
      // else sleep until the edge. With the default quantum of 1 no
      // credit ever exists and this is the historical per-packet gate.
      if (quantum_left_ > 0) {
        --quantum_left_;
      } else {
        arm_pacing_timer(next_send_allowed_);
        return;
      }
    } else {
      quantum_left_ = cfg_.pacing_quantum - 1;
    }
    send_one();
  }
}

void FlowSender::send_one() {
  sim::Simulator& sim = host_.simulator();
  const std::int32_t payload = next_payload();
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.dst = dst_;
  pkt.type = net::PacketType::kData;
  pkt.seq = snd_nxt_;
  pkt.payload_bytes = payload;
  // Flow size and the cumulative acked edge ride in the header so the
  // receiver can retire its per-flow state at the cumulative edge and
  // still answer stale retransmissions of completed flows statelessly.
  pkt.message_bytes = size_;
  pkt.ack_seq = snd_una_;
  snd_nxt_ += payload;
  host_.send_packet(std::move(pkt));
  // Pacing: spread packets at `pacing_bps_` (wire bytes).
  if (pacing_bps_ > 0) {
    const double interval_sec =
        static_cast<double>(payload + net::kHeaderBytes) * 8.0 / pacing_bps_;
    // Advance the edge by one interval per packet (not from now()):
    // packets released ahead of the edge on quantum credit still pay
    // their full serialization interval, keeping the long-run rate at
    // pacing_bps_. With quantum 1 every send happens at now() >= edge,
    // where max() degenerates to now() — the historical update.
    next_send_allowed_ =
        std::max(next_send_allowed_, sim.now()) + sim::from_seconds(interval_sec);
  }
  if (!rto_armed_) arm_rto();
}

void FlowSender::arm_pacing_timer(sim::TimePs when) {
  if (pacing_timer_armed_) return;
  pacing_timer_armed_ = true;
  pacing_timer_ = host_.simulator().schedule_at(when, [this] {
    pacing_timer_armed_ = false;
    try_send();
  });
}

void FlowSender::arm_rto() {
  rto_armed_ = true;
  rto_timer_ = host_.simulator().schedule_in(current_rto_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void FlowSender::cancel_rto() {
  if (rto_armed_) {
    host_.simulator().cancel(rto_timer_);
    rto_armed_ = false;
  }
}

void FlowSender::on_rto() {
  if (complete()) return;
  ++timeouts_;
  // Go-back-N: rewind to the cumulative edge.
  snd_nxt_ = snd_una_;
  cc_->on_timeout();
  current_rto_ = static_cast<sim::TimePs>(
      static_cast<double>(current_rto_) * cfg_.rto_backoff);
  arm_rto();
  try_send();
}

void FlowSender::on_ack(const net::Packet& ack) {
  if (complete()) return;  // stray ack after completion
  sim::Simulator& sim = host_.simulator();
  const std::int64_t newly_acked = std::max<std::int64_t>(
      0, std::min(ack.ack_seq, size_) - snd_una_);
  snd_una_ += newly_acked;

  const sim::TimePs rtt = sim.now() - ack.sent_time;
  srtt_ = srtt_ == 0 ? rtt : (srtt_ * 7 + rtt) / 8;

  cc::AckContext ctx;
  ctx.now = sim.now();
  ctx.rtt = rtt;
  ctx.acked_bytes = newly_acked;
  ctx.ack_seq = ack.ack_seq;
  ctx.snd_nxt = snd_nxt_;
  ctx.ecn_echo = ack.ecn_echo;
  ctx.int_hdr = ack.int_hdr.empty() ? nullptr : &ack.int_hdr;
  ctx.inflight_bytes = static_cast<double>(inflight_bytes());
  const cc::CcDecision d = cc_->on_ack(ctx);
  cwnd_ = d.cwnd_bytes;
  pacing_bps_ = d.pacing_bps;

  if (complete()) {
    finish_time_ = sim.now();
    cancel_rto();
    if (pacing_timer_armed_) {
      sim.cancel(pacing_timer_);
      pacing_timer_armed_ = false;
    }
    if (on_complete_) {
      on_complete_(FlowCompletion{flow_, size_, start_time_, finish_time_});
    }
    return;
  }
  if (newly_acked > 0) {
    // Fresh progress: restart the retransmission clock.
    cancel_rto();
    current_rto_ = std::max(
        cfg_.min_rto,
        std::max(static_cast<sim::TimePs>(
                     static_cast<double>(params_.base_rtt) *
                     cfg_.rto_base_rtt_factor),
                 2 * srtt_));
    arm_rto();
  }
  try_send();
}

}  // namespace powertcp::host
