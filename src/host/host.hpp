#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "cc/cc_algorithm.hpp"
#include "host/flow.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

/// \file host.hpp
/// End host: one NIC, window/pacing senders (PowerTCP and friends), a
/// per-packet-acking receiver, and optionally the receiver-driven
/// (HOMA-like) message transport.

namespace powertcp::host {

class HomaTransport;

/// Invoked on every data payload delivered to this host (goodput hook).
using DataCallback =
    std::function<void(net::FlowId, std::int64_t bytes, sim::TimePs now)>;

class Host final : public net::Node {
 public:
  Host(sim::Simulator& simulator, net::NodeId id, std::string name);
  ~Host() override;

  /// The NIC egress port (created by Network::connect; exactly one link
  /// per host).
  net::EgressPort& nic();
  sim::Bandwidth nic_bandwidth() const;

  void receive(net::Packet pkt, int in_port) override;

  /// Creates a sender flow; transmission begins at `start_time`.
  FlowSender& start_flow(net::FlowId flow, net::NodeId dst,
                         std::int64_t size_bytes,
                         std::unique_ptr<cc::CcAlgorithm> algorithm,
                         const cc::FlowParams& params,
                         sim::TimePs start_time,
                         CompletionCallback on_complete = nullptr);

  /// Attaches the receiver-driven message transport (HOMA baseline).
  HomaTransport& enable_homa(const struct HomaConfig& cfg);
  HomaTransport* homa() { return homa_.get(); }

  void set_data_callback(DataCallback cb) { data_cb_ = std::move(cb); }

  /// Fires the goodput hook for payload delivered outside the standard
  /// receiver path (used by the HOMA transport).
  void notify_payload(net::FlowId flow, std::int64_t bytes) {
    if (data_cb_) data_cb_(flow, bytes, sim_.now());
  }

  sim::Simulator& simulator() { return sim_; }

  /// Looks up a live (started or pending) sender flow. Completed flows
  /// are swept from the table — at paper scale hundreds of thousands of
  /// short flows churn through one host, so per-flow state must retire
  /// with the flow. Returns nullptr after completion.
  FlowSender* sender(net::FlowId flow);

  /// Live per-flow state counts (leak regression tests).
  std::size_t active_senders() const { return senders_.size(); }
  std::size_t active_receivers() const { return receivers_.size(); }

  /// Enqueues a packet on the NIC, stamping src/sent_time.
  void send_packet(net::Packet pkt);

  /// Receiver-side ack aggregation window. 0 (the default) acks every
  /// data packet — the historical, byte-identical behavior. A positive
  /// window defers the ack for in-order progress and sends ONE
  /// cumulative ack when the window expires; any packet that does not
  /// advance the edge (a go-back-N duplicate) or that completes the
  /// flow flushes immediately, so loss recovery and completion see no
  /// added latency. ECN marks on deferred packets are echoed sticky so
  /// aggregation never hides a congestion signal.
  void set_ack_agg_window(sim::TimePs w) { ack_agg_window_ = w; }
  sim::TimePs ack_agg_window() const { return ack_agg_window_; }

  /// Sender knobs (pacing quantum, RTO profile) applied to flows
  /// started after the call.
  void set_sender_config(const FlowSenderConfig& cfg) { sender_cfg_ = cfg; }
  const FlowSenderConfig& sender_config() const { return sender_cfg_; }

  /// Quiet period after a flow's last data packet before its receiver
  /// state retires. Long enough that go-back-N replays (the sender's
  /// RTO racing our acks, with exponential backoff) still find the
  /// state and see identical acks; after retirement the sender-edge
  /// echo in data packets answers stragglers statelessly.
  static constexpr sim::TimePs kReceiverGrace = sim::milliseconds(2);

 private:
  struct ReceiverState {
    std::int64_t expected_seq = 0;
    sim::TimePs last_activity = 0;
    bool retire_armed = false;
    sim::EventId retire_event{};
    /// Ack aggregation: a deferred cumulative ack is pending, its flush
    /// timer is armed, and agg_pkt holds the newest deferred data
    /// packet (the template make_ack echoes — sent_time, INT, sticky
    /// ECN). The Packet lives inline in the map node, so deferral
    /// allocates nothing per packet.
    bool agg_armed = false;
    bool agg_pending = false;
    sim::EventId agg_event{};
    net::Packet agg_pkt;
  };

  void handle_data(net::Packet pkt);
  void handle_ack(const net::Packet& pkt);
  void retire_receiver(net::FlowId flow);
  void flush_ack(net::FlowId flow);

  sim::Simulator& sim_;
  std::unordered_map<net::FlowId, std::unique_ptr<FlowSender>> senders_;
  std::unordered_map<net::FlowId, ReceiverState> receivers_;
  std::unique_ptr<HomaTransport> homa_;
  DataCallback data_cb_;
  sim::TimePs ack_agg_window_ = 0;
  FlowSenderConfig sender_cfg_;
};

}  // namespace powertcp::host
