#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "cc/cc_algorithm.hpp"
#include "cc/params.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file homa.hpp
/// Receiver-driven message transport in the style of HOMA (Montazeri et
/// al., SIGCOMM 2018) — the paper's receiver-driven baseline (§4,
/// Appendix D).
///
/// Mechanisms reproduced (simplifications documented in
/// docs/architecture.md, "Homa simplifications"):
///  * Unscheduled data: the first RTTbytes of every message leave
///    immediately at line rate, at a priority picked from the message
///    size (smaller message -> higher priority).
///  * Scheduled data: the receiver grants SRPT-ordered messages so that
///    each granted message keeps up to RTTbytes outstanding.
///  * Overcommitment: up to `overcommit` messages hold active grants at
///    once (paper Fig. 9-11 sweep levels 1..6).
///  * Loss recovery: a stalled incomplete message triggers a resend
///    request for the first missing byte (switch buffer drops are real
///    in these experiments — that is the point of §4.2's HOMA results).

namespace powertcp::host {

class Host;

struct HomaConfig {
  /// Unscheduled window and per-grant outstanding cap (HostBw × τ,
  /// "RTTBytes" in §4.1).
  std::int64_t rtt_bytes = 25'000;
  int overcommit = 1;
  std::int32_t mss = net::kDefaultMss;
  /// Message-size upper bounds mapping to unscheduled priority bands
  /// 1..N (band 0 carries grants); scheduled data uses the bands below.
  std::vector<std::int64_t> unscheduled_cutoffs = {10'000, 50'000, 200'000,
                                                   1'000'000, 5'000'000};
  int total_priorities = 8;
  sim::TimePs resend_interval = sim::microseconds(300);
  int max_resends = 50;
};

/// Registry hook: the declared tunables of the "homa" scheme entry and
/// the `key=value` parser harnesses use to enable the transport.
/// `rtt_bytes` defaults to the flow's HostBw·τ when not overridden
/// (the paper's RTTBytes); unknown keys throw std::invalid_argument.
const std::vector<cc::ParamSpec>& homa_param_specs();
HomaConfig homa_config_from_params(const cc::ParamMap& overrides,
                                   const cc::FlowParams& flow);

/// Fired on the *receiving* host when a message's last byte arrives.
struct MessageCompletion {
  net::FlowId message = 0;
  std::int64_t size_bytes = 0;
  sim::TimePs start = 0;   ///< sender-side first transmission time
  sim::TimePs finish = 0;  ///< receiver-side last byte time
};
using MessageCallback = std::function<void(const MessageCompletion&)>;

class HomaTransport {
 public:
  HomaTransport(Host& host, const HomaConfig& cfg);
  ~HomaTransport();

  /// Sends a message; unscheduled bytes leave immediately.
  void send_message(net::FlowId message, net::NodeId dst,
                    std::int64_t size_bytes);

  /// Demultiplexed by Host::receive for kHomaData / kHomaGrant.
  void on_packet(const net::Packet& pkt);

  void set_message_callback(MessageCallback cb) {
    on_complete_ = std::move(cb);
  }

  int active_incoming() const { return static_cast<int>(incoming_.size()); }
  int active_outgoing() const { return static_cast<int>(outgoing_.size()); }

  /// Priority band for an unscheduled packet of a message of this size.
  std::uint8_t unscheduled_priority(std::int64_t message_bytes) const;

 private:
  struct OutMessage {
    net::NodeId dst = net::kInvalidNode;
    std::int64_t size = 0;
    std::int64_t sent = 0;     ///< next byte to transmit
    std::int64_t granted = 0;  ///< receiver's grant edge
    std::uint8_t sched_priority = 0;
    sim::TimePs start = 0;
  };
  struct InMessage {
    net::NodeId src = net::kInvalidNode;
    std::int64_t size = 0;
    std::int64_t received = 0;  ///< distinct payload bytes so far
    std::vector<bool> got;      ///< per-MSS-chunk arrival map
    std::int64_t granted = 0;
    sim::TimePs start = 0;          ///< echoed sender start
    sim::TimePs last_activity = 0;
    int resends = 0;
    bool grant_active = false;  ///< currently in the overcommit set
    std::uint8_t sched_prio_cache = 0;
  };

  std::int64_t aligned_grant(std::int64_t want, std::int64_t size) const;
  void handle_data(const net::Packet& pkt);
  void handle_grant(const net::Packet& pkt);
  void pump_out(net::FlowId id, OutMessage& m);
  /// Recomputes the overcommit set (SRPT) and emits new grants.
  void update_grants();
  void send_grant(net::FlowId id, InMessage& m, std::int64_t resend_from);
  void arm_resend_timer();
  void check_stalled();

  Host& host_;
  HomaConfig cfg_;
  std::unordered_map<net::FlowId, OutMessage> outgoing_;
  std::map<net::FlowId, InMessage> incoming_;  // ordered for determinism
  MessageCallback on_complete_;
  bool resend_timer_armed_ = false;
  sim::EventId resend_timer_{};
};

}  // namespace powertcp::host
