#include "host/host.hpp"

#include <stdexcept>

#include "host/flow.hpp"
#include "host/homa.hpp"
#include "net/egress_port.hpp"

namespace powertcp::host {

Host::Host(sim::Simulator& simulator, net::NodeId id, std::string name)
    : net::Node(id, std::move(name)), sim_(simulator) {}

Host::~Host() {
  // Armed retire and ack-aggregation timers capture `this`.
  for (auto& [flow, rs] : receivers_) {
    if (rs.retire_armed) sim_.cancel(rs.retire_event);
    if (rs.agg_armed) sim_.cancel(rs.agg_event);
  }
}

net::EgressPort& Host::nic() {
  if (port_count() == 0) {
    throw std::logic_error("Host '" + name() + "': NIC not connected");
  }
  return port(0);
}

sim::Bandwidth Host::nic_bandwidth() const {
  if (port_count() == 0) {
    throw std::logic_error("Host '" + name() + "': NIC not connected");
  }
  return port(0).bandwidth();
}

void Host::send_packet(net::Packet pkt) {
  pkt.src = id();
  // Acks echo the acked data packet's sent_time (the RTT measurement);
  // only fresh transmissions get stamped here.
  if (pkt.type != net::PacketType::kAck) pkt.sent_time = sim_.now();
  nic().enqueue(std::move(pkt));
}

void Host::receive(net::Packet pkt, int /*in_port*/) {
  switch (pkt.type) {
    case net::PacketType::kData:
      handle_data(std::move(pkt));
      break;
    case net::PacketType::kAck:
      handle_ack(pkt);
      break;
    case net::PacketType::kHomaData:
    case net::PacketType::kHomaGrant:
      if (homa_ == nullptr) {
        throw std::logic_error("Host '" + name() +
                               "': HOMA packet but transport not enabled");
      }
      homa_->on_packet(pkt);
      break;
  }
}

void Host::handle_data(net::Packet pkt) {
  auto it = receivers_.find(pkt.flow);
  if (it == receivers_.end()) {
    // Data packets echo the sender's cumulative received-ack edge in
    // ack_seq. A nonzero edge proves this receiver once produced acks
    // for the flow — so its missing state can only have been retired
    // after completion. Answer the go-back-N retransmission with the
    // full-size ack the retained state would have produced, without
    // resurrecting state. A zero edge proves nothing (e.g. the flow's
    // first packets were dropped): fall through and create state.
    if (pkt.ack_seq > 0 && pkt.message_bytes > 0) {
      send_packet(net::make_ack(pkt, pkt.message_bytes));
      return;
    }
    it = receivers_.emplace(pkt.flow, ReceiverState{}).first;
  }
  ReceiverState& rs = it->second;
  // A completed flow's edge equals its exact size, and every replay of
  // it carries that size in message_bytes. A different size therefore
  // proves a NEW flow reusing the id before the old state retired —
  // without this reset the stale edge would instantly "ack" the whole
  // new flow. (Reusing an id within the grace period with the *same*
  // size is indistinguishable from a replay and stays unsupported;
  // after the grace period any reuse is clean.)
  if (rs.retire_armed && pkt.message_bytes > 0 &&
      pkt.message_bytes != rs.expected_seq) {
    sim_.cancel(rs.retire_event);
    if (rs.agg_armed) sim_.cancel(rs.agg_event);
    rs = ReceiverState{};
  }
  rs.last_activity = sim_.now();
  std::int64_t delivered = 0;
  if (pkt.seq <= rs.expected_seq) {
    const std::int64_t new_edge = pkt.seq + pkt.payload_bytes;
    delivered = std::max<std::int64_t>(0, new_edge - rs.expected_seq);
    rs.expected_seq = std::max(rs.expected_seq, new_edge);
  }
  const bool completing =
      pkt.message_bytes > 0 && rs.expected_seq >= pkt.message_bytes;
  // Complete flows retire after a quiet period rather than immediately:
  // the sender may still replay the flow (its RTO racing our acks), and
  // those replays must see the same acks the retained state produces.
  // The timer never touches the network, so retirement is invisible to
  // packet traces.
  if (completing && !rs.retire_armed) {
    rs.retire_armed = true;
    const net::FlowId flow = pkt.flow;
    rs.retire_event = sim_.schedule_in(
        kReceiverGrace, [this, flow] { retire_receiver(flow); });
  }
  if (delivered > 0 && data_cb_) data_cb_(pkt.flow, delivered, sim_.now());
  // Ack aggregation: defer the ack for plain in-order progress; one
  // cumulative ack goes out when the window closes. Everything else —
  // duplicates/out-of-order (go-back-N needs its dup-ack signal now),
  // completion (the sender is waiting on the final edge) — flushes
  // immediately, and the cumulative edge subsumes the deferred ack.
  if (ack_agg_window_ > 0 && delivered > 0 && !completing) {
    const bool sticky_ecn = rs.agg_pending && rs.agg_pkt.ecn_marked;
    rs.agg_pkt = pkt;  // newest packet: freshest sent_time/INT echo
    if (sticky_ecn) rs.agg_pkt.ecn_marked = true;
    rs.agg_pending = true;
    if (!rs.agg_armed) {
      rs.agg_armed = true;
      const net::FlowId flow = pkt.flow;
      rs.agg_event = sim_.schedule_in(ack_agg_window_,
                                      [this, flow] { flush_ack(flow); });
    }
    return;
  }
  if (rs.agg_armed) {
    sim_.cancel(rs.agg_event);
    rs.agg_armed = false;
  }
  if (rs.agg_pending) {
    if (rs.agg_pkt.ecn_marked) pkt.ecn_marked = true;  // sticky echo
    rs.agg_pending = false;
  }
  // Out-of-order packets (go-back-N) generate duplicate acks here.
  net::Packet ack = net::make_ack(pkt, rs.expected_seq);
  send_packet(std::move(ack));
}

void Host::flush_ack(net::FlowId flow) {
  const auto it = receivers_.find(flow);
  if (it == receivers_.end()) return;
  ReceiverState& rs = it->second;
  rs.agg_armed = false;
  if (!rs.agg_pending) return;
  rs.agg_pending = false;
  send_packet(net::make_ack(rs.agg_pkt, rs.expected_seq));
}

void Host::retire_receiver(net::FlowId flow) {
  const auto it = receivers_.find(flow);
  if (it == receivers_.end()) return;
  ReceiverState& rs = it->second;
  const sim::TimePs quiet_until = rs.last_activity + kReceiverGrace;
  if (sim_.now() < quiet_until) {
    // A replay arrived since arming; wait out a fresh quiet period.
    rs.retire_event = sim_.schedule_at(
        quiet_until, [this, flow] { retire_receiver(flow); });
    return;
  }
  if (rs.agg_armed) sim_.cancel(rs.agg_event);
  receivers_.erase(it);
}

void Host::handle_ack(const net::Packet& pkt) {
  const auto it = senders_.find(pkt.flow);
  if (it == senders_.end()) return;  // flow gone (e.g. post-completion ack)
  FlowSender* sender = it->second.get();
  sender->on_ack(pkt);
  // Deferred sweep: a completed sender erases itself here, after its
  // own on_ack frame has returned. Re-find instead of reusing `it` —
  // the completion callback may have started flows (rehash) or, in
  // principle, reused the id.
  if (sender->complete()) {
    const auto again = senders_.find(pkt.flow);
    if (again != senders_.end() && again->second.get() == sender) {
      senders_.erase(again);
    }
  }
}

FlowSender& Host::start_flow(net::FlowId flow, net::NodeId dst,
                             std::int64_t size_bytes,
                             std::unique_ptr<cc::CcAlgorithm> algorithm,
                             const cc::FlowParams& params,
                             sim::TimePs start_time,
                             CompletionCallback on_complete) {
  auto sender = std::make_unique<FlowSender>(*this, flow, dst, size_bytes,
                                             std::move(algorithm), params,
                                             sender_cfg_);
  FlowSender* raw = sender.get();
  auto [it, inserted] = senders_.emplace(flow, std::move(sender));
  if (!inserted) {
    throw std::invalid_argument("Host::start_flow: duplicate flow id");
  }
  raw->set_start_event(sim_.schedule_at(start_time, [raw] { raw->start(); }));
  if (on_complete) {
    // Poll-free completion: the sender records finish_time; we watch the
    // ack path by wrapping via a completion check after each ack would
    // be invasive, so instead wrap the callback through the sender.
    raw->set_completion_callback(std::move(on_complete));
  }
  return *raw;
}

FlowSender* Host::sender(net::FlowId flow) {
  const auto it = senders_.find(flow);
  return it == senders_.end() ? nullptr : it->second.get();
}

HomaTransport& Host::enable_homa(const HomaConfig& cfg) {
  if (homa_ == nullptr) {
    homa_ = std::make_unique<HomaTransport>(*this, cfg);
  }
  return *homa_;
}

}  // namespace powertcp::host
