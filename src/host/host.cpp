#include "host/host.hpp"

#include <stdexcept>

#include "host/flow.hpp"
#include "host/homa.hpp"
#include "net/egress_port.hpp"

namespace powertcp::host {

Host::Host(sim::Simulator& simulator, net::NodeId id, std::string name)
    : net::Node(id, std::move(name)), sim_(simulator) {}

Host::~Host() = default;

net::EgressPort& Host::nic() {
  if (port_count() == 0) {
    throw std::logic_error("Host '" + name() + "': NIC not connected");
  }
  return port(0);
}

sim::Bandwidth Host::nic_bandwidth() const {
  if (port_count() == 0) {
    throw std::logic_error("Host '" + name() + "': NIC not connected");
  }
  return port(0).bandwidth();
}

void Host::send_packet(net::Packet pkt) {
  pkt.src = id();
  // Acks echo the acked data packet's sent_time (the RTT measurement);
  // only fresh transmissions get stamped here.
  if (pkt.type != net::PacketType::kAck) pkt.sent_time = sim_.now();
  nic().enqueue(std::move(pkt));
}

void Host::receive(net::Packet pkt, int /*in_port*/) {
  switch (pkt.type) {
    case net::PacketType::kData:
      handle_data(std::move(pkt));
      break;
    case net::PacketType::kAck:
      handle_ack(pkt);
      break;
    case net::PacketType::kHomaData:
    case net::PacketType::kHomaGrant:
      if (homa_ == nullptr) {
        throw std::logic_error("Host '" + name() +
                               "': HOMA packet but transport not enabled");
      }
      homa_->on_packet(pkt);
      break;
  }
}

void Host::handle_data(net::Packet pkt) {
  ReceiverState& rs = receivers_[pkt.flow];
  std::int64_t delivered = 0;
  if (pkt.seq <= rs.expected_seq) {
    const std::int64_t new_edge = pkt.seq + pkt.payload_bytes;
    delivered = std::max<std::int64_t>(0, new_edge - rs.expected_seq);
    rs.expected_seq = std::max(rs.expected_seq, new_edge);
  }
  // Out-of-order packets (go-back-N) generate duplicate acks below.
  if (delivered > 0 && data_cb_) data_cb_(pkt.flow, delivered, sim_.now());
  net::Packet ack = net::make_ack(pkt, rs.expected_seq);
  send_packet(std::move(ack));
}

void Host::handle_ack(const net::Packet& pkt) {
  const auto it = senders_.find(pkt.flow);
  if (it == senders_.end()) return;  // flow gone (e.g. post-completion ack)
  it->second->on_ack(pkt);
}

FlowSender& Host::start_flow(net::FlowId flow, net::NodeId dst,
                             std::int64_t size_bytes,
                             std::unique_ptr<cc::CcAlgorithm> algorithm,
                             const cc::FlowParams& params,
                             sim::TimePs start_time,
                             CompletionCallback on_complete) {
  auto sender = std::make_unique<FlowSender>(*this, flow, dst, size_bytes,
                                             std::move(algorithm), params);
  FlowSender* raw = sender.get();
  auto [it, inserted] = senders_.emplace(flow, std::move(sender));
  if (!inserted) {
    throw std::invalid_argument("Host::start_flow: duplicate flow id");
  }
  sim_.schedule_at(start_time, [raw] { raw->start(); });
  if (on_complete) {
    // Poll-free completion: the sender records finish_time; we watch the
    // ack path by wrapping via a completion check after each ack would
    // be invasive, so instead wrap the callback through the sender.
    raw->set_completion_callback(std::move(on_complete));
  }
  return *raw;
}

FlowSender* Host::sender(net::FlowId flow) {
  const auto it = senders_.find(flow);
  return it == senders_.end() ? nullptr : it->second.get();
}

HomaTransport& Host::enable_homa(const HomaConfig& cfg) {
  if (homa_ == nullptr) {
    homa_ = std::make_unique<HomaTransport>(*this, cfg);
  }
  return *homa_;
}

}  // namespace powertcp::host
