#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cc/cc_algorithm.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

/// \file flow.hpp
/// Window- and pacing-limited sender. The congestion controller decides
/// (cwnd, rate); the sender releases MSS-sized packets whenever both
/// constraints allow, acks advance the cumulative edge, and a
/// go-back-N retransmission timer recovers from buffer drops.

namespace powertcp::host {

class Host;

/// Invoked when a sender-side flow completes (all bytes acked).
struct FlowCompletion {
  net::FlowId flow = 0;
  std::int64_t size_bytes = 0;
  sim::TimePs start = 0;
  sim::TimePs finish = 0;
};
using CompletionCallback = std::function<void(const FlowCompletion&)>;

struct FlowSenderConfig {
  /// Minimum retransmission timeout as a multiple of the base RTT.
  double rto_base_rtt_factor = 8.0;
  sim::TimePs min_rto = sim::microseconds(100);
  double rto_backoff = 2.0;
  /// Packets released per pacing-timer wakeup. 1 (the default) is the
  /// historical one-timer-per-packet behavior, byte-identical to the
  /// pre-quantum sender. Larger quanta trade pacing granularity for
  /// fewer timer events: the sender still advances the release edge by
  /// one serialization interval per packet, so the average rate is
  /// unchanged, but up to `pacing_quantum` packets leave back-to-back
  /// once the edge is reached.
  std::int32_t pacing_quantum = 1;
};

class FlowSender {
 public:
  FlowSender(Host& host, net::FlowId flow, net::NodeId dst,
             std::int64_t size_bytes,
             std::unique_ptr<cc::CcAlgorithm> algorithm,
             const cc::FlowParams& params,
             const FlowSenderConfig& cfg = {});
  ~FlowSender();

  FlowSender(const FlowSender&) = delete;
  FlowSender& operator=(const FlowSender&) = delete;

  /// Begins transmission (called by Host at the flow's start time).
  void start();

  /// Handles a (possibly duplicate) cumulative ack.
  void on_ack(const net::Packet& ack);

  bool started() const { return started_; }
  bool complete() const { return snd_una_ >= size_; }
  net::FlowId flow_id() const { return flow_; }
  std::int64_t size_bytes() const { return size_; }
  std::int64_t inflight_bytes() const { return snd_nxt_ - snd_una_; }
  std::int64_t acked_bytes() const { return snd_una_; }
  sim::TimePs start_time() const { return start_time_; }
  sim::TimePs finish_time() const { return finish_time_; }

  double cwnd_bytes() const { return cwnd_; }
  double pacing_bps() const { return pacing_bps_; }
  cc::CcAlgorithm& algorithm() { return *cc_; }

  std::uint64_t timeouts() const { return timeouts_; }

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Records the Host-scheduled start event so destruction before the
  /// flow begins cancels it (the event captures `this`).
  void set_start_event(sim::EventId id) { start_event_ = id; }

 private:
  void try_send();
  void send_one();
  void arm_pacing_timer(sim::TimePs when);
  void arm_rto();
  void cancel_rto();
  void on_rto();
  std::int32_t next_payload() const;

  Host& host_;
  net::FlowId flow_;
  net::NodeId dst_;
  std::int64_t size_;
  std::unique_ptr<cc::CcAlgorithm> cc_;
  cc::FlowParams params_;
  FlowSenderConfig cfg_;

  double cwnd_;
  double pacing_bps_;
  std::int64_t snd_nxt_ = 0;
  std::int64_t snd_una_ = 0;
  sim::TimePs next_send_allowed_ = 0;
  /// Packets still releasable ahead of the pacing edge this quantum.
  std::int32_t quantum_left_ = 0;
  bool pacing_timer_armed_ = false;
  sim::EventId pacing_timer_{};
  bool rto_armed_ = false;
  sim::EventId rto_timer_{};
  sim::EventId start_event_{};
  sim::TimePs current_rto_ = 0;
  sim::TimePs srtt_ = 0;
  bool started_ = false;
  sim::TimePs start_time_ = 0;
  sim::TimePs finish_time_ = -1;
  std::uint64_t timeouts_ = 0;
  CompletionCallback on_complete_;
};

}  // namespace powertcp::host
