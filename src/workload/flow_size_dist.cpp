#include "workload/flow_size_dist.hpp"

#include <cmath>
#include <stdexcept>

namespace powertcp::workload {

FlowSizeDistribution::FlowSizeDistribution(
    std::vector<std::pair<std::int64_t, double>> points,
    std::int64_t min_bytes)
    : points_(std::move(points)), min_bytes_(min_bytes) {
  if (points_.empty()) {
    throw std::invalid_argument("FlowSizeDistribution: empty CDF");
  }
  double prev_cdf = 0.0;
  std::int64_t prev_bytes = min_bytes_ - 1;
  for (const auto& [bytes, cdf] : points_) {
    if (bytes <= prev_bytes || cdf < prev_cdf || cdf > 1.0) {
      throw std::invalid_argument(
          "FlowSizeDistribution: CDF must be strictly increasing in bytes "
          "and non-decreasing in probability");
    }
    prev_bytes = bytes;
    prev_cdf = cdf;
  }
  if (points_.back().second < 1.0 - 1e-12) {
    throw std::invalid_argument("FlowSizeDistribution: CDF must end at 1");
  }
}

FlowSizeDistribution FlowSizeDistribution::websearch() {
  return FlowSizeDistribution(
      {
          {10'000, 0.15},
          {20'000, 0.20},
          {30'000, 0.30},
          {50'000, 0.40},
          {80'000, 0.53},
          {200'000, 0.60},
          {1'000'000, 0.70},
          {2'000'000, 0.80},
          {5'000'000, 0.90},
          {10'000'000, 0.97},
          {30'000'000, 1.00},
      },
      /*min_bytes=*/1'000);
}

FlowSizeDistribution FlowSizeDistribution::fixed(std::int64_t bytes) {
  return FlowSizeDistribution({{bytes, 1.0}}, bytes);
}

std::int64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  double lo_cdf = 0.0;
  double lo_bytes = static_cast<double>(min_bytes_);
  for (const auto& [bytes, cdf] : points_) {
    if (u <= cdf) {
      const double span = cdf - lo_cdf;
      const double frac = span > 0 ? (u - lo_cdf) / span : 1.0;
      const double v =
          lo_bytes + frac * (static_cast<double>(bytes) - lo_bytes);
      return std::max<std::int64_t>(min_bytes_,
                                    static_cast<std::int64_t>(std::llround(v)));
    }
    lo_cdf = cdf;
    lo_bytes = static_cast<double>(bytes);
  }
  return points_.back().first;
}

double FlowSizeDistribution::mean_bytes() const {
  double mean = 0.0;
  double lo_cdf = 0.0;
  double lo_bytes = static_cast<double>(min_bytes_);
  for (const auto& [bytes, cdf] : points_) {
    const double mass = cdf - lo_cdf;
    mean += mass * (lo_bytes + static_cast<double>(bytes)) / 2.0;
    lo_cdf = cdf;
    lo_bytes = static_cast<double>(bytes);
  }
  return mean;
}

}  // namespace powertcp::workload
