#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

/// \file flow_size_dist.hpp
/// Empirical flow-size distributions sampled by inverse transform over a
/// piecewise-linear CDF. Ships the DCTCP *web search* distribution the
/// paper's evaluation workload uses (§4.1) — heavy-tailed, mean ≈ 1.7 MB,
/// with >50% of flows under 100 KB and a 30 MB cap.

namespace powertcp::workload {

class FlowSizeDistribution {
 public:
  /// `points` is a strictly increasing (bytes, cdf) sequence ending at
  /// cdf = 1. A leading implicit point (min_bytes, 0) anchors the left
  /// edge.
  explicit FlowSizeDistribution(
      std::vector<std::pair<std::int64_t, double>> points,
      std::int64_t min_bytes = 1);

  /// DCTCP web search workload (Alizadeh et al. 2010).
  static FlowSizeDistribution websearch();
  /// Fixed-size distribution (degenerate), for controlled experiments.
  static FlowSizeDistribution fixed(std::int64_t bytes);

  std::int64_t sample(sim::Rng& rng) const;

  /// Analytic mean assuming uniform mass within each CDF segment.
  double mean_bytes() const;

  std::int64_t min_bytes() const { return min_bytes_; }
  std::int64_t max_bytes() const { return points_.back().first; }

  const std::vector<std::pair<std::int64_t, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<std::int64_t, double>> points_;
  std::int64_t min_bytes_;
};

}  // namespace powertcp::workload
