#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workload/flow_size_dist.hpp"

/// \file traffic_gen.hpp
/// Open-loop workload generation: Poisson flow arrivals dialed to a
/// target network load (the paper sweeps 20–95% on the ToR uplinks) and
/// the synthetic incast/query workload of §4.1 (every request fans in
/// from `fan_in` servers in other racks simultaneously).

namespace powertcp::workload {

/// One planned flow arrival (host indices, not node ids).
struct FlowArrival {
  int src_host = 0;
  int dst_host = 0;
  std::int64_t size_bytes = 0;
  sim::TimePs start = 0;
};

struct PoissonConfig {
  /// Target load as a fraction of per-host NIC capacity contributed by
  /// each host. (To express ToR-uplink load, divide by the
  /// oversubscription factor times the inter-rack fraction — the topo
  /// builders expose helpers.)
  double load_per_host = 0.4;
  sim::Bandwidth host_bw;
  sim::TimePs start = 0;
  sim::TimePs stop = 0;
  int n_hosts = 0;
  /// Restrict destinations to a different "group" (rack) than the
  /// source; group = host / hosts_per_group. 0 disables the constraint.
  int hosts_per_group = 0;
};

/// Draws Poisson arrivals per host with exponential inter-arrival times
/// of mean (mean_size · 8) / (load · host_bw); uniform random remote
/// destination. Results are sorted by start time.
std::vector<FlowArrival> generate_poisson(const PoissonConfig& cfg,
                                          const FlowSizeDistribution& dist,
                                          sim::Rng& rng);

struct IncastConfig {
  /// Query requests per second across the cluster.
  double requests_per_sec = 4.0;
  /// Total response bytes per request, split evenly over the fan-in.
  std::int64_t request_bytes = 2'000'000;
  int fan_in = 32;
  sim::TimePs start = 0;
  sim::TimePs stop = 0;
  int n_hosts = 0;
  int hosts_per_group = 0;  ///< responders are drawn from other groups
};

/// Synthetic distributed-file-system queries: at each (Poisson) request
/// time a uniformly random host requests `request_bytes` split across
/// `fan_in` servers in other racks, which all respond simultaneously.
std::vector<FlowArrival> generate_incast(const IncastConfig& cfg,
                                         sim::Rng& rng);

}  // namespace powertcp::workload
