#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace powertcp::workload {
namespace {

int pick_remote_host(int src, int n_hosts, int hosts_per_group,
                     sim::Rng& rng) {
  if (n_hosts < 2) throw std::invalid_argument("need at least two hosts");
  for (;;) {
    const int dst = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
    if (dst == src) continue;
    if (hosts_per_group > 0 &&
        dst / hosts_per_group == src / hosts_per_group) {
      continue;  // same rack; draw again
    }
    return dst;
  }
}

}  // namespace

std::vector<FlowArrival> generate_poisson(const PoissonConfig& cfg,
                                          const FlowSizeDistribution& dist,
                                          sim::Rng& rng) {
  if (cfg.n_hosts < 2) {
    throw std::invalid_argument("generate_poisson: n_hosts < 2");
  }
  if (cfg.load_per_host <= 0 || cfg.stop <= cfg.start) return {};
  const double mean_interarrival_sec =
      dist.mean_bytes() * 8.0 / (cfg.load_per_host * cfg.host_bw.bps());

  std::vector<FlowArrival> out;
  for (int src = 0; src < cfg.n_hosts; ++src) {
    sim::TimePs t = cfg.start;
    for (;;) {
      t += sim::from_seconds(rng.exponential(mean_interarrival_sec));
      if (t >= cfg.stop) break;
      FlowArrival a;
      a.src_host = src;
      a.dst_host = pick_remote_host(src, cfg.n_hosts, cfg.hosts_per_group, rng);
      a.size_bytes = dist.sample(rng);
      a.start = t;
      out.push_back(a);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlowArrival& a, const FlowArrival& b) {
              return a.start < b.start;
            });
  return out;
}

std::vector<FlowArrival> generate_incast(const IncastConfig& cfg,
                                         sim::Rng& rng) {
  if (cfg.n_hosts < cfg.fan_in + 1) {
    throw std::invalid_argument("generate_incast: not enough hosts");
  }
  const double mean_interarrival_sec = 1.0 / cfg.requests_per_sec;
  const std::int64_t per_responder =
      std::max<std::int64_t>(1, cfg.request_bytes / cfg.fan_in);

  std::vector<FlowArrival> out;
  sim::TimePs t = cfg.start;
  for (;;) {
    t += sim::from_seconds(rng.exponential(mean_interarrival_sec));
    if (t >= cfg.stop) break;
    const int requester = static_cast<int>(rng.uniform_int(0, cfg.n_hosts - 1));
    // Draw fan_in distinct responders from other racks.
    std::vector<int> responders;
    responders.reserve(static_cast<std::size_t>(cfg.fan_in));
    while (static_cast<int>(responders.size()) < cfg.fan_in) {
      const int r = pick_remote_host(requester, cfg.n_hosts,
                                     cfg.hosts_per_group, rng);
      if (std::find(responders.begin(), responders.end(), r) ==
          responders.end()) {
        responders.push_back(r);
      }
    }
    for (const int r : responders) {
      out.push_back(FlowArrival{r, requester, per_responder, t});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlowArrival& a, const FlowArrival& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace powertcp::workload
