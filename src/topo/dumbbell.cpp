#include "topo/dumbbell.hpp"

#include <string>

namespace powertcp::topo {

Dumbbell::Dumbbell(net::Network& network, const DumbbellConfig& cfg)
    : net_(network), cfg_(cfg) {
  net::SwitchConfig sc;
  const double total_gbps = cfg_.n_senders * cfg_.host_bw.gbps_value() +
                            cfg_.bottleneck_bw.gbps_value();
  sc.buffer_bytes = cfg_.buffer_bytes > 0
                        ? cfg_.buffer_bytes
                        : static_cast<std::int64_t>(total_gbps * 10'000.0);
  sc.dt_alpha = cfg_.dt_alpha;
  sc.int_enabled = cfg_.int_enabled;
  sc.ecn = cfg_.ecn;
  sc.aqm = cfg_.aqm;
  sc.priority_bands = cfg_.priority_bands;
  sw_ = net_.add_node<net::Switch>("bottleneck", sc);

  for (int i = 0; i < cfg_.n_senders; ++i) {
    host::Host* h = net_.add_node<host::Host>("s" + std::to_string(i));
    senders_.push_back(h);
    net_.connect(*sw_, *h, cfg_.host_bw, cfg_.link_delay);
  }
  receiver_ = net_.add_node<host::Host>("recv");
  const auto link =
      net_.connect(*sw_, *receiver_, cfg_.bottleneck_bw, cfg_.link_delay);
  bottleneck_port_ = link.a_port;

  net_.compute_routes();
}

net::EgressPort& Dumbbell::bottleneck_port() {
  return sw_->port(bottleneck_port_);
}

sim::TimePs Dumbbell::base_rtt(std::int32_t mss) const {
  const std::int64_t data_bytes = mss + net::kHeaderBytes;
  const sim::TimePs data_ser = cfg_.host_bw.tx_time(data_bytes) +
                               cfg_.bottleneck_bw.tx_time(data_bytes);
  const sim::TimePs ack_ser =
      cfg_.host_bw.tx_time(net::kHeaderBytes) +
      cfg_.bottleneck_bw.tx_time(net::kHeaderBytes);
  return 4 * cfg_.link_delay + data_ser + ack_ser;
}

}  // namespace powertcp::topo
