#pragma once

#include <vector>

#include "host/host.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"

/// \file fat_tree.hpp
/// The paper's evaluation topology (§4.1): a fat-tree with `pods` pods
/// of (tors_per_pod ToRs + aggs_per_pod aggregation switches), `cores`
/// core switches, and `servers_per_tor` servers per ToR. Defaults match
/// the paper: 4 pods × (2 ToR + 2 Agg), 2 cores, 32 servers/ToR
/// (256 servers), 100 Gbps fabric links, 25 Gbps server links (4:1
/// oversubscription), 5 µs core-link and 1 µs other propagation delays,
/// shared-memory switches with Dynamic Thresholds and Tofino-like
/// buffering.

namespace powertcp::topo {

struct FatTreeConfig {
  int pods = 4;
  int tors_per_pod = 2;
  int aggs_per_pod = 2;
  int cores = 2;
  int servers_per_tor = 32;

  sim::Bandwidth host_bw = sim::Bandwidth::gbps(25);
  sim::Bandwidth fabric_bw = sim::Bandwidth::gbps(100);
  sim::TimePs host_link_delay = sim::microseconds(1);
  sim::TimePs fabric_link_delay = sim::microseconds(1);
  sim::TimePs core_link_delay = sim::microseconds(5);

  /// Tofino-like shared buffer: bytes per Gbps of aggregate port speed.
  std::int64_t buffer_bytes_per_gbps = 10'000;
  double dt_alpha = 1.0;
  bool int_enabled = true;
  net::EcnConfig ecn;      ///< optional; thresholds per Gbps
  net::AqmSpec aqm;        ///< per-port queue policy ("red" = `ecn` above)
  int priority_bands = 0;  ///< >0 for the HOMA configuration

  /// Paper-quick scaled-down preset: 8 servers/ToR at 25 G hosts with
  /// 50 G fabric (oversubscription preserved at 4:1), 2 µs core links.
  static FatTreeConfig quick();
};

class FatTree {
 public:
  FatTree(net::Network& network, const FatTreeConfig& cfg);

  const FatTreeConfig& config() const { return cfg_; }

  int host_count() const { return static_cast<int>(hosts_.size()); }
  host::Host& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  net::NodeId host_node(int i) const {
    return hosts_.at(static_cast<std::size_t>(i))->id();
  }

  int tor_count() const { return static_cast<int>(tors_.size()); }
  net::Switch& tor(int i) { return *tors_.at(static_cast<std::size_t>(i)); }
  net::Switch& agg(int i) { return *aggs_.at(static_cast<std::size_t>(i)); }
  net::Switch& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  int agg_count() const { return static_cast<int>(aggs_.size()); }
  int core_count() const { return static_cast<int>(cores_.size()); }

  int tor_of_host(int host_index) const {
    return host_index / cfg_.servers_per_tor;
  }
  /// ToR port index carrying traffic *down* to this host.
  int tor_down_port(int host_index) const {
    return host_index % cfg_.servers_per_tor;
  }
  /// The ToR uplink ports (toward the aggregation layer).
  std::vector<int> tor_uplink_ports(int tor_index) const;

  /// Maximum base RTT between any host pair: propagation plus one MSS
  /// serialization per data-path hop plus one header serialization per
  /// ack-path hop — the τ the paper configures for PowerTCP and HPCC.
  sim::TimePs max_base_rtt(std::int32_t mss = net::kDefaultMss) const;

  /// ToR-uplink oversubscription factor (host capacity / uplink
  /// capacity per ToR), 4.0 in the paper's setup.
  double oversubscription() const;

  /// Converts a desired *ToR uplink* load into the per-host load knob
  /// for workload::PoissonConfig, accounting for oversubscription and
  /// the fraction of traffic leaving the rack.
  double host_load_for_uplink_load(double uplink_load) const;

  std::uint64_t total_drops() const;

 private:
  net::Network& net_;
  FatTreeConfig cfg_;
  std::vector<host::Host*> hosts_;
  std::vector<net::Switch*> tors_;
  std::vector<net::Switch*> aggs_;
  std::vector<net::Switch*> cores_;
};

}  // namespace powertcp::topo
