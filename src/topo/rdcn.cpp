#include "topo/rdcn.hpp"

#include <stdexcept>
#include <string>

namespace powertcp::topo {

RdcnConfig RdcnConfig::small() {
  RdcnConfig cfg;
  cfg.n_tors = 4;
  cfg.servers_per_tor = 2;
  return cfg;
}

RdcnTor::RdcnTor(sim::Simulator& simulator, net::NodeId id, std::string name,
                 int tor_index, std::int64_t buffer_bytes, double dt_alpha)
    : net::Node(id, std::move(name)),
      sim_(simulator),
      tor_index_(tor_index),
      buffer_(buffer_bytes, dt_alpha) {}

void RdcnTor::add_local_host(net::NodeId host, int down_port) {
  local_hosts_[host] = down_port;
}

void RdcnTor::init_voqs(int n_tors, std::function<int(net::NodeId)> classify) {
  voqs_ = std::make_unique<net::VoqSet>(n_tors, std::move(classify));
}

void RdcnTor::receive(net::Packet pkt, int /*in_port*/) {
  const auto it = local_hosts_.find(pkt.dst);
  if (it != local_hosts_.end()) {
    port(it->second).enqueue(std::move(pkt));
    return;
  }
  if (circuit_port_ < 0 || uplink_port_ < 0) {
    throw std::logic_error("RdcnTor '" + name() + "': uplinks not wired");
  }
  // All inter-rack traffic lands in the shared VOQ set via the circuit
  // port (the VoqSet entry point); the packet uplink drains the same
  // set, so wake it too.
  port(circuit_port_).enqueue(std::move(pkt));
  port(uplink_port_).kick();
}

Rdcn::Rdcn(net::Network& network, const RdcnConfig& cfg)
    : net_(network), cfg_(cfg) {
  schedule_ = std::make_unique<net::CircuitSchedule>(cfg_.n_tors, cfg_.day,
                                                     cfg_.night);

  // Packet-switched core connecting all ToRs.
  net::SwitchConfig core_cfg;
  core_cfg.buffer_bytes = static_cast<std::int64_t>(
      cfg_.n_tors * cfg_.packet_bw.gbps_value() * 10'000.0);
  core_cfg.int_enabled = cfg_.int_enabled;
  packet_core_ = net_.add_node<net::Switch>("pktcore", core_cfg);

  // ToRs and hosts.
  for (int t = 0; t < cfg_.n_tors; ++t) {
    RdcnTor* tor = net_.add_node<RdcnTor>("rtor" + std::to_string(t), t,
                                          cfg_.tor_buffer_bytes,
                                          cfg_.dt_alpha);
    tors_.push_back(tor);
    for (int s = 0; s < cfg_.servers_per_tor; ++s) {
      const int h = t * cfg_.servers_per_tor + s;
      host::Host* host = net_.add_node<host::Host>("rh" + std::to_string(h));
      hosts_.push_back(host);
      const auto link =
          net_.connect(*tor, *host, cfg_.host_bw, cfg_.host_link_delay);
      tor->add_local_host(host->id(), link.a_port);
      host_tor_[host->id()] = t;
      // Host-facing ToR ports join the shared buffer and stamp INT
      // (they are real contention points under fan-in).
      tor->port(link.a_port).set_shared_buffer(&tor->buffer());
      tor->port(link.a_port).set_int_enabled(cfg_.int_enabled);
    }
  }

  const auto tor_of_node_fn = [this](net::NodeId dst) {
    return tor_of_node(dst);
  };

  // Circuit switch.
  circuit_ = net_.add_node<net::CircuitSwitchNode>("optical", schedule_.get(),
                                                   tor_of_node_fn);

  for (int t = 0; t < cfg_.n_tors; ++t) {
    RdcnTor* tor = tors_[static_cast<std::size_t>(t)];
    tor->init_voqs(cfg_.n_tors, tor_of_node_fn);

    // Circuit uplink: ToR -> optical switch.
    auto cport = std::make_unique<net::CircuitPort>(
        net_.simulator(), cfg_.circuit_bw, cfg_.fabric_link_delay,
        &tor->voqs(), schedule_.get(), t);
    cport->set_shared_buffer(&tor->buffer());
    cport->set_int_enabled(cfg_.int_enabled);
    cport->set_peer(circuit_, /*peer_in_port=*/t);
    const int cidx = tor->attach_port(std::move(cport));
    tor->set_circuit_port(cidx);
    circuit_->attach_tor(t, tor, /*tor_in_port=*/cidx,
                         cfg_.fabric_link_delay);

    // Packet uplink: ToR -> packet core (and a core port back).
    auto uport = std::make_unique<net::VoqUplinkPort>(
        net_.simulator(), cfg_.packet_bw, cfg_.fabric_link_delay,
        &tor->voqs(), schedule_.get(), t);
    uport->set_shared_buffer(&tor->buffer());
    uport->set_int_enabled(cfg_.int_enabled);
    const int uidx = tor->attach_port(std::move(uport));
    tor->set_uplink_port(uidx);
    const int core_port =
        packet_core_->add_port(cfg_.packet_bw, cfg_.fabric_link_delay);
    tor->port(uidx).set_peer(packet_core_, core_port);
    packet_core_->port(core_port).set_peer(tor, uidx);
    net_.register_link(*tor, uidx, *packet_core_, core_port);
  }

  net_.compute_routes();
}

int Rdcn::tor_of_node(net::NodeId id) const {
  const auto it = host_tor_.find(id);
  if (it == host_tor_.end()) {
    throw std::logic_error("Rdcn: node is not a host");
  }
  return it->second;
}

sim::TimePs Rdcn::max_base_rtt(std::int32_t mss) const {
  // Packet plane: host - ToR - core - ToR - host.
  const std::int64_t data_bytes = mss + net::kHeaderBytes;
  const sim::TimePs prop =
      2 * (2 * cfg_.host_link_delay + 2 * cfg_.fabric_link_delay);
  const sim::TimePs data_ser = cfg_.host_bw.tx_time(data_bytes) +
                               3 * cfg_.packet_bw.tx_time(data_bytes);
  const sim::TimePs ack_ser =
      cfg_.host_bw.tx_time(net::kHeaderBytes) +
      3 * cfg_.packet_bw.tx_time(net::kHeaderBytes);
  return prop + data_ser + ack_ser;
}

}  // namespace powertcp::topo
