#pragma once

#include <vector>

#include "host/host.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"

/// \file dumbbell.hpp
/// Single-bottleneck topology for microbenchmarks and the incast /
/// fairness experiments (Figs. 4, 5): `n_senders` hosts and one
/// receiver hang off one shared-memory switch; the switch-to-receiver
/// link is the bottleneck.

namespace powertcp::topo {

struct DumbbellConfig {
  int n_senders = 10;
  sim::Bandwidth host_bw = sim::Bandwidth::gbps(25);
  sim::Bandwidth bottleneck_bw = sim::Bandwidth::gbps(25);
  sim::TimePs link_delay = sim::microseconds(1);
  std::int64_t buffer_bytes = 0;  ///< 0 = derive Tofino-like 10 KB/Gbps
  double dt_alpha = 1.0;
  bool int_enabled = true;
  net::EcnConfig ecn;  ///< absolute thresholds (single bottleneck)
  net::AqmSpec aqm;    ///< per-port queue policy ("red" = `ecn` above)
  int priority_bands = 0;
};

class Dumbbell {
 public:
  Dumbbell(net::Network& network, const DumbbellConfig& cfg);

  host::Host& sender(int i) {
    return *senders_.at(static_cast<std::size_t>(i));
  }
  host::Host& receiver() { return *receiver_; }
  /// The receiver's node id — the destination every flow targets.
  net::NodeId receiver_node() const { return receiver_->id(); }
  net::Switch& bottleneck_switch() { return *sw_; }
  /// The egress port feeding the receiver (the bottleneck queue).
  net::EgressPort& bottleneck_port();

  int sender_count() const { return static_cast<int>(senders_.size()); }

  /// Base RTT sender -> receiver -> sender including serialization.
  sim::TimePs base_rtt(std::int32_t mss = net::kDefaultMss) const;

 private:
  net::Network& net_;
  DumbbellConfig cfg_;
  std::vector<host::Host*> senders_;
  host::Host* receiver_ = nullptr;
  net::Switch* sw_ = nullptr;
  int bottleneck_port_ = -1;
};

}  // namespace powertcp::topo
