#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "host/host.hpp"
#include "net/circuit.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"

/// \file rdcn.hpp
/// The reconfigurable-datacenter topology of the §5 case study: N ToRs
/// × k servers, every ToR attached both to a packet-switched core
/// (25 Gbps links) and to an optical circuit switch (100 Gbps) that
/// cycles through a rotor schedule (day 225 µs / night 20 µs). ToRs keep
/// per-destination VOQs drained by the circuit when the matching is up
/// and by the packet uplink otherwise.

namespace powertcp::topo {

struct RdcnConfig {
  int n_tors = 25;
  int servers_per_tor = 10;
  sim::Bandwidth host_bw = sim::Bandwidth::gbps(25);
  sim::Bandwidth packet_bw = sim::Bandwidth::gbps(25);
  sim::Bandwidth circuit_bw = sim::Bandwidth::gbps(100);
  sim::TimePs day = sim::microseconds(225);
  sim::TimePs night = sim::microseconds(20);
  sim::TimePs host_link_delay = sim::microseconds(1);
  sim::TimePs fabric_link_delay = sim::microseconds(1);
  std::int64_t tor_buffer_bytes = 16'000'000;  ///< deep (reTCP prebuffers)
  double dt_alpha = 4.0;  ///< permissive: VOQs legitimately stand
  bool int_enabled = true;

  /// Small preset for tests: 4 ToRs × 2 servers.
  static RdcnConfig small();
};

/// ToR switch of the RDCN plane: hosts below, shared VOQ set above,
/// drained by a CircuitPort and a VoqUplinkPort.
class RdcnTor final : public net::Node {
 public:
  RdcnTor(sim::Simulator& simulator, net::NodeId id, std::string name,
          int tor_index, std::int64_t buffer_bytes, double dt_alpha);

  void receive(net::Packet pkt, int in_port) override;
  bool forwards() const override { return true; }

  /// Registers a directly attached host and its down-port index.
  void add_local_host(net::NodeId host, int down_port);
  /// Installs the VOQ set once the ToR count and classifier are known.
  void init_voqs(int n_tors, std::function<int(net::NodeId)> classify);

  net::VoqSet& voqs() { return *voqs_; }
  net::DtSharedBuffer& buffer() { return buffer_; }
  int tor_index() const { return tor_index_; }

  void set_circuit_port(int idx) { circuit_port_ = idx; }
  void set_uplink_port(int idx) { uplink_port_ = idx; }
  int circuit_port_index() const { return circuit_port_; }
  int uplink_port_index() const { return uplink_port_; }

 private:
  sim::Simulator& sim_;
  int tor_index_;
  net::DtSharedBuffer buffer_;
  std::unique_ptr<net::VoqSet> voqs_;
  std::unordered_map<net::NodeId, int> local_hosts_;
  int circuit_port_ = -1;
  int uplink_port_ = -1;
};

class Rdcn {
 public:
  Rdcn(net::Network& network, const RdcnConfig& cfg);

  const RdcnConfig& config() const { return cfg_; }
  const net::CircuitSchedule& schedule() const { return *schedule_; }

  int host_count() const { return static_cast<int>(hosts_.size()); }
  host::Host& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  RdcnTor& tor(int i) { return *tors_.at(static_cast<std::size_t>(i)); }
  net::Switch& packet_core() { return *packet_core_; }

  int tor_of_host(int host_index) const {
    return host_index / cfg_.servers_per_tor;
  }
  int tor_of_node(net::NodeId id) const;

  /// Base RTT over the packet plane between hosts in different racks —
  /// the maximum RTT, i.e. the τ of §5 (the circuit path is shorter).
  sim::TimePs max_base_rtt(std::int32_t mss = net::kDefaultMss) const;

 private:
  net::Network& net_;
  RdcnConfig cfg_;
  std::unique_ptr<net::CircuitSchedule> schedule_;
  std::vector<RdcnTor*> tors_;
  std::vector<host::Host*> hosts_;
  net::Switch* packet_core_ = nullptr;
  net::CircuitSwitchNode* circuit_ = nullptr;
  std::unordered_map<net::NodeId, int> host_tor_;
};

}  // namespace powertcp::topo
