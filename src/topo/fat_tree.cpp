#include "topo/fat_tree.hpp"

#include <stdexcept>
#include <string>

namespace powertcp::topo {

FatTreeConfig FatTreeConfig::quick() {
  // 64 hosts; 8 x 25G down vs 2 x 25G up preserves the paper's 4:1
  // ToR oversubscription at a fraction of the event cost.
  FatTreeConfig cfg;
  cfg.servers_per_tor = 8;
  cfg.host_bw = sim::Bandwidth::gbps(25);
  cfg.fabric_bw = sim::Bandwidth::gbps(25);
  cfg.core_link_delay = sim::microseconds(2);
  return cfg;
}

FatTree::FatTree(net::Network& network, const FatTreeConfig& cfg)
    : net_(network), cfg_(cfg) {
  if (cfg_.cores < 1 || cfg_.pods < 1 || cfg_.tors_per_pod < 1 ||
      cfg_.aggs_per_pod < 1 || cfg_.servers_per_tor < 1) {
    throw std::invalid_argument("FatTree: all counts must be positive");
  }

  // Per-switch buffer sized from aggregate port capacity (Tofino-like
  // bandwidth-buffer ratio).
  const auto buffer_for = [&](double total_gbps) {
    net::SwitchConfig sc;
    sc.buffer_bytes = static_cast<std::int64_t>(
        total_gbps * static_cast<double>(cfg_.buffer_bytes_per_gbps));
    sc.dt_alpha = cfg_.dt_alpha;
    sc.int_enabled = cfg_.int_enabled;
    sc.ecn = cfg_.ecn;
    sc.ecn_per_gbps = cfg_.ecn.enabled;
    sc.aqm = cfg_.aqm;
    sc.priority_bands = cfg_.priority_bands;
    return sc;
  };

  const double tor_gbps =
      cfg_.servers_per_tor * cfg_.host_bw.gbps_value() +
      cfg_.aggs_per_pod * cfg_.fabric_bw.gbps_value();
  const double agg_gbps =
      (cfg_.tors_per_pod + cfg_.cores) * cfg_.fabric_bw.gbps_value();
  const double core_gbps =
      cfg_.pods * cfg_.aggs_per_pod * cfg_.fabric_bw.gbps_value();

  for (int c = 0; c < cfg_.cores; ++c) {
    cores_.push_back(net_.add_node<net::Switch>(
        "core" + std::to_string(c), buffer_for(core_gbps)));
  }
  for (int p = 0; p < cfg_.pods; ++p) {
    for (int a = 0; a < cfg_.aggs_per_pod; ++a) {
      aggs_.push_back(net_.add_node<net::Switch>(
          "agg" + std::to_string(p) + "." + std::to_string(a),
          buffer_for(agg_gbps)));
    }
    for (int t = 0; t < cfg_.tors_per_pod; ++t) {
      tors_.push_back(net_.add_node<net::Switch>(
          "tor" + std::to_string(p) + "." + std::to_string(t),
          buffer_for(tor_gbps)));
    }
  }

  // Hosts, wired in index order so ToR down-port == host % servers_per_tor.
  const int n_tors = cfg_.pods * cfg_.tors_per_pod;
  for (int t = 0; t < n_tors; ++t) {
    for (int s = 0; s < cfg_.servers_per_tor; ++s) {
      const int h = t * cfg_.servers_per_tor + s;
      host::Host* host =
          net_.add_node<host::Host>("h" + std::to_string(h));
      hosts_.push_back(host);
      // ToR side first so down-port indices are contiguous from 0.
      net_.connect(*tors_[static_cast<std::size_t>(t)], *host, cfg_.host_bw,
                   cfg_.host_link_delay);
    }
  }

  // ToR -> every Agg in its pod.
  for (int p = 0; p < cfg_.pods; ++p) {
    for (int t = 0; t < cfg_.tors_per_pod; ++t) {
      const int tor_idx = p * cfg_.tors_per_pod + t;
      for (int a = 0; a < cfg_.aggs_per_pod; ++a) {
        const int agg_idx = p * cfg_.aggs_per_pod + a;
        net_.connect(*tors_[static_cast<std::size_t>(tor_idx)],
                     *aggs_[static_cast<std::size_t>(agg_idx)],
                     cfg_.fabric_bw, cfg_.fabric_link_delay);
      }
    }
  }

  // Agg a of each pod -> core c where c % aggs_per_pod == a (the paper's
  // 2-core / 2-agg wiring generalized).
  for (int p = 0; p < cfg_.pods; ++p) {
    for (int a = 0; a < cfg_.aggs_per_pod; ++a) {
      const int agg_idx = p * cfg_.aggs_per_pod + a;
      for (int c = 0; c < cfg_.cores; ++c) {
        if (c % cfg_.aggs_per_pod != a % cfg_.aggs_per_pod) continue;
        net_.connect(*aggs_[static_cast<std::size_t>(agg_idx)],
                     *cores_[static_cast<std::size_t>(c)], cfg_.fabric_bw,
                     cfg_.core_link_delay);
      }
    }
  }

  net_.compute_routes();
}

std::vector<int> FatTree::tor_uplink_ports(int tor_index) const {
  // Down ports occupy [0, servers_per_tor); uplinks follow.
  (void)tor_index;
  std::vector<int> ports;
  for (int a = 0; a < cfg_.aggs_per_pod; ++a) {
    ports.push_back(cfg_.servers_per_tor + a);
  }
  return ports;
}

sim::TimePs FatTree::max_base_rtt(std::int32_t mss) const {
  // Longest path: host - ToR - Agg - Core - Agg - ToR - host.
  const sim::TimePs one_way_prop =
      2 * cfg_.host_link_delay + 2 * cfg_.fabric_link_delay +
      2 * cfg_.core_link_delay;
  const std::int64_t data_bytes = mss + net::kHeaderBytes;
  // Data path: NIC + ToR-up + Agg-up + Core-down + Agg-down + ToR-down.
  const sim::TimePs data_ser = cfg_.host_bw.tx_time(data_bytes) * 2 +
                               cfg_.fabric_bw.tx_time(data_bytes) * 4;
  // Ack path: header-only packet over the same hops.
  const sim::TimePs ack_ser =
      cfg_.host_bw.tx_time(net::kHeaderBytes) * 2 +
      cfg_.fabric_bw.tx_time(net::kHeaderBytes) * 4;
  return 2 * one_way_prop + data_ser + ack_ser;
}

double FatTree::oversubscription() const {
  const double down = cfg_.servers_per_tor * cfg_.host_bw.gbps_value();
  const double up = cfg_.aggs_per_pod * cfg_.fabric_bw.gbps_value();
  return down / up;
}

double FatTree::host_load_for_uplink_load(double uplink_load) const {
  // Uplink load = host_load * oversubscription * inter-rack fraction.
  const int n_hosts = host_count();
  const double inter_rack_fraction =
      static_cast<double>(n_hosts - cfg_.servers_per_tor) /
      static_cast<double>(n_hosts - 1);
  return uplink_load / (oversubscription() * inter_rack_fraction);
}

std::uint64_t FatTree::total_drops() const {
  std::uint64_t total = 0;
  for (const auto* sw : tors_) total += sw->total_drops();
  for (const auto* sw : aggs_) total += sw->total_drops();
  for (const auto* sw : cores_) total += sw->total_drops();
  return total;
}

}  // namespace powertcp::topo
