#include "topo/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace powertcp::topo {

namespace {

ShardPlan sequential_plan(std::size_t node_count) {
  ShardPlan plan;
  plan.node_shard.assign(node_count, 0);
  return plan;
}

int clamp_shards(int requested, int natural) {
  if (requested < 1) {
    throw std::invalid_argument("shard plan: requested shards must be >= 1");
  }
  return std::min(requested, natural);
}

}  // namespace

ShardPlan fat_tree_shard_plan(const FatTreeConfig& cfg, int requested) {
  const int pod_switches = cfg.aggs_per_pod + cfg.tors_per_pod;
  const int n_tors = cfg.pods * cfg.tors_per_pod;
  const std::size_t nodes = static_cast<std::size_t>(
      cfg.cores + cfg.pods * pod_switches +
      cfg.pods * cfg.tors_per_pod * cfg.servers_per_tor);

  // PER-TOR cut, for requests beyond the per-pod family's natural
  // parallelism: the whole aggregation/core plane stays on shard 0 and
  // ToR t (with its hosts) goes to shard 1 + t % (N - 1), so the only
  // cut links are the ToR uplinks and the lookahead is
  // fabric_link_delay. Parallelism scales with racks instead of pods
  // at the price of a shorter cut delay.
  if (requested > cfg.pods && n_tors >= 2 && cfg.fabric_link_delay >= 1) {
    const int shards = clamp_shards(requested, 1 + n_tors);
    ShardPlan plan;
    plan.shards = shards;
    plan.lookahead = cfg.fabric_link_delay;
    plan.node_shard.reserve(nodes);
    for (int c = 0; c < cfg.cores; ++c) {
      plan.node_shard.push_back(0);
    }
    for (int p = 0; p < cfg.pods; ++p) {
      for (int a = 0; a < cfg.aggs_per_pod; ++a) {
        plan.node_shard.push_back(0);
      }
      for (int t = 0; t < cfg.tors_per_pod; ++t) {
        const int tor_idx = p * cfg.tors_per_pod + t;
        plan.node_shard.push_back(1 + tor_idx % (shards - 1));
      }
    }
    for (int t = 0; t < n_tors; ++t) {
      for (int s = 0; s < cfg.servers_per_tor; ++s) {
        plan.node_shard.push_back(1 + t % (shards - 1));
      }
    }
    return plan;
  }

  const int shards = clamp_shards(requested, cfg.pods);
  if (shards < 2 || cfg.core_link_delay < 1) return sequential_plan(nodes);

  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = cfg.core_link_delay;
  plan.node_shard.reserve(nodes);
  // PER-POD cut. At N >= 3 the cores get a DEDICATED relay shard
  // (N - 1) and the pods spread over shards 0..N-2: every cut link is
  // an agg<->core link, so two pod shards only influence each other
  // through the relay — their pairwise bound is TWO core-link hops,
  // and the engine's per-pair lookahead (ShardedSimulator::
  // add_cut_edge) opens windows about twice as wide as the cut delay
  // whenever traffic stays pod-local (the relay shard sits idle). At
  // N == 2 a relay would leave every pod on one shard, so the classic
  // interleaved cut (cores c % N, pod p % N) is kept.
  const bool relay = shards >= 3;
  const int pod_shards = relay ? shards - 1 : shards;
  for (int c = 0; c < cfg.cores; ++c) {
    plan.node_shard.push_back(relay ? shards - 1 : c % shards);
  }
  for (int p = 0; p < cfg.pods; ++p) {
    for (int i = 0; i < pod_switches; ++i) {
      plan.node_shard.push_back(p % pod_shards);
    }
  }
  // Hosts are built ToR-major after every pod; a host's pod is
  // tor / tors_per_pod.
  for (int t = 0; t < n_tors; ++t) {
    for (int s = 0; s < cfg.servers_per_tor; ++s) {
      plan.node_shard.push_back((t / cfg.tors_per_pod) % pod_shards);
    }
  }
  return plan;
}

ShardPlan dumbbell_shard_plan(const DumbbellConfig& cfg, int requested) {
  const std::size_t nodes = static_cast<std::size_t>(cfg.n_senders) + 2;
  const int shards = clamp_shards(requested, cfg.n_senders);
  if (shards < 2 || cfg.link_delay < 1) return sequential_plan(nodes);

  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = cfg.link_delay;
  plan.node_shard.reserve(nodes);
  plan.node_shard.push_back(0);  // bottleneck switch
  for (int i = 0; i < cfg.n_senders; ++i) {
    plan.node_shard.push_back(i % shards);
  }
  plan.node_shard.push_back(0);  // receiver
  return plan;
}

ShardPlan rdcn_shard_plan(const RdcnConfig& cfg, int requested) {
  const std::size_t nodes =
      static_cast<std::size_t>(cfg.n_tors) *
          static_cast<std::size_t>(1 + cfg.servers_per_tor) +
      2;
  const int shards = clamp_shards(requested, cfg.n_tors);
  if (shards < 2 || cfg.host_link_delay < 1 || cfg.fabric_link_delay < 1) {
    return sequential_plan(nodes);
  }

  // The circuit plane (ToRs + optical switch) must stay together on
  // shard 0 — the circuit switch delivers into ToRs directly through
  // its own event queue — but the PACKET core only talks to ToRs over
  // ordinary fabric links, so it gets its own shard: packet-plane
  // store-and-forward runs concurrently with the VOQ/circuit machinery,
  // and the hosts of ToR t spread over all shards as before.
  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = std::min(cfg.host_link_delay, cfg.fabric_link_delay);
  plan.node_shard.reserve(nodes);
  plan.node_shard.push_back(1);  // packet core, split from the circuit plane
  for (int t = 0; t < cfg.n_tors; ++t) {
    plan.node_shard.push_back(0);  // the ToR itself
    for (int s = 0; s < cfg.servers_per_tor; ++s) {
      plan.node_shard.push_back(t % shards);
    }
  }
  plan.node_shard.push_back(0);  // circuit switch
  return plan;
}

}  // namespace powertcp::topo
