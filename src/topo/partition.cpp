#include "topo/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace powertcp::topo {

namespace {

ShardPlan sequential_plan(std::size_t node_count) {
  ShardPlan plan;
  plan.node_shard.assign(node_count, 0);
  return plan;
}

int clamp_shards(int requested, int natural) {
  if (requested < 1) {
    throw std::invalid_argument("shard plan: requested shards must be >= 1");
  }
  return std::min(requested, natural);
}

}  // namespace

ShardPlan fat_tree_shard_plan(const FatTreeConfig& cfg, int requested) {
  const int pod_switches = cfg.aggs_per_pod + cfg.tors_per_pod;
  const std::size_t nodes = static_cast<std::size_t>(
      cfg.cores + cfg.pods * pod_switches +
      cfg.pods * cfg.tors_per_pod * cfg.servers_per_tor);
  const int shards = clamp_shards(requested, cfg.pods);
  if (shards < 2 || cfg.core_link_delay < 1) return sequential_plan(nodes);

  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = cfg.core_link_delay;
  plan.node_shard.reserve(nodes);
  for (int c = 0; c < cfg.cores; ++c) {
    plan.node_shard.push_back(c % shards);
  }
  for (int p = 0; p < cfg.pods; ++p) {
    for (int i = 0; i < pod_switches; ++i) {
      plan.node_shard.push_back(p % shards);
    }
  }
  // Hosts are built ToR-major after every pod; a host's pod is
  // tor / tors_per_pod.
  const int n_tors = cfg.pods * cfg.tors_per_pod;
  for (int t = 0; t < n_tors; ++t) {
    for (int s = 0; s < cfg.servers_per_tor; ++s) {
      plan.node_shard.push_back((t / cfg.tors_per_pod) % shards);
    }
  }
  return plan;
}

ShardPlan dumbbell_shard_plan(const DumbbellConfig& cfg, int requested) {
  const std::size_t nodes = static_cast<std::size_t>(cfg.n_senders) + 2;
  const int shards = clamp_shards(requested, cfg.n_senders);
  if (shards < 2 || cfg.link_delay < 1) return sequential_plan(nodes);

  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = cfg.link_delay;
  plan.node_shard.reserve(nodes);
  plan.node_shard.push_back(0);  // bottleneck switch
  for (int i = 0; i < cfg.n_senders; ++i) {
    plan.node_shard.push_back(i % shards);
  }
  plan.node_shard.push_back(0);  // receiver
  return plan;
}

ShardPlan rdcn_shard_plan(const RdcnConfig& cfg, int requested) {
  const std::size_t nodes =
      static_cast<std::size_t>(cfg.n_tors) *
          static_cast<std::size_t>(1 + cfg.servers_per_tor) +
      2;
  const int shards = clamp_shards(requested, cfg.n_tors);
  if (shards < 2 || cfg.host_link_delay < 1) return sequential_plan(nodes);

  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = cfg.host_link_delay;
  plan.node_shard.reserve(nodes);
  plan.node_shard.push_back(0);  // packet core
  for (int t = 0; t < cfg.n_tors; ++t) {
    plan.node_shard.push_back(0);  // the ToR itself
    for (int s = 0; s < cfg.servers_per_tor; ++s) {
      plan.node_shard.push_back(t % shards);
    }
  }
  plan.node_shard.push_back(0);  // circuit switch
  return plan;
}

}  // namespace powertcp::topo
