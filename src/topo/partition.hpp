#pragma once

#include <vector>

#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"
#include "topo/rdcn.hpp"

/// \file partition.hpp
/// Shard plans for the parallel engine (sim/shard.hpp): each plan maps
/// every node a topology builder will create — by construction order,
/// which is the NodeId — to a shard, and reports the minimum
/// propagation delay across the cut, which becomes the engine's
/// conservative lookahead. Plans only cut links whose delay equals or
/// exceeds that lookahead, and fall back to a single shard when the
/// topology has no usable cut (no parallelism is better than a wrong
/// answer or a zero-lookahead livelock).
///
/// The cuts:
///  - fat_tree, requested <= pods: per-pod. At N >= 3 the cores form a
///    dedicated RELAY shard (N-1) and pod p goes to shard p % (N-1);
///    only agg<->core links cross (lookahead core_link_delay), and pod
///    shards influence each other only via two hops through the relay,
///    which the engine's per-pair lookahead turns into windows about
///    twice the cut delay. At N == 2 the classic interleaved cut
///    (core c % N, pod p % N) is kept.
///  - fat_tree, requested > pods: per-ToR. The aggregation/core plane
///    stays on shard 0 and ToR t with its hosts goes to shard
///    1 + t % (N-1), N up to 1 + n_tors; the cut is the ToR uplinks
///    (lookahead fabric_link_delay).
///  - dumbbell: the bottleneck switch and the receiver stay on shard 0,
///    sender i goes to shard i % N; the cut is the sender access links
///    (lookahead link_delay).
///  - rdcn: the circuit plane (ToRs + circuit switch) stays on shard 0
///    — the circuit switch delivers into ToRs directly through its own
///    event queue, so splitting ToRs from it would race — while the
///    PACKET core gets shard 1 (its only links are ordinary ToR fabric
///    links) and the hosts of ToR t go to shard t % N (lookahead
///    min(host_link_delay, fabric_link_delay)).

namespace powertcp::topo {

struct ShardPlan {
  int shards = 1;
  /// Minimum cross-shard link propagation (engine lookahead). 0 when
  /// shards == 1.
  sim::TimePs lookahead = 0;
  /// Shard of node i, i the topology's construction order (== NodeId).
  std::vector<int> node_shard;
};

/// Plans for `requested` shards, clamped to the topology's natural
/// parallelism (pods / senders / ToRs); returns a 1-shard plan when the
/// clamp or a zero cut delay removes all parallelism.
ShardPlan fat_tree_shard_plan(const FatTreeConfig& cfg, int requested);
ShardPlan dumbbell_shard_plan(const DumbbellConfig& cfg, int requested);
ShardPlan rdcn_shard_plan(const RdcnConfig& cfg, int requested);

}  // namespace powertcp::topo
