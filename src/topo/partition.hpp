#pragma once

#include <vector>

#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"
#include "topo/rdcn.hpp"

/// \file partition.hpp
/// Shard plans for the parallel engine (sim/shard.hpp): each plan maps
/// every node a topology builder will create — by construction order,
/// which is the NodeId — to a shard, and reports the minimum
/// propagation delay across the cut, which becomes the engine's
/// conservative lookahead. Plans only cut links whose delay equals or
/// exceeds that lookahead, and fall back to a single shard when the
/// topology has no usable cut (no parallelism is better than a wrong
/// answer or a zero-lookahead livelock).
///
/// The cuts:
///  - fat_tree: per-pod. Pod p (its aggs, tors, and hosts) goes to
///    shard p % N, core c to shard c % N; only agg<->core links cross,
///    so the lookahead is core_link_delay.
///  - dumbbell: the bottleneck switch and the receiver stay on shard 0,
///    sender i goes to shard i % N; the cut is the sender access links
///    (lookahead link_delay).
///  - rdcn: all switching (ToRs, packet core, circuit switch) stays on
///    shard 0 — the circuit switch delivers into ToRs directly through
///    its own event queue, so splitting ToRs from it would race — and
///    the hosts of ToR t go to shard t % N (lookahead host_link_delay).

namespace powertcp::topo {

struct ShardPlan {
  int shards = 1;
  /// Minimum cross-shard link propagation (engine lookahead). 0 when
  /// shards == 1.
  sim::TimePs lookahead = 0;
  /// Shard of node i, i the topology's construction order (== NodeId).
  std::vector<int> node_shard;
};

/// Plans for `requested` shards, clamped to the topology's natural
/// parallelism (pods / senders / ToRs); returns a 1-shard plan when the
/// clamp or a zero cut delay removes all parallelism.
ShardPlan fat_tree_shard_plan(const FatTreeConfig& cfg, int requested);
ShardPlan dumbbell_shard_plan(const DumbbellConfig& cfg, int requested);
ShardPlan rdcn_shard_plan(const RdcnConfig& cfg, int requested);

}  // namespace powertcp::topo
