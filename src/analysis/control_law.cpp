#include "analysis/control_law.hpp"

#include <stdexcept>

namespace powertcp::analysis {

std::string_view law_name(LawType law) {
  switch (law) {
    case LawType::kQueueLength:
      return "queue-length (voltage)";
    case LawType::kDelay:
      return "delay (voltage)";
    case LawType::kRttGradient:
      return "rtt-gradient (current)";
    case LawType::kPower:
      return "power (PowerTCP)";
  }
  throw std::logic_error("law_name: bad enum");
}

double feedback_ratio(LawType law, const FluidParams& p, double q_bytes,
                      double q_dot_Bps, double mu_Bps) {
  const double b = p.bandwidth_Bps;
  const double tau = p.base_rtt_s;
  switch (law) {
    case LawType::kQueueLength:
      // f/e = (q + bτ) / bτ
      return (q_bytes + b * tau) / (b * tau);
    case LawType::kDelay:
      // f/e = (q/b + τ) / τ — identical ratio to queue length.
      return (q_bytes / b + tau) / tau;
    case LawType::kRttGradient:
      // f/e = q̇/b + 1
      return q_dot_Bps / b + 1.0;
    case LawType::kPower:
      // f/e = (q̇ + µ)(q + bτ) / (b²τ)
      return (q_dot_Bps + mu_Bps) * (q_bytes + b * tau) / (b * b * tau);
  }
  throw std::logic_error("feedback_ratio: bad enum");
}

}  // namespace powertcp::analysis
