#pragma once

#include <array>
#include <vector>

#include "analysis/fluid_model.hpp"

/// \file theorems.hpp
/// Machine-checkable forms of the paper's Appendix A results:
///  * Theorem 1 (stability): the linearization of PowerTCP around its
///    equilibrium has eigenvalues {−1/τ, −γ/δt}, both negative.
///  * Theorem 2 (convergence): after a perturbation the window decays
///    exponentially toward equilibrium with time constant δt/γ.
///  * Theorem 3 (fairness): per-flow equilibrium windows are
///    proportional to their additive-increase weights β_i.
///  * Property 1: Γ(t) = b · w(t − t_f) in the fluid model.

namespace powertcp::analysis {

/// Eigenvalues of the PowerTCP linearization (Theorem 1's matrix
/// [[−1/τ, 1/τ], [0, −γ_r]]).
std::array<double, 2> power_tcp_eigenvalues(const FluidParams& p);

/// Closed-form window trajectory of Eq. 18:
/// w(t) = w_e + (w_init − w_e)·exp(−γ_r·t).
double power_tcp_window_solution(const FluidParams& p, double w_init,
                                 double t);

/// Fits exp decay to a simulated window trajectory and returns the
/// measured time constant (seconds). Theorem 2 predicts δt/γ.
double fit_decay_time_constant(const std::vector<double>& times,
                               const std::vector<double>& windows,
                               double w_equilibrium);

/// Theorem 3: equilibrium window of flow i with weight beta_i when the
/// aggregate additive increase is beta_hat:
/// (w_i)_e = (β̂ + b·τ)/β̂ · β_i.
double fair_share_window(const FluidParams& p, double beta_hat,
                         double beta_i);

/// Property 1 check: power computed from the fluid state vs b·w.
/// Returns the relative error |Γ − b·w| / (b·w).
double power_property_error(const FluidParams& p, const FluidState& s);

}  // namespace powertcp::analysis
