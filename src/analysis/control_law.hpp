#pragma once

#include <string_view>

/// \file control_law.hpp
/// The simplified congestion-avoidance model of §2.2 / Appendix C:
///
///   w(t+δt) = γ·( w(t)·e/f(t) + β ) + (1−γ)·w(t)
///
/// with (e, f) selecting the law. This header provides the (e, f)
/// algebra shared by the phase-plot machinery (Fig. 3), the reaction
/// curves (Fig. 2) and the theorem property tests.

namespace powertcp::analysis {

enum class LawType {
  kQueueLength,  ///< e = b·τ,  f = q + b·τ           (voltage, HPCC-like)
  kDelay,        ///< e = τ,    f = q/b + τ           (voltage, Swift-like)
  kRttGradient,  ///< e = 1,    f = q̇/b + 1           (current, TIMELY-like)
  kPower,        ///< e = b²·τ, f = (q̇+µ)·(q+b·τ)     (PowerTCP)
};

std::string_view law_name(LawType law);

/// Parameters of the single-bottleneck fluid model (Appendix A).
struct FluidParams {
  double bandwidth_Bps = 100e9 / 8.0;  ///< b in bytes/s
  double base_rtt_s = 20e-6;           ///< τ
  double gamma = 0.9;                  ///< EWMA weight γ
  double update_interval_s = 20e-6;    ///< δt (≈ one RTT)
  double beta_bytes = 0.0;             ///< aggregate additive increase β̂

  double bdp_bytes() const { return bandwidth_Bps * base_rtt_s; }
  double gamma_rate() const { return gamma / update_interval_s; }
};

/// The normalized feedback f/e for a law at bottleneck state (q, q̇, µ):
/// this is the *multiplicative decrease* the law applies (Fig. 2's
/// y-axis). µ is the bottleneck transmission rate in bytes/s.
double feedback_ratio(LawType law, const FluidParams& p, double q_bytes,
                      double q_dot_Bps, double mu_Bps);

}  // namespace powertcp::analysis
