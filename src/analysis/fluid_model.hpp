#pragma once

#include <vector>

#include "analysis/control_law.hpp"

/// \file fluid_model.hpp
/// Deterministic fluid model of one bottleneck (Eqs. 3, 4 / Appendix A):
///
///   ẇ = (γ/δt) · ( w·e/f − w + β̂ )
///   q̇ = w/θ − b  if q > 0 (else clamped at 0),  θ = q/b + τ
///
/// integrated with classic RK4. Drives the phase plots of Fig. 3 and the
/// stability/convergence property tests of Theorems 1–2.

namespace powertcp::analysis {

struct FluidState {
  double w_bytes = 0.0;  ///< aggregate window
  double q_bytes = 0.0;  ///< bottleneck queue

  /// Bytes actually occupying pipe + queue; below BDP means the
  /// bottleneck idles (Fig. 3's "throughput loss" region).
  double inflight_bytes(const FluidParams& p) const;
};

class FluidModel {
 public:
  FluidModel(LawType law, const FluidParams& params)
      : law_(law), params_(params) {}

  LawType law() const { return law_; }
  const FluidParams& params() const { return params_; }

  /// Arrival rate λ = w/θ, bottleneck service µ = min(b, λ) when the
  /// queue is empty, else b.
  double arrival_rate(const FluidState& s) const;
  double service_rate(const FluidState& s) const;
  double queue_derivative(const FluidState& s) const;
  double window_derivative(const FluidState& s) const;

  /// One RK4 step of `h` seconds.
  FluidState step(const FluidState& s, double h) const;

  struct TrajectoryPoint {
    double t = 0.0;
    FluidState state;
    double inflight_bytes = 0.0;
  };

  /// Integrates from `init` for `duration` seconds, sampling every
  /// `sample_every` seconds (both in model time).
  std::vector<TrajectoryPoint> trajectory(const FluidState& init,
                                          double duration, double step_s,
                                          double sample_every) const;

  /// Fixed point (ẇ = q̇ = 0) reached from `init`; convergence is
  /// declared when both derivatives are tiny relative to b.
  FluidState settle(const FluidState& init, double max_time = 1.0,
                    double step_s = 1e-7) const;

  /// The analytic equilibrium for laws that have a unique one
  /// (Appendix C): w_e = b·τ + β̂, q_e = β̂. RTT-gradient has none.
  bool has_unique_equilibrium() const {
    return law_ != LawType::kRttGradient;
  }
  FluidState analytic_equilibrium() const;

 private:
  LawType law_;
  FluidParams params_;
};

}  // namespace powertcp::analysis
