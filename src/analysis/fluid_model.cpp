#include "analysis/fluid_model.hpp"

#include <algorithm>
#include <cmath>

namespace powertcp::analysis {

double FluidState::inflight_bytes(const FluidParams& p) const {
  // Bytes in the pipe (τ · achieved rate) plus the queue.
  const double theta = q_bytes / p.bandwidth_Bps + p.base_rtt_s;
  const double lambda = w_bytes / theta;
  const double mu = q_bytes > 0 ? p.bandwidth_Bps
                                : std::min(p.bandwidth_Bps, lambda);
  return mu * p.base_rtt_s + q_bytes;
}

double FluidModel::arrival_rate(const FluidState& s) const {
  const double theta = s.q_bytes / params_.bandwidth_Bps + params_.base_rtt_s;
  return s.w_bytes / theta;
}

double FluidModel::service_rate(const FluidState& s) const {
  if (s.q_bytes > 0) return params_.bandwidth_Bps;
  return std::min(params_.bandwidth_Bps, arrival_rate(s));
}

double FluidModel::queue_derivative(const FluidState& s) const {
  const double dq = arrival_rate(s) - params_.bandwidth_Bps;
  if (s.q_bytes <= 0 && dq < 0) return 0.0;  // queue cannot go negative
  return dq;
}

double FluidModel::window_derivative(const FluidState& s) const {
  const double ratio = feedback_ratio(law_, params_, s.q_bytes,
                                      queue_derivative(s), service_rate(s));
  const double safe = std::max(ratio, 1e-9);
  return params_.gamma_rate() *
         (s.w_bytes / safe - s.w_bytes + params_.beta_bytes);
}

FluidState FluidModel::step(const FluidState& s, double h) const {
  const auto deriv = [this](const FluidState& x) {
    return FluidState{window_derivative(x), queue_derivative(x)};
  };
  const auto advance = [](const FluidState& x, const FluidState& d,
                          double dt) {
    FluidState out;
    out.w_bytes = std::max(0.0, x.w_bytes + d.w_bytes * dt);
    out.q_bytes = std::max(0.0, x.q_bytes + d.q_bytes * dt);
    return out;
  };
  const FluidState k1 = deriv(s);
  const FluidState k2 = deriv(advance(s, k1, h / 2));
  const FluidState k3 = deriv(advance(s, k2, h / 2));
  const FluidState k4 = deriv(advance(s, k3, h));
  FluidState d;
  d.w_bytes = (k1.w_bytes + 2 * k2.w_bytes + 2 * k3.w_bytes + k4.w_bytes) / 6;
  d.q_bytes = (k1.q_bytes + 2 * k2.q_bytes + 2 * k3.q_bytes + k4.q_bytes) / 6;
  return advance(s, d, h);
}

std::vector<FluidModel::TrajectoryPoint> FluidModel::trajectory(
    const FluidState& init, double duration, double step_s,
    double sample_every) const {
  std::vector<TrajectoryPoint> out;
  FluidState s = init;
  double t = 0.0;
  double next_sample = 0.0;
  while (t <= duration + 1e-12) {
    if (t >= next_sample - 1e-12) {
      out.push_back({t, s, s.inflight_bytes(params_)});
      next_sample += sample_every;
    }
    s = step(s, step_s);
    t += step_s;
  }
  return out;
}

FluidState FluidModel::settle(const FluidState& init, double max_time,
                              double step_s) const {
  FluidState s = init;
  const double tol = params_.bandwidth_Bps * 1e-6;
  double t = 0.0;
  while (t < max_time) {
    s = step(s, step_s);
    t += step_s;
    if (std::abs(window_derivative(s)) < tol &&
        std::abs(queue_derivative(s)) < tol && t > 10 * params_.base_rtt_s) {
      break;
    }
  }
  return s;
}

FluidState FluidModel::analytic_equilibrium() const {
  // Appendix C: w_e = b·τ + β̂ and q_e = β̂ for queue-length, delay and
  // power laws.
  return FluidState{params_.bdp_bytes() + params_.beta_bytes,
                    params_.beta_bytes};
}

}  // namespace powertcp::analysis
