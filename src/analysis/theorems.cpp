#include "analysis/theorems.hpp"

#include <cmath>
#include <stdexcept>

namespace powertcp::analysis {

std::array<double, 2> power_tcp_eigenvalues(const FluidParams& p) {
  return {-1.0 / p.base_rtt_s, -p.gamma_rate()};
}

double power_tcp_window_solution(const FluidParams& p, double w_init,
                                 double t) {
  const double w_e = p.bdp_bytes() + p.beta_bytes;
  return w_e + (w_init - w_e) * std::exp(-p.gamma_rate() * t);
}

double fit_decay_time_constant(const std::vector<double>& times,
                               const std::vector<double>& windows,
                               double w_equilibrium) {
  if (times.size() != windows.size() || times.size() < 3) {
    throw std::invalid_argument("fit_decay_time_constant: need >= 3 points");
  }
  // Linear least squares on ln|w - w_e| = ln|w0 - w_e| - t/T.
  double sum_t = 0, sum_y = 0, sum_tt = 0, sum_ty = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double err = std::abs(windows[i] - w_equilibrium);
    if (err < 1e-9) continue;  // converged: log undefined
    const double y = std::log(err);
    sum_t += times[i];
    sum_y += y;
    sum_tt += times[i] * times[i];
    sum_ty += times[i] * y;
    ++n;
  }
  if (n < 3) throw std::invalid_argument("fit: trajectory already converged");
  const double dn = static_cast<double>(n);
  const double slope =
      (dn * sum_ty - sum_t * sum_y) / (dn * sum_tt - sum_t * sum_t);
  if (slope >= 0) return INFINITY;  // not decaying
  return -1.0 / slope;
}

double fair_share_window(const FluidParams& p, double beta_hat,
                         double beta_i) {
  if (beta_hat <= 0) throw std::invalid_argument("beta_hat must be > 0");
  return (beta_hat + p.bdp_bytes()) / beta_hat * beta_i;
}

double power_property_error(const FluidParams& p, const FluidState& s) {
  const double theta = s.q_bytes / p.bandwidth_Bps + p.base_rtt_s;
  const double lambda = s.w_bytes / theta;  // current
  const double nu = s.q_bytes + p.bdp_bytes();  // voltage
  const double gamma_power = lambda * nu;
  const double bw_window = p.bandwidth_Bps * s.w_bytes;
  if (bw_window <= 0) throw std::invalid_argument("empty window");
  return std::abs(gamma_power - bw_window) / bw_window;
}

}  // namespace powertcp::analysis
