#include "sim/simulator.hpp"

namespace powertcp::sim {

EventId Simulator::schedule_at(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time " +
                                format_time(t) + " is before now " +
                                format_time(now_));
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{t, seq, std::move(cb)});
  ++live_events_;
  return EventId{seq};
}

bool Simulator::pop_and_run_next(TimePs limit) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (top.time > limit) return false;
    // Lazy-cancelled events are discarded without executing.
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      --live_events_;
      heap_.pop();
      continue;
    }
    Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).cb)};
    heap_.pop();
    --live_events_;
    now_ = ev.time;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(kTimeInfinity)) {
  }
}

void Simulator::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(t)) {
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace powertcp::sim
