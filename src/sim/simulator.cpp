#include "sim/simulator.hpp"

namespace powertcp::sim {

EventId Simulator::schedule_at(TimePs t, Callback cb) {
  return schedule_burst_at(t, 1, std::move(cb), 0);
}

EventId Simulator::schedule_tied_at(TimePs t, std::uint32_t tie, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_tied_at: time " +
                                format_time(t) + " is before now " +
                                format_time(now_));
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].seq = seq;
  slots_[slot].burst_count = 1;
  slots_[slot].origin = 0;
  slots_[slot].cb = std::move(cb);
  queue_push(EventEntry{t, now_, seq, slot, 0, tie});
  ++live_events_;
  return EventId{seq, slot};
}

EventId Simulator::schedule_from(TimePs sched_time, TimePs t, Callback cb,
                                 std::uint32_t origin, std::uint32_t tie) {
  if (sched_time > t) {
    throw std::invalid_argument("Simulator::schedule_from: sched_time " +
                                format_time(sched_time) + " is after time " +
                                format_time(t));
  }
  if (origin == 0) {
    throw std::invalid_argument(
        "Simulator::schedule_from: origin 0 is reserved for local events");
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].seq = seq;
  slots_[slot].burst_count = 1;
  slots_[slot].origin = origin;
  slots_[slot].cb = std::move(cb);
  queue_push(EventEntry{t, sched_time, seq, slot, 0, tie});
  ++live_events_;
  return EventId{seq, slot};
}

EventId Simulator::schedule_burst_at(TimePs t, std::uint32_t count,
                                     Callback cb, std::uint32_t merge_key) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time " +
                                format_time(t) + " is before now " +
                                format_time(now_));
  }
  if (count == 0) {
    throw std::invalid_argument("Simulator::schedule_burst_at: count 0");
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].seq = seq;
  slots_[slot].burst_count = count;
  slots_[slot].origin = 0;
  slots_[slot].cb = std::move(cb);
  queue_push(EventEntry{t, now_, seq, slot, merge_key});
  ++live_events_;
  return EventId{seq, slot};
}

bool Simulator::pop_and_run_next(TimePs limit) {
  while (const EventEntry* top_ptr = queue_peek()) {
    const EventEntry top = *top_ptr;
    // Tombstone: the slot was freed at cancel time (and possibly reused
    // for a newer event, whose seq then differs).
    if (slots_[top.slot].seq != top.seq) {
      queue_pop();
      continue;
    }
    if (top.time > limit) return false;
    queue_pop();
    // Boundary ambiguity detection: equal-(time, sched, tie) events pop
    // contiguously, so comparing each live pop against the previous one
    // catches every such run that mixes causal origins — the only ties
    // whose sequential order a partitioned run cannot reconstruct.
    // Same-origin ties are exact: local pairs by scheduling order,
    // same-source-shard pairs by the router's send-order merge. Pairs
    // with DIFFERING tie tokens are exactly ordered by the token in
    // both engines, so they are not ambiguous — and since deliveries
    // carry unique per-port tokens, a mixed-origin same-token pair is
    // structurally impossible; the counter stays as the safety net the
    // harness polices.
    const std::uint32_t origin = slots_[top.slot].origin;
    if (have_prev_ && prev_time_ == top.time && prev_sched_ == top.sched &&
        prev_tie_ == top.tie && prev_origin_ != origin) {
      ++ambiguities_;
    }
    have_prev_ = true;
    prev_time_ = top.time;
    prev_sched_ = top.sched;
    prev_tie_ = top.tie;
    prev_origin_ = origin;
    std::uint32_t count = slots_[top.slot].burst_count;
    Callback cb = std::move(slots_[top.slot].cb);
    release_slot(top.slot);
    --live_events_;
    if (top.burst_key != 0 && burst_budget_ > 1) {
      // Pop-merge: coalesce the contiguous run of pending entries that
      // share (time, merge_key), summing their logical counts into one
      // invocation. Later callbacks in the run are interchangeable with
      // the first by the schedule_burst_at contract and are released
      // uninvoked. Tombstones inside the run are discarded in passing;
      // the first live entry with a different time or key ends the run.
      while (count < burst_budget_) {
        const EventEntry* next_ptr = queue_peek();
        if (next_ptr == nullptr || next_ptr->time != top.time) break;
        // Copy before popping: the peeked pointer is invalidated by pop.
        const EventEntry nx = *next_ptr;
        if (slots_[nx.slot].seq != nx.seq) {
          queue_pop();
          continue;
        }
        if (nx.burst_key != top.burst_key) break;
        count += slots_[nx.slot].burst_count;
        queue_pop();
        release_slot(nx.slot);
        --live_events_;
      }
    }
    now_ = top.time;
    executed_ += count;
    burst_count_ = count;
    cb();
    burst_count_ = 1;
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(kTimeInfinity)) {
  }
}

void Simulator::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(t)) {
  }
  if (!stopped_ && now_ < t) now_ = t;
}

void Simulator::run_events_before(TimePs end) {
  if (end < 1) {
    throw std::invalid_argument("Simulator::run_events_before: end < 1");
  }
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(end - 1)) {
  }
}

TimePs Simulator::next_event_time() {
  while (const EventEntry* top = queue_peek()) {
    if (slots_[top->slot].seq != top->seq) {
      queue_pop();  // tombstone of a cancelled event
      continue;
    }
    return top->time;
  }
  return kTimeInfinity;
}

}  // namespace powertcp::sim
