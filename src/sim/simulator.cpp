#include "sim/simulator.hpp"

namespace powertcp::sim {

EventId Simulator::schedule_at(TimePs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time " +
                                format_time(t) + " is before now " +
                                format_time(now_));
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].seq = seq;
  slots_[slot].cb = std::move(cb);
  queue_push(EventEntry{t, seq, slot});
  ++live_events_;
  return EventId{seq, slot};
}

bool Simulator::pop_and_run_next(TimePs limit) {
  while (const EventEntry* top_ptr = queue_peek()) {
    const EventEntry top = *top_ptr;
    // Tombstone: the slot was freed at cancel time (and possibly reused
    // for a newer event, whose seq then differs).
    if (slots_[top.slot].seq != top.seq) {
      queue_pop();
      continue;
    }
    if (top.time > limit) return false;
    queue_pop();
    Callback cb = std::move(slots_[top.slot].cb);
    release_slot(top.slot);
    --live_events_;
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(kTimeInfinity)) {
  }
}

void Simulator::run_until(TimePs t) {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(t)) {
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace powertcp::sim
