#include "sim/flight_recorder.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace powertcp::sim {

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity < 2) {
    throw std::invalid_argument(
        "FlightRecorder: capacity must be at least 2 samples");
  }
  // Even capacity keeps every stored tick a multiple of the stride
  // across compactions: keeping even indices of `0, s, 2s, ...,
  // (cap-1)s` yields exactly the multiples of 2s, and the tick that
  // triggered the compaction (cap*s) is one too.
  capacity_ = capacity + (capacity % 2);
  times_.reserve(capacity_ + 1);  // +1 for the finalize() append
}

FlightRecorder::~FlightRecorder() {
  if (sim_ != nullptr) sim_->cancel(timer_);
}

std::size_t FlightRecorder::add_channel(std::string name, Probe probe) {
  if (!probe) {
    throw std::invalid_argument("FlightRecorder: channel '" + name +
                                "' needs a probe");
  }
  if (offered_ != 0) {
    throw std::logic_error(
        "FlightRecorder: add_channel after the first tick");
  }
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  values_.emplace_back().reserve(capacity_ + 1);
  latest_.push_back(0.0);
  return probes_.size() - 1;
}

void FlightRecorder::tick(TimePs t) {
  assert(!finalized_ && "FlightRecorder: tick after finalize");
  assert((!have_latest_ || t >= latest_t_) &&
         "FlightRecorder: ticks must be offered in time order");
  for (std::size_t c = 0; c < probes_.size(); ++c) latest_[c] = probes_[c]();
  latest_t_ = t;
  have_latest_ = true;
  if (offered_++ % stride_ == 0) {
    if (times_.size() == capacity_) compact();
    times_.push_back(t);
    for (std::size_t c = 0; c < probes_.size(); ++c) {
      values_[c].push_back(latest_[c]);
    }
  }
}

void FlightRecorder::compact() {
  // Keep even stored indices: halves the count, doubles the effective
  // period. In place — no allocation.
  std::size_t out = 0;
  for (std::size_t i = 0; i < times_.size(); i += 2, ++out) {
    times_[out] = times_[i];
    for (auto& column : values_) column[out] = column[i];
  }
  times_.resize(out);
  for (auto& column : values_) column.resize(out);
  stride_ *= 2;
}

void FlightRecorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (sim_ != nullptr) {
    sim_->cancel(timer_);
    timer_ = EventId{};
  }
  if (have_latest_ && (times_.empty() || latest_t_ > times_.back())) {
    times_.push_back(latest_t_);
    for (std::size_t c = 0; c < probes_.size(); ++c) {
      values_[c].push_back(latest_[c]);
    }
  }
}

void FlightRecorder::arm(Simulator& sim, TimePs period, TimePs until) {
  if (period <= 0) {
    throw std::invalid_argument("FlightRecorder: period must be positive");
  }
  if (sim_ != nullptr) {
    throw std::logic_error("FlightRecorder: arm called twice");
  }
  sim_ = &sim;
  period_ = period;
  until_ = until;
  timer_ = sim.schedule_in(0, [this] { on_timer(); });
}

void FlightRecorder::on_timer() {
  tick(sim_->now());
  if (sim_->now() + period_ <= until_) {
    timer_ = sim_->schedule_in(period_, [this] { on_timer(); });
  } else {
    timer_ = EventId{};
  }
}

}  // namespace powertcp::sim
