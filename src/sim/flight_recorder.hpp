#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file flight_recorder.hpp
/// Bounded in-flight time-series capture (the "flight recorder").
///
/// The paper's argument is about fine-grained in-network state over
/// time — queue depth and its derivative, not end-of-run aggregates —
/// so the harness needs per-run time series. stats::QueueSeries grows
/// one sample per event and is fine for short scenario runs; at
/// paper scale (minutes of simulated time, millions of events) an
/// unbounded series would dominate memory and break the event
/// engine's zero-allocation steady state. The FlightRecorder instead
/// samples named probe channels on a periodic self-rescheduling sim
/// event into storage that is fixed at setup:
///
///   * every channel added via add_channel() shares one timestamp
///     column (all probes read at the same tick);
///   * when the buffer fills, it is compacted in place 2:1 (keeping
///     every other stored sample) and the sampling stride doubles, so
///     a run of ANY length fits `capacity` samples while keeping a
///     uniform effective period — the classic bounded-trace
///     decimation scheme;
///   * the first offered sample is always retained, and finalize()
///     appends the most recent offered sample, so a series always
///     spans [first tick, last tick] with monotone timestamps;
///   * after setup (add_channel/arm), tick() performs ZERO heap
///     allocations: probes are invoked (calling a std::function never
///     allocates), values land in reserved vectors, compaction is in
///     place, and the re-scheduled event captures 8 bytes (inline in
///     sim::Callback). A test pins this.
///
/// This mirrors the ns-3 `CheckQueueSize` idiom — a periodic event
/// that samples and re-schedules itself — made allocation-free and
/// bounded.

namespace powertcp::sim {

class FlightRecorder {
 public:
  /// A probe reads one instantaneous value (queue bytes, cwnd, a
  /// cumulative counter...). Invoked on every tick; must not allocate
  /// or mutate simulation state.
  using Probe = std::function<double()>;

  /// `capacity` bounds the stored samples per channel (rounded up to
  /// even so 2:1 compaction keeps stored ticks aligned to the stride).
  /// Throws std::invalid_argument when capacity < 2.
  explicit FlightRecorder(std::size_t capacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Setup phase only (may allocate). Returns the channel index.
  std::size_t add_channel(std::string name, Probe probe);

  /// Offers one sample at time `t` (must be >= the previous tick's
  /// time): reads every probe, stores the row when the current
  /// decimation stride selects it, and always remembers it as the
  /// "latest" row for finalize(). Allocation-free.
  void tick(TimePs t);

  /// Schedules tick(now) every `period` on `sim`, starting at sim.now()
  /// and stopping after `until` (no tick is scheduled past it). The
  /// pending event is cancelled by the destructor, so an armed
  /// recorder must not outlive its simulator (the usual
  /// declared-after, destroyed-before ordering).
  void arm(Simulator& sim, TimePs period, TimePs until);

  /// Appends the latest offered sample when the stride skipped it, so
  /// the stored series ends at the final observation. Idempotent;
  /// tick() must not be called afterwards (checked by assert).
  void finalize();

  std::size_t channel_count() const { return probes_.size(); }
  const std::string& channel_name(std::size_t c) const { return names_[c]; }

  /// Stored samples (<= capacity() + 1 after finalize()).
  std::size_t size() const { return times_.size(); }
  TimePs time(std::size_t i) const { return times_[i]; }
  double value(std::size_t channel, std::size_t i) const {
    return values_[channel][i];
  }

  std::size_t capacity() const { return capacity_; }
  /// Total ticks offered (stored or decimated away).
  std::uint64_t offered() const { return offered_; }
  /// Current decimation stride: every stride-th offered tick is stored.
  std::uint64_t stride() const { return stride_; }

 private:
  void compact();

  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<TimePs> times_;
  std::vector<std::vector<double>> values_;  ///< [channel][stored index]

  TimePs latest_t_ = 0;
  std::vector<double> latest_;  ///< last offered row, stored or not
  bool have_latest_ = false;
  bool finalized_ = false;

  std::uint64_t offered_ = 0;
  std::uint64_t stride_ = 1;

  Simulator* sim_ = nullptr;  ///< set by arm(); used to cancel on destroy
  TimePs period_ = 0;
  TimePs until_ = 0;
  EventId timer_{};  ///< pending tick; cancelled on destruction

  void on_timer();
};

}  // namespace powertcp::sim
