#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event engine.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), so a
/// run is a pure function of its inputs and RNG seed. This determinism is
/// relied on by the regression tests, which compare whole packet traces
/// across runs.
///
/// Storage is split between an EventQueue of small POD entries
/// (time, sched, seq, slot) — a binary heap by default, a calendar queue
/// for
/// dense timer workloads (QueueKind, chosen per run) — and a slot table
/// holding the callbacks. Callbacks are sim::Callback, which embeds the
/// closure in the slot (no per-event heap allocation; oversized captures
/// fail to compile). Cancelling frees the slot immediately — an O(1)
/// generation check against the EventId's seq, with no lookaside set
/// that could grow when stale ids are cancelled — and leaves only the
/// POD queue entry behind as a tombstone that is discarded when it
/// reaches the top.
///
/// Events can be BURST-GRANULAR: one queue entry may stand for `count`
/// logical events (schedule_burst_at), and entries tagged with a merge
/// key coalesce at pop time up to the burst budget. Both mechanisms
/// preserve the logical event sequence — events_executed() advances by
/// the summed count, and a budget of 1 (the default) is byte-identical
/// to the per-event engine. See docs/performance.md.

namespace powertcp::sim {

/// Handle for a scheduled event; usable with Simulator::cancel().
/// A default-constructed EventId refers to no event.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  constexpr bool operator==(const EventId&) const = default;
};

class Simulator {
 public:
  explicit Simulator(QueueKind queue_kind = QueueKind::kBinaryHeap)
      : queue_(make_event_queue(queue_kind)),
        heap_(queue_kind == QueueKind::kBinaryHeap
                  ? static_cast<BinaryHeapEventQueue*>(queue_.get())
                  : nullptr) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. `t` must not be in the past.
  EventId schedule_at(TimePs t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at absolute time `t` carrying tie token `tie`
  /// (0 degenerates to schedule_at): the event sorts among
  /// same-(time, sched) peers by the token BEFORE falling back to
  /// scheduling order. Packet deliveries
  /// use this with their egress port's topology-derived token (see
  /// net::Node::attach_port) so that same-picosecond delivery ties
  /// resolve by a key that is identical in sequential and sharded runs
  /// — the exact-ordering half of the tie-token scheme; schedule_from
  /// carries the same token across a shard boundary.
  EventId schedule_tied_at(TimePs t, std::uint32_t tie, Callback cb);

  /// Schedules `cb` at absolute time `t` with an EXPLICIT causal
  /// timestamp `sched_time` (<= t): the event sorts among
  /// same-picosecond peers as if it had been scheduled at
  /// `sched_time`, not at now(). This is the cross-shard ingestion
  /// primitive — a remote packet delivery handed over at a window
  /// barrier keeps the tie-break position the sequential engine would
  /// have given it at the sender-side send time. `sched_time` may lie
  /// in this simulator's past (the sender's clock runs independently);
  /// only events at times still strictly ahead of this shard's
  /// executed window may be scheduled, which the conservative
  /// lookahead guarantees.
  ///
  /// `origin` must be NONZERO and identify the foreign causal domain
  /// (the sharded engine uses 1 + source shard). It feeds the boundary
  /// ambiguity detector: two back-to-back events with equal
  /// (time, sched_time, tie) but different origins are a tie whose
  /// sequential order is not locally decidable — see
  /// boundary_ambiguities(). `tie` is the producing port's tie token
  /// (see schedule_tied_at); deliveries stamped with a nonzero token
  /// are exactly ordered against every differently-keyed event, so
  /// with tokens flowing the detector is structurally silent.
  EventId schedule_from(TimePs sched_time, TimePs t, Callback cb,
                        std::uint32_t origin, std::uint32_t tie = 0);

  /// Count of executed same-(time, sched, tie) adjacent event pairs
  /// whose origins differ — boundary ties between a cross-shard
  /// delivery and a local event (or deliveries from two different
  /// source shards) at the same picosecond with the same causal
  /// timestamp and the same tie token. The sequential engine orders
  /// such a pair by causal history that a partitioned run cannot
  /// reconstruct with bounded state, so a sharded run is PROVABLY
  /// byte-identical to the sequential engine iff this stays 0 on every
  /// shard; the harness falls back to a sequential rerun otherwise.
  /// Since every cross-shard delivery carries its port's unique
  /// nonzero token (net::Node::attach_port) while local events carry
  /// 0, this is now a safety net that should never fire — kept (and
  /// still policed by the harness) as the proof obligation
  /// (see docs/performance.md).
  std::uint64_t boundary_ambiguities() const { return ambiguities_; }

  /// Schedules ONE queue entry that stands for `count` (>= 1) logical
  /// events: when it fires, events_executed() advances by `count` and
  /// burst_count() reports it inside the callback. This is how a
  /// producer that already knows k back-to-back same-time outcomes
  /// (an egress port draining k queued packets in one transmission
  /// train) pays one schedule/pop cycle instead of k.
  ///
  /// A nonzero `merge_key` additionally marks the entry POP-MERGEABLE:
  /// while the burst budget (set_burst_budget) exceeds 1, contiguous
  /// pending entries with the same (time, merge_key) are coalesced at
  /// pop time — their counts sum, and only the FIRST entry's callback
  /// runs; the later callbacks are released uninvoked. Callers must
  /// therefore use one key only for events whose callbacks are
  /// interchangeable (same receiver, count-driven body). Key 0 never
  /// merges. Keys are a cooperative namespace; pick per-object keys
  /// (e.g. from a counter) to avoid accidental aliasing.
  EventId schedule_burst_at(TimePs t, std::uint32_t count, Callback cb,
                            std::uint32_t merge_key = 0);

  /// Upper bound on logical events delivered per callback invocation by
  /// pop-time merging (see schedule_burst_at). 1 — the default — turns
  /// merging off entirely and is byte-identical to the historical
  /// per-event engine; the randomized burst-equivalence tests pin that
  /// any budget produces the same logical event sequence.
  void set_burst_budget(std::uint32_t budget) {
    if (budget == 0) {
      throw std::invalid_argument("Simulator::set_burst_budget: budget 0");
    }
    burst_budget_ = budget;
  }
  std::uint32_t burst_budget() const { return burst_budget_; }

  /// Number of logical events the currently-running callback stands
  /// for (>= 1). Valid during callback invocation; 1 outside.
  std::uint32_t burst_count() const { return burst_count_; }

  /// Cancels a pending event and releases its callback immediately.
  /// Cancelling an already-fired, already-cancelled, or default
  /// EventId is a harmless no-op and allocates nothing.
  void cancel(EventId id) {
    if (id.seq == 0 || id.slot >= slots_.size()) return;
    Slot& s = slots_[id.slot];
    if (s.seq != id.seq) return;  // fired or superseded: stale handle
    release_slot(id.slot);
    --live_events_;
  }

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with time <= `t`; afterwards now() == t unless stopped
  /// earlier. Events scheduled beyond `t` remain pending.
  void run_until(TimePs t);

  /// Runs every event with time strictly below `end` (>= 1); now() is
  /// left at the last executed event, never advanced to `end`. This is
  /// the window primitive of ShardedSimulator: a shard executes one
  /// conservative lookahead window [start, end) and stops without
  /// claiming the boundary instant, which the next window owns.
  void run_events_before(TimePs end);

  /// Earliest pending live event time, or kTimeInfinity when idle.
  /// Tombstones of cancelled events blocking the top are discarded in
  /// passing (the same lazy deletion the run loop performs).
  TimePs next_event_time();

  /// Stops the run loop after the current event returns.
  void stop() { stopped_ = true; }

  /// True while at least one *live* (not cancelled) event is scheduled.
  bool pending() const { return live_events_ > 0; }
  std::uint64_t events_executed() const { return executed_; }

  /// Queue entries for cancelled events awaiting lazy removal. Bounded by
  /// the number of currently scheduled events ever in flight; regression
  /// tests assert it never grows from cancelling stale ids.
  std::size_t tombstones() const {
    return queue_->size() - static_cast<std::size_t>(live_events_);
  }

  /// Slot-table introspection for leak regression tests: the table's
  /// high-water size and how many of those slots are currently free.
  std::size_t slot_count() const { return slots_.size(); }
  std::size_t free_slot_count() const { return free_slots_.size(); }

 private:
  struct Slot {
    std::uint64_t seq = 0;  ///< 0 = free; else seq of the event it holds
    /// Logical events this slot's callback stands for (>= 1). Rides in
    /// what used to be padding before the 16-byte-aligned Callback, so
    /// the slot stays one cache line.
    std::uint32_t burst_count = 1;
    /// Causal domain of the scheduling action: 0 for local events,
    /// 1 + source shard for cross-shard deliveries (schedule_from).
    /// Rides in the remaining padding word — the slot is still one
    /// cache line. Feeds the boundary ambiguity detector.
    std::uint32_t origin = 0;
    Callback cb;
  };

  void release_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.seq = 0;
    s.cb.reset();
    free_slots_.push_back(idx);
  }

  bool pop_and_run_next(TimePs limit);

  // Devirtualized fast path for the default backend: the branch on
  // `heap_` predicts perfectly and lets the final class's inline
  // methods inline, where the virtual call cannot.
  void queue_push(const EventEntry& e) {
    if (heap_ != nullptr) {
      heap_->push(e);
    } else {
      queue_->push(e);
    }
  }
  const EventEntry* queue_peek() {
    return heap_ != nullptr ? heap_->peek() : queue_->peek();
  }
  void queue_pop() {
    if (heap_ != nullptr) {
      heap_->pop();
    } else {
      queue_->pop();
    }
  }

  std::unique_ptr<EventQueue> queue_;
  BinaryHeapEventQueue* const heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t live_events_ = 0;
  std::uint32_t burst_budget_ = 1;
  std::uint32_t burst_count_ = 1;
  bool stopped_ = false;

  // Boundary ambiguity detector (see boundary_ambiguities()): key and
  // origin of the previously executed event, carried across tombstone
  // discards. Equal-(time, sched, tie) events pop contiguously, so
  // checking each adjacent pair catches every run that mixes origins.
  bool have_prev_ = false;
  TimePs prev_time_ = 0;
  TimePs prev_sched_ = 0;
  std::uint32_t prev_tie_ = 0;
  std::uint32_t prev_origin_ = 0;
  std::uint64_t ambiguities_ = 0;
};

}  // namespace powertcp::sim
