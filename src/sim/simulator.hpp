#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event engine.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO tie-break on a monotonically increasing sequence number), so a
/// run is a pure function of its inputs and RNG seed. This determinism is
/// relied on by the regression tests, which compare whole packet traces
/// across runs.

namespace powertcp::sim {

/// Handle for a scheduled event; usable with Simulator::cancel().
struct EventId {
  std::uint64_t seq = 0;
  constexpr bool operator==(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedules `cb` at absolute time `t`. `t` must not be in the past.
  EventId schedule_at(TimePs t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventId schedule_in(TimePs delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown
  /// event is a harmless no-op (lazy deletion).
  void cancel(EventId id) { cancelled_.insert(id.seq); }

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with time <= `t`; afterwards now() == t unless stopped
  /// earlier. Events scheduled beyond `t` remain pending.
  void run_until(TimePs t);

  /// Stops the run loop after the current event returns.
  void stop() { stopped_ = true; }

  bool pending() const { return live_events_ > 0; }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimePs time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_next(TimePs limit);

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t live_events_ = 0;
  bool stopped_ = false;
};

}  // namespace powertcp::sim
