#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

/// \file event_queue.hpp
/// Pending-event storage behind the Simulator: POD (time, sched, tie,
/// seq, slot) entries ordered by (time, sched, tie, seq). Two
/// interchangeable
/// backends share one interface so a run can pick its structure without
/// changing event semantics:
///
///  - BinaryHeapEventQueue: std::priority_queue, the default. O(log n)
///    everywhere, unbeatable for small/medium event counts.
///  - CalendarEventQueue: a classic calendar queue (Brown 1988) for
///    dense timer workloads — amortized O(1) push/pop when event times
///    are spread evenly, as in paper-scale runs where hundreds of
///    thousands of pacing/RTO timers and packet events tick in a narrow
///    moving window.
///
/// Both backends pop in exactly (time, sched, tie, seq) order, so a run's
/// event trace — and therefore every golden output — is
/// backend-independent; tests pin heap/calendar equivalence on
/// randomized schedules.
///
/// The `sched` key is the CAUSAL timestamp: the simulation time at
/// which the event was scheduled. In a purely sequential run it is
/// redundant — scheduling actions execute in nondecreasing time order,
/// so `seq` (assigned chronologically) already refines `sched` and
/// (time, sched, seq) orders identically to the historical (time, seq).
/// Its purpose is cross-shard determinism: the partitioned engine
/// (sim::ShardedSimulator) ingests remote packet deliveries at window
/// barriers, long after destination-local events grabbed their seq
/// numbers, and stamps them with the sender-side send time via
/// Simulator::schedule_from so same-picosecond ties still resolve in
/// the sequential engine's scheduling-chronology order.

namespace powertcp::sim {

/// One pending event. `slot` indexes the Simulator's slot table, which
/// holds the callback; `sched` is the causal timestamp (see above) and
/// `seq` disambiguates remaining ties and stale slots. `burst_key`
/// rides in what used to be struct padding: a nonzero key marks the
/// event as burst-mergeable — when the Simulator's burst budget allows,
/// contiguous same-(time, key) entries are delivered as ONE callback
/// invocation carrying their summed count (see
/// Simulator::schedule_burst_at). Key 0 (the default) never merges, so
/// the per-event path is untouched.
///
/// `tie` is the TIE TOKEN, ordered between `sched` and `seq`: a
/// topology-derived identifier of the producing egress port (see
/// net::Node::attach_port), 0 for ordinary local events. Packet
/// deliveries carry their port's token in BOTH engines, so a
/// same-(time, sched) tie between deliveries from different ports — or
/// between a delivery and a local event — resolves by a key every
/// engine can compute locally, instead of by the global scheduling
/// chronology (`seq`) that a partitioned run cannot reconstruct. This
/// is what lets the sharded engine order cross-shard boundary ties
/// EXACTLY like the sequential engine (see docs/performance.md §6).
struct EventEntry {
  TimePs time;
  TimePs sched;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t burst_key = 0;
  std::uint32_t tie = 0;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(const EventEntry& e) = 0;
  /// Minimum entry by (time, sched, seq), or nullptr when empty. The pointer
  /// is valid until the next push/pop.
  virtual const EventEntry* peek() = 0;
  /// Removes the entry peek() reported. Precondition: not empty.
  virtual void pop() = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

/// Which EventQueue backend a Simulator run uses.
enum class QueueKind : std::uint8_t { kBinaryHeap, kCalendar };

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

class BinaryHeapEventQueue final : public EventQueue {
 public:
  void push(const EventEntry& e) override { heap_.push(e); }
  const EventEntry* peek() override {
    return heap_.empty() ? nullptr : &heap_.top();
  }
  void pop() override { heap_.pop(); }
  std::size_t size() const override { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const EventEntry& a, const EventEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.sched != b.sched) return a.sched > b.sched;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<EventEntry, std::vector<EventEntry>, Later> heap_;
};

class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue();

  void push(const EventEntry& e) override;
  const EventEntry* peek() override;
  void pop() override;
  std::size_t size() const override { return size_; }

  /// Introspection for tests/benches.
  std::size_t bucket_count() const { return buckets_.size(); }
  TimePs bucket_width() const { return width_; }

 private:
  std::size_t bucket_of(TimePs t) const {
    return static_cast<std::size_t>(t / width_) & (buckets_.size() - 1);
  }
  bool find_min();
  void rebuild(std::size_t n_buckets);
  void maybe_resize();

  std::vector<std::vector<EventEntry>> buckets_;
  TimePs width_ = 1;
  std::size_t size_ = 0;
  /// Lower bound on every stored entry's time (the find-min year walk
  /// starts here). Raised to the popped time on pop — the popped entry
  /// is the minimum, so the rest sit at or above it — and lowered on
  /// any push beneath it (possible after a far-future tombstone pop
  /// raised it past the simulator clock).
  TimePs floor_ = 0;
  /// Cached location of the current minimum (valid_ => min_bucket_/
  /// min_index_ point at it).
  bool valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
  /// Size at the last rebuild; triggers geometric grow/shrink.
  std::size_t rebuilt_at_ = 0;
};

}  // namespace powertcp::sim
