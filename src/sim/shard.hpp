#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file shard.hpp
/// Conservative-lookahead parallel discrete-event engine: N Simulator
/// partitions, each with its own event queue and local clock, advanced
/// in lock-step time windows.
///
/// The protocol is classic conservative PDES. Let L (the LOOKAHEAD) be
/// the minimum propagation delay of any link that crosses a partition
/// boundary. Each round, every shard publishes its earliest pending
/// event time; the barrier reduction takes the global minimum T and
/// opens the window [T, min(T + L, horizon + 1)). Events inside the
/// window are causally safe to run in parallel: any cross-shard
/// influence produced at time t >= T arrives at t + prop >= T + L,
/// i.e. at or beyond the window end. Cross-shard deliveries are
/// buffered by the shards' ingest hooks (net::ShardRouter) and drained
/// at the next barrier, before the next minimum is taken — so a
/// delivery always lands in a shard's queue before the window that
/// could execute it opens.
///
/// Determinism: within a shard, events run in the engine's usual
/// (time, sched, seq) order; the barrier makes every cross-shard message
/// visible at a deterministic protocol point regardless of thread
/// interleaving, and the ingest hooks schedule them in a stable
/// deterministic order (see shard_link.hpp). The result is a pure
/// function of the inputs and the shard count — reruns at the same
/// shard count are byte-identical.
///
/// A ShardedSimulator with ONE shard never spawns threads, never opens
/// windows, and drives its single Simulator with the exact same calls
/// a standalone engine would see — byte-identical to the sequential
/// engine by construction. See docs/performance.md ("Parallel DES").

namespace powertcp::sim {

class ShardedSimulator {
 public:
  explicit ShardedSimulator(int shards = 1,
                            QueueKind queue_kind = QueueKind::kBinaryHeap);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Simulator& shard(int i) { return *shards_.at(static_cast<std::size_t>(i)); }
  const Simulator& shard(int i) const {
    return *shards_.at(static_cast<std::size_t>(i));
  }

  /// The conservative lookahead L: the minimum propagation delay of any
  /// cross-shard link. Must be >= 1 ps before a multi-shard run_until();
  /// irrelevant (and unchecked) with one shard. When cut edges are
  /// registered (add_cut_edge) the engine instead derives PER-PAIR
  /// bounds from the cut graph and this scalar only remains the
  /// plan-sanity floor.
  void set_lookahead(TimePs lookahead) { lookahead_ = lookahead; }
  TimePs lookahead() const { return lookahead_; }

  /// Registers a directed cross-shard influence edge src -> dst with
  /// minimum latency `weight` (>= 1 ps): no event executing on shard
  /// `src` at time t can cause an event on shard `dst` before t +
  /// weight. The Network registers one edge per cut-link direction with
  /// weight = propagation + tx_time(minimum wire size) — sound because
  /// ports PUBLISH cross-shard packets at serialization start (early
  /// publication, see EgressPort::start_tx). Multiple registrations of
  /// a pair keep the minimum.
  ///
  /// With at least one edge registered, the barrier reduction replaces
  /// the uniform window [T, T + L) with per-shard ends derived from
  /// all-pairs shortest paths D over the cut graph:
  ///
  ///   end_j = min_i ( next_i + D*[i][j] ),   clamped to horizon + 1
  ///
  /// where D*[i][j] = D[i][j] for i != j and D*[j][j] = C_j, the
  /// minimum cycle through j (an event in j can only re-influence j by
  /// leaving and coming back). Idle shards (next = infinity) impose no
  /// constraint, and multi-hop pairs constrain each other only at their
  /// path distance — which is how a relay-partitioned topology opens
  /// windows several times wider than its shortest cut link (fewer
  /// barrier reductions; the `windows` bench metric). Byte-identity is
  /// untouched: window size affects only scheduling batching, never
  /// event order.
  void add_cut_edge(int src, int dst, TimePs weight);

  /// The engine's conservative influence bound src -> dst through the
  /// registered cut graph: shortest path for src != dst, minimum cycle
  /// C_src for src == dst; kTimeInfinity when unconstrained (no path,
  /// or no cut graph registered). Introspection for tests and plans.
  TimePs influence_bound(int src, int dst);

  /// True once add_cut_edge has been called.
  bool has_cut_graph() const { return have_cut_edges_; }

  /// Installs shard `i`'s ingest hook. It runs on shard i's worker
  /// thread at every window barrier, while ALL shards are quiescent,
  /// and must move any buffered cross-shard deliveries into shard(i)
  /// via schedule_at. The barrier orders every producer's sends of the
  /// previous window before the hook (and the hook before the next
  /// window), so the hook itself needs no synchronization.
  void set_ingest_hook(int i, std::function<void()> hook);

  /// Runs every shard up to `horizon` (inclusive), in parallel when
  /// shard_count() > 1: worker threads are spawned per call, the caller
  /// drives shard 0, and all clocks read `horizon` afterwards. The
  /// first exception thrown by any shard's events aborts the run at the
  /// next barrier and is rethrown here.
  void run_until(TimePs horizon);

  /// Sum of logical events executed across all shards.
  std::uint64_t events_executed() const;

  /// Sum of boundary ambiguities detected across all shards (see
  /// Simulator::boundary_ambiguities()). Zero certifies the sharded
  /// run byte-identical to the sequential engine; the harness reruns a
  /// simulation point sequentially when it comes back nonzero.
  std::uint64_t boundary_ambiguities() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->boundary_ambiguities();
    return total;
  }

  /// Lookahead windows synchronized so far (0 for single-shard runs) —
  /// introspection for tests and the shard bench.
  std::uint64_t windows() const { return windows_; }

 private:
  /// Reusable mutex/condvar cyclic barrier; the last arriver runs the
  /// round's reduction before releasing the others.
  class Barrier {
   public:
    explicit Barrier(int parties) : parties_(parties) {}
    template <typename Fn>
    void arrive_and_wait(Fn&& reduction) {
      std::unique_lock<std::mutex> lock(mu_);
      const std::uint64_t gen = generation_;
      if (++arrived_ == parties_) {
        reduction();
        arrived_ = 0;
        ++generation_;
        lock.unlock();
        cv_.notify_all();
        return;
      }
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    void arrive_and_wait() {
      arrive_and_wait([] {});
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    const int parties_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
  };

  void worker(int idx, TimePs horizon);
  void record_error();
  /// Folds the registered cut edges into `bound_` (all-pairs shortest
  /// paths plus per-shard minimum cycles). Idempotent; called before
  /// threads spawn.
  void finalize_bounds();

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::function<void()>> ingest_;
  TimePs lookahead_ = 0;
  std::uint64_t windows_ = 0;

  // Cut graph (add_cut_edge): row-major shard-pair matrices. `cut_w_`
  // holds registered edge minima, `bound_` the finalized D* bounds.
  bool have_cut_edges_ = false;
  bool bounds_dirty_ = false;
  std::vector<TimePs> cut_w_;
  std::vector<TimePs> bound_;

  // Per-run_until state, touched by the workers under the barrier
  // protocol (next_times_[i] only by worker i outside the reduction).
  std::unique_ptr<Barrier> barrier_;
  std::vector<TimePs> next_times_;
  std::vector<TimePs> ends_;
  bool done_ = false;
  bool abort_ = false;
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace powertcp::sim
