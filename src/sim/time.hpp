#pragma once

#include <cmath>
#include <cstdint>
#include <string>

/// \file time.hpp
/// Simulation time and bandwidth types.
///
/// Time is an integer count of picoseconds. One bit at 100 Gbps lasts
/// exactly 10 ps, so serialization delays of whole packets are exact and
/// event ordering never depends on floating-point rounding. An int64
/// picosecond clock covers ~106 days, far beyond any simulation horizon
/// used here.

namespace powertcp::sim {

/// Simulation time in picoseconds since the start of the run.
using TimePs = std::int64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerSec = 1'000'000'000'000;

/// Sentinel "never" timestamp (also used for "no deadline").
inline constexpr TimePs kTimeInfinity = INT64_MAX;

constexpr TimePs picoseconds(std::int64_t v) { return v; }
constexpr TimePs nanoseconds(std::int64_t v) { return v * kPsPerNs; }
constexpr TimePs microseconds(std::int64_t v) { return v * kPsPerUs; }
constexpr TimePs milliseconds(std::int64_t v) { return v * kPsPerMs; }
constexpr TimePs seconds(std::int64_t v) { return v * kPsPerSec; }

/// Converts a (possibly fractional) duration in seconds to picoseconds.
inline TimePs from_seconds(double s) {
  return static_cast<TimePs>(std::llround(s * static_cast<double>(kPsPerSec)));
}

constexpr double to_seconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerSec);
}
constexpr double to_microseconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}
constexpr double to_milliseconds(TimePs t) {
  return static_cast<double>(t) / static_cast<double>(kPsPerMs);
}

/// Human-readable rendering with an auto-selected unit, e.g. "12.500us".
std::string format_time(TimePs t);

/// Link or NIC bandwidth. Stored in bits per second; converts between
/// byte counts and wire time.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bits_per_sec)
      : bits_per_sec_(bits_per_sec) {}

  static constexpr Bandwidth gbps(double v) { return Bandwidth(v * 1e9); }
  static constexpr Bandwidth mbps(double v) { return Bandwidth(v * 1e6); }

  constexpr double bps() const { return bits_per_sec_; }
  constexpr double gbps_value() const { return bits_per_sec_ / 1e9; }
  constexpr double bytes_per_sec() const { return bits_per_sec_ / 8.0; }

  /// Wire time of `bytes` at this rate, rounded to the nearest picosecond.
  TimePs tx_time(std::int64_t bytes) const {
    return static_cast<TimePs>(std::llround(
        static_cast<double>(bytes) * 8.0 * static_cast<double>(kPsPerSec) /
        bits_per_sec_));
  }

  /// Bytes transferred in `t` at this rate (floor).
  std::int64_t bytes_in(TimePs t) const {
    return static_cast<std::int64_t>(to_seconds(t) * bytes_per_sec());
  }

  /// Bandwidth-delay product in bytes for base RTT `rtt`.
  std::int64_t bdp_bytes(TimePs rtt) const {
    return static_cast<std::int64_t>(
        std::llround(to_seconds(rtt) * bytes_per_sec()));
  }

  constexpr bool operator==(const Bandwidth&) const = default;

 private:
  double bits_per_sec_ = 0.0;
};

}  // namespace powertcp::sim
