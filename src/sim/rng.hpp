#pragma once

#include <cstdint>
#include <random>

/// \file rng.hpp
/// Deterministic random source. All stochastic behaviour in the library
/// (workload sampling, ECMP perturbation, jitter) draws from an Rng that
/// is seeded explicitly, making every experiment reproducible bit-for-bit.

namespace powertcp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace powertcp::sim
