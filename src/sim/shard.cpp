#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace powertcp::sim {

ShardedSimulator::ShardedSimulator(int shards, QueueKind queue_kind) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSimulator: shard count must be >= 1");
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>(queue_kind));
  }
  ingest_.resize(static_cast<std::size_t>(shards));
}

void ShardedSimulator::set_ingest_hook(int i, std::function<void()> hook) {
  ingest_.at(static_cast<std::size_t>(i)) = std::move(hook);
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

void ShardedSimulator::record_error() {
  const std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_) error_ = std::current_exception();
  abort_ = true;
}

void ShardedSimulator::worker(int idx, TimePs horizon) {
  Simulator& sim = *shards_[static_cast<std::size_t>(idx)];
  const std::size_t i = static_cast<std::size_t>(idx);
  while (true) {
    // Phase 1 (quiescent): pull in cross-shard deliveries buffered
    // during the previous window, then publish the earliest pending
    // time. abort_/done_/window_end_ are written strictly before one
    // barrier and read strictly after it, so plain fields suffice.
    if (!abort_) {
      try {
        if (ingest_[i]) ingest_[i]();
        next_times_[i] = sim.next_event_time();
      } catch (...) {
        record_error();
      }
    }
    if (abort_) next_times_[i] = kTimeInfinity;
    barrier_->arrive_and_wait([&] {
      TimePs min_next = kTimeInfinity;
      for (const TimePs t : next_times_) min_next = std::min(min_next, t);
      if (abort_ || min_next > horizon) {
        done_ = true;
        return;
      }
      // Exclusive window end: everything in [min_next, min_next + L)
      // is safe (cross-shard influence arrives >= min_next + L), and
      // the horizon itself must still be executed.
      window_end_ = std::min(min_next + lookahead_, horizon + 1);
      ++windows_;
    });
    if (done_) break;
    // Phase 2 (parallel): run the window. Cross-shard sends land in
    // the rings; the next round's phase 1 drains them.
    try {
      sim.run_events_before(window_end_);
    } catch (...) {
      record_error();
    }
    // All sends of this window complete before any shard ingests them.
    barrier_->arrive_and_wait();
  }
  // No events <= horizon remain anywhere; advance the local clock.
  if (!abort_) sim.run_until(horizon);
}

void ShardedSimulator::run_until(TimePs horizon) {
  if (shards_.size() == 1) {
    // The sequential engine, driven verbatim — no threads, no windows.
    shards_[0]->run_until(horizon);
    return;
  }
  if (lookahead_ < 1) {
    throw std::logic_error(
        "ShardedSimulator::run_until: multi-shard runs need a positive "
        "lookahead (set_lookahead with the min cross-shard link delay)");
  }
  done_ = false;
  abort_ = false;
  error_ = nullptr;
  next_times_.assign(shards_.size(), kTimeInfinity);
  barrier_ = std::make_unique<Barrier>(static_cast<int>(shards_.size()));
  std::vector<std::thread> pool;
  pool.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    pool.emplace_back([this, i, horizon] {
      worker(static_cast<int>(i), horizon);
    });
  }
  worker(0, horizon);
  for (auto& t : pool) t.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace powertcp::sim
