#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace powertcp::sim {

ShardedSimulator::ShardedSimulator(int shards, QueueKind queue_kind) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSimulator: shard count must be >= 1");
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>(queue_kind));
  }
  ingest_.resize(static_cast<std::size_t>(shards));
}

void ShardedSimulator::set_ingest_hook(int i, std::function<void()> hook) {
  ingest_.at(static_cast<std::size_t>(i)) = std::move(hook);
}

namespace {

/// a + b with kTimeInfinity absorbing (saturating, never overflowing).
TimePs sat_add(TimePs a, TimePs b) {
  if (a == kTimeInfinity || b == kTimeInfinity) return kTimeInfinity;
  return a > kTimeInfinity - b ? kTimeInfinity : a + b;
}

}  // namespace

void ShardedSimulator::add_cut_edge(int src, int dst, TimePs weight) {
  const int n = shard_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    throw std::invalid_argument("ShardedSimulator::add_cut_edge: bad pair");
  }
  if (weight < 1) {
    throw std::invalid_argument(
        "ShardedSimulator::add_cut_edge: weight must be >= 1 ps");
  }
  if (cut_w_.empty()) {
    cut_w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  kTimeInfinity);
  }
  TimePs& w = cut_w_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(dst)];
  w = std::min(w, weight);
  have_cut_edges_ = true;
  bounds_dirty_ = true;
}

void ShardedSimulator::finalize_bounds() {
  if (!bounds_dirty_) return;
  const std::size_t n = shards_.size();
  // All-pairs shortest paths over the cut graph (Floyd–Warshall; shard
  // counts are tiny, so O(n^3) is free).
  std::vector<TimePs> d = cut_w_;
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const TimePs dik = d[i * n + k];
      if (dik == kTimeInfinity) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const TimePs via = sat_add(dik, d[k * n + j]);
        if (via < d[i * n + j]) d[i * n + j] = via;
      }
    }
  }
  bound_ = d;
  // Self-influence: an event in shard j re-influences j only by leaving
  // through some shard k and coming back, so the bound is the minimum
  // cycle through j — NOT 0. (Without this term a shard whose only
  // peers are idle would run to the horizon and later receive past-time
  // deliveries from its own feedback loop.)
  for (std::size_t j = 0; j < n; ++j) {
    TimePs cycle = kTimeInfinity;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j) continue;
      cycle = std::min(cycle, sat_add(d[j * n + k], d[k * n + j]));
    }
    bound_[j * n + j] = cycle;
  }
  bounds_dirty_ = false;
}

TimePs ShardedSimulator::influence_bound(int src, int dst) {
  const int n = shard_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    throw std::invalid_argument("ShardedSimulator::influence_bound: bad pair");
  }
  if (!have_cut_edges_) return kTimeInfinity;
  finalize_bounds();
  return bound_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)];
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

void ShardedSimulator::record_error() {
  const std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_) error_ = std::current_exception();
  abort_ = true;
}

void ShardedSimulator::worker(int idx, TimePs horizon) {
  Simulator& sim = *shards_[static_cast<std::size_t>(idx)];
  const std::size_t i = static_cast<std::size_t>(idx);
  while (true) {
    // Phase 1 (quiescent): pull in cross-shard deliveries buffered
    // during the previous window, then publish the earliest pending
    // time. abort_/done_/window_end_ are written strictly before one
    // barrier and read strictly after it, so plain fields suffice.
    if (!abort_) {
      try {
        if (ingest_[i]) ingest_[i]();
        next_times_[i] = sim.next_event_time();
      } catch (...) {
        record_error();
      }
    }
    if (abort_) next_times_[i] = kTimeInfinity;
    barrier_->arrive_and_wait([&] {
      TimePs min_next = kTimeInfinity;
      for (const TimePs t : next_times_) min_next = std::min(min_next, t);
      if (abort_ || min_next > horizon) {
        done_ = true;
        return;
      }
      const std::size_t n = shards_.size();
      if (!have_cut_edges_) {
        // Uniform exclusive window end: everything in
        // [min_next, min_next + L) is safe (cross-shard influence
        // arrives >= min_next + L), and the horizon itself must still
        // be executed.
        const TimePs end = std::min(min_next + lookahead_, horizon + 1);
        for (std::size_t j = 0; j < n; ++j) ends_[j] = end;
      } else {
        // Per-shard window ends from the cut graph: shard j may run
        // everything below min_i(next_i + D*[i][j]) — no influence
        // from any shard (including j's own feedback cycle) can land
        // earlier. Idle shards constrain nothing; shards without a
        // finite bound run free to the horizon.
        for (std::size_t j = 0; j < n; ++j) {
          TimePs end = kTimeInfinity;
          for (std::size_t k = 0; k < n; ++k) {
            end = std::min(end, sat_add(next_times_[k], bound_[k * n + j]));
          }
          ends_[j] = std::min(end, horizon + 1);
        }
      }
      ++windows_;
    });
    if (done_) break;
    // Phase 2 (parallel): run the window. Cross-shard sends land in
    // the rings; the next round's phase 1 drains them.
    try {
      sim.run_events_before(ends_[i]);
    } catch (...) {
      record_error();
    }
    // All sends of this window complete before any shard ingests them.
    barrier_->arrive_and_wait();
  }
  // No events <= horizon remain anywhere; advance the local clock.
  if (!abort_) sim.run_until(horizon);
}

void ShardedSimulator::run_until(TimePs horizon) {
  if (shards_.size() == 1) {
    // The sequential engine, driven verbatim — no threads, no windows.
    shards_[0]->run_until(horizon);
    return;
  }
  if (lookahead_ < 1) {
    throw std::logic_error(
        "ShardedSimulator::run_until: multi-shard runs need a positive "
        "lookahead (set_lookahead with the min cross-shard link delay)");
  }
  done_ = false;
  abort_ = false;
  error_ = nullptr;
  finalize_bounds();
  next_times_.assign(shards_.size(), kTimeInfinity);
  ends_.assign(shards_.size(), 0);
  barrier_ = std::make_unique<Barrier>(static_cast<int>(shards_.size()));
  std::vector<std::thread> pool;
  pool.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    pool.emplace_back([this, i, horizon] {
      worker(static_cast<int>(i), horizon);
    });
  }
  worker(0, horizon);
  for (auto& t : pool) t.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace powertcp::sim
