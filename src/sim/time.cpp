#include "sim/time.hpp"

#include <array>
#include <cstdio>

namespace powertcp::sim {

std::string format_time(TimePs t) {
  std::array<char, 48> buf{};
  if (t == kTimeInfinity) return "inf";
  if (t < kPsPerNs) {
    std::snprintf(buf.data(), buf.size(), "%ldps", static_cast<long>(t));
  } else if (t < kPsPerUs) {
    std::snprintf(buf.data(), buf.size(), "%.3fns",
                  static_cast<double>(t) / kPsPerNs);
  } else if (t < kPsPerMs) {
    std::snprintf(buf.data(), buf.size(), "%.3fus", to_microseconds(t));
  } else if (t < kPsPerSec) {
    std::snprintf(buf.data(), buf.size(), "%.3fms", to_milliseconds(t));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.6fs", to_seconds(t));
  }
  return std::string(buf.data());
}

}  // namespace powertcp::sim
