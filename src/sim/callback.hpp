#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file callback.hpp
/// Small-buffer-only callable for the event engine's hot path.
///
/// `std::function<void()>` heap-allocates any capture larger than its
/// (implementation-defined, ~16 byte) inline buffer, which put two
/// allocations on every packet's path through an egress port. Callback
/// instead embeds the closure in the event slot itself and refuses —
/// at compile time — captures that do not fit, so a capture that would
/// silently reintroduce a per-event allocation becomes a build error.
/// Large payloads (the in-flight Packet) travel through a generation-
/// checked pool and the closure captures only the pool handle.

namespace powertcp::sim {

class Callback {
 public:
  /// Inline closure capacity. Sized for the engine's real customers —
  /// a captured `std::function` copy (32 bytes on libstdc++) or a
  /// handful of references/ids, never a whole Packet — and so that a
  /// Simulator event slot (8-byte seq + Callback) fills exactly one
  /// 64-byte cache line.
  static constexpr std::size_t kCapacity = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "capture too large for the event slot: move bulky state "
                  "(e.g. a Packet) into a pool and capture the handle");
    static_assert(alignof(Fn) <= kAlign,
                  "over-aligned capture in event callback");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callbacks must be nothrow-movable (slots relocate "
                  "when the slot table grows)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = ops_for<Fn>();
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the closure at `to` from `from`, destroying the
    /// source (a destructive move, used when the slot table reallocates).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static const Ops* ops_for() {
    static constexpr Ops kOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* from, void* to) noexcept {
          Fn* src = static_cast<Fn*>(from);
          ::new (to) Fn(std::move(*src));
          src->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };
    return &kOps;
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace powertcp::sim
