#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace powertcp::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

/// True when a precedes b in pop order.
bool earlier(const EventEntry& a, const EventEntry& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.sched != b.sched) return a.sched < b.sched;
  if (a.tie != b.tie) return a.tie < b.tie;
  return a.seq < b.seq;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = kMinBuckets;
  while (p < n && p < kMaxBuckets) p <<= 1;
  return p;
}

}  // namespace

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  if (kind == QueueKind::kCalendar) {
    return std::make_unique<CalendarEventQueue>();
  }
  return std::make_unique<BinaryHeapEventQueue>();
}

CalendarEventQueue::CalendarEventQueue() : buckets_(kMinBuckets) {}

void CalendarEventQueue::push(const EventEntry& e) {
  // Keep the search-floor invariant (floor_ <= every entry's time). A
  // push can land below the floor: discarding a cancelled far-future
  // tombstone raises floor_ to its time even though the simulator's
  // clock — which bounds future schedules — has not advanced that far.
  if (e.time < floor_) floor_ = e.time;
  std::vector<EventEntry>& b = buckets_[bucket_of(e.time)];
  b.push_back(e);
  ++size_;
  // Keep the cached minimum if the newcomer cannot beat it; otherwise
  // the next peek() re-searches (the newcomer may be the new minimum,
  // and push_back may have reallocated the minimum's own bucket).
  if (valid_ && (&b == &buckets_[min_bucket_] ||
                 earlier(e, buckets_[min_bucket_][min_index_]))) {
    valid_ = false;
  }
  maybe_resize();
}

const EventEntry* CalendarEventQueue::peek() {
  if (size_ == 0) return nullptr;
  if (!valid_ && !find_min()) return nullptr;
  return &buckets_[min_bucket_][min_index_];
}

void CalendarEventQueue::pop() {
  assert(size_ > 0);
  if (!valid_) find_min();
  std::vector<EventEntry>& b = buckets_[min_bucket_];
  floor_ = b[min_index_].time;
  // Order within a bucket is irrelevant (find_min scans), so swap-remove.
  b[min_index_] = b.back();
  b.pop_back();
  --size_;
  valid_ = false;
  maybe_resize();
}

/// Locates the global minimum. First walks one calendar "year" from the
/// floor bucket — the first bucket holding an entry inside its current-
/// year window contains the minimum, since later buckets' windows start
/// strictly later. If the year is empty (sparse regime), falls back to
/// a direct scan of every entry.
bool CalendarEventQueue::find_min() {
  if (size_ == 0) return false;
  const std::size_t n = buckets_.size();
  const std::size_t start = bucket_of(floor_);
  // Upper time bound of the floor bucket's current-year window.
  TimePs window_end = (floor_ / width_ + 1) * width_;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t bi = (start + k) & (n - 1);
    const std::vector<EventEntry>& b = buckets_[bi];
    std::size_t best = 0;
    bool found = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i].time >= window_end) continue;  // a later year
      if (!found || earlier(b[i], b[best])) {
        best = i;
        found = true;
      }
    }
    if (found) {
      min_bucket_ = bi;
      min_index_ = best;
      valid_ = true;
      return true;
    }
    window_end += width_;
  }
  // Sparse: nothing within a full rotation. Direct search.
  const EventEntry* best = nullptr;
  for (std::size_t bi = 0; bi < n; ++bi) {
    const std::vector<EventEntry>& b = buckets_[bi];
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (best == nullptr || earlier(b[i], *best)) {
        best = &b[i];
        min_bucket_ = bi;
        min_index_ = i;
      }
    }
  }
  valid_ = best != nullptr;
  return valid_;
}

void CalendarEventQueue::maybe_resize() {
  const std::size_t n = buckets_.size();
  if (size_ > 2 * n) {
    rebuild(next_pow2(size_));
  } else if (n > kMinBuckets && size_ < n / 8 &&
             (rebuilt_at_ == 0 || size_ < rebuilt_at_ / 4)) {
    rebuild(next_pow2(std::max(size_, kMinBuckets)));
  }
}

void CalendarEventQueue::rebuild(std::size_t n_buckets) {
  if (n_buckets == buckets_.size() && rebuilt_at_ != 0) {
    rebuilt_at_ = size_;
    return;
  }
  std::vector<EventEntry> all;
  all.reserve(size_);
  TimePs lo = kTimeInfinity;
  TimePs hi = 0;
  for (std::vector<EventEntry>& b : buckets_) {
    for (const EventEntry& e : b) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
      all.push_back(e);
    }
    b.clear();
  }
  // Width ~ the average inter-event gap, so one year spreads the
  // pending set across the whole calendar (clamped to stay sane when
  // all events share one instant).
  width_ = all.empty()
               ? 1
               : std::max<TimePs>(
                     1, (hi - lo) / static_cast<TimePs>(all.size() + 1));
  buckets_.assign(n_buckets, {});
  for (const EventEntry& e : all) {
    buckets_[bucket_of(e.time)].push_back(e);
  }
  rebuilt_at_ = size_;
  valid_ = false;
}

}  // namespace powertcp::sim
