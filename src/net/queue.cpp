#include "net/queue.hpp"

#include <stdexcept>

namespace powertcp::net {

void FifoQueue::push(Packet pkt) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = arena_[idx].next;
    arena_[idx].pkt = std::move(pkt);
  } else {
    idx = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(Node{std::move(pkt), kNil});
  }
  arena_[idx].next = kNil;
  if (tail_ == kNil) {
    head_ = idx;
  } else {
    arena_[tail_].next = idx;
  }
  tail_ = idx;
  ++count_;
  bytes_ += arena_[idx].pkt.wire_bytes();
}

std::optional<Packet> FifoQueue::pop() {
  if (count_ == 0) return std::nullopt;
  const std::uint32_t idx = head_;
  Node& n = arena_[idx];
  Packet pkt = std::move(n.pkt);
  head_ = n.next;
  if (head_ == kNil) tail_ = kNil;
  n.next = free_head_;
  free_head_ = idx;
  --count_;
  bytes_ -= pkt.wire_bytes();
  return pkt;
}

const Packet* FifoQueue::peek_next() const {
  return count_ == 0 ? nullptr : &arena_[head_].pkt;
}

PriorityQueue::PriorityQueue(int bands) {
  if (bands <= 0) throw std::invalid_argument("PriorityQueue: bands <= 0");
  bands_.resize(static_cast<std::size_t>(bands));
  band_bytes_.assign(static_cast<std::size_t>(bands), 0);
}

void PriorityQueue::push(Packet pkt) {
  const auto band =
      static_cast<std::size_t>(pkt.priority) < bands_.size()
          ? static_cast<std::size_t>(pkt.priority)
          : bands_.size() - 1;
  bytes_ += pkt.wire_bytes();
  band_bytes_[band] += pkt.wire_bytes();
  ++packets_;
  bands_[band].push_back(std::move(pkt));
}

std::optional<Packet> PriorityQueue::pop() {
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    auto& band = bands_[b];
    if (!band.empty()) {
      Packet pkt = std::move(band.front());
      band.pop_front();
      bytes_ -= pkt.wire_bytes();
      band_bytes_[b] -= pkt.wire_bytes();
      --packets_;
      return pkt;
    }
  }
  return std::nullopt;
}

const Packet* PriorityQueue::peek_next() const {
  for (const auto& band : bands_) {
    if (!band.empty()) return &band.front();
  }
  return nullptr;
}

VoqSet::VoqSet(int n_queues, std::function<int(NodeId)> classify)
    : classify_(std::move(classify)) {
  if (n_queues <= 0) throw std::invalid_argument("VoqSet: n_queues <= 0");
  queues_.resize(static_cast<std::size_t>(n_queues));
  voq_bytes_.assign(static_cast<std::size_t>(n_queues), 0);
}

void VoqSet::push(Packet pkt) {
  const int voq = classify_(pkt.dst);
  if (voq < 0 || voq >= size()) {
    throw std::out_of_range("VoqSet::push: classify returned bad index");
  }
  voq_bytes_[static_cast<std::size_t>(voq)] += pkt.wire_bytes();
  total_bytes_ += pkt.wire_bytes();
  ++total_packets_;
  queues_[static_cast<std::size_t>(voq)].push_back(std::move(pkt));
}

std::optional<Packet> VoqSet::pop_from(int voq) {
  auto& q = queues_.at(static_cast<std::size_t>(voq));
  if (q.empty()) return std::nullopt;
  Packet pkt = std::move(q.front());
  q.pop_front();
  voq_bytes_[static_cast<std::size_t>(voq)] -= pkt.wire_bytes();
  total_bytes_ -= pkt.wire_bytes();
  --total_packets_;
  return pkt;
}

const Packet* VoqSet::peek(int voq) const {
  const auto& q = queues_.at(static_cast<std::size_t>(voq));
  return q.empty() ? nullptr : &q.front();
}

}  // namespace powertcp::net
