#include "net/queue.hpp"

#include <stdexcept>

namespace powertcp::net {

void FifoQueue::push(Packet pkt) {
  bytes_ += pkt.wire_bytes();
  q_.push_back(std::move(pkt));
}

std::optional<Packet> FifoQueue::pop() {
  if (q_.empty()) return std::nullopt;
  Packet pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt.wire_bytes();
  return pkt;
}

const Packet* FifoQueue::peek_next() const {
  return q_.empty() ? nullptr : &q_.front();
}

PriorityQueue::PriorityQueue(int bands) {
  if (bands <= 0) throw std::invalid_argument("PriorityQueue: bands <= 0");
  bands_.resize(static_cast<std::size_t>(bands));
}

void PriorityQueue::push(Packet pkt) {
  const auto band =
      static_cast<std::size_t>(pkt.priority) < bands_.size()
          ? static_cast<std::size_t>(pkt.priority)
          : bands_.size() - 1;
  bytes_ += pkt.wire_bytes();
  ++packets_;
  bands_[band].push_back(std::move(pkt));
}

std::optional<Packet> PriorityQueue::pop() {
  for (auto& band : bands_) {
    if (!band.empty()) {
      Packet pkt = std::move(band.front());
      band.pop_front();
      bytes_ -= pkt.wire_bytes();
      --packets_;
      return pkt;
    }
  }
  return std::nullopt;
}

const Packet* PriorityQueue::peek_next() const {
  for (const auto& band : bands_) {
    if (!band.empty()) return &band.front();
  }
  return nullptr;
}

std::int64_t PriorityQueue::band_bytes(int band) const {
  std::int64_t total = 0;
  for (const Packet& p : bands_.at(static_cast<std::size_t>(band))) {
    total += p.wire_bytes();
  }
  return total;
}

VoqSet::VoqSet(int n_queues, std::function<int(NodeId)> classify)
    : classify_(std::move(classify)) {
  if (n_queues <= 0) throw std::invalid_argument("VoqSet: n_queues <= 0");
  queues_.resize(static_cast<std::size_t>(n_queues));
  voq_bytes_.assign(static_cast<std::size_t>(n_queues), 0);
}

void VoqSet::push(Packet pkt) {
  const int voq = classify_(pkt.dst);
  if (voq < 0 || voq >= size()) {
    throw std::out_of_range("VoqSet::push: classify returned bad index");
  }
  voq_bytes_[static_cast<std::size_t>(voq)] += pkt.wire_bytes();
  total_bytes_ += pkt.wire_bytes();
  ++total_packets_;
  queues_[static_cast<std::size_t>(voq)].push_back(std::move(pkt));
}

std::optional<Packet> VoqSet::pop_from(int voq) {
  auto& q = queues_.at(static_cast<std::size_t>(voq));
  if (q.empty()) return std::nullopt;
  Packet pkt = std::move(q.front());
  q.pop_front();
  voq_bytes_[static_cast<std::size_t>(voq)] -= pkt.wire_bytes();
  total_bytes_ -= pkt.wire_bytes();
  --total_packets_;
  return pkt;
}

const Packet* VoqSet::peek(int voq) const {
  const auto& q = queues_.at(static_cast<std::size_t>(voq));
  return q.empty() ? nullptr : &q.front();
}

}  // namespace powertcp::net
