#include "net/packet.hpp"

namespace powertcp::net {

Packet make_ack(const Packet& data, std::int64_t cumulative_ack) {
  Packet ack;
  ack.flow = data.flow;
  ack.src = data.dst;
  ack.dst = data.src;
  ack.type = PacketType::kAck;
  ack.payload_bytes = 0;
  ack.header_bytes = kHeaderBytes;
  ack.ack_seq = cumulative_ack;
  ack.seq = data.seq;
  ack.ecn_echo = data.ecn_marked;
  ack.int_hdr = data.int_hdr;
  ack.sent_time = data.sent_time;
  ack.priority = 0;  // acks ride the highest priority
  return ack;
}

}  // namespace powertcp::net
