#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

/// \file packet_pool.hpp
/// Generation-checked parking lot for in-flight Packets.
///
/// A Packet is ~350 bytes (mostly the 8-hop INT header), so capturing
/// one by value in an event closure forces a heap allocation per event.
/// Instead the owner parks the packet here and captures only the 8-byte
/// Handle; the event reclaims it with take(). Generations catch
/// use-after-take and double-take at the call site instead of silently
/// reading recycled storage. Storage grows to the high-water mark of
/// simultaneously in-flight packets and is recycled thereafter — the
/// steady-state path allocates nothing.

namespace powertcp::net {

class PacketPool {
 public:
  struct Handle {
    std::uint32_t index = 0;
    std::uint32_t gen = 0;
  };

  /// Parks a packet; the returned handle redeems it exactly once.
  Handle put(Packet&& pkt) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      entries_[idx].pkt = std::move(pkt);
    } else {
      idx = static_cast<std::uint32_t>(entries_.size());
      entries_.push_back(Entry{std::move(pkt), 1});
    }
    ++live_;
    return Handle{idx, entries_[idx].gen};
  }

  /// Redeems a handle, freeing its slot. Throws on stale/foreign
  /// handles (double take, or a handle from another pool).
  Packet take(Handle h) {
    if (h.index >= entries_.size() || entries_[h.index].gen != h.gen) {
      throw std::logic_error("PacketPool::take: stale handle");
    }
    Entry& e = entries_[h.index];
    ++e.gen;  // invalidate the redeemed handle
    free_.push_back(h.index);
    --live_;
    return std::move(e.pkt);
  }

  /// Packets currently parked.
  std::size_t live() const { return live_; }
  /// High-water mark of simultaneously parked packets.
  std::size_t capacity() const { return entries_.size(); }

 private:
  struct Entry {
    Packet pkt;
    std::uint32_t gen = 1;
  };
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace powertcp::net
