#include "net/shard_link.hpp"

#include <algorithm>

#include "net/node.hpp"

namespace powertcp::net {

ShardRouter::ShardRouter(sim::ShardedSimulator& engine) : engine_(engine) {
  ingress_.resize(static_cast<std::size_t>(engine.shard_count()));
  send_stamps_.resize(static_cast<std::size_t>(engine.shard_count()));
  for (int s = 0; s < engine.shard_count(); ++s) {
    engine_.set_ingest_hook(s, [this, s] { ingest(s); });
  }
}

ShardChannel* ShardRouter::add_channel(int src_shard, int dst_shard, Node* dst,
                                       int dst_in_port) {
  Ingress& in = ingress_.at(static_cast<std::size_t>(dst_shard));
  in.channels.push_back(std::make_unique<ShardChannel>(
      dst, dst_in_port, src_shard,
      &send_stamps_.at(static_cast<std::size_t>(src_shard)).next));
  return in.channels.back().get();
}

void ShardRouter::ingest(int shard) {
  Ingress& in = ingress_[static_cast<std::size_t>(shard)];
  in.scratch.clear();
  for (const auto& ch : in.channels) {
    ch->drain_into(in.scratch);
  }
  if (in.scratch.empty()) return;
  // Sort on (deliver_at, sent_at, tie, src_shard, src_seq): messages
  // from one source shard merge in that shard's execution order
  // (src_seq), which for equal (deliver_at, sent_at, tie) is exactly
  // the sequential engine's relative order — equal keys INCLUDING the
  // tie token imply the same source port, hence the same source shard.
  // Across ports/shards, the tie token itself is part of the
  // destination event key, so equal-(deliver_at, sent_at) deliveries
  // from different ports are exactly ordered by the token, matching
  // the sequential engine's (time, sched, tie, seq) order. Scheduling
  // via schedule_from then slots each delivery into the destination
  // queue at its sender-side causal timestamp and token.
  std::sort(in.scratch.begin(), in.scratch.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              if (a.deliver_at != b.deliver_at) {
                return a.deliver_at < b.deliver_at;
              }
              if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
              if (a.tie != b.tie) return a.tie < b.tie;
              if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
              return a.src_seq < b.src_seq;
            });
  sim::Simulator& sim = engine_.shard(shard);
  PacketPool* pool = &in.pool;
  for (ShardMessage& m : in.scratch) {
    const PacketPool::Handle h = pool->put(std::move(m.pkt));
    Node* dst = m.dst;
    const int port = m.dst_in_port;
    const auto origin = static_cast<std::uint32_t>(1 + m.src_shard);
    sim.schedule_from(
        m.sent_at, m.deliver_at,
        [dst, port, pool, h] { dst->receive(pool->take(h), port); }, origin,
        m.tie);
  }
  in.scratch.clear();
}

}  // namespace powertcp::net
