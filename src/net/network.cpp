#include "net/network.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>

#include "net/egress_port.hpp"
#include "net/queue.hpp"

namespace powertcp::net {

Node* Network::adopt(std::unique_ptr<Node> node) {
  if (node->id() != next_node_id()) {
    throw std::invalid_argument("Network::adopt: node id mismatch");
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

int Network::make_port_on(Node& n, sim::Bandwidth bw, sim::TimePs prop) {
  if (auto* sw = dynamic_cast<Switch*>(&n)) {
    return sw->add_port(bw, prop);
  }
  auto port = std::make_unique<BasicPort>(sim_of(n.id()), bw, prop,
                                          std::make_unique<FifoQueue>());
  return n.attach_port(std::move(port));
}

void Network::link_shards(Node& a, int a_port, Node& b, int b_port) {
  if (router_ == nullptr) return;
  const int sa = shard_of(a.id());
  const int sb = shard_of(b.id());
  if (sa == sb) return;
  const sim::TimePs prop_ab = a.port(a_port).propagation_delay();
  const sim::TimePs prop_ba = b.port(b_port).propagation_delay();
  if (std::min(prop_ab, prop_ba) < engine_->lookahead()) {
    throw std::logic_error(
        "Network: cross-shard link shorter than the engine lookahead — "
        "the shard plan's cut delay is wrong for this topology");
  }
  a.port(a_port).set_remote_channel(router_->add_channel(sa, sb, &b, b_port));
  b.port(b_port).set_remote_channel(router_->add_channel(sb, sa, &a, a_port));
  // Cut-graph edge weights for the per-pair lookahead: a packet leaving
  // shard `sa` over this link was produced by a start-of-serialization
  // event and arrives no earlier than propagation plus the smallest
  // packet's serialization time (early publication makes the tx term
  // sound — see EgressPort::start_tx).
  engine_->add_cut_edge(
      sa, sb, prop_ab + a.port(a_port).bandwidth().tx_time(kMinWireBytes));
  engine_->add_cut_edge(
      sb, sa, prop_ba + b.port(b_port).bandwidth().tx_time(kMinWireBytes));
}

Network::LinkPorts Network::connect(Node& a, sim::Bandwidth bw_ab, Node& b,
                                    sim::Bandwidth bw_ba, sim::TimePs prop) {
  const int pa = make_port_on(a, bw_ab, prop);
  const int pb = make_port_on(b, bw_ba, prop);
  a.port(pa).set_peer(&b, pb);
  b.port(pb).set_peer(&a, pa);
  edges_.push_back({a.id(), pa, b.id()});
  edges_.push_back({b.id(), pb, a.id()});
  link_shards(a, pa, b, pb);
  return LinkPorts{pa, pb};
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  // Adjacency: per node, (port, peer) pairs.
  std::vector<std::vector<std::pair<int, NodeId>>> adj(n);
  for (const Edge& e : edges_) {
    adj[static_cast<std::size_t>(e.from)].push_back({e.port, e.to});
  }

  constexpr int kUnreached = std::numeric_limits<int>::max();
  std::vector<int> dist(n);
  for (std::size_t dst = 0; dst < n; ++dst) {
    // BFS from the destination (links are symmetric).
    dist.assign(n, kUnreached);
    dist[dst] = 0;
    std::deque<std::size_t> frontier{dst};
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop_front();
      for (const auto& [port, v] : adj[u]) {
        const auto vi = static_cast<std::size_t>(v);
        if (dist[vi] == kUnreached) {
          dist[vi] = dist[u] + 1;
          frontier.push_back(vi);
        }
      }
    }
    // Install all equal-cost next hops on switches.
    for (std::size_t u = 0; u < n; ++u) {
      if (u == dst || dist[u] == kUnreached) continue;
      auto* sw = dynamic_cast<Switch*>(nodes_[u].get());
      if (sw == nullptr) continue;
      std::vector<int> next_hops;
      for (const auto& [port, v] : adj[u]) {
        if (dist[static_cast<std::size_t>(v)] == dist[u] - 1) {
          next_hops.push_back(port);
        }
      }
      if (!next_hops.empty()) {
        sw->set_routes(static_cast<NodeId>(dst), std::move(next_hops));
      }
    }
  }
}

}  // namespace powertcp::net
