#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/egress_port.hpp"
#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

/// \file circuit.hpp
/// The reconfigurable-DCN plane of the §5 case study: an optical circuit
/// switch cycling through a fixed permutation schedule, ToR virtual
/// output queues, and the two ports that drain them (circuit when the
/// matching is up, packet-network uplink otherwise).

namespace powertcp::net {

/// Rotor-style round-robin permutation schedule. In slot k (0-based) ToR
/// i transmits to ToR (i + k + 1) mod N, so every ordered pair is
/// connected exactly once per cycle of N-1 slots ("one week", paper §5).
/// Each slot is `day` of connectivity followed by `night` of
/// reconfiguration during which the circuit carries nothing.
class CircuitSchedule {
 public:
  CircuitSchedule(int n_tors, sim::TimePs day, sim::TimePs night);

  int n_tors() const { return n_tors_; }
  int n_matchings() const { return n_tors_ - 1; }
  sim::TimePs day() const { return day_; }
  sim::TimePs night() const { return night_; }
  sim::TimePs slot_length() const { return day_ + night_; }
  /// Full cycle over all matchings.
  sim::TimePs week_length() const {
    return slot_length() * n_matchings();
  }

  /// Matching slot active (or reconfiguring) at time t.
  int slot_index(sim::TimePs t) const;
  /// True iff t falls in the day portion of its slot.
  bool is_day(sim::TimePs t) const;
  /// End of the day portion of the slot containing t (valid day or night).
  sim::TimePs day_end(sim::TimePs t) const;
  /// Start of the next day strictly after the current day ends (if t is
  /// in a day) or of the upcoming day (if t is in a night).
  sim::TimePs next_day_start(sim::TimePs t) const;

  /// ToR that `tor` can transmit to at time t; -1 during night.
  int active_peer(int tor, sim::TimePs t) const;
  /// ToR that `tor` transmits to during slot k (ignoring day/night).
  int peer_in_slot(int tor, int slot) const;
  /// Earliest day start at or after t in which src transmits to dst.
  sim::TimePs next_connection(int src_tor, int dst_tor, sim::TimePs t) const;

 private:
  int n_tors_;
  sim::TimePs day_;
  sim::TimePs night_;
};

/// Entry point for all inter-rack traffic at an RDCN ToR: enqueues into
/// the shared VOQ set and transmits VOQ[active peer] over the circuit
/// during days, never spilling a serialization past the day boundary.
class CircuitPort final : public EgressPort {
 public:
  CircuitPort(sim::Simulator& simulator, sim::Bandwidth bw,
              sim::TimePs propagation, VoqSet* voqs,
              const CircuitSchedule* schedule, int my_tor);

  std::int64_t queue_bytes() const override { return voqs_->total_bytes(); }
  std::int64_t int_qlen_bytes() const override;

 protected:
  void push_to_queue(Packet pkt) override { voqs_->push(std::move(pkt)); }
  SelectResult try_select() override;

 private:
  VoqSet* voqs_;
  const CircuitSchedule* schedule_;
  int my_tor_;
};

/// Packet-network uplink that drains the same VOQ set round-robin,
/// skipping the VOQ currently served by the circuit ("forward
/// exclusively on the circuit network when available", §5).
class VoqUplinkPort final : public EgressPort {
 public:
  VoqUplinkPort(sim::Simulator& simulator, sim::Bandwidth bw,
                sim::TimePs propagation, VoqSet* voqs,
                const CircuitSchedule* schedule, int my_tor);

  std::int64_t queue_bytes() const override { return voqs_->total_bytes(); }

 protected:
  void push_to_queue(Packet pkt) override { voqs_->push(std::move(pkt)); }
  SelectResult try_select() override;

 private:
  VoqSet* voqs_;
  const CircuitSchedule* schedule_;
  int my_tor_;
  int rr_cursor_ = 0;
};

/// The optical switch itself. Passive: a packet entering from ToR i
/// during a day is delivered to the ToR its VOQ classified it for, after
/// the output propagation delay. No queueing, no serialization (the
/// sending ToR's CircuitPort already paid the wire time).
class CircuitSwitchNode final : public Node {
 public:
  CircuitSwitchNode(sim::Simulator& simulator, NodeId id, std::string name,
                    const CircuitSchedule* schedule,
                    std::function<int(NodeId)> tor_of_dst);

  /// Registers the ToR attached as circuit endpoint `tor_index`.
  void attach_tor(int tor_index, Node* tor, int tor_in_port,
                  sim::TimePs out_propagation);

  void receive(Packet pkt, int in_port) override;
  bool forwards() const override { return true; }

 private:
  struct TorLink {
    Node* tor = nullptr;
    int in_port = -1;
    sim::TimePs propagation = 0;
  };
  sim::Simulator& sim_;
  const CircuitSchedule* schedule_;
  std::function<int(NodeId)> tor_of_dst_;
  std::vector<TorLink> tors_;
  /// Parks packets crossing the switch so the delivery event captures a
  /// handle instead of the packet.
  PacketPool pool_;
};

}  // namespace powertcp::net
