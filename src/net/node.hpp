#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"

/// \file node.hpp
/// Base class for anything attached to the network graph: hosts,
/// shared-buffer switches, and the optical circuit switch.

namespace powertcp::net {

class EgressPort;

class Node {
 public:
  Node(NodeId id, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Called when a packet has fully arrived (store-and-forward) on
  /// ingress `in_port` (the index of the local port whose peer sent it).
  virtual void receive(Packet pkt, int in_port) = 0;

  /// True for nodes that forward received packets onto further links
  /// (switches). Egress ports consult this: burst-draining a train
  /// toward a forwarding node could reorder same-picosecond arrivals
  /// from different upstream ports and thereby change downstream queue
  /// evolution, so dequeue-N only engages toward endpoints.
  virtual bool forwards() const { return false; }

  /// Takes ownership of an egress port; returns its index.
  int attach_port(std::unique_ptr<EgressPort> port);

  EgressPort& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  const EgressPort& port(int i) const {
    return *ports_.at(static_cast<std::size_t>(i));
  }
  int port_count() const { return static_cast<int>(ports_.size()); }

 private:
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
};

}  // namespace powertcp::net
