#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/dt_buffer.hpp"
#include "net/egress_port.hpp"
#include "net/node.hpp"

/// \file switch_node.hpp
/// Shared-memory output-queued switch: Dynamic Thresholds buffer
/// management across all ports (§4.1), optional RED/ECN marking, INT
/// stamping, and ECMP next-hop selection by flow hash.

namespace powertcp::net {

struct SwitchConfig {
  /// Total shared packet buffer. The paper sizes buffers "proportional
  /// to the bandwidth-buffer ratio of Intel Tofino" — the topo builders
  /// compute ~10 KB per Gbps of aggregate port capacity.
  std::int64_t buffer_bytes = 4'000'000;
  double dt_alpha = 1.0;
  /// Default marking profile applied to every port (thresholds are
  /// absolute bytes; builders scale them per port speed if desired).
  EcnConfig ecn;
  /// Interpret ecn.kmin/kmax as bytes *per Gbps* of port speed, the
  /// usual practice of scaling marking thresholds with line rate.
  bool ecn_per_gbps = false;
  /// Which AQM variant each port runs and its tunables. The default
  /// ("red") reuses `ecn` above and is byte-identical to the historical
  /// fused marking; "pie"/"pi2" run delay-based probabilistic policies
  /// and are installed even when `ecn.enabled` is false (they drop).
  AqmSpec aqm;
  bool int_enabled = true;
  /// 0 = FIFO ports; >0 = strict-priority ports with this many bands
  /// (the HOMA configuration).
  int priority_bands = 0;
};

class Switch : public Node {
 public:
  Switch(sim::Simulator& simulator, NodeId id, std::string name,
         SwitchConfig cfg);

  /// Creates an egress port (FIFO or priority per config) wired to
  /// nothing yet; returns the port index.
  int add_port(sim::Bandwidth bw, sim::TimePs propagation);

  /// Registers the ECMP next-hop port set toward destination `dst`.
  void set_routes(NodeId dst, std::vector<int> ports);
  const std::vector<int>* routes_to(NodeId dst) const;

  void receive(Packet pkt, int in_port) override;
  bool forwards() const override { return true; }

  DtSharedBuffer& shared_buffer() { return buffer_; }
  const SwitchConfig& config() const { return cfg_; }

  /// Total packets dropped by buffer admission across all ports.
  std::uint64_t total_drops() const;

 protected:
  /// Deterministic ECMP pick: hash of (flow, switch id) over `n`.
  std::size_t ecmp_index(FlowId flow, std::size_t n) const;

 private:
  sim::Simulator& sim_;
  SwitchConfig cfg_;
  DtSharedBuffer buffer_;
  std::unordered_map<NodeId, std::vector<int>> routes_;
};

}  // namespace powertcp::net
