#include "net/egress_port.hpp"

#include "net/node.hpp"
#include "net/shard_link.hpp"

namespace powertcp::net {

EgressPort::EgressPort(sim::Simulator& simulator, sim::Bandwidth bw,
                       sim::TimePs propagation_delay)
    : sim_(simulator), bandwidth_(bw), propagation_(propagation_delay) {}

EgressPort::~EgressPort() {
  // The pending wakeup and the in-flight serialization both capture
  // `this`; cancel them so destroying a port mid-run (e.g. tearing a
  // topology down) cannot leave a dangling callback in the engine.
  // Packets already on the wire (propagation events) still reference
  // this port and its peer: as in the pre-pool engine, nodes must
  // outlive deliveries in flight — don't run the simulator after
  // destroying parts of a network that still has packets airborne.
  if (pending_kick_at_ != sim::kTimeInfinity) sim_.cancel(pending_kick_id_);
  if (busy_) sim_.cancel(tx_event_);
}

bool EgressPort::enqueue(Packet pkt) {
  const std::int64_t sz = pkt.wire_bytes();
  if (shared_buffer_ != nullptr &&
      !shared_buffer_->admits(queue_bytes(), sz)) {
    ++drops_;
    sample_queue();
    return false;
  }
  if (aqm_ != nullptr) {
    // The verdict reads only the pre-enqueue backlog (and the policy's
    // own RNG/controller state), so consulting it before charging the
    // shared buffer is equivalent — and an AQM drop then never has to
    // un-charge the buffer.
    const AqmVerdict v =
        aqm_->on_enqueue(queue_bytes(), pkt.ecn_capable, sim_.now());
    if (v.drop) {
      ++drops_;
      sample_queue();
      return false;
    }
    if (v.mark) {
      pkt.ecn_marked = true;
      ++ecn_marks_;
    }
  }
  if (shared_buffer_ != nullptr) shared_buffer_->on_enqueue(sz);
  pkt.enqueue_time = sim_.now();
  push_to_queue(std::move(pkt));
  sample_queue();
  kick();
  return true;
}

void EgressPort::kick() {
  if (busy_) return;
  SelectResult sel = try_select();
  if (sel.pkt.has_value()) {
    if (pending_kick_at_ != sim::kTimeInfinity) {
      sim_.cancel(pending_kick_id_);
      pending_kick_at_ = sim::kTimeInfinity;
    }
    const std::uint32_t budget = sim_.burst_budget();
    if (budget > 1 && burst_eligible()) {
      start_tx_burst(std::move(*sel.pkt), budget);
    } else {
      start_tx(std::move(*sel.pkt));
    }
    return;
  }
  if (sel.retry_at == sim::kTimeInfinity) return;
  // Deduplicate wakeups: keep only the earliest pending retry.
  if (pending_kick_at_ != sim::kTimeInfinity &&
      pending_kick_at_ <= sel.retry_at) {
    return;
  }
  if (pending_kick_at_ != sim::kTimeInfinity) sim_.cancel(pending_kick_id_);
  pending_kick_at_ = sel.retry_at;
  pending_kick_id_ = sim_.schedule_at(sel.retry_at, [this] {
    pending_kick_at_ = sim::kTimeInfinity;
    kick();
  });
}

void EgressPort::start_tx(Packet pkt) {
  busy_ = true;
  // INT is stamped "when the packet is scheduled for transmission"
  // (paper §3.3): queue length is the backlog left behind, txBytes the
  // cumulative count before this packet.
  if (int_enabled_ && (pkt.type == PacketType::kData ||
                       pkt.type == PacketType::kHomaData)) {
    IntHopRecord rec;
    rec.qlen_bytes = int_qlen_bytes();
    rec.tx_bytes = tx_bytes_;
    rec.ts = sim_.now();
    rec.bandwidth_bps = bandwidth_.bps();
    pkt.int_hdr.push(rec);
  }
  if (sojourn_cb_) sojourn_cb_(sim_.now() - pkt.enqueue_time);
  sample_queue();
  tx_bytes_ += pkt.wire_bytes();
  ++tx_packets_;
  const sim::TimePs tx_time = bandwidth_.tx_time(pkt.wire_bytes());
  if (remote_ != nullptr) {
    // EARLY PUBLICATION (lookahead batching): the packet's content is
    // final here — ECN was decided at enqueue, INT stamped above — and
    // so are its serialization finish (now + tx_time, the causal stamp
    // the sequential engine's finish_tx would use) and delivery time.
    // Publishing at start_tx instead of finish_tx guarantees every
    // cross-shard delivery lands at least tx_time(min packet) beyond
    // the event that produced it, which is what lets the cut-link
    // weight — and therefore the engine's lookahead windows — include
    // the flit serialization delay on top of propagation (see
    // ShardedSimulator::add_cut_edge and docs/performance.md §6).
    const std::int64_t wire = pkt.wire_bytes();
    remote_->send(sim_.now() + tx_time + propagation_, sim_.now() + tx_time,
                  tie_token_, std::move(pkt));
    tx_event_ = sim_.schedule_in(tx_time,
                                 [this, wire] { finish_remote_tx(wire); });
    return;
  }
  // The packet rides in the pool, not the closure: capturing it by
  // value would heap-allocate ~350 bytes per transmission.
  const PacketPool::Handle h = pool_.put(std::move(pkt));
  tx_event_ =
      sim_.schedule_in(tx_time, [this, h] { finish_tx(pool_.take(h)); });
}

bool EgressPort::burst_eligible() const {
  // Every per-packet side effect must be absent: AQM and shared-buffer
  // verdicts read intermediate backlogs, INT stamps intermediate
  // queue/tx state, and monitors/sojourn sample per packet. The peer
  // must be a non-forwarding endpoint: a train's deliveries get their
  // FIFO tie-break seq at drain time rather than one serialization
  // apart, and at a forwarding node that can reorder same-picosecond
  // arrivals from different upstream ports — changing downstream queue
  // evolution. At an endpoint same-instant processing is commutative.
  return aqm_ == nullptr && !int_enabled_ && shared_buffer_ == nullptr &&
         queue_monitor_ == nullptr && tx_monitor_ == nullptr &&
         !sojourn_cb_ && (peer_ == nullptr || !peer_->forwards()) &&
         supports_burst_drain();
}

void EgressPort::start_tx_burst(Packet first, std::uint32_t budget) {
  busy_ = true;
  // Accounting and delivery times are computed per packet, exactly as
  // the per-event path would: packet i finishes serializing at
  // finish_i = now + sum(tx_time_1..i) and arrives finish_i +
  // propagation later. Only the port's own finish bookkeeping is
  // coalesced — the n finish_tx events collapse into one burst event of
  // count n, so events_executed() parity with the per-event engine
  // holds and the wire becomes free at the same instant.
  sim::TimePs finish = sim_.now();
  std::uint32_t n = 0;
  Packet pkt = std::move(first);
  while (true) {
    ++n;
    tx_bytes_ += pkt.wire_bytes();
    ++tx_packets_;
    finish += bandwidth_.tx_time(pkt.wire_bytes());
    if (remote_ != nullptr) {
      // Cross-shard link: the destination shard schedules the delivery
      // at its next window barrier (same per-packet delivery times).
      // The causal stamp is now(), matching the burst path's local
      // schedule_tied_at time.
      remote_->send(finish + propagation_, sim_.now(), tie_token_,
                    std::move(pkt));
    } else if (peer_ != nullptr) {
      const PacketPool::Handle h = pool_.put(std::move(pkt));
      sim_.schedule_tied_at(finish + propagation_, tie_token_, [this, h] {
        peer_->receive(pool_.take(h), peer_in_port_);
      });
    }
    if (n >= budget) break;
    SelectResult sel = try_select();
    if (!sel.pkt.has_value()) break;
    pkt = std::move(*sel.pkt);
  }
  tx_event_ = sim_.schedule_burst_at(finish, n, [this] {
    busy_ = false;
    kick();
  });
}

void EgressPort::finish_tx(Packet pkt) {
  busy_ = false;
  if (shared_buffer_ != nullptr) shared_buffer_->on_dequeue(pkt.wire_bytes());
  if (tx_monitor_ != nullptr) tx_monitor_->add_bytes(sim_.now(), pkt.wire_bytes());
  if (peer_ != nullptr) {
    const PacketPool::Handle h = pool_.put(std::move(pkt));
    sim_.schedule_tied_at(sim_.now() + propagation_, tie_token_, [this, h] {
      peer_->receive(pool_.take(h), peer_in_port_);
    });
  }
  kick();
}

void EgressPort::finish_remote_tx(std::int64_t wire_bytes) {
  busy_ = false;
  if (shared_buffer_ != nullptr) shared_buffer_->on_dequeue(wire_bytes);
  if (tx_monitor_ != nullptr) tx_monitor_->add_bytes(sim_.now(), wire_bytes);
  kick();
}

void EgressPort::sample_queue() {
  if (queue_monitor_ != nullptr) {
    queue_monitor_->sample(sim_.now(), queue_bytes());
  }
}

BasicPort::BasicPort(sim::Simulator& simulator, sim::Bandwidth bw,
                     sim::TimePs propagation_delay,
                     std::unique_ptr<QueueDiscipline> queue)
    : EgressPort(simulator, bw, propagation_delay), queue_(std::move(queue)) {}

EgressPort::SelectResult BasicPort::try_select() {
  SelectResult out;
  out.pkt = queue_->pop();
  return out;
}

}  // namespace powertcp::net
