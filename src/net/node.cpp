#include "net/node.hpp"

#include <stdexcept>

#include "net/egress_port.hpp"

namespace powertcp::net {

Node::Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

Node::~Node() = default;

int Node::attach_port(std::unique_ptr<EgressPort> port) {
  const int index = static_cast<int>(ports_.size());
  // Tie token: a nonzero per-port identifier that is a pure function of
  // the topology's construction order, so sequential and sharded runs
  // compute identical tokens. Packet deliveries carry it in the event
  // key (sim::EventEntry::tie), which totally orders same-(time, sched)
  // delivery ties without consulting the global scheduling chronology —
  // the property that lets a partitioned run reproduce the sequential
  // order exactly. 9 bits of port index, the rest node id.
  if (index >= 511 || id_ < 0 || id_ >= (1 << 22)) {
    throw std::logic_error(
        "Node::attach_port: node id / port index out of tie-token range");
  }
  port->set_tie_token((static_cast<std::uint32_t>(id_) << 9) |
                      static_cast<std::uint32_t>(index + 1));
  ports_.push_back(std::move(port));
  return index;
}

}  // namespace powertcp::net
