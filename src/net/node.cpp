#include "net/node.hpp"

#include "net/egress_port.hpp"

namespace powertcp::net {

Node::Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

Node::~Node() = default;

int Node::attach_port(std::unique_ptr<EgressPort> port) {
  ports_.push_back(std::move(port));
  return static_cast<int>(ports_.size()) - 1;
}

}  // namespace powertcp::net
