#include "net/circuit.hpp"

#include <stdexcept>

namespace powertcp::net {

CircuitSchedule::CircuitSchedule(int n_tors, sim::TimePs day,
                                 sim::TimePs night)
    : n_tors_(n_tors), day_(day), night_(night) {
  if (n_tors < 2) throw std::invalid_argument("CircuitSchedule: n_tors < 2");
  if (day <= 0 || night < 0) {
    throw std::invalid_argument("CircuitSchedule: bad day/night lengths");
  }
}

int CircuitSchedule::slot_index(sim::TimePs t) const {
  return static_cast<int>((t / slot_length()) % n_matchings());
}

bool CircuitSchedule::is_day(sim::TimePs t) const {
  return (t % slot_length()) < day_;
}

sim::TimePs CircuitSchedule::day_end(sim::TimePs t) const {
  return (t / slot_length()) * slot_length() + day_;
}

sim::TimePs CircuitSchedule::next_day_start(sim::TimePs t) const {
  return (t / slot_length() + 1) * slot_length();
}

int CircuitSchedule::peer_in_slot(int tor, int slot) const {
  return (tor + slot + 1) % n_tors_;
}

int CircuitSchedule::active_peer(int tor, sim::TimePs t) const {
  if (!is_day(t)) return -1;
  return peer_in_slot(tor, slot_index(t));
}

sim::TimePs CircuitSchedule::next_connection(int src_tor, int dst_tor,
                                             sim::TimePs t) const {
  if (src_tor == dst_tor) {
    throw std::invalid_argument("next_connection: src == dst");
  }
  // Slot k connects src -> (src + k + 1) mod N.
  const int want_slot = (dst_tor - src_tor - 1 + n_tors_) % n_tors_;
  // Walk forward (at most one week) to the next occurrence of want_slot.
  sim::TimePs slot_start = (t / slot_length()) * slot_length();
  for (int i = 0; i <= n_matchings(); ++i) {
    const sim::TimePs s = slot_start + static_cast<sim::TimePs>(i) * slot_length();
    if (slot_index(s) == want_slot && s + day_ > t) {
      return s;  // day start (may be slightly in the past if t is mid-day)
    }
  }
  throw std::logic_error("next_connection: schedule walk failed");
}

CircuitPort::CircuitPort(sim::Simulator& simulator, sim::Bandwidth bw,
                         sim::TimePs propagation, VoqSet* voqs,
                         const CircuitSchedule* schedule, int my_tor)
    : EgressPort(simulator, bw, propagation),
      voqs_(voqs),
      schedule_(schedule),
      my_tor_(my_tor) {}

std::int64_t CircuitPort::int_qlen_bytes() const {
  const int peer = schedule_->active_peer(my_tor_, simulator().now());
  return peer >= 0 ? voqs_->voq_bytes(peer) : voqs_->total_bytes();
}

EgressPort::SelectResult CircuitPort::try_select() {
  SelectResult out;
  const sim::TimePs now = simulator().now();
  if (!schedule_->is_day(now)) {
    out.retry_at = schedule_->next_day_start(now);
    return out;
  }
  const int peer = schedule_->active_peer(my_tor_, now);
  const Packet* next = voqs_->peek(peer);
  if (next == nullptr) {
    // Nothing for the active peer; enqueues during this day kick us.
    out.retry_at = schedule_->next_day_start(now);
    return out;
  }
  // A serialization must finish before the light goes out.
  if (now + bandwidth().tx_time(next->wire_bytes()) > schedule_->day_end(now)) {
    out.retry_at = schedule_->next_day_start(now);
    return out;
  }
  out.pkt = voqs_->pop_from(peer);
  return out;
}

VoqUplinkPort::VoqUplinkPort(sim::Simulator& simulator, sim::Bandwidth bw,
                             sim::TimePs propagation, VoqSet* voqs,
                             const CircuitSchedule* schedule, int my_tor)
    : EgressPort(simulator, bw, propagation),
      voqs_(voqs),
      schedule_(schedule),
      my_tor_(my_tor) {}

EgressPort::SelectResult VoqUplinkPort::try_select() {
  SelectResult out;
  const sim::TimePs now = simulator().now();
  const int active = schedule_->active_peer(my_tor_, now);
  const int n = voqs_->size();
  for (int k = 1; k <= n; ++k) {
    const int i = (rr_cursor_ + k) % n;
    if (i == active) continue;
    if (voqs_->peek(i) != nullptr) {
      rr_cursor_ = i;
      out.pkt = voqs_->pop_from(i);
      return out;
    }
  }
  // Only the circuit-served VOQ has traffic: it becomes ours when the
  // day ends.
  if (active >= 0 && voqs_->peek(active) != nullptr) {
    out.retry_at = schedule_->day_end(now);
  }
  return out;
}

CircuitSwitchNode::CircuitSwitchNode(sim::Simulator& simulator, NodeId id,
                                     std::string name,
                                     const CircuitSchedule* schedule,
                                     std::function<int(NodeId)> tor_of_dst)
    : Node(id, std::move(name)),
      sim_(simulator),
      schedule_(schedule),
      tor_of_dst_(std::move(tor_of_dst)) {
  tors_.resize(static_cast<std::size_t>(schedule_->n_tors()));
}

void CircuitSwitchNode::attach_tor(int tor_index, Node* tor, int tor_in_port,
                                   sim::TimePs out_propagation) {
  tors_.at(static_cast<std::size_t>(tor_index)) =
      TorLink{tor, tor_in_port, out_propagation};
}

void CircuitSwitchNode::receive(Packet pkt, int /*in_port*/) {
  const int dst_tor = tor_of_dst_(pkt.dst);
  const TorLink& link = tors_.at(static_cast<std::size_t>(dst_tor));
  if (link.tor == nullptr) {
    throw std::logic_error("CircuitSwitchNode: destination ToR not attached");
  }
  const PacketPool::Handle h = pool_.put(std::move(pkt));
  sim_.schedule_in(link.propagation, [this, dst_tor, h] {
    const TorLink& out = tors_[static_cast<std::size_t>(dst_tor)];
    out.tor->receive(pool_.take(h), out.in_port);
  });
}

}  // namespace powertcp::net
