#include "net/switch_node.hpp"

#include <memory>
#include <stdexcept>

namespace powertcp::net {
namespace {

/// SplitMix64 finalizer: decorrelates ECMP picks across switches so the
/// same flow does not always take the "first" parallel link.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Switch::Switch(sim::Simulator& simulator, NodeId id, std::string name,
               SwitchConfig cfg)
    : Node(id, std::move(name)),
      sim_(simulator),
      cfg_(cfg),
      buffer_(cfg.buffer_bytes, cfg.dt_alpha) {}

int Switch::add_port(sim::Bandwidth bw, sim::TimePs propagation) {
  std::unique_ptr<QueueDiscipline> q;
  if (cfg_.priority_bands > 0) {
    q = std::make_unique<PriorityQueue>(cfg_.priority_bands);
  } else {
    q = std::make_unique<FifoQueue>();
  }
  auto port = std::make_unique<BasicPort>(sim_, bw, propagation, std::move(q));
  port->set_shared_buffer(&buffer_);
  port->set_int_enabled(cfg_.int_enabled);
  if (cfg_.ecn.enabled) {
    EcnConfig ecn = cfg_.ecn;
    if (cfg_.ecn_per_gbps) {
      const double gbps = bw.gbps_value();
      ecn.kmin_bytes = static_cast<std::int64_t>(
          static_cast<double>(ecn.kmin_bytes) * gbps);
      ecn.kmax_bytes = static_cast<std::int64_t>(
          static_cast<double>(ecn.kmax_bytes) * gbps);
    }
    // Seed deterministically from (switch id, port index).
    const auto seed = mix64((static_cast<std::uint64_t>(id()) << 16) |
                            static_cast<std::uint64_t>(port_count()));
    port->set_ecn(ecn, seed);
  }
  return attach_port(std::move(port));
}

void Switch::set_routes(NodeId dst, std::vector<int> ports) {
  if (ports.empty()) {
    throw std::invalid_argument("Switch::set_routes: empty port set");
  }
  routes_[dst] = std::move(ports);
}

const std::vector<int>* Switch::routes_to(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

std::size_t Switch::ecmp_index(FlowId flow, std::size_t n) const {
  if (n <= 1) return 0;
  return static_cast<std::size_t>(
             mix64(flow ^ (static_cast<std::uint64_t>(id()) * 0xD6E8FEB8ull))) %
         n;
}

void Switch::receive(Packet pkt, int /*in_port*/) {
  const auto* choices = routes_to(pkt.dst);
  if (choices == nullptr) {
    throw std::logic_error("Switch '" + name() + "': no route to node " +
                           std::to_string(pkt.dst));
  }
  const std::size_t pick = ecmp_index(pkt.flow, choices->size());
  port((*choices)[pick]).enqueue(std::move(pkt));
}

std::uint64_t Switch::total_drops() const {
  std::uint64_t total = 0;
  for (int i = 0; i < port_count(); ++i) total += port(i).drops();
  return total;
}

}  // namespace powertcp::net
