#include "net/switch_node.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

namespace powertcp::net {
namespace {

/// SplitMix64 finalizer: decorrelates ECMP picks across switches so the
/// same flow does not always take the "first" parallel link.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Checked per-Gbps threshold scaling (same guard pattern as the
/// harness size parser): a NaN/negative/overflowing product is a
/// configuration error, not silent UB from an out-of-range
/// double→int64 cast.
std::int64_t scale_ecn_threshold(const char* which, std::int64_t bytes,
                                 double gbps) {
  const double scaled = static_cast<double>(bytes) * gbps;
  if (!std::isfinite(scaled) || scaled < 0 || scaled > 9.0e18) {
    throw std::invalid_argument(
        std::string("Switch::add_port: ecn_per_gbps scaling of ") + which +
        " (" + std::to_string(bytes) + " B/Gbps x " + std::to_string(gbps) +
        " Gbps) is out of range");
  }
  return static_cast<std::int64_t>(scaled);
}

}  // namespace

Switch::Switch(sim::Simulator& simulator, NodeId id, std::string name,
               SwitchConfig cfg)
    : Node(id, std::move(name)),
      sim_(simulator),
      cfg_(cfg),
      buffer_(cfg.buffer_bytes, cfg.dt_alpha) {}

int Switch::add_port(sim::Bandwidth bw, sim::TimePs propagation) {
  std::unique_ptr<QueueDiscipline> q;
  if (cfg_.priority_bands > 0) {
    q = std::make_unique<PriorityQueue>(cfg_.priority_bands);
  } else {
    q = std::make_unique<FifoQueue>();
  }
  auto port = std::make_unique<BasicPort>(sim_, bw, propagation, std::move(q));
  port->set_shared_buffer(&buffer_);
  port->set_int_enabled(cfg_.int_enabled);
  // The default "red" policy is the scheme's ECN marking profile:
  // installed only when that profile is enabled, preserving the
  // AQM-free hot path (and RNG stream) of ECN-less fabrics. The
  // delay-based policies manage the queue whether or not marking is
  // on — they drop — so they are installed unconditionally.
  if (cfg_.ecn.enabled || cfg_.aqm.kind != "red") {
    EcnConfig ecn = cfg_.ecn;
    if (cfg_.ecn.enabled && cfg_.ecn_per_gbps) {
      const double gbps = bw.gbps_value();
      ecn.kmin_bytes = scale_ecn_threshold("kmin_bytes", ecn.kmin_bytes, gbps);
      ecn.kmax_bytes = scale_ecn_threshold("kmax_bytes", ecn.kmax_bytes, gbps);
    }
    // Seed deterministically from (switch id, port index).
    const auto seed = mix64((static_cast<std::uint64_t>(id()) << 16) |
                            static_cast<std::uint64_t>(port_count()));
    port->set_aqm(AqmRegistry::instance().at(cfg_.aqm.kind).make(
        cfg_.aqm, ecn, bw, seed));
  }
  return attach_port(std::move(port));
}

void Switch::set_routes(NodeId dst, std::vector<int> ports) {
  if (ports.empty()) {
    throw std::invalid_argument("Switch::set_routes: empty port set");
  }
  routes_[dst] = std::move(ports);
}

const std::vector<int>* Switch::routes_to(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

std::size_t Switch::ecmp_index(FlowId flow, std::size_t n) const {
  if (n <= 1) return 0;
  return static_cast<std::size_t>(
             mix64(flow ^ (static_cast<std::uint64_t>(id()) * 0xD6E8FEB8ull))) %
         n;
}

void Switch::receive(Packet pkt, int /*in_port*/) {
  const auto* choices = routes_to(pkt.dst);
  if (choices == nullptr) {
    throw std::logic_error("Switch '" + name() + "': no route to node " +
                           std::to_string(pkt.dst));
  }
  const std::size_t pick = ecmp_index(pkt.flow, choices->size());
  port((*choices)[pick]).enqueue(std::move(pkt));
}

std::uint64_t Switch::total_drops() const {
  std::uint64_t total = 0;
  for (int i = 0; i < port_count(); ++i) total += port(i).drops();
  return total;
}

}  // namespace powertcp::net
