#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"

/// \file network.hpp
/// Owns all nodes of a simulated network, wires full-duplex links, and
/// computes shortest-path ECMP routes (all equal-cost next hops) with a
/// per-destination BFS over the link graph.

namespace powertcp::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : sim_(simulator) {}

  /// Constructs a node in place; the NodeId is injected as the first
  /// constructor argument after the simulator.
  template <typename T, typename... Args>
  T* add_node(Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto owned = std::make_unique<T>(sim_, id, std::forward<Args>(args)...);
    T* raw = owned.get();
    nodes_.push_back(std::move(owned));
    return raw;
  }

  /// Takes ownership of an externally constructed node. Its id() must
  /// equal next_node_id() at the time of the call.
  Node* adopt(std::unique_ptr<Node> node);
  NodeId next_node_id() const { return static_cast<NodeId>(nodes_.size()); }

  /// Wires a full-duplex link, creating one egress port on each side.
  /// Switch sides get ports via Switch::add_port (shared buffer, ECN,
  /// INT per the switch config); other nodes get plain FIFO ports.
  struct LinkPorts {
    int a_port;
    int b_port;
  };
  LinkPorts connect(Node& a, Node& b, sim::Bandwidth bw, sim::TimePs prop) {
    return connect(a, bw, b, bw, prop);
  }
  LinkPorts connect(Node& a, sim::Bandwidth bw_ab, Node& b,
                    sim::Bandwidth bw_ba, sim::TimePs prop);

  /// Records an externally wired link (ports already created and
  /// peered) so route computation sees it.
  void register_link(Node& a, int a_port, Node& b, int b_port) {
    edges_.push_back({a.id(), a_port, b.id()});
    edges_.push_back({b.id(), b_port, a.id()});
  }

  /// Fills every Switch's ECMP tables with all shortest-path next hops
  /// toward every node. Must be called after all connect()s.
  void compute_routes();

  Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  const Node& node(NodeId id) const {
    return *nodes_.at(static_cast<std::size_t>(id));
  }
  std::size_t node_count() const { return nodes_.size(); }

  sim::Simulator& simulator() { return sim_; }

 private:
  int make_port_on(Node& n, sim::Bandwidth bw, sim::TimePs prop);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// (node, port) -> peer node, for route computation.
  struct Edge {
    NodeId from;
    int port;
    NodeId to;
  };
  std::vector<Edge> edges_;
};

}  // namespace powertcp::net
