#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/shard_link.hpp"
#include "net/switch_node.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

/// \file network.hpp
/// Owns all nodes of a simulated network, wires full-duplex links, and
/// computes shortest-path ECMP routes (all equal-cost next hops) with a
/// per-destination BFS over the link graph.
///
/// A Network can be bound either to one Simulator (the classic,
/// sequential mode) or to a ShardedSimulator plus a node->shard map: in
/// the latter case every node and its ports live on the event queue of
/// their assigned shard, and connect() transparently installs
/// cross-shard ShardChannels on links whose endpoints sit on different
/// shards. Topology builders stay unchanged — they call add_node /
/// connect exactly as before.

namespace powertcp::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : sim_(simulator) {}

  /// Partitioned mode: node i (by construction order) lives on shard
  /// `node_shard[i]` of `engine`. The map must cover every node the
  /// builder will add, and the engine's lookahead must already be set
  /// (connect() rejects cross-shard links shorter than it).
  Network(sim::ShardedSimulator& engine, std::vector<int> node_shard)
      : sim_(engine.shard(0)),
        engine_(&engine),
        node_shard_(std::move(node_shard)) {
    if (engine.shard_count() > 1) {
      router_ = std::make_unique<ShardRouter>(engine);
    }
  }

  /// The shard owning node `id` (0 in sequential mode).
  int shard_of(NodeId id) const {
    if (engine_ == nullptr || engine_->shard_count() == 1) return 0;
    return node_shard_.at(static_cast<std::size_t>(id));
  }

  /// The event queue node `id` runs on.
  sim::Simulator& sim_of(NodeId id) {
    return engine_ != nullptr ? engine_->shard(shard_of(id)) : sim_;
  }

  /// Constructs a node in place; the NodeId is injected as the first
  /// constructor argument after the simulator (the owning shard's in
  /// partitioned mode).
  template <typename T, typename... Args>
  T* add_node(Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto owned =
        std::make_unique<T>(sim_of(id), id, std::forward<Args>(args)...);
    T* raw = owned.get();
    nodes_.push_back(std::move(owned));
    return raw;
  }

  /// Takes ownership of an externally constructed node. Its id() must
  /// equal next_node_id() at the time of the call.
  Node* adopt(std::unique_ptr<Node> node);
  NodeId next_node_id() const { return static_cast<NodeId>(nodes_.size()); }

  /// Wires a full-duplex link, creating one egress port on each side.
  /// Switch sides get ports via Switch::add_port (shared buffer, ECN,
  /// INT per the switch config); other nodes get plain FIFO ports.
  struct LinkPorts {
    int a_port;
    int b_port;
  };
  LinkPorts connect(Node& a, Node& b, sim::Bandwidth bw, sim::TimePs prop) {
    return connect(a, bw, b, bw, prop);
  }
  LinkPorts connect(Node& a, sim::Bandwidth bw_ab, Node& b,
                    sim::Bandwidth bw_ba, sim::TimePs prop);

  /// Records an externally wired link (ports already created and
  /// peered) so route computation sees it. In partitioned mode this
  /// also installs cross-shard channels if the endpoints' shards
  /// differ, exactly as connect() does.
  void register_link(Node& a, int a_port, Node& b, int b_port) {
    edges_.push_back({a.id(), a_port, b.id()});
    edges_.push_back({b.id(), b_port, a.id()});
    link_shards(a, a_port, b, b_port);
  }

  /// Fills every Switch's ECMP tables with all shortest-path next hops
  /// toward every node. Must be called after all connect()s.
  void compute_routes();

  Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  const Node& node(NodeId id) const {
    return *nodes_.at(static_cast<std::size_t>(id));
  }
  std::size_t node_count() const { return nodes_.size(); }

  /// Shard 0's event queue in partitioned mode.
  sim::Simulator& simulator() { return sim_; }
  /// The partitioned engine, or nullptr in sequential mode.
  sim::ShardedSimulator* engine() { return engine_; }
  /// Cross-shard channel registry (tests); nullptr unless partitioned
  /// across more than one shard.
  const ShardRouter* router() const { return router_.get(); }

 private:
  int make_port_on(Node& n, sim::Bandwidth bw, sim::TimePs prop);
  /// Installs remote channels on both ports if a and b live on
  /// different shards (no-op otherwise).
  void link_shards(Node& a, int a_port, Node& b, int b_port);

  sim::Simulator& sim_;
  sim::ShardedSimulator* engine_ = nullptr;
  std::vector<int> node_shard_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// (node, port) -> peer node, for route computation.
  struct Edge {
    NodeId from;
    int port;
    NodeId to;
  };
  std::vector<Edge> edges_;
};

}  // namespace powertcp::net
