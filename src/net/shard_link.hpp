#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/shard.hpp"

/// \file shard_link.hpp
/// Cross-partition packet handoff for the sharded engine. An egress
/// port whose peer lives on another shard does not schedule the
/// delivery event itself (that would touch a foreign event queue from
/// the wrong thread); it pushes the packet onto its link's ShardChannel
/// — a single-producer/single-consumer ring — stamped with the absolute
/// delivery time. At the next window barrier the destination shard's
/// ingest hook (ShardRouter) drains every inbound channel and schedules
/// the deliveries into its own Simulator, parking packets in a
/// per-shard PacketPool so the event callback carries a handle, not
/// ~350 bytes of packet.
///
/// Determinism: channels are drained in their REGISTRATION order (the
/// network's construction order — a pure function of the topology),
/// each channel's messages already in send order, and the combined
/// batch is sorted by (deliver_at, sent_at, src_shard, src_seq) —
/// src_seq is a per-SOURCE-shard monotone send stamp, so messages from
/// one source shard merge in that shard's execution order, which for
/// equal (deliver_at, sent_at) is exactly the sequential engine's
/// relative order. Deliveries are scheduled via
/// Simulator::schedule_from with the sender-side send time as the
/// causal timestamp, so a remote delivery resolves same-picosecond
/// ties against destination-local events exactly where the sequential
/// engine's scheduling-chronology order would put it. The schedule
/// order is independent of thread interleaving, so a sharded run is
/// reproducible bit-for-bit at a given shard count; ties the key
/// CANNOT decide — equal (deliver_at, sent_at) across different causal
/// domains — are counted by the engine's boundary ambiguity detector
/// (Simulator::boundary_ambiguities()), and zero detections certifies
/// the run byte-identical to the sequential engine.
///
/// Memory ordering: producers push only while their window runs;
/// consumers drain only at the barrier, which orders every push of
/// window k before every drain of round k+1. The acquire/release pair
/// on the ring cursors keeps the fast path TSan-clean even without the
/// barrier; the rare overflow spill relies on the barrier alone.

namespace powertcp::net {

class Node;

/// One buffered cross-shard delivery. `sent_at` is the sender-side
/// simulation time of the send() call — the causal timestamp the
/// sequential engine would have used as the delivery's schedule time.
/// `src_shard`/`src_seq` identify the sending causal domain and the
/// send's position in that shard's execution order (the stamp counter
/// is shared by all of one source shard's channels, so equal-key
/// messages from one shard merge in source execution order even across
/// channels).
struct ShardMessage {
  sim::TimePs deliver_at = 0;
  sim::TimePs sent_at = 0;
  std::uint64_t src_seq = 0;
  Node* dst = nullptr;
  std::int32_t dst_in_port = -1;
  std::int32_t src_shard = 0;
  /// The sending egress port's tie token (EgressPort::tie_token)):
  /// carried into the destination event key so cross-shard delivery
  /// ties resolve exactly as the sequential engine's would.
  std::uint32_t tie = 0;
  Packet pkt;
};

/// Fixed-capacity SPSC ring with an unbounded overflow spill. The
/// consumer only drains at barriers, so a full ring must never block
/// the producer (a spinning producer would deadlock the window);
/// instead the producer goes STICKY to the overflow vector for the
/// rest of the window, preserving send order (ring first, then spill).
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    if (capacity_pow2 == 0 || (capacity_pow2 & mask_) != 0) {
      throw std::invalid_argument("SpscRing: capacity must be a power of 2");
    }
  }

  /// Producer thread only.
  void push(ShardMessage m) {
    if (!overflowing_) {
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      if (t - head_.load(std::memory_order_acquire) < slots_.size()) {
        slots_[t & mask_] = std::move(m);
        tail_.store(t + 1, std::memory_order_release);
        return;
      }
      overflowing_ = true;
    }
    overflow_.push_back(std::move(m));
  }

  /// Consumer thread only, at a barrier: appends everything pushed so
  /// far to `out`, in push order, and resets the overflow spill.
  void drain_into(std::vector<ShardMessage>& out) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    while (h != t) {
      out.push_back(std::move(slots_[h & mask_]));
      ++h;
    }
    head_.store(h, std::memory_order_release);
    if (!overflow_.empty()) {
      for (auto& m : overflow_) out.push_back(std::move(m));
      overflow_.clear();
    }
    overflowing_ = false;  // ordered vs the producer by the barrier
  }

 private:
  std::vector<ShardMessage> slots_;
  const std::uint64_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  /// Producer-owned during a window, consumer-owned at the barrier.
  bool overflowing_ = false;
  std::vector<ShardMessage> overflow_;
};

/// The producer-side endpoint of one cross-shard directed link: knows
/// the destination node/port and owns the ring. EgressPort::finish_tx
/// calls send() instead of scheduling the delivery locally.
class ShardChannel {
 public:
  /// `send_stamp` is the router-owned per-source-shard send counter;
  /// only the source shard's worker thread touches it (SPSC channels,
  /// one worker per shard), so a plain increment is race-free.
  ShardChannel(Node* dst, int dst_in_port, int src_shard,
               std::uint64_t* send_stamp)
      : dst_(dst),
        dst_in_port_(dst_in_port),
        src_shard_(src_shard),
        send_stamp_(send_stamp) {}

  void send(sim::TimePs deliver_at, sim::TimePs sent_at, std::uint32_t tie,
            Packet pkt) {
    ring_.push(ShardMessage{deliver_at, sent_at, (*send_stamp_)++, dst_,
                            dst_in_port_, src_shard_, tie, std::move(pkt)});
  }

  void drain_into(std::vector<ShardMessage>& out) { ring_.drain_into(out); }

  int src_shard() const { return src_shard_; }

 private:
  Node* dst_;
  std::int32_t dst_in_port_;
  std::int32_t src_shard_;
  std::uint64_t* send_stamp_;
  SpscRing ring_;
};

/// Owns every cross-shard channel of one partitioned network and
/// installs the per-shard ingest hooks on the engine (constructor).
/// Channels are registered during topology construction, single
/// threaded, before any run.
class ShardRouter {
 public:
  explicit ShardRouter(sim::ShardedSimulator& engine);

  /// Registers a channel carrying `src_shard`'s sends into `dst_shard`.
  /// The caller (the Network) wires the returned channel into the
  /// sending port.
  ShardChannel* add_channel(int src_shard, int dst_shard, Node* dst,
                            int dst_in_port);

  /// Channels delivering into `shard` (introspection for tests).
  std::size_t channel_count(int shard) const {
    return ingress_.at(static_cast<std::size_t>(shard)).channels.size();
  }

 private:
  void ingest(int shard);

  struct Ingress {
    /// Registration order = deterministic merge rank.
    std::vector<std::unique_ptr<ShardChannel>> channels;
    /// Parks packets between ingest and delivery callback.
    PacketPool pool;
    /// Reused drain buffer (allocation-free once warm).
    std::vector<ShardMessage> scratch;
  };

  /// One per-source-shard send counter on its own cache line; written
  /// only by that shard's worker thread, read by consumers only via the
  /// stamps already published through the rings.
  struct alignas(64) SendStamp {
    std::uint64_t next = 0;
  };

  sim::ShardedSimulator& engine_;
  std::vector<Ingress> ingress_;
  std::vector<SendStamp> send_stamps_;
};

}  // namespace powertcp::net
