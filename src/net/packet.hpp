#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

/// \file packet.hpp
/// Wire-level packet model with the in-band network telemetry (INT)
/// header used by PowerTCP and HPCC.
///
/// The INT format follows HPCC (Fig. 4 of the HPCC paper), which PowerTCP
/// states it reuses verbatim (§3.3): each switch hop appends
/// (qlen, timestamp, txBytes, bandwidth) taken when the packet is
/// scheduled for transmission. The receiver copies the collected records
/// into the ACK, which the sender feeds to the congestion controller.

namespace powertcp::net {

/// Index of a node inside its Network. -1 means "unset".
using NodeId = std::int32_t;
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNode = -1;

/// Default header overhead per packet on the wire (Ethernet + IP + TCP +
/// base INT header), matching the ~48 B used in the HPCC/PowerTCP ns-3
/// setups.
inline constexpr std::int32_t kHeaderBytes = 48;
/// Default maximum payload per packet (HPCC/PowerTCP ns-3 MTU setting).
inline constexpr std::int32_t kDefaultMss = 1000;
/// Smallest possible wire size of any packet (a header-only ack):
/// payload_bytes >= 0 and header_bytes is always kHeaderBytes, so
/// wire_bytes() >= kMinWireBytes. The sharded engine's cut-link weights
/// add tx_time(kMinWireBytes) on top of propagation (lookahead
/// batching), which is sound because ports publish cross-shard packets
/// at serialization start.
inline constexpr std::int32_t kMinWireBytes = kHeaderBytes;

enum class PacketType : std::uint8_t {
  kData,       ///< window-based transport payload
  kAck,        ///< cumulative ack, echoes INT + ECN
  kHomaData,   ///< receiver-driven message payload (unscheduled/scheduled)
  kHomaGrant,  ///< receiver-driven grant
};

/// One per-hop INT record, appended at dequeue time by the egress port.
struct IntHopRecord {
  std::int64_t qlen_bytes = 0;  ///< egress backlog when scheduled for tx
  std::int64_t tx_bytes = 0;    ///< cumulative bytes transmitted by port
  sim::TimePs ts = 0;           ///< dequeue timestamp
  double bandwidth_bps = 0.0;   ///< port line rate
};

/// Fixed-capacity stack of per-hop records. Four hops each way is the
/// TCP-option budget the paper mentions (§5); we allow eight to cover the
/// longest fat-tree path.
inline constexpr int kMaxIntHops = 8;

class IntHeader {
 public:
  void push(const IntHopRecord& rec) {
    if (n_hops_ >= kMaxIntHops) {
      throw std::length_error("IntHeader: hop budget exceeded");
    }
    hops_[n_hops_++] = rec;
  }
  void clear() { n_hops_ = 0; }
  int size() const { return n_hops_; }
  bool empty() const { return n_hops_ == 0; }
  const IntHopRecord& hop(int i) const { return hops_[static_cast<size_t>(i)]; }
  IntHopRecord& hop(int i) { return hops_[static_cast<size_t>(i)]; }

 private:
  std::array<IntHopRecord, kMaxIntHops> hops_{};
  int n_hops_ = 0;
};

/// A simulated packet. Copied by value along the path; fields below the
/// "simulator metadata" marker never exist on a real wire and carry no
/// modeled size.
struct Packet {
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kData;

  std::int64_t seq = 0;            ///< first payload byte (data packets)
  std::int32_t payload_bytes = 0;
  std::int32_t header_bytes = kHeaderBytes;

  bool ecn_capable = true;
  bool ecn_marked = false;  ///< CE codepoint, set by marking switches
  bool ecn_echo = false;    ///< ECE on acks

  /// Cumulative ack: next expected byte. On *data* packets this echoes
  /// the sender's received-ack edge, which lets the receiver retire
  /// per-flow state at completion yet still recognize (and statelessly
  /// re-ack) go-back-N retransmissions of completed flows.
  std::int64_t ack_seq = 0;

  /// Forward-path INT; on acks this is the echo of the acked data packet.
  IntHeader int_hdr;

  std::uint8_t priority = 0;  ///< 0 = highest; used by priority queues

  /// HOMA fields: grant offset / message size riding in the header.
  std::int64_t grant_offset = 0;
  std::int64_t message_bytes = 0;

  // ---- simulator metadata (not on the wire) ----
  sim::TimePs sent_time = 0;     ///< stamped at send, echoed on the ack
  sim::TimePs enqueue_time = 0;  ///< last enqueue, for sojourn accounting

  std::int64_t wire_bytes() const { return payload_bytes + header_bytes; }
};

/// Canonical ack for a received data packet: swaps endpoints, echoes the
/// INT record stack, the ECN mark and the send timestamp.
Packet make_ack(const Packet& data, std::int64_t cumulative_ack);

}  // namespace powertcp::net
