#pragma once

#include <cstdint>

/// \file dt_buffer.hpp
/// Shared-memory buffer with the Dynamic Thresholds admission policy of
/// Choudhury & Hahne (IEEE/ACM ToN 1998) — the buffer management the
/// paper enables on every switch (§4.1), as commodity datacenter ASICs do.
///
/// A packet is admitted to a queue iff
///     qlen(queue) < alpha * (B - U)
/// where B is the total buffer, U the bytes currently used across all
/// queues, and alpha the DT control parameter (default 1, as in the
/// original paper's "fair" setting).

namespace powertcp::net {

class DtSharedBuffer {
 public:
  DtSharedBuffer(std::int64_t total_bytes, double alpha = 1.0)
      : total_bytes_(total_bytes), alpha_(alpha) {}

  /// True iff a packet of `pkt_bytes` may join a queue currently holding
  /// `queue_bytes`. Does not reserve — call `on_enqueue` after admitting.
  bool admits(std::int64_t queue_bytes, std::int64_t pkt_bytes) const {
    const std::int64_t free_bytes = total_bytes_ - used_bytes_;
    if (pkt_bytes > free_bytes) return false;  // hard capacity
    const double threshold = alpha_ * static_cast<double>(free_bytes);
    return static_cast<double>(queue_bytes) < threshold;
  }

  void on_enqueue(std::int64_t pkt_bytes) { used_bytes_ += pkt_bytes; }
  void on_dequeue(std::int64_t pkt_bytes) { used_bytes_ -= pkt_bytes; }

  std::int64_t used_bytes() const { return used_bytes_; }
  std::int64_t total_bytes() const { return total_bytes_; }
  double alpha() const { return alpha_; }

 private:
  std::int64_t total_bytes_;
  double alpha_;
  std::int64_t used_bytes_ = 0;
};

}  // namespace powertcp::net
