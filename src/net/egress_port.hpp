#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/aqm.hpp"
#include "net/dt_buffer.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/timeseries.hpp"

/// \file egress_port.hpp
/// Egress ports drain their backlog at line rate, stamp INT records at
/// the instant a data packet is scheduled for transmission (the paper's
/// §3.3 semantics), consult their AQM policy (net/aqm.hpp — step/RED
/// marking by default) at enqueue, and enforce the switch's
/// shared-buffer admission (Dynamic Thresholds).

namespace powertcp::net {

class Node;
class ShardChannel;

class EgressPort {
 public:
  EgressPort(sim::Simulator& simulator, sim::Bandwidth bw,
             sim::TimePs propagation_delay);
  virtual ~EgressPort();

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  void set_peer(Node* peer, int peer_in_port) {
    peer_ = peer;
    peer_in_port_ = peer_in_port;
  }
  Node* peer() const { return peer_; }
  int peer_in_port() const { return peer_in_port_; }

  /// Marks the peer as living on another shard of a partitioned run:
  /// deliveries go through `ch` (a cross-shard SPSC channel, see
  /// shard_link.hpp) instead of being scheduled on this shard's
  /// simulator. Installed by Network when a link crosses the shard
  /// plan's cut; nullptr (the default) keeps the local path.
  void set_remote_channel(ShardChannel* ch) { remote_ = ch; }
  ShardChannel* remote_channel() const { return remote_; }

  /// This port's tie token: a nonzero, topology-derived identifier
  /// stamped into every delivery event's key so same-picosecond
  /// delivery ties resolve identically in sequential and sharded runs
  /// (see Node::attach_port, which installs it).
  void set_tie_token(std::uint32_t tie) { tie_token_ = tie; }
  std::uint32_t tie_token() const { return tie_token_; }

  /// Installs the historical step/RED marking profile — sugar for
  /// set_aqm(StepRedAqm): byte-identical to the pre-AQM-layer marking.
  void set_ecn(const EcnConfig& cfg, std::uint64_t seed) {
    aqm_ = std::make_unique<StepRedAqm>(cfg, seed);
  }
  /// Installs an arbitrary queue-management policy (owned). nullptr
  /// restores the AQM-free hot path.
  void set_aqm(std::unique_ptr<Aqm> aqm) { aqm_ = std::move(aqm); }
  /// The installed policy, or nullptr (hosts, disabled-ECN fabrics).
  const Aqm* aqm() const { return aqm_.get(); }
  void set_int_enabled(bool on) { int_enabled_ = on; }
  void set_shared_buffer(DtSharedBuffer* buf) { shared_buffer_ = buf; }

  /// Admits (or drops) a packet and starts the transmitter if idle.
  /// Returns false iff the packet was dropped by buffer admission.
  bool enqueue(Packet pkt);

  sim::Bandwidth bandwidth() const { return bandwidth_; }
  void set_bandwidth(sim::Bandwidth bw) { bandwidth_ = bw; }
  sim::TimePs propagation_delay() const { return propagation_; }

  /// Backlog awaiting transmission (excludes the packet on the wire).
  virtual std::int64_t queue_bytes() const = 0;

  /// Queue length reported in INT records. Defaults to queue_bytes();
  /// VOQ-based ports report only the backlog the stamped packet actually
  /// contends with.
  virtual std::int64_t int_qlen_bytes() const { return queue_bytes(); }

  std::int64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t tx_packets() const { return tx_packets_; }
  /// Packets dropped at this port — buffer admission plus AQM drops.
  std::uint64_t drops() const { return drops_; }
  /// Cumulative packets ECN-marked by this port's AQM — a
  /// flight-recorder tap point.
  std::uint64_t ecn_marks() const { return ecn_marks_; }
  bool busy() const { return busy_; }

  /// Optional monitoring hooks (not owned).
  void set_queue_monitor(stats::QueueSeries* m) { queue_monitor_ = m; }
  void set_tx_monitor(stats::ThroughputSeries* m) { tx_monitor_ = m; }
  void set_sojourn_callback(std::function<void(sim::TimePs)> cb) {
    sojourn_cb_ = std::move(cb);
  }

  /// Re-evaluates whether transmission can start (called after enqueues
  /// and by subclasses when external conditions change, e.g. a circuit
  /// day beginning).
  void kick();

 protected:
  struct SelectResult {
    std::optional<Packet> pkt;
    /// When to retry if no packet was selectable; kTimeInfinity means
    /// "wait for an explicit kick" (e.g. the next enqueue).
    sim::TimePs retry_at = sim::kTimeInfinity;
  };

  /// Stores the packet in the discipline-specific backlog.
  virtual void push_to_queue(Packet pkt) = 0;
  /// Chooses the next packet to serialize, or a retry time.
  virtual SelectResult try_select() = 0;

  /// True iff this port's selection is strict-FIFO so a whole
  /// transmission train can be pre-selected without changing which
  /// packets go on the wire (see QueueDiscipline::strict_fifo). Ports
  /// with preemptable or externally-gated selection keep the default.
  virtual bool supports_burst_drain() const { return false; }

  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

 private:
  void start_tx(Packet pkt);
  void finish_tx(Packet pkt);
  /// Serialization-complete bookkeeping for the cross-shard path: the
  /// packet itself was already published to the remote channel at
  /// start_tx (early publication — its delivery time, causal stamp and
  /// content are final there), so the finish event only frees the wire
  /// and settles byte accounting.
  void finish_remote_tx(std::int64_t wire_bytes);
  /// Per-packet observers or policies would fire at intermediate times
  /// inside a burst, so the drain only engages when none is installed.
  bool burst_eligible() const;
  /// Serializes up to `budget` packets as one train: per-packet
  /// serialization-time accounting and exact per-packet delivery times,
  /// but a single burst-granular finish event for the whole train.
  void start_tx_burst(Packet first, std::uint32_t budget);
  void sample_queue();

  sim::Simulator& sim_;
  sim::Bandwidth bandwidth_;
  sim::TimePs propagation_;
  Node* peer_ = nullptr;
  int peer_in_port_ = -1;
  ShardChannel* remote_ = nullptr;
  std::uint32_t tie_token_ = 0;

  std::unique_ptr<Aqm> aqm_;
  std::uint64_t ecn_marks_ = 0;
  bool int_enabled_ = false;
  DtSharedBuffer* shared_buffer_ = nullptr;

  bool busy_ = false;
  std::int64_t tx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t drops_ = 0;

  sim::TimePs pending_kick_at_ = sim::kTimeInfinity;
  sim::EventId pending_kick_id_{};
  sim::EventId tx_event_{};  ///< pending finish_tx; valid while busy_

  /// Parks packets between start_tx -> finish_tx and finish_tx ->
  /// delivery so those events capture an 8-byte handle, not the packet.
  PacketPool pool_;

  stats::QueueSeries* queue_monitor_ = nullptr;
  stats::ThroughputSeries* tx_monitor_ = nullptr;
  std::function<void(sim::TimePs)> sojourn_cb_;
};

/// Port with a self-contained queueing discipline (FIFO or priority).
class BasicPort final : public EgressPort {
 public:
  BasicPort(sim::Simulator& simulator, sim::Bandwidth bw,
            sim::TimePs propagation_delay,
            std::unique_ptr<QueueDiscipline> queue);

  std::int64_t queue_bytes() const override { return queue_->bytes(); }
  const QueueDiscipline& queue() const { return *queue_; }

 protected:
  void push_to_queue(Packet pkt) override { queue_->push(std::move(pkt)); }
  SelectResult try_select() override;
  bool supports_burst_drain() const override { return queue_->strict_fifo(); }

 private:
  std::unique_ptr<QueueDiscipline> queue_;
};

}  // namespace powertcp::net
