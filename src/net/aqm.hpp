#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file aqm.hpp
/// Active queue management as a pluggable egress-port policy.
///
/// Every EgressPort may carry one Aqm; the port consults it once per
/// enqueue attempt (after shared-buffer admission, before the packet
/// joins the backlog) and the verdict either CE-marks the packet or
/// drops it. Three variants ship in the registry:
///
///   red  — the historical step/RED profile (DCQCN-compatible; with
///          kmin == kmax it degenerates to DCTCP's step marking). This
///          is the default and is byte-identical to the pre-AQM-layer
///          marking fused into EgressPort (pinned by golden tests).
///   pie  — RFC 8033-style PI controller on queue *delay*: a drop/mark
///          probability integrates the delay error every tupdate; ECT
///          packets are marked instead of dropped while the
///          probability is at or below `ecn_threshold`.
///   pi2  — RFC 9332-style PI² / L4S coupling: the same PI controller
///          maintains a base probability p'; ECT traffic is marked
///          with min(2·p', 1) while not-ECT traffic is dropped with
///          p'², the square-coupling that makes scalable and classic
///          CC share a bottleneck.
///   codel — RFC 8289's sojourn-time state machine, timerless and
///          RNG-free: once the estimated sojourn (backlog / line rate)
///          stays above target for a whole interval, packets are shot
///          on the interval/√count control law until the queue drains
///          below target; ECT packets are marked instead of dropped.
///
/// The controllers are updated *lazily at enqueue time* (whole elapsed
/// tupdate intervals are replayed against the current backlog, with a
/// bounded catch-up), so behaviour is a pure function of the packet
/// event sequence — no timer events, byte-identical across thread
/// counts and event-queue backends.

namespace powertcp::net {

/// RED-style ECN marking profile (DCQCN-compatible). With
/// kmin == kmax the profile degenerates to DCTCP's step marking.
struct EcnConfig {
  bool enabled = false;
  std::int64_t kmin_bytes = 0;
  std::int64_t kmax_bytes = 0;
  double pmax = 1.0;
};

/// Tunables for the probabilistic AQM variants, carried by
/// net::SwitchConfig and the harness `[aqm]` config section. The
/// step/RED thresholds live in EcnConfig, not here: "red" reuses the
/// per-scheme ECN profile machinery unchanged.
struct AqmSpec {
  /// AqmRegistry entry name: "red" (default), "pie", "pi2", "codel".
  std::string kind = "red";
  /// PI/CoDel target queue delay, and the PI controller update period.
  double target_us = 20.0;
  double tupdate_us = 20.0;
  /// Dimensionless PI gains; the delay error is normalized by the
  /// target, so the same gains work at datacenter microsecond scales:
  ///   p += alpha·(qdelay − target)/target + beta·(qdelay − qdelay_old)/target
  double alpha = 0.125;
  double beta = 1.25;
  /// PIE only: ECT packets are marked instead of dropped while the
  /// drop probability is at or below this threshold (RFC 8033 §5.1).
  double ecn_threshold = 0.1;
  /// CoDel only: the sliding window the sojourn estimate must stay
  /// above target for before the drop state engages, and the base of
  /// the interval/√count control law (RFC 8289 §4.2; 100 ms on the
  /// internet, microseconds in a datacenter).
  double interval_us = 100.0;
};

/// What the AQM decided for one packet at enqueue time. `drop` wins
/// over `mark` (a dropped packet never reaches the queue).
struct AqmVerdict {
  bool mark = false;
  bool drop = false;
};

/// One port's queue-management policy. Implementations own whatever
/// state they need (thresholds, RNG, controller state); a port calls
/// on_enqueue exactly once per admission-passed packet.
class Aqm {
 public:
  virtual ~Aqm() = default;

  /// `queue_bytes` is the backlog *before* this packet joins it (the
  /// same quantity the historical marking read); `ecn_capable` is the
  /// packet's ECT codepoint; `now` the simulation clock.
  virtual AqmVerdict on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                                sim::TimePs now) = 0;

  /// Registry name of the variant ("red", "pie", "pi2").
  virtual const char* kind() const = 0;
};

/// The historical step/RED profile, extracted verbatim from
/// EgressPort::maybe_mark_ecn: below kmin no marks, above kmax every
/// ECT packet is marked, in between a mark is drawn with probability
/// pmax·(q − kmin)/(kmax − kmin). Never drops. The RNG draw happens
/// only on the probabilistic branch — the exact draw order of the
/// pre-refactor code, so default experiments are byte-identical.
class StepRedAqm final : public Aqm {
 public:
  StepRedAqm(const EcnConfig& cfg, std::uint64_t seed)
      : ecn_(cfg), rng_(seed) {}

  AqmVerdict on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                        sim::TimePs now) override;
  const char* kind() const override { return "red"; }

  const EcnConfig& config() const { return ecn_; }

 private:
  EcnConfig ecn_;
  sim::Rng rng_;
};

/// Shared PI controller core for PIE/PI2: a probability integrating
/// the queue-delay error against the target, stepped once per elapsed
/// tupdate interval (lazily, at enqueue). Queue delay is estimated as
/// backlog / line rate, the standard PIE departure-rate shortcut for
/// a fixed-rate port.
class PiDelayController {
 public:
  PiDelayController(const AqmSpec& spec, sim::Bandwidth line_rate);

  /// Replays every whole tupdate interval between the last update and
  /// `now` against the current backlog (bounded at kMaxCatchUpSteps;
  /// older intervals are forfeited, which only matters after idle gaps
  /// where the controller would have decayed to zero anyway). Returns
  /// the post-update probability in [0, 1].
  double update(std::int64_t queue_bytes, sim::TimePs now);

  double probability() const { return p_; }

  /// Catch-up bound per enqueue; at the default gains a saturated
  /// controller fully decays over an idle gap well inside the bound
  /// (1/alpha = 8 steps), so forfeiting older intervals is lossless.
  static constexpr int kMaxCatchUpSteps = 25;

 private:
  double target_s_;
  double alpha_;
  double beta_;
  sim::TimePs tupdate_;
  double bytes_per_sec_;
  double p_ = 0.0;
  double qdelay_old_s_ = 0.0;
  sim::TimePs last_update_ = 0;
};

/// RFC 8033-style PIE: on_enqueue draws against the PI probability;
/// ECT packets are marked instead of dropped while p < ecn_threshold.
class PieAqm final : public Aqm {
 public:
  PieAqm(const AqmSpec& spec, sim::Bandwidth line_rate, std::uint64_t seed);

  AqmVerdict on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                        sim::TimePs now) override;
  const char* kind() const override { return "pie"; }

 private:
  PiDelayController pi_;
  double ecn_threshold_;
  sim::Rng rng_;
};

/// RFC 9332-style PI²: the PI probability is the *base* p'; ECT
/// traffic is marked with min(2·p', 1), not-ECT traffic dropped with
/// p'² (the square coupling).
class Pi2Aqm final : public Aqm {
 public:
  Pi2Aqm(const AqmSpec& spec, sim::Bandwidth line_rate, std::uint64_t seed);

  AqmVerdict on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                        sim::TimePs now) override;
  const char* kind() const override { return "pi2"; }

  /// The coupling factor k between the scalable marking probability
  /// and the base p' (RFC 9332 defaults k = 2).
  static constexpr double kCoupling = 2.0;

 private:
  PiDelayController pi_;
  sim::Rng rng_;
};

/// RFC 8289's CoDel, adapted to the enqueue-time hook and entirely
/// deterministic — no RNG, no timers. Sojourn time is estimated as
/// backlog / line rate (the same departure-rate shortcut as
/// PiDelayController, sound for a fixed-rate port). The classic state
/// machine: while the estimate sits above `target_us` continuously for
/// `interval_us`, the policy enters the dropping state and shoots one
/// packet per control-law firing, with the firing gap shrinking as
/// interval/√count; dropping ends the moment the estimate falls below
/// target. ECT packets are marked rather than dropped (CE carries the
/// same signal without the loss), non-ECT packets are dropped. On
/// re-entry within 8 intervals the drop rate resumes near where it
/// left off (count − 2, RFC 8289 §5.3) instead of restarting from 1.
class CodelAqm final : public Aqm {
 public:
  CodelAqm(const AqmSpec& spec, sim::Bandwidth line_rate);

  AqmVerdict on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                        sim::TimePs now) override;
  const char* kind() const override { return "codel"; }

 private:
  /// t + interval/√count — the gap to the next shot.
  sim::TimePs control_law(sim::TimePs t) const;

  sim::TimePs target_;
  sim::TimePs interval_;
  sim::Bandwidth line_rate_;
  /// When the sojourn estimate has been above target since
  /// first_above_ (0 = not currently above).
  sim::TimePs first_above_ = 0;
  sim::TimePs drop_next_ = 0;
  std::uint32_t count_ = 0;
  bool dropping_ = false;
};

/// The registry of AQM variants, mirroring cc::Registry: switches
/// build each port's policy through the named entry, and the harness
/// validates `[aqm] kind = ...` against the table.
class AqmRegistry {
 public:
  struct Entry {
    std::string name;     ///< `[aqm] kind = <name>`
    std::string summary;  ///< one line for docs/CLI listings
    /// Builds one port's policy. `ecn` carries the step/RED profile
    /// (already scaled to absolute bytes for the port); `line_rate`
    /// the port bandwidth the delay-based controllers divide by;
    /// `seed` the port's deterministic draw seed.
    std::function<std::unique_ptr<Aqm>(const AqmSpec&, const EcnConfig& ecn,
                                       sim::Bandwidth line_rate,
                                       std::uint64_t seed)>
        make;
  };

  /// The process-wide table, built once (thread-safe magic static).
  static const AqmRegistry& instance();

  /// nullptr when `name` is not registered.
  const Entry* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names.
  const Entry& at(const std::string& name) const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<std::string> names() const;
  /// "red, pie, pi2" — for error messages and docs.
  std::string joined_names() const;

 private:
  AqmRegistry();
  std::vector<Entry> entries_;
};

}  // namespace powertcp::net
