#include "net/aqm.hpp"

#include <cmath>
#include <stdexcept>

namespace powertcp::net {

AqmVerdict StepRedAqm::on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                                  sim::TimePs /*now*/) {
  AqmVerdict v;
  if (!ecn_.enabled || !ecn_capable) return v;
  if (queue_bytes <= ecn_.kmin_bytes) return v;
  if (queue_bytes >= ecn_.kmax_bytes) {
    v.mark = true;
    return v;
  }
  const double span = static_cast<double>(ecn_.kmax_bytes - ecn_.kmin_bytes);
  const double p =
      ecn_.pmax * static_cast<double>(queue_bytes - ecn_.kmin_bytes) / span;
  if (rng_.uniform() < p) v.mark = true;
  return v;
}

PiDelayController::PiDelayController(const AqmSpec& spec,
                                     sim::Bandwidth line_rate)
    : target_s_(spec.target_us * 1e-6),
      alpha_(spec.alpha),
      beta_(spec.beta),
      tupdate_(sim::from_seconds(spec.tupdate_us * 1e-6)),
      bytes_per_sec_(line_rate.bps() / 8.0) {
  if (!(target_s_ > 0) || tupdate_ <= 0) {
    throw std::invalid_argument(
        "PiDelayController: target_us and tupdate_us must be > 0");
  }
  if (!(bytes_per_sec_ > 0)) {
    throw std::invalid_argument("PiDelayController: line rate must be > 0");
  }
}

double PiDelayController::update(std::int64_t queue_bytes, sim::TimePs now) {
  std::int64_t steps = 0;
  if (now > last_update_) {
    steps = (now - last_update_) / tupdate_;
  }
  if (steps > kMaxCatchUpSteps) {
    // Forfeit intervals past the bound but keep the phase: the clock
    // below still advances by whole tupdates from the original origin.
    last_update_ += (steps - kMaxCatchUpSteps) * tupdate_;
    steps = kMaxCatchUpSteps;
  }
  const double qdelay_s = static_cast<double>(queue_bytes) / bytes_per_sec_;
  for (std::int64_t i = 0; i < steps; ++i) {
    last_update_ += tupdate_;
    p_ += alpha_ * (qdelay_s - target_s_) / target_s_ +
          beta_ * (qdelay_s - qdelay_old_s_) / target_s_;
    if (p_ < 0.0) p_ = 0.0;
    if (p_ > 1.0) p_ = 1.0;
    qdelay_old_s_ = qdelay_s;
  }
  return p_;
}

PieAqm::PieAqm(const AqmSpec& spec, sim::Bandwidth line_rate,
               std::uint64_t seed)
    : pi_(spec, line_rate), ecn_threshold_(spec.ecn_threshold), rng_(seed) {}

AqmVerdict PieAqm::on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                              sim::TimePs now) {
  AqmVerdict v;
  const double p = pi_.update(queue_bytes, now);
  if (p <= 0.0) return v;
  if (rng_.uniform() < p) {
    if (ecn_capable && p <= ecn_threshold_) {
      v.mark = true;
    } else {
      v.drop = true;
    }
  }
  return v;
}

Pi2Aqm::Pi2Aqm(const AqmSpec& spec, sim::Bandwidth line_rate,
               std::uint64_t seed)
    : pi_(spec, line_rate), rng_(seed) {}

AqmVerdict Pi2Aqm::on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                              sim::TimePs now) {
  AqmVerdict v;
  const double p_base = pi_.update(queue_bytes, now);
  if (p_base <= 0.0) return v;
  if (ecn_capable) {
    const double p_mark =
        p_base * kCoupling < 1.0 ? p_base * kCoupling : 1.0;
    if (rng_.uniform() < p_mark) v.mark = true;
  } else {
    if (rng_.uniform() < p_base * p_base) v.drop = true;
  }
  return v;
}

CodelAqm::CodelAqm(const AqmSpec& spec, sim::Bandwidth line_rate)
    : target_(sim::from_seconds(spec.target_us * 1e-6)),
      interval_(sim::from_seconds(spec.interval_us * 1e-6)),
      line_rate_(line_rate) {
  if (target_ <= 0 || interval_ <= 0) {
    throw std::invalid_argument(
        "CodelAqm: target_us and interval_us must be > 0");
  }
  if (!(line_rate_.bps() > 0)) {
    throw std::invalid_argument("CodelAqm: line rate must be > 0");
  }
}

sim::TimePs CodelAqm::control_law(sim::TimePs t) const {
  return t + static_cast<sim::TimePs>(
                 static_cast<double>(interval_) /
                 std::sqrt(static_cast<double>(count_)));
}

AqmVerdict CodelAqm::on_enqueue(std::int64_t queue_bytes, bool ecn_capable,
                                sim::TimePs now) {
  AqmVerdict v;
  const sim::TimePs sojourn = line_rate_.tx_time(queue_bytes);
  if (sojourn < target_) {
    // The queue drained below target: leave the dropping state and
    // forget the above-target streak.
    first_above_ = 0;
    dropping_ = false;
    return v;
  }
  const auto shoot = [&] {
    if (ecn_capable) {
      v.mark = true;
    } else {
      v.drop = true;
    }
  };
  if (!dropping_) {
    if (first_above_ == 0) {
      // First packet of an above-target streak: arm the interval.
      first_above_ = now + interval_;
    } else if (now >= first_above_) {
      // A whole interval above target — start shooting. If the last
      // dropping episode ended recently the link is persistently
      // congested: resume near the previous drop rate (count − 2)
      // instead of relearning it from 1 (RFC 8289 §5.3).
      dropping_ = true;
      count_ = count_ > 2 && now - drop_next_ < 8 * interval_ ? count_ - 2 : 1;
      drop_next_ = control_law(now);
      shoot();
    }
    return v;
  }
  if (now >= drop_next_) {
    shoot();
    ++count_;
    drop_next_ = control_law(drop_next_);
  }
  return v;
}

AqmRegistry::AqmRegistry() {
  entries_.push_back(
      {"red",
       "step/RED ECN marking between kmin/kmax (DCQCN profile; kmin == "
       "kmax is DCTCP's step) — the default, never drops",
       [](const AqmSpec&, const EcnConfig& ecn, sim::Bandwidth,
          std::uint64_t seed) -> std::unique_ptr<Aqm> {
         return std::make_unique<StepRedAqm>(ecn, seed);
       }});
  entries_.push_back(
      {"pie",
       "RFC 8033-style PI controller on queue delay; marks ECT at or "
       "below ecn_threshold, drops otherwise",
       [](const AqmSpec& spec, const EcnConfig&, sim::Bandwidth line_rate,
          std::uint64_t seed) -> std::unique_ptr<Aqm> {
         return std::make_unique<PieAqm>(spec, line_rate, seed);
       }});
  entries_.push_back(
      {"pi2",
       "RFC 9332-style PI^2/L4S coupling: ECT marked with min(2p',1), "
       "not-ECT dropped with p'^2",
       [](const AqmSpec& spec, const EcnConfig&, sim::Bandwidth line_rate,
          std::uint64_t seed) -> std::unique_ptr<Aqm> {
         return std::make_unique<Pi2Aqm>(spec, line_rate, seed);
       }});
  entries_.push_back(
      {"codel",
       "RFC 8289-style CoDel on the sojourn estimate: after interval_us "
       "above target_us, shoot on the interval/sqrt(count) law (ECT "
       "marked, not-ECT dropped) — deterministic, no RNG",
       [](const AqmSpec& spec, const EcnConfig&, sim::Bandwidth line_rate,
          std::uint64_t) -> std::unique_ptr<Aqm> {
         return std::make_unique<CodelAqm>(spec, line_rate);
       }});
}

const AqmRegistry& AqmRegistry::instance() {
  static const AqmRegistry registry;
  return registry;
}

const AqmRegistry::Entry* AqmRegistry::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const AqmRegistry::Entry& AqmRegistry::at(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::invalid_argument("unknown AQM '" + name +
                                "'; known: " + joined_names());
  }
  return *e;
}

std::vector<std::string> AqmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::string AqmRegistry::joined_names() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace powertcp::net
