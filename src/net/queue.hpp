#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"

/// \file queue.hpp
/// Egress queueing disciplines: FIFO, strict priority (HOMA), and
/// per-destination virtual output queues (reconfigurable DCN ToRs).

namespace powertcp::net {

/// Interface for an egress buffer. `pop` surrenders ownership of the
/// selected packet; `peek_next` must agree with the packet `pop` would
/// return (used to compute serialization time before committing).
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  virtual void push(Packet pkt) = 0;
  virtual std::optional<Packet> pop() = 0;
  virtual const Packet* peek_next() const = 0;
  virtual std::int64_t bytes() const = 0;
  virtual std::size_t packets() const = 0;
  bool empty() const { return packets() == 0; }

  /// True iff selection order is insensitive to packets arriving between
  /// pops: popping k packets back-to-back yields the same k packets, in
  /// the same order, as popping them interleaved with arbitrary pushes.
  /// A port may then pre-select a whole transmission train (burst drain)
  /// without changing which packets go on the wire. Priority disciplines
  /// must return false — a high-band arrival mid-train would preempt.
  virtual bool strict_fifo() const { return false; }
};

/// Plain FIFO over an index-linked node arena. A deque of ~350-byte
/// Packets puts one element per block on libstdc++, i.e. one heap
/// allocation per push — the arena grows to the backlog high-water mark
/// once and then recycles, keeping the per-packet path allocation-free.
/// Freed nodes are reused LIFO so a push lands on the cache lines the
/// preceding pop just touched (the behavior malloc's tcache gave the
/// deque) instead of cycling through cold storage.
class FifoQueue final : public QueueDiscipline {
 public:
  void push(Packet pkt) override;
  std::optional<Packet> pop() override;
  const Packet* peek_next() const override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return count_; }
  bool strict_fifo() const override { return true; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  struct Node {
    Packet pkt;
    std::uint32_t next = kNil;
  };

  std::vector<Node> arena_;
  std::uint32_t free_head_ = kNil;  ///< LIFO freelist of arena slots
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t count_ = 0;
  std::int64_t bytes_ = 0;
};

/// Strict-priority bands (0 = highest). HOMA maps unscheduled/scheduled
/// traffic onto these; acks and grants ride band 0.
class PriorityQueue final : public QueueDiscipline {
 public:
  explicit PriorityQueue(int bands = 8);

  void push(Packet pkt) override;
  std::optional<Packet> pop() override;
  const Packet* peek_next() const override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return packets_; }

  /// Backlog of one band, maintained as a counter (O(1); this used to
  /// scan the band's packets on every call).
  std::int64_t band_bytes(int band) const {
    return band_bytes_.at(static_cast<std::size_t>(band));
  }

 private:
  std::vector<std::deque<Packet>> bands_;
  std::vector<std::int64_t> band_bytes_;
  std::int64_t bytes_ = 0;
  std::size_t packets_ = 0;
};

/// Per-destination-ToR virtual output queues shared between the circuit
/// port and the packet-network uplink of an RDCN ToR. Both ports pull
/// from this set; the selector policy lives in the ports.
class VoqSet {
 public:
  /// `classify` maps a packet's destination node to a VOQ index
  /// (destination ToR).
  VoqSet(int n_queues, std::function<int(NodeId)> classify);

  void push(Packet pkt);
  std::optional<Packet> pop_from(int voq);
  const Packet* peek(int voq) const;

  std::int64_t voq_bytes(int voq) const { return voq_bytes_[static_cast<size_t>(voq)]; }
  std::int64_t total_bytes() const { return total_bytes_; }
  std::size_t total_packets() const { return total_packets_; }
  int size() const { return static_cast<int>(queues_.size()); }
  int classify(NodeId dst) const { return classify_(dst); }

 private:
  std::vector<std::deque<Packet>> queues_;
  std::vector<std::int64_t> voq_bytes_;
  std::int64_t total_bytes_ = 0;
  std::size_t total_packets_ = 0;
  std::function<int(NodeId)> classify_;
};

}  // namespace powertcp::net
