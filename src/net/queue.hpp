#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"

/// \file queue.hpp
/// Egress queueing disciplines: FIFO, strict priority (HOMA), and
/// per-destination virtual output queues (reconfigurable DCN ToRs).

namespace powertcp::net {

/// Interface for an egress buffer. `pop` surrenders ownership of the
/// selected packet; `peek_next` must agree with the packet `pop` would
/// return (used to compute serialization time before committing).
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  virtual void push(Packet pkt) = 0;
  virtual std::optional<Packet> pop() = 0;
  virtual const Packet* peek_next() const = 0;
  virtual std::int64_t bytes() const = 0;
  virtual std::size_t packets() const = 0;
  bool empty() const { return packets() == 0; }
};

/// Plain FIFO.
class FifoQueue final : public QueueDiscipline {
 public:
  void push(Packet pkt) override;
  std::optional<Packet> pop() override;
  const Packet* peek_next() const override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return q_.size(); }

 private:
  std::deque<Packet> q_;
  std::int64_t bytes_ = 0;
};

/// Strict-priority bands (0 = highest). HOMA maps unscheduled/scheduled
/// traffic onto these; acks and grants ride band 0.
class PriorityQueue final : public QueueDiscipline {
 public:
  explicit PriorityQueue(int bands = 8);

  void push(Packet pkt) override;
  std::optional<Packet> pop() override;
  const Packet* peek_next() const override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return packets_; }

  std::int64_t band_bytes(int band) const;

 private:
  std::vector<std::deque<Packet>> bands_;
  std::int64_t bytes_ = 0;
  std::size_t packets_ = 0;
};

/// Per-destination-ToR virtual output queues shared between the circuit
/// port and the packet-network uplink of an RDCN ToR. Both ports pull
/// from this set; the selector policy lives in the ports.
class VoqSet {
 public:
  /// `classify` maps a packet's destination node to a VOQ index
  /// (destination ToR).
  VoqSet(int n_queues, std::function<int(NodeId)> classify);

  void push(Packet pkt);
  std::optional<Packet> pop_from(int voq);
  const Packet* peek(int voq) const;

  std::int64_t voq_bytes(int voq) const { return voq_bytes_[static_cast<size_t>(voq)]; }
  std::int64_t total_bytes() const { return total_bytes_; }
  std::size_t total_packets() const { return total_packets_; }
  int size() const { return static_cast<int>(queues_.size()); }
  int classify(NodeId dst) const { return classify_(dst); }

 private:
  std::vector<std::deque<Packet>> queues_;
  std::vector<std::int64_t> voq_bytes_;
  std::int64_t total_bytes_ = 0;
  std::size_t total_packets_ = 0;
  std::function<int(NodeId)> classify_;
};

}  // namespace powertcp::net
