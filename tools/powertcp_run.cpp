/// powertcp_run — the unified, config-file-driven experiment runner.
///
///   powertcp_run [--threads=N] [--csv=FILE] [--json=FILE] CONFIG...
///   powertcp_run --schemes
///
/// Each CONFIG is an INI/TOML-subset experiment definition (see
/// configs/ for the per-figure quick-scale setups and
/// docs/reproducing.md for the key reference). Tables print as text
/// and accumulate into the optional CSV/JSON outputs; independent
/// simulation points run on the --threads pool and the output is
/// byte-identical for every thread count.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cc/registry.hpp"
#include "harness/bench_opts.hpp"
#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/scenario_registry.hpp"
#include "harness/shard_setup.hpp"

using namespace powertcp;

namespace {

const char* kUsage =
    "usage: powertcp_run [options] CONFIG...\n"
    "  --threads=N  run independent simulation points on N threads\n"
    "               (results are identical for every N)\n"
    "  --csv=FILE   append long-format CSV rows (table,point,metric,value)\n"
    "  --json=FILE  write all result tables as one JSON document\n"
    "  --telemetry  arm the flight recorder even when the config has no\n"
    "               [telemetry] enabled = true (adds *_flight tables;\n"
    "               never changes the other tables' values)\n"
    "  --sim-burst=on|off\n"
    "               override [experiment] sim_burst: burst-granular\n"
    "               event processing (off is byte-identical to the\n"
    "               per-packet engine; on never changes table values)\n"
    "  --sim-threads=N\n"
    "               override [experiment] sim_threads: shard each\n"
    "               simulation point across N cores (conservative\n"
    "               lookahead; byte-identical for every N). Composes\n"
    "               with --threads: the sweep pool shrinks to\n"
    "               max(1, threads / N) so total concurrency stays\n"
    "               near --threads\n"
    "  --schemes    list registered schemes, their tunables and\n"
    "               topology needs, then exit\n"
    "  --kinds      list registered scenario kinds and their\n"
    "               [topology]/[workload] keys, then exit\n"
    "  --help       this message\n"
    "CONFIG files define [experiment]/[topology]/[workload]/[cc.*]\n"
    "sections; `kind = <name>` under [experiment] picks any registered\n"
    "scenario kind. See configs/ and docs/reproducing.md.\n";

void list_kinds() {
  for (const auto& kind : harness::ScenarioRegistry::instance().entries()) {
    std::printf("%s\n  %s\n", kind.name.c_str(), kind.summary.c_str());
    if (!kind.topology_keys.empty()) {
      std::printf("  [topology] %s\n", kind.topology_keys.c_str());
    }
    if (!kind.workload_keys.empty()) {
      std::printf("  [workload] %s\n", kind.workload_keys.c_str());
    }
    std::printf("\n");
  }
}

void list_schemes() {
  for (const auto& scheme : cc::Registry::instance().schemes()) {
    std::printf("%s\n  %s\n", scheme.name.c_str(), scheme.summary.c_str());
    std::string needs;
    if (scheme.needs.priority_bands > 0) {
      needs += std::to_string(scheme.needs.priority_bands) +
               " fabric priority bands";
    }
    if (scheme.needs.circuit_schedule) {
      if (!needs.empty()) needs += ", ";
      needs += "a CircuitSchedule (RDCN topologies)";
    }
    if (scheme.needs.ecn.enabled) {
      if (!needs.empty()) needs += ", ";
      needs += "ECN marking";
    }
    if (scheme.message_transport) {
      if (!needs.empty()) needs += ", ";
      needs += "receiver-driven message transport";
    }
    if (!needs.empty()) std::printf("  needs: %s\n", needs.c_str());
    for (const auto& p : scheme.params) {
      std::printf("    %-22s %10s  %s\n", p.key.c_str(),
                  p.default_value.c_str(), p.description.c_str());
    }
    std::printf("\n");
  }
}

bool take_value(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions opts;
  harness::RunnerLoadOptions load_opts;
  std::vector<std::string> configs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (take_value(arg, "--threads", &value)) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 4096) {
        std::fprintf(stderr, "powertcp_run: bad --threads value '%s'\n",
                     value.c_str());
        return 2;
      }
      opts.threads = static_cast<int>(n);
    } else if (take_value(arg, "--csv", &value)) {
      opts.csv_path = value;
    } else if (take_value(arg, "--json", &value)) {
      opts.json_path = value;
    } else if (std::strcmp(arg, "--telemetry") == 0) {
      load_opts.force_telemetry = true;
    } else if (take_value(arg, "--sim-threads", &value)) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 64) {
        std::fprintf(stderr, "powertcp_run: bad --sim-threads value '%s'\n",
                     value.c_str());
        return 2;
      }
      load_opts.force_sim_threads = static_cast<int>(n);
    } else if (take_value(arg, "--sim-burst", &value)) {
      if (value == "on") {
        load_opts.force_burst = 1;
      } else if (value == "off") {
        load_opts.force_burst = -1;
      } else {
        std::fprintf(stderr,
                     "powertcp_run: bad --sim-burst value '%s' (on|off)\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--schemes") == 0) {
      list_schemes();
      return 0;
    } else if (std::strcmp(arg, "--kinds") == 0) {
      list_kinds();
      return 0;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "powertcp_run: unknown flag '%s'\n%s", arg,
                   kUsage);
      return 2;
    } else {
      configs.push_back(arg);
    }
  }
  if (configs.empty()) {
    std::fprintf(stderr, "powertcp_run: no config file given\n%s", kUsage);
    return 2;
  }

  // Keep total concurrency near --threads when each point itself runs
  // sharded: N simulation threads per point leave threads/N pool slots.
  if (load_opts.force_sim_threads > 1) {
    opts.threads = std::max(1, opts.threads / load_opts.force_sim_threads);
  }

  harness::BenchReporter reporter("powertcp_run", opts);
  for (const auto& path : configs) {
    try {
      const auto file = harness::ConfigFile::parse_file(path);
      const auto cfg = harness::load_runner_config(
          file, harness::ScenarioRegistry::instance(), load_opts);
      for (auto& table : harness::run_config(cfg, reporter.runner())) {
        reporter.add(std::move(table));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "powertcp_run: %s\n", e.what());
      return 2;
    }
  }
  // Fallback visibility: points whose boundary-ambiguity detector fired
  // were rerun on the sequential engine (same bytes, none of the
  // speedup). Surface the count so "sharded but silently sequential"
  // can't hide — the shipped configs are expected to report 0 now that
  // the tie-token orders cross-shard ties exactly.
  const std::uint64_t fallbacks =
      harness::shard_fallback_count().load(std::memory_order_relaxed);
  reporter.set_shard_fallbacks(fallbacks);
  if (fallbacks > 0) {
    std::fprintf(stderr,
                 "powertcp_run: %llu simulation point(s) fell back to the "
                 "sequential engine (boundary ambiguity; results exact)\n",
                 static_cast<unsigned long long>(fallbacks));
  }
  return reporter.finish();
}
