/// Receiver-side ack aggregation: in-order progress defers to one
/// cumulative ack per window; anything go-back-N cares about — a
/// non-advancing duplicate (the dup-ack signal), completion, a replay
/// inside the retirement grace window — flushes immediately. ECN marks
/// on deferred packets echo sticky so aggregation never hides a
/// congestion signal.

#include "host/host.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/egress_port.hpp"

namespace powertcp::host {
namespace {

/// Captures every ack the receiver's NIC delivers.
class AckSink final : public net::Node {
 public:
  AckSink(sim::Simulator& simulator, net::NodeId id)
      : net::Node(id, "ack-sink"), sim_(simulator) {}

  void receive(net::Packet pkt, int /*in_port*/) override {
    acks.push_back({sim_.now(), std::move(pkt)});
  }

  struct Arrival {
    sim::TimePs t;
    net::Packet pkt;
  };
  std::vector<Arrival> acks;

 private:
  sim::Simulator& sim_;
};

net::Packet data_pkt(net::FlowId flow, std::int64_t seq,
                     std::int64_t message_bytes, std::int64_t ack_echo = 0) {
  net::Packet p;
  p.flow = flow;
  p.type = net::PacketType::kData;
  p.seq = seq;
  p.payload_bytes = 1000;
  p.message_bytes = message_bytes;
  p.ack_seq = ack_echo;
  return p;
}

struct AckAggFixture : ::testing::Test {
  sim::Simulator simulator;
  Host receiver{simulator, 1, "rx"};
  AckSink sink{simulator, 2};

  AckAggFixture() {
    auto port = std::make_unique<net::BasicPort>(
        simulator, sim::Bandwidth::gbps(100), 0,
        std::make_unique<net::FifoQueue>());
    port->set_peer(&sink, 0);
    receiver.attach_port(std::move(port));
  }

  void deliver(net::Packet pkt) { receiver.receive(std::move(pkt), 0); }
};

TEST_F(AckAggFixture, WindowZeroAcksEveryPacket) {
  for (int i = 0; i < 3; ++i) deliver(data_pkt(7, i * 1000, 100'000));
  simulator.run();
  ASSERT_EQ(sink.acks.size(), 3u);
  EXPECT_EQ(sink.acks[2].pkt.ack_seq, 3000);
}

TEST_F(AckAggFixture, InOrderProgressCoalescesToOneCumulativeAck) {
  receiver.set_ack_agg_window(sim::microseconds(10));
  for (int i = 0; i < 4; ++i) deliver(data_pkt(7, i * 1000, 100'000));
  simulator.run_until(sim::microseconds(5));
  EXPECT_EQ(sink.acks.size(), 0u) << "acks deferred inside the window";
  simulator.run();
  ASSERT_EQ(sink.acks.size(), 1u);
  EXPECT_EQ(sink.acks[0].pkt.ack_seq, 4000);
  EXPECT_EQ(sink.acks[0].pkt.type, net::PacketType::kAck);
}

TEST_F(AckAggFixture, DuplicateFlushesImmediatelyForGoBackN) {
  receiver.set_ack_agg_window(sim::microseconds(10));
  deliver(data_pkt(7, 0, 100'000));
  deliver(data_pkt(7, 1000, 100'000));
  // The retransmitted duplicate must produce its dup-ack NOW — go-
  // back-N reads repeated edges as the loss signal — and the deferred
  // cumulative ack is subsumed by it, not sent later.
  deliver(data_pkt(7, 1000, 100'000));
  simulator.run_until(sim::microseconds(1));
  ASSERT_EQ(sink.acks.size(), 1u) << "dup-ack must not wait for the window";
  EXPECT_EQ(sink.acks[0].pkt.ack_seq, 2000);
  simulator.run();
  EXPECT_EQ(sink.acks.size(), 1u) << "deferred ack was subsumed";
}

TEST_F(AckAggFixture, CompletionFlushesImmediately) {
  receiver.set_ack_agg_window(sim::microseconds(10));
  deliver(data_pkt(7, 0, 3000));
  deliver(data_pkt(7, 1000, 3000));
  deliver(data_pkt(7, 2000, 3000));  // completes the 3000-byte flow
  simulator.run_until(sim::microseconds(1));
  ASSERT_EQ(sink.acks.size(), 1u);
  EXPECT_EQ(sink.acks[0].pkt.ack_seq, 3000);
  simulator.run();
  EXPECT_EQ(sink.acks.size(), 1u) << "no stale deferred ack after the flush";
}

TEST_F(AckAggFixture, ReplayInsideGraceWindowGetsImmediateFullAck) {
  // The race the retirement grace period exists for: the sender's RTO
  // replays the tail of a completed flow while the receiver still
  // holds state. The replay is non-advancing AND completing — it must
  // be answered immediately with the full edge, aggregation armed or
  // not, or the sender would stall a whole window on a flow it already
  // finished.
  receiver.set_ack_agg_window(sim::microseconds(10));
  deliver(data_pkt(7, 0, 2000));
  deliver(data_pkt(7, 1000, 2000));  // completes; immediate ack, grace armed
  ASSERT_EQ(receiver.active_receivers(), 1u);
  simulator.run_until(sim::microseconds(500));  // well inside kReceiverGrace
  ASSERT_EQ(sink.acks.size(), 1u);
  deliver(data_pkt(7, 1000, 2000, /*ack_echo=*/1000));  // the RTO replay
  simulator.run_until(sim::microseconds(501));
  ASSERT_EQ(sink.acks.size(), 2u) << "replay answered without deferral";
  EXPECT_EQ(sink.acks[1].pkt.ack_seq, 2000);
  EXPECT_EQ(receiver.active_receivers(), 1u) << "state retained for grace";
  simulator.run();
  EXPECT_EQ(receiver.active_receivers(), 0u) << "state retired after grace";
  EXPECT_EQ(sink.acks.size(), 2u);
}

TEST_F(AckAggFixture, EcnEchoIsStickyAcrossDeferredPackets) {
  receiver.set_ack_agg_window(sim::microseconds(10));
  net::Packet marked = data_pkt(7, 0, 100'000);
  marked.ecn_marked = true;
  deliver(std::move(marked));
  deliver(data_pkt(7, 1000, 100'000));  // unmarked, becomes the template
  simulator.run();
  ASSERT_EQ(sink.acks.size(), 1u);
  EXPECT_TRUE(sink.acks[0].pkt.ecn_echo)
      << "a deferred CE mark must survive into the cumulative ack";
}

TEST_F(AckAggFixture, FlushTimerReArmsForLaterProgress) {
  receiver.set_ack_agg_window(sim::microseconds(10));
  deliver(data_pkt(7, 0, 100'000));
  simulator.run_until(sim::microseconds(50));
  ASSERT_EQ(sink.acks.size(), 1u);
  EXPECT_EQ(sink.acks[0].pkt.ack_seq, 1000);
  // New progress after a quiet gap opens a fresh window.
  deliver(data_pkt(7, 1000, 100'000));
  simulator.run();
  ASSERT_EQ(sink.acks.size(), 2u);
  EXPECT_EQ(sink.acks[1].pkt.ack_seq, 2000);
}

}  // namespace
}  // namespace powertcp::host
