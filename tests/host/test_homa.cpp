#include "host/homa.hpp"

#include <gtest/gtest.h>

#include "host/host.hpp"
#include "net/network.hpp"
#include "topo/dumbbell.hpp"

namespace powertcp::host {
namespace {

struct HomaFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::DumbbellConfig cfg;
  std::unique_ptr<topo::Dumbbell> topo;
  HomaConfig hc;

  void build(int senders = 2, int overcommit = 1) {
    cfg.n_senders = senders;
    cfg.priority_bands = 8;
    topo = std::make_unique<topo::Dumbbell>(network, cfg);
    hc.rtt_bytes = cfg.host_bw.bdp_bytes(topo->base_rtt());
    hc.overcommit = overcommit;
    for (int i = 0; i < senders; ++i) topo->sender(i).enable_homa(hc);
    topo->receiver().enable_homa(hc);
  }
};

TEST_F(HomaFixture, SmallMessageDeliversFully) {
  build();
  MessageCompletion done{};
  topo->receiver().homa()->set_message_callback(
      [&done](const MessageCompletion& c) { done = c; });
  topo->sender(0).homa()->send_message(1, topo->receiver().id(), 5'000);
  simulator.run_until(sim::milliseconds(1));
  EXPECT_EQ(done.message, 1u);
  EXPECT_EQ(done.size_bytes, 5'000);
  EXPECT_GT(done.finish, done.start);
}

TEST_F(HomaFixture, LargeMessageNeedsGrantsAndCompletes) {
  build();
  MessageCompletion done{};
  topo->receiver().homa()->set_message_callback(
      [&done](const MessageCompletion& c) { done = c; });
  const std::int64_t size = 20 * hc.rtt_bytes;
  topo->sender(0).homa()->send_message(1, topo->receiver().id(), size);
  simulator.run_until(sim::milliseconds(10));
  EXPECT_EQ(done.size_bytes, size);
  // Sender state must be cleaned up by the final grant.
  EXPECT_EQ(topo->sender(0).homa()->active_outgoing(), 0);
  EXPECT_EQ(topo->receiver().homa()->active_incoming(), 0);
}

TEST_F(HomaFixture, UnscheduledPriorityTracksMessageSize) {
  build();
  HomaTransport* t = topo->sender(0).homa();
  EXPECT_LT(t->unscheduled_priority(5'000),
            t->unscheduled_priority(100'000));
  EXPECT_LE(t->unscheduled_priority(100'000),
            t->unscheduled_priority(50'000'000));
  EXPECT_GE(t->unscheduled_priority(1'000), 1);  // band 0 is for grants
}

TEST_F(HomaFixture, SrptFavorsShortMessages) {
  // Start a long message, then a short one: the short one must finish
  // well before the long one despite arriving later.
  build(2);
  sim::TimePs long_done = 0, short_done = 0;
  topo->receiver().homa()->set_message_callback(
      [&](const MessageCompletion& c) {
        if (c.message == 1) long_done = c.finish;
        if (c.message == 2) short_done = c.finish;
      });
  topo->sender(0).homa()->send_message(1, topo->receiver().id(),
                                       5'000'000);
  simulator.schedule_at(sim::microseconds(100), [this] {
    topo->sender(1).homa()->send_message(2, topo->receiver().id(),
                                         200'000);
  });
  simulator.run_until(sim::milliseconds(20));
  ASSERT_GT(long_done, 0);
  ASSERT_GT(short_done, 0);
  EXPECT_LT(short_done, long_done);
}

TEST_F(HomaFixture, OvercommitGrantsMultipleSendersConcurrently) {
  build(3, /*overcommit=*/3);
  int completed = 0;
  topo->receiver().homa()->set_message_callback(
      [&completed](const MessageCompletion&) { ++completed; });
  for (int i = 0; i < 3; ++i) {
    topo->sender(i).homa()->send_message(static_cast<net::FlowId>(i + 1),
                                         topo->receiver().id(),
                                         30 * hc.rtt_bytes);
  }
  simulator.run_until(sim::milliseconds(20));
  EXPECT_EQ(completed, 3);
}

TEST_F(HomaFixture, CompletionsArriveWithOvercommitOne) {
  build(3, /*overcommit=*/1);
  int completed = 0;
  topo->receiver().homa()->set_message_callback(
      [&completed](const MessageCompletion&) { ++completed; });
  for (int i = 0; i < 3; ++i) {
    topo->sender(i).homa()->send_message(static_cast<net::FlowId>(i + 1),
                                         topo->receiver().id(),
                                         30 * hc.rtt_bytes);
  }
  simulator.run_until(sim::milliseconds(30));
  EXPECT_EQ(completed, 3);
}

TEST_F(HomaFixture, RecoversFromBufferDrops) {
  cfg.buffer_bytes = 15'000;  // tiny switch buffer
  build(4);
  int completed = 0;
  topo->receiver().homa()->set_message_callback(
      [&completed](const MessageCompletion&) { ++completed; });
  // Four synchronized senders overwhelm the bottleneck's buffer.
  for (int i = 0; i < 4; ++i) {
    topo->sender(i).homa()->send_message(static_cast<net::FlowId>(i + 1),
                                         topo->receiver().id(), 100'000);
  }
  simulator.run_until(sim::milliseconds(100));
  EXPECT_GT(topo->bottleneck_switch().total_drops(), 0u);
  EXPECT_EQ(completed, 4) << "resend requests must fill the holes";
}

TEST_F(HomaFixture, MessageStartEchoedFromSender) {
  build();
  MessageCompletion done{};
  topo->receiver().homa()->set_message_callback(
      [&done](const MessageCompletion& c) { done = c; });
  simulator.schedule_at(sim::microseconds(77), [this] {
    topo->sender(0).homa()->send_message(9, topo->receiver().id(), 2'000);
  });
  simulator.run_until(sim::milliseconds(1));
  EXPECT_EQ(done.start, sim::microseconds(77));
}

}  // namespace
}  // namespace powertcp::host
