#include "host/flow.hpp"

#include <gtest/gtest.h>

#include "cc/factory.hpp"
#include "host/host.hpp"
#include "net/network.hpp"
#include "topo/dumbbell.hpp"

namespace powertcp::host {
namespace {

struct FlowFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::DumbbellConfig cfg;

  std::unique_ptr<topo::Dumbbell> topo;
  cc::FlowParams params;

  void build(int senders = 2) {
    cfg.n_senders = senders;
    topo = std::make_unique<topo::Dumbbell>(network, cfg);
    params.host_bw = cfg.host_bw;
    params.base_rtt = topo->base_rtt();
    params.expected_flows = 4;
  }

  FlowSender& start(int sender, net::FlowId id, std::int64_t size,
                    const std::string& algo = "powertcp",
                    sim::TimePs at = 0,
                    CompletionCallback cb = nullptr) {
    const cc::CcFactory f = cc::make_factory(algo);
    return topo->sender(sender).start_flow(id, topo->receiver().id(), size,
                                           f(params), params, at,
                                           std::move(cb));
  }
};

TEST_F(FlowFixture, SingleFlowCompletesAndReportsFct) {
  build();
  FlowCompletion done{};
  start(0, 1, 100'000, "powertcp", sim::microseconds(5),
        [&done](const FlowCompletion& c) { done = c; });
  simulator.run_until(sim::milliseconds(5));
  EXPECT_EQ(done.flow, 1u);
  EXPECT_EQ(done.size_bytes, 100'000);
  EXPECT_EQ(done.start, sim::microseconds(5));
  // Must take at least the line-rate transfer time plus one RTT.
  const sim::TimePs floor_fct =
      cfg.host_bw.tx_time(100'000) + topo->base_rtt();
  EXPECT_GE(done.finish - done.start, floor_fct);
  // ... and shouldn't take more than 2x that in an idle network.
  EXPECT_LE(done.finish - done.start, 2 * floor_fct);
}

TEST_F(FlowFixture, ReachesLineRateGoodput) {
  build();
  std::int64_t received = 0;
  topo->receiver().set_data_callback(
      [&received](net::FlowId, std::int64_t bytes, sim::TimePs) {
        received += bytes;
      });
  start(0, 1, 10'000'000);
  simulator.run_until(sim::milliseconds(4));
  // 25G * (1000/1048 goodput share) over 4 ms ~ 11.4 MB >= flow size;
  // the flow must be done.
  EXPECT_EQ(received, 10'000'000);
}

TEST_F(FlowFixture, InflightNeverExceedsWindowPlusOnePacket) {
  build();
  start(0, 1, 5'000'000);
  bool violated = false;
  std::function<void()> probe = [&] {
    // Look the sender up each probe: the host sweeps it at completion.
    if (FlowSender* s = topo->sender(0).sender(1);
        s != nullptr && s->started() && !s->complete()) {
      if (static_cast<double>(s->inflight_bytes()) >
          std::max(s->cwnd_bytes(), 1048.0) + 1048.0) {
        violated = true;
      }
    }
    if (simulator.now() < sim::milliseconds(2)) {
      simulator.schedule_in(sim::microseconds(1), probe);
    }
  };
  simulator.schedule_at(0, probe);
  simulator.run_until(sim::milliseconds(2));
  EXPECT_FALSE(violated);
}

TEST_F(FlowFixture, CompletionCallbackFiresExactlyOnce) {
  build();
  int completions = 0;
  start(0, 1, 50'000, "powertcp", 0,
        [&completions](const FlowCompletion&) { ++completions; });
  simulator.run_until(sim::milliseconds(3));
  EXPECT_EQ(completions, 1);
}

TEST_F(FlowFixture, RecoversFromDropsViaGoBackN) {
  // Shrink the switch buffer so the initial line-rate burst overflows.
  cfg.buffer_bytes = 20'000;
  build(4);
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    start(i, static_cast<net::FlowId>(i + 1), 200'000, "powertcp", 0,
          [&completions](const FlowCompletion&) { ++completions; });
  }
  simulator.run_until(sim::milliseconds(50));
  EXPECT_GT(topo->bottleneck_switch().total_drops(), 0u);
  EXPECT_EQ(completions, 4) << "all flows must finish despite drops";
}

TEST_F(FlowFixture, TwoFlowsShareFairly) {
  build(2);
  std::array<std::int64_t, 2> got{0, 0};
  topo->receiver().set_data_callback(
      [&got](net::FlowId f, std::int64_t bytes, sim::TimePs) {
        got.at(f - 1) += bytes;
      });
  start(0, 1, 400'000'000);
  start(1, 2, 400'000'000);
  simulator.run_until(sim::milliseconds(8));
  const double ratio = static_cast<double>(got[0]) /
                       static_cast<double>(std::max<std::int64_t>(got[1], 1));
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST_F(FlowFixture, DistinctFlowsOnOneHostAreIndependent) {
  build(1);
  int completions = 0;
  start(0, 1, 30'000, "powertcp", 0,
        [&completions](const FlowCompletion&) { ++completions; });
  start(0, 2, 30'000, "powertcp", 0,
        [&completions](const FlowCompletion&) { ++completions; });
  EXPECT_NE(topo->sender(0).sender(1), nullptr);
  EXPECT_NE(topo->sender(0).sender(2), nullptr);
  EXPECT_EQ(topo->sender(0).sender(3), nullptr);
  simulator.run_until(sim::milliseconds(3));
  EXPECT_EQ(completions, 2);
}

TEST_F(FlowFixture, DuplicateFlowIdThrows) {
  build(1);
  start(0, 1, 1000);
  EXPECT_THROW(start(0, 1, 1000), std::invalid_argument);
}

TEST_F(FlowFixture, EveryAlgorithmCompletesASmallFlow) {
  build(1);
  int completions = 0;
  net::FlowId id = 1;
  for (const auto& name : cc::sender_cc_names()) {
    start(0, id++, 20'000, name, 0,
          [&completions](const FlowCompletion&) { ++completions; });
  }
  simulator.run_until(sim::milliseconds(20));
  EXPECT_EQ(completions, static_cast<int>(cc::sender_cc_names().size()));
}

TEST_F(FlowFixture, SubMssFlowCompletes) {
  build(1);
  int completions = 0;
  start(0, 1, 1, "powertcp", 0,
        [&completions](const FlowCompletion&) { ++completions; });
  simulator.run_until(sim::milliseconds(1));
  EXPECT_EQ(completions, 1);
}

// ---- pacing quantum ------------------------------------------------

struct PacedRun {
  sim::TimePs fct = 0;
  std::int64_t received = 0;
  std::uint64_t events = 0;
};

/// One rate-paced (TIMELY) flow over an idle dumbbell under the given
/// sender config (nullptr = the host's default-constructed config).
PacedRun run_paced_flow(const FlowSenderConfig* cfg) {
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::DumbbellConfig dcfg;
  dcfg.n_senders = 1;
  topo::Dumbbell topo(network, dcfg);
  cc::FlowParams params;
  params.host_bw = dcfg.host_bw;
  params.base_rtt = topo.base_rtt();
  params.expected_flows = 1;
  if (cfg != nullptr) topo.sender(0).set_sender_config(*cfg);
  PacedRun out;
  topo.receiver().set_data_callback(
      [&out](net::FlowId, std::int64_t b, sim::TimePs) { out.received += b; });
  const cc::CcFactory f = cc::make_factory("timely");
  topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000, f(params),
                            params, 0, [&out](const FlowCompletion& c) {
                              out.fct = c.finish - c.start;
                            });
  simulator.run_until(sim::milliseconds(20));
  out.events = simulator.events_executed();
  return out;
}

TEST(PacingQuantum, ExplicitQuantumOneIsIdenticalToDefault) {
  // quantum = 1 IS the historical engine: setting it explicitly must
  // reproduce the default run event-for-event.
  const PacedRun dflt = run_paced_flow(nullptr);
  FlowSenderConfig one;
  one.pacing_quantum = 1;
  const PacedRun q1 = run_paced_flow(&one);
  EXPECT_GT(dflt.fct, 0);
  EXPECT_EQ(q1.fct, dflt.fct);
  EXPECT_EQ(q1.events, dflt.events);
  EXPECT_EQ(q1.received, dflt.received);
}

TEST(PacingQuantum, QuantumGroupsTimerTicksWithoutChangingGoodput) {
  FlowSenderConfig one;
  one.pacing_quantum = 1;
  FlowSenderConfig eight;
  eight.pacing_quantum = 8;
  const PacedRun q1 = run_paced_flow(&one);
  const PacedRun q8 = run_paced_flow(&eight);
  ASSERT_GT(q1.fct, 0);
  ASSERT_GT(q8.fct, 0);
  EXPECT_EQ(q8.received, q1.received);
  // Releasing 8 packets per timer tick retires most pacing-timer
  // events; the per-packet edge advance keeps the long-run rate, so
  // the transfer must not slow down materially.
  EXPECT_LT(q8.events, q1.events);
  EXPECT_LT(q8.fct, q1.fct + q1.fct / 2);
}

}  // namespace
}  // namespace powertcp::host
