/// Per-flow state lifecycle at short-flow churn scale: completed
/// senders are swept from Host::senders_, receiver state retires after
/// the quiet grace period, simulator slots/tombstones recycle, and
/// destructors cancel armed timers so teardown mid-run cannot dangle.

#include <gtest/gtest.h>

#include <memory>

#include "cc/factory.hpp"
#include "host/flow.hpp"
#include "host/host.hpp"
#include "net/network.hpp"
#include "topo/dumbbell.hpp"

namespace powertcp::host {
namespace {

struct LifecycleFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::DumbbellConfig cfg;
  std::unique_ptr<topo::Dumbbell> topo;
  cc::FlowParams params;
  cc::CcFactory factory = cc::make_factory("powertcp");

  void build(int senders = 2) {
    cfg.n_senders = senders;
    topo = std::make_unique<topo::Dumbbell>(network, cfg);
    params.host_bw = cfg.host_bw;
    params.base_rtt = topo->base_rtt();
    params.expected_flows = 8;
  }
};

TEST_F(LifecycleFixture, CompletedFlowStateReturnsToBaselineAfter10kFlows) {
  build(2);
  // 10 waves x 1000 flows of 5 KB across two senders. Waves are spaced
  // so each drains before the next; the final run extends past the
  // receiver grace period so retirement timers fire.
  constexpr int kWaves = 10;
  constexpr int kFlowsPerWave = 1000;
  constexpr std::int64_t kFlowBytes = 5'000;
  int completions = 0;
  net::FlowId next_id = 1;
  std::size_t slots_after_wave3 = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    const sim::TimePs wave_start = simulator.now();
    for (int i = 0; i < kFlowsPerWave; ++i) {
      topo->sender(i % 2).start_flow(
          next_id++, topo->receiver().id(), kFlowBytes, factory(params),
          params, wave_start + sim::microseconds(i / 4),
          [&completions](const FlowCompletion&) { ++completions; });
    }
    simulator.run_until(wave_start + sim::milliseconds(5));
    // Senders sweep at completion (no grace): the table must be empty
    // the moment the wave's flows are done.
    EXPECT_EQ(topo->sender(0).active_senders(), 0u) << "wave " << wave;
    EXPECT_EQ(topo->sender(1).active_senders(), 0u) << "wave " << wave;
    if (wave == 3) slots_after_wave3 = simulator.slot_count();
  }
  EXPECT_EQ(completions, kWaves * kFlowsPerWave);

  // Quiet period: receiver retirement fires, every timer drains.
  simulator.run();
  EXPECT_EQ(topo->receiver().active_receivers(), 0u)
      << "receiver state must retire after the grace period";
  EXPECT_EQ(topo->sender(0).active_receivers(), 0u);
  EXPECT_FALSE(simulator.pending());
  EXPECT_EQ(simulator.tombstones(), 0u);
  // Slot table is a high-water structure: identical waves must not grow
  // it after it stabilizes — flat per-flow memory at churn scale.
  ASSERT_GT(slots_after_wave3, 0u);
  EXPECT_LE(simulator.slot_count(), slots_after_wave3 * 2)
      << "slot table kept growing across identical waves (leak)";
  EXPECT_EQ(simulator.free_slot_count(), simulator.slot_count())
      << "every slot must be recycled once the run drains";
}

TEST_F(LifecycleFixture, SenderIsSweptAtCompletionAndIdBecomesReusable) {
  build(1);
  std::int64_t delivered = 0;
  topo->receiver().set_data_callback(
      [&delivered](net::FlowId, std::int64_t bytes, sim::TimePs) {
        delivered += bytes;
      });
  int completions = 0;
  topo->sender(0).start_flow(
      7, topo->receiver().id(), 50'000, factory(params), params, 0,
      [&completions](const FlowCompletion&) { ++completions; });
  EXPECT_NE(topo->sender(0).sender(7), nullptr);
  simulator.run_until(sim::milliseconds(2));
  ASSERT_EQ(completions, 1);
  EXPECT_EQ(delivered, 50'000);
  EXPECT_EQ(topo->sender(0).sender(7), nullptr) << "completed flow swept";
  EXPECT_EQ(topo->sender(0).active_senders(), 0u);
  // The swept id is free for a new flow (previously: permanent
  // duplicate-id error because completed senders were never erased).
  // Reused inside the receiver grace period with a different size: the
  // receiver detects the new incarnation, resets the stale state, and
  // the bytes are genuinely delivered (not phantom-acked off the old
  // cumulative edge).
  topo->sender(0).start_flow(
      7, topo->receiver().id(), 80'000, factory(params), params,
      simulator.now(), [&completions](const FlowCompletion&) { ++completions; });
  simulator.run_until(simulator.now() + sim::milliseconds(2));
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(delivered, 130'000) << "reused id must deliver real bytes";
  // Reuse after the grace period (state retired) is clean for any size,
  // including the same size as the original flow.
  simulator.run_until(simulator.now() + 2 * Host::kReceiverGrace);
  ASSERT_EQ(topo->receiver().active_receivers(), 0u);
  topo->sender(0).start_flow(
      7, topo->receiver().id(), 50'000, factory(params), params,
      simulator.now(), [&completions](const FlowCompletion&) { ++completions; });
  simulator.run_until(simulator.now() + sim::milliseconds(2));
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(delivered, 180'000);
}

TEST_F(LifecycleFixture, ReceiverStateRetiresAfterGracePeriodOnly) {
  build(1);
  int completions = 0;
  topo->sender(0).start_flow(
      1, topo->receiver().id(), 20'000, factory(params), params, 0,
      [&completions](const FlowCompletion&) { ++completions; });
  simulator.run_until(sim::milliseconds(1));
  ASSERT_EQ(completions, 1);
  // Within the grace window the state is retained (go-back-N replays
  // must see identical acks) ...
  EXPECT_EQ(topo->receiver().active_receivers(), 1u);
  // ... and after a quiet grace period it retires.
  simulator.run_until(simulator.now() + 2 * Host::kReceiverGrace);
  EXPECT_EQ(topo->receiver().active_receivers(), 0u);
}

TEST_F(LifecycleFixture, TeardownBeforeFlowStartCancelsTheStartEvent) {
  // The flow-start event captures the FlowSender. Destroying the
  // topology before the start time must cancel it — running the
  // simulator afterwards executes nothing (and does not crash).
  {
    net::Network net2(simulator);
    topo::Dumbbell t2(net2, cfg);
    cc::FlowParams p;
    p.host_bw = cfg.host_bw;
    p.base_rtt = t2.base_rtt();
    t2.sender(0).start_flow(1, t2.receiver().id(), 10'000,
                            factory(p), p, sim::milliseconds(1));
  }
  simulator.run();
  EXPECT_EQ(simulator.events_executed(), 0u);
}

TEST_F(LifecycleFixture, DestroyingAMidFlowSenderCancelsItsTimers) {
  build(1);
  // Drive a sender outside the host's table so it can be destroyed
  // mid-flow: its armed RTO/pacing timers capture `this` and must be
  // cancelled by the destructor, not left to fire into freed memory.
  auto rogue = std::make_unique<FlowSender>(topo->sender(0), 99,
                                            topo->receiver().id(), 1'000'000,
                                            factory(params), params);
  rogue->start();
  simulator.run_until(sim::microseconds(30));
  EXPECT_TRUE(rogue->started());
  EXPECT_FALSE(rogue->complete());
  rogue.reset();  // cancels RTO (and any pacing) timer
  simulator.run();  // drain in-flight packets; ASan would flag a dangle
  EXPECT_FALSE(simulator.pending());
}

}  // namespace
}  // namespace powertcp::host
