/// Config-driven runner coverage: the fig6 golden equivalence
/// (configs/fig6_quick.toml loads exactly the experiment bench_fig6_fct
/// runs), end-to-end thread-count byte-identity for every experiment
/// kind, the reTCP/HOMA topology wiring through run_config, and the
/// loader's rejection paths.

#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "harness/config.hpp"

#ifndef POWERTCP_SOURCE_DIR
#define POWERTCP_SOURCE_DIR "."
#endif

namespace powertcp::harness {
namespace {

std::string render_all(const std::vector<ResultTable>& tables) {
  std::string out;
  for (const auto& t : tables) {
    out += t.render_text();
    t.append_csv(out);
    t.append_json(out, 0);
    out += '\n';
  }
  return out;
}

void expect_same_config(const RunnerConfig& a, const RunnerConfig& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.slug_prefix, b.slug_prefix);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_DOUBLE_EQ(a.percentile, b.percentile);
  ASSERT_EQ(a.schemes.size(), b.schemes.size());
  for (std::size_t i = 0; i < a.schemes.size(); ++i) {
    EXPECT_EQ(a.schemes[i].display(), b.schemes[i].display());
    EXPECT_EQ(a.schemes[i].scheme, b.schemes[i].scheme);
    EXPECT_EQ(a.schemes[i].params, b.schemes[i].params);
  }
  EXPECT_EQ(a.fat_tree.duration, b.fat_tree.duration);
  EXPECT_EQ(a.fat_tree.seed, b.fat_tree.seed);
  EXPECT_DOUBLE_EQ(a.fat_tree.size_scale, b.fat_tree.size_scale);
  EXPECT_EQ(a.fat_tree.expected_flows, b.fat_tree.expected_flows);
  EXPECT_EQ(a.fat_tree.topo.pods, b.fat_tree.topo.pods);
  EXPECT_EQ(a.fat_tree.topo.servers_per_tor, b.fat_tree.topo.servers_per_tor);
  EXPECT_DOUBLE_EQ(a.fat_tree.topo.host_bw.bps(), b.fat_tree.topo.host_bw.bps());
  EXPECT_DOUBLE_EQ(a.fat_tree.topo.fabric_bw.bps(),
                   b.fat_tree.topo.fabric_bw.bps());
}

/// The golden-file link between the unified CLI and the figure bench:
/// parsing configs/fig6_quick.toml must yield the very RunnerConfig
/// bench_fig6_fct executes, so `powertcp_run configs/fig6_quick.toml`
/// and `./build/bench_fig6_fct` print identical tables.
TEST(RunnerGolden, Fig6ConfigMatchesBench) {
  const auto file = ConfigFile::parse_file(std::string(POWERTCP_SOURCE_DIR) +
                                           "/configs/fig6_quick.toml");
  const RunnerConfig from_config = load_runner_config(file);
  const RunnerConfig from_bench = fig6_runner_config(false, false);
  expect_same_config(from_config, from_bench);

  // And the spec both expand to is structurally the one bench_fig6
  // has always run: same slugs, titles, columns, and point configs.
  for (const double load : from_bench.loads) {
    const SweepSpec a =
        fct_sweep_spec(from_config.fat_tree, load, from_config.percentile,
                       from_config.schemes, from_config.slug_prefix);
    const SweepSpec b =
        fct_sweep_spec(from_bench.fat_tree, load, from_bench.percentile,
                       from_bench.schemes, from_bench.slug_prefix);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.slug, b.slug);
    EXPECT_EQ(a.value_columns, b.value_columns);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].cfg.cc, b.points[i].cfg.cc);
      EXPECT_EQ(a.points[i].cfg.cc_params, b.points[i].cfg.cc_params);
      EXPECT_DOUBLE_EQ(a.points[i].cfg.uplink_load,
                       b.points[i].cfg.uplink_load);
    }
  }
}

TEST(RunnerGolden, ShippedConfigsAllLoad) {
  for (const char* name : {"fig4_quick.toml", "fig6_quick.toml",
                           "fig7_load_sweep.toml", "fig8_quick.toml"}) {
    const auto file = ConfigFile::parse_file(
        std::string(POWERTCP_SOURCE_DIR) + "/configs/" + name);
    EXPECT_NO_THROW(load_runner_config(file)) << name;
  }
}

RunnerConfig mini_fat_tree_config() {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = fat_tree
slug = mini
schemes = powertcp, dctcp
seed = 7

[workload]
loads = 0.3
duration_ms = 2
size_scale = 0.05

[cc.powertcp]
gamma = 0.85
)",
                                      "mini.toml");
  return load_runner_config(file);
}

TEST(Runner, FatTreeConfigIsByteIdenticalAcrossThreadCounts) {
  const RunnerConfig cfg = mini_fat_tree_config();
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t3 = render_all(run_config(cfg, SweepRunner(3)));
  EXPECT_EQ(t1, t3);
  EXPECT_NE(t1.find("mini_load30"), std::string::npos);
  EXPECT_NE(t1.find("powertcp"), std::string::npos);
}

TEST(Runner, CalendarQueueProducesByteIdenticalTables) {
  // The event-queue backend is a pure data-structure swap: the whole
  // fat-tree experiment must render identical tables on the calendar
  // queue and the default binary heap.
  RunnerConfig heap_cfg = mini_fat_tree_config();
  RunnerConfig cal_cfg = mini_fat_tree_config();
  cal_cfg.fat_tree.sim_queue = sim::QueueKind::kCalendar;
  const SweepRunner runner(1);
  EXPECT_EQ(render_all(run_config(heap_cfg, runner)),
            render_all(run_config(cal_cfg, runner)));
}

TEST(Runner, SimQueueKeyParsesAndRejectsUnknownBackends) {
  const auto config_with = [](const std::string& queue_line) {
    return "[experiment]\nkind = fat_tree\nschemes = powertcp\n" +
           queue_line + "[workload]\nloads = 0.3\n";
  };
  const auto cal = load_runner_config(
      ConfigFile::parse(config_with("sim_queue = calendar\n"), "q.toml"));
  EXPECT_EQ(cal.fat_tree.sim_queue, sim::QueueKind::kCalendar);
  EXPECT_EQ(cal.incast.sim_queue, sim::QueueKind::kCalendar);
  EXPECT_EQ(cal.rdcn.sim_queue, sim::QueueKind::kCalendar);
  const auto heap =
      load_runner_config(ConfigFile::parse(config_with(""), "q.toml"));
  EXPECT_EQ(heap.fat_tree.sim_queue, sim::QueueKind::kBinaryHeap);
  EXPECT_THROW(load_runner_config(ConfigFile::parse(
                   config_with("sim_queue = wheel\n"), "q.toml")),
               ConfigError);
}

TEST(Runner, FatTreeConfigEqualsDirectlyBuiltSpec) {
  const RunnerConfig cfg = mini_fat_tree_config();
  const SweepRunner runner(1);
  const auto via_config = run_config(cfg, runner);
  ASSERT_EQ(via_config.size(), 1u);
  const ResultTable direct = runner.run(fct_sweep_spec(
      cfg.fat_tree, cfg.loads[0], cfg.percentile, cfg.schemes,
      cfg.slug_prefix));
  EXPECT_EQ(via_config[0].render_text(), direct.render_text());
}

TEST(Runner, RdcnConfigWiresReTcpToTheCircuitSchedule) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = rdcn
slug = minirdcn
schemes = retcp, powertcp

[topology]
preset = small
n_tors = 4
servers_per_tor = 2

[workload]
packet_gbps = 25
flow_mb = 40
horizon_ms = 1
bin_us = 50

[cc.retcp]
prebuffering_us = 300
)",
                                      "minirdcn.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t2 = render_all(run_config(cfg, SweepRunner(4)));
  EXPECT_EQ(t1, t2);  // thread-count independence
  // reTCP ran (no CircuitSchedule throw) and moved bytes: its goodput
  // column holds at least one positive bin.
  EXPECT_NE(t1.find("retcp gbps"), std::string::npos);
  EXPECT_NE(t1.find("minirdcn_timeseries"), std::string::npos);
  EXPECT_NE(t1.find("minirdcn_p99"), std::string::npos);
}

TEST(Runner, IncastConfigRunsMessageTransportViaRegistry) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = incast
slug = miniincast
schemes = powertcp, homa

[workload]
query_kb = 0
horizon_ms = 1
bin_us = 100

[cc.homa]
overcommit = 2
)",
                                      "miniincast.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t2 = render_all(run_config(cfg, SweepRunner(2)));
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1.find("homa gbps"), std::string::npos);
  EXPECT_NE(t1.find("miniincast_10to1"), std::string::npos);
}

TEST(Runner, LoaderRejectsUnknownSchemesKeysAndSections) {
  const auto load = [](const std::string& text) {
    return load_runner_config(ConfigFile::parse(text, "bad.toml"));
  };
  // Unknown scheme name.
  EXPECT_THROW(load("[experiment]\nschemes = warp-speed\n"), ConfigError);
  // Param not declared by the scheme.
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[cc.powertcp]\nwarp = 9\n"),
               ConfigError);
  // Unknown workload key.
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[workload]\nlods = 0.2\n"),
               ConfigError);
  // Unused section (typo'd scheme section).
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[cc.powertpc]\ngamma = 0.9\n"),
               ConfigError);
  // Bad kind, missing experiment, empty schemes.
  EXPECT_THROW(load("[experiment]\nkind = ring\nschemes = powertcp\n"),
               ConfigError);
  EXPECT_THROW(load("[workload]\nloads = 0.2\n"), ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = fat_tree\n"), ConfigError);
  // A query incast needs a positive fan-in (the query splits across
  // it); fan_in = 0 with query_kb > 0 must fail at load, not SIGFPE
  // in the scenario.
  EXPECT_THROW(load("[experiment]\nkind = incast\nschemes = powertcp\n"
                    "[workload]\nquery_kb = 100\nfan_in = 0\n"),
               ConfigError);
  // Message transports cannot run the RDCN scenario (registry check
  // fires inside run_config -> scenario).
  const auto cfg = load(
      "[experiment]\nkind = rdcn\nschemes = homa\n"
      "[topology]\npreset = small\n"
      "[workload]\nhorizon_ms = 1\n");
  EXPECT_THROW(run_config(cfg, SweepRunner(1)), std::invalid_argument);
}

TEST(Runner, QueryPointsGetUniqueSlugs) {
  // Two query sizes in one config must not shadow each other in the
  // CSV/JSON (the regression gate indexes tables by slug).
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = incast
schemes = powertcp

[workload]
query_kb = 500, 2000
fan_in = 8, 16
)",
                                      "slugs.toml");
  const RunnerConfig cfg = load_runner_config(file);
  IncastScenario a = cfg.incast;
  a.query_bytes = 500'000;
  a.fan_in = 8;
  IncastScenario b = cfg.incast;
  b.query_bytes = 2'000'000;
  b.fan_in = 16;
  // Slug generation is pure string work; shrink the simulations.
  a.horizon = b.horizon = sim::microseconds(200);
  const SweepRunner runner(1);
  const auto ta = incast_figure_table(runner, a, cfg.schemes, "fig4");
  const auto tb = incast_figure_table(runner, b, cfg.schemes, "fig4");
  EXPECT_EQ(ta.slug, "fig4_query500kb");
  EXPECT_EQ(tb.slug, "fig4_query2000kb");
}

TEST(Runner, SchemeAliasesRunOneSchemeTwice) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = fat_tree
schemes = fast-power, slow-power

[workload]
loads = 0.3

[cc.fast-power]
scheme = powertcp
gamma = 1.0

[cc.slow-power]
scheme = powertcp
gamma = 0.1
)",
                                      "alias.toml");
  const RunnerConfig cfg = load_runner_config(file);
  ASSERT_EQ(cfg.schemes.size(), 2u);
  EXPECT_EQ(cfg.schemes[0].display(), "fast-power");
  EXPECT_EQ(cfg.schemes[0].scheme, "powertcp");
  EXPECT_EQ(cfg.schemes[0].params.at("gamma"), "1.0");
  EXPECT_EQ(cfg.schemes[1].params.at("gamma"), "0.1");
}

}  // namespace
}  // namespace powertcp::harness
