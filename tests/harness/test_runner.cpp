/// Config-driven runner coverage: the fig5/fig6/fig9 golden
/// equivalences (each shipped config loads exactly the experiment its
/// figure bench runs), end-to-end thread-count byte-identity for every
/// scenario kind, the reTCP/HOMA topology wiring through run_config,
/// and the loader's rejection paths.

#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/config.hpp"

#ifndef POWERTCP_SOURCE_DIR
#define POWERTCP_SOURCE_DIR "."
#endif

namespace powertcp::harness {
namespace {

std::string render_all(const std::vector<ResultTable>& tables) {
  std::string out;
  for (const auto& t : tables) {
    out += t.render_text();
    t.append_csv(out);
    t.append_json(out, 0);
    out += '\n';
  }
  return out;
}

template <typename Kind>
const Kind& as_kind(const RunnerConfig& cfg) {
  const auto* kind = dynamic_cast<const Kind*>(cfg.scenario.get());
  if (kind == nullptr) {
    throw std::logic_error("RunnerConfig holds an unexpected scenario type");
  }
  return *kind;
}

void expect_same_schemes(const std::vector<SchemeRun>& a,
                         const std::vector<SchemeRun>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].display(), b[i].display());
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].params, b[i].params);
  }
}

void expect_same_fat_tree_config(const RunnerConfig& ca,
                                 const RunnerConfig& cb) {
  EXPECT_EQ(ca.kind, cb.kind);
  const FatTreeKindConfig& a = as_kind<FatTreeKindConfig>(ca);
  const FatTreeKindConfig& b = as_kind<FatTreeKindConfig>(cb);
  EXPECT_EQ(a.slug_prefix, b.slug_prefix);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_DOUBLE_EQ(a.percentile, b.percentile);
  expect_same_schemes(a.schemes, b.schemes);
  EXPECT_EQ(a.fat_tree.duration, b.fat_tree.duration);
  EXPECT_EQ(a.fat_tree.seed, b.fat_tree.seed);
  EXPECT_DOUBLE_EQ(a.fat_tree.size_scale, b.fat_tree.size_scale);
  EXPECT_EQ(a.fat_tree.expected_flows, b.fat_tree.expected_flows);
  EXPECT_EQ(a.fat_tree.topo.pods, b.fat_tree.topo.pods);
  EXPECT_EQ(a.fat_tree.topo.servers_per_tor, b.fat_tree.topo.servers_per_tor);
  EXPECT_DOUBLE_EQ(a.fat_tree.topo.host_bw.bps(),
                   b.fat_tree.topo.host_bw.bps());
  EXPECT_DOUBLE_EQ(a.fat_tree.topo.fabric_bw.bps(),
                   b.fat_tree.topo.fabric_bw.bps());
}

RunnerConfig load_shipped_config(const std::string& name) {
  return load_runner_config(ConfigFile::parse_file(
      std::string(POWERTCP_SOURCE_DIR) + "/configs/" + name));
}

/// The golden-file link between the unified CLI and the figure bench:
/// parsing configs/fig6_quick.toml must yield the very RunnerConfig
/// bench_fig6_fct executes, so `powertcp_run configs/fig6_quick.toml`
/// and `./build/bench_fig6_fct` print identical tables.
TEST(RunnerGolden, Fig6ConfigMatchesBench) {
  const RunnerConfig from_config = load_shipped_config("fig6_quick.toml");
  const RunnerConfig from_bench = fig6_runner_config(false, false);
  expect_same_fat_tree_config(from_config, from_bench);

  // And the spec both expand to is structurally the one bench_fig6
  // has always run: same slugs, titles, columns, and point configs.
  const FatTreeKindConfig& fa = as_kind<FatTreeKindConfig>(from_config);
  const FatTreeKindConfig& fb = as_kind<FatTreeKindConfig>(from_bench);
  for (const double load : fb.loads) {
    const SweepSpec a = fct_sweep_spec(fa.fat_tree, load, fa.percentile,
                                       fa.schemes, fa.slug_prefix);
    const SweepSpec b = fct_sweep_spec(fb.fat_tree, load, fb.percentile,
                                       fb.schemes, fb.slug_prefix);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.slug, b.slug);
    EXPECT_EQ(a.value_columns, b.value_columns);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].cfg.cc, b.points[i].cfg.cc);
      EXPECT_EQ(a.points[i].cfg.cc_params, b.points[i].cfg.cc_params);
      EXPECT_DOUBLE_EQ(a.points[i].cfg.uplink_load,
                       b.points[i].cfg.uplink_load);
    }
  }
}

/// configs/fig5_quick.toml loads the exact scenario
/// bench_fig5_fairness runs, and executing both yields byte-identical
/// tables — the pre-refactor bench output is pinned by the committed
/// bench/baselines/fig5.json gate in CI.
TEST(RunnerGolden, Fig5ConfigMatchesBench) {
  const RunnerConfig from_config = load_shipped_config("fig5_quick.toml");
  const RunnerConfig from_bench = fig5_runner_config();
  EXPECT_EQ(from_config.kind, "dumbbell");
  EXPECT_EQ(from_config.kind, from_bench.kind);
  const DumbbellKindConfig& a = as_kind<DumbbellKindConfig>(from_config);
  const DumbbellKindConfig& b = as_kind<DumbbellKindConfig>(from_bench);
  EXPECT_EQ(a.slug_prefix, b.slug_prefix);
  expect_same_schemes(a.schemes, b.schemes);
  EXPECT_EQ(a.dumbbell.flow_bytes, b.dumbbell.flow_bytes);
  EXPECT_EQ(a.dumbbell.stagger, b.dumbbell.stagger);
  EXPECT_EQ(a.dumbbell.horizon, b.dumbbell.horizon);
  EXPECT_EQ(a.dumbbell.bin, b.dumbbell.bin);
  EXPECT_EQ(a.dumbbell.row_stride, b.dumbbell.row_stride);
  EXPECT_DOUBLE_EQ(a.dumbbell.topo.host_bw.bps(),
                   b.dumbbell.topo.host_bw.bps());
  EXPECT_DOUBLE_EQ(a.dumbbell.topo.bottleneck_bw.bps(),
                   b.dumbbell.topo.bottleneck_bw.bps());

  const SweepRunner runner(2);
  EXPECT_EQ(render_all(run_config(from_config, runner)),
            render_all(run_config(from_bench, runner)));
}

/// configs/fig9_oc.toml loads the exact scenario bench_fig9_homa_oc
/// runs; a reduced-scale copy of both executes byte-identically (the
/// full-scale equivalence follows because run() is a pure function of
/// the compared fields).
TEST(RunnerGolden, Fig9ConfigMatchesBench) {
  const RunnerConfig from_config = load_shipped_config("fig9_oc.toml");
  const RunnerConfig from_bench = fig9_runner_config();
  EXPECT_EQ(from_config.kind, "homa_oc");
  EXPECT_EQ(from_config.kind, from_bench.kind);
  const HomaOcKindConfig& a = as_kind<HomaOcKindConfig>(from_config);
  const HomaOcKindConfig& b = as_kind<HomaOcKindConfig>(from_bench);
  EXPECT_EQ(a.slug_prefix, b.slug_prefix);
  expect_same_schemes(a.schemes, b.schemes);
  EXPECT_EQ(a.homa_oc.overcommit, b.homa_oc.overcommit);
  EXPECT_EQ(a.homa_oc.fan_in, b.homa_oc.fan_in);
  EXPECT_EQ(a.homa_oc.fairness.flow_bytes, b.homa_oc.fairness.flow_bytes);
  EXPECT_EQ(a.homa_oc.fairness.stagger, b.homa_oc.fairness.stagger);
  EXPECT_EQ(a.homa_oc.fairness.horizon, b.homa_oc.fairness.horizon);
  EXPECT_EQ(a.homa_oc.fairness.bin, b.homa_oc.fairness.bin);
  EXPECT_EQ(a.homa_oc.fairness.row_stride, b.homa_oc.fairness.row_stride);
  EXPECT_EQ(a.homa_oc.long_message_bytes, b.homa_oc.long_message_bytes);
  EXPECT_EQ(a.homa_oc.burst_message_bytes, b.homa_oc.burst_message_bytes);
  EXPECT_EQ(a.homa_oc.burst_at, b.homa_oc.burst_at);
  EXPECT_EQ(a.homa_oc.incast_horizon, b.homa_oc.incast_horizon);
  EXPECT_EQ(a.homa_oc.incast_bin, b.homa_oc.incast_bin);
  EXPECT_EQ(a.homa_oc.incast_topo.servers_per_tor,
            b.homa_oc.incast_topo.servers_per_tor);

  const auto reduced = [](const HomaOcKindConfig& src) {
    auto copy = std::make_shared<HomaOcKindConfig>(src);
    copy->homa_oc.overcommit = {1, 2};
    copy->homa_oc.fan_in = {4};
    copy->homa_oc.fairness.horizon = sim::milliseconds(1);
    copy->homa_oc.incast_horizon = sim::microseconds(600);
    RunnerConfig rc;
    rc.kind = "homa_oc";
    rc.scenario = std::move(copy);
    return rc;
  };
  const SweepRunner runner(2);
  EXPECT_EQ(render_all(run_config(reduced(a), runner)),
            render_all(run_config(reduced(b), runner)));
}

/// configs/fig2_reaction.toml loads the exact analytic curves
/// bench_fig2_reaction prints; both are cheap closed forms, so the
/// golden equivalence executes BOTH at full scale and compares every
/// byte. The paper's printed disambiguation numbers (voltage
/// 3.24/2.12/2.12, current 9/1/9) are pinned alongside.
TEST(RunnerGolden, Fig2ConfigMatchesBench) {
  const RunnerConfig from_config = load_shipped_config("fig2_reaction.toml");
  const RunnerConfig from_bench = fig2_runner_config();
  EXPECT_EQ(from_config.kind, "single_flow");
  EXPECT_EQ(from_config.kind, from_bench.kind);
  const SingleFlowKindConfig& a = as_kind<SingleFlowKindConfig>(from_config);
  const SingleFlowKindConfig& b = as_kind<SingleFlowKindConfig>(from_bench);
  EXPECT_EQ(a.slug_prefix, b.slug_prefix);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbps, b.bandwidth_gbps);
  EXPECT_DOUBLE_EQ(a.bdp_packets, b.bdp_packets);
  EXPECT_DOUBLE_EQ(a.packet_kb, b.packet_kb);
  EXPECT_DOUBLE_EQ(a.hold_queue_pkts, b.hold_queue_pkts);
  EXPECT_DOUBLE_EQ(a.hold_rate_x, b.hold_rate_x);
  EXPECT_DOUBLE_EQ(a.rate_max_x, b.rate_max_x);
  EXPECT_DOUBLE_EQ(a.queue_max_pkts, b.queue_max_pkts);
  EXPECT_DOUBLE_EQ(a.queue_step_pkts, b.queue_step_pkts);

  const SweepRunner runner(2);
  const auto tables = run_config(from_bench, runner);
  EXPECT_EQ(render_all(run_config(from_config, runner)),
            render_all(tables));

  // The three panels, by slug...
  ASSERT_EQ(tables.size(), 3u);
  EXPECT_EQ(tables[0].slug, "fig2_vs_rate");
  EXPECT_EQ(tables[1].slug, "fig2_vs_queue");
  EXPECT_EQ(tables[2].slug, "fig2_three_cases");
  // ...and Fig. 2c's paper numbers: voltage 3.24/2.12/2.12 cannot
  // separate case-2 vs case-3, current 9/1/9 cannot separate case-1
  // vs case-3, power (29.16/2.12/19.08) separates all three.
  const ResultTable& c = tables[2];
  ASSERT_EQ(c.rows.size(), 3u);
  const char* expected[3][3] = {{"3.24", "9.00", "29.16"},
                                {"2.12", "1.00", "2.12"},
                                {"2.12", "9.00", "19.08"}};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(c.rows[i].values.size(), 3u);
    for (int v = 0; v < 3; ++v) {
      EXPECT_EQ(c.rows[i].values[v].render(), expected[i][v])
          << "case " << i + 1 << " column " << c.value_columns[v];
    }
  }
}

TEST(RunnerGolden, ShippedConfigsAllLoad) {
  for (const char* name :
       {"fig2_reaction.toml", "fig4_quick.toml", "fig5_quick.toml",
        "fig6_quick.toml", "fig7_load_sweep.toml", "fig8_quick.toml",
        "fig9_oc.toml"}) {
    EXPECT_NO_THROW(load_shipped_config(name)) << name;
  }
}

RunnerConfig mini_fat_tree_config() {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = fat_tree
slug = mini
schemes = powertcp, dctcp
seed = 7

[workload]
loads = 0.3
duration_ms = 2
size_scale = 0.05

[cc.powertcp]
gamma = 0.85
)",
                                      "mini.toml");
  return load_runner_config(file);
}

TEST(Runner, FatTreeConfigIsByteIdenticalAcrossThreadCounts) {
  const RunnerConfig cfg = mini_fat_tree_config();
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t3 = render_all(run_config(cfg, SweepRunner(3)));
  EXPECT_EQ(t1, t3);
  EXPECT_NE(t1.find("mini_load30"), std::string::npos);
  EXPECT_NE(t1.find("powertcp"), std::string::npos);
}

TEST(Runner, CalendarQueueProducesByteIdenticalTables) {
  // The event-queue backend is a pure data-structure swap: the whole
  // fat-tree experiment must render identical tables on the calendar
  // queue and the default binary heap.
  const RunnerConfig heap_cfg = mini_fat_tree_config();
  RunnerConfig cal_cfg = mini_fat_tree_config();
  auto cal =
      std::make_shared<FatTreeKindConfig>(as_kind<FatTreeKindConfig>(cal_cfg));
  cal->fat_tree.sim_queue = sim::QueueKind::kCalendar;
  cal_cfg.scenario = std::move(cal);
  const SweepRunner runner(1);
  EXPECT_EQ(render_all(run_config(heap_cfg, runner)),
            render_all(run_config(cal_cfg, runner)));
}

TEST(Runner, SimQueueKeyParsesAndRejectsUnknownBackends) {
  const auto config_with = [](const std::string& queue_line) {
    return "[experiment]\nkind = fat_tree\nschemes = powertcp\n" +
           queue_line + "[workload]\nloads = 0.3\n";
  };
  const auto cal = load_runner_config(
      ConfigFile::parse(config_with("sim_queue = calendar\n"), "q.toml"));
  EXPECT_EQ(as_kind<FatTreeKindConfig>(cal).fat_tree.sim_queue,
            sim::QueueKind::kCalendar);
  const auto heap =
      load_runner_config(ConfigFile::parse(config_with(""), "q.toml"));
  EXPECT_EQ(as_kind<FatTreeKindConfig>(heap).fat_tree.sim_queue,
            sim::QueueKind::kBinaryHeap);
  EXPECT_THROW(load_runner_config(ConfigFile::parse(
                   config_with("sim_queue = wheel\n"), "q.toml")),
               ConfigError);
}

TEST(Runner, FatTreeConfigEqualsDirectlyBuiltSpec) {
  const RunnerConfig cfg = mini_fat_tree_config();
  const FatTreeKindConfig& ft = as_kind<FatTreeKindConfig>(cfg);
  const SweepRunner runner(1);
  const auto via_config = run_config(cfg, runner);
  ASSERT_EQ(via_config.size(), 1u);
  const ResultTable direct = runner.run(fct_sweep_spec(
      ft.fat_tree, ft.loads[0], ft.percentile, ft.schemes, ft.slug_prefix));
  EXPECT_EQ(via_config[0].render_text(), direct.render_text());
}

TEST(Runner, RdcnConfigWiresReTcpToTheCircuitSchedule) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = rdcn
slug = minirdcn
schemes = retcp, powertcp

[topology]
preset = small
n_tors = 4
servers_per_tor = 2

[workload]
packet_gbps = 25
flow_mb = 40
horizon_ms = 1
bin_us = 50

[cc.retcp]
prebuffering_us = 300
)",
                                      "minirdcn.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t2 = render_all(run_config(cfg, SweepRunner(4)));
  EXPECT_EQ(t1, t2);  // thread-count independence
  // reTCP ran (no CircuitSchedule throw) and moved bytes: its goodput
  // column holds at least one positive bin.
  EXPECT_NE(t1.find("retcp gbps"), std::string::npos);
  EXPECT_NE(t1.find("minirdcn_timeseries"), std::string::npos);
  EXPECT_NE(t1.find("minirdcn_p99"), std::string::npos);
}

TEST(Runner, IncastConfigRunsMessageTransportViaRegistry) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = incast
slug = miniincast
schemes = powertcp, homa

[workload]
query_kb = 0
horizon_ms = 1
bin_us = 100

[cc.homa]
overcommit = 2
)",
                                      "miniincast.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t2 = render_all(run_config(cfg, SweepRunner(2)));
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1.find("homa gbps"), std::string::npos);
  EXPECT_NE(t1.find("miniincast_10to1"), std::string::npos);
}

TEST(Runner, DumbbellTimeSeriesIsByteIdenticalAcrossThreadCounts) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = dumbbell
slug = minifair
schemes = powertcp, timely, homa

[workload]
flow_mb = 3, 1.5
stagger_us = 200
horizon_ms = 2
bin_us = 100
row_every = 2
)",
                                      "minifair.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t3 = render_all(run_config(cfg, SweepRunner(3)));
  EXPECT_EQ(t1, t3);
  // One table per scheme with per-flow columns; homa ran through the
  // registry's message-transport path on the same dumbbell.
  EXPECT_NE(t1.find("minifair_powertcp"), std::string::npos);
  EXPECT_NE(t1.find("minifair_timely"), std::string::npos);
  EXPECT_NE(t1.find("minifair_homa"), std::string::npos);
  EXPECT_NE(t1.find("f2"), std::string::npos);
}

TEST(Runner, DumbbellRowsSpanTheLongestFlow) {
  // Flow order is config-controlled: with ascending sizes flow 1
  // finishes first, and the table must keep rows until the last flow
  // drains rather than stopping at flow 1's final bin.
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = dumbbell
schemes = powertcp

[workload]
flow_mb = 0.2, 2
stagger_us = 0
horizon_ms = 3
bin_us = 100
row_every = 1
)",
                                      "asc.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto tables = run_config(cfg, SweepRunner(1));
  ASSERT_EQ(tables.size(), 1u);
  const auto& rows = tables[0].rows;
  ASSERT_FALSE(rows.empty());
  // The final row lands in flow 2's last active bin: goodput in f2,
  // nothing left of flow 1.
  EXPECT_GT(rows.back().values.at(1).number(), 0.0);
  EXPECT_EQ(rows.back().values.at(0).number(), 0.0);
}

TEST(Runner, SingleRackFabricsRejectFanInsInsteadOfCrashing) {
  // A one-rack fat-tree leaves no host outside the receiver's rack to
  // answer a burst: the modulo that picks responders would divide by
  // zero (SIGFPE). Both fan-in scenarios must throw instead.
  const auto load = [](const std::string& text) {
    return load_runner_config(ConfigFile::parse(text, "tiny.toml"));
  };
  const std::string tiny_topo =
      "[topology]\npods = 1\ntors_per_pod = 1\naggs_per_pod = 1\n"
      "cores = 1\nservers_per_tor = 2\n";
  const auto incast = load(
      "[experiment]\nkind = incast\nschemes = powertcp\n" + tiny_topo +
      "[workload]\nquery_kb = 100\nfan_in = 4\nhorizon_ms = 1\n");
  EXPECT_THROW(run_config(incast, SweepRunner(1)), std::invalid_argument);
  const auto oc = load(
      "[experiment]\nkind = homa_oc\nschemes = homa\n" + tiny_topo +
      "[workload]\novercommit = 1\nfan_in = 2\n"
      "fairness_horizon_ms = 1\nincast_horizon_ms = 1\n");
  EXPECT_THROW(run_config(oc, SweepRunner(1)), std::invalid_argument);
}

TEST(Runner, HomaOcKindRejectsSenderCcSchemes) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = homa_oc
schemes = powertcp

[workload]
overcommit = 1
fan_in = 2
)",
                                      "ocbad.toml");
  // The registry check fires inside run_config -> homa_oc_tables: the
  // overcommitment sweep drives message transports only.
  const RunnerConfig cfg = load_runner_config(file);
  EXPECT_THROW(run_config(cfg, SweepRunner(1)), std::invalid_argument);
}

TEST(Runner, LoaderRejectsUnknownSchemesKeysAndSections) {
  const auto load = [](const std::string& text) {
    return load_runner_config(ConfigFile::parse(text, "bad.toml"));
  };
  // Unknown scheme name.
  EXPECT_THROW(load("[experiment]\nschemes = warp-speed\n"), ConfigError);
  // Param not declared by the scheme.
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[cc.powertcp]\nwarp = 9\n"),
               ConfigError);
  // Unknown workload key.
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[workload]\nlods = 0.2\n"),
               ConfigError);
  // Unknown workload key for the new kinds, too.
  EXPECT_THROW(load("[experiment]\nkind = dumbbell\nschemes = powertcp\n"
                    "[workload]\nflw_mb = 2\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\novercommitt = 2\n"),
               ConfigError);
  // Unused section (typo'd scheme section).
  EXPECT_THROW(load("[experiment]\nschemes = powertcp\n"
                    "[cc.powertpc]\ngamma = 0.9\n"),
               ConfigError);
  // Bad kind, missing experiment, empty schemes.
  EXPECT_THROW(load("[experiment]\nkind = ring\nschemes = powertcp\n"),
               ConfigError);
  EXPECT_THROW(load("[workload]\nloads = 0.2\n"), ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = fat_tree\n"), ConfigError);
  // Bad values for the new kinds' validated keys.
  EXPECT_THROW(load("[experiment]\nkind = dumbbell\nschemes = powertcp\n"
                    "[workload]\nrow_every = 0\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = dumbbell\nschemes = powertcp\n"
                    "[workload]\nflow_mb = 0\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\novercommit = 0\n"),
               ConfigError);
  // Integer point lists must be integers: silently truncating 2.5 to
  // level 2 would run points the config does not state.
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\novercommit = 2.5\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\nfan_in = 10.7\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = incast\nschemes = powertcp\n"
                    "[workload]\nfan_in = 2.7\n"),
               ConfigError);
  // Out-of-int-range values must be a ConfigError, not an undefined
  // double->int cast.
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\novercommit = 3000000000\n"),
               ConfigError);
  // Likewise for byte-size keys: NaN slips past a <= 0 check and a
  // huge value is an undefined int64 cast; both must throw.
  EXPECT_THROW(load("[experiment]\nkind = dumbbell\nschemes = powertcp\n"
                    "[workload]\nflow_mb = nan\n"),
               ConfigError);
  EXPECT_THROW(load("[experiment]\nkind = homa_oc\nschemes = homa\n"
                    "[workload]\nlong_message_mb = 1e15\n"),
               ConfigError);
  // A query incast needs a positive fan-in (the query splits across
  // it); fan_in = 0 with query_kb > 0 must fail at load, not SIGFPE
  // in the scenario.
  EXPECT_THROW(load("[experiment]\nkind = incast\nschemes = powertcp\n"
                    "[workload]\nquery_kb = 100\nfan_in = 0\n"),
               ConfigError);
  // Message transports cannot run the RDCN scenario (registry check
  // fires inside run_config -> scenario).
  const auto cfg = load(
      "[experiment]\nkind = rdcn\nschemes = homa\n"
      "[topology]\npreset = small\n"
      "[workload]\nhorizon_ms = 1\n");
  EXPECT_THROW(run_config(cfg, SweepRunner(1)), std::invalid_argument);
}

TEST(Runner, QueryPointsGetUniqueSlugs) {
  // Two query sizes in one config must not shadow each other in the
  // CSV/JSON (the regression gate indexes tables by slug).
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = incast
schemes = powertcp

[workload]
query_kb = 500, 2000
fan_in = 8, 16
)",
                                      "slugs.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const IncastKindConfig& kind = as_kind<IncastKindConfig>(cfg);
  IncastScenario a = kind.incast;
  a.query_bytes = 500'000;
  a.fan_in = 8;
  IncastScenario b = kind.incast;
  b.query_bytes = 2'000'000;
  b.fan_in = 16;
  // Slug generation is pure string work; shrink the simulations.
  a.horizon = b.horizon = sim::microseconds(200);
  const SweepRunner runner(1);
  const auto ta = incast_figure_table(runner, a, kind.schemes, "fig4");
  const auto tb = incast_figure_table(runner, b, kind.schemes, "fig4");
  EXPECT_EQ(ta.slug, "fig4_query500kb");
  EXPECT_EQ(tb.slug, "fig4_query2000kb");
}

TEST(Runner, SchemeAliasesRunOneSchemeTwice) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = fat_tree
schemes = fast-power, slow-power

[workload]
loads = 0.3

[cc.fast-power]
scheme = powertcp
gamma = 1.0

[cc.slow-power]
scheme = powertcp
gamma = 0.1
)",
                                      "alias.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const FatTreeKindConfig& kind = as_kind<FatTreeKindConfig>(cfg);
  ASSERT_EQ(kind.schemes.size(), 2u);
  EXPECT_EQ(kind.schemes[0].display(), "fast-power");
  EXPECT_EQ(kind.schemes[0].scheme, "powertcp");
  EXPECT_EQ(kind.schemes[0].params.at("gamma"), "1.0");
  EXPECT_EQ(kind.schemes[1].params.at("gamma"), "0.1");
}

// ---- mixed_cc / fluid_phase / [aqm] --------------------------------

RunnerConfig mini_mixed_config(const std::string& extra = "") {
  const auto file = ConfigFile::parse(
      "[experiment]\n"
      "kind = mixed_cc\n"
      "slug = mini\n"
      "schemes = dctcp, powertcp\n"
      "seed = 7\n"
      "[workload]\n"
      "cc_mix = dctcp:0.5+powertcp:0.5\n"
      "senders = 6\n"
      "flow_mb = 0.5\n"
      "horizon_ms = 2\n" +
          extra,
      "mixed.toml");
  return load_runner_config(file);
}

TEST(Runner, MixedCcConfigResolvesMembersFromSchemeLabels) {
  const RunnerConfig cfg = mini_mixed_config("[cc.dctcp]\ng = 0.125\n");
  EXPECT_EQ(cfg.kind, "mixed_cc");
  const MixedCcKindConfig& kind = as_kind<MixedCcKindConfig>(cfg);
  EXPECT_EQ(kind.slug_prefix, "mini");
  EXPECT_EQ(kind.mixed.seed, 7u);
  EXPECT_EQ(kind.mixed.senders, 6);
  EXPECT_EQ(kind.mixed.flow_bytes, 500'000);
  ASSERT_EQ(kind.mixed.mixes.size(), 1u);
  const MixedCcMix& mix = kind.mixed.mixes[0];
  EXPECT_EQ(mix.display, "dctcp:0.50+powertcp:0.50");
  ASSERT_EQ(mix.members.size(), 2u);
  EXPECT_EQ(mix.members[0].scheme, "dctcp");
  // [cc.<label>] params flow through to the mix member.
  EXPECT_EQ(mix.members[0].params.at("g"), "0.125");
  EXPECT_EQ(mix.members[1].scheme, "powertcp");
  EXPECT_DOUBLE_EQ(mix.weights[0], 0.5);
  EXPECT_DOUBLE_EQ(mix.weights[1], 0.5);
  // Defaults: the red AQM, one rtt point, no buffer override.
  EXPECT_EQ(kind.mixed.aqm_kinds, (std::vector<std::string>{"red"}));
  EXPECT_TRUE(kind.mixed.buffer_bytes.empty());
}

TEST(Runner, MixedCcTablesAreByteIdenticalAcrossThreadCounts) {
  const RunnerConfig cfg =
      mini_mixed_config("aqm = red, pie\nbuffer_kb = 0, 16\n");
  const auto t1 = render_all(run_config(cfg, SweepRunner(1)));
  const auto t4 = render_all(run_config(cfg, SweepRunner(4)));
  EXPECT_EQ(t1, t4);
  // Three tables (fairness, share, fct) with per-cell rows.
  EXPECT_NE(t1.find("mini_fairness"), std::string::npos);
  EXPECT_NE(t1.find("mini_share"), std::string::npos);
  EXPECT_NE(t1.find("mini_fct"), std::string::npos);
  EXPECT_NE(t1.find("dctcp:0.50+powertcp:0.50"), std::string::npos);
  EXPECT_NE(t1.find("pie"), std::string::npos);
}

TEST(Runner, MixedCcLoaderRejectsBadMixesWithFileLineContext) {
  const auto load = [](const std::string& workload) {
    return load_runner_config(ConfigFile::parse(
        "[experiment]\nkind = mixed_cc\nschemes = dctcp, powertcp, homa, "
        "retcp\n[workload]\n" +
            workload,
        "badmix.toml"));
  };
  // A message transport in a mix is a load-time ConfigError carrying
  // the cc_mix entry's line, not a run-time crash.
  try {
    load("cc_mix = dctcp+homa\n");
    FAIL() << "homa mix member should be rejected";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("badmix.toml:5"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("message transport"),
              std::string::npos);
  }
  // Circuit-bound schemes cannot share the coexistence dumbbell.
  EXPECT_THROW(load("cc_mix = dctcp+retcp\n"), ConfigError);
  // Members must come from the resolved schemes list.
  EXPECT_THROW(load("cc_mix = dctcp+timely\n"), ConfigError);
  // Malformed member syntax, empty list, unknown AQM kind, bad axes.
  EXPECT_THROW(load("cc_mix = dctcp:0+powertcp\n"), ConfigError);
  EXPECT_THROW(load(""), ConfigError);
  EXPECT_THROW(load("cc_mix = dctcp\naqm = fq_codel\n"), ConfigError);
  EXPECT_NO_THROW(load("cc_mix = dctcp\naqm = codel\n"));
  EXPECT_THROW(load("cc_mix = dctcp\nrtt_us = 0\n"), ConfigError);
  EXPECT_THROW(load("cc_mix = dctcp\nbuffer_kb = -4\n"), ConfigError);
  EXPECT_THROW(load("cc_mix = dctcp\nsenders = 0\n"), ConfigError);
}

TEST(Runner, AqmSectionParsesAndRejectsBadValues) {
  const auto load = [](const std::string& aqm) {
    return load_runner_config(ConfigFile::parse(
        "[experiment]\nkind = dumbbell\nschemes = dctcp\n"
        "[workload]\nhorizon_ms = 1\n" +
            aqm,
        "aqm.toml"));
  };
  // Default: red, untouched pre-refactor behavior.
  EXPECT_EQ(as_kind<DumbbellKindConfig>(load("")).dumbbell.topo.aqm.kind,
            "red");
  const auto pie = load("[aqm]\nkind = pie\ntarget_us = 40\nalpha = 0.25\n");
  const net::AqmSpec& spec =
      as_kind<DumbbellKindConfig>(pie).dumbbell.topo.aqm;
  EXPECT_EQ(spec.kind, "pie");
  EXPECT_DOUBLE_EQ(spec.target_us, 40.0);
  EXPECT_DOUBLE_EQ(spec.alpha, 0.25);
  EXPECT_DOUBLE_EQ(spec.tupdate_us, 20.0);  // untouched default
  const auto codel =
      load("[aqm]\nkind = codel\ntarget_us = 40\ninterval_us = 250\n");
  const net::AqmSpec& cd = as_kind<DumbbellKindConfig>(codel).dumbbell.topo.aqm;
  EXPECT_EQ(cd.kind, "codel");
  EXPECT_DOUBLE_EQ(cd.target_us, 40.0);
  EXPECT_DOUBLE_EQ(cd.interval_us, 250.0);
  EXPECT_THROW(load("[aqm]\nkind = fq_codel\n"), ConfigError);
  EXPECT_THROW(load("[aqm]\ntarget_us = 0\n"), ConfigError);
  EXPECT_THROW(load("[aqm]\ninterval_us = 0\n"), ConfigError);
  EXPECT_THROW(load("[aqm]\necn_threshold = 1.5\n"), ConfigError);
  EXPECT_THROW(load("[aqm]\nkindd = pie\n"), ConfigError);  // unknown key
}

TEST(Runner, FluidPhaseConfigMirrorsTheFig3Bench) {
  const auto file = ConfigFile::parse(R"(
[experiment]
kind = fluid_phase
slug = fig3
schemes = powertcp
)",
                                      "fig3.toml");
  const RunnerConfig cfg = load_runner_config(file);
  const auto tables = run_config(cfg, SweepRunner(1));
  // Three per-law portraits + summary + theorem table.
  ASSERT_EQ(tables.size(), 5u);
  EXPECT_EQ(tables[0].slug, "fig3_voltage");
  EXPECT_EQ(tables[1].slug, "fig3_current");
  EXPECT_EQ(tables[2].slug, "fig3_power");
  EXPECT_EQ(tables[3].slug, "fig3_summary");
  EXPECT_EQ(tables[4].slug, "fig3_stability");
  const std::string summary = tables[3].render_text();
  // The figure's three claims: voltage undershoots the BDP line,
  // current has no unique equilibrium (empty eq cells), power is
  // loss-free with a unique equilibrium.
  EXPECT_NE(summary.find("no loss"), std::string::npos);
  EXPECT_NE(summary.find("loss"), std::string::npos);
  const std::string power_row =
      summary.substr(summary.find("power"));
  EXPECT_NE(power_row.find("no loss"), std::string::npos);
  // Deterministic closed forms: byte-identical across thread counts.
  EXPECT_EQ(render_all(tables),
            render_all(run_config(cfg, SweepRunner(3))));
}

TEST(Runner, FluidPhaseLoaderValidatesGridAndParameters) {
  const auto load = [](const std::string& extra) {
    return load_runner_config(ConfigFile::parse(
        "[experiment]\nkind = fluid_phase\nschemes = powertcp\n" + extra,
        "fluid.toml"));
  };
  EXPECT_NO_THROW(load("[workload]\ngrid_w_bdp = 1\ngrid_q_bdp = 0\n"));
  EXPECT_THROW(load("[topology]\nbandwidth_gbps = 0\n"), ConfigError);
  EXPECT_THROW(load("[workload]\nstep_us = 0\n"), ConfigError);
  EXPECT_THROW(load("[workload]\ngrid_w_bdp = 1, 2\ngrid_q_bdp = 0\n"),
               ConfigError);
  EXPECT_THROW(load("[workload]\ngrid_w_bdp = 0\ngrid_q_bdp = 0\n"),
               ConfigError);
}

}  // namespace
}  // namespace powertcp::harness
