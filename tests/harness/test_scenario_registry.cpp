/// ScenarioRegistry coverage: the built-in kind table, registration
/// rejection paths (duplicate / invalid entries), unknown-kind and
/// unknown-key errors with file:line context, and a drop-in custom
/// kind loading + running end-to-end through load_runner_config.

#include "harness/scenario_registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "harness/runner.hpp"

namespace powertcp::harness {
namespace {

TEST(ScenarioRegistry, BuiltinKindsAreRegisteredInOrder) {
  const auto& reg = ScenarioRegistry::instance();
  const std::vector<std::string> expected = {
      "fat_tree", "incast",      "rdcn",     "dumbbell",
      "homa_oc",  "single_flow", "mixed_cc", "fluid_phase"};
  EXPECT_EQ(reg.names(), expected);
  for (const auto& name : expected) {
    const ScenarioEntry* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_FALSE(e->summary.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(e->load)) << name;
  }
  EXPECT_EQ(reg.find("ring"), nullptr);
}

TEST(ScenarioRegistry, AtThrowsListingKnownKinds) {
  try {
    ScenarioRegistry::instance().at("warp-speed");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp-speed"), std::string::npos);
    EXPECT_NE(msg.find("fat_tree"), std::string::npos);
    EXPECT_NE(msg.find("homa_oc"), std::string::npos);
  }
}

TEST(ScenarioRegistry, DuplicateRegistrationIsRejected) {
  ScenarioRegistry reg;  // local copy with the built-ins
  ScenarioEntry dup;
  dup.name = "fat_tree";
  dup.load = [](const ConfigFile&, SectionView&, SectionView&,
                const ScenarioContext&) -> std::unique_ptr<ScenarioConfig> {
    return nullptr;
  };
  EXPECT_THROW(reg.add(dup), std::logic_error);

  // First registration of a fresh name is fine; the second is not.
  dup.name = "toy";
  EXPECT_NO_THROW(reg.add(dup));
  EXPECT_THROW(reg.add(dup), std::logic_error);
}

TEST(ScenarioRegistry, InvalidEntriesAreRejected) {
  ScenarioRegistry reg;
  ScenarioEntry nameless;
  nameless.load = [](const ConfigFile&, SectionView&, SectionView&,
                     const ScenarioContext&)
      -> std::unique_ptr<ScenarioConfig> { return nullptr; };
  EXPECT_THROW(reg.add(nameless), std::logic_error);
  ScenarioEntry loaderless;
  loaderless.name = "no-loader";
  EXPECT_THROW(reg.add(loaderless), std::logic_error);
}

TEST(ScenarioRegistry, UnknownKindErrorNamesOriginAndKnownKinds) {
  const auto file = ConfigFile::parse(
      "[experiment]\nkind = moebius\nschemes = powertcp\n", "strip.toml");
  try {
    load_runner_config(file);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("strip.toml"), std::string::npos);
    EXPECT_NE(msg.find("moebius"), std::string::npos);
    EXPECT_NE(msg.find("dumbbell"), std::string::npos);
  }
}

TEST(ScenarioRegistry, UnknownWorkloadKeyErrorCarriesFileAndLine) {
  const auto file = ConfigFile::parse(
      "[experiment]\nkind = dumbbell\nschemes = powertcp\n"
      "[workload]\nflow_mbb = 2\n",
      "typo.toml");
  try {
    load_runner_config(file);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    // SectionView's unknown-key rejection: origin:line plus the key.
    EXPECT_NE(msg.find("typo.toml:5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("flow_mbb"), std::string::npos) << msg;
  }
}

/// The registry's reason to exist: a new paper shape is one
/// registration away from config-file support — no runner changes.
TEST(ScenarioRegistry, CustomKindIsADropInRegistration) {
  struct EchoConfig final : ScenarioConfig {
    std::string slug;
    double knob = 0;
    std::vector<ResultTable> run(const SweepRunner&) const override {
      ResultTable t;
      t.title = "echo";
      t.slug = slug;
      t.key_columns = {"key"};
      t.value_columns = {"knob"};
      ResultTable::Row row;
      row.keys = {Cell(std::string("k"))};
      row.values = {Cell(knob, 1)};
      t.rows.push_back(std::move(row));
      return {t};
    }
  };

  ScenarioRegistry reg;
  ScenarioEntry echo;
  echo.name = "echo";
  echo.summary = "test-only scenario";
  echo.load = [](const ConfigFile&, SectionView&, SectionView& work,
                 const ScenarioContext& ctx)
      -> std::unique_ptr<ScenarioConfig> {
    auto cfg = std::make_unique<EchoConfig>();
    cfg->slug = ctx.slug_prefix + "_echo";
    cfg->knob = work.get_double("knob", 1.5);
    return cfg;
  };
  reg.add(echo);

  const auto file = ConfigFile::parse(
      "[experiment]\nkind = echo\nslug = custom\nschemes = powertcp\n"
      "[workload]\nknob = 7.25\n",
      "echo.toml");
  const RunnerConfig cfg = load_runner_config(file, reg);
  EXPECT_EQ(cfg.kind, "echo");
  const auto tables = run_config(cfg, SweepRunner(1));
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].slug, "custom_echo");
  EXPECT_EQ(tables[0].rows.at(0).values.at(0).number(), 7.25);

  // The custom kind still gets the shared rejection machinery: an
  // unknown workload key is a ConfigError even though the loader is
  // user-supplied.
  const auto bad = ConfigFile::parse(
      "[experiment]\nkind = echo\nschemes = powertcp\n"
      "[workload]\nknobb = 1\n",
      "echo.toml");
  EXPECT_THROW(load_runner_config(bad, reg), ConfigError);
}

}  // namespace
}  // namespace powertcp::harness
