/// Config-file parser coverage: the INI/TOML-subset syntax, typed
/// section reads, and the loud failure modes (syntax errors with
/// file:line context, unknown keys, bad values).

#include "harness/config.hpp"

#include <gtest/gtest.h>

namespace powertcp::harness {
namespace {

TEST(ConfigFile, ParsesSectionsKeysAndComments) {
  const auto cfg = ConfigFile::parse(R"(
# full-line comment
; also a comment
[experiment]
kind = fat_tree            # inline comment
schemes = powertcp, hpcc
title = "a # quoted hash"

[cc.powertcp]
gamma = 0.9
)",
                                     "test.toml");
  ASSERT_EQ(cfg.sections().size(), 2u);
  const auto* exp = cfg.find("experiment");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->find("kind")->value, "fat_tree");
  EXPECT_EQ(exp->find("schemes")->value, "powertcp, hpcc");
  EXPECT_EQ(exp->find("title")->value, "a # quoted hash");
  EXPECT_EQ(cfg.find("cc.powertcp")->find("gamma")->value, "0.9");
  EXPECT_EQ(cfg.find("nope"), nullptr);
  EXPECT_EQ(cfg.with_prefix("cc.").size(), 1u);
}

TEST(ConfigFile, SplitsPlainAndBracketedLists) {
  EXPECT_EQ(split_config_list("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_config_list("[0.2, 0.6]"),
            (std::vector<std::string>{"0.2", "0.6"}));
  EXPECT_EQ(split_config_list("\"x\", y"),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(split_config_list("").empty());
}

TEST(ConfigFile, SyntaxErrorsCarryFileAndLine) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      ConfigFile::parse(text, "bad.toml");
      FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("bad.toml"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("[experiment\nkind = x\n", "']'");
  expect_error("kind = x\n", "outside any [section]");
  expect_error("[a]\nx 1\n", "key = value");
  expect_error("[a]\n[a]\n", "duplicate section");
  expect_error("[a]\nx = 1\nx = 2\n", "duplicate key");
  expect_error("[a]\nx = \"unterminated\n", "unterminated");
  expect_error("[a b]\n", "bad section name");
}

TEST(SectionView, TypedGettersAndFallbacks) {
  const auto cfg = ConfigFile::parse(R"(
[s]
num = 2.5
int = 42
flag = on
text = hello
list = 1, 2, 3
)");
  SectionView v(cfg, cfg.find("s"));
  EXPECT_DOUBLE_EQ(v.get_double("num", 0), 2.5);
  EXPECT_EQ(v.get_int("int", 0), 42);
  EXPECT_TRUE(v.get_bool("flag", false));
  EXPECT_EQ(v.get_string("text", ""), "hello");
  EXPECT_EQ(v.get_double_list("list"), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(v.get_string("absent", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(v.get_double("absent2", 7.5), 7.5);
  EXPECT_NO_THROW(v.finish());
}

TEST(SectionView, BadValuesAndUnknownKeysThrow) {
  const auto cfg = ConfigFile::parse(R"(
[s]
num = not-a-number
typo_key = 1
)");
  SectionView v(cfg, cfg.find("s"));
  EXPECT_THROW(v.get_double("num", 0), ConfigError);
  EXPECT_THROW(v.get_int("num", 0), ConfigError);
  EXPECT_THROW(v.get_bool("num", false), ConfigError);
  // `typo_key` was never consumed by a getter.
  try {
    SectionView w(cfg, cfg.find("s"));
    w.get_string("num", "");
    w.finish();
    FAIL() << "expected unknown-key ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("typo_key"), std::string::npos);
  }
}

TEST(SectionView, AbsentSectionYieldsFallbacks) {
  const auto cfg = ConfigFile::parse("[present]\nx = 1\n");
  SectionView v(cfg, cfg.find("absent"));
  EXPECT_FALSE(v.has("x"));
  EXPECT_EQ(v.get_int("x", 9), 9);
  EXPECT_NO_THROW(v.finish());
}

TEST(ConfigFile, ParseFileReportsMissingFile) {
  EXPECT_THROW(ConfigFile::parse_file("/nonexistent/path.toml"),
               ConfigError);
}

}  // namespace
}  // namespace powertcp::harness
