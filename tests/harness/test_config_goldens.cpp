/// Byte-identity goldens for every shipped config: each file in
/// configs/ must render exactly the text/CSV/JSON captured in
/// tests/goldens/ before the AQM-layer refactor. This is the
/// regression fence for the pluggable-AQM work — the default "red"
/// policy (and the whole runner pipeline behind it) may not change a
/// single byte of any pre-existing experiment.
///
/// The fixture name is deliberately outside the tsan test filter:
/// these runs are the heaviest in the suite and the pool race they
/// would exercise is already covered by the SweepRunner/Runner tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/shard_setup.hpp"

#ifndef POWERTCP_SOURCE_DIR
#define POWERTCP_SOURCE_DIR "."
#endif

namespace powertcp::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing file: " << path;
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Renders tables exactly as `powertcp_run` does: text with a blank
/// line between tables (BenchReporter::add), the long-format CSV with
/// its header (BenchReporter::finish with a fresh file), and the JSON
/// document with the fixed "powertcp_run" bench name.
struct Rendered {
  std::string text;
  std::string csv;
  std::string json;
};

Rendered render_like_cli(const std::vector<ResultTable>& tables) {
  Rendered r;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) r.text += "\n";
    r.text += tables[i].render_text();
  }
  r.csv = ResultTable::csv_header();
  for (const auto& t : tables) t.append_csv(r.csv);
  // The CLI reports shard_fallback_count() here; the goldens pin it at
  // 0 — no shipped config may silently rerun on the sequential engine.
  r.json = "{\n  \"bench\": \"powertcp_run\",\n  \"shard_fallbacks\": 0,\n"
           "  \"tables\": [\n";
  for (std::size_t i = 0; i < tables.size(); ++i) {
    tables[i].append_json(r.json, 4);
    r.json += i + 1 < tables.size() ? ",\n" : "\n";
  }
  r.json += "  ]\n}\n";
  return r;
}

/// run_config with the zero-fallback acceptance bar attached: the
/// process-wide fallback counter may not move while a shipped config
/// renders (otherwise the "shard_fallbacks": 0 the goldens pin would
/// be a lie whenever sim_threads > 1 is forced).
std::vector<ResultTable> run_config_no_fallback(const RunnerConfig& cfg,
                                                const SweepRunner& runner) {
  const std::uint64_t before =
      shard_fallback_count().load(std::memory_order_relaxed);
  auto tables = run_config(cfg, runner);
  EXPECT_EQ(shard_fallback_count().load(std::memory_order_relaxed), before)
      << "a shipped config fell back to the sequential engine";
  return tables;
}

class ConfigGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfigGolden, MatchesPreRefactorOutputByteForByte) {
  const std::string name = GetParam();
  const std::string root = POWERTCP_SOURCE_DIR;
  const auto cfg = load_runner_config(
      ConfigFile::parse_file(root + "/configs/" + name + ".toml"));
  const unsigned hw = std::thread::hardware_concurrency();
  const SweepRunner runner(hw == 0 ? 1 : static_cast<int>(hw));
  const Rendered got = render_like_cli(run_config_no_fallback(cfg, runner));

  EXPECT_EQ(got.text, slurp(root + "/tests/goldens/" + name + ".txt"));
  EXPECT_EQ(got.csv, slurp(root + "/tests/goldens/" + name + ".csv"));
  EXPECT_EQ(got.json, slurp(root + "/tests/goldens/" + name + ".json"));
}

INSTANTIATE_TEST_SUITE_P(AllShippedConfigs, ConfigGolden,
                         ::testing::Values("fig2_reaction", "fig4_quick",
                                           "fig5_quick", "fig6_quick",
                                           "fig7_load_sweep", "fig8_quick",
                                           "fig9_oc"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// The parallel-DES exactness bar: a shipped fat-tree config rendered
/// with the engine sharded four ways must match the sequential goldens
/// byte for byte — via causally-independent windows where the traffic
/// allows it, via the detect-and-fallback rerun where it does not
/// (docs/performance.md, "Parallel DES"). Deliberately outside the
/// tsan filter like ConfigGolden above; the thread protocol itself is
/// TSan-covered by the lighter ShardedEngine/ShardedHarness tests.
TEST(ShardedConfigGolden, Fig6QuickByteIdenticalAtFourSimThreads) {
  const std::string root = POWERTCP_SOURCE_DIR;
  RunnerLoadOptions options;
  options.force_sim_threads = 4;
  const auto cfg = load_runner_config(
      ConfigFile::parse_file(root + "/configs/fig6_quick.toml"),
      ScenarioRegistry::instance(), options);
  const unsigned hw = std::thread::hardware_concurrency();
  const SweepRunner runner(hw == 0 ? 1 : static_cast<int>(hw));
  const Rendered got = render_like_cli(run_config_no_fallback(cfg, runner));

  EXPECT_EQ(got.text, slurp(root + "/tests/goldens/fig6_quick.txt"));
  EXPECT_EQ(got.csv, slurp(root + "/tests/goldens/fig6_quick.csv"));
  EXPECT_EQ(got.json, slurp(root + "/tests/goldens/fig6_quick.json"));
}

/// The workload the tie-token unlocked: fig5's synchronized dumbbell
/// used to trip the boundary-ambiguity detector (every sender's burst
/// lands at the bottleneck in the same picosecond) and silently rerun
/// sequentially. With deliveries keyed by (time, sched, tie) the
/// cross-shard order is exact, so the sharded run must now render the
/// sequential goldens byte for byte WITHOUT the fallback — which
/// run_config_no_fallback asserts.
TEST(ShardedConfigGolden, Fig5QuickByteIdenticalAtFourSimThreads) {
  const std::string root = POWERTCP_SOURCE_DIR;
  RunnerLoadOptions options;
  options.force_sim_threads = 4;
  const auto cfg = load_runner_config(
      ConfigFile::parse_file(root + "/configs/fig5_quick.toml"),
      ScenarioRegistry::instance(), options);
  const unsigned hw = std::thread::hardware_concurrency();
  const SweepRunner runner(hw == 0 ? 1 : static_cast<int>(hw));
  const Rendered got = render_like_cli(run_config_no_fallback(cfg, runner));

  EXPECT_EQ(got.text, slurp(root + "/tests/goldens/fig5_quick.txt"));
  EXPECT_EQ(got.csv, slurp(root + "/tests/goldens/fig5_quick.csv"));
  EXPECT_EQ(got.json, slurp(root + "/tests/goldens/fig5_quick.json"));
}

}  // namespace
}  // namespace powertcp::harness
