#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/bench_opts.hpp"

namespace powertcp::harness {
namespace {

TEST(Cell, RendersNumbersTextAndEmpty) {
  EXPECT_EQ(Cell(3.14159, 2).render(), "3.14");
  EXPECT_EQ(Cell(2.0, 0).render(), "2");
  EXPECT_EQ(Cell::integer(42).render(), "42");
  EXPECT_EQ(Cell(std::string("powertcp")).render(), "powertcp");
  EXPECT_EQ(Cell().render(), "-");
  EXPECT_EQ(Cell(std::nan(""), 2).render(), "-");  // NaN collapses to empty
}

TEST(Cell, CsvQuotesOnlyWhenNeeded) {
  EXPECT_EQ(Cell(std::string("plain")).csv(), "plain");
  EXPECT_EQ(Cell(std::string("a,b")).csv(), "\"a,b\"");
  EXPECT_EQ(Cell(std::string("say \"hi\"")).csv(), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(Cell().csv(), "");
  EXPECT_EQ(Cell(1.5, 1).csv(), "1.5");
}

TEST(Cell, JsonEmitsTypedValues) {
  EXPECT_EQ(Cell(1.25, 2).json(), "1.25");
  EXPECT_EQ(Cell(std::string("x")).json(), "\"x\"");
  EXPECT_EQ(Cell().json(), "null");
}

ResultTable tiny_table() {
  ResultTable t;
  t.title = "tiny";
  t.slug = "tiny";
  t.key_columns = {"algo", "load"};
  t.value_columns = {"p99", "drops"};
  t.rows.push_back({{Cell(std::string("powertcp")), Cell(20.0, 0)},
                    {Cell(3.5, 2), Cell::integer(0)}});
  t.rows.push_back(
      {{Cell(std::string("hpcc")), Cell(40.0, 0)}, {Cell(), Cell::integer(7)}});
  return t;
}

TEST(ResultTable, TextAlignsColumns) {
  const std::string text = tiny_table().render_text();
  EXPECT_EQ(text,
            "=== tiny ===\n"
            "algo      load   p99  drops\n"
            "powertcp    20  3.50      0\n"
            "hpcc        40     -      7\n");
}

TEST(ResultTable, CsvIsLongFormat) {
  std::string csv = ResultTable::csv_header();
  tiny_table().append_csv(csv);
  EXPECT_EQ(csv,
            "table,point,metric,value\n"
            "tiny,algo=powertcp;load=20,p99,3.50\n"
            "tiny,algo=powertcp;load=20,drops,0\n"
            "tiny,algo=hpcc;load=40,p99,\n"
            "tiny,algo=hpcc;load=40,drops,7\n");
}

TEST(ResultTable, JsonHasColumnsAndNullForEmpty) {
  std::string json;
  tiny_table().append_json(json, 0);
  EXPECT_NE(json.find("\"slug\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"key_columns\": [\"algo\", \"load\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\": null"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 3.50"), std::string::npos);
}

TEST(ResultTable, RejectsRowShapeMismatch) {
  ResultTable t = tiny_table();
  t.rows.back().values.push_back(Cell(1.0, 1));  // one cell too many
  EXPECT_THROW(t.render_text(), std::logic_error);
  std::string out;
  EXPECT_THROW(t.append_csv(out), std::logic_error);
  EXPECT_THROW(t.append_json(out, 0), std::logic_error);
}

TEST(BenchReporter, CsvAppendsAcrossRunsWithSingleHeader) {
  const std::string path = testing::TempDir() + "/sweep_append_test.csv";
  std::remove(path.c_str());
  BenchOptions opts;
  opts.csv_path = path;
  for (int run = 0; run < 2; ++run) {
    BenchReporter reporter("test_bench", opts);
    reporter.add(tiny_table());
    EXPECT_EQ(reporter.finish(), 0);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[256];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  // Header once, data rows twice.
  EXPECT_EQ(content.find("table,point,metric,value"),
            content.rfind("table,point,metric,value"));
  EXPECT_NE(content.find("tiny,algo=powertcp;load=20,p99,3.50"),
            content.rfind("tiny,algo=powertcp;load=20,p99,3.50"));
}

TEST(SweepRunner, MapPreservesDeclarationOrder) {
  SweepRunner runner(8);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([i] { return i * i; });
  }
  const std::vector<int> out = runner.map(jobs);
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(97);
  runner.run_indexed(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, PropagatesJobException) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.run_indexed(8,
                                  [](std::size_t i) {
                                    if (i == 5) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

SweepSpec small_fig7_style_sweep() {
  // A shrunk fig7ab: two algorithms x two loads on the quick fat tree
  // with a sub-millisecond horizon, so the whole sweep runs in seconds.
  SweepSpec sw;
  sw.title = "determinism probe";
  sw.slug = "probe";
  sw.key_columns = {"algorithm", "load%"};
  sw.value_columns = {"short(<10K)", "long(>=1M)", "drops", "flows"};
  for (const double load : {0.4, 0.8}) {
    for (const std::string algo : {"powertcp", "hpcc"}) {
      SweepPoint p;
      p.keys = {Cell(algo), Cell(load * 100, 0)};
      p.cfg.cc = algo;
      p.cfg.uplink_load = load;
      p.cfg.duration = sim::microseconds(400);
      p.cfg.size_scale = 0.05;
      p.cfg.seed = 7;
      sw.points.push_back(std::move(p));
    }
  }
  sw.metrics = [](const FatTreeExperiment&, const ExperimentResult& r) {
    const auto s = r.fct.slowdowns_in_range(0, 500);
    const auto l = r.fct.slowdowns_in_range(50'000, INT64_MAX);
    return std::vector<Cell>{
        s.empty() ? Cell() : Cell(s.percentile(99), 2),
        l.empty() ? Cell() : Cell(l.percentile(99), 2),
        Cell::integer(static_cast<std::int64_t>(r.drops)),
        Cell::integer(static_cast<std::int64_t>(r.flows_started))};
  };
  return sw;
}

TEST(SweepRunner, FatTreeSweepIsByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = small_fig7_style_sweep();
  const ResultTable serial = SweepRunner(1).run(spec);
  const ResultTable parallel = SweepRunner(4).run(spec);

  EXPECT_EQ(serial.render_text(), parallel.render_text());

  std::string csv1 = ResultTable::csv_header();
  std::string csv4 = ResultTable::csv_header();
  serial.append_csv(csv1);
  parallel.append_csv(csv4);
  EXPECT_EQ(csv1, csv4);

  std::string json1, json4;
  serial.append_json(json1, 0);
  parallel.append_json(json4, 0);
  EXPECT_EQ(json1, json4);

  // The sweep actually measured something: every row has its flow count.
  ASSERT_EQ(serial.rows.size(), 4u);
  for (const auto& row : serial.rows) {
    EXPECT_TRUE(row.values.back().is_number());
    EXPECT_GT(row.values.back().number(), 0.0);
  }
}

TEST(BenchOptions, ParsesSweepFlags) {
  const char* argv[] = {"bench", "--threads=4", "--csv=a.csv",
                        "--json=b.json", "--fast"};
  const auto o =
      BenchOptions::parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(o.ok);
  EXPECT_EQ(o.threads, 4);
  EXPECT_EQ(o.csv_path, "a.csv");
  EXPECT_EQ(o.json_path, "b.json");
  EXPECT_TRUE(o.fast);
  EXPECT_FALSE(o.full);
}

TEST(BenchOptions, RejectsUnknownAndBadFlags) {
  const char* unknown[] = {"bench", "--frobnicate"};
  EXPECT_FALSE(BenchOptions::parse(2, const_cast<char**>(unknown)).ok);
  const char* bad[] = {"bench", "--threads=zero"};
  EXPECT_FALSE(BenchOptions::parse(2, const_cast<char**>(bad)).ok);
  const char* neg[] = {"bench", "--threads=0"};
  EXPECT_FALSE(BenchOptions::parse(2, const_cast<char**>(neg)).ok);
}

TEST(BenchOptions, HelpShortCircuits) {
  const char* argv[] = {"bench", "--help"};
  const auto o = BenchOptions::parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(o.help);
  EXPECT_NE(BenchOptions::usage("bench").find("--threads=N"),
            std::string::npos);
}

}  // namespace
}  // namespace powertcp::harness
