/// Burst-identity fence: every shipped config must render EXACTLY the
/// committed golden bytes with `--sim-burst=on`. sim_burst toggles
/// only exactness-preserving mechanisms (the engine's pop-merge budget
/// and endpoint-gated dequeue-N), so turning it on may change how many
/// callbacks run, but never a table value, a row, or a byte of output.
/// Together with ConfigGolden (which pins the off mode) this is the
/// acceptance fence for the burst-granular event engine.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"

#ifndef POWERTCP_SOURCE_DIR
#define POWERTCP_SOURCE_DIR "."
#endif

namespace powertcp::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing file: " << path;
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string render_text(const std::vector<ResultTable>& tables) {
  std::string text;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) text += "\n";
    text += tables[i].render_text();
  }
  return text;
}

std::vector<ResultTable> run_with_burst(const std::string& path,
                                        int force_burst) {
  RunnerLoadOptions opts;
  opts.force_burst = force_burst;
  const auto cfg = load_runner_config(ConfigFile::parse_file(path),
                                      ScenarioRegistry::instance(), opts);
  const unsigned hw = std::thread::hardware_concurrency();
  const SweepRunner runner(hw == 0 ? 1 : static_cast<int>(hw));
  return run_config(cfg, runner);
}

class BurstIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(BurstIdentity, BurstOnRendersTheGoldenBytes) {
  const std::string name = GetParam();
  const std::string root = POWERTCP_SOURCE_DIR;
  const auto tables =
      run_with_burst(root + "/configs/" + name + ".toml", /*force_burst=*/1);
  EXPECT_EQ(render_text(tables),
            slurp(root + "/tests/goldens/" + name + ".txt"));
}

INSTANTIATE_TEST_SUITE_P(AllShippedConfigs, BurstIdentity,
                         ::testing::Values("fig2_reaction", "fig4_quick",
                                           "fig5_quick", "fig6_quick",
                                           "fig7_load_sweep", "fig8_quick",
                                           "fig9_oc"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(BurstIdentity, MixedCcQuickIsBurstInvariant) {
  // mixed_cc_quick has no committed golden (its tables are pinned by
  // the mixed_cc unit tests); pin burst invariance by rendering the
  // config both ways.
  const std::string path =
      std::string(POWERTCP_SOURCE_DIR) + "/configs/mixed_cc_quick.toml";
  const std::string off = render_text(run_with_burst(path, -1));
  const std::string on = render_text(run_with_burst(path, 1));
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(on, off);
}

}  // namespace
}  // namespace powertcp::harness
