#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "harness/scenarios.hpp"
#include "harness/shard_setup.hpp"

/// End-to-end exactness of the sharded harness: the same scenario
/// config must produce the same numbers at every `sim_threads` value —
/// either because the partitions stayed causally independent (zero
/// boundary ambiguities) or because the harness detected otherwise and
/// reran the point sequentially (run_with_exact_fallback). The
/// ShardedHarness.* fixtures are part of the tsan preset's test filter:
/// they drive real worker threads, the cross-shard rings, and the
/// barrier protocol under TSan on every CI run.

namespace powertcp::harness {
namespace {

DumbbellScenario quick_dumbbell() {
  DumbbellScenario cfg;
  cfg.flow_bytes = {2'000'000, 1'500'000, 1'000'000, 500'000};
  cfg.stagger = sim::microseconds(200);
  cfg.horizon = sim::milliseconds(2);
  return cfg;
}

TEST(ShardedHarness, PartitionedDumbbellMatchesSequential) {
  const SchemeRun scheme{"", "powertcp", {}};
  DumbbellScenario seq_cfg = quick_dumbbell();
  seq_cfg.sim_threads = 1;
  DumbbellScenario par_cfg = quick_dumbbell();
  par_cfg.sim_threads = 4;

  const DumbbellSeries a = run_dumbbell_scenario(seq_cfg, scheme);
  const DumbbellSeries b = run_dumbbell_scenario(par_cfg, scheme);

  EXPECT_EQ(a.bin_start, b.bin_start);
  ASSERT_EQ(a.gbps.size(), b.gbps.size());
  for (std::size_t f = 0; f < a.gbps.size(); ++f) {
    EXPECT_EQ(a.gbps[f], b.gbps[f]) << "flow " << f;
  }
}

TEST(ShardedHarness, PartitionedIncastMatchesSequential) {
  IncastScenario cfg;
  cfg.topo = topo::FatTreeConfig::quick();
  cfg.horizon = sim::milliseconds(1);
  const SchemeRun scheme{"", "powertcp", {}};

  IncastScenario par_cfg = cfg;
  par_cfg.sim_threads = 4;
  const IncastSeries a = run_incast_scenario(cfg, scheme);
  const IncastSeries b = run_incast_scenario(par_cfg, scheme);

  ASSERT_FALSE(a.gbps.empty());
  EXPECT_EQ(a.gbps, b.gbps);
  EXPECT_EQ(a.queue_kb, b.queue_kb);
}

TEST(ShardedHarness, PerTorFatTreeCutMatchesSequential) {
  // sim_threads > pods selects the per-ToR plan (aggregation/core
  // plane on shard 0, one shard per ToR): quick() has 4 pods and 8
  // ToRs, so 6 threads can only come from the per-ToR cut. The fan-in
  // keeps cross-ToR traffic flowing both ways across the uplinks.
  IncastScenario cfg;
  cfg.topo = topo::FatTreeConfig::quick();
  cfg.fan_in = 8;
  cfg.query_bytes = 800'000;
  cfg.horizon = sim::milliseconds(1);
  const SchemeRun scheme{"", "powertcp", {}};

  IncastScenario par_cfg = cfg;
  par_cfg.sim_threads = 6;
  const std::uint64_t before =
      shard_fallback_count().load(std::memory_order_relaxed);
  const IncastSeries a = run_incast_scenario(cfg, scheme);
  const IncastSeries b = run_incast_scenario(par_cfg, scheme);

  ASSERT_FALSE(a.gbps.empty());
  EXPECT_EQ(a.gbps, b.gbps);
  EXPECT_EQ(a.queue_kb, b.queue_kb);
  // The tie-token total order means the cut needs no sequential rerun.
  EXPECT_EQ(shard_fallback_count().load(std::memory_order_relaxed), before);
}

TEST(ShardedHarness, RdcnPacketCircuitCutMatchesSequential) {
  // The rdcn plan pins the circuit plane (ToRs + circuit switch) to
  // shard 0, the packet core to shard 1, and spreads hosts by rack;
  // 4 threads exercises all three roles at once.
  RdcnScenario cfg;
  cfg.topo.n_tors = 8;
  cfg.topo.servers_per_tor = 4;
  cfg.topo.packet_bw = sim::Bandwidth::gbps(25);
  cfg.expected_flows = 4;
  cfg.flow_bytes = 50'000'000;
  cfg.horizon = sim::milliseconds(2);
  const SchemeRun scheme{"", "powertcp", {}};

  RdcnScenario par_cfg = cfg;
  par_cfg.sim_threads = 4;
  const std::uint64_t before =
      shard_fallback_count().load(std::memory_order_relaxed);
  const RdcnResult a = run_rdcn_scenario(cfg, scheme);
  const RdcnResult b = run_rdcn_scenario(par_cfg, scheme);

  ASSERT_FALSE(a.gbps.empty());
  EXPECT_EQ(a.gbps, b.gbps);
  EXPECT_EQ(a.voq_kb, b.voq_kb);
  EXPECT_EQ(a.p99_sojourn_us, b.p99_sojourn_us);
  EXPECT_EQ(a.circuit_utilization, b.circuit_utilization);
  EXPECT_EQ(shard_fallback_count().load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace powertcp::harness
