#include <gtest/gtest.h>

#include <vector>

#include "harness/scenarios.hpp"

/// End-to-end exactness of the sharded harness: the same scenario
/// config must produce the same numbers at every `sim_threads` value —
/// either because the partitions stayed causally independent (zero
/// boundary ambiguities) or because the harness detected otherwise and
/// reran the point sequentially (run_with_exact_fallback). The
/// ShardedHarness.* fixtures are part of the tsan preset's test filter:
/// they drive real worker threads, the cross-shard rings, and the
/// barrier protocol under TSan on every CI run.

namespace powertcp::harness {
namespace {

DumbbellScenario quick_dumbbell() {
  DumbbellScenario cfg;
  cfg.flow_bytes = {2'000'000, 1'500'000, 1'000'000, 500'000};
  cfg.stagger = sim::microseconds(200);
  cfg.horizon = sim::milliseconds(2);
  return cfg;
}

TEST(ShardedHarness, PartitionedDumbbellMatchesSequential) {
  const SchemeRun scheme{"", "powertcp", {}};
  DumbbellScenario seq_cfg = quick_dumbbell();
  seq_cfg.sim_threads = 1;
  DumbbellScenario par_cfg = quick_dumbbell();
  par_cfg.sim_threads = 4;

  const DumbbellSeries a = run_dumbbell_scenario(seq_cfg, scheme);
  const DumbbellSeries b = run_dumbbell_scenario(par_cfg, scheme);

  EXPECT_EQ(a.bin_start, b.bin_start);
  ASSERT_EQ(a.gbps.size(), b.gbps.size());
  for (std::size_t f = 0; f < a.gbps.size(); ++f) {
    EXPECT_EQ(a.gbps[f], b.gbps[f]) << "flow " << f;
  }
}

TEST(ShardedHarness, PartitionedIncastMatchesSequential) {
  IncastScenario cfg;
  cfg.topo = topo::FatTreeConfig::quick();
  cfg.horizon = sim::milliseconds(1);
  const SchemeRun scheme{"", "powertcp", {}};

  IncastScenario par_cfg = cfg;
  par_cfg.sim_threads = 4;
  const IncastSeries a = run_incast_scenario(cfg, scheme);
  const IncastSeries b = run_incast_scenario(par_cfg, scheme);

  ASSERT_FALSE(a.gbps.empty());
  EXPECT_EQ(a.gbps, b.gbps);
  EXPECT_EQ(a.queue_kb, b.queue_kb);
}

}  // namespace
}  // namespace powertcp::harness
