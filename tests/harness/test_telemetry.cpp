/// Flight-recorder telemetry coverage: `[telemetry]` parsing and
/// validation, the off-path golden (enabling telemetry appends flight
/// tables without perturbing a single byte of the original tables),
/// thread-count byte-identity with telemetry on, and the shape of the
/// emitted flight tables.

#include "harness/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace powertcp::harness {
namespace {

TelemetryConfig parse_telemetry(const std::string& text) {
  return load_telemetry_config(ConfigFile::parse(text, "telemetry.toml"));
}

TEST(TelemetryConfig, AbsentSectionIsDisabledDefaults) {
  const TelemetryConfig cfg = parse_telemetry("[experiment]\nslug = x\n");
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.capacity, 512);
  EXPECT_EQ(cfg.sample_every, sim::microseconds(10));
  EXPECT_EQ(cfg.flow, 1);
}

TEST(TelemetryConfig, ParsesAllKeys) {
  const TelemetryConfig cfg = parse_telemetry(
      "[telemetry]\nenabled = true\ncapacity = 64\n"
      "sample_every_us = 2.5\nflow = 3\n");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.capacity, 64);
  EXPECT_EQ(cfg.sample_every, sim::from_seconds(2.5e-6));
  EXPECT_EQ(cfg.flow, 3);
}

TEST(TelemetryConfig, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_telemetry("[telemetry]\ncapacity = 1\n"), ConfigError);
  EXPECT_THROW(parse_telemetry("[telemetry]\ncapacity = 2000000\n"),
               ConfigError);
  EXPECT_THROW(parse_telemetry("[telemetry]\nsample_every_us = 0\n"),
               ConfigError);
  EXPECT_THROW(parse_telemetry("[telemetry]\nsample_every_us = -1\n"),
               ConfigError);
  EXPECT_THROW(parse_telemetry("[telemetry]\nflow = 0\n"), ConfigError);
}

TEST(TelemetryConfig, RejectsUnknownKeys) {
  EXPECT_THROW(parse_telemetry("[telemetry]\nperiod_us = 10\n"), ConfigError);
}

// ---- end-to-end through the runner --------------------------------

constexpr const char* kMiniDumbbell = R"(
[experiment]
kind = dumbbell
slug = mini
schemes = powertcp, timely

[workload]
flow_mb = 3, 1.5
stagger_us = 300
horizon_ms = 2
bin_us = 100
row_every = 4
)";

std::vector<ResultTable> run_mini(bool telemetry, int threads = 2) {
  RunnerLoadOptions opts;
  opts.force_telemetry = telemetry;
  const RunnerConfig rc =
      load_runner_config(ConfigFile::parse(kMiniDumbbell, "mini.toml"),
                         ScenarioRegistry::instance(), opts);
  return run_config(rc, SweepRunner(threads));
}

std::string render_all(const std::vector<ResultTable>& tables) {
  std::string out;
  for (const auto& t : tables) {
    out += t.render_text();
    t.append_csv(out);
    t.append_json(out, 0);
    out += '\n';
  }
  return out;
}

bool is_flight(const ResultTable& t) {
  return t.slug.find("_flight") != std::string::npos;
}

/// The off-path golden: turning telemetry ON must not perturb any
/// pre-existing table — it only APPENDS `*_flight` tables. With the
/// flight tables filtered out, the on-run renders byte-identical to
/// the off-run (which is itself the telemetry-free code path every
/// shipped config exercises by default).
TEST(TelemetryGolden, EnablingTelemetryOnlyAppendsFlightTables) {
  const auto off = run_mini(false);
  const auto on = run_mini(true);
  for (const auto& t : off) {
    EXPECT_FALSE(is_flight(t)) << t.slug;
  }
  std::vector<ResultTable> on_main;
  std::size_t flights = 0;
  for (const auto& t : on) {
    if (is_flight(t)) {
      ++flights;
    } else {
      on_main.push_back(t);
    }
  }
  EXPECT_EQ(flights, 2u) << "one flight table per scheme";
  EXPECT_EQ(render_all(off), render_all(on_main));
}

TEST(TelemetryGolden, FlightTablesAreByteIdenticalAcrossThreadCounts) {
  EXPECT_EQ(render_all(run_mini(true, 1)), render_all(run_mini(true, 3)));
}

TEST(TelemetryGolden, FlightTablesCarryTheFiveChannels) {
  const auto tables = run_mini(true);
  bool seen = false;
  for (const auto& t : tables) {
    if (!is_flight(t)) continue;
    seen = true;
    EXPECT_EQ(t.key_columns, std::vector<std::string>{"time"});
    EXPECT_EQ(t.value_columns,
              (std::vector<std::string>{"qKB", "power", "cwndKB", "paceGbps",
                                        "ecn"}));
    EXPECT_FALSE(t.rows.empty()) << t.slug;
  }
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace powertcp::harness
