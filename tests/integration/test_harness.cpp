/// Tests for the fat-tree experiment runner: workload accounting, queue
/// sampling, incast overlay, and a TEST_P sweep proving every supported
/// scheme (including HOMA) survives the full pipeline.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace powertcp {
namespace {

harness::FatTreeExperiment tiny(const std::string& cc) {
  harness::FatTreeExperiment cfg;
  cfg.cc = cc;
  cfg.uplink_load = 0.3;
  cfg.duration = sim::milliseconds(2);
  cfg.size_scale = 0.05;
  cfg.seed = 21;
  return cfg;
}

class HarnessSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(HarnessSuite, RunsAndCompletesMostFlows) {
  const auto r = harness::run_fat_tree_experiment(tiny(GetParam()));
  EXPECT_GT(r.flows_started, 10u) << GetParam();
  EXPECT_GT(r.completion_rate(), 0.9) << GetParam();
  EXPECT_GT(r.tau, 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, HarnessSuite,
    ::testing::Values("powertcp", "theta-powertcp", "hpcc", "dcqcn",
                      "timely", "dctcp", "swift", "homa"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Harness, QueueSamplesAreCollected) {
  const auto r = harness::run_fat_tree_experiment(tiny("powertcp"));
  // 8 ToRs x 2 uplinks sampled every 20us over 2ms: ~1600 samples.
  EXPECT_GT(r.uplink_queue_bytes.count(), 1'000u);
}

TEST(Harness, IncastOverlayAddsFlows) {
  auto base = tiny("powertcp");
  const auto without = harness::run_fat_tree_experiment(base);
  base.incast = true;
  base.incast_requests_per_sec = 2'000;  // ~4 bursts in 2 ms
  base.incast_fan_in = 8;
  base.incast_request_bytes = 80'000;
  const auto with = harness::run_fat_tree_experiment(base);
  EXPECT_GT(with.flows_started, without.flows_started);
}

TEST(Harness, LoadScalesFlowCount) {
  auto lo = tiny("powertcp");
  lo.uplink_load = 0.2;
  auto hi = tiny("powertcp");
  hi.uplink_load = 0.8;
  const auto rlo = harness::run_fat_tree_experiment(lo);
  const auto rhi = harness::run_fat_tree_experiment(hi);
  // Poisson arrival rate scales linearly with load.
  EXPECT_GT(static_cast<double>(rhi.flows_started),
            2.5 * static_cast<double>(rlo.flows_started));
}

TEST(Harness, SlowdownsAreBoundedBelowByPathPhysics) {
  const auto r = harness::run_fat_tree_experiment(tiny("powertcp"));
  ASSERT_GT(r.fct.flow_count(), 0u);
  // The ideal model charges every flow the fabric-wide max base RTT
  // (the paper's τ), so same-rack flows legitimately report slowdowns
  // below 1 — but never below the ratio of the shortest to the longest
  // path, and transfers can never beat the line rate itself.
  EXPECT_GE(r.fct.all_slowdowns().min(), 0.1);
  for (const auto& f : r.fct.flows()) {
    EXPECT_GE(f.finish - f.start,
              sim::Bandwidth::gbps(25).tx_time(f.size_bytes));
  }
}

TEST(Harness, SizeScaleShrinksFlows) {
  auto cfg = tiny("powertcp");
  cfg.size_scale = 0.01;
  const auto r = harness::run_fat_tree_experiment(cfg);
  for (const auto& f : r.fct.flows()) {
    EXPECT_LE(f.size_bytes, 300'000);  // 30MB x 0.01
  }
}

}  // namespace
}  // namespace powertcp
