/// Conservation and accounting invariants under randomized traffic:
/// every payload byte a receiver counts was sent exactly once (no
/// duplication of *new* data), switch byte counters balance, and the
/// shared buffer returns to empty when the network drains.

#include <gtest/gtest.h>

#include "cc/factory.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "topo/dumbbell.hpp"
#include "topo/fat_tree.hpp"

namespace powertcp {
namespace {

TEST(Conservation, ReceiverCountsExactlyTheFlowBytes) {
  // Random flow sizes, all algorithms mixed on one bottleneck.
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 6;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();

  sim::Rng rng(99);
  std::unordered_map<net::FlowId, std::int64_t> sent, received;
  for (int i = 0; i < 6; ++i) {
    const auto id = static_cast<net::FlowId>(i + 1);
    const std::int64_t size = rng.uniform_int(1, 300'000);
    sent[id] = size;
    const auto& name =
        cc::sender_cc_names()[i % cc::sender_cc_names().size()];
    topo.sender(i).start_flow(id, topo.receiver().id(), size,
                              cc::make_factory(name)(params), params,
                              sim::microseconds(rng.uniform_int(0, 100)));
  }
  topo.receiver().set_data_callback(
      [&received](net::FlowId f, std::int64_t b, sim::TimePs) {
        received[f] += b;
      });
  simulator.run_until(sim::milliseconds(40));
  for (const auto& [id, size] : sent) {
    EXPECT_EQ(received[id], size) << "flow " << id;
  }
}

TEST(Conservation, SharedBufferDrainsToZero) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::FatTreeConfig cfg = topo::FatTreeConfig::quick();
  topo::FatTree fabric(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = fabric.max_base_rtt();

  sim::Rng rng(7);
  const auto factory = cc::make_factory("powertcp");
  for (int i = 0; i < 40; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, 63));
    int dst = static_cast<int>(rng.uniform_int(0, 63));
    if (dst == src) dst = (dst + 1) % 64;
    fabric.host(src).start_flow(
        static_cast<net::FlowId>(i + 1), fabric.host_node(dst),
        rng.uniform_int(1'000, 400'000), factory(params), params,
        sim::microseconds(rng.uniform_int(0, 500)));
  }
  simulator.run_until(sim::milliseconds(40));
  for (int t = 0; t < fabric.tor_count(); ++t) {
    EXPECT_EQ(fabric.tor(t).shared_buffer().used_bytes(), 0)
        << "tor " << t;
  }
  for (int a = 0; a < fabric.agg_count(); ++a) {
    EXPECT_EQ(fabric.agg(a).shared_buffer().used_bytes(), 0);
  }
}

TEST(Conservation, PortTxBytesMatchArrivalsPlusBacklog) {
  // On an uncongested path, the bottleneck's tx counter equals the
  // bytes that reached the receiver (wire bytes).
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::DumbbellConfig cfg;
  cfg.n_senders = 1;
  topo::Dumbbell topo(network, cfg);
  cc::FlowParams params;
  params.host_bw = cfg.host_bw;
  params.base_rtt = topo.base_rtt();

  std::int64_t payload = 0;
  topo.receiver().set_data_callback(
      [&payload](net::FlowId, std::int64_t b, sim::TimePs) {
        payload += b;
      });
  topo.sender(0).start_flow(1, topo.receiver().id(), 500'000,
                            cc::make_factory("powertcp")(params), params,
                            0);
  simulator.run_until(sim::milliseconds(5));
  EXPECT_EQ(payload, 500'000);
  // 500 packets x 1048 B on the wire, no drops, nothing left queued.
  EXPECT_EQ(topo.bottleneck_port().tx_bytes(), 500 * 1048);
  EXPECT_EQ(topo.bottleneck_port().drops(), 0u);
  EXPECT_EQ(topo.bottleneck_port().queue_bytes(), 0);
}

TEST(MultiBottleneck, PowerTcpReactsToTheWorstHop) {
  // Chain: sender - sw1 -(25G)- sw2 -(10G)- receiver. The second hop
  // is the bottleneck; INT must steer the flow to ~10G with a small
  // queue at sw2 and none at sw1 (paper §3.5: INT reacts to the most
  // bottlenecked link).
  sim::Simulator simulator;
  net::Network network(simulator);
  auto* sw1 = network.add_node<net::Switch>("sw1", net::SwitchConfig{});
  auto* sw2 = network.add_node<net::Switch>("sw2", net::SwitchConfig{});
  auto* snd = network.add_node<host::Host>("snd");
  auto* rcv = network.add_node<host::Host>("rcv");
  network.connect(*snd, *sw1, sim::Bandwidth::gbps(25),
                  sim::microseconds(1));
  const auto mid = network.connect(*sw1, *sw2, sim::Bandwidth::gbps(25),
                                   sim::microseconds(1));
  const auto last = network.connect(*sw2, *rcv, sim::Bandwidth::gbps(10),
                                    sim::microseconds(1));
  network.compute_routes();

  cc::FlowParams params;
  params.host_bw = sim::Bandwidth::gbps(25);
  params.base_rtt = sim::microseconds(12);
  std::int64_t received = 0;
  rcv->set_data_callback(
      [&received](net::FlowId, std::int64_t b, sim::TimePs) {
        received += b;
      });
  snd->start_flow(1, rcv->id(), 1'000'000'000,
                  cc::make_factory("powertcp")(params), params, 0);
  simulator.run_until(sim::milliseconds(5));

  const double gbps = static_cast<double>(received) * 8.0 / 5e-3 / 1e9;
  EXPECT_GT(gbps, 0.8 * 9.5);   // fills the 10G bottleneck...
  EXPECT_LT(gbps, 10.0);        // ...but no more
  EXPECT_EQ(sw1->port(mid.a_port).drops(), 0u);
  EXPECT_EQ(sw2->port(last.a_port).drops(), 0u);
  // The first hop never congests.
  EXPECT_LT(sw1->port(mid.a_port).queue_bytes(), 3'000);
}

}  // namespace
}  // namespace powertcp
