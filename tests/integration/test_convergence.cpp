/// Cross-module integration: every congestion controller driving real
/// flows over the simulated data plane. Parameterized (TEST_P) over the
/// algorithm registry so each law is held to the same invariants.

#include <gtest/gtest.h>

#include "cc/factory.hpp"
#include "harness/experiment.hpp"
#include "net/network.hpp"
#include "stats/timeseries.hpp"
#include "topo/dumbbell.hpp"

namespace powertcp {
namespace {

class AlgorithmSuite : public ::testing::TestWithParam<std::string> {
 protected:
  sim::Simulator simulator;
  net::Network network{simulator};
  topo::DumbbellConfig cfg;
  std::unique_ptr<topo::Dumbbell> topo;
  cc::FlowParams params;

  void build(int senders) {
    cfg.n_senders = senders;
    cfg.ecn = harness::ecn_profile_for(GetParam());
    topo = std::make_unique<topo::Dumbbell>(network, cfg);
    params.host_bw = cfg.host_bw;
    params.base_rtt = topo->base_rtt();
    params.expected_flows = senders;
  }

  void start_flow(int sender, net::FlowId id, std::int64_t size,
                  sim::TimePs at = 0) {
    const auto factory = cc::make_factory(GetParam());
    topo->sender(sender).start_flow(id, topo->receiver().id(), size,
                                    factory(params), params, at);
  }
};

TEST_P(AlgorithmSuite, SingleFlowSustainsNearLineRate) {
  build(1);
  std::int64_t received = 0;
  topo->receiver().set_data_callback(
      [&received](net::FlowId, std::int64_t b, sim::TimePs) {
        received += b;
      });
  start_flow(0, 1, 1'000'000'000);
  simulator.run_until(sim::milliseconds(4));
  const double gbps =
      static_cast<double>(received) * 8.0 / sim::to_seconds(
          sim::milliseconds(4)) / 1e9;
  // Goodput ceiling is 25G x 1000/1048 = 23.85G; demand >= 85% of it.
  EXPECT_GT(gbps, 0.85 * 23.85) << GetParam();
}

TEST_P(AlgorithmSuite, TenToOneIncastAbsorbedWithoutCollapse) {
  build(10);
  int completed = 0;
  const auto factory = cc::make_factory(GetParam());
  for (int i = 0; i < 10; ++i) {
    topo->sender(i).start_flow(
        static_cast<net::FlowId>(i + 1), topo->receiver().id(), 100'000,
        factory(params), params, 0,
        [&completed](const host::FlowCompletion&) { ++completed; });
  }
  simulator.run_until(sim::milliseconds(20));
  EXPECT_EQ(completed, 10) << GetParam();
}

TEST_P(AlgorithmSuite, QueueDrainsAfterCongestionEpisode) {
  build(8);
  stats::QueueSeries queue;
  topo->bottleneck_port().set_queue_monitor(&queue);
  for (int i = 0; i < 8; ++i) {
    start_flow(i, static_cast<net::FlowId>(i + 1), 300'000);
  }
  simulator.run_until(sim::milliseconds(10));
  // All flows are long gone; the bottleneck queue must be empty.
  EXPECT_EQ(queue.at(sim::milliseconds(10)), 0) << GetParam();
}

TEST_P(AlgorithmSuite, LateJoinerGetsBandwidth) {
  build(2);
  std::array<std::int64_t, 2> got{0, 0};
  topo->receiver().set_data_callback(
      [&got](net::FlowId f, std::int64_t b, sim::TimePs) {
        got.at(f - 1) += b;
      });
  start_flow(0, 1, 1'000'000'000);
  start_flow(1, 2, 1'000'000'000, sim::milliseconds(1));
  simulator.run_until(sim::milliseconds(6));
  // In the shared window [1ms, 6ms] the newcomer must carry a
  // meaningful share (>= 20% of the incumbent's bytes).
  EXPECT_GT(static_cast<double>(got[1]),
            0.2 * static_cast<double>(got[0]) * 5.0 / 6.0)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSuite,
    ::testing::Values("powertcp", "theta-powertcp", "hpcc", "dcqcn",
                      "timely", "dctcp", "swift"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ------------------------------------------------------- paper orderings

TEST(PaperOrdering, PowerTcpKeepsLowerIncastQueueThanTimely) {
  const auto peak_queue = [](const std::string& algo) {
    sim::Simulator simulator;
    net::Network network(simulator);
    topo::DumbbellConfig cfg;
    cfg.n_senders = 12;
    topo::Dumbbell topo(network, cfg);
    cc::FlowParams params;
    params.host_bw = cfg.host_bw;
    params.base_rtt = topo.base_rtt();
    params.expected_flows = 12;
    stats::QueueSeries queue;
    topo.bottleneck_port().set_queue_monitor(&queue);
    const auto factory = cc::make_factory(algo);
    // Long flow plus burst.
    topo.sender(0).start_flow(1, topo.receiver().id(), 1'000'000'000,
                              factory(params), params, 0);
    for (int i = 1; i < 12; ++i) {
      topo.sender(i).start_flow(static_cast<net::FlowId>(i + 1),
                                topo.receiver().id(), 200'000,
                                factory(params), params,
                                sim::microseconds(300));
    }
    simulator.run_until(sim::milliseconds(4));
    return queue.max_bytes();
  };
  EXPECT_LT(peak_queue("powertcp"), peak_queue("timely"));
}

TEST(PaperOrdering, PowerTcpShortFlowTailBeatsDcqcnUnderLoad) {
  harness::FatTreeExperiment base;
  base.topo = topo::FatTreeConfig::quick();
  base.duration = sim::milliseconds(6);
  base.uplink_load = 0.6;
  base.size_scale = 0.1;
  base.seed = 3;

  auto run = [&](const std::string& cc) {
    auto cfg = base;
    cfg.cc = cc;
    const auto r = harness::run_fat_tree_experiment(cfg);
    return r.fct.slowdowns_in_range(0, 1'000).percentile(99);
  };
  EXPECT_LT(run("powertcp"), run("dcqcn"));
}

}  // namespace
}  // namespace powertcp
