/// Reproducibility: the entire pipeline (workload generation, packet
/// exchange, CC reactions, statistics) is a pure function of the seed.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace powertcp {
namespace {

harness::FatTreeExperiment small_experiment(std::uint64_t seed) {
  harness::FatTreeExperiment cfg;
  cfg.topo = topo::FatTreeConfig::quick();
  cfg.cc = "powertcp";
  cfg.uplink_load = 0.4;
  cfg.duration = sim::milliseconds(3);
  cfg.size_scale = 0.1;
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, SameSeedReproducesEveryFlowRecord) {
  const auto a = harness::run_fat_tree_experiment(small_experiment(9));
  const auto b = harness::run_fat_tree_experiment(small_experiment(9));
  ASSERT_EQ(a.fct.flow_count(), b.fct.flow_count());
  for (std::size_t i = 0; i < a.fct.flows().size(); ++i) {
    const auto& fa = a.fct.flows()[i];
    const auto& fb = b.fct.flows()[i];
    EXPECT_EQ(fa.flow_id, fb.flow_id);
    EXPECT_EQ(fa.size_bytes, fb.size_bytes);
    EXPECT_EQ(fa.start, fb.start);
    EXPECT_EQ(fa.finish, fb.finish);
  }
  EXPECT_EQ(a.drops, b.drops);
}

TEST(Determinism, DifferentSeedsProduceDifferentWorkloads) {
  const auto a = harness::run_fat_tree_experiment(small_experiment(1));
  const auto b = harness::run_fat_tree_experiment(small_experiment(2));
  // Same statistical regime, different draws.
  ASSERT_GT(a.fct.flow_count(), 0u);
  ASSERT_GT(b.fct.flow_count(), 0u);
  bool any_difference = a.fct.flow_count() != b.fct.flow_count();
  for (std::size_t i = 0;
       !any_difference &&
       i < std::min(a.fct.flows().size(), b.fct.flows().size());
       ++i) {
    any_difference = a.fct.flows()[i].size_bytes !=
                     b.fct.flows()[i].size_bytes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, HarnessAccountsForEveryFlow) {
  const auto r = harness::run_fat_tree_experiment(small_experiment(17));
  EXPECT_GT(r.flows_started, 0u);
  EXPECT_LE(r.flows_completed, r.flows_started);
  // Quick horizon with 20 ms drain: nearly everything finishes.
  EXPECT_GT(r.completion_rate(), 0.95);
  EXPECT_EQ(r.fct.flow_count(), r.flows_completed);
}

TEST(Determinism, EcnProfilesMatchAlgorithms) {
  EXPECT_TRUE(harness::ecn_profile_for("dcqcn").enabled);
  EXPECT_TRUE(harness::ecn_profile_for("dctcp").enabled);
  EXPECT_FALSE(harness::ecn_profile_for("powertcp").enabled);
  EXPECT_FALSE(harness::ecn_profile_for("hpcc").enabled);
  // DCTCP uses step marking; DCQCN a RED band.
  const auto dctcp = harness::ecn_profile_for("dctcp");
  EXPECT_EQ(dctcp.kmin_bytes, dctcp.kmax_bytes);
  const auto dcqcn = harness::ecn_profile_for("dcqcn");
  EXPECT_LT(dcqcn.kmin_bytes, dcqcn.kmax_bytes);
}

}  // namespace
}  // namespace powertcp
