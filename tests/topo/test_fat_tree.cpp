#include "topo/fat_tree.hpp"

#include <gtest/gtest.h>

#include "cc/factory.hpp"
#include "net/network.hpp"

namespace powertcp::topo {
namespace {

struct FatTreeFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
};

TEST_F(FatTreeFixture, PaperConfigCounts) {
  FatTreeConfig cfg;  // paper defaults
  FatTree ft(network, cfg);
  EXPECT_EQ(ft.host_count(), 256);
  EXPECT_EQ(ft.tor_count(), 8);
  EXPECT_EQ(ft.agg_count(), 8);
  EXPECT_EQ(ft.core_count(), 2);
  EXPECT_DOUBLE_EQ(ft.oversubscription(), 4.0);
}

TEST_F(FatTreeFixture, QuickConfigPreservesOversubscription) {
  FatTree ft(network, FatTreeConfig::quick());
  EXPECT_DOUBLE_EQ(ft.oversubscription(), 4.0);
  EXPECT_EQ(ft.host_count(), 64);
}

TEST_F(FatTreeFixture, HostToTorMapping) {
  FatTree ft(network, FatTreeConfig::quick());
  const int spt = ft.config().servers_per_tor;
  EXPECT_EQ(ft.tor_of_host(0), 0);
  EXPECT_EQ(ft.tor_of_host(spt - 1), 0);
  EXPECT_EQ(ft.tor_of_host(spt), 1);
  EXPECT_EQ(ft.tor_down_port(spt + 3), 3);
}

TEST_F(FatTreeFixture, UplinkPortsFollowDownPorts) {
  FatTree ft(network, FatTreeConfig::quick());
  const auto ports = ft.tor_uplink_ports(0);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], ft.config().servers_per_tor);
  // Uplink ports must run at fabric speed.
  EXPECT_EQ(ft.tor(0).port(ports[0]).bandwidth(),
            ft.config().fabric_bw);
}

TEST_F(FatTreeFixture, MaxBaseRttCountsAllHops) {
  FatTreeConfig cfg = FatTreeConfig::quick();
  FatTree ft(network, cfg);
  const sim::TimePs prop_only =
      2 * (2 * cfg.host_link_delay + 2 * cfg.fabric_link_delay +
           2 * cfg.core_link_delay);
  EXPECT_GT(ft.max_base_rtt(), prop_only);
  EXPECT_LT(ft.max_base_rtt(), prop_only + sim::microseconds(10));
}

TEST_F(FatTreeFixture, CrossPodDeliveryWorks) {
  FatTree ft(network, FatTreeConfig::quick());
  const int src = 0;
  const int dst = ft.host_count() - 1;  // farthest pod
  cc::FlowParams params;
  params.host_bw = ft.config().host_bw;
  params.base_rtt = ft.max_base_rtt();
  int completions = 0;
  ft.host(src).start_flow(
      1, ft.host_node(dst), 50'000, cc::make_factory("powertcp")(params),
      params, 0,
      [&completions](const host::FlowCompletion&) { ++completions; });
  simulator.run_until(sim::milliseconds(3));
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(ft.total_drops(), 0u);
}

TEST_F(FatTreeFixture, IntraPodCrossRackDelivery) {
  FatTree ft(network, FatTreeConfig::quick());
  const int src = 0;
  const int dst = ft.config().servers_per_tor;  // next rack, same pod
  cc::FlowParams params;
  params.host_bw = ft.config().host_bw;
  params.base_rtt = ft.max_base_rtt();
  int completions = 0;
  ft.host(src).start_flow(
      1, ft.host_node(dst), 50'000, cc::make_factory("powertcp")(params),
      params, 0,
      [&completions](const host::FlowCompletion&) { ++completions; });
  simulator.run_until(sim::milliseconds(3));
  EXPECT_EQ(completions, 1);
}

TEST_F(FatTreeFixture, HostLoadConversionInvertsOversubscription) {
  FatTree ft(network, FatTreeConfig::quick());
  // uplink load = host_load * oversub * inter-rack fraction.
  const double host_load = ft.host_load_for_uplink_load(0.6);
  const double frac =
      static_cast<double>(ft.host_count() - ft.config().servers_per_tor) /
      static_cast<double>(ft.host_count() - 1);
  EXPECT_NEAR(host_load * 4.0 * frac, 0.6, 1e-12);
}

TEST_F(FatTreeFixture, RejectsNonPositiveCounts) {
  FatTreeConfig cfg;
  cfg.pods = 0;
  EXPECT_THROW(FatTree(network, cfg), std::invalid_argument);
}

TEST_F(FatTreeFixture, BufferScalesWithPortCapacity) {
  FatTreeConfig cfg = FatTreeConfig::quick();
  FatTree ft(network, cfg);
  // ToR: 8 x 25G + 2 x 25G = 250 G -> 2.5 MB at 10 KB/Gbps.
  EXPECT_EQ(ft.tor(0).shared_buffer().total_bytes(), 2'500'000);
}

}  // namespace
}  // namespace powertcp::topo
