#include "topo/rdcn.hpp"

#include <gtest/gtest.h>

#include "cc/factory.hpp"
#include "net/network.hpp"

namespace powertcp::topo {
namespace {

struct RdcnFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator};
};

TEST_F(RdcnFixture, SmallConfigBuilds) {
  Rdcn rdcn(network, RdcnConfig::small());
  EXPECT_EQ(rdcn.host_count(), 8);
  EXPECT_EQ(rdcn.tor_of_host(0), 0);
  EXPECT_EQ(rdcn.tor_of_host(7), 3);
  EXPECT_EQ(rdcn.schedule().n_matchings(), 3);
}

TEST_F(RdcnFixture, TorOfNodeMapsHostsOnly) {
  Rdcn rdcn(network, RdcnConfig::small());
  EXPECT_EQ(rdcn.tor_of_node(rdcn.host(2).id()), 1);
  EXPECT_THROW(rdcn.tor_of_node(rdcn.packet_core().id()), std::logic_error);
}

TEST_F(RdcnFixture, IntraRackDeliveryBypassesUplinks) {
  Rdcn rdcn(network, RdcnConfig::small());
  cc::FlowParams params;
  params.host_bw = rdcn.config().host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  int done = 0;
  rdcn.host(0).start_flow(
      1, rdcn.host(1).id(), 20'000, cc::make_factory("powertcp")(params),
      params, 0, [&done](const host::FlowCompletion&) { ++done; });
  simulator.run_until(sim::milliseconds(2));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(rdcn.tor(0).voqs().total_packets(), 0u);
}

TEST_F(RdcnFixture, InterRackDeliveryViaPacketPlaneDuringNightSlots) {
  // Rack 0 -> rack 2 is connected by the circuit only in slot 1; before
  // that the packet plane must carry traffic.
  Rdcn rdcn(network, RdcnConfig::small());
  cc::FlowParams params;
  params.host_bw = rdcn.config().host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  int done = 0;
  rdcn.host(0).start_flow(
      1, rdcn.host(4).id(), 20'000, cc::make_factory("powertcp")(params),
      params, 0, [&done](const host::FlowCompletion&) { ++done; });
  // Run for less than slot 1's start so only the packet plane exists.
  simulator.run_until(sim::microseconds(200));
  EXPECT_EQ(done, 1);
}

TEST_F(RdcnFixture, CircuitCarriesBulkDuringItsDay) {
  Rdcn rdcn(network, RdcnConfig::small());
  cc::FlowParams params;
  params.host_bw = rdcn.config().host_bw;
  params.base_rtt = rdcn.max_base_rtt();
  params.expected_flows = 4;
  // Rack 0 -> rack 1 is slot 0: the circuit is up from t=0. A large
  // transfer must beat the packet plane's 25G ceiling.
  std::int64_t received = 0;
  rdcn.host(2).set_data_callback(
      [&received](net::FlowId, std::int64_t b, sim::TimePs) {
        received += b;
      });
  rdcn.host(0).start_flow(1, rdcn.host(2).id(), 100'000'000,
                          cc::make_factory("powertcp")(params), params, 0);
  simulator.run_until(rdcn.config().day);
  // One host NIC is 25G, so the ceiling here is NIC-bound; check we're
  // at it rather than at some lower packet-plane share.
  const double gbps = static_cast<double>(received) * 8.0 /
                      sim::to_seconds(rdcn.config().day) / 1e9;
  EXPECT_GT(gbps, 20.0);
}

TEST_F(RdcnFixture, VoqHoldsTrafficHeadedToActiveCircuit) {
  Rdcn rdcn(network, RdcnConfig::small());
  // During slot 0, rack0's circuit serves rack 1; packets to rack 1 sit
  // in VOQ[1] and drain over the circuit, not the uplink.
  net::Packet p;
  p.src = rdcn.host(0).id();
  p.dst = rdcn.host(2).id();  // rack 1
  p.payload_bytes = 1000;
  p.type = net::PacketType::kData;
  rdcn.tor(0).receive(std::move(p), 0);
  // The circuit (up for rack 1 in slot 0) grabbed the packet for
  // serialization the moment it hit the VOQ.
  EXPECT_TRUE(rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).busy());
  EXPECT_EQ(rdcn.tor(0).voqs().voq_bytes(1), 0);
  simulator.run_until(sim::microseconds(50));
  EXPECT_FALSE(rdcn.tor(0).port(rdcn.tor(0).circuit_port_index()).busy());
}

TEST_F(RdcnFixture, MaxBaseRttIsPacketPlanePath) {
  Rdcn rdcn(network, RdcnConfig::small());
  const auto& cfg = rdcn.config();
  const sim::TimePs prop =
      2 * (2 * cfg.host_link_delay + 2 * cfg.fabric_link_delay);
  EXPECT_GT(rdcn.max_base_rtt(), prop);
  EXPECT_LT(rdcn.max_base_rtt(), prop + sim::microseconds(5));
}

}  // namespace
}  // namespace powertcp::topo
