/// Property tests for the fluid model, the motivation figures' algebra
/// (Fig. 2), and the Appendix A theorems.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/control_law.hpp"
#include "analysis/fluid_model.hpp"
#include "analysis/theorems.hpp"

namespace powertcp::analysis {
namespace {

FluidParams params100g() {
  FluidParams p;
  p.bandwidth_Bps = 100e9 / 8.0;
  p.base_rtt_s = 20e-6;
  p.gamma = 0.9;
  p.update_interval_s = 20e-6;
  p.beta_bytes = 0.01 * p.bdp_bytes();
  return p;
}

// ------------------------------------------------------------ Fig. 2 math

TEST(FeedbackRatio, VoltageLawsIgnoreBuildupRate) {
  const FluidParams p = params100g();
  const double q = 25'000;
  const double r1 = feedback_ratio(LawType::kQueueLength, p, q, 0.0,
                                   p.bandwidth_Bps);
  const double r2 = feedback_ratio(LawType::kQueueLength, p, q,
                                   8 * p.bandwidth_Bps, p.bandwidth_Bps);
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(FeedbackRatio, CurrentLawIgnoresQueueLength) {
  const FluidParams p = params100g();
  const double qdot = 2 * p.bandwidth_Bps;
  const double r1 =
      feedback_ratio(LawType::kRttGradient, p, 0.0, qdot, p.bandwidth_Bps);
  const double r2 = feedback_ratio(LawType::kRttGradient, p, 1'000'000,
                                   qdot, p.bandwidth_Bps);
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(FeedbackRatio, PowerIsProductOfBothDimensions) {
  const FluidParams p = params100g();
  const double q = 50'000;
  const double qdot = 3 * p.bandwidth_Bps;
  const double v =
      feedback_ratio(LawType::kQueueLength, p, q, qdot, p.bandwidth_Bps);
  const double c =
      feedback_ratio(LawType::kRttGradient, p, q, qdot, p.bandwidth_Bps);
  const double pw =
      feedback_ratio(LawType::kPower, p, q, qdot, p.bandwidth_Bps);
  EXPECT_NEAR(pw, v * c, 1e-12);
}

TEST(FeedbackRatio, DelayAndQueueLawsCoincide) {
  const FluidParams p = params100g();
  EXPECT_NEAR(
      feedback_ratio(LawType::kQueueLength, p, 70'000, 0, p.bandwidth_Bps),
      feedback_ratio(LawType::kDelay, p, 70'000, 0, p.bandwidth_Bps),
      1e-12);
}

TEST(FeedbackRatio, PaperFigTwoCValues) {
  // b·τ = 22.32 packets of 1 KB: the paper's printed decrease factors.
  FluidParams p;
  p.bandwidth_Bps = 25e9 / 8.0;
  p.base_rtt_s = 22.32 * 1000.0 / p.bandwidth_Bps;
  const double b = p.bandwidth_Bps;
  EXPECT_NEAR(feedback_ratio(LawType::kQueueLength, p, 50'000, 8 * b, b),
              3.24, 0.01);
  EXPECT_NEAR(feedback_ratio(LawType::kQueueLength, p, 25'000, 0, b), 2.12,
              0.01);
  EXPECT_NEAR(feedback_ratio(LawType::kRttGradient, p, 25'000, 8 * b, b),
              9.0, 1e-9);
  EXPECT_NEAR(feedback_ratio(LawType::kRttGradient, p, 25'000, 0, b), 1.0,
              1e-9);
}

// --------------------------------------------------------- fluid dynamics

TEST(FluidModel, QueueGrowsWhenWindowExceedsBdp) {
  const FluidModel m(LawType::kPower, params100g());
  const FluidState s{2 * params100g().bdp_bytes(), 0.0};
  EXPECT_GT(m.queue_derivative(s), 0.0);
}

TEST(FluidModel, EmptyQueueCannotDrainNegative) {
  const FluidModel m(LawType::kPower, params100g());
  const FluidState s{0.1 * params100g().bdp_bytes(), 0.0};
  EXPECT_DOUBLE_EQ(m.queue_derivative(s), 0.0);
}

TEST(FluidModel, ServiceRateCapsAtBandwidth) {
  const FluidModel m(LawType::kPower, params100g());
  const FluidState congested{5 * params100g().bdp_bytes(), 1'000'000.0};
  EXPECT_DOUBLE_EQ(m.service_rate(congested), params100g().bandwidth_Bps);
  const FluidState idle{0.5 * params100g().bdp_bytes(), 0.0};
  EXPECT_LT(m.service_rate(idle), params100g().bandwidth_Bps);
}

TEST(FluidModel, RkStepMatchesClosedFormForPowerLaw) {
  // For the power law the window ODE is linear:
  // ẇ = γ_r (bτ + β̂ − w). Compare RK4 against the exact solution.
  const FluidParams p = params100g();
  const FluidModel m(LawType::kPower, p);
  FluidState s{3 * p.bdp_bytes(), 2 * p.bdp_bytes()};
  const double h = 1e-7;
  double t = 0;
  for (int i = 0; i < 5000; ++i) {
    s = m.step(s, h);
    t += h;
  }
  EXPECT_NEAR(s.w_bytes, power_tcp_window_solution(p, 3 * p.bdp_bytes(), t),
              p.bdp_bytes() * 0.01);
}

TEST(FluidModel, VoltageAndPowerSettleAtAnalyticEquilibrium) {
  for (const LawType law : {LawType::kQueueLength, LawType::kPower}) {
    const FluidParams p = params100g();
    const FluidModel m(law, p);
    const FluidState eq = m.analytic_equilibrium();
    const FluidState settled =
        m.settle({2 * p.bdp_bytes(), 0.5 * p.bdp_bytes()}, 0.02);
    EXPECT_NEAR(settled.w_bytes, eq.w_bytes, eq.w_bytes * 0.02)
        << law_name(law);
    EXPECT_NEAR(settled.q_bytes, eq.q_bytes, p.bdp_bytes() * 0.02)
        << law_name(law);
  }
}

TEST(FluidModel, GradientLawFinalQueueDependsOnInitialState) {
  const FluidParams p = params100g();
  const FluidModel m(LawType::kRttGradient, p);
  const FluidState a = m.settle({0.5 * p.bdp_bytes(), 0.0}, 0.02);
  const FluidState b = m.settle({4.0 * p.bdp_bytes(), p.bdp_bytes()}, 0.02);
  EXPECT_GT(std::abs(a.q_bytes - b.q_bytes), 0.5 * p.bdp_bytes());
}

TEST(FluidModel, PowerLawNeverUndershootsBdpFromAbove) {
  const FluidParams p = params100g();
  const FluidModel m(LawType::kPower, p);
  const auto traj =
      m.trajectory({4 * p.bdp_bytes(), 2 * p.bdp_bytes()}, 2e-3, 2e-7, 1e-5);
  for (const auto& pt : traj) {
    if (pt.t > 5 * p.base_rtt_s) {
      EXPECT_GE(pt.inflight_bytes, 0.97 * p.bdp_bytes()) << "at t=" << pt.t;
    }
  }
}

TEST(FluidModel, VoltageLawOvershootsBelowBdp) {
  // The overreaction of Fig. 3a: starting from a congested state the
  // queue-length law drives inflight below BDP (throughput loss).
  const FluidParams p = params100g();
  const FluidModel m(LawType::kQueueLength, p);
  const auto traj =
      m.trajectory({4 * p.bdp_bytes(), 2 * p.bdp_bytes()}, 2e-3, 2e-7, 1e-5);
  double min_inflight = 1e300;
  for (const auto& pt : traj) {
    if (pt.t > 5 * p.base_rtt_s) {
      min_inflight = std::min(min_inflight, pt.inflight_bytes);
    }
  }
  EXPECT_LT(min_inflight, 0.9 * p.bdp_bytes());
}

// -------------------------------------------------------------- theorems

TEST(Theorems, EigenvaluesAreNegative) {
  const auto eig = power_tcp_eigenvalues(params100g());
  EXPECT_LT(eig[0], 0.0);
  EXPECT_LT(eig[1], 0.0);
  EXPECT_NEAR(eig[0], -1.0 / 20e-6, 1e-6);
  EXPECT_NEAR(eig[1], -0.9 / 20e-6, 1e-6);
}

TEST(Theorems, ConvergenceTimeConstantIsDtOverGamma) {
  // Fit the decay of a simulated trajectory; expect δt/γ = 22.2 us.
  const FluidParams p = params100g();
  const FluidModel m(LawType::kPower, p);
  std::vector<double> times, windows;
  FluidState s{3 * p.bdp_bytes(), 2 * p.bdp_bytes()};
  const double h = 1e-7;
  // Skip the initial transient where the queue still couples in.
  for (int i = 0; i < 4000; ++i) {
    s = m.step(s, h);
    times.push_back(i * h);
    windows.push_back(s.w_bytes);
  }
  const double w_e = p.bdp_bytes() + p.beta_bytes;
  const double fitted = fit_decay_time_constant(times, windows, w_e);
  EXPECT_NEAR(fitted, p.update_interval_s / p.gamma,
              p.update_interval_s * 0.15);
}

TEST(Theorems, FiveUpdateIntervalsReachNinetyNinePercent) {
  // Theorem 2's corollary: after 5·δt/γ the error has decayed 99.3%.
  const FluidParams p = params100g();
  const double w0 = 4 * p.bdp_bytes();
  const double w_e = p.bdp_bytes() + p.beta_bytes;
  const double t = 5 * p.update_interval_s / p.gamma;
  const double w = power_tcp_window_solution(p, w0, t);
  EXPECT_LT(std::abs(w - w_e) / std::abs(w0 - w_e), 0.01);
}

TEST(Theorems, FairnessWeightsScaleEquilibriumWindows) {
  const FluidParams p = params100g();
  const double beta_hat = 3'000.0;
  const double w1 = fair_share_window(p, beta_hat, 1'000.0);
  const double w2 = fair_share_window(p, beta_hat, 2'000.0);
  EXPECT_NEAR(w2 / w1, 2.0, 1e-12);
  // Windows sum to the aggregate equilibrium b·τ + β̂.
  EXPECT_NEAR(w1 + w2, p.bdp_bytes() + beta_hat, 1e-6);
}

TEST(Theorems, PowerEqualsBandwidthTimesWindow) {
  // Property 1: Γ = b·w holds exactly in the fluid model for any state.
  const FluidParams p = params100g();
  for (const double w : {0.2, 1.0, 3.7}) {
    for (const double q : {0.0, 0.4, 2.5}) {
      const FluidState s{w * p.bdp_bytes(), q * p.bdp_bytes()};
      EXPECT_LT(power_property_error(p, s), 1e-12);
    }
  }
}

TEST(Theorems, DecayFitRejectsShortInput) {
  EXPECT_THROW(fit_decay_time_constant({1.0}, {1.0}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::analysis
