#include "cc/hpcc.hpp"

#include <gtest/gtest.h>

namespace powertcp::cc {
namespace {

FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  p.expected_flows = 10;
  return p;
}

net::IntHeader hop(sim::TimePs ts, std::int64_t qlen, std::int64_t tx) {
  net::IntHeader h;
  net::IntHopRecord rec;
  rec.ts = ts;
  rec.qlen_bytes = qlen;
  rec.tx_bytes = tx;
  rec.bandwidth_bps = 25e9;
  h.push(rec);
  return h;
}

AckContext ctx_at(sim::TimePs now, const net::IntHeader* h,
                  std::int64_t ack_seq, std::int64_t snd_nxt) {
  AckContext c;
  c.now = now;
  c.rtt = sim::microseconds(20);
  c.acked_bytes = 1000;
  c.ack_seq = ack_seq;
  c.snd_nxt = snd_nxt;
  c.int_hdr = h;
  return c;
}

TEST(Hpcc, StartsAtLineRate) {
  Hpcc algo(params25g());
  EXPECT_DOUBLE_EQ(algo.initial().cwnd_bytes, 62'500.0);
}

TEST(Hpcc, UtilizationMatchesHandComputation) {
  // Full-rate hop with zero queue over 10us: u = 0 + 1.0 = 1.0;
  // U = 0.5*1.0(init) + 0.5*1.0 = 1.0.
  Hpcc algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  const net::IntHeader h1 = hop(sim::microseconds(10), 0, 31'250);
  algo.on_ack(ctx_at(sim::microseconds(10), &h1, 1000, 2000));
  EXPECT_NEAR(algo.utilization(), 1.0, 1e-9);
}

TEST(Hpcc, OverUtilizationCutsMultiplicatively) {
  // U = 1 >= eta: W = Wc/(U/eta) + W_AI = 62500*0.95 + 312.5.
  Hpcc algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  const net::IntHeader h1 = hop(sim::microseconds(10), 0, 31'250);
  const CcDecision d =
      algo.on_ack(ctx_at(sim::microseconds(10), &h1, 1000, 2000));
  EXPECT_NEAR(d.cwnd_bytes, 62'500.0 * 0.95 + 312.5, 1e-6);
}

TEST(Hpcc, QueueTermUsesMinOfSamples) {
  // min(qlen_now, qlen_prev) guards against drained transients: a queue
  // that was 0 before must not contribute.
  Hpcc algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  // Huge instantaneous queue, but previous sample 0 and half-rate tx:
  // u = 0 + 0.5.
  const net::IntHeader h1 = hop(sim::microseconds(10), 1'000'000, 15'625);
  algo.on_ack(ctx_at(sim::microseconds(10), &h1, 1000, 2000));
  EXPECT_NEAR(algo.utilization(), 0.5 * 1.0 + 0.5 * 0.5, 1e-9);
}

TEST(Hpcc, AdditiveIncreaseBelowEta) {
  HpccConfig acfg;
  acfg.max_cwnd_bdp = 2.0;  // keep the clamp from hiding the increase
  Hpcc algo(params25g(), acfg);
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  // Low utilization (25% of rate, no queue).
  net::IntHeader h = hop(sim::microseconds(10), 0, 7'812);
  algo.on_ack(ctx_at(sim::microseconds(10), &h, 1000, 2000));
  // First reaction can be multiplicative only if U >= eta; here U =
  // 0.5 + 0.125 = 0.625 < 0.95 -> W = Wc + W_AI.
  EXPECT_NEAR(algo.cwnd(), 62'500.0 + 312.5, 1e-6);
}

TEST(Hpcc, MaxStageForcesMultiplicativeCatchUp) {
  // After max_stage additive rounds at low U, HPCC switches to the
  // multiplicative branch, which *raises* the window when U < eta.
  HpccConfig cfg;
  cfg.max_stage = 2;
  cfg.max_cwnd_bdp = 10.0;  // keep the clamp out of the way
  Hpcc algo(params25g(), cfg);
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  double last = algo.cwnd();
  double prev_increment = 0;
  for (int i = 1; i <= 3; ++i) {
    const auto t = sim::microseconds(10) * i;
    const net::IntHeader h = hop(t, 0, 7'812 * i);
    // Each ack crosses the per-RTT boundary (ack_seq > lastUpdateSeq).
    algo.on_ack(ctx_at(t, &h, i * 2000, i * 2000 + 500));
    const double inc = algo.cwnd() - last;
    if (i == 3) {
      // Two additive rounds exhausted max_stage; round three takes the
      // multiplicative branch with U << eta.
      EXPECT_GT(inc, prev_increment * 2);
    }
    prev_increment = inc;
    last = algo.cwnd();
  }
}

TEST(Hpcc, ReferenceWindowUpdatesOncePerRtt) {
  Hpcc algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 10'000));
  const net::IntHeader h1 = hop(sim::microseconds(10), 31'250, 31'250);
  algo.on_ack(ctx_at(sim::microseconds(10), &h1, 1'000, 10'000));
  const double w1 = algo.cwnd();
  // Second ack in the same RTT window: W recomputed from the *same* Wc,
  // so the window cannot compound.
  const net::IntHeader h2 = hop(sim::microseconds(12), 31'250, 37'500);
  algo.on_ack(ctx_at(sim::microseconds(12), &h2, 2'000, 11'000));
  EXPECT_NEAR(algo.cwnd(), w1, w1 * 0.10);
}

TEST(Hpcc, WindowNeverExceedsInitNorDropsBelowWai) {
  Hpcc algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 0, 1000));
  // Monster congestion for many rounds.
  for (int i = 1; i < 50; ++i) {
    const auto t = sim::microseconds(10) * i;
    const net::IntHeader h = hop(t, 500'000, 31'250 * i);
    algo.on_ack(ctx_at(t, &h, i * 1000, i * 1000 + 500));
  }
  EXPECT_GE(algo.cwnd(), 312.5 - 1e-9);
  EXPECT_LE(algo.cwnd(), 62'500.0 + 1e-9);
}

TEST(Hpcc, TimeoutHalves) {
  Hpcc algo(params25g());
  algo.on_timeout();
  EXPECT_DOUBLE_EQ(algo.cwnd(), 31'250.0);
}

}  // namespace
}  // namespace powertcp::cc
