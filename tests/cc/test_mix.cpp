/// cc_mix parsing and per-host assignment: separator/weight syntax,
/// normalization, rejection paths, largest-remainder quota exactness,
/// and seed-deterministic placement.

#include "cc/mix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace powertcp::cc {
namespace {

TEST(Mix, ParsesWeightedMembersWithPlusOrCommaSeparators) {
  for (const char* spec :
       {"dctcp:0.5+powertcp:0.5", "dctcp:0.5, powertcp:0.5",
        " dctcp : 0.5 + powertcp : 0.5 "}) {
    const auto mix = parse_cc_mix(spec);
    ASSERT_EQ(mix.size(), 2u) << spec;
    EXPECT_EQ(mix[0].label, "dctcp");
    EXPECT_EQ(mix[1].label, "powertcp");
    EXPECT_DOUBLE_EQ(mix[0].weight, 0.5);
    EXPECT_DOUBLE_EQ(mix[1].weight, 0.5);
  }
}

TEST(Mix, NormalizesWeightsAndDefaultsThemToOne) {
  const auto even = parse_cc_mix("dctcp+powertcp");
  ASSERT_EQ(even.size(), 2u);
  EXPECT_DOUBLE_EQ(even[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(even[1].weight, 0.5);

  const auto skewed = parse_cc_mix("dctcp:3+powertcp");
  EXPECT_DOUBLE_EQ(skewed[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(skewed[1].weight, 0.25);

  const auto single = parse_cc_mix("powertcp");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0].weight, 1.0);
}

TEST(Mix, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_cc_mix(""), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp+"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix(":0.5"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:zero"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:0.5x"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:0"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:-1"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp:nan"), std::invalid_argument);
  EXPECT_THROW(parse_cc_mix("dctcp+dctcp"), std::invalid_argument);
}

TEST(Mix, DisplayShowsNormalizedWeights) {
  EXPECT_EQ(mix_display(parse_cc_mix("dctcp:1+powertcp:1")),
            "dctcp:0.50+powertcp:0.50");
  EXPECT_EQ(mix_display(parse_cc_mix("powertcp")), "powertcp:1.00");
}

std::vector<int> member_counts(const std::vector<int>& assignment,
                               std::size_t k) {
  std::vector<int> counts(k, 0);
  for (const int m : assignment) {
    EXPECT_GE(m, 0);
    EXPECT_LT(m, static_cast<int>(k));
    ++counts[static_cast<std::size_t>(m)];
  }
  return counts;
}

TEST(Mix, AssignmentQuotasAreExactLargestRemainder) {
  // 50/50 over 9 hosts: the first-listed member wins the odd host.
  const auto even = parse_cc_mix("a+b");
  EXPECT_EQ(member_counts(mix_assignment(even, 9, 1), 2),
            (std::vector<int>{5, 4}));
  // 60/40 over 10 hosts: exact.
  const auto skewed = parse_cc_mix("a:0.6+b:0.4");
  EXPECT_EQ(member_counts(mix_assignment(skewed, 10, 1), 2),
            (std::vector<int>{6, 4}));
  // 1/3 each over 7: floors 2,2,2, leftover to the equal remainders
  // in member order.
  const auto thirds = parse_cc_mix("a+b+c");
  EXPECT_EQ(member_counts(mix_assignment(thirds, 7, 1), 3),
            (std::vector<int>{3, 2, 2}));
  // Degenerate sizes.
  EXPECT_TRUE(mix_assignment(even, 0, 1).empty());
  EXPECT_EQ(mix_assignment(even, 1, 1).size(), 1u);
}

TEST(Mix, AssignmentIsDeterministicInTheSeedAndShuffledAcrossHosts) {
  const auto mix = parse_cc_mix("a+b");
  const auto first = mix_assignment(mix, 64, 42);
  EXPECT_EQ(first, mix_assignment(mix, 64, 42));
  // A different seed permutes placement without changing the quotas.
  const auto other = mix_assignment(mix, 64, 43);
  EXPECT_EQ(member_counts(first, 2), member_counts(other, 2));
  EXPECT_NE(first, other);
  // The shuffle actually interleaves members (not a block layout).
  EXPECT_NE(first, [] {
    std::vector<int> blocks(64, 0);
    std::fill(blocks.begin() + 32, blocks.end(), 1);
    return blocks;
  }());
}

TEST(Mix, AssignmentRejectsDegenerateInputs) {
  EXPECT_THROW(mix_assignment({}, 4, 1), std::invalid_argument);
  EXPECT_THROW(mix_assignment(parse_cc_mix("a"), -1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::cc
