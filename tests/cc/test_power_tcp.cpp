#include "cc/power_tcp.hpp"

#include <gtest/gtest.h>

namespace powertcp::cc {
namespace {

/// τ = 20 us at 25 Gbps: BDP = 62 500 B, e = b²τ = 1.953 125e14 B²/s.
FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  p.expected_flows = 10;
  return p;
}

net::IntHeader hop(sim::TimePs ts, std::int64_t qlen, std::int64_t tx,
                   double bw = 25e9) {
  net::IntHeader h;
  net::IntHopRecord rec;
  rec.ts = ts;
  rec.qlen_bytes = qlen;
  rec.tx_bytes = tx;
  rec.bandwidth_bps = bw;
  h.push(rec);
  return h;
}

AckContext ctx_at(sim::TimePs now, const net::IntHeader* h,
                  std::int64_t ack_seq, std::int64_t snd_nxt) {
  AckContext c;
  c.now = now;
  c.rtt = sim::microseconds(20);
  c.acked_bytes = 1000;
  c.ack_seq = ack_seq;
  c.snd_nxt = snd_nxt;
  c.int_hdr = h;
  return c;
}

TEST(PowerTcp, StartsAtLineRateWithBdpWindow) {
  PowerTcp algo(params25g());
  const CcDecision d = algo.initial();
  EXPECT_DOUBLE_EQ(d.cwnd_bytes, 62'500.0);
  EXPECT_DOUBLE_EQ(d.pacing_bps, 25e9);
}

TEST(PowerTcp, NoIntFeedbackKeepsWindow) {
  PowerTcp algo(params25g());
  AckContext c = ctx_at(0, nullptr, 1000, 2000);
  const CcDecision d = algo.on_ack(c);
  EXPECT_DOUBLE_EQ(d.cwnd_bytes, 62'500.0);
}

TEST(PowerTcp, FirstIntAckOnlyPrimesState) {
  PowerTcp algo(params25g());
  const net::IntHeader h = hop(0, 0, 0);
  const CcDecision d = algo.on_ack(ctx_at(0, &h, 1000, 2000));
  EXPECT_DOUBLE_EQ(d.cwnd_bytes, 62'500.0);
  EXPECT_DOUBLE_EQ(algo.smoothed_power(), 1.0);
}

/// The exact normalized power of the two-sample INT sequence used in
/// the hand-computation tests: q: 0 -> 10 KB and tx: 0 -> 31 250 B over
/// 10 us at 25 Gbps (q̇ = 1e9 B/s, µ = b = 3.125e9 B/s), smoothed with
/// Δt/τ = 0.5 from the initial estimate of 1.0.
double expected_smoothed_power() {
  const double b = 3.125e9;                         // bytes/s
  const double lambda = 1e9 + b;                    // q̇ + µ
  const double nu = 10'000.0 + b * 20e-6;           // q + b·τ
  const double norm = lambda * nu / (b * b * 20e-6);  // Γ′ / e
  return 0.5 * 1.0 + 0.5 * norm;
}

TEST(PowerTcp, NormPowerMatchesHandComputation) {
  PowerTcp algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 1000, 2000));
  const net::IntHeader h1 = hop(sim::microseconds(10), 10'000, 31'250);
  algo.on_ack(ctx_at(sim::microseconds(10), &h1, 2000, 3000));
  EXPECT_NEAR(algo.smoothed_power(), expected_smoothed_power(), 1e-9);
}

TEST(PowerTcp, WindowUpdateFollowsControlLaw) {
  // With the state above: w <- γ(w_old/Γ_norm + β) + (1−γ)w.
  PowerTcp algo(params25g());
  const net::IntHeader h0 = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &h0, 1000, 2000));
  const net::IntHeader h1 = hop(sim::microseconds(10), 10'000, 31'250);
  const CcDecision d =
      algo.on_ack(ctx_at(sim::microseconds(10), &h1, 2000, 3000));
  const double expected =
      0.9 * (62'500.0 / expected_smoothed_power() + 6'250.0) +
      0.1 * 62'500.0;
  EXPECT_NEAR(d.cwnd_bytes, expected, 1e-6);
  // Pacing follows rate = cwnd/τ (Alg. 1 line 6).
  EXPECT_NEAR(d.pacing_bps, expected / 20e-6 * 8.0, 1e-3);
}

TEST(PowerTcp, CongestionShrinksWindowIdleGrowsIt) {
  PowerTcp algo(params25g());
  net::IntHeader prev = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &prev, 1000, 2000));
  // Heavy congestion: queue ramps hard while the link is saturated.
  const net::IntHeader congested =
      hop(sim::microseconds(10), 200'000, 31'250);
  const double before = algo.cwnd();
  algo.on_ack(ctx_at(sim::microseconds(10), &congested, 2000, 3000));
  EXPECT_LT(algo.cwnd(), before);

  // Idle link: no queue, tiny transmit rate -> power far below 1 ->
  // multiplicative increase.
  PowerTcp algo2(params25g());
  const net::IntHeader i0 = hop(0, 0, 0);
  algo2.on_ack(ctx_at(0, &i0, 1000, 2000));
  const net::IntHeader idle = hop(sim::microseconds(10), 0, 7'812);
  const double before2 = algo2.cwnd();
  // Start from a small window to observe growth (clamp is at BDP).
  algo2.on_timeout();  // halves to 31250
  algo2.on_ack(ctx_at(sim::microseconds(10), &idle, 2000, 3000));
  EXPECT_GT(algo2.cwnd(), before2 / 2.0);
}

TEST(PowerTcp, EquilibriumIsFixedPoint) {
  // At Γ_norm = 1 the update w <- γ(w_old + β) + (1-γ)w has fixed point
  // w* = w_old + β when w_old tracks w. Feed a steady full-rate,
  // zero-queue signal and check the window settles near BDP + β-driven
  // growth clamped at max_cwnd.
  PowerTcp algo(params25g());
  net::IntHeader prev = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &prev, 0, 1000));
  for (int i = 1; i <= 200; ++i) {
    const auto t = sim::microseconds(20) * i;
    // Full utilization, zero queue: Γ_norm = 1 exactly.
    const net::IntHeader h =
        hop(t, 0, static_cast<std::int64_t>(3.125e9 * sim::to_seconds(t)));
    algo.on_ack(ctx_at(t, &h, i * 1000, i * 1000 + 1000));
  }
  EXPECT_NEAR(algo.smoothed_power(), 1.0, 1e-6);
  // β keeps pushing up; the clamp holds the window at one BDP.
  EXPECT_NEAR(algo.cwnd(), 62'500.0, 1.0);
}

TEST(PowerTcp, WindowClampedToConfiguredBdpMultiple) {
  PowerTcpConfig cfg;
  cfg.max_cwnd_bdp = 2.0;
  PowerTcp algo(params25g(), cfg);
  net::IntHeader prev = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &prev, 0, 1000));
  // Absurdly idle feedback would explode the window without the clamp.
  for (int i = 0; i < 20; ++i) {
    const auto t = sim::microseconds(10) * (i + 2);
    const net::IntHeader h = hop(t, 0, i + 2);
    algo.on_ack(ctx_at(t, &h, i * 1000, i * 1000 + 1000));
  }
  EXPECT_LE(algo.cwnd(), 2.0 * 62'500.0 + 1e-9);
}

TEST(PowerTcp, PerRttModeUpdatesOncePerWindow) {
  PowerTcpConfig cfg;
  cfg.per_rtt_update = true;
  PowerTcp algo(params25g(), cfg);
  net::IntHeader prev = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &prev, 500, 10'000));  // primes; snd_nxt = 10000
  const net::IntHeader h1 = hop(sim::microseconds(5), 100'000, 15'625);
  algo.on_ack(ctx_at(sim::microseconds(5), &h1, 1'000, 10'000));
  const double after_first = algo.cwnd();
  EXPECT_LT(after_first, 62'500.0);
  // Acks within the same window (ack_seq <= snd_nxt at update) are
  // absorbed into smoothing but do not move the window again.
  const net::IntHeader h2 = hop(sim::microseconds(10), 150'000, 31'250);
  algo.on_ack(ctx_at(sim::microseconds(10), &h2, 2'000, 11'000));
  EXPECT_DOUBLE_EQ(algo.cwnd(), after_first);
  // Crossing the boundary (ack_seq > 10'000) updates again.
  const net::IntHeader h3 = hop(sim::microseconds(15), 150'000, 46'875);
  algo.on_ack(ctx_at(sim::microseconds(15), &h3, 10'500, 12'000));
  EXPECT_NE(algo.cwnd(), after_first);
}

TEST(PowerTcp, MaxOverHopsPicksTheBottleneck) {
  // Two hops: hop 0 uncongested, hop 1 congested. The normalized power
  // must reflect hop 1.
  PowerTcp algo(params25g());
  net::IntHeader prev;
  net::IntHopRecord r0;
  r0.ts = 0;
  r0.bandwidth_bps = 25e9;
  prev.push(r0);
  prev.push(r0);
  algo.on_ack(ctx_at(0, &prev, 0, 1000));

  net::IntHeader cur;
  net::IntHopRecord h0 = r0;
  h0.ts = sim::microseconds(10);
  h0.qlen_bytes = 0;
  h0.tx_bytes = 31'250;  // exactly full rate, zero queue: norm 1.0
  net::IntHopRecord h1 = h0;
  h1.qlen_bytes = 62'500;  // standing queue: norm 2x at full rate
  cur.push(h0);
  cur.push(h1);
  algo.on_ack(ctx_at(sim::microseconds(10), &cur, 1000, 2000));
  // smoothed = 0.5*1.0 + 0.5*max(1.0, ~3.0) -> must exceed 1.5.
  EXPECT_GT(algo.smoothed_power(), 1.5);
}

TEST(PowerTcp, TimeoutHalvesWindow) {
  PowerTcp algo(params25g());
  algo.on_timeout();
  EXPECT_DOUBLE_EQ(algo.cwnd(), 31'250.0);
}

TEST(PowerTcp, HopCountChangeReprimes) {
  PowerTcp algo(params25g());
  const net::IntHeader one = hop(0, 0, 0);
  algo.on_ack(ctx_at(0, &one, 0, 1000));
  net::IntHeader two = hop(sim::microseconds(5), 100'000, 1'000'000);
  two.push(two.hop(0));
  // Path change: no window update, just re-prime.
  const double before = algo.cwnd();
  algo.on_ack(ctx_at(sim::microseconds(5), &two, 1000, 2000));
  EXPECT_DOUBLE_EQ(algo.cwnd(), before);
}

TEST(PowerTcp, BetaDefaultsToBdpOverN) {
  // With N = 10 the fixed point under Γ_norm = 1 drifts by β = 6250
  // per update until the clamp. Indirectly verified by the control-law
  // test above; here check the derived initial window is independent.
  FlowParams p = params25g();
  p.expected_flows = 5;
  PowerTcp algo(p);
  EXPECT_DOUBLE_EQ(algo.initial().cwnd_bytes, 62'500.0);
}

}  // namespace
}  // namespace powertcp::cc
