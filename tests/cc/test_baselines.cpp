/// Unit tests for the remaining baseline control laws: DCQCN, TIMELY,
/// DCTCP, Swift, reTCP, plus the name-based factory.

#include <gtest/gtest.h>

#include "cc/dcqcn.hpp"
#include "cc/dctcp.hpp"
#include "cc/factory.hpp"
#include "cc/retcp.hpp"
#include "cc/swift.hpp"
#include "cc/timely.hpp"

namespace powertcp::cc {
namespace {

FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  p.expected_flows = 10;
  return p;
}

AckContext ack_at(sim::TimePs now, sim::TimePs rtt, bool ecn = false,
                  std::int64_t acked = 1000, std::int64_t ack_seq = 0,
                  std::int64_t snd_nxt = 0) {
  AckContext c;
  c.now = now;
  c.rtt = rtt;
  c.acked_bytes = acked;
  c.ecn_echo = ecn;
  c.ack_seq = ack_seq;
  c.snd_nxt = snd_nxt;
  return c;
}

// ---------------------------------------------------------------- DCQCN

TEST(Dcqcn, FirstCnpHalvesRate) {
  Dcqcn algo(params25g());
  // alpha starts at 1; on CNP: alpha -> (1-g)+g = 1, cut = alpha/2.
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(20), true));
  EXPECT_NEAR(algo.rate_bps(), 12.5e9, 1e6);
}

TEST(Dcqcn, CnpsArePacedAtFiftyMicros) {
  Dcqcn algo(params25g());
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(20), true));
  const double after_first = algo.rate_bps();
  // A second marked ack 20us later is within the CNP interval: no cut.
  algo.on_ack(ack_at(sim::microseconds(30), sim::microseconds(20), true));
  EXPECT_GE(algo.rate_bps(), after_first * 0.99);
  // 50us after the first CNP a new cut lands.
  algo.on_ack(ack_at(sim::microseconds(61), sim::microseconds(20), true));
  EXPECT_LT(algo.rate_bps(), after_first * 0.7);
}

TEST(Dcqcn, AlphaDecaysWithoutCongestion) {
  Dcqcn algo(params25g());
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(20), true));
  const double alpha_after_cnp = algo.alpha();
  algo.on_ack(ack_at(sim::milliseconds(2), sim::microseconds(20), false));
  EXPECT_LT(algo.alpha(), alpha_after_cnp * 0.95);
}

TEST(Dcqcn, FastRecoveryClimbsBackTowardTarget) {
  Dcqcn algo(params25g());
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(20), true));
  const double cut_rate = algo.rate_bps();
  // Several increase-timer periods later the rate recovers toward the
  // pre-cut target (25G): each stage halves the distance.
  algo.on_ack(ack_at(sim::microseconds(10 + 3 * 55),
                     sim::microseconds(20), false));
  EXPECT_GT(algo.rate_bps(), cut_rate * 1.5);
  EXPECT_LE(algo.rate_bps(), 25e9);
}

TEST(Dcqcn, RateNeverExceedsLineRate) {
  Dcqcn algo(params25g());
  for (int i = 0; i < 100; ++i) {
    algo.on_ack(ack_at(sim::microseconds(100) * i, sim::microseconds(20)));
  }
  EXPECT_LE(algo.rate_bps(), 25e9);
}

TEST(Dcqcn, TimeoutHalvesRate) {
  Dcqcn algo(params25g());
  algo.on_timeout();
  EXPECT_NEAR(algo.rate_bps(), 12.5e9, 1e6);
}

// ---------------------------------------------------------------- TIMELY

TEST(Timely, BelowTlowAlwaysIncreases) {
  Timely algo(params25g());  // t_low = 1.5*tau = 30us
  algo.on_ack(ack_at(0, sim::microseconds(25)));
  const double r0 = algo.rate_bps();
  // RTT *rising* but still under t_low: additive increase regardless.
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(29)));
  EXPECT_GT(algo.rate_bps(), r0 - 1.0);
}

TEST(Timely, AboveThighDecreasesProportionally) {
  Timely algo(params25g());  // t_high = 5*tau = 100us
  algo.on_ack(ack_at(0, sim::microseconds(20)));
  const double before = algo.rate_bps();
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(200)));
  // rate *= 1 - beta*(1 - 100/200) = 1 - 0.8*0.5 = 0.6.
  EXPECT_NEAR(algo.rate_bps(), before * 0.6, before * 0.01);
}

TEST(Timely, PositiveGradientInBandDecreases) {
  Timely algo(params25g());
  algo.on_ack(ack_at(0, sim::microseconds(40)));
  const double before = algo.rate_bps();
  // 40 -> 60us within [t_low, t_high]: positive gradient -> decrease.
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(60)));
  EXPECT_LT(algo.rate_bps(), before);
}

TEST(Timely, NegativeGradientInBandIncreases) {
  TimelyConfig cfg;
  cfg.t_low = sim::microseconds(10);  // keep the band wide
  cfg.t_high = sim::microseconds(500);
  Timely algo(params25g(), cfg);
  // Pull the rate off the line-rate clamp with one rising-RTT update.
  algo.on_ack(ack_at(0, sim::microseconds(100)));
  algo.on_ack(ack_at(sim::microseconds(5), sim::microseconds(400)));
  ASSERT_LT(algo.rate_bps(), 25e9);
  // Let the filtered gradient turn negative (falling RTTs), then check
  // the rate climbs.
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(200)));
  algo.on_ack(ack_at(sim::microseconds(15), sim::microseconds(150)));
  const double r1 = algo.rate_bps();
  algo.on_ack(ack_at(sim::microseconds(20), sim::microseconds(120)));
  EXPECT_GT(algo.rate_bps(), r1);
}

TEST(Timely, HaiModeKicksInAfterStreak) {
  TimelyConfig cfg;
  cfg.t_low = sim::microseconds(10);
  cfg.t_high = sim::microseconds(500);
  cfg.delta_bps = 1e8;
  Timely algo(params25g(), cfg);
  // Rate starts at line rate; cut it down first with one huge RTT.
  algo.on_ack(ack_at(0, sim::microseconds(100)));
  algo.on_ack(ack_at(sim::microseconds(5), sim::microseconds(499)));
  double prev = algo.rate_bps();
  double last_step = 0;
  for (int i = 0; i < 8; ++i) {
    algo.on_ack(ack_at(sim::microseconds(10 + 10 * i),
                       sim::microseconds(480 - 20 * i)));
    last_step = algo.rate_bps() - prev;
    prev = algo.rate_bps();
  }
  // By the end of the streak, increases are 5x delta.
  EXPECT_NEAR(last_step, 5e8, 1e7);
}

// ---------------------------------------------------------------- DCTCP

TEST(Dctcp, NoMarksGrowsOneMssPerRtt) {
  Dctcp algo(params25g());
  algo.on_timeout();  // start below the clamp (31250)
  const double before = 31'250.0;
  algo.on_ack(ack_at(0, sim::microseconds(20), false, 1000, 1000, 5000));
  // Crossing the first window boundary (ack_seq > 0): +1 MSS.
  EXPECT_NEAR(algo.cwnd(), before + 1000, 1e-9);
}

TEST(Dctcp, FullMarkingConvergesAlphaToOneAndHalves) {
  Dctcp algo(params25g());
  const double prev = algo.cwnd();
  for (int i = 1; i <= 5; ++i) {
    // Each ack crosses the previous window boundary (snd_nxt only a bit
    // ahead), so every round applies a cut.
    algo.on_ack(ack_at(sim::microseconds(20) * i, sim::microseconds(20),
                       true, 1000, i * 1000, i * 1000 + 500));
  }
  // Every round marked: alpha stays near 1, cwnd roughly halves per
  // round: after 5 rounds cwnd << initial.
  EXPECT_LT(algo.cwnd(), prev / 8);
  EXPECT_GT(algo.alpha(), 0.9);
}

TEST(Dctcp, FractionalMarkingScalesCut) {
  DctcpConfig cfg;
  cfg.g = 1.0;  // alpha = F exactly, for a crisp check
  Dctcp algo(params25g(), cfg);
  // Two acks in one observation window, half the bytes marked. The
  // first stays below the (initial zero) boundary; the second crosses
  // it: alpha = 0.5, cut = 1 - 0.25.
  algo.on_ack(ack_at(0, sim::microseconds(20), true, 1000, 0, 3000));
  algo.on_ack(
      ack_at(sim::microseconds(5), sim::microseconds(20), false, 1000,
             500, 6000));
  EXPECT_NEAR(algo.alpha(), 0.5, 1e-9);
  EXPECT_NEAR(algo.cwnd(), 62'500.0 * 0.75, 1.0);
}

// ---------------------------------------------------------------- Swift

TEST(Swift, BelowTargetGrows) {
  Swift algo(params25g());
  algo.on_timeout();
  const double before = algo.cwnd();
  algo.on_ack(ack_at(0, sim::microseconds(20)));  // target = 25us
  EXPECT_GT(algo.cwnd(), before);
}

TEST(Swift, AboveTargetCutsOncePerRtt) {
  Swift algo(params25g());
  algo.on_ack(ack_at(0, sim::microseconds(100)));
  const double after_cut = algo.cwnd();
  EXPECT_LT(after_cut, 62'500.0);
  // Second over-target ack within one RTT: no further cut.
  algo.on_ack(ack_at(sim::microseconds(10), sim::microseconds(100)));
  EXPECT_DOUBLE_EQ(algo.cwnd(), after_cut);
  // After an RTT elapses, it may cut again.
  algo.on_ack(ack_at(sim::microseconds(150), sim::microseconds(100)));
  EXPECT_LT(algo.cwnd(), after_cut);
}

TEST(Swift, DecreaseClampedByMaxMdf) {
  SwiftConfig cfg;
  cfg.max_mdf = 0.3;
  Swift algo(params25g(), cfg);
  algo.on_ack(ack_at(0, sim::seconds(1)));  // absurd delay
  EXPECT_NEAR(algo.cwnd(), 62'500.0 * 0.7, 1.0);
}

// ---------------------------------------------------------------- reTCP

TEST(ReTcp, ScalesInsidePrebufferAndDayOnly) {
  const net::CircuitSchedule sched(4, sim::microseconds(100),
                                   sim::microseconds(10));
  ReTcpConfig cfg;
  cfg.prebuffering = sim::microseconds(50);
  cfg.scale = 4.0;
  // src 0 -> dst 2 connects in slot 1: day [110us, 210us).
  ReTcp algo(params25g(), &sched, 0, 2, cfg);
  EXPECT_FALSE(algo.scaled_at(sim::microseconds(30)));
  EXPECT_TRUE(algo.scaled_at(sim::microseconds(65)));   // prebuffering
  EXPECT_TRUE(algo.scaled_at(sim::microseconds(150)));  // day
  EXPECT_FALSE(algo.scaled_at(sim::microseconds(215))); // next night
}

TEST(ReTcp, RampReachesFullScaleAtReferencePrebuffer) {
  const net::CircuitSchedule sched(4, sim::microseconds(100),
                                   sim::microseconds(10));
  ReTcpConfig cfg;
  cfg.prebuffering = sim::microseconds(50);
  cfg.ramp_reference = sim::microseconds(50);
  cfg.scale = 4.0;
  ReTcp algo(params25g(), &sched, 0, 2, cfg);
  // Day starts at 110us; halfway through prebuffer the scale is 2.5x.
  EXPECT_NEAR(algo.scale_at(sim::microseconds(85)), 2.5, 1e-9);
  EXPECT_NEAR(algo.scale_at(sim::microseconds(110)), 4.0, 1e-9);
  // During the day the window holds at its day-start value.
  EXPECT_NEAR(algo.scale_at(sim::microseconds(200)), 4.0, 1e-9);
}

TEST(ReTcp, LongerPrebufferOvershootsScale) {
  const net::CircuitSchedule sched(4, sim::microseconds(100),
                                   sim::microseconds(10));
  ReTcpConfig cfg;
  cfg.prebuffering = sim::microseconds(150);  // 3x the reference
  cfg.ramp_reference = sim::microseconds(50);
  cfg.scale = 4.0;
  ReTcp algo(params25g(), &sched, 0, 2, cfg);
  EXPECT_NEAR(algo.scale_at(sim::microseconds(110)), 10.0, 1e-9);
}

TEST(ReTcp, DerivesScaleFromBandwidthRatio) {
  const net::CircuitSchedule sched(4, sim::microseconds(100),
                                   sim::microseconds(10));
  ReTcpConfig cfg;
  cfg.circuit_bw_bps = 100e9;
  cfg.packet_bw_bps = 25e9;
  ReTcp algo(params25g(), &sched, 0, 1, cfg);
  // Day for 0->1 is slot 0, [0, 100us): t=0 is the day start, and with
  // elapsed = prebuffering the ramp is complete.
  EXPECT_NEAR(algo.scale_at(sim::microseconds(50)), 4.0, 1e-9);
}

TEST(ReTcp, RequiresSchedule) {
  EXPECT_THROW(ReTcp(params25g(), nullptr, 0, 1), std::invalid_argument);
}

// ---------------------------------------------------------------- factory

TEST(Factory, BuildsEveryAdvertisedAlgorithm) {
  for (const auto& name : sender_cc_names()) {
    const CcFactory f = make_factory(name);
    const auto algo = f(params25g());
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_GT(algo->initial().cwnd_bytes, 0) << name;
  }
}

TEST(Factory, PerRttVariantsExist) {
  EXPECT_NO_THROW(make_factory("powertcp-rtt"));
  EXPECT_NO_THROW(make_factory("hpcc-rtt"));
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_factory("warp-speed"), std::invalid_argument);
}

}  // namespace
}  // namespace powertcp::cc
