#include "cc/theta_power_tcp.hpp"

#include <gtest/gtest.h>

namespace powertcp::cc {
namespace {

FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  p.expected_flows = 10;
  return p;
}

AckContext ctx(sim::TimePs now, sim::TimePs rtt, std::int64_t ack_seq,
               std::int64_t snd_nxt) {
  AckContext c;
  c.now = now;
  c.rtt = rtt;
  c.acked_bytes = 1000;
  c.ack_seq = ack_seq;
  c.snd_nxt = snd_nxt;
  return c;
}

TEST(ThetaPowerTcp, StartsAtLineRate) {
  ThetaPowerTcp algo(params25g());
  EXPECT_DOUBLE_EQ(algo.initial().cwnd_bytes, 62'500.0);
  EXPECT_DOUBLE_EQ(algo.initial().pacing_bps, 25e9);
}

TEST(ThetaPowerTcp, FirstAckPrimes) {
  ThetaPowerTcp algo(params25g());
  algo.on_ack(ctx(0, sim::microseconds(20), 1000, 2000));
  EXPECT_DOUBLE_EQ(algo.cwnd(), 62'500.0);
  EXPECT_DOUBLE_EQ(algo.smoothed_power(), 1.0);
}

TEST(ThetaPowerTcp, NormPowerFromRttAndGradient) {
  // θ̇ = (30us - 20us)/10us = 1; Γ_norm = (1+1)*30/20 = 3;
  // smoothed over Δt/τ = 0.5: 0.5*1 + 0.5*3 = 2.
  ThetaPowerTcp algo(params25g());
  algo.on_ack(ctx(0, sim::microseconds(20), 1000, 2000));
  algo.on_ack(ctx(sim::microseconds(10), sim::microseconds(30), 2000, 3000));
  EXPECT_NEAR(algo.smoothed_power(), 2.0, 1e-9);
}

TEST(ThetaPowerTcp, WindowUpdateMatchesControlLaw) {
  // With Γ_smooth = 2: w <- 0.9*(62500/2 + 6250) + 0.1*62500 = 40000.
  ThetaPowerTcp algo(params25g());
  algo.on_ack(ctx(0, sim::microseconds(20), 1000, 2000));
  const CcDecision d =
      algo.on_ack(ctx(sim::microseconds(10), sim::microseconds(30), 2000,
                      3000));
  EXPECT_NEAR(d.cwnd_bytes, 40'000.0, 1e-6);
}

TEST(ThetaPowerTcp, UpdatesOnlyOncePerRtt) {
  ThetaPowerTcp algo(params25g());
  algo.on_ack(ctx(0, sim::microseconds(20), 500, 10'000));
  algo.on_ack(ctx(sim::microseconds(10), sim::microseconds(30), 1'000,
                  10'000));
  const double w = algo.cwnd();
  // ack_seq below the update boundary: smoothing continues, window holds.
  algo.on_ack(ctx(sim::microseconds(20), sim::microseconds(40), 2'000,
                  11'000));
  EXPECT_DOUBLE_EQ(algo.cwnd(), w);
  // Next window boundary crossed.
  algo.on_ack(ctx(sim::microseconds(30), sim::microseconds(40), 10'500,
                  12'000));
  EXPECT_NE(algo.cwnd(), w);
}

TEST(ThetaPowerTcp, SteadyBaseRttIsEquilibrium) {
  // Constant RTT at τ: θ̇ = 0, Γ_norm = 1 -> window drifts up by β until
  // the clamp at one BDP.
  ThetaPowerTcp algo(params25g());
  for (int i = 0; i <= 60; ++i) {
    algo.on_ack(ctx(sim::microseconds(20) * i, sim::microseconds(20),
                    i * 1000, i * 1000 + 500));
  }
  EXPECT_NEAR(algo.smoothed_power(), 1.0, 1e-9);
  EXPECT_NEAR(algo.cwnd(), 62'500.0, 1.0);
}

TEST(ThetaPowerTcp, RisingRttShrinksWindow) {
  ThetaPowerTcp algo(params25g());
  algo.on_ack(ctx(0, sim::microseconds(20), 0, 500));
  for (int i = 1; i <= 10; ++i) {
    algo.on_ack(ctx(sim::microseconds(10) * i,
                    sim::microseconds(20 + 10 * i), i * 1000,
                    i * 1000 + 500));
  }
  EXPECT_LT(algo.cwnd(), 62'500.0 / 2);
}

TEST(ThetaPowerTcp, TimeoutHalvesWindow) {
  ThetaPowerTcp algo(params25g());
  algo.on_timeout();
  EXPECT_DOUBLE_EQ(algo.cwnd(), 31'250.0);
}

TEST(ThetaPowerTcp, ZeroRttIgnored) {
  ThetaPowerTcp algo(params25g());
  const CcDecision d = algo.on_ack(ctx(0, 0, 1000, 2000));
  EXPECT_DOUBLE_EQ(d.cwnd_bytes, 62'500.0);
}

}  // namespace
}  // namespace powertcp::cc
