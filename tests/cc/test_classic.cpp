#include "cc/classic.hpp"

#include <gtest/gtest.h>

namespace powertcp::cc {
namespace {

FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(20);
  return p;
}

AckContext ack(sim::TimePs now, std::int64_t acked, std::int64_t ack_seq,
               std::int64_t snd_nxt) {
  AckContext c;
  c.now = now;
  c.rtt = sim::microseconds(25);
  c.acked_bytes = acked;
  c.ack_seq = ack_seq;
  c.snd_nxt = snd_nxt;
  return c;
}

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno algo(params25g());
  EXPECT_TRUE(algo.in_slow_start());
  const double w0 = algo.cwnd();
  // One window's worth of acks in slow start: cwnd grows by the acked
  // bytes, i.e. doubles.
  double acked = 0;
  std::int64_t seq = 0;
  while (acked < w0) {
    seq += 1000;
    algo.on_ack(ack(sim::microseconds(1), 1000, seq, seq + 20'000));
    acked += 1000;
  }
  EXPECT_NEAR(algo.cwnd(), 2 * w0, 1000);
}

TEST(NewReno, TripleDupackHalves) {
  NewReno algo(params25g());
  // Leave slow start by pushing cwnd past ssthresh via timeout+growth.
  algo.on_ack(ack(0, 1000, 1000, 50'000));
  const double before = algo.cwnd();
  // Three duplicate acks at the same cumulative sequence.
  algo.on_ack(ack(1, 0, 1000, 50'000));
  algo.on_ack(ack(2, 0, 1000, 50'000));
  algo.on_ack(ack(3, 0, 1000, 50'000));
  EXPECT_NEAR(algo.cwnd(), before / 2, 1.0);
}

TEST(NewReno, OnlyOneReductionPerWindow) {
  NewReno algo(params25g());
  algo.on_ack(ack(0, 1000, 1000, 50'000));
  for (int i = 0; i < 3; ++i) algo.on_ack(ack(i + 1, 0, 1000, 50'000));
  const double after_first = algo.cwnd();
  // Continued dupacks within the same recovery window: no further cut.
  for (int i = 0; i < 5; ++i) algo.on_ack(ack(i + 5, 0, 1000, 50'000));
  EXPECT_DOUBLE_EQ(algo.cwnd(), after_first);
}

TEST(NewReno, CongestionAvoidanceAddsOneMssPerRtt) {
  NewReno algo(params25g());
  algo.on_timeout();  // ssthresh = cwnd/2 = 5000, cwnd = 1000
  // Grow past ssthresh, then measure CA growth over one window.
  std::int64_t seq = 0;
  while (algo.in_slow_start()) {
    seq += 1000;
    algo.on_ack(ack(seq, 1000, seq, seq + 50'000));
  }
  const double w = algo.cwnd();
  double acked = 0;
  while (acked < w) {
    seq += 1000;
    algo.on_ack(ack(seq, 1000, seq, seq + 50'000));
    acked += 1000;
  }
  EXPECT_NEAR(algo.cwnd(), w + 1000, 150);
}

TEST(NewReno, TimeoutCollapsesToOneMss) {
  NewReno algo(params25g());
  algo.on_timeout();
  EXPECT_DOUBLE_EQ(algo.cwnd(), 1000.0);
}

TEST(Cubic, GrowsTowardWmaxPlateau) {
  Cubic algo(params25g());
  // Force a loss epoch at a known W_max.
  algo.on_ack(ack(0, 1000, 1000, 90'000));
  for (int i = 0; i < 3; ++i) algo.on_ack(ack(i + 1, 0, 1000, 90'000));
  const double after_cut = algo.cwnd();
  EXPECT_NEAR(after_cut, algo.w_max() * 0.7, algo.w_max() * 0.02);
  // Feed acks over time: the window must climb back toward W_max.
  std::int64_t seq = 1000;
  for (int i = 1; i <= 400; ++i) {
    seq += 1000;
    algo.on_ack(ack(sim::microseconds(25) * i, 1000, seq, seq + 90'000));
  }
  EXPECT_GT(algo.cwnd(), after_cut);
  EXPECT_GE(algo.w_max(), after_cut);
}

TEST(Cubic, TimeoutResetsEpoch) {
  Cubic algo(params25g());
  algo.on_timeout();
  EXPECT_DOUBLE_EQ(algo.cwnd(), 1000.0);
}

TEST(Cubic, DupackCutUsesBeta) {
  CubicConfig cfg;
  cfg.beta = 0.5;
  Cubic algo(params25g(), cfg);
  algo.on_ack(ack(0, 1000, 1000, 90'000));
  const double before = algo.cwnd();
  for (int i = 0; i < 3; ++i) algo.on_ack(ack(i + 1, 0, 1000, 90'000));
  EXPECT_NEAR(algo.cwnd(), before * 0.5, 1.0);
}

}  // namespace
}  // namespace powertcp::cc
