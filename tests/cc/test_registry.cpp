/// Scheme registry coverage: the name table, unknown-scheme and
/// unknown-key rejection, `key=value` round-trips into every CC's
/// config struct, and the topology-needs wiring (reTCP gets a
/// CircuitSchedule, HOMA declares its 8 priority bands).

#include <gtest/gtest.h>

#include <stdexcept>

#include "cc/classic.hpp"
#include "cc/dcqcn.hpp"
#include "cc/dctcp.hpp"
#include "cc/factory.hpp"
#include "cc/hpcc.hpp"
#include "cc/power_tcp.hpp"
#include "cc/registry.hpp"
#include "cc/retcp.hpp"
#include "cc/swift.hpp"
#include "cc/theta_power_tcp.hpp"
#include "cc/timely.hpp"
#include "host/homa.hpp"
#include "net/circuit.hpp"

namespace powertcp::cc {
namespace {

FlowParams params25g() {
  FlowParams p;
  p.host_bw = sim::Bandwidth::gbps(25);
  p.base_rtt = sim::microseconds(10);
  p.expected_flows = 10;
  return p;
}

TEST(Registry, ListsEverySchemeOnce) {
  const auto names = Registry::instance().names();
  const std::vector<std::string> expected = {
      "powertcp", "powertcp-rtt", "theta-powertcp", "hpcc", "hpcc-rtt",
      "dcqcn",    "timely",       "dctcp",          "swift", "newreno",
      "cubic",    "retcp",        "homa"};
  EXPECT_EQ(names, expected);
}

TEST(Registry, UnknownSchemeThrowsListingKnownNames) {
  EXPECT_EQ(Registry::instance().find("warp-speed"), nullptr);
  try {
    Registry::instance().at("warp-speed");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("powertcp"), std::string::npos);
  }
}

TEST(Registry, UnknownParamKeyThrowsForEverySchemeWithAFactory) {
  net::CircuitSchedule sched(4, sim::microseconds(225),
                             sim::microseconds(20));
  SchemeTopology topo;
  topo.circuit = &sched;
  topo.circuit_bw_bps = 100e9;
  topo.packet_bw_bps = 25e9;
  const ParamMap bogus = {{"definitely_not_a_param", "1"}};
  for (const Scheme& s : Registry::instance().schemes()) {
    if (s.message_transport) continue;
    EXPECT_THROW(s.make(bogus, topo), std::invalid_argument) << s.name;
    EXPECT_NO_THROW(s.make(ParamMap{}, topo)) << s.name;
  }
  EXPECT_THROW(host::homa_config_from_params(bogus, params25g()),
               std::invalid_argument);
}

TEST(Registry, UnparseableValuesThrow) {
  EXPECT_THROW(power_tcp_config_from_params({{"gamma", "fast"}}),
               std::invalid_argument);
  EXPECT_THROW(power_tcp_config_from_params({{"per_rtt_update", "maybe"}}),
               std::invalid_argument);
  EXPECT_THROW(hpcc_config_from_params({{"max_stage", "5.5"}}),
               std::invalid_argument);
}

TEST(Registry, ParamsRoundTripIntoEveryConfigStruct) {
  const auto pt = power_tcp_config_from_params({{"gamma", "0.7"},
                                                {"beta_bytes", "5000"},
                                                {"per_rtt_update", "true"},
                                                {"max_cwnd_bdp", "2.5"}});
  EXPECT_DOUBLE_EQ(pt.gamma, 0.7);
  EXPECT_DOUBLE_EQ(pt.beta_bytes, 5000);
  EXPECT_TRUE(pt.per_rtt_update);
  EXPECT_DOUBLE_EQ(pt.max_cwnd_bdp, 2.5);

  const auto th = theta_power_tcp_config_from_params(
      {{"gamma", "0.8"}, {"beta_bytes", "123"}, {"max_cwnd_bdp", "3"}});
  EXPECT_DOUBLE_EQ(th.gamma, 0.8);
  EXPECT_DOUBLE_EQ(th.beta_bytes, 123);
  EXPECT_DOUBLE_EQ(th.max_cwnd_bdp, 3);

  const auto hp = hpcc_config_from_params({{"eta", "0.9"},
                                           {"max_stage", "7"},
                                           {"wai_bytes", "400"},
                                           {"per_rtt_update", "on"}});
  EXPECT_DOUBLE_EQ(hp.eta, 0.9);
  EXPECT_EQ(hp.max_stage, 7);
  EXPECT_DOUBLE_EQ(hp.wai_bytes, 400);
  EXPECT_TRUE(hp.per_rtt_update);

  const auto dq = dcqcn_config_from_params({{"g", "0.5"},
                                            {"cnp_interval_us", "100"},
                                            {"increase_bytes", "777"},
                                            {"fast_recovery_stages", "3"}});
  EXPECT_DOUBLE_EQ(dq.g, 0.5);
  EXPECT_EQ(dq.cnp_interval, sim::microseconds(100));
  EXPECT_EQ(dq.increase_bytes, 777);
  EXPECT_EQ(dq.fast_recovery_stages, 3);

  const auto tm = timely_config_from_params(
      {{"alpha", "0.5"}, {"t_low_us", "20"}, {"hai_threshold", "2"}});
  EXPECT_DOUBLE_EQ(tm.alpha, 0.5);
  EXPECT_EQ(tm.t_low, sim::microseconds(20));
  EXPECT_EQ(tm.hai_threshold, 2);

  const auto dc = dctcp_config_from_params({{"g", "0.25"}});
  EXPECT_DOUBLE_EQ(dc.g, 0.25);

  const auto sw = swift_config_from_params(
      {{"target_rtt_factor", "2"}, {"min_cwnd_bytes", "250"}});
  EXPECT_DOUBLE_EQ(sw.target_rtt_factor, 2);
  EXPECT_DOUBLE_EQ(sw.min_cwnd_bytes, 250);

  const auto nr = new_reno_config_from_params(
      {{"dupack_threshold", "5"}, {"ssthresh_factor", "0.75"}});
  EXPECT_EQ(nr.dupack_threshold, 5);
  EXPECT_DOUBLE_EQ(nr.ssthresh_factor, 0.75);

  const auto cu =
      cubic_config_from_params({{"c", "0.6"}, {"beta", "0.5"}});
  EXPECT_DOUBLE_EQ(cu.c, 0.6);
  EXPECT_DOUBLE_EQ(cu.beta, 0.5);

  const auto rt = re_tcp_config_from_params(
      {{"prebuffering_us", "1800"}, {"ramp_reference_us", "900"}});
  EXPECT_EQ(rt.prebuffering, sim::microseconds(1800));
  EXPECT_EQ(rt.ramp_reference, sim::microseconds(900));

  const auto hc = host::homa_config_from_params(
      {{"rtt_bytes", "40000"}, {"overcommit", "4"}}, params25g());
  EXPECT_EQ(hc.rtt_bytes, 40000);
  EXPECT_EQ(hc.overcommit, 4);
}

TEST(Registry, HomaDerivesRttBytesFromFlowParams) {
  const auto p = params25g();
  const auto hc = host::homa_config_from_params({}, p);
  EXPECT_EQ(hc.rtt_bytes, static_cast<std::int64_t>(p.bdp_bytes()));
  EXPECT_EQ(hc.overcommit, 1);
}

TEST(Registry, HomaIsAMessageTransportNeedingEightBands) {
  const Scheme& homa = Registry::instance().at("homa");
  EXPECT_TRUE(homa.message_transport);
  EXPECT_EQ(homa.needs.priority_bands, 8);
  EXPECT_EQ(homa.make, nullptr);
  EXPECT_THROW(make_factory("homa"), std::invalid_argument);
}

TEST(Registry, ReTcpRequiresAndReceivesACircuitSchedule) {
  const Scheme& retcp = Registry::instance().at("retcp");
  EXPECT_TRUE(retcp.needs.circuit_schedule);
  EXPECT_THROW(retcp.make(ParamMap{}, SchemeTopology{}),
               std::invalid_argument);
  EXPECT_THROW(make_factory("retcp"), std::invalid_argument);

  net::CircuitSchedule sched(4, sim::microseconds(225),
                             sim::microseconds(20));
  SchemeTopology topo;
  topo.circuit = &sched;
  topo.circuit_bw_bps = 100e9;
  topo.packet_bw_bps = 25e9;
  const FlowCcFactory factory = retcp.make(ParamMap{}, topo);
  const auto algo = factory(params25g(), FlowEndpoints{0, 1});
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "reTCP");
  // The derived scale is the circuit/packet bandwidth ratio the
  // SchemeTopology carried.
  const auto* rt = dynamic_cast<const ReTcp*>(algo.get());
  ASSERT_NE(rt, nullptr);
  const sim::TimePs day0 = sched.next_connection(0, 1, 0);
  EXPECT_NEAR(rt->scale_at(day0), 4.0, 1e-9);
}

TEST(Registry, RttVariantsForceThePerRttMode) {
  // Not directly observable through CcAlgorithm, so pin the param
  // plumbing instead: the merged map must parse cleanly and a user
  // override must not be shadowed by the preset.
  const Scheme& v = Registry::instance().at("powertcp-rtt");
  EXPECT_TRUE(v.rtt_variant);
  EXPECT_NO_THROW(v.make(ParamMap{}, SchemeTopology{}));
  EXPECT_NO_THROW(v.make({{"gamma", "0.8"}}, SchemeTopology{}));
}

TEST(Registry, ExperimentDefaultsInjectHpccMatchedBeta) {
  const Scheme& pt = Registry::instance().at("powertcp");
  ASSERT_TRUE(pt.experiment_defaults != nullptr);
  const FlowParams p = params25g();
  ParamMap m;
  pt.experiment_defaults(p, m);
  ASSERT_EQ(m.count("beta_bytes"), 1u);
  const double beta = std::stod(m.at("beta_bytes"));
  EXPECT_NEAR(beta, p.bdp_bytes() * 0.05 / p.expected_flows, 1e-9);

  // A pinned key must survive the defaults pass.
  ParamMap pinned = {{"beta_bytes", "42"}};
  pt.experiment_defaults(p, pinned);
  EXPECT_EQ(pinned.at("beta_bytes"), "42");

  // Baselines tune their own constants; no defaults hook.
  EXPECT_EQ(Registry::instance().at("hpcc").experiment_defaults, nullptr);
}

TEST(Registry, SenderCcNamesDerivesFromRegistry) {
  const std::vector<std::string> expected = {
      "powertcp", "theta-powertcp", "hpcc",    "dcqcn", "timely",
      "dctcp",    "swift",          "newreno", "cubic"};
  EXPECT_EQ(sender_cc_names(), expected);
}

}  // namespace
}  // namespace powertcp::cc
